package lookup

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pairgen"
	"repro/internal/seq"
	"repro/internal/suffixtree"
)

func makeStore(bases ...string) *seq.Store {
	frags := make([]*seq.Fragment, len(bases))
	for i, b := range bases {
		frags[i] = &seq.Fragment{Name: fmt.Sprintf("f%d", i), Bases: []byte(b)}
	}
	return seq.NewStore(frags)
}

func access(st *seq.Store) func(int32) []byte {
	return func(sid int32) []byte { return st.Seq(int(sid)) }
}

func randomFrags(rng *rand.Rand, n, l int) []string {
	out := make([]string, n)
	for i := range out {
		b := make([]byte, l)
		for j := range b {
			b[j] = seq.Base(rng.Intn(4))
		}
		out[i] = string(b)
	}
	return out
}

func TestRedundantGenerationForLongMatch(t *testing.T) {
	// A shared exact match of length l appears as l-w+1 w-mer pairs
	// (Section 2) — the redundancy the suffix-tree filter avoids.
	rng := rand.New(rand.NewSource(1))
	shared := randomFrags(rng, 1, 40)[0]
	st := makeStore("AAAAAAAA"+shared, shared+"TTTTTTTT")
	w := 12
	var count int
	Generate(access(st), st.NumSeqs(), Config{W: w, NumFragments: st.N()},
		func(p pairgen.Pair) bool { count++; return true })
	wantMin := 40 - w + 1
	if count < wantMin {
		t.Errorf("got %d pairs, want ≥ %d", count, wantMin)
	}
}

// TestSameFragmentPairsAsSuffixTree: with w = ψ and no bucket cap, the
// two filters must admit exactly the same set of fragment pairs (both
// detect "some shared exact match ≥ w").
func TestSameFragmentPairsAsSuffixTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		frags := randomFrags(rng, 6, 50)
		// Plant some overlaps.
		frags[1] = frags[0][25:] + frags[1][:25]
		frags[3] = frags[2][30:] + frags[3][:30]
		st := makeStore(frags...)
		w := 10

		type key struct{ a, b int32 }
		n := int32(st.N())
		frag := func(sid int32) int32 { return sid % n }
		lookupSet := make(map[key]bool)
		Generate(access(st), st.NumSeqs(), Config{W: w, NumFragments: st.N()},
			func(p pairgen.Pair) bool {
				a, b := frag(p.ASid), frag(p.BSid)
				if a > b {
					a, b = b, a
				}
				lookupSet[key{a, b}] = true
				return true
			})

		sids := make([]int32, st.NumSeqs())
		for i := range sids {
			sids[i] = int32(i)
		}
		tree := suffixtree.Build(access(st), suffixtree.EnumerateSuffixes(access(st), sids, w), w)
		treeSet := make(map[key]bool)
		pairgen.Generate(tree, pairgen.Config{Psi: w, NumFragments: st.N()},
			func(p pairgen.Pair) bool {
				a, b := frag(p.ASid), frag(p.BSid)
				if a > b {
					a, b = b, a
				}
				treeSet[key{a, b}] = true
				return true
			})

		if len(lookupSet) != len(treeSet) {
			t.Fatalf("trial %d: lookup %d pairs, tree %d pairs", trial, len(lookupSet), len(treeSet))
		}
		for k := range treeSet {
			if !lookupSet[k] {
				t.Fatalf("trial %d: pair %v in tree set but not lookup set", trial, k)
			}
		}
	}
}

func TestMaxBucketSkipsRepeats(t *testing.T) {
	// A high-copy motif should blow past MaxBucket and be skipped.
	motif := "ACGTACGTTGCA"
	frags := make([]string, 8)
	for i := range frags {
		frags[i] = motif + motif + motif
	}
	st := makeStore(frags...)
	stats := Generate(access(st), st.NumSeqs(), Config{W: 12, NumFragments: st.N(), MaxBucket: 4},
		func(p pairgen.Pair) bool { return true })
	if stats.BucketsSkipped == 0 {
		t.Error("expected repeat buckets to be skipped")
	}
}

func TestEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	frags := randomFrags(rng, 4, 60)
	frags[1] = frags[0] // force many pairs
	st := makeStore(frags...)
	count := 0
	Generate(access(st), st.NumSeqs(), Config{W: 8, NumFragments: st.N()},
		func(p pairgen.Pair) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop delivered %d", count)
	}
}

func TestCanonicalAndSelfSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	frags := randomFrags(rng, 4, 50)
	// "ACGTACGT" is its own reverse complement, so a fragment carrying
	// it collides with its own RC sequence — a self pair to skip.
	frags[0] = frags[0][:20] + "ACGTACGT" + frags[0][28:]
	st := makeStore(frags...)
	n := int32(st.N())
	stats := Generate(access(st), st.NumSeqs(), Config{W: 8, NumFragments: st.N()},
		func(p pairgen.Pair) bool {
			fa, fb := p.ASid%n, p.BSid%n
			if fa == fb {
				t.Fatalf("self pair: %+v", p)
			}
			lo, loSid := fa, p.ASid
			if fb < fa {
				lo, loSid = fb, p.BSid
			}
			_ = lo
			if loSid >= n {
				t.Fatalf("non-canonical pair: %+v", p)
			}
			return true
		})
	// Every fragment matches its own RC's w-mers, so skips must occur.
	if stats.Skipped == 0 {
		t.Error("expected canonicalization skips")
	}
}
