// Package lookup implements the conventional fixed-length w-mer
// lookup-table filter (paper, Section 2) as the baseline the
// suffix-tree maximal-match generator is compared against. A pair is
// generated once for every shared w-mer, so a single exact match of
// length l reveals itself as l−w+1 pairs — the redundancy the
// maximal-match filter eliminates — and pairs come out in arbitrary
// order rather than decreasing match length, so the clustering
// heuristic cannot prioritize likely merges.
package lookup

import (
	"repro/internal/pairgen"
	"repro/internal/seq"
)

// Config parameterizes the baseline filter.
type Config struct {
	W            int // w-mer length
	NumFragments int // fragment count n (sequence space is 2n)
	// MaxBucket skips w-mers occurring more often than this, the usual
	// guard against repeat-induced blowup in lookup-table assemblers
	// (0 = no limit).
	MaxBucket int
}

// Stats counts baseline filter activity.
type Stats struct {
	Emitted        int64
	Skipped        int64 // dropped by canonicalization or self-pairing
	BucketsSkipped int64 // w-mer buckets over MaxBucket
}

// Generate emits a pair for every shared w-mer between two different
// sequences, canonicalized exactly like pairgen so the two filters are
// directly comparable. MatchLen is always W: the lookup table cannot
// see maximal-match lengths. Stops early if yield returns false.
func Generate(access func(sid int32) []byte, numSeqs int, cfg Config, yield func(pairgen.Pair) bool) Stats {
	type occ struct {
		sid int32
		pos int32
	}
	table := make(map[seq.Kmer][]occ)
	for sid := 0; sid < numSeqs; sid++ {
		s := access(int32(sid))
		seq.EachKmer(s, cfg.W, func(pos int, km seq.Kmer) {
			table[km] = append(table[km], occ{int32(sid), int32(pos)})
		})
	}
	var st Stats
	n := int32(cfg.NumFragments)
	for _, occs := range table {
		if cfg.MaxBucket > 0 && len(occs) > cfg.MaxBucket {
			st.BucketsSkipped++
			continue
		}
		for i := 0; i < len(occs); i++ {
			for j := i + 1; j < len(occs); j++ {
				a, b := occs[i], occs[j]
				fa, fb := a.sid%n, b.sid%n
				if fa == fb {
					st.Skipped++
					continue
				}
				if fa < fb {
					if a.sid >= n {
						st.Skipped++
						continue
					}
				} else {
					if b.sid >= n {
						st.Skipped++
						continue
					}
					a, b = b, a
				}
				st.Emitted++
				if !yield(pairgen.Pair{
					ASid: a.sid, BSid: b.sid,
					APos: a.pos, BPos: b.pos,
					MatchLen: int32(cfg.W),
				}) {
					return st
				}
			}
		}
	}
	return st
}
