// Package scaffold orders and orients contigs along the chromosome
// using clone-mate links — the downstream "scaffolding" stage the
// paper describes closing its assembly pipeline (Section 2: "The order
// and orientation of the contigs along the chromosomes is later
// determined using a process called scaffolding").
//
// A mate pair whose two reads land in different contigs implies a
// relative orientation of those contigs and an approximate gap between
// them (clone length minus the spans covered inside each contig).
// Links between the same oriented contig pair are bundled; bundles
// with enough agreeing links become scaffold edges, and contigs chain
// greedily into scaffolds along their strongest left/right edges.
package scaffold

import (
	"sort"

	"repro/internal/assembly"
)

// Config parameterizes scaffolding.
type Config struct {
	// MinLinks is the number of agreeing mate links required to join
	// two contigs (guards against chimeric clones and repeat-induced
	// misplacements).
	MinLinks int
	// ReadLen approximates the read length when projecting clone
	// spans (mean read length of the library).
	ReadLen int
	// MaxGapSlack rejects bundles whose implied gap is more negative
	// than this (contigs overlapping more than slack should have been
	// merged by assembly, so the link is suspect).
	MaxGapSlack int
}

// DefaultConfig returns typical Sanger-library settings.
func DefaultConfig() Config {
	return Config{MinLinks: 2, ReadLen: 700, MaxGapSlack: 400}
}

// MateLink is one clone whose reads span two contigs: the forward read
// of the pair sits in one contig, the reverse read in another, and the
// clone length bounds their separation.
type MateLink struct {
	ForwardFrag int // fragment ID of the forward-strand read
	ReverseFrag int // fragment ID of the reverse-strand read
	InsertLen   int // approximate clone length
}

// Placement orients one contig within a scaffold.
type Placement struct {
	Contig  int  // index into the input contig slice
	Reverse bool // contig is flipped relative to the scaffold
	Gap     int  // estimated gap to the next contig (last entry: 0)
}

// Scaffold is an ordered, oriented chain of contigs.
type Scaffold struct {
	Contigs []Placement
}

// edge is a bundled set of agreeing mate links between two oriented
// contigs: "A forward-end joins B" with relative orientation flip.
type edge struct {
	a, b  int  // contig indices, a < b
	flip  bool // true if b is reversed relative to a
	count int
	gap   int // median implied gap
}

// Build bundles mate links into edges and chains contigs into
// scaffolds. Contigs with no surviving links come back as singleton
// scaffolds.
func Build(contigs []assembly.Contig, links []MateLink, cfg Config) []Scaffold {
	if cfg.MinLinks == 0 {
		cfg = DefaultConfig()
	}
	// Index fragment placements.
	type loc struct {
		contig int
		off    int
		rev    bool
		ok     bool
	}
	where := make(map[int]loc)
	lengths := make([]int, len(contigs))
	for ci, c := range contigs {
		lengths[ci] = len(c.Bases)
		for _, p := range c.Reads {
			where[p.Frag] = loc{contig: ci, off: p.Offset, rev: p.Reverse, ok: true}
		}
	}

	// Collect per-(pair, orientation) gap samples.
	type key struct {
		a, b int
		flip bool
	}
	samples := make(map[key][]int)
	for _, l := range links {
		f, ok1 := where[l.ForwardFrag]
		r, ok2 := where[l.ReverseFrag]
		if !ok1 || !ok2 || f.contig == r.contig {
			continue
		}
		// The forward read points along the genome; its contig is
		// genome-forward iff the read is placed unreversed. The reverse
		// read points against the genome; its contig is genome-forward
		// iff the read is placed reversed.
		aFwd := !f.rev
		bFwd := r.rev
		// Distance from the forward read's start to the gap-facing end
		// of its contig (in genome orientation), and from the gap-facing
		// end of the mate's contig to the reverse read's end.
		var distA int
		if aFwd {
			distA = lengths[f.contig] - f.off
		} else {
			distA = f.off + cfg.ReadLen
		}
		var distB int
		if bFwd {
			distB = r.off + cfg.ReadLen
		} else {
			distB = lengths[r.contig] - r.off
		}
		gap := l.InsertLen - distA - distB

		a, b := f.contig, r.contig
		flip := aFwd == !bFwd
		if a > b {
			a, b = b, a
		}
		samples[key{a, b, flip}] = append(samples[key{a, b, flip}], gap)
	}

	// Bundle into edges.
	var edges []edge
	for k, gaps := range samples {
		if len(gaps) < cfg.MinLinks {
			continue
		}
		sort.Ints(gaps)
		med := gaps[len(gaps)/2]
		if med < -cfg.MaxGapSlack {
			continue
		}
		edges = append(edges, edge{a: k.a, b: k.b, flip: k.flip, count: len(gaps), gap: med})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].count != edges[j].count {
			return edges[i].count > edges[j].count
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	// Greedy chaining: accept edges strongest-first as long as each
	// contig keeps degree ≤ 2 and no cycle forms.
	parent := make([]int, len(contigs))
	degree := make([]int, len(contigs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	adj := make(map[int][]edge)
	for _, e := range edges {
		if degree[e.a] >= 2 || degree[e.b] >= 2 {
			continue
		}
		if find(e.a) == find(e.b) {
			continue // would close a cycle
		}
		parent[find(e.a)] = find(e.b)
		degree[e.a]++
		degree[e.b]++
		adj[e.a] = append(adj[e.a], e)
		adj[e.b] = append(adj[e.b], e)
	}

	// Walk each chain from an endpoint, assigning orientations.
	visited := make([]bool, len(contigs))
	var out []Scaffold
	for start := 0; start < len(contigs); start++ {
		if visited[start] || degree[start] > 1 {
			continue // start only from chain endpoints (or isolated contigs)
		}
		var sc Scaffold
		cur, rev := start, false
		prev := -1
		for {
			visited[cur] = true
			next, nextRev, gap, found := -1, false, 0, false
			for _, e := range adj[cur] {
				other := e.a + e.b - cur
				if other == prev {
					continue
				}
				next = other
				nextRev = rev != e.flip
				gap = e.gap
				found = true
				break
			}
			if found {
				sc.Contigs = append(sc.Contigs, Placement{Contig: cur, Reverse: rev, Gap: gap})
				prev, cur, rev = cur, next, nextRev
				continue
			}
			sc.Contigs = append(sc.Contigs, Placement{Contig: cur, Reverse: rev})
			break
		}
		out = append(out, sc)
	}
	return out
}

// Stats summarizes a scaffolding result.
type Stats struct {
	Scaffolds     int
	Singletons    int
	LargestChain  int
	TotalContigs  int
}

// Summarize computes scaffold statistics.
func Summarize(scs []Scaffold) Stats {
	var st Stats
	st.Scaffolds = len(scs)
	for _, s := range scs {
		st.TotalContigs += len(s.Contigs)
		if len(s.Contigs) == 1 {
			st.Singletons++
		}
		if len(s.Contigs) > st.LargestChain {
			st.LargestChain = len(s.Contigs)
		}
	}
	return st
}
