package scaffold

import (
	"testing"

	"repro/internal/assembly"
)

// layout builds synthetic contigs with manual read placements. Reads
// are 100 bp; fragment IDs are assigned by the caller.
func contig(length int, reads ...assembly.Placement) assembly.Contig {
	return assembly.Contig{Bases: make([]byte, length), Reads: reads}
}

func testCfg() Config {
	return Config{MinLinks: 2, ReadLen: 100, MaxGapSlack: 400}
}

// Genome truth for the tests: contig0 = [0,1000), gap 200,
// contig1 = [1200,2200), gap 300, contig2 = [2500,3500).
// A clone of insert 1500 starting at genome 600 has its forward read
// at 600 (contig0, offset 600) and its reverse read covering
// [2000,2100) (contig1, offset 800, placed reversed).
func threeContigLinks() ([]assembly.Contig, []MateLink) {
	contigs := []assembly.Contig{
		contig(1000,
			assembly.Placement{Frag: 0, Offset: 600, Reverse: false},
			assembly.Placement{Frag: 2, Offset: 650, Reverse: false},
		),
		contig(1000,
			assembly.Placement{Frag: 1, Offset: 800, Reverse: true},
			assembly.Placement{Frag: 3, Offset: 850, Reverse: true},
			assembly.Placement{Frag: 4, Offset: 700, Reverse: false},
			assembly.Placement{Frag: 6, Offset: 750, Reverse: false},
		),
		contig(1000,
			// Clone from genome 1900: F at 1900 (contig1 off 700), R
			// covers [3300,3400) → contig2 offset 800, reversed.
			assembly.Placement{Frag: 5, Offset: 800, Reverse: true},
			assembly.Placement{Frag: 7, Offset: 850, Reverse: true},
		),
	}
	links := []MateLink{
		{ForwardFrag: 0, ReverseFrag: 1, InsertLen: 1500},
		{ForwardFrag: 2, ReverseFrag: 3, InsertLen: 1500},
		{ForwardFrag: 4, ReverseFrag: 5, InsertLen: 1500},
		{ForwardFrag: 6, ReverseFrag: 7, InsertLen: 1500},
	}
	return contigs, links
}

func TestChainsThreeContigsInOrder(t *testing.T) {
	contigs, links := threeContigLinks()
	scs := Build(contigs, links, testCfg())
	if len(scs) != 1 {
		t.Fatalf("%d scaffolds, want 1 chain", len(scs))
	}
	got := scs[0].Contigs
	if len(got) != 3 {
		t.Fatalf("chain length %d", len(got))
	}
	order := []int{got[0].Contig, got[1].Contig, got[2].Contig}
	fwd := order[0] == 0 && order[1] == 1 && order[2] == 2
	rev := order[0] == 2 && order[1] == 1 && order[2] == 0
	if !fwd && !rev {
		t.Fatalf("chain order %v", order)
	}
	for _, p := range got {
		if p.Reverse {
			t.Errorf("contig %d flipped in an all-forward layout", p.Contig)
		}
	}
	// Middle gap estimates: 0–1 gap 200, 1–2 gap... clone from 1900:
	// distA = 1000−700 = 300, distB = 800+100 = 900 → gap 300. ✓
	gaps := map[int]bool{got[0].Gap: true, got[1].Gap: true}
	if !gaps[200] || !gaps[300] {
		t.Errorf("gaps %d,%d want {200,300}", got[0].Gap, got[1].Gap)
	}
}

func TestDetectsFlippedContig(t *testing.T) {
	contigs, links := threeContigLinks()
	// Flip contig 1: placements mirror (off' = len − off − readLen) and
	// reverse flags toggle.
	c1 := contigs[1]
	for i := range c1.Reads {
		c1.Reads[i].Offset = len(c1.Bases) - c1.Reads[i].Offset - 100
		c1.Reads[i].Reverse = !c1.Reads[i].Reverse
	}
	contigs[1] = c1
	scs := Build(contigs, links, testCfg())
	if len(scs) != 1 || len(scs[0].Contigs) != 3 {
		t.Fatalf("scaffolds = %+v", Summarize(scs))
	}
	flips := make(map[int]bool)
	for _, p := range scs[0].Contigs {
		flips[p.Contig] = p.Reverse
	}
	// Contig 1 must be flipped relative to contigs 0 and 2.
	if flips[1] == flips[0] || flips[1] == flips[2] {
		t.Errorf("flips = %v; contig 1 must differ", flips)
	}
}

func TestMinLinksFiltersSingletons(t *testing.T) {
	contigs, links := threeContigLinks()
	// Only one clone supports the 1–2 join.
	links = links[:3]
	scs := Build(contigs, links, testCfg())
	st := Summarize(scs)
	if st.Scaffolds != 2 || st.LargestChain != 2 || st.Singletons != 1 {
		t.Errorf("stats = %+v; want 0–1 chained, 2 alone", st)
	}
}

func TestSameContigAndUnplacedLinksIgnored(t *testing.T) {
	contigs, _ := threeContigLinks()
	links := []MateLink{
		{ForwardFrag: 0, ReverseFrag: 2, InsertLen: 1500},  // same contig
		{ForwardFrag: 0, ReverseFrag: 99, InsertLen: 1500}, // unplaced mate
	}
	scs := Build(contigs, links, testCfg())
	if Summarize(scs).LargestChain != 1 {
		t.Error("spurious links joined contigs")
	}
}

func TestNegativeGapBundleRejected(t *testing.T) {
	contigs, links := threeContigLinks()
	// Shrink the clones so the implied 0–1 gap is deeply negative.
	for i := range links[:2] {
		links[i].InsertLen = 600 // gap = 600−400−900 = −700 < −400
	}
	scs := Build(contigs, links, testCfg())
	// 0–1 rejected; 1–2 survives.
	st := Summarize(scs)
	if st.LargestChain != 2 || st.Singletons != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDegreeCapPreventsBranching(t *testing.T) {
	// Four contigs all linked to contig 0: only two joins may attach.
	contigs := []assembly.Contig{
		contig(1000),
		contig(1000),
		contig(1000),
		contig(1000),
	}
	frag := 0
	var links []MateLink
	for b := 1; b <= 3; b++ {
		for k := 0; k < 2; k++ {
			contigs[0].Reads = append(contigs[0].Reads,
				assembly.Placement{Frag: frag, Offset: 800, Reverse: false})
			contigs[b].Reads = append(contigs[b].Reads,
				assembly.Placement{Frag: frag + 1, Offset: 300, Reverse: true})
			links = append(links, MateLink{ForwardFrag: frag, ReverseFrag: frag + 1, InsertLen: 800})
			frag += 2
		}
	}
	scs := Build(contigs, links, testCfg())
	for _, s := range scs {
		for i, p := range s.Contigs {
			if p.Contig == 0 && len(s.Contigs) > 3 {
				t.Errorf("contig 0 chained into %d-long scaffold at %d", len(s.Contigs), i)
			}
		}
	}
	st := Summarize(scs)
	if st.TotalContigs != 4 {
		t.Errorf("contigs lost: %+v", st)
	}
}

func TestEmptyInputs(t *testing.T) {
	if scs := Build(nil, nil, testCfg()); len(scs) != 0 {
		t.Error("empty input must produce no scaffolds")
	}
	scs := Build([]assembly.Contig{contig(500)}, nil, testCfg())
	if len(scs) != 1 || len(scs[0].Contigs) != 1 {
		t.Error("isolated contig must be a singleton scaffold")
	}
}
