package sim

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestCaseForDeterministic(t *testing.T) {
	a, b := CaseFor(42, 7), CaseFor(42, 7)
	if a != b {
		t.Fatalf("CaseFor not deterministic:\n%v\n%v", a, b)
	}
	if CaseFor(42, 8) == a || CaseFor(43, 7) == a {
		t.Fatal("distinct seed tuples produced identical cases")
	}
}

// TestGeneratorPlansSurvivable: every generated fault plan must parse,
// crash only worker ranks, and leave at least one worker alive — so a
// campaign non-completion is always an oracle failure, never an
// impossible input.
func TestGeneratorPlansSurvivable(t *testing.T) {
	faulty, perturbed := 0, 0
	for i := 0; i < 300; i++ {
		c := CaseFor(1, i)
		if c.Ranks < 4 || c.GenomeLen < 3000 || c.Coverage < 2 {
			t.Fatalf("case %d out of matrix range: %v", i, c)
		}
		if c.ScheduleSeed != 0 {
			perturbed++
		}
		if c.FaultSpec == "" {
			continue
		}
		faulty++
		plan, err := cluster.ParseFaults(c.FaultSpec)
		if err != nil {
			t.Fatalf("case %d: unparsable spec %q: %v", i, c.FaultSpec, err)
		}
		crashed := map[int]bool{}
		for _, cr := range plan.Crashes {
			if cr.Rank < 1 || cr.Rank >= c.Ranks {
				t.Fatalf("case %d: crash names rank %d of %d (master or out of range)", i, cr.Rank, c.Ranks)
			}
			crashed[cr.Rank] = true
		}
		if len(crashed) > c.Ranks-2 {
			t.Fatalf("case %d: %d distinct ranks crash, leaving no worker of %d ranks", i, len(crashed), c.Ranks)
		}
		if plan.DropProb > 0 && !plan.Retransmit {
			t.Fatalf("case %d: spec %q drops messages without the framed link — a healthy worker can be falsely fired", i, c.FaultSpec)
		}
		if spec := c.gstFaultSpec(); spec != "" {
			if _, err := cluster.ParseFaults(spec); err != nil {
				t.Fatalf("case %d: unparsable GST spec %q: %v", i, spec, err)
			}
			if strings.Contains(spec, "drop=") || strings.Contains(spec, "crash=") &&
				!strings.Contains(spec, "gstcrash=") {
				t.Fatalf("case %d: GST spec %q kept a clustering-only fault", i, spec)
			}
		}
	}
	if faulty == 0 || perturbed == 0 {
		t.Fatalf("generator explored nothing: %d faulty, %d perturbed of 300", faulty, perturbed)
	}
}

func TestGSTFaultSpecFilter(t *testing.T) {
	c := Case{FaultSpec: "gstcrash=2@1,crash=3@2,drop=0.005,corrupt=0.0100,delayp=0.1,delay=2ms,seed=9"}
	if got, want := c.gstFaultSpec(), "gstcrash=2@1,corrupt=0.0100,seed=9"; got != want {
		t.Fatalf("gstFaultSpec = %q, want %q", got, want)
	}
	// A spec with no GST-meaningful field collapses to fault-free.
	c = Case{FaultSpec: "crash=1@2,drop=0.005,seed=9"}
	if got := c.gstFaultSpec(); got != "" {
		t.Fatalf("gstFaultSpec = %q, want empty", got)
	}
}

// TestShrink: the shrinker must strip every fault-spec field and the
// schedule seed that the failure does not depend on, and keep the one
// it does.
func TestShrink(t *testing.T) {
	c := Case{
		FaultSpec:    "gstcrash=2@1,crash=3@2,corrupt=0.0100,seed=5",
		ScheduleSeed: 77,
	}
	fails := func(x Case) bool { return strings.Contains(x.FaultSpec, "crash=3@2") }
	min, evals := Shrink(c, fails)
	if min.FaultSpec != "crash=3@2,seed=5" {
		t.Fatalf("shrunk spec = %q, want %q (evals %d)", min.FaultSpec, "crash=3@2,seed=5", evals)
	}
	if min.ScheduleSeed != 0 {
		t.Fatal("shrinker kept an irrelevant schedule seed")
	}
	// A failure independent of the faults shrinks to the empty spec.
	min, _ = Shrink(c, func(Case) bool { return true })
	if min.FaultSpec != "" || min.ScheduleSeed != 0 {
		t.Fatalf("always-failing case did not shrink to nothing: %q/%d", min.FaultSpec, min.ScheduleSeed)
	}
}

// TestRunCaseFaultFree: a small fault-free, schedule-perturbed case
// must pass every oracle.
func TestRunCaseFaultFree(t *testing.T) {
	res := RunCase(Case{
		Campaign: -1, Index: 0, Seed: 12345,
		Ranks: 4, GenomeLen: 3000, Coverage: 2, RepeatCopies: 4, Divergence: 0.02,
		ScheduleSeed: 3, ResumePhase: 1,
	})
	if res.Failed() {
		t.Fatalf("fault-free case failed:\n%s", FailureReport(res))
	}
}

// TestRunCaseWithFaults: a case combining a GST-phase crash, a
// mid-clustering worker crash and wire corruption must still pass
// every oracle.
func TestRunCaseWithFaults(t *testing.T) {
	res := RunCase(Case{
		Campaign: -1, Index: 1, Seed: 999,
		Ranks: 5, GenomeLen: 4000, Coverage: 2.5, RepeatCopies: 6, Divergence: 0.02,
		FaultSpec:    "gstcrash=2@2,crash=3@2,corrupt=0.0200,seed=9",
		ScheduleSeed: 11, ResumePhase: 2,
	})
	if res.Failed() {
		t.Fatalf("fault case failed:\n%s", FailureReport(res))
	}
	if res.Retransmits == 0 {
		t.Error("corrupting wire produced no retransmits — fault injection inert?")
	}
}

// TestCampaignSmall: a short campaign with concurrent workers must
// pass and count its explored surface.
func TestCampaignSmall(t *testing.T) {
	var buf strings.Builder
	cr := Campaign(2026, 4, CampaignOptions{Out: &buf, Verbose: true, Workers: 2})
	if cr.Failed != 0 {
		t.Fatalf("campaign failed %d/%d cases:\n%s", cr.Failed, cr.Cases, buf.String())
	}
	if cr.Cases != 4 {
		t.Fatalf("Cases = %d, want 4", cr.Cases)
	}
	if !strings.Contains(cr.String(), "4 cases") {
		t.Fatalf("summary %q missing case count", cr.String())
	}
}

func TestFailureReportCarriesRepro(t *testing.T) {
	res := Result{Case: CaseFor(5, 3)}
	res.failf("partition oracle: %s", "synthetic")
	rep := FailureReport(res)
	if !strings.Contains(rep, "simrunner -campaign=5 -case=3") ||
		!strings.Contains(rep, "synthetic") {
		t.Fatalf("failure report incomplete:\n%s", rep)
	}
}

// TestRunCaseDiskStore: the out-of-core axis — disk-backed store,
// spilling GST at a tight budget — must pass every oracle, including
// the cross-backend contig identity and journaled-store resume.
func TestRunCaseDiskStore(t *testing.T) {
	res := RunCase(Case{
		Campaign: -1, Index: 2, Seed: 777,
		Ranks: 4, GenomeLen: 3000, Coverage: 2, RepeatCopies: 4, Divergence: 0.02,
		ScheduleSeed: 5, ResumePhase: 1,
		StoreDisk: true, MemBudget: 4 << 10,
	})
	if res.Failed() {
		t.Fatalf("disk-store case failed:\n%s", FailureReport(res))
	}
}

// TestRunCaseDiskStoreWithFaults: spilling GST and disk store under a
// crashing, corrupting fault plan — the dead worker's key range is
// adopted as an extra sweep range and every oracle must still hold.
func TestRunCaseDiskStoreWithFaults(t *testing.T) {
	res := RunCase(Case{
		Campaign: -1, Index: 3, Seed: 31337,
		Ranks: 5, GenomeLen: 4000, Coverage: 2.5, RepeatCopies: 6, Divergence: 0.02,
		FaultSpec:    "crash=3@2,corrupt=0.0200,seed=9",
		ScheduleSeed: 11, ResumePhase: 2,
		StoreDisk: true, MemBudget: 32 << 10,
	})
	if res.Failed() {
		t.Fatalf("disk-store fault case failed:\n%s", FailureReport(res))
	}
}

// TestCaseForDrawsDiskAxis: the generator must actually explore the
// out-of-core axis (about a third of cases).
func TestCaseForDrawsDiskAxis(t *testing.T) {
	disk := 0
	for i := 0; i < 60; i++ {
		c := CaseFor(7, i)
		if c.StoreDisk {
			disk++
			if c.MemBudget <= 0 {
				t.Fatalf("case %d: StoreDisk with budget %d", i, c.MemBudget)
			}
		}
	}
	if disk < 5 || disk > 40 {
		t.Fatalf("%d/60 cases drew the disk axis; generator skewed", disk)
	}
}
