package sim

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/check"
	"repro/internal/par"
	"repro/internal/pgst"
	"repro/internal/pipeline"
	"repro/internal/seq"
	"repro/internal/seq/diskstore"
	"repro/internal/suffixtree"
)

// Result is one case's verdict: the empty Failures slice means every
// oracle held. Counters summarize what the fault model actually did,
// so a campaign report can show the explored surface.
type Result struct {
	Case     Case
	Failures []string

	WorkersLost int64
	Retransmits int
	Quarantined int
	Wall        time.Duration

	// Trace is the clustering run's tracer, kept so a replayed case
	// can dump its raw events (simrunner -events-out).
	Trace *obs.Tracer
}

// Failed reports whether any oracle rejected the case.
func (r *Result) Failed() bool { return len(r.Failures) > 0 }

func (r *Result) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// leaseTimeout is the campaign's master-side lease. Long enough that
// healthy-but-slow workers on a loaded host are rarely fired, short
// enough that crash and drop cases recover in well under a second.
const leaseTimeout = 400 * time.Millisecond

// RunCase executes one case end to end and checks every oracle:
//
//  1. Partition: the parallel clustering under the case's faults and
//     schedule equals the serial union–find transitive closure.
//  2. GST: the union of the survivors' fault-tolerant GST forests
//     equals the serial generalized suffix tree.
//  3. Resume: the checkpointed pipeline rolled back to the case's
//     phase boundary and resumed reproduces the uninterrupted run's
//     contigs byte for byte.
//  4. Quarantine: exactly the clusters the case poisons are
//     quarantined, no more, no fewer.
//  5. Trace: the clustering run's event streams satisfy the runtime
//     invariants (monotone modeled clocks, balanced spans on OK
//     ranks, no receive without a send, causal sequence numbers).
//  6. Causal DAG: the same streams stitch into a well-formed causal
//     DAG — every message edge resolves, no cycles — and the derived
//     critical path equals the synchronized makespan.
func RunCase(c Case) Result {
	start := time.Now()
	res := Result{Case: c}
	frags := c.frags()
	store := seq.NewStore(frags)
	ccfg := cluster.DefaultConfig()
	want := cluster.PartitionLabels(cluster.Serial(store, ccfg))

	// Every serial reference above runs on the in-memory store; when
	// the case draws the out-of-core axis the systems under test run
	// on the disk-backed store with a spilling GST instead (oracle 7).
	sut := seq.Seqs(store)
	sutCfg := ccfg
	if c.StoreDisk {
		dir, err := os.MkdirTemp("", "simstore-*")
		if err != nil {
			res.failf("store oracle: store dir: %v", err)
			return res
		}
		defer os.RemoveAll(dir)
		disk, err := diskstore.Create(dir, store.Fragments(), diskstore.Options{CacheBytes: 32 << 10})
		if err != nil {
			res.failf("store oracle: create: %v", err)
			return res
		}
		defer disk.Close()
		res.checkStore(c, store, disk)
		sut = disk
		sutCfg.MemBudget = c.MemBudget
	}

	res.checkClustering(c, sut, sutCfg, want)
	res.checkGST(c, sut, sutCfg)
	res.checkPipeline(c, frags, ccfg)
	res.Wall = time.Since(start)
	return res
}

// checkStore spot-checks oracle 7's foundation: the disk store must
// serve byte-identical sequences for seed-chosen IDs across the full
// 2n range (both orientations).
func (r *Result) checkStore(c Case, mem *seq.Store, disk *diskstore.Store) {
	if disk.N() != mem.N() || disk.NumSeqs() != mem.NumSeqs() || disk.TotalBases() != mem.TotalBases() {
		r.failf("store oracle: shape mismatch: disk (%d,%d,%d) vs mem (%d,%d,%d)",
			disk.N(), disk.NumSeqs(), disk.TotalBases(), mem.N(), mem.NumSeqs(), mem.TotalBases())
		return
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x0c0c))
	for i := 0; i < 32; i++ {
		sid := rng.Intn(mem.NumSeqs())
		if string(disk.Seq(sid)) != string(mem.Seq(sid)) {
			r.failf("store oracle: sequence %d differs between disk and mem", sid)
			return
		}
		if disk.SeqName(sid) != mem.SeqName(sid) {
			r.failf("store oracle: name of sequence %d differs between disk and mem", sid)
			return
		}
	}
}

// checkClustering runs oracles 1 (partition) and 5 (trace) on one
// parallel clustering run under the case's fault plan and schedule.
func (r *Result) checkClustering(c Case, store seq.Seqs, ccfg cluster.Config, want []int) {
	machine := par.DefaultConfig(c.Ranks)
	if c.ScheduleSeed != 0 {
		machine.Schedule = &par.SchedulePlan{Seed: c.ScheduleSeed}
	}
	tracer := obs.NewTracer(c.Ranks, 1<<16)
	machine.Trace = tracer

	pcfg := cluster.DefaultParallelConfig(c.Ranks)
	pcfg.BatchSize = 16 // many reports per worker: report-indexed kills land
	pcfg.Machine = machine
	pcfg.LeaseTimeout = leaseTimeout
	if c.StoreDisk {
		// Spill sweeps at a tiny budget re-enumerate the store per
		// segment, so a healthy worker's gap between batch reports
		// grows with the segment count; widen the lease so campaign
		// load never reads as worker death.
		pcfg.LeaseTimeout = 4 * leaseTimeout
	}
	if c.FaultSpec != "" {
		plan, err := cluster.ParseFaults(c.FaultSpec)
		if err != nil {
			r.failf("generator emitted an unparsable fault spec %q: %v", c.FaultSpec, err)
			return
		}
		pcfg.Faults = plan
	}

	cres, ph, err := cluster.Parallel(store, ccfg, pcfg)
	if err != nil {
		r.failf("clustering did not complete under a survivable plan: %v", err)
		return
	}
	if got := cluster.PartitionLabels(cres); !cluster.SamePartition(got, want) {
		r.failf("partition oracle: parallel clustering diverged from the serial transitive closure (%d fragments)", len(want))
	}
	r.WorkersLost = cres.Stats.WorkersLost
	r.Retransmits = ph.GST.TotalRetransmits + ph.Cluster.TotalRetransmits

	okRank := func(rank int) bool {
		return ph.Exits == nil || ph.Exits[rank].OK
	}
	if _, err := check.Stream(tracer, okRank); err != nil {
		r.failf("trace oracle: %v", err)
	}
	r.Trace = tracer

	// Causal DAG oracle: the streams must assemble into an acyclic
	// DAG whose critical path reproduces the synchronized makespan.
	rep, err := analyze.FromTracer(tracer, analyze.Options{TopSpans: 1})
	if err != nil {
		r.failf("causal oracle: %v", err)
		return
	}
	if rep.MakespanSec > 0 {
		if diff := rep.CriticalPath.LengthSec - rep.MakespanSec; diff < -rep.MakespanSec*0.01 || diff > rep.MakespanSec*0.01 {
			r.failf("causal oracle: critical path %.9fs differs from makespan %.9fs by more than 1%%",
				rep.CriticalPath.LengthSec, rep.MakespanSec)
		}
	}
	if rep.MakespanSec < rep.RawMakespanSec-1e-9 {
		r.failf("causal oracle: synchronized makespan %.9fs below raw local makespan %.9fs",
			rep.MakespanSec, rep.RawMakespanSec)
	}
}

// checkGST runs oracle 2: a standalone fault-tolerant GST build under
// the GST-meaningful subset of the case's faults; the union of the
// survivors' forests must carry exactly the serial tree's content.
func (r *Result) checkGST(c Case, store seq.Seqs, ccfg cluster.Config) {
	spec := c.gstFaultSpec()
	machine := par.DefaultConfig(c.Ranks)
	if c.ScheduleSeed != 0 {
		machine.Schedule = &par.SchedulePlan{Seed: c.ScheduleSeed}
	}
	var crashTarget = -1
	if spec != "" {
		plan, err := cluster.ParseFaults(spec)
		if err != nil {
			r.failf("generator emitted an unparsable GST fault spec %q: %v", spec, err)
			return
		}
		machine.Faults = plan
		if len(plan.Crashes) > 0 {
			crashTarget = plan.Crashes[0].Rank
		}
	}

	locals := make([]*pgst.Local, c.Ranks)
	_, exits := par.RunStatus(machine, func(pc *par.Comm) {
		locals[pc.Rank()] = pgst.Build(pc, store, pgst.Config{
			W: ccfg.W, MinLen: ccfg.Psi, BatchBytes: 1 << 20, Seed: 7,
			FT: machine.Faults != nil,
			// Out-of-core cases build spilling forests; the union
			// oracle below sweeps them segment by segment.
			SpillBytes: ccfg.MemBudget,
		})
	})
	for rank, e := range exits {
		if !e.OK && rank != crashTarget {
			r.failf("gst oracle: rank %d died without being a crash target: %s", rank, e.Reason)
			return
		}
	}

	acc := func(sid int32) []byte { return store.Seq(int(sid)) }
	sids := make([]int32, store.NumSeqs())
	for i := range sids {
		sids[i] = int32(i)
	}
	serial := suffixtree.Build(acc, suffixtree.EnumerateSuffixes(acc, sids, ccfg.Psi), ccfg.W)
	if !pgst.UnionSignatureOf(store, locals).Equal(pgst.TreeSignature(serial)) {
		r.failf("gst oracle: union of survivor forests differs from the serial tree (spec %q)", spec)
	}
}

// checkPipeline runs oracles 3 (resume) and 4 (quarantine) on the
// serial checkpointed pipeline.
func (r *Result) checkPipeline(c Case, frags []*seq.Fragment, ccfg cluster.Config) {
	coreCfg := core.DefaultConfig()
	coreCfg.PreprocessEnabled = false // reads are synthesized clean
	coreCfg.Cluster = ccfg
	coreCfg.AssemblyWorkers = 2

	workdir, err := os.MkdirTemp("", "simcase-*")
	if err != nil {
		r.failf("resume oracle: workdir: %v", err)
		return
	}
	defer os.RemoveAll(workdir)
	flags := fmt.Sprintf("sim campaign=%d case=%d", c.Campaign, c.Index)

	ref, err := pipeline.Run(frags, pipeline.Config{Core: coreCfg, Workdir: workdir, Flags: flags})
	if err != nil {
		r.failf("resume oracle: reference run failed: %v", err)
		return
	}

	// Out-of-core cases run the resume oracle on the disk-backed
	// pipeline instead: its contigs must match the in-memory reference
	// byte for byte (oracle 7), and its rollback-resume — which reopens
	// the journaled store rather than rebuilding it — must reproduce
	// them again.
	sutCfg, sutDir := coreCfg, workdir
	if c.StoreDisk {
		sutCfg.Store = core.StoreConfig{Backend: core.StoreDisk, CacheBytes: 32 << 10}
		sutCfg.Cluster.MemBudget = c.MemBudget
		if sutDir, err = os.MkdirTemp("", "simcase-disk-*"); err != nil {
			r.failf("store oracle: workdir: %v", err)
			return
		}
		defer os.RemoveAll(sutDir)
		dres, err := pipeline.Run(frags, pipeline.Config{Core: sutCfg, Workdir: sutDir, Flags: flags})
		if err != nil {
			r.failf("store oracle: disk-backed pipeline failed: %v", err)
			return
		}
		dres.Close()
		if !sameOutput(ref, dres) {
			r.failf("store oracle: disk-backed pipeline output differs from the in-memory reference")
			return
		}
	}
	if err := pipeline.Rollback(sutDir, c.ResumePhase); err != nil {
		r.failf("resume oracle: rollback to phase %d failed: %v", c.ResumePhase, err)
		return
	}
	resumed, err := pipeline.Run(frags, pipeline.Config{Core: sutCfg, Workdir: sutDir, Resume: true, Flags: flags})
	if err != nil {
		r.failf("resume oracle: resumed run failed: %v", err)
		return
	}
	resumed.Close()
	if !sameOutput(ref, resumed) {
		r.failf("resume oracle: resume from phase boundary %d is not byte-identical", c.ResumePhase)
	}

	// Quarantine oracle: poison a seed-chosen subset of the reference
	// run's clusters and demand exactly that subset is quarantined.
	poison := poisonSet(c, len(ref.Clusters))
	qcfg := coreCfg
	qcfg.AssemblyGuard = &assembly.Guard{
		Retries: 1, Backoff: time.Millisecond,
		FailInject: func(id int) bool { return poison[id] },
	}
	qres, err := core.Run(frags, qcfg)
	if err != nil {
		r.failf("quarantine oracle: poisoned run aborted: %v", err)
		return
	}
	got := map[int]bool{}
	for _, id := range qres.Quarantined() {
		got[id] = true
	}
	r.Quarantined = len(got)
	if len(got) != len(poison) {
		r.failf("quarantine oracle: %d clusters quarantined, %d poisoned", len(got), len(poison))
		return
	}
	for id := range poison {
		if !got[id] {
			r.failf("quarantine oracle: poisoned cluster %d was not quarantined", id)
		}
	}
}

// poisonSet picks the clusters the quarantine oracle poisons — about a
// quarter of them, chosen from the case seed.
func poisonSet(c Case, clusters int) map[int]bool {
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5151))
	poison := map[int]bool{}
	for id := 0; id < clusters; id++ {
		if rng.Float64() < 0.25 {
			poison[id] = true
		}
	}
	return poison
}

// sameOutput compares two pipeline results' assembly output — contigs
// and guard outcomes — field by field.
func sameOutput(a, b *core.Result) bool {
	if len(a.Contigs) != len(b.Contigs) || len(a.AssemblyOutcomes) != len(b.AssemblyOutcomes) {
		return false
	}
	for i := range a.Contigs {
		ca, cb := a.Contigs[i], b.Contigs[i]
		if len(ca) != len(cb) {
			return false
		}
		for j := range ca {
			if string(ca[j].Bases) != string(cb[j].Bases) || ca[j].Depth != cb[j].Depth ||
				len(ca[j].Reads) != len(cb[j].Reads) {
				return false
			}
			for k := range ca[j].Reads {
				if ca[j].Reads[k] != cb[j].Reads[k] {
					return false
				}
			}
		}
	}
	for i := range a.AssemblyOutcomes {
		if a.AssemblyOutcomes[i] != b.AssemblyOutcomes[i] {
			return false
		}
	}
	return true
}
