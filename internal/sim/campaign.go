package sim

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// CampaignOptions configures a campaign run.
type CampaignOptions struct {
	// Out receives progress and failure reports; nil discards them.
	Out io.Writer
	// Verbose prints every case, not just failures.
	Verbose bool
	// Workers runs cases concurrently (default 1). Each case already
	// spins up a multi-rank machine, so a small value saturates hosts.
	Workers int
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Cases    int
	Failed   int
	Failures []Result // the failing cases, in index order

	// Explored-surface counters, summed over all cases.
	FaultCases     int
	PerturbedCases int
	DiskCases      int
	WorkersLost    int64
	Retransmits    int
	Quarantined    int
}

// Campaign runs cases 0..n-1 of the given campaign seed and collects
// every oracle failure. Failures are printed as they are found, each
// with the command line that replays it.
func Campaign(seed int64, n int, opt CampaignOptions) CampaignResult {
	out := opt.Out
	if out == nil {
		out = io.Discard
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}

	results := make([]Result, n)
	var mu sync.Mutex // serializes printing only
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res := RunCase(CaseFor(seed, i))
				results[i] = res
				mu.Lock()
				if res.Failed() {
					fmt.Fprint(out, FailureReport(res))
				} else if opt.Verbose {
					fmt.Fprintf(out, "ok   %s (%.1fs)\n", res.Case, res.Wall.Seconds())
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	cr := CampaignResult{Cases: n}
	for i := range results {
		res := &results[i]
		if res.Failed() {
			cr.Failed++
			cr.Failures = append(cr.Failures, *res)
		}
		if res.Case.FaultSpec != "" {
			cr.FaultCases++
		}
		if res.Case.ScheduleSeed != 0 {
			cr.PerturbedCases++
		}
		if res.Case.StoreDisk {
			cr.DiskCases++
		}
		cr.WorkersLost += res.WorkersLost
		cr.Retransmits += res.Retransmits
		cr.Quarantined += res.Quarantined
	}
	return cr
}

// FailureReport renders one failing case with its reproduction line.
func FailureReport(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FAIL %s\n", res.Case)
	for _, f := range res.Failures {
		fmt.Fprintf(&b, "     %s\n", f)
	}
	fmt.Fprintf(&b, "     repro: %s\n", res.Case.Repro())
	return b.String()
}

// String renders the campaign summary line recorded in EXPERIMENTS.md.
func (cr CampaignResult) String() string {
	return fmt.Sprintf("%d cases (%d with faults, %d schedule-perturbed, %d out-of-core): %d failed; %d workers lost, %d retransmits, %d clusters quarantined",
		cr.Cases, cr.FaultCases, cr.PerturbedCases, cr.DiskCases, cr.Failed,
		cr.WorkersLost, cr.Retransmits, cr.Quarantined)
}

// Shrink minimizes a failing case: it greedily drops fault-spec fields
// and the schedule perturbation while the case (as judged by fails,
// normally RunCase) keeps failing, iterating to a fixpoint. The
// returned case fails with the smallest fault surface found; the
// second return counts the candidate evaluations spent.
func Shrink(c Case, fails func(Case) bool) (Case, int) {
	evals := 0
	try := func(cand Case) bool {
		evals++
		return fails(cand)
	}
	changed := true
	for changed {
		changed = false
		// Drop one fault-spec field at a time (the trailing seed field
		// only matters while probabilistic fields remain).
		fields := splitSpec(c.FaultSpec)
		for i := 0; i < len(fields); i++ {
			if strings.HasPrefix(fields[i], "seed=") {
				continue
			}
			cand := c
			cand.FaultSpec = joinSpec(append(append([]string{}, fields[:i]...), fields[i+1:]...))
			if try(cand) {
				c = cand
				changed = true
				fields = splitSpec(c.FaultSpec)
				i = -1 // restart over the shorter spec
			}
		}
		if c.ScheduleSeed != 0 {
			cand := c
			cand.ScheduleSeed = 0
			if try(cand) {
				c = cand
				changed = true
			}
		}
	}
	return c, evals
}

// splitSpec splits a fault spec into fields; empty spec → no fields.
func splitSpec(spec string) []string {
	if spec == "" {
		return nil
	}
	return strings.Split(spec, ",")
}

// joinSpec reassembles a spec, collapsing to "" when only the seed
// field is left (a seed alone injects nothing).
func joinSpec(fields []string) string {
	onlySeed := true
	for _, f := range fields {
		if !strings.HasPrefix(f, "seed=") {
			onlySeed = false
		}
	}
	if len(fields) == 0 || onlySeed {
		return ""
	}
	return strings.Join(fields, ",")
}
