// Package sim is the deterministic simulation campaign driver: it
// runs the full pipeline (GST build → clustering → assembly) across a
// randomized matrix of machine sizes, input genomes, fault plans and
// schedule perturbations, and checks system-wide oracles against
// serial references after every run. Every case is derived entirely
// from a (campaign seed, case index) tuple, so any failure the
// campaign finds is reproducible from the tuple it prints — the
// FoundationDB-style workflow: explore randomly, replay exactly.
package sim

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// Case is one fully-specified simulation run. All fields are derived
// deterministically from (Campaign, Index) by CaseFor; the pair is the
// reproduction handle printed with every failure.
type Case struct {
	Campaign int64 // campaign seed
	Index    int   // case index within the campaign
	Seed     int64 // master seed derived from (Campaign, Index)

	// Machine and input matrix.
	Ranks        int
	GenomeLen    int
	Coverage     float64
	RepeatCopies int
	Divergence   float64

	// FaultSpec is a cluster.ParseFaults spec; empty = fault-free.
	FaultSpec string
	// ScheduleSeed perturbs message delivery and wildcard-receive
	// order (0 = default FIFO schedule).
	ScheduleSeed int64
	// ResumePhase is the phase boundary the resume oracle rolls the
	// checkpointed pipeline back to, in [0, len(pipeline.Phases)].
	ResumePhase int

	// StoreDisk runs the systems under test — parallel clustering, GST
	// build, checkpointed pipeline — over the disk-backed sequence
	// store with a spilling GST, while every serial reference stays on
	// the in-memory store: the campaign's cross-backend equivalence
	// axis.
	StoreDisk bool
	// MemBudget is the spilling GST byte budget when StoreDisk is set.
	MemBudget int64
}

// mix derives the per-case master seed with a splitmix64-style hash so
// neighbouring indices decorrelate.
func mix(campaign int64, index int) int64 {
	z := uint64(campaign) + uint64(index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// CaseFor expands a (campaign seed, case index) tuple into a concrete
// Case. The generator only produces survivable fault plans: crashes
// name worker ranks (never the master) and always leave at least one
// worker alive, so any non-completion is an oracle failure, not an
// impossible input.
func CaseFor(campaign int64, index int) Case {
	c := Case{Campaign: campaign, Index: index, Seed: mix(campaign, index)}
	rng := rand.New(rand.NewSource(c.Seed))

	c.Ranks = []int{4, 5, 6, 8}[rng.Intn(4)]
	c.GenomeLen = 3000 + rng.Intn(3001)
	c.Coverage = 2 + rng.Float64()
	c.RepeatCopies = 4 + rng.Intn(6)
	c.Divergence = 0.01 + 0.02*rng.Float64()
	if rng.Intn(10) < 7 {
		c.ScheduleSeed = rng.Int63n(1<<31) + 1
	}
	c.ResumePhase = rng.Intn(len(pipeline.Phases) + 1)

	// Two thirds of cases inject faults.
	if rng.Intn(3) > 0 {
		var parts []string
		workers := c.Ranks - 1
		crashBudget := workers - 1 // at least one worker survives
		crashed := map[int]bool{}
		if crashBudget > 0 && rng.Intn(2) == 0 {
			r := 1 + rng.Intn(workers)
			crashed[r] = true
			crashBudget--
			parts = append(parts, fmt.Sprintf("gstcrash=%d@%d", r, 1+rng.Intn(4)))
		}
		for n := rng.Intn(3); n > 0 && crashBudget > 0; n-- {
			r := 1 + rng.Intn(workers)
			if crashed[r] {
				continue
			}
			crashed[r] = true
			crashBudget--
			parts = append(parts, fmt.Sprintf("crash=%d@%d", r, 1+rng.Intn(5)))
		}
		// Drops always ride the framed retransmitting link. A raw drop
		// can falsely fire a healthy worker (its report silently lost,
		// its lease expired), and the lease protocol never re-admits a
		// fired worker — so raw drops on a crash-shrunken pool can
		// legitimately exhaust every worker, which the campaign would
		// misread as an oracle failure. The 200-case campaign found
		// exactly that before this constraint existed.
		if rng.Intn(10) < 3 {
			parts = append(parts, fmt.Sprintf("drop=%.4f", 0.002+0.008*rng.Float64()), "retransmit")
		}
		if rng.Intn(10) < 3 {
			parts = append(parts, fmt.Sprintf("corrupt=%.4f", 0.005+0.025*rng.Float64()))
		}
		if rng.Intn(10) < 2 {
			parts = append(parts,
				fmt.Sprintf("delayp=%.3f", 0.05+0.15*rng.Float64()),
				fmt.Sprintf("delay=%dms", 1+rng.Intn(5)))
		}
		if len(parts) > 0 {
			parts = append(parts, fmt.Sprintf("seed=%d", c.Seed&0x7fffffff))
			c.FaultSpec = strings.Join(parts, ",")
		}
	}

	// Out-of-core axis. New draws are appended at the end so every
	// earlier field keeps its derivation — old (campaign, index)
	// reproduction handles stay valid.
	if rng.Intn(3) == 0 {
		c.StoreDisk = true
		c.MemBudget = []int64{4 << 10, 32 << 10, 1 << 20}[rng.Intn(3)]
	}
	return c
}

// String renders the full case matrix so a failure report is
// self-describing.
func (c Case) String() string {
	faults := c.FaultSpec
	if faults == "" {
		faults = "none"
	}
	store := "mem"
	if c.StoreDisk {
		store = fmt.Sprintf("disk/%dB", c.MemBudget)
	}
	return fmt.Sprintf("case(campaign=%d index=%d): p=%d genome=%dbp cov=%.2f repeats=%dx div=%.3f faults=[%s] schedule=%d resume@%d store=%s",
		c.Campaign, c.Index, c.Ranks, c.GenomeLen, c.Coverage, c.RepeatCopies,
		c.Divergence, faults, c.ScheduleSeed, c.ResumePhase, store)
}

// Repro is the command line that replays exactly this case.
func (c Case) Repro() string {
	return fmt.Sprintf("simrunner -campaign=%d -case=%d", c.Campaign, c.Index)
}

// frags synthesizes the case's read set: a repeat-bearing genome
// sampled at the case's coverage, already preprocessed (no vector, so
// the reads enter clustering as-is).
func (c Case) frags() []*seq.Fragment {
	rng := rand.New(rand.NewSource(c.Seed))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{
		Length:  c.GenomeLen,
		Repeats: []simulate.RepeatFamily{{Length: 300, Copies: c.RepeatCopies, Divergence: c.Divergence}},
	})
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 200
	rc.LenSD = 30
	rc.VectorProb = 0
	return simulate.SampleWGS(rng, g, c.Coverage, rc, "r")
}

// gstFaultSpec filters the case's fault spec down to the fields
// meaningful for the standalone GST-build oracle run: GST-phase
// crashes and wire corruption. Report-indexed crashes never fire
// without the clustering protocol, and raw drops without the framed
// link would silently lose exchange data the FT build has no lease
// protocol to recover — that path belongs to the clustering run.
func (c Case) gstFaultSpec() string {
	if c.FaultSpec == "" {
		return ""
	}
	var keep []string
	meaningful := false
	for _, f := range strings.Split(c.FaultSpec, ",") {
		switch {
		case strings.HasPrefix(f, "gstcrash=") || strings.HasPrefix(f, "corrupt="):
			meaningful = true
			keep = append(keep, f)
		case strings.HasPrefix(f, "seed=") || f == "retransmit":
			keep = append(keep, f)
		}
	}
	if !meaningful {
		return ""
	}
	return strings.Join(keep, ",")
}
