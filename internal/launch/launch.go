// Package launch turns a single binary into a multi-process SPMD
// job. The parent process (rank 0) re-executes itself once per worker
// rank with the same argument list plus a handful of environment
// variables; each child detects those variables at startup, builds a
// socket transport from them, and runs only its own rank. Because
// every process parses the same flags, deterministic input loading
// and preprocessing reproduce the identical fragment set in each
// rank without shipping it over the wire.
package launch

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"time"

	"repro/internal/par"
	"repro/internal/par/nettrans"
)

const (
	rankEnv      = "ASM_SPMD_RANK"
	sizeEnv      = "ASM_SPMD_SIZE"
	networkEnv   = "ASM_SPMD_NETWORK"
	registryEnv  = "ASM_SPMD_REGISTRY"
	epochEnv     = "ASM_SPMD_EPOCH"
	obsEnv       = "ASM_SPMD_OBS"       // per-rank obs server listen addr ("" = off)
	collectorEnv = "ASM_SPMD_COLLECTOR" // run collector base URL
	eventsEnv    = "ASM_SPMD_EVENTS"    // events-dump base path (rank suffix added)
	traceEnv     = "ASM_SPMD_TRACE"     // Chrome-trace base path (rank suffix added)
)

// Child describes this process's role in a spawned SPMD job.
type Child struct {
	Rank     int
	Size     int
	Network  string // "tcp" or "unix"
	Registry string // rendezvous registry directory
	Epoch    uint64

	// Telemetry wiring inherited from the parent. ObsAddr is this
	// rank's own observability listen address (parents pass an
	// ephemeral ":0"-style address so every rank is individually
	// scrapeable; the rank publishes the bound address back into the
	// registry). Collector is the run collector's base URL. EventsOut
	// and TraceOut are dump-path bases the rank suffixes with its
	// rank number. All empty when the parent ran without telemetry.
	ObsAddr   string
	Collector string
	EventsOut string
	TraceOut  string
}

// Telemetry is the optional observability wiring Spawn forwards to
// every child rank through the environment.
type Telemetry struct {
	ObsAddr   string // children listen here (use "127.0.0.1:0" for per-rank ephemeral ports)
	Collector string // run collector base URL children report to
	EventsOut string // events-dump base path (children append .rank<r>)
	TraceOut  string // Chrome-trace base path (children append .rank<r>)
}

// env renders the telemetry wiring as environment entries.
func (t Telemetry) env() []string {
	var out []string
	if t.ObsAddr != "" {
		out = append(out, obsEnv+"="+t.ObsAddr)
	}
	if t.Collector != "" {
		out = append(out, collectorEnv+"="+t.Collector)
	}
	if t.EventsOut != "" {
		out = append(out, eventsEnv+"="+t.EventsOut)
	}
	if t.TraceOut != "" {
		out = append(out, traceEnv+"="+t.TraceOut)
	}
	return out
}

// FromEnv reports whether this process was re-executed as a worker
// rank, and with what parameters.
func FromEnv() (Child, bool, error) {
	rs := os.Getenv(rankEnv)
	if rs == "" {
		return Child{}, false, nil
	}
	var c Child
	var err error
	if c.Rank, err = strconv.Atoi(rs); err != nil {
		return Child{}, false, fmt.Errorf("launch: bad %s=%q", rankEnv, rs)
	}
	if c.Size, err = strconv.Atoi(os.Getenv(sizeEnv)); err != nil {
		return Child{}, false, fmt.Errorf("launch: bad %s=%q", sizeEnv, os.Getenv(sizeEnv))
	}
	if c.Epoch, err = strconv.ParseUint(os.Getenv(epochEnv), 10, 64); err != nil {
		return Child{}, false, fmt.Errorf("launch: bad %s=%q", epochEnv, os.Getenv(epochEnv))
	}
	c.Network = os.Getenv(networkEnv)
	c.Registry = os.Getenv(registryEnv)
	if c.Registry == "" {
		return Child{}, false, fmt.Errorf("launch: %s set but %s empty", rankEnv, registryEnv)
	}
	c.ObsAddr = os.Getenv(obsEnv)
	c.Collector = os.Getenv(collectorEnv)
	c.EventsOut = os.Getenv(eventsEnv)
	c.TraceOut = os.Getenv(traceEnv)
	if c.Rank < 1 || c.Rank >= c.Size {
		return Child{}, false, fmt.Errorf("launch: child rank %d out of range for size %d", c.Rank, c.Size)
	}
	return c, true, nil
}

// Transport builds this rank's socket endpoint. Liveness ≤ 0 keeps
// the nettrans default.
func (c Child) Transport(liveness time.Duration) (par.Transport, error) {
	return NewTransport(c.Rank, c.Size, c.Network, c.Registry, c.Epoch, liveness)
}

// NewTransport builds a nettrans endpoint for one rank of a job.
func NewTransport(rank, size int, network, registry string, epoch uint64, liveness time.Duration) (par.Transport, error) {
	cfg := nettrans.Config{
		Rank:        rank,
		Size:        size,
		Network:     network,
		RegistryDir: registry,
		Epoch:       epoch,
	}
	if liveness > 0 {
		cfg.Liveness = liveness
	}
	return nettrans.New(cfg)
}

// Fleet is the set of worker-rank processes spawned by rank 0.
type Fleet struct {
	procs map[int]*exec.Cmd
}

// Spawn re-executes the current binary as ranks 1..size-1 of a job
// rooted at this process (which becomes rank 0). Children inherit
// the parent's arguments verbatim; their stdout is redirected to the
// parent's stderr so rank 0 alone owns the job's stdout. An optional
// Telemetry argument forwards observability wiring to every child.
func Spawn(size int, network, registry string, epoch uint64, tel ...Telemetry) (*Fleet, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("launch: resolve executable: %w", err)
	}
	var telEnv []string
	for _, t := range tel {
		telEnv = append(telEnv, t.env()...)
	}
	f := &Fleet{procs: make(map[int]*exec.Cmd)}
	for r := 1; r < size; r++ {
		cmd := exec.Command(exe, os.Args[1:]...)
		cmd.Env = append(os.Environ(),
			rankEnv+"="+strconv.Itoa(r),
			sizeEnv+"="+strconv.Itoa(size),
			networkEnv+"="+network,
			registryEnv+"="+registry,
			epochEnv+"="+strconv.FormatUint(epoch, 10),
		)
		cmd.Env = append(cmd.Env, telEnv...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			f.KillAll()
			return nil, fmt.Errorf("launch: spawn rank %d: %w", r, err)
		}
		f.procs[r] = cmd
	}
	return f, nil
}

// Kill delivers SIGKILL to one worker rank — the failure-injection
// primitive for conformance tests (a killed process cannot flush,
// drain, or say goodbye).
func (f *Fleet) Kill(rank int) error {
	cmd, ok := f.procs[rank]
	if !ok {
		return fmt.Errorf("launch: no spawned process for rank %d", rank)
	}
	return cmd.Process.Signal(syscall.SIGKILL)
}

// KillAll forcibly terminates every spawned rank (cleanup path).
func (f *Fleet) KillAll() {
	for _, cmd := range f.procs {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
}

// Wait reaps every spawned rank and returns the per-rank exit error
// (nil for a clean exit). It must be called exactly once.
func (f *Fleet) Wait() map[int]error {
	out := make(map[int]error, len(f.procs))
	for r, cmd := range f.procs {
		out[r] = cmd.Wait()
	}
	return out
}

// Epoch derives a job epoch from the wall clock. Epochs distinguish
// concurrent or successive jobs sharing a registry directory; they
// need only be unique per registry, not globally.
func Epoch() uint64 {
	return uint64(time.Now().UnixNano())
}

// SelfExec builds (without starting) a command that re-executes the
// current binary with the given arguments and extra environment
// entries appended to the inherited environment. It is the common
// primitive behind SPMD rank spawning and the job service's
// supervised runner processes.
func SelfExec(extraEnv []string, args ...string) (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("launch: resolve executable: %w", err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), extraEnv...)
	return cmd, nil
}
