package launch

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/obs/collector"
	"repro/internal/par/nettrans"
)

// CollectorService is the rendezvous-registry service name under which
// a run's collector base URL is published, so asmtop (and late-joining
// workers) can discover the collector from the registry directory
// alone.
const CollectorService = "collector"

// RankObsService is the registry service name under which rank r's own
// observability server address is published. With per-rank ephemeral
// ports the registry is the only place the bound address exists.
func RankObsService(r int) string { return fmt.Sprintf("obs-rank-%d", r) }

// StartCollector starts the run-scoped telemetry collector listening
// on addr, publishes its base URL into the rendezvous registry (when
// registry is non-empty), and returns the collector, its HTTP server,
// and the URL. The caller owns the server; close it only after every
// rank's final flush has landed (i.e. after Fleet.Wait).
func StartCollector(cfg collector.Config, addr, registry string, epoch uint64) (*collector.Collector, *obs.Server, string, error) {
	col := collector.New(cfg)
	srv, err := col.Serve(addr)
	if err != nil {
		return nil, nil, "", err
	}
	url := "http://" + srv.Addr
	if registry != "" {
		if err := nettrans.PublishService(registry, CollectorService, url, epoch); err != nil {
			srv.Close()
			return nil, nil, "", fmt.Errorf("launch: publish collector: %w", err)
		}
	}
	return col, srv, url, nil
}

// ServeRankObs starts one rank's own observability server and, when a
// registry directory is given, publishes the bound address so the
// rank is individually scrapeable even behind an ephemeral port.
func ServeRankObs(addr string, rank int, reg *obs.Registry, tr *obs.Tracer, registry string, epoch uint64, extra ...obs.Endpoint) (*obs.Server, error) {
	srv, err := obs.Serve(addr, reg, tr, extra...)
	if err != nil {
		return nil, err
	}
	if registry != "" {
		if err := nettrans.PublishService(registry, RankObsService(rank), "http://"+srv.Addr, epoch); err != nil {
			srv.Close()
			return nil, fmt.Errorf("launch: publish rank obs: %w", err)
		}
	}
	return srv, nil
}

// AllRanks returns [0..size), the Covers list for an in-process run
// whose single tracer spans every rank.
func AllRanks(size int) []int {
	out := make([]int, size)
	for i := range out {
		out[i] = i
	}
	return out
}
