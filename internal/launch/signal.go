package launch

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// OnSignal installs a SIGINT/SIGTERM handler that runs cleanup once
// and then exits with the conventional 128+signal status. It gives
// the command-line tools a graceful shutdown path: flush trace/event
// dumps, deliver the reporter's final flush, and drain the
// observability servers instead of dying with partial files.
//
// The handler runs in its own goroutine; cleanup must therefore only
// touch state that is safe to read concurrently with the main run
// (tracer dumps, reporter Close and server Shutdown all are). A
// second signal during cleanup kills the process immediately — an
// operator mashing Ctrl-C is asking to leave now.
func OnSignal(cleanup func(sig os.Signal)) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		fmt.Fprintf(os.Stderr, "\n%s: shutting down (flushing telemetry)...\n", sig)
		done := make(chan struct{})
		go func() {
			cleanup(sig)
			close(done)
		}()
		select {
		case <-done:
		case again := <-ch:
			fmt.Fprintf(os.Stderr, "%s again: exiting immediately\n", again)
		}
		code := 128 + 15 // SIGTERM
		if sig == os.Interrupt {
			code = 128 + 2
		}
		os.Exit(code)
	}()
}
