package launch

import (
	"testing"
	"time"

	"repro/internal/obs/collector"
	"repro/internal/par/nettrans"
)

// setJobEnv populates the SPMD child environment the way Spawn does,
// with t.Setenv so the test runner restores it.
func setJobEnv(t *testing.T, kv map[string]string) {
	t.Helper()
	for _, k := range []string{rankEnv, sizeEnv, networkEnv, registryEnv, epochEnv, obsEnv, collectorEnv, eventsEnv, traceEnv} {
		t.Setenv(k, kv[k])
	}
}

func TestFromEnvTelemetryRoundTrip(t *testing.T) {
	tel := Telemetry{
		ObsAddr:   "127.0.0.1:0",
		Collector: "http://127.0.0.1:9090",
		EventsOut: "/tmp/ev.json",
		TraceOut:  "/tmp/trace.json",
	}
	kv := map[string]string{
		rankEnv: "2", sizeEnv: "4", networkEnv: "tcp",
		registryEnv: "/tmp/reg", epochEnv: "17",
	}
	for _, e := range tel.env() {
		for i := 0; i < len(e); i++ {
			if e[i] == '=' {
				kv[e[:i]] = e[i+1:]
				break
			}
		}
	}
	setJobEnv(t, kv)

	c, ok, err := FromEnv()
	if err != nil || !ok {
		t.Fatalf("FromEnv = %v, %v", ok, err)
	}
	if c.Rank != 2 || c.Size != 4 || c.Network != "tcp" || c.Registry != "/tmp/reg" || c.Epoch != 17 {
		t.Fatalf("job fields mangled: %+v", c)
	}
	if c.ObsAddr != tel.ObsAddr || c.Collector != tel.Collector ||
		c.EventsOut != tel.EventsOut || c.TraceOut != tel.TraceOut {
		t.Fatalf("telemetry fields mangled: %+v", c)
	}
}

func TestFromEnvNotAChild(t *testing.T) {
	setJobEnv(t, nil)
	if _, ok, err := FromEnv(); ok || err != nil {
		t.Fatalf("empty env should mean not-a-child, got ok=%v err=%v", ok, err)
	}
}

func TestFromEnvRejectsBadRank(t *testing.T) {
	setJobEnv(t, map[string]string{
		rankEnv: "7", sizeEnv: "4", networkEnv: "tcp",
		registryEnv: "/tmp/reg", epochEnv: "1",
	})
	if _, _, err := FromEnv(); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

// TestCollectorRegistryDiscovery: StartCollector publishes its bound
// address as the "collector" service, the same rendezvous asmtop's
// -registry flag resolves.
func TestCollectorRegistryDiscovery(t *testing.T) {
	dir := t.TempDir()
	_, srv, url, err := StartCollector(collector.Config{Ranks: 2, Job: "launch-test"}, "127.0.0.1:0", dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got, err := nettrans.WaitService(dir, CollectorService, 0, time.Now().Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got != url {
		t.Fatalf("registry names %q, StartCollector returned %q", got, url)
	}
}
