package preprocess

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/simulate"
)

func goodQuals(n int) []byte {
	q := make([]byte, n)
	for i := range q {
		q[i] = 40
	}
	return q
}

func randBases(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seq.Base(rng.Intn(4))
	}
	return b
}

func TestMottKeepsGoodCore(t *testing.T) {
	// 20 awful bases, 200 good, 30 awful.
	quals := append(append(make([]byte, 0, 250), bytesOf(3, 20)...), goodQuals(200)...)
	quals = append(quals, bytesOf(3, 30)...)
	lo, hi := mott(quals, 0.02)
	if lo > 22 || lo < 18 {
		t.Errorf("lo = %d, want ≈20", lo)
	}
	if hi < 218 || hi > 222 {
		t.Errorf("hi = %d, want ≈220", hi)
	}
}

func bytesOf(v byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = v
	}
	return b
}

func TestMottAllBad(t *testing.T) {
	lo, hi := mott(bytesOf(2, 100), 0.02)
	if hi-lo > 5 {
		t.Errorf("kept %d bases of garbage", hi-lo)
	}
}

func TestTrimInvalidatesShort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := &seq.Fragment{Bases: randBases(rng, 60), Qual: goodQuals(60)}
	if _, ok := Trim(f, TrimConfig{MinLen: 100}); ok {
		t.Error("short fragment must be invalidated")
	}
}

func TestTrimRemovesVector(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vector := []byte("GGCCGCTCTAGAACTAGTGGATCCCCCGGGCTGCAGGAATTC")
	insert := randBases(rng, 300)
	read := append(append([]byte{}, vector[10:]...), insert...)
	f := &seq.Fragment{Bases: read, Qual: goodQuals(len(read))}
	out, ok := Trim(f, TrimConfig{MinLen: 100, Vector: vector})
	if !ok {
		t.Fatal("fragment invalidated")
	}
	if len(out.Bases) > len(insert)+4 {
		t.Errorf("vector not removed: %d bases remain of %d insert", len(out.Bases), len(insert))
	}
	// The surviving sequence must be a substring of the insert.
	if !contains(insert, out.Bases) {
		t.Error("trimmed output is not an insert substring")
	}
}

func contains(hay, needle []byte) bool {
	if len(needle) == 0 {
		return true
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		ok := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestTrimOutputIsSubstringOfInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rc := simulate.DefaultReadConfig()
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{Length: 50000})
	reads := simulate.SampleWGS(rng, g, 2.0, rc, "r")
	kept := 0
	for _, f := range reads {
		out, ok := Trim(f, DefaultTrimConfig())
		if !ok {
			continue
		}
		kept++
		if !contains(f.Bases, out.Bases) {
			t.Fatal("trim output not a substring of input")
		}
		if out.Qual != nil && len(out.Qual) != len(out.Bases) {
			t.Fatal("qual length mismatch after trim")
		}
	}
	if kept < len(reads)/2 {
		t.Errorf("only %d/%d reads survive default trimming", kept, len(reads))
	}
}

func TestDetectRepeatsFindsPlantedFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{
		Length:  120000,
		Repeats: []simulate.RepeatFamily{{Length: 600, Copies: 60, Divergence: 0.01}},
	})
	rc := simulate.DefaultReadConfig()
	rc.VectorProb = 0
	reads := simulate.SampleWGS(rng, g, 3.0, rc, "r")
	sample := Sample(rng, reads, 0.3)
	db := DetectRepeats(sample, 16, 6)
	if db.Size() == 0 {
		t.Fatal("no repeat k-mers detected")
	}

	// Masking a repeat-heavy read should mask a lot; a unique-region
	// read should stay mostly intact.
	repeatRead := append([]byte(nil), g.Seq[g.Repeats[0].Span.Start:g.Repeats[0].Span.End]...)
	masked := db.Mask(repeatRead)
	if float64(masked)/float64(len(repeatRead)) < 0.5 {
		t.Errorf("repeat copy only %d/%d masked", masked, len(repeatRead))
	}
}

func TestMaskLeavesUniqueSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	unique := randBases(rng, 500)
	db := NewRepeatDBFromSeqs([][]byte{randBases(rng, 300)}, 16)
	cp := append([]byte(nil), unique...)
	masked := db.Mask(cp)
	if masked > 16 {
		t.Errorf("masked %d bases of unrelated sequence", masked)
	}
	for i := range cp {
		if cp[i] != unique[i] && cp[i] != seq.Masked {
			t.Fatal("mask altered an unmasked character")
		}
	}
}

func TestMaskBothStrands(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	repeat := randBases(rng, 100)
	db := NewRepeatDBFromSeqs([][]byte{repeat}, 16)
	fwd := append([]byte(nil), repeat...)
	rcv := seq.ReverseComplement(repeat)
	if db.Mask(fwd) < 80 {
		t.Error("forward strand not masked")
	}
	if db.Mask(rcv) < 80 {
		t.Error("reverse strand not masked (canonical k-mers should catch it)")
	}
}

// TestRunTable2Shape reproduces the qualitative Table 2 result: WGS
// fragments from a repeat-rich genome lose most of their number to
// repeat masking, while island-biased (gene-enriched) fragments mostly
// survive.
func TestRunTable2Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := simulate.MaizeLike(rng, 120000)

	// Known-repeat database from the planted repeat spans.
	var repSeqs [][]byte
	for _, r := range m.Genome.Repeats {
		repSeqs = append(repSeqs, m.Genome.Seq[r.Span.Start:r.Span.End])
	}
	db := NewRepeatDBFromSeqs(repSeqs, 16)

	cfg := Config{Trim: DefaultTrimConfig(), Repeats: db}
	cfg.Trim.Vector = simulate.DefaultReadConfig().Vector

	_, wgsStats := Run(m.WGS, cfg)
	_, mfStats := Run(m.MF, cfg)

	if wgsStats.SurvivalRate() > 0.65 {
		t.Errorf("WGS survival %.2f too high for a 70%%-repeat genome", wgsStats.SurvivalRate())
	}
	if mfStats.SurvivalRate() < 0.55 {
		t.Errorf("MF survival %.2f too low for island-biased reads", mfStats.SurvivalRate())
	}
	if mfStats.SurvivalRate() <= wgsStats.SurvivalRate() {
		t.Errorf("enriched survival %.2f not above shotgun %.2f",
			mfStats.SurvivalRate(), wgsStats.SurvivalRate())
	}
	if wgsStats.FragsBefore != len(m.WGS) || wgsStats.FragsAfter+wgsStats.Trimmed+wgsStats.Repetitive != wgsStats.FragsBefore {
		t.Errorf("stats don't add up: %+v", wgsStats)
	}
}

func TestRunKeepsMaskedBases(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	repeat := randBases(rng, 200)
	db := NewRepeatDBFromSeqs([][]byte{repeat}, 16)
	read := append(append(append([]byte{}, randBases(rng, 200)...), repeat...), randBases(rng, 200)...)
	f := &seq.Fragment{Name: "x", Bases: read, Qual: goodQuals(len(read))}
	out, st := Run([]*seq.Fragment{f}, Config{Trim: DefaultTrimConfig(), Repeats: db})
	if len(out) != 1 {
		t.Fatalf("fragment dropped: %+v", st)
	}
	if st.MaskedBases < 150 {
		t.Errorf("masked %d bases, want ≈200", st.MaskedBases)
	}
	frac := seq.MaskedFraction(out[0].Bases)
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("masked fraction %.2f", frac)
	}
}
