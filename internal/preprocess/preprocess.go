// Package preprocess implements the paper's preprocessing stage
// (Section 8, Fig. 1): quality trimming and vector screening (the role
// Lucy plays for real traces), statistical repeat detection from a
// small random read sample (exactly the Section 9.1 method), and
// repeat masking. Fragments that lose too much sequence are
// invalidated, reproducing the Table 2 before/after accounting where
// shotgun fragments lose 60–65 % to repeats while gene-enriched
// fragments mostly survive.
package preprocess

import (
	"math"
	"math/rand"

	"repro/internal/seq"
)

// TrimConfig parameterizes quality and vector trimming.
type TrimConfig struct {
	// ErrCutoff is the per-base error probability above which bases
	// count against a region (Mott trimming threshold).
	ErrCutoff float64
	// MinLen invalidates fragments shorter than this after trimming.
	MinLen int
	// Vector enables vector screening at both read ends when non-nil.
	Vector []byte
	// VectorK is the seed length for vector matching (default 12).
	VectorK int
	// VectorZone is how deep into each end vector is searched
	// (default 100).
	VectorZone int
}

// DefaultTrimConfig returns Lucy-like settings.
func DefaultTrimConfig() TrimConfig {
	return TrimConfig{ErrCutoff: 0.02, MinLen: 100, VectorK: 12, VectorZone: 100}
}

func (c TrimConfig) withDefaults() TrimConfig {
	if c.ErrCutoff == 0 {
		c.ErrCutoff = 0.02
	}
	if c.MinLen == 0 {
		c.MinLen = 100
	}
	if c.VectorK == 0 {
		c.VectorK = 12
	}
	if c.VectorZone == 0 {
		c.VectorZone = 100
	}
	return c
}

// Trim quality-trims and vector-screens one fragment, returning the
// trimmed fragment and whether it survives (false = invalidated).
// The input fragment is not modified.
func Trim(f *seq.Fragment, cfg TrimConfig) (*seq.Fragment, bool) {
	cfg = cfg.withDefaults()
	lo, hi := 0, len(f.Bases)

	// Vector screening: advance lo past vector hits near the start,
	// retreat hi past hits near the end.
	if len(cfg.Vector) >= cfg.VectorK {
		vecKmers := make(map[seq.Kmer]bool)
		seq.EachKmer(cfg.Vector, cfg.VectorK, func(pos int, km seq.Kmer) {
			vecKmers[seq.CanonicalKmer(km, cfg.VectorK)] = true
		})
		zone := cfg.VectorZone
		if zone > len(f.Bases) {
			zone = len(f.Bases)
		}
		seq.EachKmer(f.Bases[:zone], cfg.VectorK, func(pos int, km seq.Kmer) {
			if vecKmers[seq.CanonicalKmer(km, cfg.VectorK)] {
				if end := pos + cfg.VectorK; end > lo {
					lo = end
				}
			}
		})
		tail := len(f.Bases) - zone
		if tail < 0 {
			tail = 0
		}
		seq.EachKmer(f.Bases[tail:], cfg.VectorK, func(pos int, km seq.Kmer) {
			if vecKmers[seq.CanonicalKmer(km, cfg.VectorK)] {
				if start := tail + pos; start < hi {
					hi = start
				}
			}
		})
	}
	if lo >= hi {
		return nil, false
	}

	// Mott quality trimming: maximum-sum segment of
	// (cutoff − p_error) over the vector-free region.
	if f.Qual != nil {
		bestLo, bestHi := mott(f.Qual[lo:hi], cfg.ErrCutoff)
		bestLo, bestHi = lo+bestLo, lo+bestHi
		lo, hi = bestLo, bestHi
	}
	if hi-lo < cfg.MinLen {
		return nil, false
	}

	out := &seq.Fragment{
		Name:   f.Name,
		Bases:  append([]byte(nil), f.Bases[lo:hi]...),
		Origin: f.Origin,
	}
	if f.Qual != nil {
		out.Qual = append([]byte(nil), f.Qual[lo:hi]...)
	}
	return out, true
}

// mott returns the maximum-sum segment [lo,hi) of cutoff − p(q_i),
// Richard Mott's trimming algorithm as used by phred and Lucy.
func mott(quals []byte, cutoff float64) (lo, hi int) {
	bestSum, sum := 0.0, 0.0
	start := 0
	for i, q := range quals {
		p := math.Pow(10, -float64(q)/10)
		sum += cutoff - p
		if sum <= 0 {
			sum = 0
			start = i + 1
			continue
		}
		if sum > bestSum {
			bestSum = sum
			lo, hi = start, i+1
		}
	}
	return lo, hi
}

// RepeatDB is a set of repeat-associated canonical k-mers.
type RepeatDB struct {
	K     int
	kmers map[seq.Kmer]struct{}
}

// Size returns the number of repeat k-mers.
func (db *RepeatDB) Size() int { return len(db.kmers) }

// Contains reports whether a canonical k-mer is in the database.
func (db *RepeatDB) Contains(km seq.Kmer) bool {
	_, ok := db.kmers[km]
	return ok
}

// DetectRepeats builds a repeat database by statistical
// over-representation in a read sample: every canonical k-mer
// occurring at least minCount times is deemed repeat-derived
// (Section 9.1: 0.1× of the reads predicted 5407 high-copy sequences).
func DetectRepeats(sample []*seq.Fragment, k, minCount int) *RepeatDB {
	counts := make(map[seq.Kmer]int32)
	for _, f := range sample {
		seq.EachKmer(f.Bases, k, func(pos int, km seq.Kmer) {
			counts[seq.CanonicalKmer(km, k)]++
		})
	}
	db := &RepeatDB{K: k, kmers: make(map[seq.Kmer]struct{})}
	for km, c := range counts {
		if int(c) >= minCount {
			db.kmers[km] = struct{}{}
		}
	}
	return db
}

// NewRepeatDBFromSeqs builds a database of known repeats from their
// sequences (the paper's curated maize repeat database).
func NewRepeatDBFromSeqs(repeats [][]byte, k int) *RepeatDB {
	db := &RepeatDB{K: k, kmers: make(map[seq.Kmer]struct{})}
	for _, r := range repeats {
		seq.EachKmer(r, k, func(pos int, km seq.Kmer) {
			db.kmers[seq.CanonicalKmer(km, k)] = struct{}{}
		})
	}
	return db
}

// Sample returns roughly fraction of the fragments, chosen uniformly.
func Sample(rng *rand.Rand, frags []*seq.Fragment, fraction float64) []*seq.Fragment {
	var out []*seq.Fragment
	for _, f := range frags {
		if rng.Float64() < fraction {
			out = append(out, f)
		}
	}
	return out
}

// SampleToCoverage samples fragments so the sample totals roughly
// targetBases — the paper draws a fixed 0.1× coverage sample for
// statistical repeat detection (Section 9.1), independent of how deep
// the full read set is. The detection threshold then discriminates
// high-copy sequence from the sample's low unique-coverage background.
func SampleToCoverage(rng *rand.Rand, frags []*seq.Fragment, targetBases int) []*seq.Fragment {
	total := 0
	for _, f := range frags {
		total += len(f.Bases)
	}
	if total == 0 {
		return nil
	}
	fraction := float64(targetBases) / float64(total)
	if fraction >= 1 {
		return frags
	}
	return Sample(rng, frags, fraction)
}

// Mask replaces every position of bases covered by a repeat k-mer with
// seq.Masked, in place, and returns the number of masked positions.
func (db *RepeatDB) Mask(bases []byte) int {
	if db == nil || len(db.kmers) == 0 {
		return 0
	}
	cover := make([]bool, len(bases))
	seq.EachKmer(bases, db.K, func(pos int, km seq.Kmer) {
		if db.Contains(seq.CanonicalKmer(km, db.K)) {
			for i := pos; i < pos+db.K; i++ {
				cover[i] = true
			}
		}
	})
	n := 0
	for i, c := range cover {
		if c {
			bases[i] = seq.Masked
			n++
		}
	}
	return n
}

// Config drives the full preprocessing pipeline.
type Config struct {
	Trim TrimConfig
	// Repeats masks fragments when non-nil.
	Repeats *RepeatDB
	// MinUnmasked invalidates fragments with fewer usable bases after
	// masking (default: Trim.MinLen).
	MinUnmasked int
}

// Stats summarizes one preprocessing run (one row of Table 2).
type Stats struct {
	FragsBefore int
	BasesBefore int
	FragsAfter  int
	BasesAfter  int
	Trimmed     int // invalidated by trimming / vector / length
	Repetitive  int // invalidated by excessive masking
	MaskedBases int
}

// SurvivalRate returns the fraction of fragments that survive.
func (s Stats) SurvivalRate() float64 {
	if s.FragsBefore == 0 {
		return 0
	}
	return float64(s.FragsAfter) / float64(s.FragsBefore)
}

// Run preprocesses fragments: trim, screen, mask, and invalidate.
// Survivors keep their masked bases ('N') so downstream overlap
// detection treats repeats appropriately.
func Run(frags []*seq.Fragment, cfg Config) ([]*seq.Fragment, Stats) {
	cfg.Trim = cfg.Trim.withDefaults()
	if cfg.MinUnmasked == 0 {
		cfg.MinUnmasked = cfg.Trim.MinLen
	}
	var st Stats
	var out []*seq.Fragment
	for _, f := range frags {
		st.FragsBefore++
		st.BasesBefore += len(f.Bases)
		t, ok := Trim(f, cfg.Trim)
		if !ok {
			st.Trimmed++
			continue
		}
		if cfg.Repeats != nil {
			st.MaskedBases += cfg.Repeats.Mask(t.Bases)
		}
		if seq.CountUnmasked(t.Bases) < cfg.MinUnmasked {
			st.Repetitive++
			continue
		}
		st.FragsAfter++
		st.BasesAfter += len(t.Bases)
		out = append(out, t)
	}
	return out, st
}
