package suffixtree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

// storeAccess adapts a seq.Store to the Access interface.
func storeAccess(st *seq.Store) Access {
	return func(sid int32) []byte { return st.Seq(int(sid)) }
}

func allSids(st *seq.Store) []int32 {
	sids := make([]int32, st.NumSeqs())
	for i := range sids {
		sids[i] = int32(i)
	}
	return sids
}

func buildStore(bases ...string) *seq.Store {
	frags := make([]*seq.Fragment, len(bases))
	for i, b := range bases {
		frags[i] = &seq.Fragment{Name: fmt.Sprintf("f%d", i), Bases: []byte(b)}
	}
	return seq.NewStore(frags)
}

func randomStore(rng *rand.Rand, n, minLen, maxLen int, maskProb float64) *seq.Store {
	frags := make([]*seq.Fragment, n)
	for i := range frags {
		l := minLen + rng.Intn(maxLen-minLen+1)
		b := make([]byte, l)
		for j := range b {
			if rng.Float64() < maskProb {
				b[j] = seq.Masked
			} else {
				b[j] = seq.Base(rng.Intn(4))
			}
		}
		frags[i] = &seq.Fragment{Name: fmt.Sprintf("r%d", i), Bases: b}
	}
	return seq.NewStore(frags)
}

// lcp computes the longest common prefix of two suffixes under masking
// semantics: comparison stops at any masked byte.
func lcp(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] && seq.IsBase(a[n]) {
		n++
	}
	return n
}

func TestEnumerateSuffixes(t *testing.T) {
	st := buildStore("ACGT")
	sufs := EnumerateSuffixes(storeAccess(st), []int32{0}, 2)
	// Suffixes of length ≥ 2: positions 0..2.
	if len(sufs) != 3 {
		t.Fatalf("got %d suffixes", len(sufs))
	}
	if sufs[0].Prev != PrevNone {
		t.Error("first suffix must be λ class")
	}
	if sufs[1].Prev != int8(seq.Code('A')) || sufs[2].Prev != int8(seq.Code('C')) {
		t.Errorf("prev classes: %d %d", sufs[1].Prev, sufs[2].Prev)
	}
}

func TestEnumerateSuffixesMaskedPrev(t *testing.T) {
	st := buildStore("ANGTC")
	sufs := EnumerateSuffixes(storeAccess(st), []int32{0}, 1)
	// Suffix at pos 2 (G...) is preceded by N → λ class.
	for _, sf := range sufs {
		if sf.Pos == 2 && sf.Prev != PrevNone {
			t.Errorf("masked prev should be λ, got %d", sf.Prev)
		}
	}
}

func TestBuildDropsInvalidWindows(t *testing.T) {
	st := buildStore("ACNGT")
	// w=3: windows at 0 (ACN) and 1 (CNG), 2 (NGT) invalid; no valid
	// window on the forward strand except... none. RC = ACNGT→ACNGT rc
	// is ACNGT reversed-complemented: "ACNGT" → rc "ACNGT"? compute:
	// complement of TGNCA... rc("ACNGT") = "ACNGT" reversed = TGNCA →
	// complement... rc = "ACNGT" → reverse "TGNCA" → complement each of
	// original reversed: rc[i] = comp(s[n-1-i]): comp(T)=A, comp(G)=C,
	// comp(N)=N, comp(C)=G, comp(A)=T → "ACNGT". Also no valid window.
	sufs := EnumerateSuffixes(storeAccess(st), allSids(st), 3)
	tree := Build(storeAccess(st), sufs, 3)
	if len(tree.Roots) != 0 || tree.NumNodes() != 0 {
		t.Errorf("expected empty forest, got %d roots %d nodes", len(tree.Roots), tree.NumNodes())
	}
}

func TestEverySuffixInExactlyOneLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	st := randomStore(rng, 8, 30, 60, 0.03)
	w := 4
	acc := storeAccess(st)
	sufs := EnumerateSuffixes(acc, allSids(st), w)
	tree := Build(acc, sufs, w)

	want := make(map[[2]int32]bool)
	for _, sf := range sufs {
		if _, ok := BucketKey(acc(sf.Sid), int(sf.Pos), w); ok {
			want[[2]int32{sf.Sid, sf.Pos}] = true
		}
	}
	got := make(map[[2]int32]int)
	for i := range tree.Nodes {
		u := int32(i)
		if !tree.IsLeaf(u) {
			continue
		}
		for _, sf := range tree.LeafSuffixes(u) {
			got[[2]int32{sf.Sid, sf.Pos}]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("leaf suffixes %d != bucketed suffixes %d", len(got), len(want))
	}
	for k, c := range got {
		if c != 1 {
			t.Fatalf("suffix %v appears in %d leaves", k, c)
		}
		if !want[k] {
			t.Fatalf("unexpected suffix %v in tree", k)
		}
	}
}

func checkStructure(t *testing.T, tree *Tree, acc Access) {
	t.Helper()
	for i := range tree.Nodes {
		u := int32(i)
		n := &tree.Nodes[u]
		if n.Parent != NoNode {
			p := &tree.Nodes[n.Parent]
			if n.Depth < p.Depth {
				t.Fatalf("node %d depth %d < parent depth %d", u, n.Depth, p.Depth)
			}
			if !tree.IsLeaf(u) && n.Depth <= p.Depth {
				t.Fatalf("internal node %d depth %d ≤ parent depth %d", u, n.Depth, p.Depth)
			}
		}
		if int(n.Depth) < tree.W {
			t.Fatalf("node %d depth %d below bucket prefix %d", u, n.Depth, tree.W)
		}
		if !tree.IsLeaf(u) {
			// Internal nodes have ≥ 2 children and own no suffixes.
			kids := 0
			tree.Children(u, func(int32) { kids++ })
			if kids < 2 {
				t.Fatalf("internal node %d has %d children", u, kids)
			}
			if n.SufStart != -1 {
				t.Fatalf("internal node %d owns suffixes", u)
			}
		} else {
			sufs := tree.LeafSuffixes(u)
			if len(sufs) == 0 {
				t.Fatalf("leaf %d has no suffixes", u)
			}
			// All suffixes in a leaf share an unmasked prefix of the
			// leaf's depth.
			first := acc(sufs[0].Sid)[sufs[0].Pos:]
			for _, sf := range sufs[1:] {
				s := acc(sf.Sid)[sf.Pos:]
				if lcp(first, s) < int(n.Depth) {
					t.Fatalf("leaf %d: suffixes do not share depth-%d prefix", u, n.Depth)
				}
			}
		}
	}
}

func TestStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		st := randomStore(rng, 4+rng.Intn(8), 20, 80, []float64{0, 0.05}[trial%2])
		w := 3 + rng.Intn(3)
		acc := storeAccess(st)
		sufs := EnumerateSuffixes(acc, allSids(st), w)
		tree := Build(acc, sufs, w)
		checkStructure(t, tree, acc)
	}
}

// TestLCADepthEqualsLCP is the key semantic check: for any two suffixes
// in the same bucket subtree, the string-depth of their lowest common
// ancestor equals their longest common (unmasked) prefix.
func TestLCADepthEqualsLCP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	st := randomStore(rng, 6, 25, 50, 0.02)
	w := 3
	acc := storeAccess(st)
	sufs := EnumerateSuffixes(acc, allSids(st), w)
	tree := Build(acc, sufs, w)

	// Locate each suffix's leaf and root.
	type loc struct {
		leaf int32
		suf  Suffix
	}
	var locs []loc
	for i := range tree.Nodes {
		u := int32(i)
		if tree.IsLeaf(u) {
			for _, sf := range tree.LeafSuffixes(u) {
				locs = append(locs, loc{u, sf})
			}
		}
	}
	rootOf := func(u int32) int32 {
		for tree.Nodes[u].Parent != NoNode {
			u = tree.Nodes[u].Parent
		}
		return u
	}
	ancestors := func(u int32) []int32 {
		var as []int32
		for v := u; v != NoNode; v = tree.Nodes[v].Parent {
			as = append(as, v)
		}
		return as
	}
	lca := func(a, b int32) int32 {
		seen := make(map[int32]bool)
		for _, v := range ancestors(a) {
			seen[v] = true
		}
		for _, v := range ancestors(b) {
			if seen[v] {
				return v
			}
		}
		return NoNode
	}

	// Group suffixes by root so sampled pairs usually share a bucket.
	byRoot := make(map[int32][]loc)
	for _, l := range locs {
		r := rootOf(l.leaf)
		byRoot[r] = append(byRoot[r], l)
	}
	var pools [][]loc
	for _, pool := range byRoot {
		if len(pool) >= 2 {
			pools = append(pools, pool)
		}
	}
	if len(pools) == 0 {
		t.Fatal("no multi-suffix buckets in test input")
	}
	checked := 0
	for trial := 0; trial < 1500; trial++ {
		var a, b loc
		if trial%3 == 0 {
			// Occasionally cross buckets to exercise the lcp < w branch.
			a = locs[rng.Intn(len(locs))]
			b = locs[rng.Intn(len(locs))]
		} else {
			pool := pools[rng.Intn(len(pools))]
			a = pool[rng.Intn(len(pool))]
			b = pool[rng.Intn(len(pool))]
		}
		if a == b {
			continue
		}
		sa := acc(a.suf.Sid)[a.suf.Pos:]
		sb := acc(b.suf.Sid)[b.suf.Pos:]
		l := lcp(sa, sb)
		sameTree := rootOf(a.leaf) == rootOf(b.leaf)
		if l < w {
			if sameTree {
				t.Fatalf("suffixes with lcp %d < w in same bucket subtree", l)
			}
			continue
		}
		if !sameTree {
			t.Fatalf("suffixes with lcp %d ≥ w in different subtrees", l)
		}
		u := lca(a.leaf, b.leaf)
		if u == NoNode {
			t.Fatal("no LCA within subtree")
		}
		var want int32
		if a.leaf == b.leaf {
			// Same leaf: identical (possibly mask-clamped) suffixes.
			want = tree.Nodes[u].Depth
			if int(want) > l {
				t.Fatalf("leaf depth %d exceeds lcp %d", want, l)
			}
		} else {
			want = int32(l)
			if tree.Nodes[u].Depth != want {
				t.Fatalf("LCA depth %d != lcp %d (suffixes %v %v)",
					tree.Nodes[u].Depth, l, a.suf, b.suf)
			}
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d informative pairs checked", checked)
	}
}

func TestNodesByDepthDescOrderAndTies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := randomStore(rng, 6, 30, 60, 0.02)
	w := 3
	acc := storeAccess(st)
	tree := Build(acc, EnumerateSuffixes(acc, allSids(st), w), w)
	order := tree.NodesByDepthDesc(w)
	seen := make(map[int32]bool)
	prevDepth := int32(1 << 30)
	prevLeaf := true
	for _, u := range order {
		d := tree.Nodes[u].Depth
		if d > prevDepth {
			t.Fatal("depth order violated")
		}
		if d == prevDepth && tree.IsLeaf(u) && !prevLeaf {
			t.Fatal("leaf after internal node at equal depth")
		}
		prevDepth, prevLeaf = d, tree.IsLeaf(u)
		seen[u] = true
	}
	// Children must appear before parents.
	for _, u := range order {
		if p := tree.Nodes[u].Parent; p != NoNode && seen[p] {
			// parent also in order; verify position: rebuild index
			break
		}
	}
	pos := make(map[int32]int)
	for i, u := range order {
		pos[u] = i
	}
	for _, u := range order {
		if p := tree.Nodes[u].Parent; p != NoNode {
			if pp, ok := pos[p]; ok && pp <= pos[u] {
				t.Fatalf("parent %d processed before child %d", p, u)
			}
		}
	}
	// minDepth filtering.
	deep := tree.NodesByDepthDesc(w + 5)
	for _, u := range deep {
		if int(tree.Nodes[u].Depth) < w+5 {
			t.Fatal("minDepth filter failed")
		}
	}
}

func TestIdenticalFragmentsShareLeaf(t *testing.T) {
	st := buildStore("ACGTACGTACGT", "ACGTACGTACGT")
	acc := storeAccess(st)
	w := 4
	tree := Build(acc, EnumerateSuffixes(acc, allSids(st), w), w)
	// The full-length suffixes (pos 0) of fragments 0 and 1 must share
	// a leaf of depth 12.
	found := false
	for i := range tree.Nodes {
		u := int32(i)
		if !tree.IsLeaf(u) {
			continue
		}
		has0, has1 := false, false
		for _, sf := range tree.LeafSuffixes(u) {
			if sf.Pos == 0 && sf.Sid == 0 {
				has0 = true
			}
			if sf.Pos == 0 && sf.Sid == 1 {
				has1 = true
			}
		}
		if has0 && has1 {
			found = true
			if tree.Nodes[u].Depth != 12 {
				t.Errorf("shared leaf depth = %d", tree.Nodes[u].Depth)
			}
		}
	}
	if !found {
		t.Error("identical suffixes not in one leaf")
	}
}

func TestBuildBucketsMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	st := randomStore(rng, 6, 30, 50, 0)
	w := 3
	acc := storeAccess(st)
	sufs := EnumerateSuffixes(acc, allSids(st), w)

	t1 := Build(acc, sufs, w)

	byKey := make(map[seq.Kmer][]Suffix)
	for _, sf := range sufs {
		if key, ok := BucketKey(acc(sf.Sid), int(sf.Pos), w); ok {
			byKey[key] = append(byKey[key], sf)
		}
	}
	var buckets [][]Suffix
	for _, b := range byKey {
		buckets = append(buckets, b)
	}
	t2 := BuildBuckets(acc, buckets, w)

	if t1.NumNodes() != t2.NumNodes() || len(t1.Roots) != len(t2.Roots) {
		t.Fatalf("shape mismatch: %d/%d nodes, %d/%d roots",
			t1.NumNodes(), t2.NumNodes(), len(t1.Roots), len(t2.Roots))
	}
	// Node multiset by (depth, leafness, #sufs) must match.
	sig := func(tr *Tree) map[string]int {
		m := make(map[string]int)
		for i := range tr.Nodes {
			u := int32(i)
			k := fmt.Sprintf("%d/%v/%d", tr.Nodes[u].Depth, tr.IsLeaf(u),
				tr.Nodes[u].SufEnd-tr.Nodes[u].SufStart)
			m[k]++
		}
		return m
	}
	s1, s2 := sig(t1), sig(t2)
	for k, v := range s1 {
		if s2[k] != v {
			t.Fatalf("node signature %q: %d != %d", k, v, s2[k])
		}
	}
}

func TestDeepRepeatDoesNotExplode(t *testing.T) {
	// A long homopolymer run exercises the worst-case deep paths.
	long := make([]byte, 500)
	for i := range long {
		long[i] = 'A'
	}
	st := buildStore(string(long), string(long[:400]))
	acc := storeAccess(st)
	w := 5
	tree := Build(acc, EnumerateSuffixes(acc, allSids(st), w), w)
	checkStructure(t, tree, acc)
}
