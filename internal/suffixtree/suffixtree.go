// Package suffixtree implements the generalized suffix tree (GST) the
// paper's pair-generation algorithm runs on (Sections 5–6): a
// compacted trie of all suffixes of all input fragments and their
// reverse complements, built bucket-by-bucket. Suffixes are first
// partitioned into buckets by their w-length prefixes; each bucket's
// subtree is then built depth-first by recursive character
// partitioning. The portion of the tree above depth w is never needed
// (pair generation only visits nodes of string-depth ≥ ψ ≥ w), so the
// tree is represented as a forest of bucket subtrees.
//
// Masking semantics: a masked position matches nothing, including
// another masked position. During partitioning a suffix that reaches a
// masked byte detaches as a singleton leaf, so no exact match ever
// crosses a masked base. The shared end-of-string terminator groups
// identical full suffixes into one leaf, as in the paper.
package suffixtree

import (
	"sort"

	"repro/internal/seq"
)

// PrevNone marks a suffix with no usable preceding character: either
// the suffix starts the string (the paper's λ class) or the preceding
// byte is masked, which can never extend a match leftwards and is
// therefore equivalent for left-maximality.
const PrevNone int8 = 4

// NumPrevClasses is the number of lset classes: A, C, G, T and λ.
const NumPrevClasses = 5

// Suffix identifies suffix Pos of sequence Sid together with the class
// of its preceding character, which is all the lset machinery needs.
type Suffix struct {
	Sid  int32
	Pos  int32
	Prev int8 // 0..3 base code, or PrevNone
}

// Access returns the bases of a sequence ID; the tree builder and the
// pair generator use it instead of a concrete store so the parallel
// construction can substitute locally fetched fragments.
type Access func(sid int32) []byte

// NoNode marks an absent node reference.
const NoNode int32 = -1

// Node is one compacted-trie node. Children form a singly linked list
// (FirstChild / NextSib). A leaf (no children) owns the suffixes
// Sufs[SufStart:SufEnd] of the Tree; internal nodes own none.
type Node struct {
	Parent   int32
	Depth    int32 // string-depth: length of the root-to-node path label
	FirstChild int32
	NextSib  int32
	SufStart int32
	SufEnd   int32
}

// Tree is a bucket forest: the part of the generalized suffix tree at
// string-depth ≥ w.
type Tree struct {
	Nodes []Node
	Sufs  []Suffix
	Roots []int32
	W     int
}

// IsLeaf reports whether node u has no children.
func (t *Tree) IsLeaf(u int32) bool { return t.Nodes[u].FirstChild == NoNode }

// LeafSuffixes returns the suffixes attached to leaf u.
func (t *Tree) LeafSuffixes(u int32) []Suffix {
	n := &t.Nodes[u]
	return t.Sufs[n.SufStart:n.SufEnd]
}

// NumNodes returns the number of nodes in the forest.
func (t *Tree) NumNodes() int { return len(t.Nodes) }

// Children calls fn for each child of u.
func (t *Tree) Children(u int32, fn func(v int32)) {
	for v := t.Nodes[u].FirstChild; v != NoNode; v = t.Nodes[v].NextSib {
		fn(v)
	}
}

// NodesByDepthDesc returns all nodes with Depth ≥ minDepth in
// decreasing string-depth order, the processing order of the pair
// generation algorithm (step S2). Ties are broken leaves-first so that
// a terminal leaf whose depth equals its parent's is processed before
// the parent. Counting sort on depth keeps this O(nodes + maxDepth).
func (t *Tree) NodesByDepthDesc(minDepth int) []int32 {
	maxDepth := 0
	for i := range t.Nodes {
		if d := int(t.Nodes[i].Depth); d > maxDepth {
			maxDepth = d
		}
	}
	// Two passes per depth: leaves first, then internal nodes.
	counts := make([]int, 2*(maxDepth+1))
	slot := func(i int) int {
		d := int(t.Nodes[i].Depth)
		s := 2 * (maxDepth - d)
		if !t.IsLeaf(int32(i)) {
			s++
		}
		return s
	}
	n := 0
	for i := range t.Nodes {
		if int(t.Nodes[i].Depth) >= minDepth {
			counts[slot(i)]++
			n++
		}
	}
	offsets := make([]int, len(counts))
	sum := 0
	for i, c := range counts {
		offsets[i] = sum
		sum += c
	}
	out := make([]int32, n)
	for i := range t.Nodes {
		if int(t.Nodes[i].Depth) >= minDepth {
			s := slot(i)
			out[offsets[s]] = int32(i)
			offsets[s]++
		}
	}
	return out
}

// EnumerateSuffixes lists every suffix of the given sequence IDs with
// its preceding-character class. Suffixes shorter than minLen are
// skipped (they cannot carry a maximal match of length ≥ minLen).
func EnumerateSuffixes(access Access, sids []int32, minLen int) []Suffix {
	var out []Suffix
	for _, sid := range sids {
		s := access(sid)
		for pos := 0; pos+minLen <= len(s); pos++ {
			out = append(out, Suffix{Sid: sid, Pos: int32(pos), Prev: prevClass(s, pos)})
		}
	}
	return out
}

func prevClass(s []byte, pos int) int8 {
	if pos == 0 {
		return PrevNone
	}
	c := seq.Code(s[pos-1])
	if c < 0 {
		return PrevNone
	}
	return int8(c)
}

// BucketKey packs the w-prefix of suffix (sid,pos); ok is false when
// the window is short or contains a masked base, in which case the
// suffix joins no bucket (it cannot begin a maximal match ≥ w).
func BucketKey(s []byte, pos, w int) (seq.Kmer, bool) {
	return seq.PackKmer(s, pos, w)
}

// Build constructs the bucket forest for the given suffixes with
// prefix length w. Suffixes whose w-window is invalid are dropped.
func Build(access Access, sufs []Suffix, w int) *Tree {
	type keyed struct {
		key seq.Kmer
		suf Suffix
	}
	ks := make([]keyed, 0, len(sufs))
	for _, sf := range sufs {
		if key, ok := BucketKey(access(sf.Sid), int(sf.Pos), w); ok {
			ks = append(ks, keyed{key, sf})
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })

	ib := NewIncrementalBuilder(w)
	ib.b.tree.Nodes = make([]Node, 0, len(ks)/2+4)
	ib.b.tree.Sufs = make([]Suffix, 0, len(ks))
	bucket := make([]Suffix, 0, 64)
	for lo := 0; lo < len(ks); {
		hi := lo
		for hi < len(ks) && ks[hi].key == ks[lo].key {
			hi++
		}
		bucket = bucket[:0]
		for i := lo; i < hi; i++ {
			bucket = append(bucket, ks[i].suf)
		}
		ib.AddBucket(access, bucket)
		lo = hi
	}
	return ib.Tree()
}

// BuildBuckets constructs subtrees for pre-grouped buckets (the
// parallel construction path, which receives its buckets from the
// redistribution step). Each bucket's suffixes must share their first
// w characters.
func BuildBuckets(access Access, buckets [][]Suffix, w int) *Tree {
	ib := NewIncrementalBuilder(w)
	for _, bucket := range buckets {
		ib.AddBucket(access, bucket)
	}
	return ib.Tree()
}

// IncrementalBuilder accumulates bucket subtrees into one forest. The
// parallel construction builds batches of buckets whose fragments are
// fetched together, so the access function may differ per AddBucket
// call (sequence bytes are needed only during that call — the finished
// tree stores no labels).
type IncrementalBuilder struct {
	b builder
}

// NewIncrementalBuilder returns a builder for a forest with bucket
// prefix length w.
func NewIncrementalBuilder(w int) *IncrementalBuilder {
	return &IncrementalBuilder{b: builder{tree: &Tree{W: w}}}
}

// AddBucket builds one bucket's subtree. The bucket's suffixes must
// share their first w characters. Suffixes are ordered canonically
// (by sequence ID, then position) first, so the tree — and therefore
// which occurrence duplicate elimination retains during pair
// generation — is identical no matter how the bucket was assembled.
func (ib *IncrementalBuilder) AddBucket(access Access, bucket []Suffix) {
	if len(bucket) == 0 {
		return
	}
	sort.Slice(bucket, func(i, j int) bool {
		if bucket[i].Sid != bucket[j].Sid {
			return bucket[i].Sid < bucket[j].Sid
		}
		return bucket[i].Pos < bucket[j].Pos
	})
	ib.b.access = access
	root := ib.b.build(bucket, int32(ib.b.tree.W), NoNode)
	ib.b.tree.Roots = append(ib.b.tree.Roots, root)
	ib.b.access = nil
}

// Tree returns the accumulated forest.
func (ib *IncrementalBuilder) Tree() *Tree { return ib.b.tree }

// Work returns the number of characters the builder has examined, an
// exact measure of construction work for modeled-time accounting.
func (ib *IncrementalBuilder) Work() int64 { return ib.b.work }

type builder struct {
	access Access
	tree   *Tree
	work   int64 // characters examined; exact construction work measure
}

func (b *builder) newNode(parent, depth int32) int32 {
	id := int32(len(b.tree.Nodes))
	b.tree.Nodes = append(b.tree.Nodes, Node{
		Parent:     parent,
		Depth:      depth,
		FirstChild: NoNode,
		NextSib:    NoNode,
		SufStart:   -1,
		SufEnd:     -1,
	})
	return id
}

func (b *builder) newLeaf(parent, depth int32, sufs []Suffix) int32 {
	id := b.newNode(parent, depth)
	n := &b.tree.Nodes[id]
	n.SufStart = int32(len(b.tree.Sufs))
	b.tree.Sufs = append(b.tree.Sufs, sufs...)
	n.SufEnd = int32(len(b.tree.Sufs))
	return id
}

func (b *builder) attach(parent, child int32) {
	c := &b.tree.Nodes[child]
	c.Parent = parent
	c.NextSib = b.tree.Nodes[parent].FirstChild
	b.tree.Nodes[parent].FirstChild = child
}

// charAt classifies the character of suffix sf at string-depth depth:
// 0..3 base code, -1 masked, -2 end of string.
func (b *builder) charAt(sf Suffix, depth int32) int {
	b.work++
	s := b.access(sf.Sid)
	i := int(sf.Pos) + int(depth)
	if i >= len(s) {
		return -2
	}
	return seq.Code(s[i])
}

// build constructs the subtree for sufs, which all share their first
// `depth` characters, and returns its node ID.
func (b *builder) build(sufs []Suffix, depth int32, parent int32) int32 {
	if len(sufs) == 1 {
		// A singleton's edge extends to the end of its suffix; its
		// string-depth is the full remaining length. A masked byte in
		// the remainder cannot matter: singleton leaves generate no
		// pairs and the depth is only an ordering key, but for exact
		// semantics clamp the depth at the first masked byte.
		sf := sufs[0]
		s := b.access(sf.Sid)
		end := int(sf.Pos) + int(depth)
		for end < len(s) && seq.IsBase(s[end]) {
			end++
			b.work++
		}
		return b.newLeaf(parent, int32(end-int(sf.Pos)), sufs)
	}

	var groups [4][]Suffix
	var ended []Suffix
	var masked []Suffix
	for {
		for i := range groups {
			groups[i] = groups[i][:0]
		}
		ended, masked = ended[:0], masked[:0]
		for _, sf := range sufs {
			switch c := b.charAt(sf, depth); c {
			case -2:
				ended = append(ended, sf)
			case -1:
				masked = append(masked, sf)
			default:
				groups[c] = append(groups[c], sf)
			}
		}
		// Path compression: with a single surviving base class and no
		// terminations the edge simply extends.
		total := 0
		for c := range groups {
			if len(groups[c]) > 0 {
				total++
			}
		}
		if total == 1 && len(ended) == 0 && len(masked) == 0 {
			depth++
			continue
		}
		if total == 0 && len(masked) == 0 {
			// Everything ends here: one leaf of identical suffixes.
			return b.newLeaf(parent, depth, ended)
		}

		// Branch point: create the internal node and its children.
		u := b.newNode(parent, depth)
		if len(ended) > 0 {
			leaf := b.newLeaf(u, depth, ended)
			b.attach(u, leaf)
		}
		for _, sf := range masked {
			leaf := b.newLeaf(u, depth, []Suffix{sf})
			b.attach(u, leaf)
		}
		for c := 3; c >= 0; c-- {
			if len(groups[c]) == 0 {
				continue
			}
			child := b.build(groups[c], depth+1, u)
			b.attach(u, child)
		}
		return u
	}
}
