package bench

import (
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/prof"
)

// TestProfileLabelExactness runs the 8-rank cluster workload under a
// profiling session and checks the labeling contract end to end:
// nearly every labelable CPU sample carries both rank and phase
// labels, the critical-path phase is named by the causal DAG, and the
// labeled per-phase CPU totals rank-correlate with the analyze
// compute decomposition of the very same run.
func TestProfileLabelExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("profiled 8-rank workload run")
	}
	dir := t.TempDir()
	rep, arts, err := RunProfile("cluster", Config{Ranks: 8, Iters: 1}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSamples < 10 {
		t.Skipf("only %d CPU samples on this machine — too few to judge coverage", rep.TotalSamples)
	}

	// ≥90% of labelable samples (runtime system goroutines cannot
	// carry goroutine labels) must be dual-labeled.
	if rep.LabeledUser < 90 {
		t.Errorf("dual-labeled = %.1f%% of labelable samples (%d/%d total, %d system), want ≥90%%",
			rep.LabeledUser, rep.BothLabeled, rep.TotalSamples, rep.SystemSamples)
	}
	if rep.CritSource != "causal-dag" {
		t.Errorf("critical phase named by %q, want causal-dag (events.json join)", rep.CritSource)
	}
	if rep.CritPhase == "" || len(rep.CritFuncs) == 0 {
		t.Fatalf("no critical-phase attribution: phase %q, %d funcs", rep.CritPhase, len(rep.CritFuncs))
	}

	// Correlate labeled CPU nanos per phase with the analyze compute
	// decomposition of the same events.
	cpus, _, err := prof.ParseFiles([]string{arts.CPU})
	if err != nil {
		t.Fatal(err)
	}
	sampled := prof.PhaseCPUNanos(cpus)
	d, err := obs.ReadDumpFile(filepath.Join(dir, "events.json"))
	if err != nil {
		t.Fatal(err)
	}
	arep, err := analyze.Analyze(d, analyze.Options{TopSpans: 1})
	if err != nil {
		t.Fatal(err)
	}
	causal := map[string]float64{}
	for _, ps := range arep.Phases {
		if ps.Phase != "" && ps.Phase != "(unphased)" {
			causal[ps.Phase] = ps.CompSec
		}
	}
	var shared []string
	for ph := range sampled {
		if _, ok := causal[ph]; ok {
			shared = append(shared, ph)
		}
	}
	if len(shared) < 2 {
		t.Fatalf("only %d phases shared between samples %v and decomposition %v", len(shared), sampled, causal)
	}
	// Both views must agree on the biggest phase, and the rank
	// correlation over shared phases must be positive.
	sort.Strings(shared)
	top := func(score func(string) float64) string {
		best, bestV := "", -1.0
		for _, ph := range shared {
			if v := score(ph); v > bestV {
				best, bestV = ph, v
			}
		}
		return best
	}
	sTop := top(func(ph string) float64 { return float64(sampled[ph]) })
	cTop := top(func(ph string) float64 { return causal[ph] })
	if sTop != cTop {
		t.Errorf("biggest phase by CPU samples (%s) != by causal decomposition (%s)\nsamples %v\ncausal %v",
			sTop, cTop, sampled, causal)
	}
	if r := spearman(shared, func(ph string) float64 { return float64(sampled[ph]) },
		func(ph string) float64 { return causal[ph] }); r <= 0 {
		t.Errorf("rank correlation %0.2f ≤ 0 between labeled CPU and causal compute\nsamples %v\ncausal %v",
			r, sampled, causal)
	}
}

// spearman computes the Spearman rank correlation of two scores over
// the same keys.
func spearman(keys []string, a, b func(string) float64) float64 {
	rank := func(score func(string) float64) map[string]float64 {
		ord := append([]string(nil), keys...)
		sort.Slice(ord, func(i, j int) bool { return score(ord[i]) < score(ord[j]) })
		m := make(map[string]float64, len(ord))
		for i, k := range ord {
			m[k] = float64(i)
		}
		return m
	}
	ra, rb := rank(a), rank(b)
	n := float64(len(keys))
	var d2 float64
	for _, k := range keys {
		d := ra[k] - rb[k]
		d2 += d * d
	}
	if n < 2 {
		return 0
	}
	return 1 - 6*d2/(n*(n*n-1))
}
