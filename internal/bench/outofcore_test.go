package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func oocFixture() *OOCBaseline {
	return &OOCBaseline{
		Version:  Version,
		Workload: "outofcore",
		Cells: []OOCCell{
			{Backend: "mem", Scale: 1, PeakRSSBytes: 80 << 20, Pairs: 5818},
			{Backend: "disk", Scale: 1, PeakRSSBytes: 79 << 20, Pairs: 5818},
			{Backend: "mem", Scale: oocScale, PeakRSSBytes: 760 << 20, Pairs: 36716},
			{Backend: "disk", Scale: oocScale, PeakRSSBytes: 84 << 20, Pairs: 36716},
		},
		DiskRatio:   1.06,
		MemRatio:    9.5,
		FlatGate:    1.5,
		GrowthFloor: 6.1,
	}
}

// TestCompareOOCClean: a measurement inside both gates with matching
// pair counts passes.
func TestCompareOOCClean(t *testing.T) {
	base := oocFixture()
	cur := oocFixture()
	cur.DiskRatio = 1.12
	cur.MemRatio = 8.9
	if regs := CompareOOC(base, cur); len(regs) != 0 {
		t.Fatalf("clean measurement flagged: %v", regs)
	}
}

// TestCompareOOCFlatGateBites: a disk backend whose memory scales with
// input — the regression this whole gate exists for — is caught.
func TestCompareOOCFlatGateBites(t *testing.T) {
	base := oocFixture()
	cur := oocFixture()
	cur.DiskRatio = cur.MemRatio // disk degraded into the in-memory path
	regs := CompareOOC(base, cur)
	if len(regs) == 0 {
		t.Fatal("disk ratio 9.5 passed a 1.5 flat gate")
	}
	if !strings.Contains(regs[0], "disk_ratio") {
		t.Fatalf("wrong gate fired: %v", regs)
	}
}

// TestCompareOOCGrowthFloorBites: if the mem backend stops growing,
// the workload lost its signal and the check must fail rather than
// pass vacuously.
func TestCompareOOCGrowthFloorBites(t *testing.T) {
	base := oocFixture()
	cur := oocFixture()
	cur.MemRatio = 1.1
	regs := CompareOOC(base, cur)
	found := false
	for _, r := range regs {
		if strings.Contains(r, "mem_ratio") {
			found = true
		}
	}
	if !found {
		t.Fatalf("growth floor silent on a flat mem backend: %v", regs)
	}
}

// TestCompareOOCPairDrift: fixed-seed input means pair counts must be
// bit-stable; any drift is an algorithm change.
func TestCompareOOCPairDrift(t *testing.T) {
	base := oocFixture()
	cur := oocFixture()
	cur.Cells[3].Pairs++
	regs := CompareOOC(base, cur)
	found := false
	for _, r := range regs {
		if strings.Contains(r, "pairs disk") {
			found = true
		}
	}
	if !found {
		t.Fatalf("pair-count drift not flagged: %v", regs)
	}
}

// TestOOCBaselineRoundTrip: write/read of the baseline file preserves
// every gate field, and mislabeled files are rejected.
func TestOOCBaselineRoundTrip(t *testing.T) {
	base := oocFixture()
	path := filepath.Join(t.TempDir(), "BENCH_outofcore.json")
	if err := WriteOOCBaseline(path, base); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOOCBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FlatGate != base.FlatGate || got.GrowthFloor != base.GrowthFloor ||
		got.DiskRatio != base.DiskRatio || len(got.Cells) != 4 {
		t.Fatalf("round trip mangled baseline: %+v", got)
	}

	bad := oocFixture()
	bad.Workload = "cluster"
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteOOCBaseline(badPath, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadOOCBaseline(badPath); err == nil {
		t.Fatal("foreign workload baseline accepted")
	}
}
