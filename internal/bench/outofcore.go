// Out-of-core benchmark: the memory gate for the disk-backed store +
// spilling GST. Two backends (mem, disk) run the identical fixed-seed
// GST + pair-generation workload at input scale ×1 and ×10, each cell
// in its own subprocess so VmHWM — a process-lifetime high-water mark —
// measures exactly that cell. The committed baseline records the
// ×10/×1 peak-RSS ratio per backend plus noise-calibrated gates:
// the disk backend's ratio must stay (near) flat while the mem
// backend's must grow, which proves both that the out-of-core path
// works and that the gate would catch it silently degrading into the
// in-memory path. Both backends must also emit the identical pair
// multiset (order-independent hash), so the memory win is never bought
// with a correctness loss.
package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"os/exec"

	"repro/internal/cluster"
	"repro/internal/pairgen"
	"repro/internal/pgst"
	"repro/internal/seq"
	"repro/internal/seq/diskstore"
	"repro/internal/simulate"
	"repro/internal/suffixtree"
)

// oocCellEnv carries a cell's parameters into its subprocess.
const oocCellEnv = "REPRO_BENCH_OOC_CELL"

// oocScale is the large input's multiplier over the small one.
const oocScale = 10

// oocMemBudget is the disk cells' spilling budget. Large enough that
// the ×10 sweep stays a handful of segments (re-enumeration cost is
// segments × input), small enough to sit far under the ×10 monolithic
// forest.
const oocMemBudget = 16 << 20

// OOCCell is one (backend, scale) measurement from a subprocess.
type OOCCell struct {
	Backend      string `json:"backend"` // "mem" or "disk"
	Scale        int    `json:"scale"`   // 1 or oocScale
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`
	Pairs        int64  `json:"pairs"`
	PairHash     uint64 `json:"pair_hash"` // order-independent multiset hash
}

// OOCBaseline is the committed BENCH_outofcore.json.
type OOCBaseline struct {
	Version  int       `json:"version"`
	Workload string    `json:"workload"`
	Cells    []OOCCell `json:"cells"`
	// DiskRatio and MemRatio are peak RSS at ×10 over ×1.
	DiskRatio float64 `json:"disk_ratio"`
	MemRatio  float64 `json:"mem_ratio"`
	// FlatGate is the recorded ceiling for DiskRatio at check time:
	// measured ratio plus noise headroom, floored at 1.5 (VmHWM
	// granularity and runtime jitter both move the small numerator).
	FlatGate float64 `json:"flat_gate"`
	// GrowthFloor is the recorded floor for MemRatio at check time —
	// if the mem backend's RSS ever stops growing with input, the
	// workload lost its signal and the flat gate proves nothing.
	GrowthFloor float64 `json:"growth_floor"`
}

// oocCellSpec is the JSON shipped to a cell subprocess.
type oocCellSpec struct {
	Dir     string `json:"dir"` // prepared disk store
	Backend string `json:"backend"`
	Scale   int    `json:"scale"`
}

// oocReads synthesizes the fixed out-of-core input at a scale: the
// genome grows with scale, coverage stays fixed, so reads (and
// suffixes) grow ×scale.
func oocReads(scale int) []*seq.Fragment {
	rng := rand.New(rand.NewSource(4242))
	g := simulate.NewGenome(rng, "ooc", simulate.GenomeConfig{
		Length:  20000 * scale,
		Repeats: []simulate.RepeatFamily{{Length: 300, Copies: 6, Divergence: 0.02}},
	})
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 200
	rc.LenSD = 30
	rc.VectorProb = 0
	return simulate.SampleWGS(rng, g, 6.0, rc, "r")
}

// oocGenerate streams every promising pair of one forest into the
// order-independent multiset hash.
func oocGenerate(t *suffixtree.Tree, cfg pairgen.Config, pairs *int64, sum *uint64) {
	pairgen.Generate(t, cfg, func(p pairgen.Pair) bool {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%d/%d/%d/%d", p.ASid, p.BSid, p.APos, p.BPos, p.MatchLen)
		*sum += h.Sum64()
		*pairs++
		return true
	})
}

// runOOCCell is the subprocess body: open the prepared disk store,
// run the backend's GST + pair generation, report peak RSS and the
// pair multiset hash.
func runOOCCell(spec oocCellSpec) (*OOCCell, error) {
	ccfg := cluster.DefaultConfig()
	pgCfg := pairgen.Config{Psi: ccfg.Psi, DuplicateElimination: ccfg.DuplicateElimination}
	cell := &OOCCell{Backend: spec.Backend, Scale: spec.Scale}

	switch spec.Backend {
	case "disk":
		st, err := diskstore.Open(spec.Dir, diskstore.Options{CacheBytes: 1 << 20})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		pgCfg.NumFragments = st.N()
		pgst.SweepSerial(st, pgst.Config{
			W: ccfg.W, MinLen: ccfg.Psi, SpillBytes: oocMemBudget,
		}, func(t *suffixtree.Tree) bool {
			oocGenerate(t, pgCfg, &cell.Pairs, &cell.PairHash)
			return true
		})
	case "mem":
		// The all-RAM reference materializes the fragments and the
		// monolithic forest, exactly like the in-memory pipeline.
		src, err := diskstore.Open(spec.Dir, diskstore.Options{CacheBytes: 1 << 20})
		if err != nil {
			return nil, err
		}
		frags := make([]*seq.Fragment, src.N())
		for i := range frags {
			frags[i] = &seq.Fragment{Name: src.FragName(i), Bases: src.Seq(i)}
		}
		src.Close()
		st := seq.NewStore(frags)
		pgCfg.NumFragments = st.N()
		oocGenerate(cluster.BuildSerialTree(st, ccfg), pgCfg, &cell.Pairs, &cell.PairHash)
	default:
		return nil, fmt.Errorf("bench: unknown ooc backend %q", spec.Backend)
	}
	cell.PeakRSSBytes = peakRSS()
	return cell, nil
}

// MaybeRunOOCCell runs an out-of-core benchmark cell and exits when
// the process was spawned as one (the cell env var is set). Call it
// first thing in any main (or TestMain) whose binary RunOutOfCore may
// re-exec.
func MaybeRunOOCCell() {
	v := os.Getenv(oocCellEnv)
	if v == "" {
		return
	}
	var spec oocCellSpec
	if err := json.Unmarshal([]byte(v), &spec); err != nil {
		fmt.Fprintln(os.Stderr, "bench ooc cell:", err)
		os.Exit(1)
	}
	cell, err := runOOCCell(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench ooc cell:", err)
		os.Exit(1)
	}
	json.NewEncoder(os.Stdout).Encode(cell)
	os.Exit(0)
}

// oocSpawnCell runs one cell in a fresh subprocess of this binary.
func oocSpawnCell(spec oocCellSpec) (*OOCCell, error) {
	sj, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), oocCellEnv+"="+string(sj))
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("bench: ooc cell %s/×%d: %w", spec.Backend, spec.Scale, err)
	}
	var cell OOCCell
	if err := json.Unmarshal(out, &cell); err != nil {
		return nil, fmt.Errorf("bench: ooc cell %s/×%d output: %w", spec.Backend, spec.Scale, err)
	}
	return &cell, nil
}

// RunOutOfCore measures all four cells. For each scale the input is
// synthesized once and staged as a disk store both backends read, so
// read-set generation never pollutes a cell's RSS.
func RunOutOfCore() (*OOCBaseline, error) {
	b := &OOCBaseline{Version: Version, Workload: "outofcore"}
	rss := map[string]uint64{}
	hashes := map[int][2]uint64{} // scale -> {mem, disk} hash
	for _, scale := range []int{1, oocScale} {
		dir, err := os.MkdirTemp("", "bench-ooc-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		if err := diskstore.Write(dir, oocReads(scale)); err != nil {
			return nil, err
		}
		var pairHash [2]uint64
		var pairCount [2]int64
		for i, backend := range []string{"mem", "disk"} {
			cell, err := oocSpawnCell(oocCellSpec{Dir: dir, Backend: backend, Scale: scale})
			if err != nil {
				return nil, err
			}
			b.Cells = append(b.Cells, *cell)
			rss[fmt.Sprintf("%s%d", backend, scale)] = cell.PeakRSSBytes
			pairHash[i], pairCount[i] = cell.PairHash, cell.Pairs
		}
		if pairHash[0] != pairHash[1] || pairCount[0] != pairCount[1] {
			return nil, fmt.Errorf("bench: ×%d pair multisets differ between backends (mem %d pairs/%x, disk %d pairs/%x)",
				scale, pairCount[0], pairHash[0], pairCount[1], pairHash[1])
		}
		hashes[scale] = pairHash
	}
	_ = hashes
	b.DiskRatio = float64(rss[fmt.Sprintf("disk%d", oocScale)]) / float64(rss["disk1"])
	b.MemRatio = float64(rss[fmt.Sprintf("mem%d", oocScale)]) / float64(rss["mem1"])
	// Noise calibration: the flat gate carries 35% headroom over the
	// measured disk ratio (floored at 1.5); the growth floor demands
	// the mem backend keep at least 60% of its measured growth.
	b.FlatGate = b.DiskRatio * 1.35
	if b.FlatGate < 1.5 {
		b.FlatGate = 1.5
	}
	b.GrowthFloor = 1 + (b.MemRatio-1)*0.6
	return b, nil
}

// WriteOOCBaseline writes BENCH_outofcore.json.
func WriteOOCBaseline(path string, b *OOCBaseline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadOOCBaseline reads BENCH_outofcore.json.
func ReadOOCBaseline(path string) (*OOCBaseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var b OOCBaseline
	if err := json.NewDecoder(f).Decode(&b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Version != Version || b.Workload != "outofcore" {
		return nil, fmt.Errorf("%s: not an outofcore baseline (version %d, workload %q)", path, b.Version, b.Workload)
	}
	return &b, nil
}

// CompareOOC gates a fresh measurement against the committed baseline:
// the disk backend's RSS ratio must stay under the baseline's flat
// gate, and the mem backend's must stay above the growth floor (the
// proof the gate still bites). Pair-multiset equality across backends
// was already enforced inside RunOutOfCore; here the pair counts must
// also match the baseline exactly — the input is fixed-seed, so any
// drift is an algorithm change, not noise.
func CompareOOC(baseline, current *OOCBaseline) []string {
	var regressions []string
	if current.DiskRatio > baseline.FlatGate {
		regressions = append(regressions, fmt.Sprintf(
			"outofcore/disk_ratio: ×%d/×1 peak RSS ratio %.3f exceeds the flat gate %.3f — the disk backend's memory is scaling with input",
			oocScale, current.DiskRatio, baseline.FlatGate))
	}
	if current.MemRatio < baseline.GrowthFloor {
		regressions = append(regressions, fmt.Sprintf(
			"outofcore/mem_ratio: ×%d/×1 peak RSS ratio %.3f fell below the growth floor %.3f — the workload no longer exercises memory growth, the flat gate is vacuous",
			oocScale, current.MemRatio, baseline.GrowthFloor))
	}
	base := map[string]int64{}
	for _, c := range baseline.Cells {
		base[fmt.Sprintf("%s%d", c.Backend, c.Scale)] = c.Pairs
	}
	for _, c := range current.Cells {
		if want := base[fmt.Sprintf("%s%d", c.Backend, c.Scale)]; c.Pairs != want {
			regressions = append(regressions, fmt.Sprintf(
				"outofcore/pairs %s/×%d: %d pairs, baseline %d (fixed-seed input: algorithmic drift)",
				c.Backend, c.Scale, c.Pairs, want))
		}
	}
	return regressions
}
