package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestCompareGates(t *testing.T) {
	base := &Metrics{
		Workload: "cluster", NsPerOp: 1000, AllocsPerOp: 1000,
		CriticalPathSec: 1.0, CompSec: 1.0, CommSec: 1.0,
	}
	same := *base
	if regs := Compare(base, &same); len(regs) != 0 {
		t.Fatalf("identical metrics flagged: %v", regs)
	}
	// Within threshold: ns/op may double-ish, modeled +34%.
	ok := *base
	ok.NsPerOp = 1900
	ok.CriticalPathSec = 1.34
	if regs := Compare(base, &ok); len(regs) != 0 {
		t.Fatalf("in-threshold drift flagged: %v", regs)
	}
	// Past threshold on a modeled metric.
	bad := *base
	bad.CompSec = 1.5
	regs := Compare(base, &bad)
	if len(regs) != 1 || !strings.Contains(regs[0], "comp_sec") {
		t.Fatalf("comp_sec regression not flagged: %v", regs)
	}
	// Improvements never flag.
	better := *base
	better.NsPerOp = 1
	better.CompSec = 0.1
	if regs := Compare(base, &better); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	m := Metrics{Workload: "cluster", Ranks: 8, NsPerOp: 42, CriticalPathSec: 0.5}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, m); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Workload) != 1 || b.Workload[0] != m {
		t.Fatalf("round trip lost data: %+v", b)
	}
	if _, err := ReadBaseline(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

// TestSlowdownDetected runs the cluster workload at natural speed and
// with every modeled compute charge doubled; the doubled run must
// trip the regression gates. This is the end-to-end proof that
// bench-check catches a 2x slowdown.
func TestSlowdownDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full cluster workload twice")
	}
	cfg := Config{Ranks: 4, Iters: 1}
	base, err := Run("cluster", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Slowdown = 2
	slow, err := Run("cluster", cfg)
	if err != nil {
		t.Fatal(err)
	}
	regs := Compare(base, slow)
	if len(regs) == 0 {
		t.Fatalf("2x compute slowdown not detected: base comp=%.4fs slow comp=%.4fs",
			base.CompSec, slow.CompSec)
	}
	found := false
	for _, r := range regs {
		if strings.Contains(r, "comp_sec") {
			found = true
		}
	}
	if !found {
		t.Fatalf("comp_sec gate silent under 2x compute slowdown: %v", regs)
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Run("bogus", Config{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
