// Package bench is the continuous-benchmark pipeline: fixed-seed
// workloads over the parallel clustering engine and the full
// pipeline, measured in both host terms (ns/op, allocs, peak RSS)
// and modeled terms (critical path, comm/comp decomposition from the
// causal DAG). Baselines are committed JSON; Compare gates each
// metric against its own noise-calibrated threshold so a regression
// fails `make bench-check` while host jitter does not.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/collector"
	"repro/internal/obs/prof"
	"repro/internal/par"
	"repro/internal/par/nettrans"
	"repro/internal/pipeline"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// Version of the baseline file format.
const Version = 1

// Metrics is one workload's measurement. Host-clock metrics
// (NsPerOp, AllocsPerOp, PeakRSSBytes) are noisy; modeled metrics
// come from the causal DAG over the run's trace and are stable up to
// master-protocol scheduling.
type Metrics struct {
	Workload string `json:"workload"`
	Ranks    int    `json:"ranks"`
	Iters    int    `json:"iters"`

	NsPerOp      int64  `json:"ns_per_op"`      // fastest iteration
	AllocsPerOp  uint64 `json:"allocs_per_op"`  // fewest-alloc iteration
	PeakRSSBytes uint64 `json:"peak_rss_bytes"` // VmHWM after the run

	CriticalPathSec float64 `json:"critical_path_sec"` // DAG makespan
	RawMakespanSec  float64 `json:"raw_makespan_sec"`
	CommSec         float64 `json:"comm_sec"`
	CompSec         float64 `json:"comp_sec"`
	IdleSec         float64 `json:"idle_sec"`
	CommCompRatio   float64 `json:"comm_comp_ratio"`
}

// Baseline is the committed benchmark file (BENCH_<workload>.json).
type Baseline struct {
	Version  int       `json:"version"`
	Workload []Metrics `json:"workloads"`
}

// Config tunes a benchmark run.
type Config struct {
	Ranks int // simulated machine size (default 8)
	Iters int // timed iterations; fastest wins (default 3)
	// Slowdown multiplies every modeled compute charge (par.Config
	// CompScale); 1 is natural speed. Used to prove bench-check
	// detects an injected regression.
	Slowdown float64
	// Collector streams telemetry to a live run collector for the
	// whole timed region, exactly as a production run under asmtop
	// would. Checking a collector-on run against a collector-off
	// baseline proves the streaming overhead stays under the noise
	// gates.
	Collector bool
}

func (c Config) withDefaults() Config {
	if c.Ranks == 0 {
		c.Ranks = 8
	}
	if c.Iters == 0 {
		c.Iters = 3
	}
	if c.Slowdown == 0 {
		c.Slowdown = 1
	}
	return c
}

// benchReads synthesizes the fixed benchmark input: every workload
// and every run sees the identical read set.
func benchReads() []*seq.Fragment {
	rng := rand.New(rand.NewSource(42))
	g := simulate.NewGenome(rng, "bench", simulate.GenomeConfig{
		Length:  20000,
		Repeats: []simulate.RepeatFamily{{Length: 300, Copies: 6, Divergence: 0.02}},
	})
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 200
	rc.LenSD = 30
	rc.VectorProb = 0
	return simulate.SampleWGS(rng, g, 6.0, rc, "r")
}

// workloadBody builds the per-iteration body for one named workload
// over a fixed read set — shared by the timed benchmark loop, the
// profiled capture and the overhead measurement so they all run the
// identical work.
func workloadBody(workload string, cfg Config, frags []*seq.Fragment) (func(tr *obs.Tracer) error, error) {
	var body func(tr *obs.Tracer) error
	switch workload {
	case "cluster":
		store := seq.NewStore(frags)
		ccfg := cluster.DefaultConfig()
		body = func(tr *obs.Tracer) error {
			machine := par.DefaultConfig(cfg.Ranks)
			machine.CompScale = cfg.Slowdown
			machine.Trace = tr
			pcfg := cluster.DefaultParallelConfig(cfg.Ranks)
			pcfg.Machine = machine
			_, _, err := cluster.Parallel(store, ccfg, pcfg)
			return err
		}
	case "transport":
		// The socket backend over loopback TCP: every rank runs its
		// own nettrans endpoint and the full clustering protocol flows
		// through real connections (framing, acks, heartbeats). Ranks
		// share this process so one tracer covers the whole machine —
		// the same measurement the other workloads take, now priced
		// with the transport in the path.
		store := seq.NewStore(frags)
		ccfg := cluster.DefaultConfig()
		epoch := uint64(0)
		body = func(tr *obs.Tracer) error {
			registry, err := os.MkdirTemp("", "bench-transport-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(registry)
			epoch++
			errs := make(chan error, cfg.Ranks)
			for r := 0; r < cfg.Ranks; r++ {
				go func(r int) {
					t, err := nettrans.New(nettrans.Config{
						Rank: r, Size: cfg.Ranks, Network: "tcp",
						RegistryDir: registry, Epoch: epoch,
					})
					if err != nil {
						errs <- err
						return
					}
					machine := par.DefaultConfig(cfg.Ranks)
					machine.CompScale = cfg.Slowdown
					machine.Trace = tr
					pcfg := cluster.DefaultParallelConfig(cfg.Ranks)
					pcfg.Machine = machine
					pcfg.FT = true
					_, _, _, err = cluster.ParallelRank(store, ccfg, pcfg, r, t)
					if cerr := t.Close(); err == nil {
						err = cerr
					}
					errs <- err
				}(r)
			}
			var first error
			for i := 0; i < cfg.Ranks; i++ {
				if err := <-errs; err != nil && first == nil {
					first = err
				}
			}
			return first
		}
	case "pipeline":
		body = func(tr *obs.Tracer) error {
			coreCfg := core.DefaultConfig()
			coreCfg.PreprocessEnabled = false
			coreCfg.AssemblyWorkers = 2
			coreCfg.Parallel = cluster.DefaultParallelConfig(cfg.Ranks)
			coreCfg.Parallel.Machine = par.DefaultConfig(cfg.Ranks)
			coreCfg.Parallel.Machine.CompScale = cfg.Slowdown
			coreCfg.Parallel.Machine.Trace = tr
			_, err := pipeline.Run(frags, pipeline.Config{Core: coreCfg})
			return err
		}
	default:
		return nil, fmt.Errorf("bench: unknown workload %q (want cluster, transport or pipeline)", workload)
	}
	return body, nil
}

// Run executes one named workload ("cluster", "transport" or
// "pipeline") and returns its metrics.
func Run(workload string, cfg Config) (*Metrics, error) {
	cfg = cfg.withDefaults()
	body, err := workloadBody(workload, cfg, benchReads())
	if err != nil {
		return nil, err
	}

	m := &Metrics{Workload: workload, Ranks: cfg.Ranks, Iters: cfg.Iters}
	var lastTracer *obs.Tracer
	for i := 0; i < cfg.Iters; i++ {
		tr := obs.NewTracer(cfg.Ranks, obs.DefaultRingCap)
		var rep *collector.Reporter
		var srv *obs.Server
		if cfg.Collector {
			// One reporter covers the whole shared-process machine, as
			// an in-process production run would. Setup and the final
			// flush stay outside the timed region; the periodic delta
			// streaming — the cost a live run actually pays — is in it.
			col := collector.New(collector.Config{Ranks: cfg.Ranks, Job: "bench-" + workload})
			var err error
			srv, err = col.Serve("127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("bench %s: collector: %w", workload, err)
			}
			covers := make([]int, cfg.Ranks)
			for r := range covers {
				covers[r] = r
			}
			rep = collector.StartReporter(collector.ReporterConfig{
				URL: "http://" + srv.Addr, Rank: 0, Covers: covers,
				Job: "bench-" + workload, Tracer: tr,
			})
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		if err := body(tr); err != nil {
			return nil, fmt.Errorf("bench %s: %w", workload, err)
		}
		ns := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&ms1)
		if rep != nil {
			if err := rep.Close(tr.Dump(), true, ""); err != nil {
				return nil, fmt.Errorf("bench %s: collector flush: %w", workload, err)
			}
			srv.Close()
		}
		allocs := ms1.Mallocs - ms0.Mallocs
		if i == 0 || ns < m.NsPerOp {
			m.NsPerOp = ns
		}
		if i == 0 || allocs < m.AllocsPerOp {
			m.AllocsPerOp = allocs
		}
		lastTracer = tr
	}
	m.PeakRSSBytes = peakRSS()

	rep, err := analyze.FromTracer(lastTracer, analyze.Options{TopSpans: 1})
	if err != nil {
		return nil, fmt.Errorf("bench %s: analyzing trace: %w", workload, err)
	}
	m.CriticalPathSec = rep.CriticalPath.LengthSec
	m.RawMakespanSec = rep.RawMakespanSec
	m.CommSec = rep.CommSec
	m.CompSec = rep.CompSec
	m.IdleSec = rep.IdleSec
	if rep.CompSec > 0 {
		m.CommCompRatio = rep.CommSec / rep.CompSec
	}
	return m, nil
}

// CritPhases converts an analyze report's critical-path phase totals
// into the plain form prof.Attribute consumes.
func CritPhases(rep *analyze.Report) []prof.CritPhaseSec {
	if rep == nil {
		return nil
	}
	out := make([]prof.CritPhaseSec, 0, len(rep.CriticalPath.PhaseTotals))
	for _, cp := range rep.CriticalPath.PhaseTotals {
		out = append(out, prof.CritPhaseSec{Phase: cp.Phase, Sec: cp.Sec})
	}
	return out
}

// RunProfile executes one un-timed profiled iteration of a workload:
// a prof session captures the phase/rank-labeled CPU profile plus
// heap/alloc snapshots into dir, the run's events dump lands next to
// them (events.json), and the artifacts come back joined against the
// run's own causal critical path as an attribution report. It runs
// outside the timed loop so committed baselines never carry the
// profiling tax.
func RunProfile(workload string, cfg Config, dir string) (*prof.Report, prof.Artifacts, error) {
	cfg = cfg.withDefaults()
	body, err := workloadBody(workload, cfg, benchReads())
	if err != nil {
		return nil, prof.Artifacts{}, err
	}
	sess, err := prof.Start(prof.Config{Dir: dir, Name: "bench-" + workload, Registry: obs.NewRegistry()})
	if err != nil {
		return nil, prof.Artifacts{}, err
	}
	tr := obs.NewTracer(cfg.Ranks, obs.DefaultRingCap)
	runErr := body(tr)
	arts, stopErr := sess.Stop()
	if runErr != nil {
		return nil, arts, fmt.Errorf("bench %s: %w", workload, runErr)
	}
	if stopErr != nil {
		return nil, arts, fmt.Errorf("bench %s: profile stop: %w", workload, stopErr)
	}
	f, err := os.Create(filepath.Join(dir, "events.json"))
	if err != nil {
		return nil, arts, err
	}
	err = tr.WriteEvents(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, arts, err
	}
	rep, err := analyze.FromTracer(tr, analyze.Options{TopSpans: 1})
	if err != nil {
		return nil, arts, fmt.Errorf("bench %s: analyzing trace: %w", workload, err)
	}
	cpus, _, err := prof.ParseFiles([]string{arts.CPU})
	if err != nil {
		return nil, arts, fmt.Errorf("bench %s: parsing cpu profile: %w", workload, err)
	}
	allocs, _, err := prof.ParseFiles([]string{arts.Allocs})
	if err != nil {
		return nil, arts, fmt.Errorf("bench %s: parsing allocs profile: %w", workload, err)
	}
	return prof.Attribute(cpus, allocs, CritPhases(rep), prof.Options{}), arts, nil
}

// Overhead is ProfileOverhead's verdict: the fastest profiling-off
// and profiling-on iteration of the same workload in one process.
type Overhead struct {
	Workload string `json:"workload"`
	OffNs    int64  `json:"off_ns"`
	OnNs     int64  `json:"on_ns"`
}

// Pct is the profiling tax as a percentage of the off time.
func (o Overhead) Pct() float64 {
	if o.OffNs <= 0 {
		return 0
	}
	return 100 * (float64(o.OnNs) - float64(o.OffNs)) / float64(o.OffNs)
}

// ProfileOverhead measures the profiling tax by alternating off and
// on iterations in one process (so CPU frequency, cache state and
// heap age are shared) and comparing the fastest of each. Artifacts
// go to a throwaway directory.
func ProfileOverhead(workload string, cfg Config) (Overhead, error) {
	cfg = cfg.withDefaults()
	body, err := workloadBody(workload, cfg, benchReads())
	if err != nil {
		return Overhead{}, err
	}
	dir, err := os.MkdirTemp("", "bench-overhead-")
	if err != nil {
		return Overhead{}, err
	}
	defer os.RemoveAll(dir)
	ov := Overhead{Workload: workload}
	for i := 0; i < cfg.Iters; i++ {
		tr := obs.NewTracer(cfg.Ranks, obs.DefaultRingCap)
		t0 := time.Now()
		if err := body(tr); err != nil {
			return ov, fmt.Errorf("bench %s: %w", workload, err)
		}
		if ns := time.Since(t0).Nanoseconds(); i == 0 || ns < ov.OffNs {
			ov.OffNs = ns
		}

		sess, err := prof.Start(prof.Config{Dir: dir, Name: fmt.Sprintf("ov%d", i), Registry: obs.NewRegistry()})
		if err != nil {
			return ov, err
		}
		tr = obs.NewTracer(cfg.Ranks, obs.DefaultRingCap)
		t0 = time.Now()
		runErr := body(tr)
		ns := time.Since(t0).Nanoseconds()
		if _, serr := sess.Stop(); serr != nil && runErr == nil {
			runErr = serr
		}
		if runErr != nil {
			return ov, fmt.Errorf("bench %s (profiled): %w", workload, runErr)
		}
		if i == 0 || ns < ov.OnNs {
			ov.OnNs = ns
		}
	}
	return ov, nil
}

// peakRSS reads the process high-water RSS from /proc/self/status
// (VmHWM), falling back to the Go heap's Sys when unavailable.
func peakRSS() uint64 {
	f, err := os.Open("/proc/self/status")
	if err == nil {
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
					return kb * 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Sys
}

// WriteBaseline writes one workload's metrics as a baseline file.
func WriteBaseline(w io.Writer, ms ...Metrics) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Baseline{Version: Version, Workload: ms})
}

// ReadBaseline parses a baseline file.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("bench: not a baseline file: %w", err)
	}
	if b.Version != Version {
		return nil, fmt.Errorf("bench: baseline version %d, want %d", b.Version, Version)
	}
	return &b, nil
}

// ReadBaselineFile reads and parses one baseline file.
func ReadBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := ReadBaseline(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// gate is one metric's regression threshold: current may exceed
// baseline by at most frac (fraction of baseline) before Compare
// flags it. Metrics without a gate are report-only.
type gate struct {
	name     string
	frac     float64
	baseline func(*Metrics) float64
}

// Gates returns the gated metrics and their thresholds. Host-clock
// metrics get wide margins (shared CI machines jitter); modeled
// metrics get tight ones — they vary only with the master protocol's
// scheduling, measured well under their margins in practice.
func Gates() []string {
	var out []string
	for _, g := range gates {
		out = append(out, fmt.Sprintf("%s +%.0f%%", g.name, g.frac*100))
	}
	return out
}

var gates = []gate{
	{"ns_per_op", 1.00, func(m *Metrics) float64 { return float64(m.NsPerOp) }},
	{"allocs_per_op", 0.50, func(m *Metrics) float64 { return float64(m.AllocsPerOp) }},
	{"critical_path_sec", 0.35, func(m *Metrics) float64 { return m.CriticalPathSec }},
	{"comp_sec", 0.35, func(m *Metrics) float64 { return m.CompSec }},
	{"comm_sec", 0.35, func(m *Metrics) float64 { return m.CommSec }},
}

// Compare checks current against the baseline for the same workload
// and returns one line per regression (empty: no regressions).
func Compare(baseline, current *Metrics) []string {
	var regressions []string
	for _, g := range gates {
		base := g.baseline(baseline)
		cur := g.baseline(current)
		if base <= 0 {
			continue
		}
		if cur > base*(1+g.frac) {
			regressions = append(regressions,
				fmt.Sprintf("%s/%s: %.4g exceeds baseline %.4g by more than %.0f%%",
					current.Workload, g.name, cur, base, g.frac*100))
		}
	}
	return regressions
}
