// Package pipeline wraps the cluster-then-assemble pipeline with a
// versioned job manifest and phase-boundary checkpoints, so a run
// killed at any point resumes from the last completed phase and
// produces byte-identical output. The manifest fingerprints the input
// and configuration; each phase's output is stored as a checksummed
// artifact in the workdir (preprocessed fragments, the clustering
// partition, per-cluster contigs) and a resumed run refuses artifacts
// that do not match what it would have computed over.
package pipeline

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/preprocess"
	"repro/internal/seq"
	"repro/internal/wire"
)

// Config configures a checkpointed pipeline run.
type Config struct {
	// Core is the underlying pipeline configuration.
	Core core.Config
	// Workdir holds the manifest and phase artifacts; empty disables
	// checkpointing entirely (Run degenerates to core.Run semantics).
	Workdir string
	// Resume reuses completed phases recorded in Workdir's manifest.
	// Without it any existing manifest is discarded.
	Resume bool
	// Flags fingerprints the run configuration (whatever the caller
	// considers resume-relevant: psi, w, ranks, masking, ...). A
	// manifest written under a different fingerprint refuses to
	// resume.
	Flags string
	// Interrupt, when non-nil and closed (or signalled), requests a
	// clean stop at the next phase boundary: the phase in progress
	// completes and is journaled in the manifest, then Run returns
	// ErrInterrupted instead of starting the next phase. This is the
	// job-scoped drain hook — a supervised run told to stop checkpoints
	// exactly as much work as it finished and a later Resume run picks
	// up byte-identically from there.
	Interrupt <-chan struct{}
	// OnPhase, when non-nil, is called as each phase begins computing
	// (not when its artifact is loaded from the manifest) — a progress
	// hook for supervisors reporting job status.
	OnPhase func(Phase)
}

// ErrInterrupted reports that Run stopped cleanly at a phase boundary
// because Config.Interrupt fired. Every completed phase is journaled;
// resuming the same workdir continues byte-identically.
var ErrInterrupted = errors.New("pipeline: interrupted at phase boundary (checkpointed)")

// InputHash fingerprints the input fragments for the manifest.
func InputHash(frags []*seq.Fragment) string {
	return hashBytes(encodeFragments(frags, preprocess.Stats{}))
}

// Run executes preprocess → cluster → assemble with a checkpoint at
// every phase boundary. Completed phases are skipped on resume by
// loading their artifacts, which yields byte-identical contigs to an
// uninterrupted run.
func Run(frags []*seq.Fragment, cfg Config) (*core.Result, error) {
	if cfg.Core.Transport != nil && cfg.Core.TransportRank != 0 {
		// Worker-rank processes never touch the manifest: only the
		// master journals phases, so a resumed run sees one writer.
		return core.Run(frags, cfg.Core)
	}
	m, err := openManifest(cfg.Workdir, InputHash(frags), cfg.Flags, cfg.Resume)
	if err != nil {
		return nil, err
	}
	defer m.close()
	// interrupted polls the drain hook; a nil channel never fires.
	interrupted := func() bool {
		select {
		case <-cfg.Interrupt:
			return true
		default:
			return false
		}
	}
	onPhase := func(p Phase) {
		if cfg.OnPhase != nil {
			cfg.OnPhase(p)
		}
	}
	ccfg := cfg.Core
	res := &core.Result{}

	// Phase 1: preprocessing (recorded even when disabled, so the
	// cluster phase always resumes over the exact fragment set).
	if art, ok, err := m.load(PhasePreprocess); err != nil {
		return nil, err
	} else if ok {
		if frags, res.PreprocessStats, err = decodeFragments(art); err != nil {
			return nil, fmt.Errorf("pipeline: preprocess artifact: %w", err)
		}
	} else {
		onPhase(PhasePreprocess)
		if ccfg.PreprocessEnabled {
			frags, res.PreprocessStats = preprocess.Run(frags, ccfg.Preprocess)
		}
		if err := m.complete(PhasePreprocess, encodeFragments(frags, res.PreprocessStats)); err != nil {
			return nil, err
		}
	}
	var closeStore func() error
	if res.Store, closeStore, err = attachStore(m, cfg, frags); err != nil {
		return nil, err
	}
	res.SetStoreCloser(closeStore)
	if interrupted() {
		return nil, ErrInterrupted
	}

	// Phase 2: clustering.
	if art, ok, err := m.load(PhaseCluster); err != nil {
		return nil, err
	} else if ok {
		cp, err := cluster.DecodeCheckpoint(art)
		if err != nil {
			return nil, fmt.Errorf("pipeline: cluster artifact: %w", err)
		}
		if cp.N != res.Store.N() {
			return nil, fmt.Errorf("pipeline: cluster artifact covers %d fragments, input has %d", cp.N, res.Store.N())
		}
		res.Clustering = cp.Result()
	} else {
		onPhase(PhaseCluster)
		if ccfg.Parallel.Ranks >= 2 {
			if ccfg.Transport != nil {
				res.Clustering, _, _, err = cluster.ParallelRank(res.Store, ccfg.Cluster, ccfg.Parallel, ccfg.TransportRank, ccfg.Transport)
			} else {
				res.Clustering, res.Phases, err = cluster.Parallel(res.Store, ccfg.Cluster, ccfg.Parallel)
			}
			if err != nil {
				return nil, err
			}
		} else {
			res.Clustering = cluster.Serial(res.Store, ccfg.Cluster)
		}
		if err := m.complete(PhaseCluster, cluster.CheckpointOf(res.Clustering).Encode()); err != nil {
			return nil, err
		}
	}
	res.Clusters = res.Clustering.Clusters()
	res.Singletons = res.Clustering.Singletons()

	// Phase 3: per-cluster assembly.
	if ccfg.SkipAssembly {
		return res, nil
	}
	if interrupted() {
		return nil, ErrInterrupted
	}
	if art, ok, err := m.load(PhaseAssembly); err != nil {
		return nil, err
	} else if ok {
		if res.Contigs, res.AssemblyOutcomes, err = decodeContigs(art); err != nil {
			return nil, fmt.Errorf("pipeline: assembly artifact: %w", err)
		}
		if len(res.Contigs) != len(res.Clusters) {
			return nil, fmt.Errorf("pipeline: assembly artifact covers %d clusters, clustering produced %d", len(res.Contigs), len(res.Clusters))
		}
	} else {
		onPhase(PhaseAssembly)
		workers := ccfg.AssemblyWorkers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if ccfg.AssemblyGuard != nil {
			res.Contigs, res.AssemblyOutcomes = assembly.AssembleAllGuarded(
				res.Store, res.Clusters, ccfg.Assembly, workers, *ccfg.AssemblyGuard)
		} else {
			res.Contigs = assembly.AssembleAll(res.Store, res.Clusters, ccfg.Assembly, workers)
		}
		if err := m.complete(PhaseAssembly, encodeContigs(res.Contigs, res.AssemblyOutcomes)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// encodeFragments serializes preprocessing output: the survivor stats
// and each fragment's name, bases, and optional qualities. (Simulator
// Origin metadata is not carried across a checkpoint — it is a
// validation aid, never an assembly input.)
func encodeFragments(frags []*seq.Fragment, st preprocess.Stats) []byte {
	w := wire.NewBuffer(64)
	for _, v := range []int{st.FragsBefore, st.BasesBefore, st.FragsAfter,
		st.BasesAfter, st.Trimmed, st.Repetitive, st.MaskedBases} {
		w.PutInt(v)
	}
	w.PutUint(uint64(len(frags)))
	for _, f := range frags {
		w.PutString(f.Name)
		w.PutBytes(f.Bases)
		w.PutBool(f.Qual != nil)
		if f.Qual != nil {
			w.PutBytes(f.Qual)
		}
	}
	return w.Bytes()
}

func decodeFragments(b []byte) ([]*seq.Fragment, preprocess.Stats, error) {
	r := wire.NewReader(b)
	var st preprocess.Stats
	for _, p := range []*int{&st.FragsBefore, &st.BasesBefore, &st.FragsAfter,
		&st.BasesAfter, &st.Trimmed, &st.Repetitive, &st.MaskedBases} {
		*p = r.Int()
	}
	n := int(r.Uint())
	if err := r.Err(); err != nil {
		return nil, st, err
	}
	if n < 0 || n > r.Remaining() {
		return nil, st, errors.New("fragment count exceeds payload")
	}
	frags := make([]*seq.Fragment, n)
	for i := range frags {
		f := &seq.Fragment{Name: r.String(), Bases: r.Bytes()}
		if r.Bool() {
			f.Qual = r.Bytes()
		}
		frags[i] = f
	}
	if err := r.Err(); err != nil {
		return nil, st, err
	}
	if r.Remaining() != 0 {
		return nil, st, fmt.Errorf("%d trailing bytes after fragments", r.Remaining())
	}
	return frags, st, nil
}

// encodeContigs serializes per-cluster contigs plus (optionally) the
// guard outcomes that produced them.
func encodeContigs(contigs [][]assembly.Contig, outcomes []assembly.Outcome) []byte {
	w := wire.NewBuffer(64)
	w.PutUint(uint64(len(contigs)))
	for _, cs := range contigs {
		w.PutUint(uint64(len(cs)))
		for _, c := range cs {
			w.PutBytes(c.Bases)
			w.PutUint(uint64(len(c.Reads)))
			for _, p := range c.Reads {
				w.PutInt(p.Frag)
				w.PutInt(p.Offset)
				w.PutBool(p.Reverse)
			}
			w.PutUint(math.Float64bits(c.Depth))
		}
	}
	w.PutUint(uint64(len(outcomes)))
	for _, o := range outcomes {
		w.PutInt(o.Attempts)
		w.PutBool(o.Quarantined)
		w.PutString(o.Err)
	}
	return w.Bytes()
}

func decodeContigs(b []byte) ([][]assembly.Contig, []assembly.Outcome, error) {
	r := wire.NewReader(b)
	nc := int(r.Uint())
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if nc < 0 || nc > r.Remaining()+1 {
		return nil, nil, errors.New("cluster count exceeds payload")
	}
	contigs := make([][]assembly.Contig, nc)
	for i := range contigs {
		k := int(r.Uint())
		if r.Err() != nil || k < 0 || k > r.Remaining()+1 {
			return nil, nil, errors.New("contig count exceeds payload")
		}
		cs := make([]assembly.Contig, k)
		for j := range cs {
			cs[j].Bases = r.Bytes()
			nr := int(r.Uint())
			if r.Err() != nil || nr < 0 || nr > r.Remaining()+1 {
				return nil, nil, errors.New("read count exceeds payload")
			}
			cs[j].Reads = make([]assembly.Placement, nr)
			for q := range cs[j].Reads {
				cs[j].Reads[q] = assembly.Placement{
					Frag:    r.Int(),
					Offset:  r.Int(),
					Reverse: r.Bool(),
				}
			}
			cs[j].Depth = math.Float64frombits(r.Uint())
		}
		contigs[i] = cs
	}
	no := int(r.Uint())
	if r.Err() != nil || no < 0 || no > r.Remaining()+1 {
		return nil, nil, errors.New("outcome count exceeds payload")
	}
	var outcomes []assembly.Outcome
	for i := 0; i < no; i++ {
		outcomes = append(outcomes, assembly.Outcome{
			Attempts:    r.Int(),
			Quarantined: r.Bool(),
			Err:         r.String(),
		})
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if r.Remaining() != 0 {
		return nil, nil, fmt.Errorf("%d trailing bytes after contigs", r.Remaining())
	}
	return contigs, outcomes, nil
}
