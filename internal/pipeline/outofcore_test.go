package pipeline

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/seq/diskstore"
)

func diskCoreConfig() core.Config {
	cfg := testCoreConfig()
	cfg.Store = core.StoreConfig{Backend: core.StoreDisk, CacheBytes: 64 << 10}
	cfg.Cluster.MemBudget = 32 << 10
	return cfg
}

// TestOutOfCoreMatchesMem: the full out-of-core pipeline — disk store
// under the workdir, spilling GST — must produce contigs byte-identical
// to the in-memory pipeline, and must leave the store files journaled
// in the manifest.
func TestOutOfCoreMatchesMem(t *testing.T) {
	memRes, err := Run(testFrags(4, 3, 2200, 90), Config{
		Core: testCoreConfig(), Workdir: t.TempDir(), Flags: "ooc",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := contigBytes(memRes)

	dir := t.TempDir()
	res, err := Run(testFrags(4, 3, 2200, 90), Config{
		Core: diskCoreConfig(), Workdir: dir, Flags: "ooc",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if _, ok := res.Store.(*diskstore.Store); !ok {
		t.Fatalf("store is %T, want disk-backed", res.Store)
	}
	if !bytes.Equal(contigBytes(res), want) {
		t.Error("out-of-core contigs differ from in-memory pipeline")
	}

	mb, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	m, err := decodeManifest(mb)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{auxStoreData, auxStoreIdx} {
		sum, ok := m.auxSum(name)
		if !ok {
			t.Fatalf("manifest does not journal %s", name)
		}
		got, err := hashFile(filepath.Join(dir, "store", name))
		if err != nil {
			t.Fatal(err)
		}
		if got != sum {
			t.Fatalf("journaled %s checksum does not match the file", name)
		}
	}
}

// TestOutOfCoreResumeByteIdentical: kill the out-of-core pipeline
// after each phase boundary; the resumed run must reopen the journaled
// store (not rebuild it) and finish with byte-identical contigs.
func TestOutOfCoreResumeByteIdentical(t *testing.T) {
	cfg := diskCoreConfig()
	full := t.TempDir()
	ref, err := Run(testFrags(4, 3, 2200, 90), Config{Core: cfg, Workdir: full, Flags: "ooc"})
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()
	refBytes := contigBytes(ref)
	origIdx, err := hashFile(filepath.Join(full, "store", diskstore.IndexFile))
	if err != nil {
		t.Fatal(err)
	}

	for k := 0; k < len(Phases); k++ {
		t.Run(fmt.Sprintf("rollback_to_%d_phases", k), func(t *testing.T) {
			if err := Rollback(full, k); err != nil {
				t.Fatal(err)
			}
			res, err := Run(testFrags(4, 3, 2200, 90), Config{
				Core: cfg, Workdir: full, Resume: true, Flags: "ooc",
			})
			if err != nil {
				t.Fatal(err)
			}
			defer res.Close()
			if !bytes.Equal(contigBytes(res), refBytes) {
				t.Error("resumed out-of-core contigs differ from uninterrupted run")
			}
			gotIdx, err := hashFile(filepath.Join(full, "store", diskstore.IndexFile))
			if err != nil {
				t.Fatal(err)
			}
			if gotIdx != origIdx {
				t.Error("resume rewrote the store index; it must reuse the journaled bytes")
			}
		})
	}
}

// TestOutOfCoreResumeRefusesCorruptStore: a resumed run must refuse a
// store file whose bytes no longer match the journaled checksum.
func TestOutOfCoreResumeRefusesCorruptStore(t *testing.T) {
	cfg := diskCoreConfig()
	dir := t.TempDir()
	res, err := Run(testFrags(4, 3, 2200, 90), Config{Core: cfg, Workdir: dir, Flags: "ooc"})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()

	dataPath := filepath.Join(dir, "store", diskstore.DataFile)
	b, err := os.ReadFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(dataPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Run(testFrags(4, 3, 2200, 90), Config{
		Core: cfg, Workdir: dir, Resume: true, Flags: "ooc",
	})
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("resume with corrupt store: err=%v, want checksum refusal", err)
	}
}
