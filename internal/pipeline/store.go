package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/seq/diskstore"
)

// Aux-record names for the disk store's files.
const (
	auxStoreData = "store.data"
	auxStoreIdx  = "store.idx"
)

// hashFile streams a file through SHA-256.
func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// attachStore materializes the sequence store for a checkpointed run.
// The in-memory backend is trivial. The disk backend anchors its files
// under <workdir>/store (unless the caller chose a directory) and
// journals their checksums as manifest aux records, so a resumed run
// verifies it is reading the exact bytes the original run wrote — the
// store artifact participates in the byte-identical-resume contract
// like any phase artifact. A checksum mismatch is an error, not a
// silent rebuild.
func attachStore(m *manifest, cfg Config, frags []*seq.Fragment) (seq.Seqs, func() error, error) {
	sc := cfg.Core.Store
	if sc.Backend == core.StoreDisk && sc.Dir == "" && cfg.Workdir != "" {
		sc.Dir = filepath.Join(cfg.Workdir, "store")
	}
	if sc.Backend != core.StoreDisk || m == nil {
		return core.OpenStore(frags, sc)
	}

	dataPath := filepath.Join(sc.Dir, diskstore.DataFile)
	idxPath := filepath.Join(sc.Dir, diskstore.IndexFile)
	if wantData, ok := m.auxSum(auxStoreData); ok {
		wantIdx, ok2 := m.auxSum(auxStoreIdx)
		if !ok2 {
			return nil, nil, fmt.Errorf("pipeline: manifest journals %s but not %s", auxStoreData, auxStoreIdx)
		}
		for _, f := range []struct{ path, want string }{
			{dataPath, wantData}, {idxPath, wantIdx},
		} {
			got, err := hashFile(f.path)
			if err != nil {
				return nil, nil, fmt.Errorf("pipeline: store artifact: %w", err)
			}
			if got != f.want {
				return nil, nil, fmt.Errorf("pipeline: store artifact %s fails its checksum (refusing to resume)", f.path)
			}
		}
		st, err := diskstore.Open(sc.Dir, diskstore.Options{CacheBytes: sc.CacheBytes})
		if err != nil {
			return nil, nil, fmt.Errorf("pipeline: reopen store: %w", err)
		}
		return st, st.Close, nil
	}

	st, cleanup, err := core.OpenStore(frags, sc)
	if err != nil {
		return nil, nil, err
	}
	for _, f := range []struct{ name, path string }{
		{auxStoreData, dataPath}, {auxStoreIdx, idxPath},
	} {
		sum, err := hashFile(f.path)
		if err == nil {
			err = m.completeAux(f.name, f.name, sum)
		}
		if err != nil {
			if cleanup != nil {
				cleanup()
			}
			return nil, nil, fmt.Errorf("pipeline: journal store artifact: %w", err)
		}
	}
	return st, cleanup, nil
}
