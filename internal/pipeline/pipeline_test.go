package pipeline

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func testFrags(seed int64, islands, islandLen, reads int) []*seq.Fragment {
	rng := rand.New(rand.NewSource(seed))
	genomes := make([]*simulate.Genome, islands)
	for i := range genomes {
		genomes[i] = simulate.NewGenome(rng, fmt.Sprintf("isl%d", i),
			simulate.GenomeConfig{Length: islandLen})
	}
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 300
	rc.LenSD = 30
	rc.VectorProb = 0
	var frags []*seq.Fragment
	for i := 0; i < reads; i++ {
		g := genomes[i%islands]
		start := (i / islands * 137) % (islandLen - rc.MeanLen)
		frags = append(frags, simulate.SampleAt(rng, g, rc, start, fmt.Sprintf("r%04d", i)))
	}
	return frags
}

func testCoreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.PreprocessEnabled = false
	cfg.Cluster.Psi = 16
	cfg.Cluster.W = 8
	cfg.AssemblyWorkers = 2
	return cfg
}

// contigBytes flattens a result's contigs for byte-level comparison.
func contigBytes(res *core.Result) []byte {
	return encodeContigs(res.Contigs, res.AssemblyOutcomes)
}

// TestRunMatchesCore: a checkpointed run must produce the same output
// as the plain core pipeline.
func TestRunMatchesCore(t *testing.T) {
	frags := testFrags(1, 3, 2200, 90)
	cfg := testCoreConfig()
	want, err := core.Run(testFrags(1, 3, 2200, 90), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(frags, Config{Core: cfg, Workdir: t.TempDir(), Flags: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(contigBytes(got), contigBytes(want)) {
		t.Error("checkpointed run's contigs differ from core.Run")
	}
}

// TestResumeByteIdentical is the satellite contract: kill the pipeline
// after each phase boundary, resume, and the final contigs must be
// byte-identical to the uninterrupted run.
func TestResumeByteIdentical(t *testing.T) {
	cfg := testCoreConfig()

	full := t.TempDir()
	ref, err := Run(testFrags(1, 3, 2200, 90), Config{Core: cfg, Workdir: full, Flags: "t"})
	if err != nil {
		t.Fatal(err)
	}
	refBytes := contigBytes(ref)
	mb, err := os.ReadFile(filepath.Join(full, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	fullManifest, err := decodeManifest(mb)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullManifest.records) != len(Phases) {
		t.Fatalf("full run recorded %d phases, want %d", len(fullManifest.records), len(Phases))
	}

	// "Kill after phase k": a workdir holding only the first k records
	// and their artifacts, exactly what a run killed at that boundary
	// leaves behind.
	for k := 0; k <= len(fullManifest.records); k++ {
		k := k
		t.Run(fmt.Sprintf("killed_after_%d_phases", k), func(t *testing.T) {
			dir := t.TempDir()
			trunc := &manifest{dir: dir, input: fullManifest.input, flags: fullManifest.flags}
			trunc.records = fullManifest.records[:k]
			for _, r := range trunc.records {
				b, err := os.ReadFile(filepath.Join(full, r.artifact))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, r.artifact), b, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := writeAtomic(filepath.Join(dir, manifestFile), trunc.encode()); err != nil {
				t.Fatal(err)
			}
			res, err := Run(testFrags(1, 3, 2200, 90), Config{
				Core: cfg, Workdir: dir, Resume: true, Flags: "t",
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(contigBytes(res), refBytes) {
				t.Error("resumed contigs are not byte-identical to the uninterrupted run")
			}
		})
	}
}

// TestResumeRefusesMismatch: a manifest written for different input or
// configuration must refuse to resume rather than mix state.
func TestResumeRefusesMismatch(t *testing.T) {
	frags := testFrags(1, 2, 1500, 40)
	cfg := testCoreConfig()
	dir := t.TempDir()
	if _, err := Run(frags, Config{Core: cfg, Workdir: dir, Flags: "t"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(testFrags(2, 2, 1500, 40), Config{Core: cfg, Workdir: dir, Resume: true, Flags: "t"}); err == nil {
		t.Error("resume accepted different input")
	}
	if _, err := Run(frags, Config{Core: cfg, Workdir: dir, Resume: true, Flags: "other"}); err == nil {
		t.Error("resume accepted different configuration")
	}
	// Same input and flags resumes fine.
	if _, err := Run(testFrags(1, 2, 1500, 40), Config{Core: cfg, Workdir: dir, Resume: true, Flags: "t"}); err != nil {
		t.Errorf("legitimate resume failed: %v", err)
	}
}

// TestResumeDetectsCorruptArtifact: a recorded artifact that fails its
// checksum is an error, never a silent recompute over bad data.
func TestResumeDetectsCorruptArtifact(t *testing.T) {
	frags := testFrags(1, 2, 1500, 40)
	cfg := testCoreConfig()
	dir := t.TempDir()
	if _, err := Run(frags, Config{Core: cfg, Workdir: dir, Flags: "t"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, string(PhaseCluster)+".bin")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 1
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(testFrags(1, 2, 1500, 40), Config{Core: cfg, Workdir: dir, Resume: true, Flags: "t"}); err == nil {
		t.Error("resume accepted a corrupted artifact")
	}
}

// TestQuarantineSurvivesResume: guard outcomes ride through the
// assembly artifact.
func TestQuarantineSurvivesResume(t *testing.T) {
	contigs := [][]assembly.Contig{
		{{Bases: []byte("ACGT"), Reads: []assembly.Placement{{Frag: 0}}, Depth: 1}},
	}
	outs := []assembly.Outcome{{Attempts: 2, Quarantined: true, Err: "assembler panic: boom"}}
	dec, decOuts, err := decodeContigs(encodeContigs(contigs, outs))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 1 || string(dec[0][0].Bases) != "ACGT" {
		t.Errorf("contigs did not round-trip: %+v", dec)
	}
	if len(decOuts) != 1 || !decOuts[0].Quarantined || decOuts[0].Err != outs[0].Err {
		t.Errorf("outcomes did not round-trip: %+v", decOuts)
	}
}

// TestClusterArtifactRoundTrip: the cluster-phase artifact reuses the
// clustering checkpoint format and reproduces the exact partition.
func TestClusterArtifactRoundTrip(t *testing.T) {
	frags := testFrags(1, 2, 1500, 40)
	st := seq.NewStore(frags)
	ccfg := testCoreConfig().Cluster
	res := cluster.Serial(st, ccfg)
	cp, err := cluster.DecodeCheckpoint(cluster.CheckpointOf(res).Encode())
	if err != nil {
		t.Fatal(err)
	}
	back := cp.Result()
	want, got := res.Clusters(), back.Clusters()
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Error("partition did not survive the checkpoint round-trip")
	}
	if back.Stats.Merges != res.Stats.Merges {
		t.Errorf("stats lost: merges %d vs %d", back.Stats.Merges, res.Stats.Merges)
	}
}
