package pipeline

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// ErrWorkdirLocked reports that another live process holds a workdir's
// lockfile. Callers that supervise runs (the job service) match it
// with errors.Is and retry instead of charging the failure to the job.
var ErrWorkdirLocked = errors.New("pipeline: workdir locked by another live run")

const lockFile = "workdir.lock"

// lock is an exclusive per-workdir lease held for the duration of one
// checkpointed run. Two concurrent runs sharing a workdir would race
// on the manifest and corrupt each other's artifacts; the lockfile
// (created O_EXCL, holding the owner's PID) makes the second run fail
// fast instead. A lock whose PID no longer names a live process is
// stale — left behind by a SIGKILLed run — and is broken safely.
type lock struct {
	path string
}

// acquireLock takes the workdir lock or returns ErrWorkdirLocked
// (wrapped with the holder's PID) when a live process holds it.
func acquireLock(dir string) (*lock, error) {
	path := filepath.Join(dir, lockFile)
	self := []byte(strconv.Itoa(os.Getpid()) + "\n")
	for tries := 0; tries < 16; tries++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			_, werr := f.Write(self)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				os.Remove(path)
				return nil, fmt.Errorf("pipeline: write lock: %w", werr)
			}
			return &lock{path: path}, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("pipeline: lock workdir: %w", err)
		}
		b, rerr := os.ReadFile(path)
		if errors.Is(rerr, os.ErrNotExist) {
			continue // holder released between our create and read
		}
		if rerr != nil {
			return nil, fmt.Errorf("pipeline: read lock: %w", rerr)
		}
		pid, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if perr == nil && pidAlive(pid) {
			return nil, fmt.Errorf("%w (pid %d, %s)", ErrWorkdirLocked, pid, path)
		}
		// Stale (dead PID or torn content): break it via an atomic
		// rename so concurrent breakers cannot each remove the other's
		// freshly re-acquired lock — only the process that wins the
		// rename deletes, everyone else just retries the O_EXCL create.
		stale := fmt.Sprintf("%s.stale.%d.%d", path, os.Getpid(), tries)
		if err := os.Rename(path, stale); err == nil {
			os.Remove(stale)
		}
	}
	return nil, fmt.Errorf("pipeline: lock workdir: gave up after repeated contention on %s", path)
}

// release drops the lock. Nil-safe so un-checkpointed runs (no
// workdir, no lock) need no guards.
func (l *lock) release() {
	if l == nil {
		return
	}
	os.Remove(l.path)
}

// pidAlive reports whether pid names a live process. Signal 0 probes
// without delivering: ESRCH means dead; EPERM means alive but owned
// by someone else — still a live holder, so the lock stands.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}
