package pipeline

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/core"
)

// TestLockExcludesConcurrentRun: a workdir held by a live process must
// refuse a second run instead of letting two writers corrupt the
// manifest.
func TestLockExcludesConcurrentRun(t *testing.T) {
	dir := t.TempDir()
	lk, err := acquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lk.release()

	frags := testFrags(4, 2, 2000, 40)
	_, err = Run(frags, Config{Core: testCoreConfig(), Workdir: dir, Flags: "t"})
	if !errors.Is(err, ErrWorkdirLocked) {
		t.Fatalf("Run on a locked workdir: err = %v, want ErrWorkdirLocked", err)
	}

	lk.release()
	if _, err := Run(frags, Config{Core: testCoreConfig(), Workdir: dir, Flags: "t"}); err != nil {
		t.Fatalf("Run after lock release: %v", err)
	}
	// The run releases its own lock on return.
	if _, err := os.Stat(filepath.Join(dir, lockFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lockfile survives a completed run: stat err = %v", err)
	}
}

// TestLockBreaksStaleDeadPID: a lock left behind by a SIGKILLed process
// (its PID no longer live) must be broken, not wedge the workdir.
func TestLockBreaksStaleDeadPID(t *testing.T) {
	dir := t.TempDir()
	// A real-but-dead PID: run a short-lived child and reuse its PID.
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot run 'true': %v", err)
	}
	dead := cmd.Process.Pid
	if err := os.WriteFile(filepath.Join(dir, lockFile), []byte(strconv.Itoa(dead)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lk, err := acquireLock(dir)
	if err != nil {
		t.Fatalf("stale lock (dead pid %d) not broken: %v", dead, err)
	}
	lk.release()
}

// TestLockBreaksTornContent: an unparseable lockfile (torn write) is
// stale by definition.
func TestLockBreaksTornContent(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, lockFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	lk, err := acquireLock(dir)
	if err != nil {
		t.Fatalf("torn lock not broken: %v", err)
	}
	lk.release()
}

// TestInterruptCheckpointsAtBoundary: an interrupt fires before the
// run starts; Run must stop at the first boundary with every completed
// phase journaled, and a resume must finish byte-identically to an
// uninterrupted run.
func TestInterruptCheckpointsAtBoundary(t *testing.T) {
	cfg := testCoreConfig()
	want, err := core.Run(testFrags(5, 3, 2200, 90), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	stop := make(chan struct{})
	close(stop)
	var phases []Phase
	_, err = Run(testFrags(5, 3, 2200, 90), Config{
		Core: cfg, Workdir: dir, Flags: "t", Interrupt: stop,
		OnPhase: func(p Phase) { phases = append(phases, p) },
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run: err = %v, want ErrInterrupted", err)
	}
	// Only the first phase ran before the boundary check fired.
	if len(phases) != 1 || phases[0] != PhasePreprocess {
		t.Fatalf("phases computed before interrupt = %v, want [preprocess]", phases)
	}
	got, err := Run(testFrags(5, 3, 2200, 90), Config{Core: cfg, Workdir: dir, Flags: "t", Resume: true})
	if err != nil {
		t.Fatalf("resume after interrupt: %v", err)
	}
	if !bytes.Equal(contigBytes(got), contigBytes(want)) {
		t.Error("resumed-after-interrupt contigs differ from uninterrupted run")
	}
}
