package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/wire"
)

// Phase names the pipeline stages a manifest records.
type Phase string

const (
	PhasePreprocess Phase = "preprocess"
	PhaseCluster    Phase = "cluster"
	PhaseAssembly   Phase = "assembly"
)

// Phases lists the stages in execution order.
var Phases = []Phase{PhasePreprocess, PhaseCluster, PhaseAssembly}

const (
	manifestMagic   = 0x706d6673 // "pmfs"
	manifestVersion = 2
	manifestFile    = "manifest"
	// maxAuxRecords bounds the auxiliary artifact list (currently two
	// entries: the disk store's data and index files).
	maxAuxRecords = 8
)

// record marks one completed phase: the artifact file holding its
// output and that file's SHA-256, so a torn or tampered artifact is
// detected before it silently corrupts a resumed run.
type record struct {
	name     string
	artifact string
	sum      string // hex SHA-256 of the artifact bytes
}

// manifest is the on-disk job journal of a checkpointed pipeline run:
// the input fingerprint, the configuration fingerprint, and one record
// per completed phase. All methods are nil-safe so an un-checkpointed
// run (no workdir) passes a nil manifest around.
type manifest struct {
	dir     string
	input   string // hex SHA-256 of the encoded input fragments
	flags   string // configuration fingerprint
	records []record
	// aux journals non-phase artifacts — files the run derives once
	// and later runs must reuse byte-for-byte (the disk store's data
	// and index files). Introduced by manifest version 2; a v1
	// manifest simply has none.
	aux []record
	lk  *lock // exclusive workdir lease, held until close
}

// close releases the workdir lock. Nil-safe (no-workdir runs carry a
// nil manifest) and idempotent.
func (m *manifest) close() {
	if m == nil {
		return
	}
	m.lk.release()
	m.lk = nil
}

func hashBytes(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

// openManifest prepares the workdir's manifest. With resume set an
// existing manifest is loaded and verified against the input and
// flags; otherwise any previous manifest is discarded and the run
// starts from scratch.
func openManifest(dir, inputHash, flags string, resume bool) (*manifest, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: workdir: %w", err)
	}
	lk, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	m := &manifest{dir: dir, input: inputHash, flags: flags, lk: lk}
	path := filepath.Join(dir, manifestFile)
	if !resume {
		if err := os.RemoveAll(path); err != nil {
			m.close()
			return nil, fmt.Errorf("pipeline: reset manifest: %w", err)
		}
		return m, nil
	}
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return m, nil // nothing to resume from: fresh run
	}
	if err != nil {
		m.close()
		return nil, fmt.Errorf("pipeline: read manifest: %w", err)
	}
	old, err := decodeManifest(b)
	if err != nil {
		m.close()
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if old.input != inputHash {
		m.close()
		return nil, errors.New("pipeline: manifest was written for different input (refusing to resume)")
	}
	if old.flags != flags {
		m.close()
		return nil, fmt.Errorf("pipeline: manifest was written with different configuration %q (refusing to resume)", old.flags)
	}
	m.records = old.records
	m.aux = old.aux
	return m, nil
}

func (m *manifest) encode() []byte {
	w := wire.NewBuffer(64)
	w.PutUint(manifestMagic)
	w.PutUint(manifestVersion)
	w.PutString(m.input)
	w.PutString(m.flags)
	w.PutUint(uint64(len(m.records)))
	for _, r := range m.records {
		w.PutString(r.name)
		w.PutString(r.artifact)
		w.PutString(r.sum)
	}
	w.PutUint(uint64(len(m.aux)))
	for _, r := range m.aux {
		w.PutString(r.name)
		w.PutString(r.artifact)
		w.PutString(r.sum)
	}
	return w.Bytes()
}

func decodeManifest(b []byte) (*manifest, error) {
	r := wire.NewReader(b)
	if r.Uint() != manifestMagic {
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("not a pipeline manifest (bad magic)")
	}
	v := r.Uint()
	if v != 1 && v != manifestVersion {
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("unsupported manifest version %d", v)
	}
	m := &manifest{input: r.String(), flags: r.String()}
	n := int(r.Uint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > len(Phases) {
		return nil, fmt.Errorf("manifest phase count %d out of range", n)
	}
	for i := 0; i < n; i++ {
		m.records = append(m.records, record{
			name:     r.String(),
			artifact: r.String(),
			sum:      r.String(),
		})
	}
	if v >= 2 {
		na := int(r.Uint())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if na < 0 || na > maxAuxRecords {
			return nil, fmt.Errorf("manifest aux count %d out of range", na)
		}
		for i := 0; i < na; i++ {
			m.aux = append(m.aux, record{
				name:     r.String(),
				artifact: r.String(),
				sum:      r.String(),
			})
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after manifest", r.Remaining())
	}
	return m, nil
}

// Rollback truncates a workdir's manifest to its first keep phases,
// exactly the state a run killed at that phase boundary leaves behind.
// Artifacts of later phases stay on disk but are no longer recorded,
// so a resumed run recomputes them. It is both an operator tool
// ("re-run from clustering onward") and the harness behind the
// kill-and-resume experiments.
func Rollback(dir string, keep int) error {
	b, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return fmt.Errorf("pipeline: rollback: %w", err)
	}
	m, err := decodeManifest(b)
	if err != nil {
		return fmt.Errorf("pipeline: rollback: %w", err)
	}
	if keep < 0 || keep > len(m.records) {
		return fmt.Errorf("pipeline: rollback to %d phases, manifest has %d", keep, len(m.records))
	}
	m.records = m.records[:keep]
	return writeAtomic(filepath.Join(dir, manifestFile), m.encode())
}

// writeAtomic writes b to path via a temp file + rename, so a crash
// mid-write never leaves a half-written artifact behind a valid name.
func writeAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// load returns the recorded artifact of a completed phase. ok is
// false when the phase has no record; a record whose artifact is
// missing or fails its checksum is an error, not a silent recompute.
func (m *manifest) load(p Phase) ([]byte, bool, error) {
	if m == nil {
		return nil, false, nil
	}
	for _, r := range m.records {
		if r.name != string(p) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(m.dir, r.artifact))
		if err != nil {
			return nil, false, fmt.Errorf("pipeline: phase %s artifact: %w", p, err)
		}
		if hashBytes(b) != r.sum {
			return nil, false, fmt.Errorf("pipeline: phase %s artifact %s fails its checksum", p, r.artifact)
		}
		return b, true, nil
	}
	return nil, false, nil
}

// auxSum returns the journaled checksum of a named auxiliary artifact.
func (m *manifest) auxSum(name string) (string, bool) {
	if m == nil {
		return "", false
	}
	for _, r := range m.aux {
		if r.name == name {
			return r.sum, true
		}
	}
	return "", false
}

// completeAux journals (or re-journals) an auxiliary artifact's
// checksum and persists the manifest. The artifact itself must already
// be durably on disk — same crash ordering as complete: a crash before
// the manifest write just rebuilds the artifact on resume.
func (m *manifest) completeAux(name, artifact, sum string) error {
	if m == nil {
		return nil
	}
	for i := range m.aux {
		if m.aux[i].name == name {
			m.aux[i].artifact, m.aux[i].sum = artifact, sum
			return writeAtomic(filepath.Join(m.dir, manifestFile), m.encode())
		}
	}
	m.aux = append(m.aux, record{name: name, artifact: artifact, sum: sum})
	return writeAtomic(filepath.Join(m.dir, manifestFile), m.encode())
}

// complete records a phase's artifact: the artifact is written first
// (atomically), then the manifest — so a crash between the two writes
// leaves a resumable manifest that simply re-runs the phase.
func (m *manifest) complete(p Phase, artifact []byte) error {
	if m == nil {
		return nil
	}
	name := string(p) + ".bin"
	if err := writeAtomic(filepath.Join(m.dir, name), artifact); err != nil {
		return fmt.Errorf("pipeline: write %s artifact: %w", p, err)
	}
	m.records = append(m.records, record{name: string(p), artifact: name, sum: hashBytes(artifact)})
	if err := writeAtomic(filepath.Join(m.dir, manifestFile), m.encode()); err != nil {
		return fmt.Errorf("pipeline: write manifest: %w", err)
	}
	return nil
}
