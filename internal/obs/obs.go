// Package obs is the runtime observability layer: a low-overhead
// per-rank ring-buffer event tracer, a metrics registry
// (counters/gauges/histograms with an expvar-style JSON snapshot),
// and an optional HTTP server exposing both plus net/http/pprof.
//
// The tracer records typed events with timestamps in two clock
// domains: the host wall clock and the machine's modeled clock (the
// α + n/β communication charges and analytic compute charges the par
// runtime accumulates per rank). Traces export as Chrome trace_event
// JSON — loadable in chrome://tracing or https://ui.perfetto.dev —
// and as a merged plain-text timeline.
//
// Overhead contract: every hook site in the runtime guards on a nil
// tracer/registry, so with observability disabled the hot path costs
// one nil check per operation and allocates nothing (enforced by the
// AllocsPerRun guard in internal/par). With tracing enabled, an event
// is one mutex acquisition and one in-place store into a
// preallocated ring; when a ring fills, the oldest events are
// overwritten and counted as dropped rather than growing memory.
package obs

import (
	"sync"
	"time"
)

// Kind is the event type tag.
type Kind uint8

// Event taxonomy. Begin/End kinds form spans; the rest are instants.
const (
	EvNone Kind = iota
	EvSendBegin
	EvSendEnd
	EvSsendBegin
	EvSsendEnd
	EvRecvBegin
	EvRecvEnd
	EvPhaseEnter
	EvPhaseExit
	EvPairGenerated
	EvPairAligned
	EvPairDiscarded
	EvClusterMerge
	EvLeaseGrant
	EvLeaseExpire
	EvLeaseAdopt
	EvFault
	EvCheckpoint
	EvRetransmit
	EvCorruptFrame
	EvRetry
	EvQuarantine
)

var kindNames = [...]string{
	EvNone:          "none",
	EvSendBegin:     "send",
	EvSendEnd:       "send",
	EvSsendBegin:    "ssend",
	EvSsendEnd:      "ssend",
	EvRecvBegin:     "recv",
	EvRecvEnd:       "recv",
	EvPhaseEnter:    "phase",
	EvPhaseExit:     "phase",
	EvPairGenerated: "pair-generated",
	EvPairAligned:   "pair-aligned",
	EvPairDiscarded: "pair-discarded",
	EvClusterMerge:  "cluster-merge",
	EvLeaseGrant:    "lease-grant",
	EvLeaseExpire:   "lease-expire",
	EvLeaseAdopt:    "lease-adopt",
	EvFault:         "fault",
	EvCheckpoint:    "checkpoint",
	EvRetransmit:    "retransmit",
	EvCorruptFrame:  "corrupt_frame",
	EvRetry:         "retry",
	EvQuarantine:    "quarantined",
}

// String returns the event family name ("send" for both SendBegin and
// SendEnd).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// isBegin reports whether k opens a span.
func (k Kind) isBegin() bool {
	return k == EvSendBegin || k == EvSsendBegin || k == EvRecvBegin || k == EvPhaseEnter
}

// isEnd reports whether k closes a span.
func (k Kind) isEnd() bool {
	return k == EvSendEnd || k == EvSsendEnd || k == EvRecvEnd || k == EvPhaseExit
}

// Phase identifiers carried in the A argument of EvPhaseEnter/Exit.
const (
	PhaseGST       int64 = 1 + iota // parallel GST construction
	PhaseCluster                    // master–worker clustering loop
	PhaseAlign                      // one worker alignment batch
	PhaseRecover                    // rebuilding a dead rank's GST portion
	PhaseGSTRedist                  // GST suffix redistribution (Alltoallv)
	PhaseGSTFetch                   // one GST fragment-fetch round
	PhasePairGen                    // worker promising-pair generation
	PhaseMaster                     // master protocol loop (rank 0)
)

// PhaseName names a phase identifier.
func PhaseName(id int64) string {
	switch id {
	case PhaseGST:
		return "gst"
	case PhaseCluster:
		return "cluster"
	case PhaseAlign:
		return "align-batch"
	case PhaseRecover:
		return "recover"
	case PhaseGSTRedist:
		return "gst-redistribute"
	case PhaseGSTFetch:
		return "gst-fetch"
	case PhasePairGen:
		return "pairgen"
	case PhaseMaster:
		return "master"
	}
	return "phase"
}

// Fault codes carried in the A argument of EvFault.
const (
	FaultCrash   int64 = 1 + iota // fault-plan kill (B = 0)
	FaultDrop                     // eager message dropped (B = dst, C = tag)
	FaultDelay                    // eager message delayed (B = dst, C = tag)
	FaultCascade                  // dead-rank cascade: blocked on a corpse
)

// FaultName names a fault code.
func FaultName(code int64) string {
	switch code {
	case FaultCrash:
		return "crash"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultCascade:
		return "cascade"
	}
	return "fault"
}

// Event is one trace record. Wall is nanoseconds since the tracer's
// epoch; Comm and Comp are the emitting rank's modeled communication
// and computation clocks (seconds) at emission. A, B and C are
// kind-specific arguments:
//
//	send/ssend begin+end:  A = dst,   B = tag,   C = bytes
//	recv begin:            A = src selector, B = tag selector
//	recv end:              A = src,   B = tag,   C = bytes (−1: timeout)
//	phase enter/exit:      A = phase id
//	pair-*:                A = count, B = peer rank (when known)
//	cluster-merge:         A = fragment a, B = fragment b
//	lease-grant:           A = worker, B = batch pairs, C = request size
//	lease-expire:          A = worker, B = requeued pairs
//	lease-adopt:           A = adopter, B = adopted portions
//	fault:                 A = fault code, B/C = code-specific
//	checkpoint:            A = encoded bytes
//	retransmit:            A = dst,   B = tag,   C = attempt number
//	corrupt_frame:         A = dst,   B = tag,   C = frame bytes
//	retry:                 A = cluster id, B = attempt number
//	quarantined:           A = cluster id, B = reads emitted as singletons
//
// Seq is the per-sender message sequence number: every send a rank
// performs increments its counter, and the receive completing that
// message carries the same value — so (src, Seq) identifies a message
// exactly and trace analysis can stitch send→recv causal edges without
// heuristics. Zero on events that are not message transfers.
//
// The JSON field names are the compact encoding of the raw events dump
// (see Dump), the lossless format cmd/traceanalyze consumes.
type Event struct {
	Kind Kind    `json:"k"`
	Rank int32   `json:"r"`
	Wall int64   `json:"w"`
	Comm float64 `json:"cm"`
	Comp float64 `json:"cp"`
	A    int64   `json:"a,omitempty"`
	B    int64   `json:"b,omitempty"`
	C    int64   `json:"c,omitempty"`
	Seq  uint64  `json:"seq,omitempty"`
}

// PhaseSpan is one completed phase on one rank, with the modeled
// communication/computation accumulated inside it — the quantity
// Fig. 5-style comm/comp decompositions read directly off the trace.
type PhaseSpan struct {
	Rank        int
	Phase       int64
	StartNs     int64
	EndNs       int64
	CommSeconds float64
	CompSeconds float64
}

// WallSeconds returns the span's wall-clock duration in seconds.
func (s PhaseSpan) WallSeconds() float64 {
	return float64(s.EndNs-s.StartNs) / 1e9
}

// Modeled returns the span's modeled runtime (comm + comp seconds).
func (s PhaseSpan) Modeled() float64 { return s.CommSeconds + s.CompSeconds }

// openSpan is a phase-enter awaiting its exit on a rank's stack.
type openSpan struct {
	phase   int64
	startNs int64
	comm    float64
	comp    float64
}

// ring is one rank's fixed-capacity event buffer. Oldest events are
// overwritten on overflow; next counts every event ever emitted so
// Dropped is derivable.
type ring struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64
	stack []openSpan
}

// DefaultRingCap is the per-rank event capacity used by the CLI tools
// (≈1 MiB of events per rank).
const DefaultRingCap = 1 << 14

// Tracer records events from the ranks of one or more machine runs.
// Emission is safe for concurrent use by any number of goroutines.
type Tracer struct {
	epoch time.Time
	now   func() time.Time // test hook
	cap   int

	mu    sync.RWMutex
	rings []*ring

	spanMu sync.Mutex
	spans  []PhaseSpan
}

// NewTracer returns a tracer sized for the given rank count (rings
// grow on demand if a higher rank emits) with the given per-rank
// event capacity (0: DefaultRingCap).
func NewTracer(ranks, capacity int) *Tracer {
	return NewTracerAt(ranks, capacity, time.Now)
}

// NewTracerAt is NewTracer with an explicit clock: wall timestamps are
// read from now, and the epoch is now()'s first value. Tests feed a
// scripted clock here so exported traces are byte-reproducible.
func NewTracerAt(ranks, capacity int, now func() time.Time) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	if ranks < 1 {
		ranks = 1
	}
	t := &Tracer{epoch: now(), now: now, cap: capacity}
	t.rings = make([]*ring, ranks)
	for i := range t.rings {
		t.rings[i] = &ring{buf: make([]Event, capacity)}
	}
	return t
}

// ring returns rank's ring, growing the tracer if needed.
func (t *Tracer) ring(rank int) *ring {
	t.mu.RLock()
	if rank < len(t.rings) {
		r := t.rings[rank]
		t.mu.RUnlock()
		return r
	}
	t.mu.RUnlock()
	t.mu.Lock()
	for len(t.rings) <= rank {
		t.rings = append(t.rings, &ring{buf: make([]Event, t.cap)})
	}
	r := t.rings[rank]
	t.mu.Unlock()
	return r
}

// Emit records one event on rank's ring. commSec/compSec are the
// rank's modeled clocks at emission. Phase enter/exit events
// additionally maintain the completed-span list, which is never
// evicted by ring wraparound (spans are rare; messages are not).
func (t *Tracer) Emit(rank int, k Kind, commSec, compSec float64, a, b, c int64) {
	t.EmitSeq(rank, k, commSec, compSec, a, b, c, 0)
}

// EmitSeq is Emit for message-transfer events, additionally stamping
// the sender's per-rank sequence number so send and receive records of
// the same message share a (src, seq) correlation key.
func (t *Tracer) EmitSeq(rank int, k Kind, commSec, compSec float64, a, b, c int64, seq uint64) {
	if t == nil {
		return
	}
	wall := t.now().Sub(t.epoch).Nanoseconds()
	r := t.ring(rank)
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = Event{
		Kind: k, Rank: int32(rank), Wall: wall,
		Comm: commSec, Comp: compSec, A: a, B: b, C: c, Seq: seq,
	}
	r.next++
	switch k {
	case EvPhaseEnter:
		r.stack = append(r.stack, openSpan{phase: a, startNs: wall, comm: commSec, comp: compSec})
	case EvPhaseExit:
		// Pop to the matching enter, discarding any unexited inner
		// phases (a rank that crashed mid-phase never exits it).
		for i := len(r.stack) - 1; i >= 0; i-- {
			if r.stack[i].phase != a {
				continue
			}
			o := r.stack[i]
			r.stack = r.stack[:i]
			t.spanMu.Lock()
			t.spans = append(t.spans, PhaseSpan{
				Rank: rank, Phase: a,
				StartNs: o.startNs, EndNs: wall,
				CommSeconds: commSec - o.comm,
				CompSeconds: compSec - o.comp,
			})
			t.spanMu.Unlock()
			break
		}
	}
	r.mu.Unlock()
}

// Ranks returns the number of rank rings currently allocated.
func (t *Tracer) Ranks() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rings)
}

// Events returns rank's retained events, oldest first.
func (t *Tracer) Events(rank int) []Event {
	if t == nil || rank >= t.Ranks() {
		return nil
	}
	r := t.ring(rank)
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	capU := uint64(len(r.buf))
	count := n
	if count > capU {
		count = capU
	}
	out := make([]Event, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, r.buf[i%capU])
	}
	return out
}

// Dropped returns how many of rank's events were overwritten by ring
// wraparound.
func (t *Tracer) Dropped(rank int) uint64 {
	if t == nil || rank >= t.Ranks() {
		return 0
	}
	r := t.ring(rank)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next > uint64(len(r.buf)) {
		return r.next - uint64(len(r.buf))
	}
	return 0
}

// TotalEvents returns the number of events ever emitted across ranks
// (including any since overwritten).
func (t *Tracer) TotalEvents() uint64 {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n uint64
	for _, r := range t.rings {
		r.mu.Lock()
		n += r.next
		r.mu.Unlock()
	}
	return n
}

// SpanMark is a position in the completed-span list; see Mark.
type SpanMark int

// Mark returns a cursor such that SpansSince(Mark()) yields only the
// phase spans completed after this call — the hook experiment sweeps
// use to isolate one machine run on a shared tracer.
func (t *Tracer) Mark() SpanMark {
	if t == nil {
		return 0
	}
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	return SpanMark(len(t.spans))
}

// Spans returns every completed phase span in completion order.
func (t *Tracer) Spans() []PhaseSpan { return t.SpansSince(0) }

// SpansSince returns the phase spans completed after mark.
func (t *Tracer) SpansSince(mark SpanMark) []PhaseSpan {
	if t == nil {
		return nil
	}
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	if int(mark) >= len(t.spans) {
		return nil
	}
	out := make([]PhaseSpan, len(t.spans)-int(mark))
	copy(out, t.spans[mark:])
	return out
}

// Reset discards all retained events and spans but keeps the epoch,
// ring allocation and capacity — cmd/experiments resets between
// experiments so each trace file holds exactly one experiment.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.RLock()
	for _, r := range t.rings {
		r.mu.Lock()
		r.next = 0
		r.stack = r.stack[:0]
		r.mu.Unlock()
	}
	t.mu.RUnlock()
	t.spanMu.Lock()
	t.spans = nil
	t.spanMu.Unlock()
}
