package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock returns a now() hook that advances 1 ms per call, and the
// epoch it starts from — deterministic wall timestamps for tests.
func fakeClock() (func() time.Time, time.Time) {
	epoch := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		n++
		return epoch.Add(time.Duration(n) * time.Millisecond)
	}, epoch
}

func newTestTracer(ranks, capacity int) *Tracer {
	t := NewTracer(ranks, capacity)
	t.now, t.epoch = fakeClock()
	return t
}

// TestConcurrentEmission hammers one tracer from many goroutines per
// rank plus concurrent readers — the -race guarantee behind emitting
// from live machine ranks while an HTTP handler exports.
func TestConcurrentEmission(t *testing.T) {
	const ranks, perRank = 8, 1000
	tr := NewTracer(ranks, 256)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perRank; i++ {
				tr.Emit(r, EvSendBegin, float64(i), 0, int64(r), 7, 64)
				tr.Emit(r, EvSendEnd, float64(i), 0, int64(r), 7, 64)
			}
		}(r)
	}
	// Concurrent readers while emission is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for r := 0; r < ranks; r++ {
				tr.Events(r)
				tr.Dropped(r)
			}
			tr.TotalEvents()
		}
	}()
	wg.Wait()

	if got := tr.TotalEvents(); got != ranks*perRank*2 {
		t.Fatalf("TotalEvents = %d, want %d", got, ranks*perRank*2)
	}
	for r := 0; r < ranks; r++ {
		if got := len(tr.Events(r)); got != 256 {
			t.Errorf("rank %d retained %d events, want ring cap 256", r, got)
		}
		if got := tr.Dropped(r); got != perRank*2-256 {
			t.Errorf("rank %d dropped %d, want %d", r, got, perRank*2-256)
		}
	}
}

// TestRingWraparound: the ring keeps the newest events, oldest first.
func TestRingWraparound(t *testing.T) {
	tr := newTestTracer(1, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(0, EvClusterMerge, 0, 0, int64(i), 0, 0)
	}
	evs := tr.Events(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.A != want {
			t.Errorf("event %d has A=%d, want %d (newest 4, oldest first)", i, e.A, want)
		}
	}
	if d := tr.Dropped(0); d != 6 {
		t.Errorf("Dropped = %d, want 6", d)
	}
}

// TestPhaseSpans: nesting, modeled-clock deltas, and the discard of a
// phase a rank never exited (crash mid-phase).
func TestPhaseSpans(t *testing.T) {
	tr := newTestTracer(2, 64)
	tr.Emit(0, EvPhaseEnter, 0.0, 0.0, PhaseCluster, 0, 0)
	tr.Emit(0, EvPhaseEnter, 0.1, 0.2, PhaseAlign, 0, 0)
	tr.Emit(0, EvPhaseExit, 0.3, 0.7, PhaseAlign, 0, 0)
	// Rank 1 enters a phase and never exits (dies): no span.
	tr.Emit(1, EvPhaseEnter, 0, 0, PhaseGST, 0, 0)
	tr.Emit(0, EvPhaseExit, 0.5, 1.0, PhaseCluster, 0, 0)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (inner align, outer cluster)", len(spans))
	}
	in, out := spans[0], spans[1]
	if in.Phase != PhaseAlign || out.Phase != PhaseCluster {
		t.Fatalf("span order: got %v,%v", in.Phase, out.Phase)
	}
	approx := func(got, want float64) bool { return got > want-1e-9 && got < want+1e-9 }
	if !approx(in.CommSeconds, 0.2) || !approx(in.CompSeconds, 0.5) {
		t.Errorf("inner span deltas comm=%v comp=%v, want 0.2, 0.5", in.CommSeconds, in.CompSeconds)
	}
	if !approx(out.CommSeconds, 0.5) || !approx(out.CompSeconds, 1.0) {
		t.Errorf("outer span deltas comm=%v comp=%v, want 0.5, 1.0", out.CommSeconds, out.CompSeconds)
	}
	if out.StartNs >= out.EndNs {
		t.Errorf("outer span wall range [%d, %d] not increasing", out.StartNs, out.EndNs)
	}
}

// TestExitDiscardsUnmatchedInner: exiting an outer phase discards an
// inner enter that never exited, instead of mispairing.
func TestExitDiscardsUnmatchedInner(t *testing.T) {
	tr := newTestTracer(1, 64)
	tr.Emit(0, EvPhaseEnter, 0, 0, PhaseCluster, 0, 0)
	tr.Emit(0, EvPhaseEnter, 0, 0, PhaseAlign, 0, 0) // never exits
	tr.Emit(0, EvPhaseExit, 0, 0, PhaseCluster, 0, 0)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Phase != PhaseCluster {
		t.Fatalf("got %+v, want single cluster span", spans)
	}
}

// TestMarkSpansSince: a mark isolates one run's spans on a shared
// tracer (how Fig5 sweeps reuse the -trace-out tracer).
func TestMarkSpansSince(t *testing.T) {
	tr := newTestTracer(1, 64)
	tr.Emit(0, EvPhaseEnter, 0, 0, PhaseGST, 0, 0)
	tr.Emit(0, EvPhaseExit, 0, 0.5, PhaseGST, 0, 0)
	mark := tr.Mark()
	tr.Emit(0, EvPhaseEnter, 0, 0.5, PhaseGST, 0, 0)
	tr.Emit(0, EvPhaseExit, 0, 0.9, PhaseGST, 0, 0)
	since := tr.SpansSince(mark)
	if len(since) != 1 {
		t.Fatalf("SpansSince: got %d spans, want 1", len(since))
	}
	if got := since[0].CompSeconds; got < 0.39 || got > 0.41 {
		t.Errorf("second run's span comp = %v, want 0.4", got)
	}
	if got := len(tr.Spans()); got != 2 {
		t.Errorf("total spans %d, want 2", got)
	}
}

// TestRingGrowth: emitting on a rank beyond the initial allocation
// grows the tracer instead of panicking.
func TestRingGrowth(t *testing.T) {
	tr := newTestTracer(2, 8)
	tr.Emit(7, EvCheckpoint, 0, 0, 123, 0, 0)
	if tr.Ranks() < 8 {
		t.Fatalf("Ranks = %d after emitting on rank 7, want ≥ 8", tr.Ranks())
	}
	evs := tr.Events(7)
	if len(evs) != 1 || evs[0].A != 123 {
		t.Fatalf("rank 7 events = %+v", evs)
	}
}

// TestReset clears events and spans but keeps the tracer usable.
func TestReset(t *testing.T) {
	tr := newTestTracer(2, 8)
	tr.Emit(0, EvPhaseEnter, 0, 0, PhaseGST, 0, 0)
	tr.Emit(0, EvPhaseExit, 0, 1, PhaseGST, 0, 0)
	tr.Emit(1, EvClusterMerge, 0, 0, 1, 2, 0)
	tr.Reset()
	if tr.TotalEvents() != 0 || len(tr.Spans()) != 0 {
		t.Fatalf("Reset left %d events, %d spans", tr.TotalEvents(), len(tr.Spans()))
	}
	tr.Emit(0, EvClusterMerge, 0, 0, 9, 9, 0)
	if got := len(tr.Events(0)); got != 1 {
		t.Fatalf("post-Reset emission retained %d events, want 1", got)
	}
}

// TestNilTracer: every method is a no-op on nil — the disabled path.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, EvSendBegin, 0, 0, 0, 0, 0)
	if tr.Ranks() != 0 || tr.Events(0) != nil || tr.Dropped(0) != 0 ||
		tr.TotalEvents() != 0 || tr.Spans() != nil || tr.SpansSince(0) != nil {
		t.Fatal("nil tracer accessor returned non-zero")
	}
	tr.Reset()
	if tr.Mark() != 0 {
		t.Fatal("nil Mark != 0")
	}
}

func TestKindAndNames(t *testing.T) {
	if EvSendBegin.String() != "send" || EvSendEnd.String() != "send" {
		t.Error("send family name")
	}
	if Kind(250).String() != "unknown" {
		t.Error("out-of-range kind")
	}
	if PhaseName(PhaseGST) != "gst" || PhaseName(99) != "phase" {
		t.Error("phase names")
	}
	if FaultName(FaultDrop) != "drop" || FaultName(99) != "fault" {
		t.Error("fault names")
	}
}
