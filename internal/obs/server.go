package obs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server exposes a Registry and Tracer over HTTP:
//
//	/metrics   expvar-style JSON snapshot of the registry
//	/trace     Chrome trace_event JSON of the retained events
//	/timeline  merged plain-text per-rank timeline
//	/debug/pprof/...  the standard Go profiling endpoints
//
// Either of reg/tr may be nil; the corresponding endpoints then serve
// an empty payload. The pprof endpoints are always live, so -obs-addr
// gives CPU/heap/goroutine profiling even on untraced serial runs.
type Server struct {
	// Addr is the actual listen address (useful with ":0").
	Addr string

	srv  *http.Server
	ln   net.Listener
	once sync.Once
	err  error
}

// Endpoint is an extra HTTP route a caller mounts on the
// observability server. It keeps obs free of upward dependencies:
// packages layered above obs (internal/obs/analyze) export an
// Endpoint rather than obs importing them.
type Endpoint struct {
	Path    string
	Handler http.Handler
}

// pprofEndpoints are the profiling routes the index advertises:
// the named runtime/pprof lookup profiles pprof.Index serves under
// /debug/pprof/, plus the sampling handlers mounted explicitly.
var pprofEndpoints = []string{
	"profile", "heap", "allocs", "goroutine",
	"block", "mutex", "threadcreate",
	"cmdline", "symbol", "trace",
}

// Serve starts an observability server on addr ("host:port"; ":0"
// picks a free port) and returns once it is listening. The server
// runs until Close. Extra endpoints are mounted verbatim and listed
// on the index page.
func Serve(addr string, reg *Registry, tr *Tracer, extra ...Endpoint) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "observability endpoints:\n  /metrics\n  /trace\n  /timeline\n")
		for _, ep := range extra {
			fmt.Fprintf(w, "  %s\n", ep.Path)
		}
		fmt.Fprintf(w, "  /debug/pprof/\n")
		for _, p := range pprofEndpoints {
			fmt.Fprintf(w, "  /debug/pprof/%s\n", p)
		}
	})
	for _, ep := range extra {
		mux.Handle(ep.Path, ep.Handler)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if tr == nil {
			fmt.Fprint(w, `{"traceEvents":[]}`)
			return
		}
		if err := tr.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if tr != nil {
			if err := tr.WriteTimeline(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Close stops the server immediately, dropping in-flight requests,
// and releases the listener. Safe to call more than once and after
// Shutdown.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.once.Do(func() {
		s.err = s.srv.Close()
		// srv.Close closes the tracked listener too; closing again is
		// belt and braces for the window before Serve registered it.
		if cerr := s.ln.Close(); s.err == nil && cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			s.err = cerr
		}
	})
	return s.err
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish (a final scrape in progress completes), bounded
// by ctx. After Shutdown returns, the listener is released; a later
// Close is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	var err error
	s.once.Do(func() {
		err = s.srv.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			err = s.srv.Close() // drain timed out: drop what's left
		}
		s.err = err
	})
	return err
}
