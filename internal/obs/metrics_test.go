package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestNilHandles: nil registry yields nil handles whose methods no-op
// — the one-nil-check disabled path instrumented code relies on.
func TestNilHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Add(5)
	c.Inc()
	g.Set(9)
	g.SetMax(10)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles accumulated values")
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if r.Counter("ops") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.SetMax(5) // lower: no change
	if g.Value() != 7 {
		t.Fatalf("SetMax lowered the gauge to %d", g.Value())
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Fatalf("SetMax failed to raise: %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 5556.5 {
		t.Fatalf("sum = %v, want 5556.5", h.Sum())
	}
	snap := h.snapshot()
	buckets := snap["buckets"].([]histBucket)
	wantCounts := []int64{2, 1, 1, 2} // ≤1: {0.5, 1}; ≤10: {5}; ≤100: {50}; +Inf: {500, 5000}
	for i, want := range wantCounts {
		if buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, buckets[i].Count, want)
		}
	}
	if buckets[3].Le != "+Inf" {
		t.Errorf("overflow bucket label = %v, want +Inf", buckets[3].Le)
	}
}

// TestConcurrentMetrics exercises all metric types from many
// goroutines under -race and checks the totals.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Gauge("peak").SetMax(int64(i*1000 + j))
				r.Histogram("h", []float64{500}).Observe(1)
			}
		}(i)
	}
	wg.Wait()
	if v := r.Counter("n").Value(); v != 8000 {
		t.Errorf("counter = %d, want 8000", v)
	}
	if v := r.Gauge("peak").Value(); v != 7999 {
		t.Errorf("peak = %d, want 7999", v)
	}
	h := r.Histogram("h", nil)
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Errorf("hist count=%d sum=%v, want 8000/8000", h.Count(), h.Sum())
	}
}

// TestWriteJSON: the endpoint payload is valid JSON including the
// +Inf overflow bucket (which float64 marshaling cannot express).
func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs").Add(42)
	r.Gauge("depth").Set(3)
	r.Histogram("lat", []float64{1}).Observe(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.Bytes())
	}
	if out["msgs"] != float64(42) || out["depth"] != float64(3) {
		t.Errorf("snapshot values wrong: %v", out)
	}
	if _, ok := out["uptime_seconds"]; !ok {
		t.Error("missing uptime_seconds")
	}
	lat := out["lat"].(map[string]any)
	buckets := lat["buckets"].([]any)
	last := buckets[len(buckets)-1].(map[string]any)
	if last["le"] != "+Inf" {
		t.Errorf("overflow bucket le = %v", last["le"])
	}
}
