package obs

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// TestEventsSinceCursor: reading the log in arbitrary chunk sizes
// through a cursor reproduces exactly what a single Events read sees.
func TestEventsSinceCursor(t *testing.T) {
	tr := newTestTracer(1, 64)
	for i := 0; i < 40; i++ {
		tr.Emit(0, EvClusterMerge, 0, 0, int64(i), int64(i+1), 0)
	}
	var got []Event
	var cursor uint64
	for {
		evs, next, lost := tr.EventsSince(0, cursor)
		if lost != 0 {
			t.Fatalf("lost %d events without wraparound", lost)
		}
		got = append(got, evs...)
		if next == cursor {
			break
		}
		cursor = next
		// Interleave more emissions with reads.
		if len(got) < 60 {
			for i := 0; i < 10; i++ {
				tr.Emit(0, EvClusterMerge, 0, 0, int64(len(got)+i), 0, 0)
			}
		}
	}
	want := tr.Events(0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cursor walk diverged: got %d events, want %d", len(got), len(want))
	}
}

// TestEventsSinceWraparound: a slow reader loses exactly the events
// the ring evicted, and gets the retained suffix.
func TestEventsSinceWraparound(t *testing.T) {
	const capN, emitted = 8, 20
	tr := newTestTracer(1, capN)
	for i := 0; i < emitted; i++ {
		tr.Emit(0, EvClusterMerge, 0, 0, int64(i), 0, 0)
	}
	evs, next, lost := tr.EventsSince(0, 0)
	if next != emitted {
		t.Fatalf("next = %d, want %d", next, emitted)
	}
	if lost != emitted-capN {
		t.Fatalf("lost = %d, want %d", lost, emitted-capN)
	}
	if len(evs) != capN || evs[0].A != emitted-capN || evs[capN-1].A != emitted-1 {
		t.Fatalf("retained suffix wrong: %+v", evs)
	}

	// A cursor beyond the log (tracer restarted) clamps, not panics.
	evs, next, lost = tr.EventsSince(0, 10_000)
	if len(evs) != 0 || next != emitted || lost != 0 {
		t.Fatalf("clamped read: events %d next %d lost %d", len(evs), next, lost)
	}
}

// TestMetricsDeltaRoundTrip is the property the collector depends on:
// for a random op sequence, replaying every interval delta (through a
// JSON round-trip, as on the wire) onto an empty state reproduces the
// final registry snapshot exactly.
func TestMetricsDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reg := NewRegistry()
	replica := NewMetricsState()
	bounds := []float64{1, 10, 100}

	prev := (*MetricsState)(nil)
	for round := 0; round < 60; round++ {
		for op := 0; op < rng.Intn(20); op++ {
			name := string(rune('a' + rng.Intn(6)))
			switch rng.Intn(3) {
			case 0:
				// Nonzero increments: a counter born at zero produces no
				// delta entry, so the replica would (correctly) not know
				// it exists yet — which DeepEqual would flag.
				reg.Counter("ctr_" + name).Add(int64(rng.Intn(50)) + 1)
			case 1:
				reg.Gauge("g_" + name).Set(int64(rng.Intn(1000) - 500))
			case 2:
				// Integer-valued observations keep float sums exact, so
				// the equality check below has no tolerance to tune.
				reg.Histogram("h_"+name, bounds).Observe(float64(rng.Intn(200)))
			}
		}
		cur := CaptureMetrics(reg)
		d := cur.Delta(prev)
		prev = cur

		wire, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var back MetricsDelta
		if err := json.Unmarshal(wire, &back); err != nil {
			t.Fatal(err)
		}
		if err := replica.Apply(&back); err != nil {
			t.Fatal(err)
		}
	}

	final := CaptureMetrics(reg)
	if !reflect.DeepEqual(replica, final) {
		t.Fatalf("replayed deltas diverge from final state:\nreplica: %+v\nfinal:   %+v", replica, final)
	}
	// And the rendered form matches the expvar-shaped snapshot too.
	if !reflect.DeepEqual(replica.Snapshot(), final.Snapshot()) {
		t.Fatal("Snapshot() of replica differs from final state's")
	}
}

// TestMetricsDeltaEmpty: no changes, no payload.
func TestMetricsDeltaEmpty(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Add(2)
	a := CaptureMetrics(reg)
	if d := a.Delta(nil); d.Empty() {
		t.Fatal("first delta should carry the counter")
	}
	b := CaptureMetrics(reg)
	if d := b.Delta(a); !d.Empty() {
		t.Fatalf("unchanged registry produced delta %+v", d)
	}
	var nilDelta *MetricsDelta
	if !nilDelta.Empty() {
		t.Fatal("nil delta should be empty")
	}
	if err := NewMetricsState().Apply(nil); err != nil {
		t.Fatal(err)
	}
}
