package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(3)
	tr := newTestTracer(1, 16)
	tr.Emit(0, EvClusterMerge, 0, 0, 1, 2, 0)

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	code, body := get(t, base+"/metrics")
	var m map[string]any
	if code != 200 || json.Unmarshal(body, &m) != nil || m["hits"] != float64(3) {
		t.Fatalf("/metrics: code %d body %s", code, body)
	}

	code, body = get(t, base+"/trace")
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if code != 200 || json.Unmarshal(body, &tf) != nil || len(tf.TraceEvents) == 0 {
		t.Fatalf("/trace: code %d body %.120s", code, body)
	}

	code, body = get(t, base+"/timeline")
	if code != 200 || !strings.Contains(string(body), "cluster-merge") {
		t.Fatalf("/timeline: code %d body %.120s", code, body)
	}

	code, _ = get(t, base+"/debug/pprof/")
	if code != 200 {
		t.Fatalf("/debug/pprof/: code %d", code)
	}

	code, _ = get(t, base+"/nope")
	if code != 404 {
		t.Fatalf("/nope: code %d, want 404", code)
	}
}

// TestServerShutdown: Shutdown and Close are idempotent, release the
// port (a second server can bind the same address), and a closed
// server refuses connections.
func TestServerShutdown(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr
	if code, _ := get(t, "http://"+addr+"/metrics"); code != 200 {
		t.Fatalf("/metrics before shutdown: code %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("request succeeded against a shut-down server")
	}
	// The listener is truly gone: the exact address can be rebound.
	srv2, err := Serve(addr, nil, nil)
	if err != nil {
		t.Fatalf("rebind %s after shutdown: %v", addr, err)
	}
	srv2.Close()
}

// TestServerNilSources: a server with no registry or tracer still
// serves pprof and empty payloads.
func TestServerNilSources(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr
	code, body := get(t, base+"/trace")
	if code != 200 || !strings.Contains(string(body), "traceEvents") {
		t.Fatalf("/trace nil tracer: code %d body %s", code, body)
	}
	code, _ = get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics nil registry: code %d", code)
	}
}
