package analyze

import (
	"net/http"

	"repro/internal/obs"
)

// Handler serves on-demand causal analysis of a live tracer.
// ?format=json returns the deterministic report JSON, ?format=chrome
// the critical-path-annotated Chrome trace; the default is text.
func Handler(tr *obs.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		dump := tr.Dump()
		rep, err := Analyze(dump, Options{})
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		switch req.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			err = rep.WriteJSON(w)
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			err = rep.WriteAnnotatedChrome(w, dump)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			err = rep.WriteText(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Endpoint mounts Handler at /analyze on an obs.Serve server.
func Endpoint(tr *obs.Tracer) obs.Endpoint {
	return obs.Endpoint{Path: "/analyze", Handler: Handler(tr)}
}
