package analyze

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Incremental is the streaming entry point to the causal analysis:
// per-rank event batches are appended as they arrive from the
// collector's delta stream, and Report re-derives the full analysis
// over everything received so far. Recomputation is memoized — a
// Report call recomputes only when new data arrived since the cached
// report, and at most once per MinInterval — so a dashboard polling at
// a few hertz amortizes the DAG pass instead of paying it per poll.
//
// Mid-run reports run in Partial mode: receives whose sends have not
// been streamed yet carry no message edge, so idle attribution is a
// lower bound that tightens as the lagging streams catch up. Once
// every rank's authoritative final dump replaces its streamed prefix
// (Replace), the report is exactly the post-hoc Analyze of the merged
// dump.
type Incremental struct {
	opt Options

	mu       sync.Mutex
	perRank  map[int][]obs.Event
	dropped  map[int]uint64
	gen      uint64 // bumped by every mutation
	events   int
	cachedAt uint64 // generation the cached report was computed at
	cached   *Report
	cachedT  time.Time
	err      error

	// MinInterval rate-limits recomputation (default 250ms; negative
	// disables the limit — tests want every Report fresh).
	MinInterval time.Duration
	now         func() time.Time
}

// NewIncremental returns an empty incremental analysis. Partial mode
// is forced on: a live prefix is partial by definition.
func NewIncremental(opt Options) *Incremental {
	opt.Partial = true
	return &Incremental{
		opt:     opt,
		perRank: map[int][]obs.Event{},
		dropped: map[int]uint64{},
		now:     time.Now,
	}
}

// Append adds a batch of rank's events in stream order.
func (inc *Incremental) Append(rank int, evs []obs.Event) {
	if len(evs) == 0 {
		return
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.perRank[rank] = append(inc.perRank[rank], evs...)
	inc.events += len(evs)
	inc.gen++
}

// AddDropped records that n more of rank's events were evicted before
// they could be streamed; the rank's stream is truncated from here on.
func (inc *Incremental) AddDropped(rank int, n uint64) {
	if n == 0 {
		return
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.dropped[rank] += n
	inc.gen++
}

// Replace swaps rank's accumulated stream for an authoritative one —
// the rank's final-flush dump — so the post-run report matches the
// post-hoc analysis of the merged dump exactly.
func (inc *Incremental) Replace(rank int, evs []obs.Event, dropped uint64) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.events += len(evs) - len(inc.perRank[rank])
	inc.perRank[rank] = evs
	inc.dropped[rank] = dropped
	inc.gen++
	// An authoritative dump bypasses the rate limit: the very next
	// Report reflects it, so a poll right after the run completes never
	// sees a stale mid-run analysis.
	inc.cachedT = time.Time{}
}

// EventCount returns the number of events accumulated so far.
func (inc *Incremental) EventCount() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.events
}

// Dump snapshots the accumulated streams as an obs.Dump (rank slices
// are shared, not copied; treat the result as read-only).
func (inc *Incremental) Dump() *obs.Dump {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.dumpLocked()
}

func (inc *Incremental) dumpLocked() *obs.Dump {
	ranks := make([]int, 0, len(inc.perRank))
	for r := range inc.perRank {
		ranks = append(ranks, r)
	}
	for r := range inc.dropped {
		if _, ok := inc.perRank[r]; !ok {
			ranks = append(ranks, r)
		}
	}
	sort.Ints(ranks)
	d := &obs.Dump{Version: obs.DumpVersion}
	for _, r := range ranks {
		d.Ranks = append(d.Ranks, obs.RankDump{
			Rank:    r,
			Dropped: inc.dropped[r],
			Events:  inc.perRank[r],
		})
	}
	return d
}

// Report returns the analysis of everything streamed so far. The
// cached report is reused when nothing changed, or when the last
// recompute was under MinInterval ago.
func (inc *Incremental) Report() (*Report, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	interval := inc.MinInterval
	if interval == 0 {
		interval = 250 * time.Millisecond
	}
	fresh := inc.cachedAt == inc.gen
	if (inc.cached != nil || inc.err != nil) && (fresh || (interval > 0 && inc.now().Sub(inc.cachedT) < interval)) {
		return inc.cached, inc.err
	}
	d := inc.dumpLocked()
	inc.cachedAt = inc.gen
	inc.cachedT = inc.now()
	inc.cached, inc.err = Analyze(d, inc.opt)
	return inc.cached, inc.err
}
