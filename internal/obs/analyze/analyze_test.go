package analyze

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
)

// handScript builds a two-rank dump by hand where every synchronized
// time is known:
//
//	rank 0: compute 3s, send 10 bytes to rank 1, compute 1s
//	rank 1: compute 1s, recv (blocks 2s+comm), compute 2s
//
// With alpha=1s, beta=10 B/s the transfer costs 2s on each side.
func handScript(t *testing.T) *obs.Dump {
	t.Helper()
	epoch := time.Unix(0, 0)
	tr := obs.NewTracerAt(2, 64, func() time.Time { return epoch })

	// rank 0: clocks are (comm, comp) at emission time.
	tr.EmitSeq(0, obs.EvPhaseEnter, 0, 0, obs.PhaseGST, 0, 0, 0)
	tr.EmitSeq(0, obs.EvSendBegin, 0, 3, 1, 7, 10, 1)
	tr.EmitSeq(0, obs.EvSendEnd, 2, 3, 1, 7, 10, 1)
	tr.EmitSeq(0, obs.EvPhaseExit, 2, 4, obs.PhaseGST, 0, 0, 0)

	tr.EmitSeq(1, obs.EvRecvBegin, 0, 1, 0, 7, 0, 0)
	tr.EmitSeq(1, obs.EvRecvEnd, 2, 1, 0, 7, 10, 1)
	tr.EmitSeq(1, obs.EvPhaseEnter, 2, 1, obs.PhaseCluster, 0, 0, 0)
	tr.EmitSeq(1, obs.EvPhaseExit, 2, 3, obs.PhaseCluster, 0, 0, 0)
	return tr.Dump()
}

func TestHandScriptedDAG(t *testing.T) {
	rep, err := Analyze(handScript(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// rank 0 finishes at 6s local = 6s synchronized (no waits).
	// rank 1: recv-begin at local 1s; recv-end arrival = max(send
	// begin v=3, local 1) ... send-begin v = 3 (3s comp charged at
	// send-begin). recv-end delta = 2 comm + 0 comp => v = 5? No:
	// arrival = max(progPred v=1, msgPred v=3) = 3, delta=2 => v=5,
	// idle=2. Then 2s compute => final v=7.
	if got := rep.RankTotals[1].TotalSec; math.Abs(got-7) > 1e-9 {
		t.Fatalf("rank 1 synchronized finish = %v, want 7", got)
	}
	if math.Abs(rep.MakespanSec-7) > 1e-9 {
		t.Fatalf("makespan = %v, want 7", rep.MakespanSec)
	}
	if rep.SlowestRank != 1 {
		t.Fatalf("slowest rank = %d, want 1", rep.SlowestRank)
	}
	if got := rep.RankTotals[1].IdleSec; math.Abs(got-2) > 1e-9 {
		t.Fatalf("rank 1 idle = %v, want 2", got)
	}
	// Raw makespan is the max local clock: rank 0 at 6s, rank 1 at 5s.
	if math.Abs(rep.RawMakespanSec-6) > 1e-9 {
		t.Fatalf("raw makespan = %v, want 6", rep.RawMakespanSec)
	}
	// Critical path: rank 0 through the send, hop to rank 1.
	if math.Abs(rep.CriticalPath.LengthSec-rep.MakespanSec) > 1e-12 {
		t.Fatalf("critical path %v != makespan %v", rep.CriticalPath.LengthSec, rep.MakespanSec)
	}
	if rep.CriticalPath.Hops != 1 {
		t.Fatalf("hops = %d, want 1", rep.CriticalPath.Hops)
	}
	if len(rep.CriticalPath.Segments) != 2 ||
		rep.CriticalPath.Segments[0].Rank != 0 || rep.CriticalPath.Segments[1].Rank != 1 {
		t.Fatalf("segments = %+v", rep.CriticalPath.Segments)
	}
	if rep.CriticalPath.Segments[1].Via != "msg" {
		t.Fatalf("second segment via = %q, want msg", rep.CriticalPath.Segments[1].Via)
	}
	assertConsistent(t, rep)
}

// assertConsistent checks the structural identities every report must
// satisfy: per-rank totals decompose exactly, phases partition the
// totals, and the critical path's phase attribution sums to its length.
func assertConsistent(t *testing.T, rep *Report) {
	t.Helper()
	var comm, comp, idle float64
	for _, rt := range rep.RankTotals {
		if d := math.Abs(rt.TotalSec - (rt.CommSec + rt.CompSec + rt.IdleSec)); d > 1e-6 {
			t.Errorf("rank %d: total %v != comm+comp+idle %v", rt.Rank, rt.TotalSec,
				rt.CommSec+rt.CompSec+rt.IdleSec)
		}
		comm += rt.CommSec
		comp += rt.CompSec
		idle += rt.IdleSec
	}
	if math.Abs(comm-rep.CommSec)+math.Abs(comp-rep.CompSec)+math.Abs(idle-rep.IdleSec) > 1e-6 {
		t.Errorf("rank totals disagree with run totals")
	}
	var pcomm, pcomp, pidle float64
	for _, ps := range rep.Phases {
		pcomm += ps.CommSec
		pcomp += ps.CompSec
		pidle += ps.IdleSec
	}
	if math.Abs(pcomm-rep.CommSec)+math.Abs(pcomp-rep.CompSec)+math.Abs(pidle-rep.IdleSec) > 1e-6 {
		t.Errorf("phase decomposition (%v,%v,%v) does not partition run totals (%v,%v,%v)",
			pcomm, pcomp, pidle, rep.CommSec, rep.CompSec, rep.IdleSec)
	}
	var cp float64
	for _, p := range rep.CriticalPath.PhaseTotals {
		cp += p.Sec
	}
	if math.Abs(cp-rep.CriticalPath.LengthSec) > 1e-6 {
		t.Errorf("critical-path phase totals %v != length %v", cp, rep.CriticalPath.LengthSec)
	}
	if math.Abs(rep.CriticalPath.LengthSec-rep.MakespanSec) > 1e-9+rep.MakespanSec*1e-9 {
		t.Errorf("critical path %v != makespan %v", rep.CriticalPath.LengthSec, rep.MakespanSec)
	}
}

// TestLiveMachine runs a real communication pattern through par and
// checks the DAG invariants hold on the resulting trace.
func TestLiveMachine(t *testing.T) {
	const ranks = 4
	tr := obs.NewTracer(ranks, 1<<12)
	cfg := par.Config{
		Ranks: ranks, Alpha: time.Millisecond, Beta: 1 << 20, Trace: tr,
	}
	par.Run(cfg, func(c *par.Comm) {
		c.TraceEvent(obs.EvPhaseEnter, obs.PhaseGST, 0, 0)
		// Ring shift with unequal compute so ranks finish staggered.
		c.ChargeCompute(float64(c.Rank()+1) * 0.010)
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		c.Send(next, 5, make([]byte, 1024))
		c.Recv(prev, 5)
		c.Barrier()
		c.TraceEvent(obs.EvPhaseExit, obs.PhaseGST, 0, 0)
	})
	rep, err := FromTracer(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != ranks {
		t.Fatalf("ranks = %d", rep.Ranks)
	}
	if rep.MakespanSec < rep.RawMakespanSec-1e-12 {
		t.Fatalf("synchronized makespan %v < raw %v", rep.MakespanSec, rep.RawMakespanSec)
	}
	// The barrier synchronizes everyone behind rank 3's 40ms compute,
	// so every rank's synchronized finish time is near the makespan.
	for _, rt := range rep.RankTotals {
		if rt.TotalSec < rep.MakespanSec*0.9 {
			t.Errorf("rank %d finishes at %v, long before makespan %v — barrier edge missing?",
				rt.Rank, rt.TotalSec, rep.MakespanSec)
		}
	}
	assertConsistent(t, rep)
}

func TestMultiRunRejected(t *testing.T) {
	tr := obs.NewTracer(1, 64)
	par.Run(par.Config{Ranks: 1, Trace: tr}, func(c *par.Comm) {
		c.ChargeCompute(0.5)
		c.TraceEvent(obs.EvCheckpoint, 1, 0, 0)
	})
	// Second run on the same tracer: modeled clock restarts at zero.
	par.Run(par.Config{Ranks: 1, Trace: tr}, func(c *par.Comm) {
		c.TraceEvent(obs.EvCheckpoint, 2, 0, 0)
	})
	if _, err := FromTracer(tr, Options{}); err == nil {
		t.Fatal("multi-run dump accepted")
	} else if !strings.Contains(err.Error(), "more than one run") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAnnotatedChrome(t *testing.T) {
	d := handScript(t)
	rep, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteAnnotatedChrome(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"crit":true`) {
		t.Fatal("no critical-path annotations in chrome output")
	}
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "critical path") {
		t.Fatal("text report missing critical path section")
	}
}
