// Package analyze stitches per-rank trace streams into a causal DAG
// and derives whole-run performance structure from it: the critical
// path through the modeled-clock execution, per-rank comm/comp/idle
// decompositions per phase, and straggler reports.
//
// The runtime's modeled clocks are purely local: a rank blocked in
// Recv does not advance its own clock while it waits, so the maximum
// final local clock ("raw makespan") understates the synchronized
// running time. analyze recovers the synchronized schedule by
// replaying the event streams against a vector-style clock: nodes are
// events, edges are program order plus exact message edges matched on
// the sender's (rank, seq) pair, and each node's synchronized time is
//
//	v(n) = max(v(pred) for all preds) + delta(n)
//
// where delta(n) is the local modeled-clock advance since the
// previous event on the same rank. The gap between a node's arrival
// time and its program predecessor is idle (blocked) time, absorbed
// at the node and attributed to its innermost phase. By construction
// each rank's final v equals its comm + comp + idle totals exactly,
// the DAG makespan is the largest final v, and the critical path —
// the backward walk that always follows a binding predecessor —
// sums its deltas to the makespan exactly.
package analyze

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// Options tunes an analysis.
type Options struct {
	// TopSpans is how many slowest phase spans to report (default 10).
	TopSpans int

	// Partial says the dump is a mid-run prefix of an ongoing run (the
	// collector's live view): a receive whose matching send has not
	// been streamed yet is tolerated — counted in Report.Unmatched and
	// analyzed without its message edge (its idle attribution is a
	// lower bound until the sender's stream catches up) — instead of
	// rejecting the dump as corrupt.
	Partial bool
}

// Report is the full analysis of one traced run. It contains only
// structs and slices (no maps) so its JSON encoding is deterministic.
type Report struct {
	Ranks       int `json:"ranks"`
	EventsTotal int `json:"events_total"`

	// MakespanSec is the DAG makespan: the synchronized running time
	// of the run under the modeled clocks. It equals the critical
	// path length exactly.
	MakespanSec float64 `json:"makespan_sec"`
	// RawMakespanSec is the largest final local modeled clock. It
	// excludes cross-rank blocking, so MakespanSec >= RawMakespanSec.
	RawMakespanSec float64 `json:"raw_makespan_sec"`

	CommSec float64 `json:"comm_sec"` // summed over ranks
	CompSec float64 `json:"comp_sec"`
	IdleSec float64 `json:"idle_sec"`

	SlowestRank int         `json:"slowest_rank"`
	RankTotals  []RankTotal `json:"rank_totals"`

	Phases     []PhaseStat     `json:"phases"`
	RankPhases []RankPhaseStat `json:"rank_phases"`

	CriticalPath CriticalPath `json:"critical_path"`
	TopSpans     []SpanStat   `json:"top_spans"`

	// MasterIdleSec is rank 0's blocked time at recv completions —
	// the master starved waiting for worker messages.
	MasterIdleSec float64 `json:"master_idle_sec"`

	// Unmatched counts recv events whose send event is missing from
	// the dump (possible only when a sender's ring wrapped).
	Unmatched int `json:"unmatched,omitempty"`
	// DroppedRanks lists ranks whose rings evicted events; their
	// streams are truncated and cross-rank edges may be missing.
	DroppedRanks []int `json:"dropped_ranks,omitempty"`
}

// RankTotal is one rank's full-run decomposition. TotalSec is the
// rank's final synchronized clock and equals Comm+Comp+Idle exactly.
type RankTotal struct {
	Rank            int     `json:"rank"`
	CommSec         float64 `json:"comm_sec"`
	CompSec         float64 `json:"comp_sec"`
	IdleSec         float64 `json:"idle_sec"`
	TotalSec        float64 `json:"total_sec"`
	WaitOnMasterSec float64 `json:"wait_on_master_sec"` // idle absorbed at recvs from rank 0
}

// PhaseStat aggregates one phase across ranks. Phases partition every
// rank's time by innermost enclosing phase, so summing Comm+Comp+Idle
// over all PhaseStats reproduces the whole-run totals.
type PhaseStat struct {
	Phase       string  `json:"phase"`
	CommSec     float64 `json:"comm_sec"`
	CompSec     float64 `json:"comp_sec"`
	IdleSec     float64 `json:"idle_sec"`
	MaxRankSec  float64 `json:"max_rank_sec"`  // slowest rank's time in this phase
	MeanRankSec float64 `json:"mean_rank_sec"` // over ranks that entered it
	Imbalance   float64 `json:"imbalance"`     // max/mean; 1.0 = perfectly balanced
	MaxRank     int     `json:"max_rank"`
	RankCount   int     `json:"rank_count"`
	Spans       int     `json:"spans"` // completed spans across ranks
}

// RankPhaseStat is one (rank, phase) cell of the decomposition.
type RankPhaseStat struct {
	Rank    int     `json:"rank"`
	Phase   string  `json:"phase"`
	CommSec float64 `json:"comm_sec"`
	CompSec float64 `json:"comp_sec"`
	IdleSec float64 `json:"idle_sec"`
}

// CriticalPath is the longest chain through the causal DAG.
type CriticalPath struct {
	// LengthSec equals Report.MakespanSec exactly.
	LengthSec float64 `json:"length_sec"`
	// Hops counts cross-rank edges the path follows.
	Hops     int         `json:"hops"`
	Segments []CPSegment `json:"segments"`
	// PhaseTotals attributes every second of the path to the phase
	// active where it was spent; the totals sum to LengthSec.
	PhaseTotals []CPPhase `json:"phase_totals"`
}

// CPSegment is a maximal same-rank run of the critical path.
// FirstEvent..LastEvent are inclusive indices into that rank's event
// stream (program order is index order, so a segment is contiguous).
type CPSegment struct {
	Rank       int     `json:"rank"`
	StartSec   float64 `json:"start_sec"` // v-clock at segment start
	EndSec     float64 `json:"end_sec"`
	FirstEvent int     `json:"first_event"`
	LastEvent  int     `json:"last_event"`
	// Via says how the path reached this segment: "start" for the
	// root, "msg" across a send→recv edge, "ack" across a
	// recv→ssend-completion edge.
	Via string `json:"via"`
}

// CPPhase is one phase's share of the critical path.
type CPPhase struct {
	Phase   string  `json:"phase"`
	Sec     float64 `json:"sec"`
	CommSec float64 `json:"comm_sec"`
	CompSec float64 `json:"comp_sec"`
}

// SpanStat is one completed phase span, ranked by synchronized
// duration. Idle = Dur - Comm - Comp is the blocked time inside it.
type SpanStat struct {
	Rank     int     `json:"rank"`
	Phase    string  `json:"phase"`
	Arg      int64   `json:"arg"` // the span's B argument (e.g. fetch round)
	StartSec float64 `json:"start_sec"`
	DurSec   float64 `json:"dur_sec"`
	CommSec  float64 `json:"comm_sec"`
	CompSec  float64 `json:"comp_sec"`
	IdleSec  float64 `json:"idle_sec"`
}

// phaseKey 0 means "outside any phase span".
const noPhase int64 = 0

func phaseName(id int64) string {
	if id == noPhase {
		return "(unphased)"
	}
	return obs.PhaseName(id)
}

// node is one event in the causal DAG.
type node struct {
	rank, idx int
	dComm     float64 // local comm-clock advance since previous event on rank
	dComp     float64
	phase     int64 // innermost phase the delta is attributed to
	progPred  int32 // global node id, -1 if first on rank
	msgPred   int32 // send-begin this recv-end depends on, -1 if none
	ackPred   int32 // recv-end this ssend-completion depends on, -1 if none

	v       float64 // synchronized completion time
	idle    float64 // arrival - v(progPred): blocked time absorbed here
	binding int32   // predecessor whose v equals the arrival time, -1 at roots
	ackEdge bool    // binding edge is the ack edge (for Via labels)
}

type msgKey struct {
	rank int
	seq  uint64
}

type span struct {
	rank        int
	phase       int64
	arg         int64
	enter, exit int // global node ids
}

const clockEps = 1e-9

// Analyze builds the causal DAG for one dumped run and reports on it.
// The dump must come from a single run: a tracer reused across runs
// resets its modeled clocks and sequence numbers, which Analyze
// detects and rejects.
func Analyze(d *obs.Dump, opt Options) (*Report, error) {
	if d == nil {
		return nil, fmt.Errorf("analyze: nil dump")
	}
	if opt.TopSpans == 0 {
		opt.TopSpans = 10
	}

	nranks := 0
	for _, rd := range d.Ranks {
		if rd.Rank+1 > nranks {
			nranks = rd.Rank + 1
		}
	}
	perRank := make([][]obs.Event, nranks)
	dropped := make([]uint64, nranks)
	for _, rd := range d.Ranks {
		if rd.Rank < 0 {
			return nil, fmt.Errorf("analyze: negative rank %d in dump", rd.Rank)
		}
		perRank[rd.Rank] = rd.Events
		dropped[rd.Rank] = rd.Dropped
	}

	rep := &Report{Ranks: nranks}
	anyDropped := false
	for r, n := range dropped {
		if n > 0 {
			anyDropped = true
			rep.DroppedRanks = append(rep.DroppedRanks, r)
		}
	}

	// Pass 1: nodes, program edges, phase attribution, send registry.
	var nodes []node
	offset := make([]int, nranks) // global id of rank r's first node
	sendIdx := map[msgKey]int32{}
	recvIdx := map[msgKey]int32{}
	var spans []span
	openSpans := make([][]int, nranks) // stack of indices into spans
	for r := 0; r < nranks; r++ {
		offset[r] = len(nodes)
		var prevComm, prevComp float64
		var lastSeq uint64
		var stack []int64
		prog := int32(-1)
		for i, e := range perRank[r] {
			id := int32(len(nodes))
			dComm := e.Comm - prevComm
			dComp := e.Comp - prevComp
			if dComm < -clockEps || dComp < -clockEps {
				return nil, fmt.Errorf("analyze: rank %d event %d: modeled clock decreased (%.9f,%.9f -> %.9f,%.9f); dump contains more than one run",
					r, i, prevComm, prevComp, e.Comm, e.Comp)
			}
			prevComm, prevComp = e.Comm, e.Comp

			// Innermost-phase attribution. Enter charges the outer
			// phase (the span had not started yet); exit charges the
			// exiting phase.
			attr := noPhase
			if len(stack) > 0 {
				attr = stack[len(stack)-1]
			}
			switch e.Kind {
			case obs.EvPhaseEnter:
				stack = append(stack, e.A)
				openSpans[r] = append(openSpans[r], len(spans))
				spans = append(spans, span{rank: r, phase: e.A, arg: e.B, enter: int(id), exit: -1})
			case obs.EvPhaseExit:
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
				if n := len(openSpans[r]); n > 0 {
					spans[openSpans[r][n-1]].exit = int(id)
					openSpans[r] = openSpans[r][:n-1]
				}
			case obs.EvSendBegin, obs.EvSsendBegin:
				if e.Seq > 0 {
					if e.Seq <= lastSeq {
						return nil, fmt.Errorf("analyze: rank %d event %d: send seq %d after %d; dump contains more than one run",
							r, i, e.Seq, lastSeq)
					}
					lastSeq = e.Seq
					sendIdx[msgKey{r, e.Seq}] = id
				}
			}

			nodes = append(nodes, node{
				rank: r, idx: i,
				dComm: dComm, dComp: dComp,
				phase:    attr,
				progPred: prog, msgPred: -1, ackPred: -1,
				binding: -1,
			})
			prog = id
		}
	}

	// Pass 2: cross-rank edges. A recv completion depends on its
	// send's begin; an ssend completion additionally depends on the
	// matching recv completion (the synchronous ack).
	for gid := range nodes {
		n := &nodes[gid]
		e := perRank[n.rank][n.idx]
		switch e.Kind {
		case obs.EvRecvEnd:
			if e.C < 0 || e.Seq == 0 {
				break // timed-out recv, or pre-seq trace: no edge
			}
			src := int(e.A)
			if sid, ok := sendIdx[msgKey{src, e.Seq}]; ok {
				n.msgPred = sid
			} else {
				rep.Unmatched++
				if !opt.Partial && src >= 0 && src < nranks && dropped[src] == 0 && !anyDropped {
					return nil, fmt.Errorf("analyze: rank %d recv of (src=%d seq=%d) has no matching send and no events were dropped",
						n.rank, src, e.Seq)
				}
			}
			recvIdx[msgKey{int(e.A), e.Seq}] = int32(gid)
		case obs.EvSsendEnd:
			if e.Seq > 0 {
				if rid, ok := recvIdx[msgKey{n.rank, e.Seq}]; ok {
					n.ackPred = rid
				}
			}
		}
	}

	// Kahn topological order over program + message + ack edges.
	indeg := make([]int32, len(nodes))
	succs := make([][]int32, len(nodes))
	addEdge := func(from, to int32) {
		succs[from] = append(succs[from], to)
		indeg[to]++
	}
	for gid := range nodes {
		n := &nodes[gid]
		if n.progPred >= 0 {
			addEdge(n.progPred, int32(gid))
		}
		if n.msgPred >= 0 {
			addEdge(n.msgPred, int32(gid))
		}
		if n.ackPred >= 0 {
			addEdge(n.ackPred, int32(gid))
		}
	}
	queue := make([]int32, 0, len(nodes))
	for gid := range nodes {
		if indeg[gid] == 0 {
			queue = append(queue, int32(gid))
		}
	}
	processed := 0
	for len(queue) > 0 {
		gid := queue[0]
		queue = queue[1:]
		processed++
		n := &nodes[gid]

		// arrival = max over predecessor completion times.
		arrival := 0.0
		progV := 0.0
		n.binding = -1
		if n.progPred >= 0 {
			progV = nodes[n.progPred].v
			arrival = progV
			n.binding = n.progPred
		}
		if n.msgPred >= 0 && nodes[n.msgPred].v > arrival+clockEps {
			arrival = nodes[n.msgPred].v
			n.binding = n.msgPred
			n.ackEdge = false
		}
		if n.ackPred >= 0 && nodes[n.ackPred].v > arrival+clockEps {
			arrival = nodes[n.ackPred].v
			n.binding = n.ackPred
			n.ackEdge = true
		}
		n.idle = arrival - progV
		if n.progPred < 0 {
			n.idle = arrival
		}
		n.v = arrival + n.dComm + n.dComp

		for _, s := range succs[gid] {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if processed != len(nodes) {
		return nil, fmt.Errorf("analyze: causal DAG has a cycle (%d of %d events unreachable); trace is corrupt",
			len(nodes)-processed, len(nodes))
	}

	// Accumulate totals, per-rank, per-(rank,phase).
	type cell struct{ comm, comp, idle float64 }
	rankCells := make([]cell, nranks)
	phaseCells := make([]map[int64]*cell, nranks)
	waitOnMaster := make([]float64, nranks)
	for r := range phaseCells {
		phaseCells[r] = map[int64]*cell{}
	}
	for gid := range nodes {
		n := &nodes[gid]
		rc := &rankCells[n.rank]
		rc.comm += n.dComm
		rc.comp += n.dComp
		rc.idle += n.idle
		pc := phaseCells[n.rank][n.phase]
		if pc == nil {
			pc = &cell{}
			phaseCells[n.rank][n.phase] = pc
		}
		pc.comm += n.dComm
		pc.comp += n.dComp
		pc.idle += n.idle
		e := perRank[n.rank][n.idx]
		if e.Kind == obs.EvRecvEnd && n.idle > 0 {
			if n.rank == 0 {
				rep.MasterIdleSec += n.idle
			} else if e.A == 0 {
				waitOnMaster[n.rank] += n.idle
			}
		}
		rep.EventsTotal++
	}

	for r := 0; r < nranks; r++ {
		rc := rankCells[r]
		final := 0.0
		if len(perRank[r]) > 0 {
			final = nodes[offset[r]+len(perRank[r])-1].v
			raw := perRank[r][len(perRank[r])-1]
			if raw.Comm+raw.Comp > rep.RawMakespanSec {
				rep.RawMakespanSec = raw.Comm + raw.Comp
			}
		}
		rep.RankTotals = append(rep.RankTotals, RankTotal{
			Rank: r, CommSec: rc.comm, CompSec: rc.comp, IdleSec: rc.idle,
			TotalSec: final, WaitOnMasterSec: waitOnMaster[r],
		})
		rep.CommSec += rc.comm
		rep.CompSec += rc.comp
		rep.IdleSec += rc.idle
		if final > rep.MakespanSec {
			rep.MakespanSec = final
			rep.SlowestRank = r
		}
	}

	// Per-phase aggregation in a fixed phase-id order.
	var phaseIDs []int64
	seen := map[int64]bool{}
	for r := 0; r < nranks; r++ {
		for id := range phaseCells[r] {
			if !seen[id] {
				seen[id] = true
				phaseIDs = append(phaseIDs, id)
			}
		}
	}
	sort.Slice(phaseIDs, func(i, j int) bool { return phaseIDs[i] < phaseIDs[j] })
	spanCount := map[int64]int{}
	for _, s := range spans {
		if s.exit >= 0 {
			spanCount[s.phase]++
		}
	}
	for _, id := range phaseIDs {
		ps := PhaseStat{Phase: phaseName(id), Spans: spanCount[id], MaxRank: -1}
		for r := 0; r < nranks; r++ {
			pc := phaseCells[r][id]
			if pc == nil {
				continue
			}
			t := pc.comm + pc.comp + pc.idle
			ps.CommSec += pc.comm
			ps.CompSec += pc.comp
			ps.IdleSec += pc.idle
			ps.RankCount++
			if t > ps.MaxRankSec || ps.MaxRank < 0 {
				ps.MaxRankSec = t
				ps.MaxRank = r
			}
			rep.RankPhases = append(rep.RankPhases, RankPhaseStat{
				Rank: r, Phase: ps.Phase,
				CommSec: pc.comm, CompSec: pc.comp, IdleSec: pc.idle,
			})
		}
		if ps.RankCount > 0 {
			ps.MeanRankSec = (ps.CommSec + ps.CompSec + ps.IdleSec) / float64(ps.RankCount)
			if ps.MeanRankSec > 0 {
				ps.Imbalance = ps.MaxRankSec / ps.MeanRankSec
			}
		}
		rep.Phases = append(rep.Phases, ps)
	}

	// Critical path: backward walk from the sink along binding edges.
	rep.CriticalPath = criticalPath(nodes, offset, perRank, rep.SlowestRank)

	// Slowest spans by synchronized duration, via prefix sums.
	prefComm := make([]float64, len(nodes)+1)
	prefComp := make([]float64, len(nodes)+1)
	for gid := range nodes {
		prefComm[gid+1] = prefComm[gid] + nodes[gid].dComm
		prefComp[gid+1] = prefComp[gid] + nodes[gid].dComp
	}
	var stats []SpanStat
	for _, s := range spans {
		if s.exit < 0 {
			continue
		}
		dur := nodes[s.exit].v - nodes[s.enter].v
		comm := prefComm[s.exit+1] - prefComm[s.enter+1]
		comp := prefComp[s.exit+1] - prefComp[s.enter+1]
		stats = append(stats, SpanStat{
			Rank: s.rank, Phase: phaseName(s.phase), Arg: s.arg,
			StartSec: nodes[s.enter].v, DurSec: dur,
			CommSec: comm, CompSec: comp,
			IdleSec: math.Max(0, dur-comm-comp),
		})
	}
	sort.SliceStable(stats, func(i, j int) bool { return stats[i].DurSec > stats[j].DurSec })
	if len(stats) > opt.TopSpans {
		stats = stats[:opt.TopSpans]
	}
	rep.TopSpans = stats

	return rep, nil
}

// criticalPath walks binding predecessors back from the slowest
// rank's final event and renders the chain root-first.
func criticalPath(nodes []node, offset []int, perRank [][]obs.Event, slowest int) CriticalPath {
	var cp CriticalPath
	if len(nodes) == 0 || len(perRank[slowest]) == 0 {
		return cp
	}
	sink := int32(offset[slowest] + len(perRank[slowest]) - 1)
	cp.LengthSec = nodes[sink].v

	var path []int32
	for n := sink; n >= 0; n = nodes[n].binding {
		path = append(path, n)
	}
	// Reverse to root-first.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}

	phaseSec := map[int64]*CPPhase{}
	var phaseOrder []int64
	var seg *CPSegment
	via := "start"
	for k, gid := range path {
		n := &nodes[gid]
		if seg == nil || seg.Rank != n.rank {
			if seg != nil {
				cp.Hops++
			}
			start := n.v - n.dComm - n.dComp
			cp.Segments = append(cp.Segments, CPSegment{
				Rank: n.rank, StartSec: start, EndSec: n.v,
				FirstEvent: n.idx, LastEvent: n.idx, Via: via,
			})
			seg = &cp.Segments[len(cp.Segments)-1]
		} else {
			seg.EndSec = n.v
			seg.LastEvent = n.idx
		}
		// Label for the edge into the NEXT path node.
		if k+1 < len(path) {
			next := &nodes[path[k+1]]
			if next.rank != n.rank {
				if next.ackEdge {
					via = "ack"
				} else {
					via = "msg"
				}
			}
		}
		p := phaseSec[n.phase]
		if p == nil {
			p = &CPPhase{Phase: phaseName(n.phase)}
			phaseSec[n.phase] = p
			phaseOrder = append(phaseOrder, n.phase)
		}
		p.CommSec += n.dComm
		p.CompSec += n.dComp
		p.Sec += n.dComm + n.dComp
	}
	sort.Slice(phaseOrder, func(i, j int) bool { return phaseOrder[i] < phaseOrder[j] })
	for _, id := range phaseOrder {
		cp.PhaseTotals = append(cp.PhaseTotals, *phaseSec[id])
	}
	return cp
}

// FromTracer analyzes a live tracer's retained events.
func FromTracer(t *obs.Tracer, opt Options) (*Report, error) {
	return Analyze(t.Dump(), opt)
}
