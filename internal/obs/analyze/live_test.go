package analyze

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestPartialToleratesUnmatchedRecv: in Partial mode a recv whose send
// has not been streamed yet is counted, not fatal; strict mode keeps
// rejecting it.
func TestPartialToleratesUnmatchedRecv(t *testing.T) {
	d := &obs.Dump{Version: obs.DumpVersion, Ranks: []obs.RankDump{{
		Rank: 1,
		Events: []obs.Event{
			{Kind: obs.EvRecvBegin, Rank: 1, Comp: 1, A: 0, B: 7},
			{Kind: obs.EvRecvEnd, Rank: 1, Comm: 2, Comp: 1, A: 0, B: 7, C: 10, Seq: 1},
		},
	}}}
	if _, err := Analyze(d, Options{}); err == nil {
		t.Fatal("strict mode accepted an unmatched recv")
	}
	rep, err := Analyze(d, Options{Partial: true})
	if err != nil {
		t.Fatalf("partial mode: %v", err)
	}
	if rep.Unmatched != 1 {
		t.Fatalf("Unmatched = %d, want 1", rep.Unmatched)
	}
}

// TestIncrementalConvergesToPostHoc: streaming a run in interleaved
// batches — receives arriving before their sends — and then replacing
// each rank's stream with its final dump yields a report identical to
// the one-shot post-hoc Analyze.
func TestIncrementalConvergesToPostHoc(t *testing.T) {
	d := handScript(t)
	want, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}

	inc := NewIncremental(Options{})
	inc.MinInterval = -1 // recompute on every Report

	// Stream rank 1 first (its recv's send has not arrived yet), in
	// two batches, then rank 0.
	r1 := d.Ranks[1].Events
	inc.Append(1, r1[:1])
	inc.Append(1, r1[1:])
	mid, err := inc.Report()
	if err != nil {
		t.Fatalf("mid-stream report: %v", err)
	}
	if mid.Unmatched != 1 {
		t.Fatalf("mid-stream Unmatched = %d, want 1", mid.Unmatched)
	}
	inc.Append(0, d.Ranks[0].Events)

	got, err := inc.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got.Unmatched != 0 {
		t.Fatalf("converged Unmatched = %d, want 0", got.Unmatched)
	}
	// The streamed prefix already is the whole run here, so the report
	// must match post-hoc exactly — Partial only relaxes validation.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental report diverges from post-hoc:\ngot  %+v\nwant %+v", got, want)
	}

	// Replace with the authoritative dumps (idempotent here) and check
	// the equality survives, plus the memoization: same generation,
	// same pointer back.
	for _, rd := range d.Ranks {
		inc.Replace(rd.Rank, rd.Events, rd.Dropped)
	}
	got2, err := inc.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("report after Replace diverges from post-hoc")
	}
	got3, _ := inc.Report()
	if got3 != got2 {
		t.Fatal("unchanged generation should return the cached report")
	}
	if inc.EventCount() != len(d.Ranks[0].Events)+len(d.Ranks[1].Events) {
		t.Fatalf("EventCount = %d", inc.EventCount())
	}
}

// TestIncrementalEmpty: a report over nothing is valid and empty.
func TestIncrementalEmpty(t *testing.T) {
	inc := NewIncremental(Options{})
	inc.MinInterval = -1
	rep, err := inc.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanSec != 0 || len(rep.RankTotals) != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
}
