package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
)

// WriteText renders the report as a human-readable summary.
func (r *Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "causal analysis: %d ranks, %d events\n", r.Ranks, r.EventsTotal)
	fmt.Fprintf(bw, "  makespan          %.6fs (synchronized; raw local max %.6fs)\n",
		r.MakespanSec, r.RawMakespanSec)
	total := r.CommSec + r.CompSec + r.IdleSec
	if total > 0 {
		fmt.Fprintf(bw, "  rank-seconds      %.6fs = comm %.6fs (%.1f%%) + comp %.6fs (%.1f%%) + idle %.6fs (%.1f%%)\n",
			total,
			r.CommSec, 100*r.CommSec/total,
			r.CompSec, 100*r.CompSec/total,
			r.IdleSec, 100*r.IdleSec/total)
	}
	if r.CompSec > 0 {
		fmt.Fprintf(bw, "  comm/comp ratio   %.3f\n", r.CommSec/r.CompSec)
	}
	fmt.Fprintf(bw, "  slowest rank      %d\n", r.SlowestRank)
	fmt.Fprintf(bw, "  master idle       %.6fs\n", r.MasterIdleSec)
	if len(r.DroppedRanks) > 0 {
		fmt.Fprintf(bw, "  WARNING: ring wraparound on ranks %v; %d recvs unmatched — results are partial\n",
			r.DroppedRanks, r.Unmatched)
	}

	fmt.Fprintf(bw, "\nper-rank decomposition:\n")
	fmt.Fprintf(bw, "  %-5s %12s %12s %12s %12s %14s\n", "rank", "total", "comm", "comp", "idle", "wait-on-master")
	for _, rt := range r.RankTotals {
		fmt.Fprintf(bw, "  %-5d %11.6fs %11.6fs %11.6fs %11.6fs %13.6fs\n",
			rt.Rank, rt.TotalSec, rt.CommSec, rt.CompSec, rt.IdleSec, rt.WaitOnMasterSec)
	}

	fmt.Fprintf(bw, "\nper-phase decomposition (rank-seconds, innermost phase wins):\n")
	fmt.Fprintf(bw, "  %-18s %12s %12s %12s %8s %12s %10s %6s\n",
		"phase", "comm", "comp", "idle", "ranks", "max-rank", "imbalance", "spans")
	for _, ps := range r.Phases {
		fmt.Fprintf(bw, "  %-18s %11.6fs %11.6fs %11.6fs %8d %7.6fs@%-2d %10.3f %6d\n",
			ps.Phase, ps.CommSec, ps.CompSec, ps.IdleSec,
			ps.RankCount, ps.MaxRankSec, ps.MaxRank, ps.Imbalance, ps.Spans)
	}

	fmt.Fprintf(bw, "\ncritical path: %.6fs over %d segment(s), %d cross-rank hop(s)\n",
		r.CriticalPath.LengthSec, len(r.CriticalPath.Segments), r.CriticalPath.Hops)
	for _, s := range r.CriticalPath.Segments {
		fmt.Fprintf(bw, "  %-6s rank %-3d %11.6fs .. %11.6fs  (events %d..%d)\n",
			s.Via, s.Rank, s.StartSec, s.EndSec, s.FirstEvent, s.LastEvent)
	}
	fmt.Fprintf(bw, "critical-path time by phase:\n")
	for _, p := range r.CriticalPath.PhaseTotals {
		fmt.Fprintf(bw, "  %-18s %11.6fs  (comm %.6fs, comp %.6fs)\n",
			p.Phase, p.Sec, p.CommSec, p.CompSec)
	}

	if len(r.TopSpans) > 0 {
		fmt.Fprintf(bw, "\nslowest spans (synchronized duration):\n")
		fmt.Fprintf(bw, "  %-18s %-5s %6s %12s %12s %12s %12s\n",
			"phase", "rank", "arg", "dur", "comm", "comp", "idle")
		for _, s := range r.TopSpans {
			fmt.Fprintf(bw, "  %-18s %-5d %6d %11.6fs %11.6fs %11.6fs %11.6fs\n",
				s.Phase, s.Rank, s.Arg, s.DurSec, s.CommSec, s.CompSec, s.IdleSec)
		}
	}
	return bw.Flush()
}

// WriteJSON writes the report as indented JSON. The report holds only
// structs and slices, so the encoding is byte-deterministic.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteAnnotatedChrome re-exports the dump as Chrome trace_event JSON
// with every event on the critical path carrying a "crit":true
// argument, so the path lights up under a search for "crit" in a
// trace viewer. d must be the dump the report was computed from.
func (r *Report) WriteAnnotatedChrome(w io.Writer, d *obs.Dump) error {
	nranks := 0
	for _, rd := range d.Ranks {
		if rd.Rank+1 > nranks {
			nranks = rd.Rank + 1
		}
	}
	perRank := make([][]obs.Event, nranks)
	dropped := make([]uint64, nranks)
	for _, rd := range d.Ranks {
		perRank[rd.Rank] = rd.Events
		dropped[rd.Rank] = rd.Dropped
	}
	// Per-rank inclusive index ranges covered by the path.
	type span struct{ lo, hi int }
	crit := make([][]span, nranks)
	for _, s := range r.CriticalPath.Segments {
		if s.Rank < nranks {
			crit[s.Rank] = append(crit[s.Rank], span{s.FirstEvent, s.LastEvent})
		}
	}
	annotate := func(rank, idx int) map[string]any {
		for _, s := range crit[rank] {
			if idx >= s.lo && idx <= s.hi {
				return map[string]any{"crit": true}
			}
		}
		return nil
	}
	return obs.WriteChromeTraceEvents(w, perRank, dropped, annotate)
}
