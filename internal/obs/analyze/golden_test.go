package analyze

import (
	"bytes"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/seq"
	"repro/internal/simulate"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden; run with -update if intended.\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestReportGoldens pins all three renderings of the hand-scripted
// dump: the analysis is pure arithmetic over a fixed event stream, so
// every byte of the text report, the JSON report, and the annotated
// Chrome trace must be reproducible.
func TestReportGoldens(t *testing.T) {
	d := handScript(t)
	rep, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.txt", text.Bytes())

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", js.Bytes())

	var chrome bytes.Buffer
	if err := rep.WriteAnnotatedChrome(&chrome, d); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "annotated_chrome.json", chrome.Bytes())
}

// TestAcceptance8Rank is the PR's acceptance criterion: an eight-rank
// clustering run over a simulated read set, traced end to end; the
// stitched DAG's critical path must land within 1% of the modeled
// makespan, and the per-phase comm/comp/idle decomposition must sum
// to it exactly (assertConsistent).
func TestAcceptance8Rank(t *testing.T) {
	const ranks = 8
	rng := rand.New(rand.NewSource(7))
	g := simulate.NewGenome(rng, "acc", simulate.GenomeConfig{
		Length:  12000,
		Repeats: []simulate.RepeatFamily{{Length: 250, Copies: 4, Divergence: 0.02}},
	})
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 180
	rc.LenSD = 25
	rc.VectorProb = 0
	frags := simulate.SampleWGS(rng, g, 5.0, rc, "a")
	store := seq.NewStore(frags)

	tr := obs.NewTracer(ranks, obs.DefaultRingCap)
	pcfg := cluster.DefaultParallelConfig(ranks)
	pcfg.Machine = par.DefaultConfig(ranks)
	pcfg.Machine.Trace = tr
	if _, _, err := cluster.Parallel(store, cluster.DefaultConfig(), pcfg); err != nil {
		t.Fatal(err)
	}

	rep, err := FromTracer(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != ranks {
		t.Fatalf("ranks = %d, want %d", rep.Ranks, ranks)
	}
	if rep.EventsTotal == 0 {
		t.Fatal("no events traced")
	}
	if d := math.Abs(rep.CriticalPath.LengthSec - rep.MakespanSec); d > 0.01*rep.MakespanSec {
		t.Fatalf("critical path %.6fs off makespan %.6fs by %.2f%% (want <= 1%%)",
			rep.CriticalPath.LengthSec, rep.MakespanSec, 100*d/rep.MakespanSec)
	}
	if rep.MakespanSec < rep.RawMakespanSec-1e-9 {
		t.Fatalf("synchronized makespan %v < raw %v", rep.MakespanSec, rep.RawMakespanSec)
	}
	// The run must exercise the instrumented phases: GST distribution
	// and clustering both appear with nonzero attributed time.
	var phases []string
	sawWork := false
	for _, ps := range rep.Phases {
		phases = append(phases, ps.Phase)
		if ps.CommSec+ps.CompSec > 0 {
			sawWork = true
		}
	}
	if len(rep.Phases) < 2 || !sawWork {
		t.Fatalf("phase decomposition too thin: %v", phases)
	}
	assertConsistent(t, rep)
}
