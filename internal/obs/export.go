package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing and https://ui.perfetto.dev both load it).
// Timestamps are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Process IDs of the two clock domains: the same per-rank tracks are
// rendered once against the host wall clock and once against the
// machine's modeled clock.
const (
	pidWall    = 1
	pidModeled = 2
)

// chromeName returns the track label for an event: spans are named by
// family (plus the phase name for phase spans); instants keep their
// kind name.
func chromeName(e Event) string {
	switch e.Kind {
	case EvPhaseEnter, EvPhaseExit:
		return PhaseName(e.A)
	case EvFault:
		return "fault:" + FaultName(e.A)
	}
	return e.Kind.String()
}

// chromeArgs renders the kind-specific arguments. Message-transfer
// events carry the sender's sequence number so a trace file preserves
// the exact send→recv correlation (src, seq).
func chromeArgs(e Event) map[string]any {
	switch e.Kind {
	case EvSendBegin, EvSendEnd, EvSsendBegin, EvSsendEnd:
		return map[string]any{"dst": e.A, "tag": e.B, "bytes": e.C, "seq": e.Seq}
	case EvRecvBegin:
		return map[string]any{"src": e.A, "tag": e.B}
	case EvRecvEnd:
		if e.C < 0 { // timed out: nothing was received
			return map[string]any{"src": e.A, "tag": e.B, "bytes": e.C}
		}
		return map[string]any{"src": e.A, "tag": e.B, "bytes": e.C, "seq": e.Seq}
	case EvPairGenerated, EvPairAligned, EvPairDiscarded:
		return map[string]any{"count": e.A, "peer": e.B}
	case EvClusterMerge:
		return map[string]any{"fa": e.A, "fb": e.B}
	case EvLeaseGrant:
		return map[string]any{"worker": e.A, "batch": e.B, "request": e.C}
	case EvLeaseExpire:
		return map[string]any{"worker": e.A, "requeued": e.B}
	case EvLeaseAdopt:
		return map[string]any{"adopter": e.A, "portions": e.B}
	case EvFault:
		return map[string]any{"code": FaultName(e.A), "b": e.B, "c": e.C}
	case EvCheckpoint:
		return map[string]any{"bytes": e.A}
	case EvRetransmit:
		return map[string]any{"dst": e.A, "tag": e.B, "attempt": e.C}
	case EvCorruptFrame:
		return map[string]any{"dst": e.A, "tag": e.B, "bytes": e.C}
	case EvRetry:
		return map[string]any{"cluster": e.A, "attempt": e.B}
	case EvQuarantine:
		return map[string]any{"cluster": e.A, "reads": e.B}
	case EvPhaseEnter, EvPhaseExit:
		return nil
	}
	return nil
}

// WriteChromeTrace exports the retained events of every rank as
// Chrome trace_event JSON. Each rank is a thread; the wall-clock and
// modeled-clock renderings are two processes. Unmatched begin events
// (a rank that died mid-operation) appear as unfinished spans, which
// is exactly what they are.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	perRank := make([][]Event, t.Ranks())
	dropped := make([]uint64, t.Ranks())
	for r := 0; r < t.Ranks(); r++ {
		perRank[r] = t.Events(r)
		dropped[r] = t.Dropped(r)
	}
	return WriteChromeTraceEvents(w, perRank, dropped, nil)
}

// WriteChromeTraceEvents is the Chrome trace_event renderer behind
// WriteChromeTrace, working from already-snapshotted per-rank event
// slices (e.g. a loaded obs.Dump). dropped may be nil; when a rank's
// count is nonzero it is recorded on the thread_name metadata so a
// reader knows the stream is truncated. annotate, when non-nil, is
// called per (rank, event index) and its returned entries are merged
// into that event's args — cmd/traceanalyze uses it to mark
// critical-path spans.
func WriteChromeTraceEvents(w io.Writer, perRank [][]Event, dropped []uint64, annotate func(rank, idx int) map[string]any) error {
	var evs []chromeEvent
	for pid, name := range map[int]string{pidWall: "wall clock", pidModeled: "modeled clock"} {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	// Deterministic metadata order (the map above is only 2 entries but
	// map iteration order would still flip them run to run).
	sort.Slice(evs, func(i, j int) bool { return evs[i].Pid < evs[j].Pid })
	for r, events := range perRank {
		if len(events) == 0 {
			continue
		}
		meta := map[string]any{"name": fmt.Sprintf("rank %d", r)}
		if dropped != nil && dropped[r] > 0 {
			meta["dropped"] = dropped[r]
		}
		for _, pid := range [2]int{pidWall, pidModeled} {
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: r,
				Args: meta,
			})
		}
		// An end whose begin was evicted by wraparound would corrupt
		// B/E nesting; track per-family depth and drop orphan ends.
		depth := map[string]int{}
		for i, e := range events {
			name := chromeName(e)
			var ph string
			switch {
			case e.Kind.isBegin():
				ph = "B"
				depth[name]++
			case e.Kind.isEnd():
				if depth[name] == 0 {
					continue
				}
				depth[name]--
				ph = "E"
			default:
				ph = "i"
			}
			args := chromeArgs(e)
			if annotate != nil {
				if extra := annotate(r, i); len(extra) > 0 {
					if args == nil {
						args = map[string]any{}
					}
					for k, v := range extra {
						args[k] = v
					}
				}
			}
			wall := chromeEvent{
				Name: name, Ph: ph, Ts: float64(e.Wall) / 1e3,
				Pid: pidWall, Tid: r, Args: args,
			}
			model := wall
			model.Pid = pidModeled
			model.Ts = (e.Comm + e.Comp) * 1e6
			if ph == "i" {
				wall.S = "t"
				model.S = "t"
			}
			evs = append(evs, wall, model)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// WriteTimeline exports a merged plain-text timeline: every rank's
// retained events interleaved by wall time, one line per event, with
// both clock domains shown.
func (t *Tracer) WriteTimeline(w io.Writer) error {
	var all []Event
	for r := 0; r < t.Ranks(); r++ {
		all = append(all, t.Events(r)...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Wall != all[j].Wall {
			return all[i].Wall < all[j].Wall
		}
		return all[i].Rank < all[j].Rank
	})
	bw := bufio.NewWriter(w)
	for _, e := range all {
		fmt.Fprintf(bw, "%12.6fms rank %-3d %-16s %s  [model %.6fs comm %.6fs comp]\n",
			float64(e.Wall)/1e6, e.Rank, timelineLabel(e), timelineArgs(e),
			e.Comm+e.Comp, e.Comm)
	}
	return bw.Flush()
}

func timelineLabel(e Event) string {
	switch {
	case e.Kind.isBegin():
		return chromeName(e) + ".begin"
	case e.Kind.isEnd():
		return chromeName(e) + ".end"
	}
	return chromeName(e)
}

func timelineArgs(e Event) string {
	switch e.Kind {
	case EvSendBegin, EvSendEnd, EvSsendBegin, EvSsendEnd:
		return fmt.Sprintf("dst=%d tag=%d bytes=%d seq=%d", e.A, e.B, e.C, e.Seq)
	case EvRecvBegin:
		return fmt.Sprintf("src=%d tag=%d", e.A, e.B)
	case EvRecvEnd:
		if e.C < 0 {
			return fmt.Sprintf("src=%d tag=%d bytes=%d", e.A, e.B, e.C)
		}
		return fmt.Sprintf("src=%d tag=%d bytes=%d seq=%d", e.A, e.B, e.C, e.Seq)
	case EvPhaseEnter, EvPhaseExit:
		return ""
	case EvPairGenerated, EvPairAligned, EvPairDiscarded:
		return fmt.Sprintf("count=%d peer=%d", e.A, e.B)
	case EvClusterMerge:
		return fmt.Sprintf("fa=%d fb=%d", e.A, e.B)
	case EvLeaseGrant:
		return fmt.Sprintf("worker=%d batch=%d request=%d", e.A, e.B, e.C)
	case EvLeaseExpire:
		return fmt.Sprintf("worker=%d requeued=%d", e.A, e.B)
	case EvLeaseAdopt:
		return fmt.Sprintf("adopter=%d portions=%d", e.A, e.B)
	case EvFault:
		return fmt.Sprintf("b=%d c=%d", e.B, e.C)
	case EvCheckpoint:
		return fmt.Sprintf("bytes=%d", e.A)
	case EvRetransmit:
		return fmt.Sprintf("dst=%d tag=%d attempt=%d", e.A, e.B, e.C)
	case EvCorruptFrame:
		return fmt.Sprintf("dst=%d tag=%d bytes=%d", e.A, e.B, e.C)
	case EvRetry:
		return fmt.Sprintf("cluster=%d attempt=%d", e.A, e.B)
	case EvQuarantine:
		return fmt.Sprintf("cluster=%d reads=%d", e.A, e.B)
	}
	return ""
}
