package obs_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/prof"
)

// TestServerPprofSmoke: the index advertises every profiling route,
// and a short CPU capture plus a heap snapshot fetched over HTTP both
// decode with the in-repo pprof reader. External test package so the
// decoder can be imported without a cycle (prof depends on obs).
func TestServerPprofSmoke(t *testing.T) {
	srv, err := obs.Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	resp, err := http.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	index, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, ep := range []string{
		"profile", "heap", "allocs", "goroutine",
		"block", "mutex", "threadcreate", "cmdline", "symbol", "trace",
	} {
		if !strings.Contains(string(index), "/debug/pprof/"+ep) {
			t.Errorf("index does not list /debug/pprof/%s:\n%s", ep, index)
		}
	}

	// Keep a CPU busy so the 1s window has something to sample.
	stop := make(chan struct{})
	go func() {
		x := 1.0
		for {
			select {
			case <-stop:
				return
			default:
				x = x*1.0000001 + 1
			}
		}
	}()
	defer close(stop)

	for _, tc := range []struct {
		url      string
		wantType string
	}{
		{base + "/debug/pprof/profile?seconds=1", "samples"},
		{base + "/debug/pprof/heap", "inuse_space"},
	} {
		resp, err := http.Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("%s: code %d err %v", tc.url, resp.StatusCode, err)
		}
		p, err := prof.Parse(body)
		if err != nil {
			t.Fatalf("decoding %s: %v", tc.url, err)
		}
		found := false
		for _, st := range p.SampleTypes {
			if st.Type == tc.wantType {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: sample type %q missing from %v", tc.url, tc.wantType, p.SampleTypes)
		}
	}
}
