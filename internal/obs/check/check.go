// Package check validates trace output, in two forms: exported Chrome
// trace_event JSON files (the cmd/tracecheck CLI is a thin wrapper
// over JSON/File) and live in-memory event streams from an
// obs.Tracer (the Stream invariants the simulation harness runs as an
// oracle after every campaign case).
package check

import (
	"encoding/json"
	"fmt"
	"os"
)

// Summary describes one validated trace file.
type Summary struct {
	Events     int // total trace events (metadata included)
	Tracks     int // distinct (pid, tid) tracks
	Spans      int // begin events
	Instants   int // instant events
	Faults     int // fault-model instants (retransmit, corrupt, retry, quarantine)
	Unclosed   int // spans left open at end of file
	SeqMatched int // receives matched to their send by (src, seq)
	Runs       int // run segments (a send seq restarting at 1 marks a new run)
}

func (s Summary) String() string {
	return fmt.Sprintf("%d events, %d tracks, %d spans, %d instants (%d fault-model), %d unclosed, %d seq-matched recvs, %d run(s)",
		s.Events, s.Tracks, s.Spans, s.Instants, s.Faults, s.Unclosed, s.SeqMatched, s.Runs)
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string    `json:"name"`
	Ph   string    `json:"ph"`
	Ts   *float64  `json:"ts"`
	Pid  *int      `json:"pid"`
	Tid  *int      `json:"tid"`
	Args traceArgs `json:"args"`
}

// traceArgs picks out the argument fields the causal checks need;
// other keys are ignored.
type traceArgs struct {
	Dropped uint64  `json:"dropped"` // thread_name metadata: ring evictions
	Src     *int64  `json:"src"`
	Seq     *uint64 `json:"seq"`
	Bytes   *int64  `json:"bytes"`
}

type track struct{ pid, tid int }

// knownNames is the closed set of event names the obs exporter can
// produce (EvFault renders as "fault:<code>", matched by prefix). A
// name outside this set means the exporter and checker have drifted.
var knownNames = map[string]bool{
	// spans
	"send": true, "ssend": true, "recv": true,
	"gst": true, "cluster": true, "align-batch": true, "recover": true, "phase": true,
	"gst-redistribute": true, "gst-fetch": true, "pairgen": true, "master": true,
	// instants
	"pair-generated": true, "pair-aligned": true, "pair-discarded": true,
	"cluster-merge": true, "lease-grant": true, "lease-expire": true,
	"lease-adopt": true, "checkpoint": true,
	// fault-model instants
	"retransmit": true, "corrupt_frame": true, "retry": true, "quarantined": true,
}

func nameKnown(name string) bool {
	return knownNames[name] || len(name) > 6 && name[:6] == "fault:"
}

// faultKinds are the reliability events; the summary counts them so a
// fault-injection run that traced nothing is visible at a glance.
var faultKinds = map[string]bool{
	"retransmit": true, "corrupt_frame": true, "retry": true, "quarantined": true,
}

// JSON validates one Chrome trace_event document: it must parse,
// contain events, carry the required keys, use only known event names,
// keep begin/end events balanced per (pid, tid) track, and satisfy
// the causal sequence invariants: each thread's send sequence numbers
// are gap-free (unless its thread_name metadata records dropped
// events), and within a pid every received (src, seq) matches a send
// some thread carried, at most once.
//
// A file may concatenate several machine runs (sweep experiments
// record every run of a sweep into one tracer): a thread's send seq
// restarting at 1 marks a run boundary, and seqs must be gap-free
// within each run segment. Because sweep points can run different
// rank counts, (src, seq) is not unique across segments, so the
// exactly-once receive matching is skipped for multi-run files —
// single-run files keep the full causal strictness.
func JSON(data []byte) (Summary, error) {
	var s Summary
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return s, fmt.Errorf("not trace_event JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return s, fmt.Errorf("no events")
	}
	s.Events = len(tf.TraceEvents)
	// depth[track][name] counts open spans; "E" must never underflow.
	depth := map[track]map[string]int{}
	tracks := map[track]bool{}
	// Causal bookkeeping, all per pid (every event renders once per
	// clock-domain pid, so the domains are checked independently).
	type msgID struct {
		src int64
		seq uint64
	}
	type pidMsg struct {
		pid int
		id  msgID
	}
	lastSeq := map[track]uint64{}
	restarts := map[track]int{}      // run boundaries seen on this thread
	multiRun := false                // any thread restarted its seqs
	droppedTrack := map[track]bool{} // this thread's ring was truncated
	droppedPid := map[int]bool{}     // any thread in pid truncated
	sent := map[pidMsg]bool{}
	type recvRef struct {
		event int
		key   pidMsg
	}
	var recvs []recvRef
	for i, e := range tf.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			return s, fmt.Errorf("event %d: missing name or ph", i)
		}
		if e.Ph == "M" {
			if e.Name == "thread_name" && e.Args.Dropped > 0 && e.Pid != nil {
				droppedPid[*e.Pid] = true
				if e.Tid != nil {
					droppedTrack[track{*e.Pid, *e.Tid}] = true
				}
			}
			continue // metadata carries no timestamp
		}
		if !nameKnown(e.Name) {
			return s, fmt.Errorf("event %d: unknown event kind %q", i, e.Name)
		}
		if faultKinds[e.Name] {
			s.Faults++
		}
		if e.Ts == nil || e.Pid == nil || e.Tid == nil {
			return s, fmt.Errorf("event %d (%s %q): missing ts, pid or tid", i, e.Ph, e.Name)
		}
		k := track{*e.Pid, *e.Tid}
		tracks[k] = true
		switch e.Ph {
		case "B":
			if depth[k] == nil {
				depth[k] = map[string]int{}
			}
			depth[k][e.Name]++
			s.Spans++
			if (e.Name == "send" || e.Name == "ssend") && e.Args.Seq != nil && *e.Args.Seq > 0 {
				seq := *e.Args.Seq
				if seq == 1 && lastSeq[k] > 0 {
					// The transport counts sends from 1 per run, so a
					// restart means a new run began on this thread.
					restarts[k]++
					multiRun = true
					lastSeq[k] = 0
				}
				if seq <= lastSeq[k] {
					return s, fmt.Errorf("event %d: pid=%d tid=%d send seq %d after %d (not increasing)",
						i, k.pid, k.tid, seq, lastSeq[k])
				}
				if !droppedTrack[k] && seq != lastSeq[k]+1 {
					return s, fmt.Errorf("event %d: pid=%d tid=%d send seq %d after %d (gap: a send went untraced)",
						i, k.pid, k.tid, seq, lastSeq[k])
				}
				lastSeq[k] = seq
				sent[pidMsg{k.pid, msgID{int64(k.tid), seq}}] = true
			}
		case "E":
			if depth[k][e.Name] == 0 {
				return s, fmt.Errorf("event %d: unmatched E %q on pid=%d tid=%d", i, e.Name, k.pid, k.tid)
			}
			depth[k][e.Name]--
			if e.Name == "recv" && e.Args.Seq != nil && *e.Args.Seq > 0 &&
				e.Args.Src != nil && (e.Args.Bytes == nil || *e.Args.Bytes >= 0) {
				recvs = append(recvs, recvRef{event: i, key: pidMsg{k.pid, msgID{*e.Args.Src, *e.Args.Seq}}})
			}
		case "i":
			s.Instants++
		default:
			return s, fmt.Errorf("event %d: unexpected ph %q", i, e.Ph)
		}
	}
	s.Tracks = len(tracks)
	for _, names := range depth {
		for _, d := range names {
			s.Unclosed += d
		}
	}
	// Exactly-once matching per pid: every received (src, seq) was
	// sent, and consumed at most once. Truncated pids are exempt —
	// the matching send may have been evicted.
	s.Runs = 1
	for _, n := range restarts {
		if n+1 > s.Runs {
			s.Runs = n + 1
		}
	}
	consumed := map[pidMsg]bool{}
	for _, rc := range recvs {
		if droppedPid[rc.key.pid] {
			continue
		}
		if multiRun {
			// Runs with different rank counts reuse (src, seq), so
			// exactly-once matching is undecidable across segments;
			// count the receives that do find a send.
			if sent[rc.key] {
				s.SeqMatched++
			}
			continue
		}
		if !sent[rc.key] {
			return s, fmt.Errorf("event %d: pid=%d received (src=%d seq=%d) but no such send in trace",
				rc.event, rc.key.pid, rc.key.id.src, rc.key.id.seq)
		}
		if consumed[rc.key] {
			return s, fmt.Errorf("event %d: pid=%d (src=%d seq=%d) delivered more than once",
				rc.event, rc.key.pid, rc.key.id.src, rc.key.id.seq)
		}
		consumed[rc.key] = true
		s.SeqMatched++
	}
	return s, nil
}

// File reads and validates one Chrome trace_event JSON file.
func File(path string) (Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Summary{}, err
	}
	return JSON(data)
}
