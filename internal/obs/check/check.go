// Package check validates trace output, in two forms: exported Chrome
// trace_event JSON files (the cmd/tracecheck CLI is a thin wrapper
// over JSON/File) and live in-memory event streams from an
// obs.Tracer (the Stream invariants the simulation harness runs as an
// oracle after every campaign case).
package check

import (
	"encoding/json"
	"fmt"
	"os"
)

// Summary describes one validated trace file.
type Summary struct {
	Events   int // total trace events (metadata included)
	Tracks   int // distinct (pid, tid) tracks
	Spans    int // begin events
	Instants int // instant events
	Faults   int // fault-model instants (retransmit, corrupt, retry, quarantine)
	Unclosed int // spans left open at end of file
}

func (s Summary) String() string {
	return fmt.Sprintf("%d events, %d tracks, %d spans, %d instants (%d fault-model), %d unclosed",
		s.Events, s.Tracks, s.Spans, s.Instants, s.Faults, s.Unclosed)
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
}

type track struct{ pid, tid int }

// knownNames is the closed set of event names the obs exporter can
// produce (EvFault renders as "fault:<code>", matched by prefix). A
// name outside this set means the exporter and checker have drifted.
var knownNames = map[string]bool{
	// spans
	"send": true, "ssend": true, "recv": true,
	"gst": true, "cluster": true, "align-batch": true, "recover": true, "phase": true,
	// instants
	"pair-generated": true, "pair-aligned": true, "pair-discarded": true,
	"cluster-merge": true, "lease-grant": true, "lease-expire": true,
	"lease-adopt": true, "checkpoint": true,
	// fault-model instants
	"retransmit": true, "corrupt_frame": true, "retry": true, "quarantined": true,
}

func nameKnown(name string) bool {
	return knownNames[name] || len(name) > 6 && name[:6] == "fault:"
}

// faultKinds are the reliability events; the summary counts them so a
// fault-injection run that traced nothing is visible at a glance.
var faultKinds = map[string]bool{
	"retransmit": true, "corrupt_frame": true, "retry": true, "quarantined": true,
}

// JSON validates one Chrome trace_event document: it must parse,
// contain events, carry the required keys, use only known event names,
// and keep begin/end events balanced per (pid, tid) track.
func JSON(data []byte) (Summary, error) {
	var s Summary
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return s, fmt.Errorf("not trace_event JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return s, fmt.Errorf("no events")
	}
	s.Events = len(tf.TraceEvents)
	// depth[track][name] counts open spans; "E" must never underflow.
	depth := map[track]map[string]int{}
	tracks := map[track]bool{}
	for i, e := range tf.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			return s, fmt.Errorf("event %d: missing name or ph", i)
		}
		if e.Ph == "M" {
			continue // metadata carries no timestamp
		}
		if !nameKnown(e.Name) {
			return s, fmt.Errorf("event %d: unknown event kind %q", i, e.Name)
		}
		if faultKinds[e.Name] {
			s.Faults++
		}
		if e.Ts == nil || e.Pid == nil || e.Tid == nil {
			return s, fmt.Errorf("event %d (%s %q): missing ts, pid or tid", i, e.Ph, e.Name)
		}
		k := track{*e.Pid, *e.Tid}
		tracks[k] = true
		switch e.Ph {
		case "B":
			if depth[k] == nil {
				depth[k] = map[string]int{}
			}
			depth[k][e.Name]++
			s.Spans++
		case "E":
			if depth[k][e.Name] == 0 {
				return s, fmt.Errorf("event %d: unmatched E %q on pid=%d tid=%d", i, e.Name, k.pid, k.tid)
			}
			depth[k][e.Name]--
		case "i":
			s.Instants++
		default:
			return s, fmt.Errorf("event %d: unexpected ph %q", i, e.Ph)
		}
	}
	s.Tracks = len(tracks)
	for _, names := range depth {
		for _, d := range names {
			s.Unclosed += d
		}
	}
	return s, nil
}

// File reads and validates one Chrome trace_event JSON file.
func File(path string) (Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Summary{}, err
	}
	return JSON(data)
}
