package check

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
)

func TestJSONAcceptsExportedTrace(t *testing.T) {
	tr := obs.NewTracer(2, 0)
	cfg := par.DefaultConfig(2)
	cfg.Trace = tr
	par.Run(cfg, func(c *par.Comm) {
		c.TraceEvent(obs.EvPhaseEnter, obs.PhaseGST, 0, 0)
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("hello"))
		} else {
			c.Recv(0, 1)
		}
		c.TraceEvent(obs.EvPhaseExit, obs.PhaseGST, 0, 0)
	})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := JSON(buf.Bytes())
	if err != nil {
		t.Fatalf("JSON rejected a valid exported trace: %v", err)
	}
	if sum.Events == 0 || sum.Tracks == 0 {
		t.Fatalf("empty summary for non-empty trace: %+v", sum)
	}
}

func TestJSONRejects(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"not json", `{"truncated`},
		{"no events", `{"traceEvents":[]}`},
		{"missing name", `{"traceEvents":[{"ph":"i","ts":1,"pid":1,"tid":0}]}`},
		{"unknown kind", `{"traceEvents":[{"name":"bogus","ph":"i","ts":1,"pid":1,"tid":0}]}`},
		{"missing ts", `{"traceEvents":[{"name":"recv","ph":"B","pid":1,"tid":0}]}`},
		{"unmatched end", `{"traceEvents":[{"name":"recv","ph":"E","ts":1,"pid":1,"tid":0}]}`},
		{"bad ph", `{"traceEvents":[{"name":"recv","ph":"X","ts":1,"pid":1,"tid":0}]}`},
	}
	for _, tc := range cases {
		if _, err := JSON([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestStreamAcceptsHealthyRun(t *testing.T) {
	tr := obs.NewTracer(4, 0)
	cfg := par.DefaultConfig(4)
	cfg.Trace = tr
	par.Run(cfg, func(c *par.Comm) {
		c.TraceEvent(obs.EvPhaseEnter, obs.PhaseCluster, 0, 0)
		if c.Rank() == 0 {
			for i := 1; i < c.Size(); i++ {
				c.Recv(par.AnySource, 1)
			}
		} else {
			c.Send(0, 1, []byte{byte(c.Rank())})
		}
		c.Barrier()
		c.TraceEvent(obs.EvPhaseExit, obs.PhaseCluster, 0, 0)
	})
	sum, err := Stream(tr, nil)
	if err != nil {
		t.Fatalf("Stream rejected a healthy run: %v", err)
	}
	if sum.RecvEvents == 0 || sum.Channels == 0 {
		t.Fatalf("no matched traffic in summary: %+v", sum)
	}
}

func TestStreamAcceptsCrashedRank(t *testing.T) {
	tr := obs.NewTracer(3, 0)
	cfg := par.DefaultConfig(3)
	cfg.Trace = tr
	cfg.Faults = &par.FaultPlan{Seed: 1, Crashes: []par.Crash{{Rank: 2, AfterSends: 1, Tag: par.AnyTag}}}
	_, exits := par.RunStatus(cfg, func(c *par.Comm) {
		c.TraceEvent(obs.EvPhaseEnter, obs.PhaseGST, 0, 0)
		if c.Rank() != 0 {
			c.Send(0, 1, []byte{1}) // rank 2 dies here
		} else {
			c.RecvTimeout(par.AnySource, 1, 50*time.Millisecond)
			c.RecvTimeout(par.AnySource, 1, 50*time.Millisecond)
		}
		c.TraceEvent(obs.EvPhaseExit, obs.PhaseGST, 0, 0)
	})
	if _, err := Stream(tr, func(r int) bool { return exits[r].OK }); err != nil {
		t.Fatalf("Stream rejected a run with an exempted crashed rank: %v", err)
	}
	// Treating the crashed rank as OK must fail span balance.
	if _, err := Stream(tr, nil); err == nil {
		t.Fatal("Stream accepted an unclosed span on a supposedly-OK rank")
	}
}

func TestStreamRejectsBackwardsClock(t *testing.T) {
	tr := obs.NewTracer(1, 0)
	tr.Emit(0, obs.EvClusterMerge, 5, 5, 0, 0, 0)
	tr.Emit(0, obs.EvClusterMerge, 4, 5, 0, 0, 0)
	if _, err := Stream(tr, nil); err == nil {
		t.Fatal("Stream accepted a backwards modeled clock")
	}
}

func TestStreamRejectsRecvWithoutSend(t *testing.T) {
	tr := obs.NewTracer(2, 0)
	// Rank 1 claims to have completed a receive from rank 0, which
	// never sent anything.
	tr.Emit(1, obs.EvRecvBegin, 0, 0, 0, 7, 0)
	tr.Emit(1, obs.EvRecvEnd, 0, 0, 0, 7, 16)
	if _, err := Stream(tr, nil); err == nil {
		t.Fatal("Stream accepted a receive with no matching send")
	}
}

func TestStreamSkipsOverflowedRings(t *testing.T) {
	tr := obs.NewTracer(1, 4) // tiny ring: guaranteed overflow
	for i := 0; i < 64; i++ {
		tr.Emit(0, obs.EvRecvBegin, 0, 0, 0, 7, 0)
		tr.Emit(0, obs.EvRecvEnd, 0, 0, 0, 7, 16)
	}
	sum, err := Stream(tr, nil)
	if err != nil {
		t.Fatalf("Stream applied strict invariants to a truncated stream: %v", err)
	}
	if sum.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", sum.Skipped)
	}
}

func TestStreamRejectsSeqGap(t *testing.T) {
	tr := obs.NewTracer(1, 0)
	// Seq jumps 1 -> 3: a send went untraced.
	tr.EmitSeq(0, obs.EvSendBegin, 0, 0, 1, 7, 8, 1)
	tr.EmitSeq(0, obs.EvSendEnd, 1, 0, 1, 7, 8, 1)
	tr.EmitSeq(0, obs.EvSendBegin, 1, 0, 1, 7, 8, 3)
	tr.EmitSeq(0, obs.EvSendEnd, 2, 0, 1, 7, 8, 3)
	if _, err := Stream(tr, nil); err == nil {
		t.Fatal("Stream accepted a send sequence gap")
	}
}

func TestStreamRejectsSeqMismatchedRecv(t *testing.T) {
	tr := obs.NewTracer(2, 0)
	tr.EmitSeq(0, obs.EvSendBegin, 0, 0, 1, 7, 8, 1)
	tr.EmitSeq(0, obs.EvSendEnd, 1, 0, 1, 7, 8, 1)
	// Receiver claims seq 2, which rank 0 never sent. The channel
	// count invariant alone cannot see this.
	tr.EmitSeq(1, obs.EvRecvBegin, 0, 0, 0, 7, 0, 0)
	tr.EmitSeq(1, obs.EvRecvEnd, 1, 0, 0, 7, 8, 2)
	if _, err := Stream(tr, nil); err == nil {
		t.Fatal("Stream accepted a receive of a never-sent sequence number")
	}
}

func TestStreamRejectsDuplicateDelivery(t *testing.T) {
	tr := obs.NewTracer(3, 0)
	tr.EmitSeq(0, obs.EvSendBegin, 0, 0, 1, 7, 8, 1)
	tr.EmitSeq(0, obs.EvSendEnd, 1, 0, 1, 7, 8, 1)
	tr.EmitSeq(0, obs.EvSendBegin, 1, 0, 2, 7, 8, 2)
	tr.EmitSeq(0, obs.EvSendEnd, 2, 0, 2, 7, 8, 2)
	for r := 1; r <= 2; r++ {
		// Both receivers consume (src=0, seq=1): delivered twice.
		tr.EmitSeq(r, obs.EvRecvBegin, 0, 0, 0, 7, 0, 0)
		tr.EmitSeq(r, obs.EvRecvEnd, 1, 0, 0, 7, 8, 1)
	}
	if _, err := Stream(tr, nil); err == nil {
		t.Fatal("Stream accepted a duplicate delivery")
	}
}

func TestStreamSeqMatchedCounts(t *testing.T) {
	tr := obs.NewTracer(2, 0)
	cfg := par.DefaultConfig(2)
	cfg.Trace = tr
	par.Run(cfg, func(c *par.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("a"))
			c.Send(1, 1, []byte("b"))
		} else {
			c.Recv(0, 1)
			c.Recv(0, 1)
		}
	})
	sum, err := Stream(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SeqMatched != 2 {
		t.Fatalf("SeqMatched = %d, want 2", sum.SeqMatched)
	}
}

func TestJSONCausalInvariants(t *testing.T) {
	// A well-formed two-rank exchange passes and matches the recv.
	tr := obs.NewTracer(2, 0)
	cfg := par.DefaultConfig(2)
	cfg.Trace = tr
	par.Run(cfg, func(c *par.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("hello"))
		} else {
			c.Recv(0, 1)
		}
	})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := JSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if sum.SeqMatched == 0 {
		t.Fatal("exported trace carried no seq-matched receives")
	}

	// Hand-built documents violating each causal invariant.
	bad := []struct{ name, doc string }{
		{"seq gap", `{"traceEvents":[
			{"name":"send","ph":"B","ts":1,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":1}},
			{"name":"send","ph":"E","ts":2,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":1}},
			{"name":"send","ph":"B","ts":3,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":3}},
			{"name":"send","ph":"E","ts":4,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":3}}]}`},
		{"recv without send", `{"traceEvents":[
			{"name":"recv","ph":"B","ts":1,"pid":1,"tid":1,"args":{"src":0,"tag":7}},
			{"name":"recv","ph":"E","ts":2,"pid":1,"tid":1,"args":{"src":0,"tag":7,"bytes":8,"seq":5}}]}`},
		{"duplicate delivery", `{"traceEvents":[
			{"name":"send","ph":"B","ts":1,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":1}},
			{"name":"send","ph":"E","ts":2,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":1}},
			{"name":"recv","ph":"B","ts":3,"pid":1,"tid":1,"args":{"src":0,"tag":7}},
			{"name":"recv","ph":"E","ts":4,"pid":1,"tid":1,"args":{"src":0,"tag":7,"bytes":8,"seq":1}},
			{"name":"recv","ph":"B","ts":5,"pid":1,"tid":2,"args":{"src":0,"tag":7}},
			{"name":"recv","ph":"E","ts":6,"pid":1,"tid":2,"args":{"src":0,"tag":7,"bytes":8,"seq":1}}]}`},
	}
	for _, tc := range bad {
		if _, err := JSON([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// The same gap is tolerated when the thread is marked truncated.
	tolerated := `{"traceEvents":[
		{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"rank 0","dropped":9}},
		{"name":"send","ph":"B","ts":1,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":4}},
		{"name":"send","ph":"E","ts":2,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":4}},
		{"name":"send","ph":"B","ts":3,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":7}},
		{"name":"send","ph":"E","ts":4,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":7}}]}`
	if _, err := JSON([]byte(tolerated)); err != nil {
		t.Errorf("truncated thread's seq gap rejected: %v", err)
	}
}

func TestJSONMultiRunTrace(t *testing.T) {
	// A sweep experiment records several machine runs — here with
	// different rank counts, like fig5's proc sweep — into one tracer.
	// Each run's send seqs restart at 1; the checker must segment at
	// the restarts instead of rejecting the file.
	tr := obs.NewTracer(4, 0)
	for _, p := range []int{2, 4, 2} {
		cfg := par.DefaultConfig(p)
		cfg.Trace = tr
		par.Run(cfg, func(c *par.Comm) {
			if c.Rank() == 0 {
				for d := 1; d < c.Size(); d++ {
					c.Send(d, 1, []byte("sweep"))
				}
			} else {
				c.Recv(0, 1)
			}
		})
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := JSON(buf.Bytes())
	if err != nil {
		t.Fatalf("multi-run trace rejected: %v", err)
	}
	if sum.Runs != 3 {
		t.Errorf("Runs = %d, want 3", sum.Runs)
	}
	if sum.SeqMatched == 0 {
		t.Error("no seq-matched receives across run segments")
	}

	// Segmentation must not weaken the within-run checks: a gap after
	// a restart is still a gap.
	gapAfterRestart := `{"traceEvents":[
		{"name":"send","ph":"B","ts":1,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":1}},
		{"name":"send","ph":"E","ts":2,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":1}},
		{"name":"send","ph":"B","ts":3,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":1}},
		{"name":"send","ph":"E","ts":4,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":1}},
		{"name":"send","ph":"B","ts":5,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":3}},
		{"name":"send","ph":"E","ts":6,"pid":1,"tid":0,"args":{"dst":1,"tag":7,"seq":3}}]}`
	if _, err := JSON([]byte(gapAfterRestart)); err == nil {
		t.Error("seq gap inside the second run segment accepted")
	}
}

// perProcessDumps runs a 2-rank machine but exports each rank's
// stream as its own dump, the shape a multi-process transport run
// leaves on disk.
func perProcessDumps(t *testing.T) []*obs.Dump {
	t.Helper()
	tr := obs.NewTracer(2, 0)
	cfg := par.DefaultConfig(2)
	cfg.Trace = tr
	par.Run(cfg, func(c *par.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("hello"))
		} else {
			c.Recv(0, 1)
		}
	})
	full := tr.Dump()
	var dumps []*obs.Dump
	for r, rd := range full.Ranks {
		d := &obs.Dump{Version: obs.DumpVersion}
		for q := range full.Ranks {
			if q == r {
				d.Ranks = append(d.Ranks, rd)
			} else {
				d.Ranks = append(d.Ranks, obs.RankDump{Rank: q})
			}
		}
		dumps = append(dumps, d)
	}
	return dumps
}

func TestDumpMergedPerProcess(t *testing.T) {
	dumps := perProcessDumps(t)
	merged, err := obs.MergeDumps(dumps...)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Dump(merged, nil)
	if err != nil {
		t.Fatalf("merged per-process dumps rejected: %v", err)
	}
	if sum.Ranks != 2 || sum.SeqMatched == 0 {
		t.Fatalf("unexpected summary: %+v", sum)
	}
}

func TestDumpMergeMissingRankIsTruncated(t *testing.T) {
	dumps := perProcessDumps(t)
	// Drop rank 1's dump: its process was SIGKILLed before writing.
	merged, err := obs.MergeDumps(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Dump(merged, nil)
	if err != nil {
		t.Fatalf("merge with a missing rank rejected: %v", err)
	}
	if sum.Skipped != 1 {
		t.Fatalf("missing rank not marked truncated: %+v", sum)
	}
}

func TestMergeDumpsRejectsDuplicateRank(t *testing.T) {
	dumps := perProcessDumps(t)
	if _, err := obs.MergeDumps(dumps[0], dumps[0]); err == nil {
		t.Fatal("two dumps claiming rank 0 accepted")
	}
}
