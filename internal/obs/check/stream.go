package check

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// StreamSummary describes one validated in-memory trace.
type StreamSummary struct {
	Ranks      int // rank rings examined
	Events     int // events examined
	Channels   int // distinct (src, dst, tag) channels with traffic
	RecvEvents int // completed receives matched against sends
	SeqMatched int // receives matched to their exact send by (src, seq)
	Skipped    int // ranks whose per-rank invariants were skipped (ring overflow)
}

// Stream validates the runtime invariants of a tracer's retained
// per-rank event streams — the oracle form used by the simulation
// harness, which checks a machine's actual behaviour rather than its
// rendered export:
//
//   - Modeled clocks are monotone: a rank's Comm and Comp charges
//     never decrease in emission order.
//   - Spans balance: on every rank that finished OK, begin/end pairs
//     (send, ssend, recv, and each phase id) nest with no end before
//     its begin and no span left open.
//   - No receive without a send: on every (src, dst, tag) channel the
//     number of completed receives never exceeds the number of sends,
//     and the k-th earliest receive completion is no earlier than the
//     k-th earliest send start (drops and in-flight messages make
//     sends ≥ receives; nothing can be received before something was
//     sent).
//   - Sequence numbers are causal: each rank's send sequence is
//     exactly 1, 2, 3, ... with no gaps or repeats (a gap means a
//     send went untraced), and every completed receive names a (src,
//     seq) pair some traced send actually carried, each consumed at
//     most once — the exactly-once delivery guarantee, checked
//     end-to-end through the trace.
//
// okRank reports whether a rank's body returned normally; nil means
// all ranks did. Ranks that crashed are exempt from span balance (a
// rank dying mid-phase never exits it) but still feed the channel
// counts. A rank whose ring overflowed (Dropped > 0) is exempt from
// per-rank balance checks, and any overflow disables the cross-rank
// channel invariants — a truncated stream proves nothing either way.
func Stream(tr *obs.Tracer, okRank func(rank int) bool) (StreamSummary, error) {
	if tr == nil {
		return StreamSummary{}, fmt.Errorf("no tracer")
	}
	return streamOver(tr.Ranks(), tr.Events, tr.Dropped, okRank, true)
}

// Dump runs the Stream invariants over a loaded events dump — the
// merged per-process form a multi-process transport run leaves behind
// (see obs.MergeDumps). Ranks marked Dropped (truncated rings, or a
// killed process whose dump never made it to disk) are exempt from
// per-rank balance checks and disable the cross-rank matching, same
// as in the live-tracer form. Because each process stamps events with
// its own clock origin, the cross-rank wall-clock ordering check is
// skipped; the clock-free invariants (receives never exceed sends per
// channel, exactly-once (src, seq) matching) still run.
func Dump(d *obs.Dump, okRank func(rank int) bool) (StreamSummary, error) {
	if d == nil || len(d.Ranks) == 0 {
		return StreamSummary{}, fmt.Errorf("no ranks in dump")
	}
	byRank := map[int]obs.RankDump{}
	n := 0
	for _, rd := range d.Ranks {
		byRank[rd.Rank] = rd
		if rd.Rank >= n {
			n = rd.Rank + 1
		}
	}
	return streamOver(n,
		func(r int) []obs.Event { return byRank[r].Events },
		func(r int) uint64 { return byRank[r].Dropped },
		okRank, false)
}

func streamOver(ranks int, events func(int) []obs.Event, droppedOf func(int) uint64, okRank func(rank int) bool, sharedClock bool) (StreamSummary, error) {
	var s StreamSummary
	s.Ranks = ranks
	anyDropped := false
	for r := 0; r < s.Ranks; r++ {
		if droppedOf(r) > 0 {
			anyDropped = true
		}
	}

	type channel struct{ src, dst, tag int64 }
	sendWall := map[channel][]int64{}
	recvWall := map[channel][]int64{}

	type msgID struct {
		src int64
		seq uint64
	}
	sent := map[msgID]bool{}
	type recvRef struct {
		rank, idx int
		id        msgID
	}
	var recvs []recvRef

	for r := 0; r < s.Ranks; r++ {
		evs := events(r)
		s.Events += len(evs)
		dropped := droppedOf(r) > 0
		if dropped {
			s.Skipped++
		}
		ok := okRank == nil || okRank(r)

		var lastComm, lastComp float64
		var lastSeq uint64
		depth := map[string]int{} // span family (or phase id) -> open count
		for i, e := range evs {
			if e.Comm < lastComm || e.Comp < lastComp {
				return s, fmt.Errorf("rank %d event %d (%v): modeled clock went backwards (comm %g→%g, comp %g→%g)",
					r, i, e.Kind, lastComm, e.Comm, lastComp, e.Comp)
			}
			lastComm, lastComp = e.Comm, e.Comp

			switch e.Kind {
			case obs.EvSendBegin, obs.EvSsendBegin:
				if e.Seq > 0 {
					switch {
					case dropped:
						// Truncated stream: gaps are expected, order is not.
						if e.Seq <= lastSeq && lastSeq > 0 {
							return s, fmt.Errorf("rank %d event %d: send seq %d after %d (not increasing)",
								r, i, e.Seq, lastSeq)
						}
					case e.Seq != lastSeq+1:
						return s, fmt.Errorf("rank %d event %d: send seq %d after %d (gap: a send went untraced)",
							r, i, e.Seq, lastSeq)
					}
					lastSeq = e.Seq
					sent[msgID{int64(r), e.Seq}] = true
				}
				if !dropped {
					ch := channel{src: int64(r), dst: e.A, tag: e.B}
					sendWall[ch] = append(sendWall[ch], e.Wall)
				}
			case obs.EvRecvEnd:
				if e.C >= 0 && e.Seq > 0 {
					recvs = append(recvs, recvRef{rank: r, idx: i, id: msgID{e.A, e.Seq}})
				}
				if e.C >= 0 && !dropped { // C == -1: timed out, nothing received
					ch := channel{src: e.A, dst: int64(r), tag: e.B}
					recvWall[ch] = append(recvWall[ch], e.Wall)
					s.RecvEvents++
				}
			}

			if !ok || dropped {
				continue
			}
			key := spanKey(e)
			if key == "" {
				continue
			}
			if isBegin(e.Kind) {
				depth[key]++
			} else {
				depth[key]--
				if depth[key] < 0 {
					return s, fmt.Errorf("rank %d event %d: %s end without begin", r, i, key)
				}
			}
		}
		if ok && !dropped {
			for key, d := range depth {
				if d != 0 {
					return s, fmt.Errorf("rank %d: %d unclosed %s span(s) on a rank that finished OK", r, d, key)
				}
			}
		}
	}

	s.Channels = len(sendWall)
	if anyDropped {
		return s, nil // truncated streams: skip cross-rank matching
	}
	// Exact matching: every completed receive must name a traced send,
	// and no (src, seq) may be delivered twice.
	consumed := map[msgID]bool{}
	for _, rc := range recvs {
		if !sent[rc.id] {
			return s, fmt.Errorf("rank %d event %d: received (src=%d seq=%d) but no such send was traced",
				rc.rank, rc.idx, rc.id.src, rc.id.seq)
		}
		if consumed[rc.id] {
			return s, fmt.Errorf("rank %d event %d: (src=%d seq=%d) delivered more than once",
				rc.rank, rc.idx, rc.id.src, rc.id.seq)
		}
		consumed[rc.id] = true
		s.SeqMatched++
	}
	for ch, recvs := range recvWall {
		sends := sendWall[ch]
		if len(recvs) > len(sends) {
			return s, fmt.Errorf("channel %d→%d tag %d: %d receives but only %d sends",
				ch.src, ch.dst, ch.tag, len(recvs), len(sends))
		}
		if !sharedClock {
			continue // wall clocks from different processes don't compare
		}
		sort.Slice(sends, func(i, j int) bool { return sends[i] < sends[j] })
		sort.Slice(recvs, func(i, j int) bool { return recvs[i] < recvs[j] })
		for k := range recvs {
			if recvs[k] < sends[k] {
				return s, fmt.Errorf("channel %d→%d tag %d: receive %d completed at %dns before %d sends had started",
					ch.src, ch.dst, ch.tag, k, recvs[k], k+1)
			}
		}
	}
	return s, nil
}

// spanKey names the balance bucket an event belongs to, or "" for
// instants. Phase spans balance per phase id, message spans per family.
func spanKey(e obs.Event) string {
	switch e.Kind {
	case obs.EvSendBegin, obs.EvSendEnd:
		return "send"
	case obs.EvSsendBegin, obs.EvSsendEnd:
		return "ssend"
	case obs.EvRecvBegin, obs.EvRecvEnd:
		return "recv"
	case obs.EvPhaseEnter, obs.EvPhaseExit:
		return "phase:" + obs.PhaseName(e.A)
	}
	return ""
}

func isBegin(k obs.Kind) bool {
	switch k {
	case obs.EvSendBegin, obs.EvSsendBegin, obs.EvRecvBegin, obs.EvPhaseEnter:
		return true
	}
	return false
}
