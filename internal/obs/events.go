package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// DumpVersion is the current raw events dump format version.
const DumpVersion = 1

// RankDump is one rank's retained event stream plus how many of its
// events ring wraparound evicted (a truncated stream disqualifies the
// strict causal checks).
type RankDump struct {
	Rank    int     `json:"rank"`
	Dropped uint64  `json:"dropped,omitempty"`
	Events  []Event `json:"events"`
}

// Dump is the lossless raw export of a tracer: every retained event of
// every rank, with both clock domains and the per-sender sequence
// numbers intact. The Chrome trace_event export collapses the modeled
// clock to a single timestamp per event, so causal analysis
// (cmd/traceanalyze, internal/obs/analyze) consumes this format
// instead.
type Dump struct {
	Version int        `json:"version"`
	Ranks   []RankDump `json:"ranks"`
}

// Dump snapshots the tracer's retained events per rank.
func (t *Tracer) Dump() *Dump {
	d := &Dump{Version: DumpVersion}
	if t == nil {
		return d
	}
	for r := 0; r < t.Ranks(); r++ {
		d.Ranks = append(d.Ranks, RankDump{
			Rank:    r,
			Dropped: t.Dropped(r),
			Events:  t.Events(r),
		})
	}
	return d
}

// WriteJSON writes the dump as a single JSON document.
func (d *Dump) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(d)
}

// WriteEvents writes the tracer's raw events dump to w.
func (t *Tracer) WriteEvents(w io.Writer) error {
	return t.Dump().WriteJSON(w)
}

// ReadDump parses a raw events dump.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("obs: not an events dump: %w", err)
	}
	if d.Version != DumpVersion {
		return nil, fmt.Errorf("obs: events dump version %d, want %d", d.Version, DumpVersion)
	}
	return &d, nil
}

// MergeDumps combines per-process event dumps into one machine-wide
// dump. Multi-process transport runs write one dump per rank, each
// populating only its own stream; the merge takes, for every rank,
// the unique non-empty stream across the inputs. A rank with traffic
// in two dumps is ambiguous (two processes claimed the same rank) and
// an error. A rank no dump covers — typically a process that was
// SIGKILLed before it could write its dump — is filled with an empty
// stream marked Dropped, which exempts it (and the cross-rank
// matching that would need its sends) from the strict causal checks,
// exactly as a truncated ring does.
func MergeDumps(dumps ...*Dump) (*Dump, error) {
	if len(dumps) == 0 {
		return nil, fmt.Errorf("obs: no dumps to merge")
	}
	byRank := map[int]RankDump{}
	ranks := 0
	for i, d := range dumps {
		for _, rd := range d.Ranks {
			if rd.Rank < 0 {
				return nil, fmt.Errorf("obs: dump %d: negative rank %d", i, rd.Rank)
			}
			if rd.Rank >= ranks {
				ranks = rd.Rank + 1
			}
			if len(rd.Events) == 0 && rd.Dropped == 0 {
				continue // a remote rank's empty stream says nothing
			}
			if prev, ok := byRank[rd.Rank]; ok && (len(prev.Events) > 0 || prev.Dropped > 0) {
				return nil, fmt.Errorf("obs: rank %d has events in more than one dump", rd.Rank)
			}
			byRank[rd.Rank] = rd
		}
	}
	m := &Dump{Version: DumpVersion}
	for r := 0; r < ranks; r++ {
		rd, ok := byRank[r]
		if !ok {
			rd = RankDump{Rank: r, Dropped: 1} // no dump: treat as truncated
		}
		m.Ranks = append(m.Ranks, rd)
	}
	return m, nil
}

// ReadDumpFile reads and parses one raw events dump file.
func ReadDumpFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadDump(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
