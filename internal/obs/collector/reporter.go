package collector

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// ReporterConfig wires one process's telemetry stream to a collector.
type ReporterConfig struct {
	// URL is the collector's base URL (http://host:port).
	URL string
	// Rank identifies this process; Covers lists the ranks whose rings
	// this process's tracer owns (default: just Rank; an in-process
	// machine passes every rank).
	Rank   int
	Covers []int
	Job    string
	// Interval between reports (default 200ms).
	Interval time.Duration
	Tracer   *obs.Tracer
	Registry *obs.Registry
	// Client overrides the HTTP client (tests); default has a 5s
	// timeout so a wedged collector cannot block the final flush.
	Client *http.Client
}

// Reporter periodically ships tracer/registry deltas to the collector.
// Delivery is best-effort by design: telemetry must never take the
// run down, so failed posts are counted and dropped — cursors are not
// rewound, and the final flush carries the authoritative full dump
// that makes the collector whole regardless of what streaming missed.
type Reporter struct {
	cfg    ReporterConfig
	client *http.Client

	mu      sync.Mutex // serializes flushes (ticker vs Close)
	cursors map[int]uint64
	prev    *obs.MetricsState
	seq     uint64
	failed  uint64
	closed  bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartReporter begins streaming and returns the running reporter.
func StartReporter(cfg ReporterConfig) *Reporter {
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if len(cfg.Covers) == 0 {
		cfg.Covers = []int{cfg.Rank}
	}
	r := &Reporter{
		cfg:     cfg,
		client:  cfg.Client,
		cursors: map[int]uint64{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: 5 * time.Second}
	}
	go r.loop()
	return r
}

func (r *Reporter) loop() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			_ = r.Flush()
		}
	}
}

// gather builds the next report under the flush lock.
func (r *Reporter) gather() *Report {
	r.seq++
	rep := &Report{
		Version: ProtoVersion,
		Job:     r.cfg.Job,
		Rank:    r.cfg.Rank,
		PID:     os.Getpid(),
		Seq:     r.seq,
		Covers:  r.cfg.Covers,
	}
	for _, rank := range r.cfg.Covers {
		evs, next, lost := r.cfg.Tracer.EventsSince(rank, r.cursors[rank])
		r.cursors[rank] = next
		if len(evs) > 0 || lost > 0 {
			rep.Streams = append(rep.Streams, RankStream{Rank: rank, Events: evs, Dropped: lost})
		}
	}
	cur := obs.CaptureMetrics(r.cfg.Registry)
	if d := cur.Delta(r.prev); !d.Empty() {
		rep.Metrics = d
	}
	r.prev = cur
	return rep
}

func (r *Reporter) post(rep *Report) error {
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	resp, err := r.client.Post(r.cfg.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("collector: ingest returned %s", resp.Status)
	}
	return nil
}

// Flush gathers and posts one report now. Errors are also tallied in
// Failed — the periodic loop ignores them.
func (r *Reporter) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	if err := r.post(r.gather()); err != nil {
		r.failed++
		return err
	}
	return nil
}

// PostProfile uploads one profile artifact (raw .pb.gz bytes) to the
// collector under name, tagged with this reporter's rank. Like event
// reports, delivery is best-effort — callers log and continue.
func (r *Reporter) PostProfile(name string, data []byte) error {
	if r == nil {
		return nil
	}
	u := fmt.Sprintf("%s/profiles?name=%s&rank=%d", r.cfg.URL, url.QueryEscape(name), r.cfg.Rank)
	resp, err := r.client.Post(u, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		r.mu.Lock()
		r.failed++
		r.mu.Unlock()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		r.mu.Lock()
		r.failed++
		r.mu.Unlock()
		return fmt.Errorf("collector: profile upload returned %s", resp.Status)
	}
	return nil
}

// Failed returns how many reports could not be delivered.
func (r *Reporter) Failed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

// Close stops the periodic loop and delivers the final flush: the
// process's authoritative full dump (d, or the tracer's current dump
// when nil), the last metrics delta, and the exit verdict. Safe to
// call once; a nil reporter is a no-op so call sites need no guards.
func (r *Reporter) Close(d *obs.Dump, exitOK bool, reason string) error {
	if r == nil {
		return nil
	}
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if d == nil {
		d = r.cfg.Tracer.Dump()
	}
	rep := r.gather()
	rep.Final = true
	rep.FinalDump = d
	rep.ExitOK = exitOK
	rep.ExitReason = reason
	if err := r.post(rep); err != nil {
		r.failed++
		return err
	}
	return nil
}
