// Package collector is the run-scoped telemetry plane: every rank of
// a (possibly multi-process, possibly multi-machine) run streams
// periodic deltas of its tracer events and metrics registry to one
// collector, which maintains a live merged view of the whole run —
// per-rank health and phase progress, an incremental comm/comp/idle
// decomposition over the streamed causal DAG (internal/obs/analyze in
// partial mode), and online straggler detection with the same
// attribution as the post-hoc reports. The collector's final merged
// trace, assembled from each rank's final-flush dump, is byte-
// equivalent to obs.MergeDumps over the per-process dump files, so
// nothing is lost by watching live.
//
// The wire protocol is a single JSON POST per reporting interval to
// /ingest. Reports carry per-rank report sequence numbers so a
// duplicate (retried) post is idempotent, cursor-delta event batches
// (obs.Tracer.EventsSince), and changed-entries metrics deltas
// (obs.MetricsState.Delta). Telemetry must never take a run down: the
// reporter drops reports it cannot deliver and the job continues.
package collector

import (
	"repro/internal/obs"
)

// ProtoVersion is the ingest payload format version.
const ProtoVersion = 1

// RankStream is one rank's event batch inside a report: the events at
// log positions the reporter's cursor passed over since its previous
// report, plus how many were evicted by ring wraparound before they
// could be streamed (cumulative truncation, reported as increments).
type RankStream struct {
	Rank    int         `json:"rank"`
	Events  []obs.Event `json:"events,omitempty"`
	Dropped uint64      `json:"dropped,omitempty"`
}

// Report is one reporting interval's payload from one process.
//
// Rank identifies the reporting process; Covers lists the ranks whose
// telemetry it owns (its own rank for one-process-per-rank transports;
// every rank for an in-process machine, whose single tracer spans the
// whole run). A report touches the heartbeat of every covered rank.
//
// The final report (Final true) additionally carries the process's
// authoritative full tracer dump and exit status; the collector swaps
// the rank's streamed prefix for the dump so the merged trace is
// exactly what obs.MergeDumps over the per-process dump files yields.
type Report struct {
	Version int    `json:"version"`
	Job     string `json:"job,omitempty"`
	Rank    int    `json:"rank"`
	PID     int    `json:"pid,omitempty"`
	Seq     uint64 `json:"seq"`
	Covers  []int  `json:"covers,omitempty"`

	Metrics *obs.MetricsDelta `json:"metrics,omitempty"`
	Streams []RankStream      `json:"streams,omitempty"`

	Final      bool      `json:"final,omitempty"`
	FinalDump  *obs.Dump `json:"final_dump,omitempty"`
	ExitOK     bool      `json:"exit_ok,omitempty"`
	ExitReason string    `json:"exit_reason,omitempty"`
}

// Rank health states, ordered by increasing alarm.
const (
	StateWaiting = "waiting" // expected but has not reported yet
	StateAlive   = "alive"   // reporting within the warn threshold
	StateLate    = "late"    // heartbeat lag past the warn threshold
	StateDead    = "dead"    // lag past the dead threshold, or lost per the lease protocol
	StateDone    = "done"    // final flush received, exit OK
	StateFailed  = "failed"  // final flush received, exit not OK
)

// RankStatus is one rank's row of the live dashboard.
type RankStatus struct {
	Rank    int    `json:"rank"`
	State   string `json:"state"`
	PID     int    `json:"pid,omitempty"`
	Reports uint64 `json:"reports"`
	// LagMs is the heartbeat lag: milliseconds since the last report
	// that covered this rank. -1 before the first report.
	LagMs int64 `json:"lag_ms"`

	// Phase is the innermost phase the rank's event stream shows open
	// ("" between phases, "-" before any event arrived).
	Phase  string `json:"phase"`
	Events int    `json:"events"`

	// Traffic and fault counters derived from the streamed events.
	MsgsSent     int64 `json:"msgs_sent"`
	MsgsRecv     int64 `json:"msgs_recv"`
	BytesSent    int64 `json:"bytes_sent"`
	BytesRecv    int64 `json:"bytes_recv"`
	Retransmits  int64 `json:"retransmits,omitempty"`
	Drops        int64 `json:"drops,omitempty"`
	LeaseExpires int64 `json:"lease_expires,omitempty"`
	Faults       int64 `json:"faults,omitempty"`
	Checkpoints  int64 `json:"checkpoints,omitempty"`

	// Modeled clocks at the rank's last streamed event, and how far
	// behind the front-runner that leaves it.
	CommSec   float64 `json:"comm_sec"`
	CompSec   float64 `json:"comp_sec"`
	BehindSec float64 `json:"behind_sec"`

	// Decomposition of the rank's synchronized time from the live
	// causal analysis (zero until the first analysis ran).
	IdleSec   float64 `json:"idle_sec"`
	TotalSec  float64 `json:"total_sec"`
	IdlePct   float64 `json:"idle_pct"`
	Straggler bool    `json:"straggler,omitempty"`

	// Runtime health gauges, present when the reporting process runs a
	// profiling session (internal/obs/prof samples runtime/metrics into
	// the registry, and the registry streams here like any gauge).
	GCPauseP99Ns  int64 `json:"gc_pause_p99_ns,omitempty"`
	SchedLatP99Ns int64 `json:"sched_lat_p99_ns,omitempty"`
	HeapLiveBytes int64 `json:"heap_live_bytes,omitempty"`

	ExitReason string `json:"exit_reason,omitempty"`
}

// StragglerNote is one live straggler finding, attributed exactly as
// the post-hoc report attributes it: the slowest rank of a phase whose
// imbalance (max/mean rank time) crossed the threshold.
type StragglerNote struct {
	Rank      int     `json:"rank"`
	Phase     string  `json:"phase"`
	Sec       float64 `json:"sec"`      // the rank's time in the phase
	MeanSec   float64 `json:"mean_sec"` // mean over ranks in the phase
	Imbalance float64 `json:"imbalance"`
}

// LiveAnalysis is the run-level summary of the most recent incremental
// causal analysis.
type LiveAnalysis struct {
	AnalyzedEvents int     `json:"analyzed_events"`
	MakespanSec    float64 `json:"makespan_sec"`
	CommSec        float64 `json:"comm_sec"`
	CompSec        float64 `json:"comp_sec"`
	IdleSec        float64 `json:"idle_sec"`
	SlowestRank    int     `json:"slowest_rank"`
	MasterIdleSec  float64 `json:"master_idle_sec"`
	// Unmatched receives are waiting for their sender's stream; a
	// large value means the live numbers still underestimate idle.
	Unmatched  int             `json:"unmatched,omitempty"`
	Stragglers []StragglerNote `json:"stragglers,omitempty"`
	Error      string          `json:"error,omitempty"`
}

// Status is the run-level view /status serves; cmd/asmtop polls it.
type Status struct {
	Job         string  `json:"job,omitempty"`
	UptimeSec   float64 `json:"uptime_sec"`
	ExpectRanks int     `json:"expect_ranks"`
	SeenRanks   int     `json:"seen_ranks"`
	Reports     uint64  `json:"reports"`
	EventsTotal int     `json:"events_total"`

	// Complete is set once rank 0 — the run's result owner — delivered
	// its final flush; ExitOK is its verdict.
	Complete bool `json:"complete"`
	ExitOK   bool `json:"exit_ok"`

	Ranks []RankStatus  `json:"ranks"`
	Live  *LiveAnalysis `json:"live,omitempty"`
}
