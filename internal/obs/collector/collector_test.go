package collector

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// fakeClock is a settable Now hook.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func mkReport(rank int, seq uint64, evs []obs.Event) *Report {
	rep := &Report{Version: ProtoVersion, Rank: rank, Seq: seq, PID: 100 + rank}
	if len(evs) > 0 {
		rep.Streams = []RankStream{{Rank: rank, Events: evs}}
	}
	return rep
}

func statusRank(t *testing.T, st *Status, r int) RankStatus {
	t.Helper()
	for _, row := range st.Ranks {
		if row.Rank == r {
			return row
		}
	}
	t.Fatalf("rank %d missing from status (%d rows)", r, len(st.Ranks))
	return RankStatus{}
}

// TestHealthModel walks one rank through the full state machine —
// waiting, alive, late, dead, done — on a pinned clock, and checks
// readyz/healthz verdicts along the way.
func TestHealthModel(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := New(Config{Ranks: 2, Job: "t", Now: clk.now})

	st := c.Status()
	if got := statusRank(t, st, 0).State; got != StateWaiting {
		t.Fatalf("initial state = %q, want waiting", got)
	}
	if ok, missing := c.Readyz(); ok || len(missing) != 2 {
		t.Fatalf("readyz before reports: ok=%v missing=%v", ok, missing)
	}
	if ok, _ := c.Healthz(); !ok {
		t.Fatal("a merely-waiting run should still be healthy")
	}

	evs := []obs.Event{
		{Kind: obs.EvPhaseEnter, Rank: 0, A: obs.PhaseGST},
		{Kind: obs.EvSendEnd, Rank: 0, Comm: 0.5, A: 1, B: 7, C: 64, Seq: 1},
	}
	if err := c.Ingest(mkReport(0, 1, evs)); err != nil {
		t.Fatal(err)
	}
	row := statusRank(t, c.Status(), 0)
	if row.State != StateAlive || row.MsgsSent != 1 || row.BytesSent != 64 || row.Events != 2 {
		t.Fatalf("after first report: %+v", row)
	}
	if row.Phase != obs.PhaseName(obs.PhaseGST) {
		t.Fatalf("phase = %q", row.Phase)
	}
	if ok, missing := c.Readyz(); ok || !reflect.DeepEqual(missing, []int{1}) {
		t.Fatalf("readyz: ok=%v missing=%v", ok, missing)
	}

	clk.advance(3 * time.Second) // past WarnAfter (2s), short of DeadAfter (8s)
	if got := statusRank(t, c.Status(), 0).State; got != StateLate {
		t.Fatalf("state after 3s = %q, want late", got)
	}
	if ok, _ := c.Healthz(); !ok {
		t.Fatal("late is a warning, not unhealthy")
	}

	clk.advance(6 * time.Second) // total 9s: dead
	if got := statusRank(t, c.Status(), 0).State; got != StateDead {
		t.Fatalf("state after 9s = %q, want dead", got)
	}
	if ok, problems := c.Healthz(); ok || len(problems) == 0 {
		t.Fatalf("a dead rank must be unhealthy (problems %v)", problems)
	}

	// Rank 1 reports; then rank 0's final flush completes the run and
	// the verdict flips to the exit status.
	if err := c.Ingest(mkReport(1, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if ok, missing := c.Readyz(); !ok {
		t.Fatalf("readyz after both ranks: missing=%v", missing)
	}
	fin := mkReport(0, 2, nil)
	fin.Final, fin.ExitOK = true, true
	if err := c.Ingest(fin); err != nil {
		t.Fatal(err)
	}
	st = c.Status()
	if !st.Complete || !st.ExitOK {
		t.Fatalf("status after final: %+v", st)
	}
	if got := statusRank(t, st, 0).State; got != StateDone {
		t.Fatalf("final state = %q, want done", got)
	}
	if ok, _ := c.Healthz(); !ok {
		t.Fatal("completed-ok run must be healthy")
	}
}

// TestIngestIdempotent: a retried (duplicate-seq) report must not
// double-count anything.
func TestIngestIdempotent(t *testing.T) {
	c := New(Config{Ranks: 1})
	evs := []obs.Event{{Kind: obs.EvSendEnd, Rank: 0, A: 0, C: 10, Seq: 1}}
	rep := mkReport(0, 1, evs)
	if err := c.Ingest(rep); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(rep); err != nil {
		t.Fatal(err)
	}
	row := statusRank(t, c.Status(), 0)
	if row.Reports != 1 || row.MsgsSent != 1 || row.Events != 1 {
		t.Fatalf("duplicate report was applied: %+v", row)
	}
	if err := c.Ingest(&Report{Version: 99, Rank: 0, Seq: 2}); err == nil {
		t.Fatal("wrong proto version accepted")
	}
}

// TestCoversHeartbeat: one in-process reporter covering all ranks
// keeps every rank's heartbeat fresh.
func TestCoversHeartbeat(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := New(Config{Ranks: 3, Now: clk.now})
	rep := mkReport(0, 1, nil)
	rep.Covers = []int{0, 1, 2}
	if err := c.Ingest(rep); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Second)
	st := c.Status()
	for r := 0; r < 3; r++ {
		if row := statusRank(t, st, r); row.State != StateAlive {
			t.Fatalf("rank %d state = %q, want alive", r, row.State)
		}
	}
	if ok, missing := c.Readyz(); !ok {
		t.Fatalf("covered ranks should be ready (missing %v)", missing)
	}
}

// TestLeaseExpireAttribution: the master emits the lease-expire event,
// but the tally belongs to the lost worker.
func TestLeaseExpireAttribution(t *testing.T) {
	c := New(Config{Ranks: 3})
	evs := []obs.Event{{Kind: obs.EvLeaseExpire, Rank: 0, A: 2, B: 5}}
	if err := c.Ingest(mkReport(0, 1, evs)); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if got := statusRank(t, st, 2).LeaseExpires; got != 1 {
		t.Fatalf("worker 2 lease expiries = %d, want 1", got)
	}
	if got := statusRank(t, st, 0).LeaseExpires; got != 0 {
		t.Fatalf("master charged with the worker's expiry (%d)", got)
	}
}

// scriptProcess emits rank r's side of a tiny run into its own tracer
// (one tracer per simulated OS process, remote rings stay empty) plus
// a metrics counter, mirroring what a real rank does.
func scriptProcess(size, r int) (*obs.Tracer, *obs.Registry) {
	epoch := time.Unix(0, 0)
	tr := obs.NewTracerAt(size, 256, func() time.Time { return epoch })
	reg := obs.NewRegistry()
	reg.Counter("par_msgs_sent").Add(int64(r + 1))
	if r == 0 {
		tr.EmitSeq(0, obs.EvPhaseEnter, 0, 0, obs.PhaseGST, 0, 0, 0)
		for src := 1; src < size; src++ {
			cm := float64(src - 1) // clocks are cumulative: keep them monotone
			tr.EmitSeq(0, obs.EvRecvBegin, cm, 1, int64(src), 7, 0, 0)
			tr.EmitSeq(0, obs.EvRecvEnd, cm+1, 1, int64(src), 7, 10, uint64(src))
		}
		tr.EmitSeq(0, obs.EvPhaseExit, float64(size-1), 2, obs.PhaseGST, 0, 0, 0)
	} else {
		tr.EmitSeq(r, obs.EvPhaseEnter, 0, 0, obs.PhaseGST, 0, 0, 0)
		tr.EmitSeq(r, obs.EvSendBegin, 0, float64(r), 0, 7, 10, uint64(r))
		tr.EmitSeq(r, obs.EvSendEnd, 1, float64(r), 0, 7, 10, uint64(r))
		tr.EmitSeq(r, obs.EvPhaseExit, 1, float64(r)+1, obs.PhaseGST, 0, 0, 0)
	}
	return tr, reg
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestReporterIntegration runs a 4-"process" job (goroutine-level: one
// tracer+registry+reporter per simulated rank) against a served
// collector and checks the tentpole invariants end to end:
//
//   - every rank turns alive and readyz flips to ok,
//   - after the final flushes /events is byte-identical to
//     obs.MergeDumps over the per-process dumps,
//   - /analyze/live agrees exactly with the post-hoc analysis of the
//     merged dump,
//   - per-rank metrics are reconstructed from the deltas.
func TestReporterIntegration(t *testing.T) {
	const size = 4
	col := New(Config{Ranks: size, Job: "itest"})
	srv, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	var reporters []*Reporter
	var dumps []*obs.Dump
	for r := 0; r < size; r++ {
		tr, reg := scriptProcess(size, r)
		reporters = append(reporters, StartReporter(ReporterConfig{
			URL: base, Rank: r, Job: "itest",
			Interval: 5 * time.Millisecond,
			Tracer:   tr, Registry: reg,
		}))
		dumps = append(dumps, tr.Dump())
	}

	// Wait for every rank's stream to arrive.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, _ := col.Readyz(); ok && col.inc.EventCount() >= 4+3*(size-1)+2*(size-1) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams never arrived: events=%d", col.inc.EventCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := httpGet(t, base+"/readyz"); code != 200 {
		t.Fatalf("/readyz = %d mid-run", code)
	}
	if code, _ := httpGet(t, base+"/healthz"); code != 200 {
		t.Fatalf("/healthz = %d mid-run", code)
	}

	// Final flushes: workers first, rank 0 last (it owns the verdict).
	for r := size - 1; r >= 0; r-- {
		if err := reporters[r].Close(dumps[r], true, ""); err != nil {
			t.Fatalf("close reporter %d: %v", r, err)
		}
	}

	var st Status
	code, body := httpGet(t, base+"/status")
	if code != 200 || json.Unmarshal(body, &st) != nil {
		t.Fatalf("/status: %d %s", code, body)
	}
	if !st.Complete || !st.ExitOK || st.SeenRanks != size {
		t.Fatalf("final status: %+v", st)
	}
	for r := 0; r < size; r++ {
		if row := statusRank(t, &st, r); row.State != StateDone {
			t.Fatalf("rank %d final state = %q", r, row.State)
		}
	}

	// Byte-equivalence: /events vs obs.MergeDumps over the dump files.
	merged, err := obs.MergeDumps(dumps...)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := merged.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	code, got := httpGet(t, base+"/events")
	if code != 200 {
		t.Fatalf("/events = %d", code)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("/events differs from MergeDumps output:\ngot  %d bytes\nwant %d bytes", len(got), want.Len())
	}

	// Live analysis == post-hoc analysis of the merged dump, exactly.
	postHoc, err := analyze.Analyze(merged, analyze.Options{})
	if err != nil {
		t.Fatal(err)
	}
	live, err := col.LiveReport()
	if err != nil {
		t.Fatal(err)
	}
	var liveJSON, postJSON bytes.Buffer
	if err := live.WriteJSON(&liveJSON); err != nil {
		t.Fatal(err)
	}
	if err := postHoc.WriteJSON(&postJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON.Bytes(), postJSON.Bytes()) {
		t.Fatalf("live analysis diverges from post-hoc:\nlive %s\npost %s", liveJSON.Bytes(), postJSON.Bytes())
	}
	if code, _ := httpGet(t, base+"/analyze/live?format=json"); code != 200 {
		t.Fatalf("/analyze/live = %d", code)
	}

	// Metrics reconstructed from deltas.
	var details []struct {
		Rank    int            `json:"rank"`
		Metrics map[string]any `json:"metrics"`
	}
	code, body = httpGet(t, base+"/ranks")
	if code != 200 || json.Unmarshal(body, &details) != nil {
		t.Fatalf("/ranks: %d %s", code, body)
	}
	if len(details) != size {
		t.Fatalf("/ranks rows = %d", len(details))
	}
	for _, d := range details {
		if got := d.Metrics["par_msgs_sent"]; got != float64(d.Rank+1) {
			t.Fatalf("rank %d reconstructed counter = %v, want %d", d.Rank, got, d.Rank+1)
		}
	}
}

// TestIngestHTTPErrors exercises the endpoint's failure modes.
func TestIngestHTTPErrors(t *testing.T) {
	col := New(Config{Ranks: 1})
	srv, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	if code, _ := httpGet(t, base+"/ingest"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest = %d", code)
	}
	resp, err := http.Post(base+"/ingest", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d", resp.StatusCode)
	}
	bad, _ := json.Marshal(&Report{Version: 42, Rank: 0, Seq: 1})
	resp, err = http.Post(base+"/ingest", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad version = %d", resp.StatusCode)
	}
	// /events before any final dump.
	if code, _ := httpGet(t, base+"/events"); code != http.StatusServiceUnavailable {
		t.Fatalf("/events without finals = %d", code)
	}
}

// TestReporterBestEffort: a reporter pointed at nothing counts
// failures and never blocks the caller; Close is idempotent and
// nil-safe.
func TestReporterBestEffort(t *testing.T) {
	tr := obs.NewTracer(1, 16)
	tr.Emit(0, obs.EvClusterMerge, 0, 0, 1, 2, 0)
	r := StartReporter(ReporterConfig{
		URL: "http://127.0.0.1:1", Rank: 0, // nothing listens on port 1
		Interval: time.Hour, // only explicit flushes
		Tracer:   tr, Registry: obs.NewRegistry(),
		Client: &http.Client{Timeout: 200 * time.Millisecond},
	})
	if err := r.Flush(); err == nil {
		t.Fatal("flush against a dead collector should error")
	}
	if r.Failed() == 0 {
		t.Fatal("failure not counted")
	}
	if err := r.Close(nil, true, ""); err == nil {
		t.Fatal("final flush against a dead collector should error")
	}
	if err := r.Close(nil, true, ""); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	var nilRep *Reporter
	if err := nilRep.Close(nil, true, ""); err != nil {
		t.Fatalf("nil reporter Close: %v", err)
	}
}
