package collector

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/prof"
)

// Config tunes a collector.
type Config struct {
	// Ranks is the expected machine size. Zero learns it from the
	// reports, but /readyz then turns ready on the first report.
	Ranks int
	// Job labels the run (shown by asmtop; informational).
	Job string
	// WarnAfter is the heartbeat lag that turns a rank "late"
	// (default 2s) and DeadAfter the lag that turns it "dead"
	// (default 8s). A SIGKILLed process stops reporting, so its lag
	// grows without bound and it crosses both thresholds.
	WarnAfter time.Duration
	DeadAfter time.Duration
	// ImbalanceThreshold flags the slowest rank of a phase as a
	// straggler when the phase's max/mean rank time exceeds it
	// (default 1.5, matching the post-hoc report's imbalance column).
	ImbalanceThreshold float64
	// Now is the clock hook (tests pin it).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.WarnAfter <= 0 {
		c.WarnAfter = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 8 * time.Second
	}
	if c.ImbalanceThreshold <= 0 {
		c.ImbalanceThreshold = 1.5
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// rankState is everything the collector knows about one rank.
type rankState struct {
	RankStatus // exported fields double as the serialized view

	lastCover  time.Time // last report that covered this rank
	lastSeq    uint64    // reporting process's last applied report seq
	metrics    *obs.MetricsState
	phaseStack []int64
	final      bool
	exitOK     bool
	finalDump  *obs.Dump // the covering process's final dump (stored on its own rank)
}

// Collector aggregates the telemetry streams of one run.
type Collector struct {
	cfg   Config
	start time.Time

	mu       sync.Mutex
	ranks    map[int]*rankState
	inc      *analyze.Incremental
	reports  uint64
	profiles map[string]profileArtifact
}

// profileArtifact is one uploaded .pb.gz profile, kept in memory so
// /profiles can rebuild the cross-rank merged view on demand.
type profileArtifact struct {
	Rank int
	Data []byte
}

// New returns an empty collector for one run.
func New(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	return &Collector{
		cfg:      cfg,
		start:    cfg.Now(),
		ranks:    map[int]*rankState{},
		inc:      analyze.NewIncremental(analyze.Options{}),
		profiles: map[string]profileArtifact{},
	}
}

func (c *Collector) rank(r int) *rankState {
	rs := c.ranks[r]
	if rs == nil {
		rs = &rankState{metrics: obs.NewMetricsState()}
		rs.Rank = r
		rs.Phase = "-"
		c.ranks[r] = rs
	}
	return rs
}

// Ingest applies one report. Reports from the same process must arrive
// in order (the reporter is one goroutine over one connection); a
// duplicate or stale sequence number is dropped, making retries
// idempotent.
func (c *Collector) Ingest(rep *Report) error {
	if rep.Version != ProtoVersion {
		return fmt.Errorf("collector: report version %d, want %d", rep.Version, ProtoVersion)
	}
	if rep.Rank < 0 {
		return fmt.Errorf("collector: negative rank %d", rep.Rank)
	}
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()

	self := c.rank(rep.Rank)
	if rep.Seq <= self.lastSeq && self.Reports > 0 {
		return nil // duplicate of an already-applied report
	}
	self.lastSeq = rep.Seq
	self.Reports++
	c.reports++
	if rep.PID != 0 {
		self.PID = rep.PID
	}
	if err := self.metrics.Apply(rep.Metrics); err != nil {
		return err
	}

	covers := rep.Covers
	if len(covers) == 0 {
		covers = []int{rep.Rank}
	}
	for _, r := range covers {
		c.rank(r).lastCover = now
	}

	for _, st := range rep.Streams {
		rs := c.rank(st.Rank)
		c.inc.Append(st.Rank, st.Events)
		c.inc.AddDropped(st.Rank, st.Dropped)
		c.applyEvents(rs, st.Events)
	}

	if rep.Final {
		self.final = true
		self.exitOK = rep.ExitOK
		self.ExitReason = rep.ExitReason
		if rep.FinalDump != nil {
			self.finalDump = rep.FinalDump
			for _, rd := range rep.FinalDump.Ranks {
				// Only the streams this process owns are authoritative;
				// its dump also has empty rings for remote ranks.
				if len(rd.Events) == 0 && rd.Dropped == 0 {
					continue
				}
				c.inc.Replace(rd.Rank, rd.Events, rd.Dropped)
				c.applyFinalCounts(c.rank(rd.Rank), rd.Events)
			}
		}
		// Rank 0's final ends the run. Any expected rank that has not
		// final-flushed by then can never complete its stream (it died
		// or was lost): mark the stream truncated, mirroring what
		// MergeDumps does for a missing dump file. A final that lands
		// late anyway still wins — Replace overwrites the mark with
		// the authoritative drop count.
		if rep.Rank == 0 {
			for r := 0; r < c.cfg.Ranks; r++ {
				if !c.rank(r).final {
					c.inc.AddDropped(r, 1)
				}
			}
		}
	}
	return nil
}

// applyEvents folds an event batch into the rank's derived telemetry.
func (c *Collector) applyEvents(rs *rankState, evs []obs.Event) {
	for _, e := range evs {
		switch e.Kind {
		case obs.EvSendEnd, obs.EvSsendEnd:
			rs.MsgsSent++
			rs.BytesSent += e.C
		case obs.EvRecvEnd:
			if e.C >= 0 {
				rs.MsgsRecv++
				rs.BytesRecv += e.C
			}
		case obs.EvRetransmit:
			rs.Retransmits++
		case obs.EvCheckpoint:
			rs.Checkpoints++
		case obs.EvFault:
			rs.Faults++
			if e.A == obs.FaultDrop {
				rs.Drops++
			}
		case obs.EvLeaseExpire:
			// Emitted by the master; the expiry belongs to the worker.
			c.rank(int(e.A)).LeaseExpires++
		case obs.EvPhaseEnter:
			rs.phaseStack = append(rs.phaseStack, e.A)
		case obs.EvPhaseExit:
			for i := len(rs.phaseStack) - 1; i >= 0; i-- {
				if rs.phaseStack[i] == e.A {
					rs.phaseStack = rs.phaseStack[:i]
					break
				}
			}
		}
		rs.Events++
		rs.CommSec = e.Comm
		rs.CompSec = e.Comp
	}
}

// applyFinalCounts recomputes a rank's derived counters from its
// authoritative final dump, replacing the streamed tallies (the final
// dump may include a tail the stream never carried, and the streamed
// prefix may have lost wrapped-over events).
func (c *Collector) applyFinalCounts(rs *rankState, evs []obs.Event) {
	rs.MsgsSent, rs.MsgsRecv, rs.BytesSent, rs.BytesRecv = 0, 0, 0, 0
	rs.Retransmits, rs.Drops, rs.Faults, rs.Checkpoints = 0, 0, 0, 0
	rs.Events = 0
	rs.phaseStack = rs.phaseStack[:0]
	c.applyEvents(rs, evs)
}

// expectRanks returns the declared machine size, or the observed one.
func (c *Collector) expectRanks() int {
	if c.cfg.Ranks > 0 {
		return c.cfg.Ranks
	}
	max := 0
	for r := range c.ranks {
		if r+1 > max {
			max = r + 1
		}
	}
	return max
}

// state classifies one rank at time now.
func (c *Collector) state(rs *rankState, now time.Time) string {
	switch {
	case rs.final && rs.exitOK:
		return StateDone
	case rs.final:
		return StateFailed
	case rs.Reports == 0 && rs.lastCover.IsZero():
		return StateWaiting
	}
	lag := now.Sub(rs.lastCover)
	switch {
	case lag >= c.cfg.DeadAfter:
		return StateDead
	case lag >= c.cfg.WarnAfter:
		return StateLate
	}
	return StateAlive
}

// Status assembles the live run view.
func (c *Collector) Status() *Status {
	now := c.cfg.Now()
	rep, repErr := c.inc.Report() // outside c.mu: Incremental has its own lock

	c.mu.Lock()
	defer c.mu.Unlock()
	st := &Status{
		Job:         c.cfg.Job,
		UptimeSec:   now.Sub(c.start).Seconds(),
		ExpectRanks: c.expectRanks(),
		SeenRanks:   len(c.ranks),
		Reports:     c.reports,
		EventsTotal: c.inc.EventCount(),
	}
	if root := c.ranks[0]; root != nil && root.final {
		st.Complete = true
		st.ExitOK = root.exitOK
	}

	st.Live = liveAnalysis(rep, repErr, c.cfg.ImbalanceThreshold)

	// Per-rank rows, enriched with the live decomposition.
	var maxClock float64
	for _, rs := range c.ranks {
		if t := rs.CommSec + rs.CompSec; t > maxClock {
			maxClock = t
		}
	}
	ranks := make([]int, 0, len(c.ranks))
	for r := range c.ranks {
		ranks = append(ranks, r)
	}
	for r := 0; r < c.expectRanks(); r++ {
		if _, ok := c.ranks[r]; !ok {
			ranks = append(ranks, r) // expected but silent: surface it
		}
	}
	sort.Ints(ranks)
	seen := map[int]bool{}
	for _, r := range ranks {
		if seen[r] {
			continue
		}
		seen[r] = true
		rs := c.rank(r)
		row := rs.RankStatus
		row.State = c.state(rs, now)
		row.LagMs = -1
		if !rs.lastCover.IsZero() {
			row.LagMs = now.Sub(rs.lastCover).Milliseconds()
		}
		row.Phase = currentPhase(rs)
		row.BehindSec = maxClock - (rs.CommSec + rs.CompSec)
		if rs.metrics != nil {
			row.GCPauseP99Ns = rs.metrics.Gauges[prof.GaugeGCPauseP99]
			row.SchedLatP99Ns = rs.metrics.Gauges[prof.GaugeSchedLatP99]
			row.HeapLiveBytes = rs.metrics.Gauges[prof.GaugeHeapLive]
		}
		if rep != nil {
			// Match by rank, not index: mid-run the report may cover
			// only the ranks whose streams arrived so far.
			for _, rt := range rep.RankTotals {
				if rt.Rank != r {
					continue
				}
				row.IdleSec = rt.IdleSec
				row.TotalSec = rt.TotalSec
				if rt.TotalSec > 0 {
					row.IdlePct = 100 * rt.IdleSec / rt.TotalSec
				}
				break
			}
		}
		if st.Live != nil {
			for _, s := range st.Live.Stragglers {
				if s.Rank == r {
					row.Straggler = true
				}
			}
		}
		st.Ranks = append(st.Ranks, row)
	}
	return st
}

// currentPhase names the innermost open phase a rank's stream shows.
func currentPhase(rs *rankState) string {
	if n := len(rs.phaseStack); n > 0 {
		return obs.PhaseName(rs.phaseStack[n-1])
	}
	if rs.Events == 0 {
		return "-"
	}
	return ""
}

// liveAnalysis condenses an incremental report into the run summary,
// deriving straggler notes exactly as the post-hoc report does: a
// phase whose imbalance crossed the threshold names its slowest rank.
func liveAnalysis(rep *analyze.Report, err error, imbal float64) *LiveAnalysis {
	if err != nil {
		return &LiveAnalysis{Error: err.Error()}
	}
	if rep == nil {
		return nil
	}
	la := &LiveAnalysis{
		AnalyzedEvents: rep.EventsTotal,
		MakespanSec:    rep.MakespanSec,
		CommSec:        rep.CommSec,
		CompSec:        rep.CompSec,
		IdleSec:        rep.IdleSec,
		SlowestRank:    rep.SlowestRank,
		MasterIdleSec:  rep.MasterIdleSec,
		Unmatched:      rep.Unmatched,
	}
	for _, ps := range rep.Phases {
		if ps.RankCount >= 2 && ps.Imbalance >= imbal {
			la.Stragglers = append(la.Stragglers, StragglerNote{
				Rank:      ps.MaxRank,
				Phase:     ps.Phase,
				Sec:       ps.MaxRankSec,
				MeanSec:   ps.MeanRankSec,
				Imbalance: ps.Imbalance,
			})
		}
	}
	return la
}

// Healthz reports run health: unhealthy while any expected rank is
// dead or failed and the run has not completed; a completed run is
// judged by its exit status alone (a rank lost and recovered by the
// lease protocol does not un-health a finished run). The returned
// problems list explains a false verdict.
func (c *Collector) Healthz() (ok bool, problems []string) {
	st := c.Status()
	if st.Complete {
		if !st.ExitOK {
			return false, []string{"run failed: " + exitReason(st)}
		}
		return true, nil
	}
	for _, r := range st.Ranks {
		switch r.State {
		case StateDead:
			problems = append(problems, fmt.Sprintf("rank %d dead (no report for %dms)", r.Rank, r.LagMs))
		case StateFailed:
			problems = append(problems, fmt.Sprintf("rank %d failed: %s", r.Rank, r.ExitReason))
		}
	}
	return len(problems) == 0, problems
}

func exitReason(st *Status) string {
	for _, r := range st.Ranks {
		if r.Rank == 0 && r.ExitReason != "" {
			return r.ExitReason
		}
	}
	return "unknown"
}

// Readyz reports whether every expected rank has reported at least
// once — the run is fully rendezvoused and observable.
func (c *Collector) Readyz() (ok bool, missing []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	expect := c.expectRanks()
	if expect == 0 {
		return false, nil
	}
	for r := 0; r < expect; r++ {
		rs, seen := c.ranks[r]
		if !seen || (rs.Reports == 0 && rs.lastCover.IsZero()) {
			missing = append(missing, r)
		}
	}
	return len(missing) == 0, missing
}

// MergedDump merges the final-flush dumps into the machine-wide trace,
// exactly as obs.MergeDumps merges the per-process dump files: it is
// the same function over the same inputs, so the bytes match. Ranks
// whose process never flushed (SIGKILLed) come back truncated-marked,
// also as post-hoc merging would.
func (c *Collector) MergedDump() (*obs.Dump, error) {
	c.mu.Lock()
	var dumps []*obs.Dump
	ranks := make([]int, 0, len(c.ranks))
	for r := range c.ranks {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		if d := c.ranks[r].finalDump; d != nil {
			dumps = append(dumps, d)
		}
	}
	c.mu.Unlock()
	if len(dumps) == 0 {
		return nil, fmt.Errorf("collector: no final dumps received yet")
	}
	return obs.MergeDumps(dumps...)
}

// LiveReport returns the incremental causal analysis (may be mid-run
// partial; exact once every rank final-flushed).
func (c *Collector) LiveReport() (*analyze.Report, error) {
	return c.inc.Report()
}

// LiveDump snapshots the collector's current merged view of the run:
// authoritative final dumps where ranks have flushed, streamed
// prefixes elsewhere. Unlike MergedDump, it can include events from a
// rank that died before final-flushing — everything that rank managed
// to stream before it went silent.
func (c *Collector) LiveDump() *obs.Dump {
	return c.inc.Dump()
}

// ---- HTTP plumbing ----

// maxIngestBytes bounds one report body (a final dump of a large run
// is the big case).
const maxIngestBytes = 256 << 20

func (c *Collector) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var rep Report
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBytes))
	if err := dec.Decode(&rep); err != nil {
		http.Error(w, "malformed report: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.Ingest(&rep); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Collector) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c.Status()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleRanks serves per-rank reconstructed metrics snapshots.
func (c *Collector) handleRanks(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	ranks := make([]int, 0, len(c.ranks))
	for r := range c.ranks {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	type rankDetail struct {
		Rank    int            `json:"rank"`
		PID     int            `json:"pid,omitempty"`
		Reports uint64         `json:"reports"`
		Metrics map[string]any `json:"metrics"`
	}
	var out []rankDetail
	for _, r := range ranks {
		rs := c.ranks[r]
		out = append(out, rankDetail{Rank: r, PID: rs.PID, Reports: rs.Reports, Metrics: rs.metrics.Snapshot()})
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (c *Collector) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	ok, problems := c.Healthz()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
		for _, p := range problems {
			fmt.Fprintln(w, p)
		}
		return
	}
	fmt.Fprintln(w, "ok")
}

func (c *Collector) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ok, missing := c.Readyz()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "waiting for ranks %v\n", missing)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleAnalyzeLive mirrors the /analyze endpoint's formats over the
// streamed (or, post-run, final) merged trace.
func (c *Collector) handleAnalyzeLive(w http.ResponseWriter, req *http.Request) {
	rep, err := c.inc.Report()
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if rep == nil {
		http.Error(w, "no events streamed yet", http.StatusServiceUnavailable)
		return
	}
	switch req.URL.Query().Get("format") {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		err = rep.WriteJSON(w)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		err = rep.WriteAnnotatedChrome(w, c.inc.Dump())
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = rep.WriteText(w)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleEvents serves the final merged trace (obs.Dump JSON, the
// tracecheck -events / traceanalyze input format).
func (c *Collector) handleEvents(w http.ResponseWriter, _ *http.Request) {
	d, err := c.MergedDump()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := d.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// maxProfileBytes bounds one uploaded profile artifact.
const maxProfileBytes = 64 << 20

// validProfileName accepts only flat .pb.gz artifact names — no path
// separators, no traversal.
func validProfileName(name string) bool {
	if name == "" || len(name) > 256 || !strings.HasSuffix(name, ".pb.gz") {
		return false
	}
	return !strings.ContainsAny(name, "/\\") && name != ".pb.gz" && !strings.HasPrefix(name, ".")
}

// IngestProfile stores one profile artifact under name. Re-uploads of
// the same name overwrite (a resumed attempt replaces its orphan's
// partial artifact).
func (c *Collector) IngestProfile(name string, rank int, data []byte) error {
	if !validProfileName(name) {
		return fmt.Errorf("collector: invalid profile name %q", name)
	}
	if len(data) > maxProfileBytes {
		return fmt.Errorf("collector: profile %q too large (%d bytes)", name, len(data))
	}
	c.mu.Lock()
	c.profiles[name] = profileArtifact{Rank: rank, Data: data}
	c.mu.Unlock()
	return nil
}

// MergedProfile parses every stored artifact whose name carries the
// given suffix (prof.SuffixCPU etc.) and returns their cross-rank
// merge. Unparseable uploads (a truncated stream from a killed rank)
// are skipped.
func (c *Collector) MergedProfile(suffix string) (*prof.Profile, error) {
	c.mu.Lock()
	var names []string
	for name := range c.profiles {
		if strings.HasSuffix(name, suffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var parsed []*prof.Profile
	for _, name := range names {
		p, err := prof.Parse(c.profiles[name].Data)
		if err != nil {
			continue
		}
		parsed = append(parsed, p)
	}
	c.mu.Unlock()
	if len(parsed) == 0 {
		return nil, fmt.Errorf("collector: no parseable %s profiles uploaded", suffix)
	}
	return prof.Merge(parsed...)
}

// handleProfiles serves the artifact index (GET) and accepts uploads
// (POST /profiles?name=rank0.cpu.pb.gz&rank=0, body = raw .pb.gz).
func (c *Collector) handleProfiles(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		q := r.URL.Query()
		rank, _ := strconv.Atoi(q.Get("rank"))
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProfileBytes))
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.IngestProfile(q.Get("name"), rank, data); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		type entry struct {
			Name  string `json:"name"`
			Rank  int    `json:"rank"`
			Bytes int    `json:"bytes"`
		}
		c.mu.Lock()
		out := make([]entry, 0, len(c.profiles))
		for name, pa := range c.profiles {
			out = append(out, entry{Name: name, Rank: pa.Rank, Bytes: len(pa.Data)})
		}
		c.mu.Unlock()
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

// handleProfileFetch serves one artifact by name, or the cross-rank
// merge as merged.cpu.pb.gz / merged.heap.pb.gz / merged.allocs.pb.gz.
func (c *Collector) handleProfileFetch(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/profiles/")
	switch name {
	case "merged" + prof.SuffixCPU, "merged" + prof.SuffixHeap, "merged" + prof.SuffixAllocs:
		suffix := strings.TrimPrefix(name, "merged")
		merged, err := c.MergedProfile(suffix)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := merged.WriteGzip(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	c.mu.Lock()
	pa, ok := c.profiles[name]
	c.mu.Unlock()
	if !ok {
		http.Error(w, "no such profile", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(pa.Data)
}

// Endpoints returns the collector's routes for mounting on an
// obs.Serve server.
func (c *Collector) Endpoints() []obs.Endpoint {
	return []obs.Endpoint{
		{Path: "/ingest", Handler: http.HandlerFunc(c.handleIngest)},
		{Path: "/status", Handler: http.HandlerFunc(c.handleStatus)},
		{Path: "/ranks", Handler: http.HandlerFunc(c.handleRanks)},
		{Path: "/healthz", Handler: http.HandlerFunc(c.handleHealthz)},
		{Path: "/readyz", Handler: http.HandlerFunc(c.handleReadyz)},
		{Path: "/analyze/live", Handler: http.HandlerFunc(c.handleAnalyzeLive)},
		{Path: "/events", Handler: http.HandlerFunc(c.handleEvents)},
		{Path: "/profiles", Handler: http.HandlerFunc(c.handleProfiles)},
		{Path: "/profiles/", Handler: http.HandlerFunc(c.handleProfileFetch)},
	}
}

// Serve starts the collector's HTTP plane on addr (":0" picks a free
// port), reusing the obs server lifecycle — Close for immediate stop,
// Shutdown for a graceful drain.
func (c *Collector) Serve(addr string) (*obs.Server, error) {
	return obs.Serve(addr, nil, nil, c.Endpoints()...)
}
