package collector

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/obs/prof"
)

func rankProfile(t *testing.T, rank string, nanos int64) []byte {
	t.Helper()
	p := &prof.Profile{
		SampleTypes: []prof.ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}},
		Samples: []prof.Sample{{
			Stack:  []prof.Frame{{Function: "work"}},
			Values: []int64{1, nanos},
			Labels: []prof.Label{{Key: prof.LabelPhase, Str: "gst"}, {Key: prof.LabelRank, Str: rank}},
		}},
	}
	var buf bytes.Buffer
	if err := p.WriteGzip(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestProfilesPlane: ranks upload their .pb.gz artifacts, the index
// lists them, each artifact serves back verbatim, and the collector's
// cross-rank merge decodes with per-rank attribution intact —
// truncated uploads are skipped, bad names rejected.
func TestProfilesPlane(t *testing.T) {
	col := New(Config{Ranks: 2, Job: "ptest"})
	srv, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	post := func(name string, rank string, body []byte) int {
		t.Helper()
		resp, err := http.Post(base+"/profiles?name="+name+"&rank="+rank, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	r0 := rankProfile(t, "0", 100)
	if code := post("rank0.cpu.pb.gz", "0", r0); code != http.StatusNoContent {
		t.Fatalf("upload rank0: status %d", code)
	}
	if code := post("rank1.cpu.pb.gz", "1", rankProfile(t, "1", 50)); code != http.StatusNoContent {
		t.Fatalf("upload rank1: status %d", code)
	}
	// A truncated stream (SIGKILLed rank) uploads fine but is skipped
	// by the merge.
	if code := post("rank2.cpu.pb.gz", "2", []byte{0x1f, 0x8b, 0x00}); code != http.StatusNoContent {
		t.Fatalf("upload truncated: status %d", code)
	}
	for _, bad := range []string{"", "../../etc/passwd.pb.gz", "x/y.pb.gz", "plain.txt", ".pb.gz"} {
		if code := post(bad, "0", r0); code != http.StatusUnprocessableEntity {
			t.Errorf("bad name %q accepted with status %d", bad, code)
		}
	}

	code, body := httpGet(t, base+"/profiles")
	var index []struct {
		Name  string `json:"name"`
		Rank  int    `json:"rank"`
		Bytes int    `json:"bytes"`
	}
	if code != 200 || json.Unmarshal(body, &index) != nil || len(index) != 3 {
		t.Fatalf("/profiles index: code %d body %s", code, body)
	}
	if index[0].Name != "rank0.cpu.pb.gz" || index[0].Rank != 0 || index[0].Bytes != len(r0) {
		t.Fatalf("index[0] = %+v", index[0])
	}

	code, body = httpGet(t, base+"/profiles/rank0.cpu.pb.gz")
	if code != 200 || !bytes.Equal(body, r0) {
		t.Fatalf("raw fetch: code %d, %d bytes (want %d)", code, len(body), len(r0))
	}
	if code, _ := httpGet(t, base+"/profiles/nope.cpu.pb.gz"); code != http.StatusNotFound {
		t.Fatalf("unknown artifact: code %d", code)
	}

	code, body = httpGet(t, base+"/profiles/merged"+prof.SuffixCPU)
	if code != 200 {
		t.Fatalf("merged fetch: code %d: %s", code, body)
	}
	merged, err := prof.Parse(body)
	if err != nil {
		t.Fatalf("merged profile does not decode: %v", err)
	}
	byRank := map[string]int64{}
	vi := merged.ValueIndex("cpu")
	for i := range merged.Samples {
		byRank[merged.Samples[i].Label(prof.LabelRank)] += merged.Samples[i].Values[vi]
	}
	if byRank["0"] != 100 || byRank["1"] != 50 || len(byRank) != 2 {
		t.Fatalf("cross-rank merge lost attribution: %v", byRank)
	}
}

// TestReporterPostProfile: the reporter uploads an artifact to the
// collector's profiles plane; a nil reporter is a no-op.
func TestReporterPostProfile(t *testing.T) {
	col := New(Config{Ranks: 1, Job: "ptest"})
	srv, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rep := StartReporter(ReporterConfig{URL: "http://" + srv.Addr, Rank: 0})
	defer rep.Close(nil, true, "")
	if err := rep.PostProfile("rank0.cpu.pb.gz", rankProfile(t, "0", 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := col.MergedProfile(prof.SuffixCPU); err != nil {
		t.Fatalf("uploaded profile not mergeable: %v", err)
	}
	var nilRep *Reporter
	if err := nilRep.PostProfile("x.pb.gz", nil); err != nil {
		t.Fatalf("nil reporter PostProfile: %v", err)
	}
}
