package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenTracer emits a small scripted run on a deterministic clock:
// two ranks, a GST phase each, a send/recv exchange, a fault, and — on
// rank 1 — ring wraparound that evicts a send-begin so the export must
// drop its orphaned end.
func goldenTracer() *Tracer {
	tr := newTestTracer(2, 6)
	tr.Emit(0, EvPhaseEnter, 0, 0, PhaseGST, 0, 0)
	tr.Emit(0, EvSendBegin, 0.001, 0, 1, 7, 64)
	tr.Emit(0, EvSendEnd, 0.002, 0, 1, 7, 64)
	tr.Emit(0, EvPhaseExit, 0.002, 0.010, PhaseGST, 0, 0)
	tr.Emit(0, EvClusterMerge, 0.002, 0.011, 3, 8, 0)
	tr.Emit(0, EvFault, 0.002, 0.011, FaultDrop, 1, 7)

	// Rank 1: capacity 6, emit 7 — the first event (a send begin) is
	// evicted, leaving an orphan send end the exporter must drop.
	tr.Emit(1, EvSendBegin, 0.001, 0, 0, 9, 32) // evicted
	tr.Emit(1, EvSendEnd, 0.002, 0, 0, 9, 32)   // orphan once above is gone
	tr.Emit(1, EvPhaseEnter, 0.002, 0, PhaseGST, 0, 0)
	tr.Emit(1, EvRecvBegin, 0.002, 0.001, 0, 7, 0)
	tr.Emit(1, EvRecvEnd, 0.003, 0.001, 0, 7, 64)
	tr.Emit(1, EvPhaseExit, 0.003, 0.004, PhaseGST, 0, 0)
	tr.Emit(1, EvCheckpoint, 0.003, 0.004, 512, 0, 0)
	return tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch (run with -update to regenerate)\n got: %s\nwant: %s", name, got, want)
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_trace.json", buf.Bytes())
}

func TestWriteTimelineGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline.txt", buf.Bytes())
}

// TestChromeTraceBalanced re-parses the exported JSON and checks the
// invariants cmd/tracecheck enforces: every E has a preceding B on its
// track, and the orphaned end from rank 1's wraparound is dropped.
func TestChromeTraceBalanced(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	type track struct {
		pid, tid int
		name     string
	}
	depth := map[track]int{}
	sendEndsRank1 := 0
	for _, e := range tf.TraceEvents {
		k := track{e.Pid, e.Tid, e.Name}
		switch e.Ph {
		case "B":
			depth[k]++
		case "E":
			if depth[k] == 0 {
				t.Fatalf("unmatched E %q on pid=%d tid=%d", e.Name, e.Pid, e.Tid)
			}
			depth[k]--
			if e.Name == "send" && e.Tid == 1 {
				sendEndsRank1++
			}
		}
	}
	if sendEndsRank1 != 0 {
		t.Errorf("rank 1's orphaned send end survived export (%d)", sendEndsRank1)
	}
}

// TestMetricsJSONGolden pins the metrics export byte for byte: a
// registry on a scripted clock with one of each metric family must
// render identically on every run (keys sorted by the encoder,
// uptime read through the injected clock).
func TestMetricsJSONGolden(t *testing.T) {
	base := time.Unix(1700000000, 0)
	calls := 0
	reg := NewRegistryAt(func() time.Time {
		calls++
		if calls == 1 {
			return base // registry start
		}
		return base.Add(2 * time.Second) // snapshot time: uptime pinned at 2s
	})
	reg.Counter("pairs_aligned").Add(42)
	reg.Gauge("master_queue_depth").Set(7)
	h := reg.Histogram("align_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", buf.Bytes())

	// Byte-determinism: a second registry scripted identically must
	// render the identical document.
	calls2 := 0
	reg2 := NewRegistryAt(func() time.Time {
		calls2++
		if calls2 == 1 {
			return base
		}
		return base.Add(2 * time.Second)
	})
	reg2.Counter("pairs_aligned").Add(42)
	reg2.Gauge("master_queue_depth").Set(7)
	h2 := reg2.Histogram("align_seconds", []float64{0.001, 0.01})
	h2.Observe(0.0005)
	h2.Observe(0.5)
	var buf2 bytes.Buffer
	if err := reg2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("metrics export not deterministic:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}
}
