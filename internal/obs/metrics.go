package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are safe
// on a nil receiver (no-ops / zero), so instrumented code holds
// handles unconditionally and a nil Registry disables everything.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-receiver safe.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v is larger — high-water marks.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bounds are upper bucket
// edges; an observation lands in the first bucket whose bound it does
// not exceed, or the overflow bucket. Nil-receiver safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// histBucket is one bucket of a histogram snapshot. Le is a float64
// bound or the string "+Inf" for the overflow bucket (JSON has no
// infinity literal).
type histBucket struct {
	Le    any   `json:"le"`
	Count int64 `json:"count"`
}

// snapshot renders the histogram for the JSON endpoint.
func (h *Histogram) snapshot() map[string]any {
	buckets := make([]histBucket, 0, len(h.bounds)+1)
	for i, b := range h.bounds {
		buckets = append(buckets, histBucket{Le: b, Count: h.counts[i].Load()})
	}
	buckets = append(buckets, histBucket{Le: "+Inf", Count: h.counts[len(h.bounds)].Load()})
	return map[string]any{
		"count":   h.Count(),
		"sum":     h.Sum(),
		"buckets": buckets,
	}
}

// Registry is a named collection of metrics. Lookup methods are safe
// on a nil receiver and then return nil handles, whose methods are
// no-ops — so a disabled run takes one nil check per metric update.
type Registry struct {
	start time.Time
	now   func() time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return NewRegistryAt(time.Now) }

// NewRegistryAt returns an empty registry reading the clock through
// now. With a fixed clock the JSON export is byte-deterministic
// (uptime pinned, keys sorted by the encoder) — what the golden
// tests and deterministic experiment reports use.
func NewRegistryAt(now func() time.Time) *Registry {
	return &Registry{
		start:    now(),
		now:      now,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given ascending bucket bounds; bounds are fixed at first creation.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns a flat expvar-style view: metric name → number for
// counters and gauges, name → {count, sum, buckets} for histograms,
// plus "uptime_seconds".
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out["uptime_seconds"] = r.now().Sub(r.start).Seconds()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.snapshot()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON (keys sorted — the
// expvar-compatible endpoint payload).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
