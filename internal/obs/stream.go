package obs

import (
	"fmt"
	"sort"
)

// Streaming telemetry primitives: the delta encoding a per-rank
// process uses to ship its tracer and registry state to a run-scoped
// collector (internal/obs/collector) incrementally, instead of one
// monolithic dump after the run.
//
// Two streams exist per rank:
//
//   - events: the tracer ring is an append-only log per rank (next is
//     the count of events ever emitted), so a cursor — the reader's
//     position in that log — makes "everything since last time" exact:
//     EventsSince returns the retained suffix past the cursor and how
//     many events wraparound evicted before the reader got to them.
//
//   - metrics: CaptureMetrics snapshots a registry into a MetricsState;
//     Delta diffs two states into the (usually tiny) set of changed
//     entries; Apply replays a delta onto an accumulated state. For any
//     op sequence, applying every delta in order reproduces the final
//     state exactly (the round-trip property the collector depends on).

// EventsSince returns rank's events at log positions >= cursor that
// are still retained, the new cursor (pass it back next call), and how
// many events in [cursor, next) were evicted by ring wraparound before
// this read. A fresh reader starts at cursor 0.
func (t *Tracer) EventsSince(rank int, cursor uint64) (events []Event, next uint64, lost uint64) {
	if t == nil || rank >= t.Ranks() {
		return nil, cursor, 0
	}
	r := t.ring(rank)
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if cursor > n {
		// A cursor from a different tracer incarnation; restart.
		cursor = n
	}
	capU := uint64(len(r.buf))
	start := cursor
	if n > capU && start < n-capU {
		lost = n - capU - start
		start = n - capU
	}
	if start < n {
		events = make([]Event, 0, n-start)
		for i := start; i < n; i++ {
			events = append(events, r.buf[i%capU])
		}
	}
	return events, n, lost
}

// HistState is one histogram's cumulative state: per-bucket counts
// (the last entry is the overflow bucket) and the observation sum.
type HistState struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
}

// MetricsState is a registry's full cumulative state, the replayable
// form of Snapshot. Counters and histograms are monotone; gauges are
// last-write-wins.
type MetricsState struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]int64     `json:"gauges,omitempty"`
	Hists    map[string]HistState `json:"hists,omitempty"`
}

// NewMetricsState returns an empty state ready for Apply.
func NewMetricsState() *MetricsState {
	return &MetricsState{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistState{},
	}
}

// CaptureMetrics snapshots a registry into a MetricsState. A nil
// registry captures as the empty state.
func CaptureMetrics(r *Registry) *MetricsState {
	s := NewMetricsState()
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistState{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.bounds)+1),
			Sum:    h.Sum(),
		}
		for i := range hs.Counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Hists[name] = hs
	}
	return s
}

// HistDelta is one histogram's increment since the previous state.
// Bounds ride along only on the histogram's first appearance.
type HistDelta struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
}

// MetricsDelta is the changed-entries diff between two MetricsStates:
// counter and histogram entries are increments, gauge entries are
// absolute values. Unchanged metrics are omitted entirely.
type MetricsDelta struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]int64     `json:"gauges,omitempty"`
	Hists    map[string]HistDelta `json:"hists,omitempty"`
}

// Empty reports whether the delta carries no changes.
func (d *MetricsDelta) Empty() bool {
	return d == nil || (len(d.Counters) == 0 && len(d.Gauges) == 0 && len(d.Hists) == 0)
}

// Delta diffs cur against prev (prev may be nil: everything is new).
func (cur *MetricsState) Delta(prev *MetricsState) *MetricsDelta {
	d := &MetricsDelta{}
	for name, v := range cur.Counters {
		var old int64
		if prev != nil {
			old = prev.Counters[name]
		}
		if v != old {
			if d.Counters == nil {
				d.Counters = map[string]int64{}
			}
			d.Counters[name] = v - old
		}
	}
	for name, v := range cur.Gauges {
		old, had := int64(0), false
		if prev != nil {
			old, had = prev.Gauges[name]
		}
		if !had || v != old {
			if d.Gauges == nil {
				d.Gauges = map[string]int64{}
			}
			d.Gauges[name] = v
		}
	}
	for name, hs := range cur.Hists {
		var old HistState
		var had bool
		if prev != nil {
			old, had = prev.Hists[name]
		}
		changed := !had
		hd := HistDelta{Counts: make([]int64, len(hs.Counts)), Sum: hs.Sum - old.Sum}
		if !had {
			hd.Bounds = hs.Bounds
		}
		for i, c := range hs.Counts {
			var oc int64
			if had && i < len(old.Counts) {
				oc = old.Counts[i]
			}
			hd.Counts[i] = c - oc
			if hd.Counts[i] != 0 {
				changed = true
			}
		}
		if changed {
			if d.Hists == nil {
				d.Hists = map[string]HistDelta{}
			}
			d.Hists[name] = hd
		}
	}
	return d
}

// Apply replays one delta onto the accumulated state.
func (s *MetricsState) Apply(d *MetricsDelta) error {
	if d == nil {
		return nil
	}
	for name, inc := range d.Counters {
		s.Counters[name] += inc
	}
	for name, v := range d.Gauges {
		s.Gauges[name] = v
	}
	for name, hd := range d.Hists {
		hs, ok := s.Hists[name]
		if !ok {
			hs = HistState{Bounds: hd.Bounds, Counts: make([]int64, len(hd.Counts))}
		}
		if len(hd.Counts) != len(hs.Counts) {
			return fmt.Errorf("obs: histogram %q delta has %d buckets, state has %d", name, len(hd.Counts), len(hs.Counts))
		}
		for i, c := range hd.Counts {
			hs.Counts[i] += c
		}
		hs.Sum += hd.Sum
		s.Hists[name] = hs
	}
	return nil
}

// Snapshot renders the state in the same flat expvar shape as
// Registry.Snapshot (minus uptime), so a collector can serve
// reconstructed per-rank metrics with the familiar layout.
func (s *MetricsState) Snapshot() map[string]any {
	out := make(map[string]any)
	if s == nil {
		return out
	}
	for name, v := range s.Counters {
		out[name] = v
	}
	for name, v := range s.Gauges {
		out[name] = v
	}
	for name, hs := range s.Hists {
		buckets := make([]histBucket, 0, len(hs.Counts))
		for i, c := range hs.Counts {
			if i < len(hs.Bounds) {
				buckets = append(buckets, histBucket{Le: hs.Bounds[i], Count: c})
			} else {
				buckets = append(buckets, histBucket{Le: "+Inf", Count: c})
			}
		}
		var count int64
		for _, c := range hs.Counts {
			count += c
		}
		out[name] = map[string]any{"count": count, "sum": hs.Sum, "buckets": buckets}
	}
	return out
}

// CounterNames returns the state's counter names, sorted — a
// deterministic iteration helper for renderers.
func (s *MetricsState) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
