// pprof profile.proto wire codec, hand-rolled so the repo stays free
// of module dependencies. The decoder reads the subset the Go runtime
// emits (and the merge/attribution plane needs): sample types, samples
// with location stacks and string/number labels, locations with
// (possibly inlined) lines, functions, the string table, and the
// period/time scalars. Mappings and addresses are parsed past but not
// retained — attribution works on symbolized frames, which Go profiles
// always carry.
//
// Like internal/wire, the reader is sticky: the first malformed byte
// latches an error and every later read is a cheap no-op, so decode
// paths need exactly one error check. Unlike internal/wire this is
// standard protobuf, so non-canonical varints are accepted (other
// writers may emit them); the encoder always writes canonical bytes.
package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sort"
)

// maxDecompressedBytes bounds gunzip output so a tiny malicious input
// cannot balloon into unbounded memory (the fuzz target feeds the
// decoder arbitrary bytes).
const maxDecompressedBytes = 64 << 20

// ValueType names one sample dimension, e.g. {cpu, nanoseconds}.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Frame is one resolved stack entry. Inlined calls expand to one
// frame per line record, innermost first.
type Frame struct {
	Function string `json:"function"`
	File     string `json:"file,omitempty"`
	Line     int64  `json:"line,omitempty"`
}

// Label is one sample annotation; exactly one of Str / Num carries
// the value (pprof string vs numeric labels).
type Label struct {
	Key  string `json:"key"`
	Str  string `json:"str,omitempty"`
	Num  int64  `json:"num,omitempty"`
	Unit string `json:"unit,omitempty"`
}

// Sample is one profile record: a leaf-first stack, one value per
// sample type, and its labels (sorted by key for determinism).
type Sample struct {
	Stack  []Frame `json:"stack"`
	Values []int64 `json:"values"`
	Labels []Label `json:"labels,omitempty"`
}

// Label returns the sample's string label for key ("" if absent).
func (s *Sample) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key && l.Str != "" {
			return l.Str
		}
	}
	return ""
}

// Profile is a decoded pprof profile with every ID indirection
// resolved: samples reference frames and strings directly.
type Profile struct {
	SampleTypes   []ValueType `json:"sample_types"`
	DefaultType   string      `json:"default_type,omitempty"`
	Samples       []Sample    `json:"samples"`
	TimeNanos     int64       `json:"time_nanos,omitempty"`
	DurationNanos int64       `json:"duration_nanos,omitempty"`
	PeriodType    ValueType   `json:"period_type,omitempty"`
	Period        int64       `json:"period,omitempty"`
}

// ValueIndex returns the index of the sample type named typ, or -1.
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// protobuf wire types (the only ones protobuf defines that matter
// here; groups are obsolete and rejected).
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// reader is a sticky-error protobuf wire walker over one message's
// bytes. Every method is safe to call after a failure; the first
// malformed byte exhausts the buffer so loops terminate.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("prof: "+format, args...)
	}
	r.off = len(r.b)
}

func (r *reader) more() bool { return r.err == nil && r.off < len(r.b) }

// varint reads one base-128 varint (up to 10 bytes, as protobuf
// allows for negative int64s).
func (r *reader) varint() uint64 {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.off >= len(r.b) {
			r.fail("truncated varint")
			return 0
		}
		c := r.b[r.off]
		r.off++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			if shift == 63 && c > 1 {
				r.fail("varint overflows uint64")
				return 0
			}
			return v
		}
	}
	r.fail("varint longer than 10 bytes")
	return 0
}

func (r *reader) int64() int64 { return int64(r.varint()) }

// tag reads one field tag, returning (fieldNumber, wireType).
func (r *reader) tag() (int, int) {
	v := r.varint()
	field, wire := int(v>>3), int(v&7)
	if r.err == nil && field == 0 {
		r.fail("field number 0")
	}
	return field, wire
}

// bytesField reads one length-delimited payload, bounds-checked
// against the remaining buffer (the same overflow-safe comparison
// internal/wire uses).
func (r *reader) bytesField() []byte {
	n := int(r.varint())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("length %d exceeds remaining %d bytes", n, len(r.b)-r.off)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// skip advances past one field of the given wire type.
func (r *reader) skip(wire int) {
	switch wire {
	case wireVarint:
		r.varint()
	case wireFixed64:
		if len(r.b)-r.off < 8 {
			r.fail("truncated fixed64")
			return
		}
		r.off += 8
	case wireBytes:
		r.bytesField()
	case wireFixed32:
		if len(r.b)-r.off < 4 {
			r.fail("truncated fixed32")
			return
		}
		r.off += 4
	default:
		r.fail("unsupported wire type %d", wire)
	}
}

// packedInt64s decodes field contents that may be packed (wire type
// 2) or a single varint (wire type 0), appending to dst.
func (r *reader) packedInt64s(wire int, dst []int64) []int64 {
	if wire == wireVarint {
		return append(dst, r.int64())
	}
	if wire != wireBytes {
		r.fail("repeated int64 field has wire type %d", wire)
		return dst
	}
	p := &reader{b: r.bytesField()}
	if r.err != nil {
		return dst
	}
	for p.more() {
		dst = append(dst, p.int64())
	}
	if p.err != nil {
		r.fail("packed int64s: %v", p.err)
	}
	return dst
}

func (r *reader) packedUint64s(wire int, dst []uint64) []uint64 {
	if wire == wireVarint {
		return append(dst, r.varint())
	}
	if wire != wireBytes {
		r.fail("repeated uint64 field has wire type %d", wire)
		return dst
	}
	p := &reader{b: r.bytesField()}
	if r.err != nil {
		return dst
	}
	for p.more() {
		dst = append(dst, p.varint())
	}
	if p.err != nil {
		r.fail("packed uint64s: %v", p.err)
	}
	return dst
}

// Raw (unresolved) message forms — IDs and string-table indices are
// resolved only after the whole top-level walk, because protobuf
// fields may arrive in any order (Go writes the string table last).
type rawValueType struct{ typ, unit int64 }

type rawLabel struct{ key, str, num, numUnit int64 }

type rawSample struct {
	locs   []uint64
	vals   []int64
	labels []rawLabel
}

type rawLine struct {
	fn   uint64
	line int64
}

type rawLocation struct {
	id    uint64
	lines []rawLine
}

type rawFunction struct {
	id         uint64
	name, file int64
}

func parseValueType(b []byte) (rawValueType, error) {
	r := &reader{b: b}
	var vt rawValueType
	for r.more() {
		field, wire := r.tag()
		switch field {
		case 1:
			vt.typ = r.int64()
		case 2:
			vt.unit = r.int64()
		default:
			r.skip(wire)
		}
	}
	return vt, r.err
}

func parseLabel(b []byte) (rawLabel, error) {
	r := &reader{b: b}
	var l rawLabel
	for r.more() {
		field, wire := r.tag()
		switch field {
		case 1:
			l.key = r.int64()
		case 2:
			l.str = r.int64()
		case 3:
			l.num = r.int64()
		case 4:
			l.numUnit = r.int64()
		default:
			r.skip(wire)
		}
	}
	return l, r.err
}

func parseSample(b []byte) (rawSample, error) {
	r := &reader{b: b}
	var s rawSample
	for r.more() {
		field, wire := r.tag()
		switch field {
		case 1:
			s.locs = r.packedUint64s(wire, s.locs)
		case 2:
			s.vals = r.packedInt64s(wire, s.vals)
		case 3:
			lb := r.bytesField()
			if r.err == nil {
				l, err := parseLabel(lb)
				if err != nil {
					return s, err
				}
				s.labels = append(s.labels, l)
			}
		default:
			r.skip(wire)
		}
	}
	return s, r.err
}

func parseLine(b []byte) (rawLine, error) {
	r := &reader{b: b}
	var ln rawLine
	for r.more() {
		field, wire := r.tag()
		switch field {
		case 1:
			ln.fn = r.varint()
		case 2:
			ln.line = r.int64()
		default:
			r.skip(wire)
		}
	}
	return ln, r.err
}

func parseLocation(b []byte) (rawLocation, error) {
	r := &reader{b: b}
	var loc rawLocation
	for r.more() {
		field, wire := r.tag()
		switch field {
		case 1:
			loc.id = r.varint()
		case 4:
			lb := r.bytesField()
			if r.err == nil {
				ln, err := parseLine(lb)
				if err != nil {
					return loc, err
				}
				loc.lines = append(loc.lines, ln)
			}
		default:
			r.skip(wire)
		}
	}
	return loc, r.err
}

func parseFunction(b []byte) (rawFunction, error) {
	r := &reader{b: b}
	var fn rawFunction
	for r.more() {
		field, wire := r.tag()
		switch field {
		case 1:
			fn.id = r.varint()
		case 2:
			fn.name = r.int64()
		case 4:
			fn.file = r.int64()
		default:
			r.skip(wire)
		}
	}
	return fn, r.err
}

// Parse decodes one pprof profile, transparently gunzipping (every
// profile the Go runtime writes is gzip-wrapped).
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, maxDecompressedBytes+1))
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		if len(raw) > maxDecompressedBytes {
			return nil, fmt.Errorf("prof: decompressed profile exceeds %d bytes", maxDecompressedBytes)
		}
		data = raw
	}
	return parseUncompressed(data)
}

// ParseFile reads and decodes one .pb.gz artifact.
func ParseFile(path string) (*Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

func parseUncompressed(data []byte) (*Profile, error) {
	r := &reader{b: data}
	var (
		sampleTypes []rawValueType
		samples     []rawSample
		locations   = map[uint64][]rawLine{}
		functions   = map[uint64]rawFunction{}
		strtab      []string
		periodType  rawValueType
		defaultType int64
		p           = &Profile{}
	)
	for r.more() {
		field, wire := r.tag()
		switch field {
		case 1: // sample_type
			b := r.bytesField()
			if r.err == nil {
				vt, err := parseValueType(b)
				if err != nil {
					return nil, err
				}
				sampleTypes = append(sampleTypes, vt)
			}
		case 2: // sample
			b := r.bytesField()
			if r.err == nil {
				s, err := parseSample(b)
				if err != nil {
					return nil, err
				}
				samples = append(samples, s)
			}
		case 4: // location
			b := r.bytesField()
			if r.err == nil {
				loc, err := parseLocation(b)
				if err != nil {
					return nil, err
				}
				if _, dup := locations[loc.id]; dup {
					return nil, fmt.Errorf("prof: duplicate location id %d", loc.id)
				}
				locations[loc.id] = loc.lines
			}
		case 5: // function
			b := r.bytesField()
			if r.err == nil {
				fn, err := parseFunction(b)
				if err != nil {
					return nil, err
				}
				if _, dup := functions[fn.id]; dup {
					return nil, fmt.Errorf("prof: duplicate function id %d", fn.id)
				}
				functions[fn.id] = fn
			}
		case 6: // string_table
			b := r.bytesField()
			if r.err == nil {
				strtab = append(strtab, string(b))
			}
		case 9:
			p.TimeNanos = r.int64()
		case 10:
			p.DurationNanos = r.int64()
		case 11:
			b := r.bytesField()
			if r.err == nil {
				vt, err := parseValueType(b)
				if err != nil {
					return nil, err
				}
				periodType = vt
			}
		case 12:
			p.Period = r.int64()
		case 14:
			defaultType = r.int64()
		default:
			r.skip(wire)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(strtab) > 0 && strtab[0] != "" {
		return nil, fmt.Errorf("prof: string table must start with the empty string")
	}
	str := func(i int64) (string, error) {
		if i < 0 || i >= int64(len(strtab)) {
			if i == 0 {
				return "", nil // empty table, index 0: the empty string
			}
			return "", fmt.Errorf("prof: string index %d outside table of %d", i, len(strtab))
		}
		return strtab[i], nil
	}
	resolveVT := func(vt rawValueType) (ValueType, error) {
		t, err := str(vt.typ)
		if err != nil {
			return ValueType{}, err
		}
		u, err := str(vt.unit)
		if err != nil {
			return ValueType{}, err
		}
		return ValueType{Type: t, Unit: u}, nil
	}

	for _, vt := range sampleTypes {
		rv, err := resolveVT(vt)
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, rv)
	}
	var err error
	if p.PeriodType, err = resolveVT(periodType); err != nil {
		return nil, err
	}
	if p.DefaultType, err = str(defaultType); err != nil {
		return nil, err
	}

	// Resolve each unique frame once; stacks share the Frame values.
	frames := map[uint64][]Frame{}
	for id, lines := range locations {
		fs := make([]Frame, 0, len(lines))
		for _, ln := range lines {
			fn, ok := functions[ln.fn]
			if !ok && ln.fn != 0 {
				return nil, fmt.Errorf("prof: line references unknown function %d", ln.fn)
			}
			name, err := str(fn.name)
			if err != nil {
				return nil, err
			}
			file, err := str(fn.file)
			if err != nil {
				return nil, err
			}
			fs = append(fs, Frame{Function: name, File: file, Line: ln.line})
		}
		frames[id] = fs
	}

	for _, rs := range samples {
		if len(rs.vals) != len(p.SampleTypes) {
			return nil, fmt.Errorf("prof: sample has %d values, profile has %d sample types", len(rs.vals), len(p.SampleTypes))
		}
		s := Sample{Values: rs.vals}
		for _, id := range rs.locs {
			fs, ok := frames[id]
			if !ok {
				return nil, fmt.Errorf("prof: sample references unknown location %d", id)
			}
			s.Stack = append(s.Stack, fs...)
		}
		for _, rl := range rs.labels {
			key, err := str(rl.key)
			if err != nil {
				return nil, err
			}
			sv, err := str(rl.str)
			if err != nil {
				return nil, err
			}
			unit, err := str(rl.numUnit)
			if err != nil {
				return nil, err
			}
			s.Labels = append(s.Labels, Label{Key: key, Str: sv, Num: rl.num, Unit: unit})
		}
		sortLabels(s.Labels)
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

func sortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Key != ls[j].Key {
			return ls[i].Key < ls[j].Key
		}
		if ls[i].Str != ls[j].Str {
			return ls[i].Str < ls[j].Str
		}
		return ls[i].Num < ls[j].Num
	})
}

// ---- encoder ----

// enc builds protobuf wire bytes; the inverse of reader for the
// subset Profile retains. All varints are canonical.
type enc struct{ b []byte }

func (e *enc) varint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

func (e *enc) tag(field, wire int) { e.varint(uint64(field)<<3 | uint64(wire)) }

func (e *enc) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	e.tag(field, wireVarint)
	e.varint(uint64(v))
}

func (e *enc) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	e.tag(field, wireVarint)
	e.varint(v)
}

func (e *enc) bytesField(field int, b []byte) {
	e.tag(field, wireBytes)
	e.varint(uint64(len(b)))
	e.b = append(e.b, b...)
}

func (e *enc) packedInt64s(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var p enc
	for _, v := range vs {
		p.varint(uint64(v))
	}
	e.bytesField(field, p.b)
}

func (e *enc) packedUint64s(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var p enc
	for _, v := range vs {
		p.varint(v)
	}
	e.bytesField(field, p.b)
}

// Encode serializes the profile as uncompressed profile.proto bytes.
// Each distinct frame becomes one location with a single line record
// (inlining grouping is not reconstructed — attribution and external
// pprof tooling read the flattened stacks identically).
func (p *Profile) Encode() []byte {
	strIdx := map[string]int64{"": 0}
	strs := []string{""}
	str := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strIdx[s] = i
		strs = append(strs, s)
		return i
	}
	vtBytes := func(vt ValueType) []byte {
		var e enc
		e.int64Field(1, str(vt.Type))
		e.int64Field(2, str(vt.Unit))
		return e.b
	}

	type funcKey struct {
		name, file string
	}
	funcIdx := map[funcKey]uint64{}
	var funcs []funcKey
	type locKey struct {
		fn   uint64
		line int64
	}
	locIdx := map[locKey]uint64{}
	var locs []locKey

	var body enc
	for _, vt := range p.SampleTypes {
		body.bytesField(1, vtBytes(vt))
	}
	for i := range p.Samples {
		s := &p.Samples[i]
		var se enc
		locIDs := make([]uint64, 0, len(s.Stack))
		for _, fr := range s.Stack {
			fk := funcKey{fr.Function, fr.File}
			fid, ok := funcIdx[fk]
			if !ok {
				fid = uint64(len(funcs) + 1)
				funcIdx[fk] = fid
				funcs = append(funcs, fk)
			}
			lk := locKey{fid, fr.Line}
			lid, ok := locIdx[lk]
			if !ok {
				lid = uint64(len(locs) + 1)
				locIdx[lk] = lid
				locs = append(locs, lk)
			}
			locIDs = append(locIDs, lid)
		}
		se.packedUint64s(1, locIDs)
		se.packedInt64s(2, s.Values)
		for _, l := range s.Labels {
			var le enc
			le.int64Field(1, str(l.Key))
			le.int64Field(2, str(l.Str))
			le.int64Field(3, l.Num)
			le.int64Field(4, str(l.Unit))
			se.bytesField(3, le.b)
		}
		body.bytesField(2, se.b)
	}
	for i, lk := range locs {
		var le enc
		le.uint64Field(1, uint64(i+1))
		var ln enc
		ln.uint64Field(1, lk.fn)
		ln.int64Field(2, lk.line)
		le.bytesField(4, ln.b)
		body.bytesField(4, le.b)
	}
	for i, fk := range funcs {
		var fe enc
		fe.uint64Field(1, uint64(i+1))
		fe.int64Field(2, str(fk.name))
		fe.int64Field(4, str(fk.file))
		body.bytesField(5, fe.b)
	}
	body.int64Field(9, p.TimeNanos)
	body.int64Field(10, p.DurationNanos)
	if p.PeriodType != (ValueType{}) {
		body.bytesField(11, vtBytes(p.PeriodType))
	}
	body.int64Field(12, p.Period)
	body.int64Field(14, str(p.DefaultType))
	// The string table goes last (as the Go runtime writes it): every
	// field above may intern new strings, and the decoder resolves
	// indices only after the full walk.
	for _, s := range strs {
		body.bytesField(6, []byte(s))
	}
	return body.b
}

// WriteGzip writes the profile in the artifact format (.pb.gz), the
// same shape runtime/pprof emits.
func (p *Profile) WriteGzip(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(p.Encode()); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// WriteFile writes one .pb.gz artifact via temp file + rename so a
// crash mid-write never leaves a half-profile behind a valid name.
func (p *Profile) WriteFile(path string) error {
	var buf bytes.Buffer
	if err := p.WriteGzip(&buf); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
