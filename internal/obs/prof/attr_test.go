package prof

import (
	"bytes"
	"strings"
	"testing"
)

func allocProfile(samples ...Sample) *Profile {
	return &Profile{
		SampleTypes: []ValueType{
			{Type: "alloc_objects", Unit: "count"},
			{Type: "alloc_space", Unit: "bytes"},
			{Type: "inuse_objects", Unit: "count"},
			{Type: "inuse_space", Unit: "bytes"},
		},
		Samples: samples,
	}
}

func stack(fns ...string) []Frame {
	out := make([]Frame, len(fns))
	for i, fn := range fns {
		out[i] = Frame{Function: fn, File: fn + ".go", Line: int64(i + 1)}
	}
	return out
}

func TestAttributeReport(t *testing.T) {
	cpu := cpuProfile(0, 0,
		// gst dominates: 60ns across ranks 0 and 1.
		Sample{Stack: stack("buildTree", "runRank"), Values: []int64{4, 40},
			Labels: []Label{{Key: LabelPhase, Str: "gst"}, {Key: LabelRank, Str: "0"}}},
		Sample{Stack: stack("buildTree", "runRank"), Values: []int64{2, 20},
			Labels: []Label{{Key: LabelPhase, Str: "gst"}, {Key: LabelRank, Str: "1"}}},
		// cluster: 10ns.
		Sample{Stack: stack("unionFind", "runRank"), Values: []int64{1, 10},
			Labels: []Label{{Key: LabelPhase, Str: "cluster"}, {Key: LabelRank, Str: "0"}}},
		// GC worker: unlabeled but rooted in the runtime.
		Sample{Stack: stack("scanobject", "runtime.gcBgMarkWorker"), Values: []int64{1, 10}},
	)
	allocs := allocProfile(
		Sample{Stack: stack("makeNodes", "buildTree", "runRank"), Values: []int64{1000, 64000, 1, 64}},
		Sample{Stack: stack("newSets", "unionFind", "runRank"), Values: []int64{10, 320, 0, 0}},
		Sample{Stack: stack("mystery", "orphan"), Values: []int64{5, 50, 0, 0}},
	)

	r := Attribute([]*Profile{cpu}, []*Profile{allocs}, nil, Options{Top: 3})

	if r.TotalSamples != 8 || r.BothLabeled != 7 || r.SystemSamples != 1 {
		t.Fatalf("coverage: total %d both %d system %d", r.TotalSamples, r.BothLabeled, r.SystemSamples)
	}
	if r.LabeledUser != 100 {
		t.Fatalf("LabeledUser = %v, want 100 (all labelable samples labeled)", r.LabeledUser)
	}
	if r.CritPhase != "gst" || r.CritSource != "cpu-samples" {
		t.Fatalf("crit phase %q via %q, want gst via cpu-samples", r.CritPhase, r.CritSource)
	}
	if len(r.Phases) == 0 || r.Phases[0].Phase != "gst" || r.Phases[0].Nanos != 60 {
		t.Fatalf("phase rows wrong: %+v", r.Phases)
	}
	if got := r.Phases[0].Ranks; len(got) != 2 || got[0].Rank != "0" || got[0].Nanos != 40 {
		t.Fatalf("gst rank split wrong: %+v", got)
	}
	var runtimeRow *PhaseProf
	for i := range r.Phases {
		if r.Phases[i].Phase == PhaseRuntime {
			runtimeRow = &r.Phases[i]
		}
	}
	if runtimeRow == nil || runtimeRow.Nanos != 10 {
		t.Fatalf("runtime system samples not classified under %s: %+v", PhaseRuntime, r.Phases)
	}
	if len(r.CritFuncs) == 0 || r.CritFuncs[0].Function != "buildTree" {
		t.Fatalf("top crit function wrong: %+v", r.CritFuncs)
	}

	// Alloc attribution: makeNodes' caller buildTree was only ever
	// seen in gst; newSets' caller unionFind only in cluster; mystery
	// has no known caller at all.
	wantPhase := map[string]string{"makeNodes": "gst", "newSets": "cluster", "mystery": ""}
	for _, a := range r.Allocs {
		if want, ok := wantPhase[a.Function]; ok && a.Phase != want {
			t.Errorf("alloc site %s attributed to %q, want %q", a.Function, a.Phase, want)
		}
	}
	if len(r.CritAllocs) != 1 || r.CritAllocs[0].Function != "makeNodes" {
		t.Fatalf("crit allocs wrong: %+v", r.CritAllocs)
	}
	if r.TotalAllocBytes != 64370 || r.TotalAllocObjects != 1015 {
		t.Fatalf("alloc totals: %d bytes %d objects", r.TotalAllocBytes, r.TotalAllocObjects)
	}

	// The causal DAG outranks the CPU-sample fallback when present —
	// even naming a different phase.
	r2 := Attribute([]*Profile{cpu}, nil, []CritPhaseSec{{Phase: "cluster", Sec: 1.5}, {Phase: "gst", Sec: 0.5}}, Options{})
	if r2.CritPhase != "cluster" || r2.CritSource != "causal-dag" || r2.CritSec != 1.5 {
		t.Fatalf("causal join ignored: %q via %q (%v s)", r2.CritPhase, r2.CritSource, r2.CritSec)
	}

	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"critical-path phase: gst", "CPU by phase:", "buildTree", "makeNodes"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}
}

func TestPhaseCPUNanos(t *testing.T) {
	cpu := cpuProfile(0, 0,
		labeled("0", "gst", "a", 1, 30),
		labeled("1", "gst", "b", 1, 20),
		labeled("0", "cluster", "c", 1, 5),
		labeled("", "", "main", 1, 99), // unlabeled: excluded
	)
	got := PhaseCPUNanos([]*Profile{cpu})
	if got["gst"] != 50 || got["cluster"] != 5 || len(got) != 2 {
		t.Fatalf("PhaseCPUNanos = %v", got)
	}
}

func TestDiff(t *testing.T) {
	old := []*Profile{cpuProfile(0, 0, labeled("0", "gst", "hot", 1, 100), labeled("0", "gst", "cold", 1, 10))}
	new := []*Profile{cpuProfile(0, 0, labeled("0", "gst", "hot", 1, 300), labeled("0", "gst", "cold", 1, 10))}
	d := DiffCPU(old, new, 5)
	if len(d) != 1 || d[0].Function != "hot" || d[0].Delta != 200 {
		t.Fatalf("DiffCPU = %+v", d)
	}

	oldA := []*Profile{allocProfile(Sample{Stack: stack("site"), Values: []int64{10, 1000, 0, 0}})}
	newA := []*Profile{allocProfile(
		Sample{Stack: stack("site"), Values: []int64{30, 5000, 0, 0}},
		Sample{Stack: stack("fresh"), Values: []int64{1, 100, 0, 0}},
	)}
	ad := DiffAllocs(oldA, newA, 5)
	if len(ad) != 2 || ad[0].Function != "site" || ad[0].DeltaBytes != 4000 || ad[1].Function != "fresh" {
		t.Fatalf("DiffAllocs = %+v", ad)
	}
}
