package prof

import (
	"bytes"
	"reflect"
	"runtime/pprof"
	"testing"
)

// synthProfile builds a hand-made profile exercising every feature the
// codec retains: labels, shared frames, multiple sample types, scalars.
func synthProfile() *Profile {
	return &Profile{
		SampleTypes:   []ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}},
		DefaultType:   "cpu",
		PeriodType:    ValueType{Type: "cpu", Unit: "nanoseconds"},
		Period:        10000000,
		TimeNanos:     1722000000000000000,
		DurationNanos: 2000000000,
		Samples: []Sample{
			{
				Stack: []Frame{
					{Function: "repro/internal/suffixtree.(*builder).build", File: "suffixtree.go", Line: 337},
					{Function: "repro/internal/par.RunStatus.func1", File: "par.go", Line: 648},
				},
				Values: []int64{12, 120000000},
				Labels: []Label{{Key: "phase", Str: "gst"}, {Key: "rank", Str: "3"}},
			},
			{
				Stack:  []Frame{{Function: "runtime.gcBgMarkWorker", File: "mgc.go", Line: 1310}},
				Values: []int64{2, 20000000},
			},
			{
				Stack: []Frame{
					{Function: "repro/internal/align.extendBanded", File: "align.go", Line: 99},
					{Function: "repro/internal/par.RunStatus.func1", File: "par.go", Line: 648},
				},
				Values: []int64{5, 50000000},
				Labels: []Label{{Key: "phase", Str: "align-batch"}, {Key: "rank", Str: "0"}, {Key: "weight", Num: 7, Unit: "count"}},
			},
		},
	}
}

func TestProtoRoundTripSynthetic(t *testing.T) {
	want := synthProfile()
	got, err := Parse(want.Encode())
	if err != nil {
		t.Fatalf("Parse(Encode()): %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	// The gzip artifact shape round-trips identically.
	var buf bytes.Buffer
	if err := want.WriteGzip(&buf); err != nil {
		t.Fatal(err)
	}
	got, err = Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse(gzip): %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("gzip round trip mismatch")
	}
}

// TestProtoParsesRuntimeProfile decodes a profile the Go runtime
// itself wrote (the allocs profile of this very test process), then
// re-encodes and re-parses it — the codec must be closed over real
// runtime output, not just its own.
func TestProtoParsesRuntimeProfile(t *testing.T) {
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	var buf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("parsing runtime allocs profile: %v", err)
	}
	if len(p.Samples) == 0 || len(p.SampleTypes) == 0 {
		t.Fatalf("empty decode: %d samples, %d types", len(p.Samples), len(p.SampleTypes))
	}
	if p.ValueIndex("alloc_space") < 0 {
		t.Fatalf("alloc_space missing from %v", p.SampleTypes)
	}
	p2, err := Parse(p.Encode())
	if err != nil {
		t.Fatalf("re-parsing re-encoded runtime profile: %v", err)
	}
	if !reflect.DeepEqual(p2, p) {
		t.Fatal("re-encode of a runtime profile is not a fixed point")
	}
}

func TestProtoRejectsMalformed(t *testing.T) {
	good := synthProfile().Encode()
	cases := map[string][]byte{
		"truncated":       good[:len(good)/2],
		"garbage":         []byte("definitely not protobuf"),
		"bad gzip":        {0x1f, 0x8b, 0xff, 0x00, 0x01},
		"wire type 3":     {0x0b}, // field 1, obsolete group wire type
		"field number 0":  {0x00},
		"length overflow": {0x0a, 0xff, 0xff, 0xff, 0xff, 0x0f},
	}
	for name, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
	// Truncation mid-gzip (what a SIGKILLed CPU stream looks like).
	var buf bytes.Buffer
	if err := synthProfile().WriteGzip(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(buf.Bytes()[:buf.Len()-4]); err == nil {
		t.Error("truncated gzip stream parsed without error")
	}
}

func TestValueIndex(t *testing.T) {
	p := synthProfile()
	if i := p.ValueIndex("cpu"); i != 1 {
		t.Fatalf("ValueIndex(cpu) = %d, want 1", i)
	}
	if i := p.ValueIndex("nope"); i != -1 {
		t.Fatalf("ValueIndex(nope) = %d, want -1", i)
	}
}
