package prof

import (
	"runtime/metrics"

	"repro/internal/obs"
)

// Runtime health gauges the sampler maintains. They live in the
// ordinary metrics registry, so they stream to a run collector with
// every report and surface on asmtop's runtime column.
const (
	GaugeGCPauseP99  = "runtime_gc_pause_p99_ns"
	GaugeSchedLatP99 = "runtime_sched_latency_p99_ns"
	GaugeHeapLive    = "runtime_heap_live_bytes"
	GaugeHeapGoal    = "runtime_heap_goal_bytes"
	GaugeGCCycles    = "runtime_gc_cycles"
)

var runtimeSamples = []string{
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/goal:bytes",
	"/gc/cycles/total:gc-cycles",
}

// SampleRuntimeMetrics reads the runtime/metrics health set once and
// publishes it as registry gauges. Histogram-valued metrics (GC pause,
// scheduler latency) publish their p99 in nanoseconds. Nil registries
// are a no-op.
func SampleRuntimeMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				reg.Gauge(GaugeGCPauseP99).Set(int64(histQuantile(s.Value.Float64Histogram(), 0.99) * 1e9))
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				reg.Gauge(GaugeSchedLatP99).Set(int64(histQuantile(s.Value.Float64Histogram(), 0.99) * 1e9))
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				reg.Gauge(GaugeHeapLive).Set(int64(s.Value.Uint64()))
			}
		case "/gc/heap/goal:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				reg.Gauge(GaugeHeapGoal).Set(int64(s.Value.Uint64()))
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				reg.Gauge(GaugeGCCycles).Set(int64(s.Value.Uint64()))
			}
		}
	}
}

// histQuantile returns the q-quantile of a runtime/metrics histogram:
// the upper bound of the first bucket where the cumulative count
// crosses q. Empty histograms return 0; an unbounded top bucket
// reports its lower bound (the runtime's buckets make this rare).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want >= total {
		want = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > want {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			if i+1 < len(h.Buckets) && !isInf(h.Buckets[i+1]) {
				return h.Buckets[i+1]
			}
			if i < len(h.Buckets) && !isInf(h.Buckets[i]) {
				return h.Buckets[i]
			}
			return 0
		}
	}
	return 0
}

func isInf(f float64) bool { return f > 1e300 || f < -1e300 }
