package prof

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime/pprof"
	"testing"
)

// FuzzParseProfile feeds the decoder arbitrary bytes. Invariants:
// never panic, never allocate unboundedly (the gunzip cap), and any
// input that parses must survive Encode → Parse as a fixed point —
// the same closure property internal/wire's fuzzer enforces.
func FuzzParseProfile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("definitely not protobuf"))
	f.Add(synthProfile().Encode())
	var gz bytes.Buffer
	if err := synthProfile().WriteGzip(&gz); err != nil {
		f.Fatal(err)
	}
	f.Add(gz.Bytes())
	var real bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&real, 0); err != nil {
		f.Fatal(err)
	}
	f.Add(real.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		re, err := Parse(p.Encode())
		if err != nil {
			t.Fatalf("re-parse of re-encoded profile failed: %v", err)
		}
		if !reflect.DeepEqual(re, p) {
			t.Fatalf("Encode/Parse is not a fixed point:\n first %+v\nsecond %+v", p, re)
		}
	})
}

// TestGenProfileCorpus regenerates the committed fuzz seed corpus from
// real captures when PROF_GEN_CORPUS=1 — run it after changing the
// encoder so the checked-in seeds keep matching what the runtime and
// the codec actually emit.
func TestGenProfileCorpus(t *testing.T) {
	if os.Getenv("PROF_GEN_CORPUS") == "" {
		t.Skip("set PROF_GEN_CORPUS=1 to regenerate testdata/fuzz seeds")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzParseProfile")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var real bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&real, 0); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	if err := synthProfile().WriteGzip(&gz); err != nil {
		t.Fatal(err)
	}
	seeds := map[string][]byte{
		"seed_synth_raw":  synthProfile().Encode(),
		"seed_synth_gz":   gz.Bytes(),
		"seed_real_alloc": real.Bytes(),
		"seed_truncated":  synthProfile().Encode()[:20],
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", name, len(data))
	}
}
