package prof

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func cpuProfile(timeNanos, durNanos int64, samples ...Sample) *Profile {
	return &Profile{
		SampleTypes:   []ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}},
		TimeNanos:     timeNanos,
		DurationNanos: durNanos,
		Samples:       samples,
	}
}

func labeled(rank, phase string, fn string, vals ...int64) Sample {
	s := Sample{Stack: []Frame{{Function: fn}}, Values: vals}
	if rank != "" {
		s.Labels = append(s.Labels, Label{Key: LabelRank, Str: rank})
	}
	if phase != "" {
		s.Labels = append(s.Labels, Label{Key: LabelPhase, Str: phase})
	}
	sortLabels(s.Labels)
	return s
}

func TestMergeSumsIdenticalKeys(t *testing.T) {
	a := cpuProfile(100, 10, labeled("0", "gst", "work", 3, 30))
	b := cpuProfile(50, 5, labeled("0", "gst", "work", 2, 20))
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Samples) != 1 {
		t.Fatalf("same-key samples did not fold: %d samples", len(m.Samples))
	}
	if !reflect.DeepEqual(m.Samples[0].Values, []int64{5, 50}) {
		t.Fatalf("values not summed: %v", m.Samples[0].Values)
	}
	if m.TimeNanos != 50 || m.DurationNanos != 15 {
		t.Fatalf("TimeNanos %d (want earliest 50), DurationNanos %d (want 15)", m.TimeNanos, m.DurationNanos)
	}
}

func TestMergeKeepsRanksApart(t *testing.T) {
	// Same stack, different rank labels: cross-rank merge must keep
	// per-rank attribution intact.
	a := cpuProfile(0, 0, labeled("0", "gst", "work", 1, 10))
	b := cpuProfile(0, 0, labeled("1", "gst", "work", 1, 10))
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Samples) != 2 {
		t.Fatalf("distinct ranks folded together: %d samples", len(m.Samples))
	}
	ranks := map[string]bool{}
	for i := range m.Samples {
		ranks[m.Samples[i].Label(LabelRank)] = true
	}
	if !ranks["0"] || !ranks["1"] {
		t.Fatalf("rank labels lost in merge: %v", ranks)
	}
}

func TestMergeDeterministic(t *testing.T) {
	a := cpuProfile(0, 0, labeled("1", "gst", "b", 1, 10), labeled("0", "cluster", "a", 1, 10))
	b := cpuProfile(0, 0, labeled("2", "align", "c", 1, 10))
	m1, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.Samples, m2.Samples) {
		t.Fatal("merge output depends on input order")
	}
}

func TestMergeRejectsMixedTypes(t *testing.T) {
	cpu := cpuProfile(0, 0)
	heap := &Profile{SampleTypes: []ValueType{{Type: "inuse_space", Unit: "bytes"}}}
	if _, err := Merge(cpu, heap); err == nil {
		t.Fatal("merged a CPU profile with a heap profile")
	}
	if _, err := Merge(); err == nil {
		t.Fatal("merged nothing without error")
	}
}

func TestWriteFolded(t *testing.T) {
	p := cpuProfile(0, 0,
		Sample{
			Stack:  []Frame{{Function: "leaf"}, {Function: "root"}}, // leaf-first
			Values: []int64{1, 42},
			Labels: []Label{{Key: LabelPhase, Str: "gst"}, {Key: LabelRank, Str: "3"}},
		},
		labeled("", "", "plain", 1, 7),
	)
	var buf bytes.Buffer
	if err := WriteFolded(&buf, p, p.ValueIndex("cpu")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "phase:gst;rank:3;root;leaf 42\n") {
		t.Errorf("labeled stack not folded root-first with synthetic roots:\n%s", out)
	}
	if !strings.Contains(out, "plain 7\n") {
		t.Errorf("unlabeled stack missing:\n%s", out)
	}
	if err := WriteFolded(&buf, p, 99); err == nil {
		t.Error("out-of-range value index accepted")
	}
}
