// Package prof is the continuous-profiling plane: a session manager
// that captures phase/rank-labeled CPU profiles plus heap and alloc
// snapshots as .pb.gz artifacts next to the event dumps, samples
// runtime/metrics health gauges into the obs metrics registry, and —
// through the in-repo pprof codec (proto.go), merger (merge.go) and
// attribution engine (attr.go) — turns those artifacts into "top
// functions and top alloc sites on the critical path, per phase per
// rank" reports joined against the analyze causal decomposition.
//
// Label propagation: internal/par tags every rank goroutine with a
// "rank" pprof label at Comm creation and swaps the "phase" label on
// every EvPhaseEnter/EvPhaseExit trace event, so CPU samples land
// pre-attributed. Goroutine labels follow child goroutines but never
// reach runtime system goroutines (GC workers, sweeper, scavenger) —
// those samples are classified under the "(runtime)" pseudo-phase by
// the attribution report. Heap and alloc profiles carry no goroutine
// labels at all (a Go runtime limitation), so alloc sites are
// attributed by joining their call stacks against the per-function
// phase distribution learned from the labeled CPU samples.
//
// All label work is gated on one atomic flag that only an active
// session sets: with no session the hooks in internal/par cost a
// single atomic load on the (rare) phase-boundary events and nothing
// on the message hot path.
package prof

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Label keys the runtime attaches to rank goroutines.
const (
	LabelRank  = "rank"
	LabelPhase = "phase"
)

// Artifact name suffixes. A session writes <name><suffix>; mergers
// and asmprof discover artifacts by suffix.
const (
	SuffixCPU    = ".cpu.pb.gz"
	SuffixHeap   = ".heap.pb.gz"
	SuffixAllocs = ".allocs.pb.gz"
)

// enabled gates every label operation; only an active Session sets
// it. Separate from the session singleton so the par hooks pay one
// atomic load and no pointer chase.
var enabled atomic.Bool

// Enabled reports whether a profiling session is active (labels are
// being applied).
func Enabled() bool { return enabled.Load() }

// rankStrs caches the label values for small ranks so phase swaps on
// big machines do not re-format the same integers.
var rankStrs = func() [64]string {
	var s [64]string
	for i := range s {
		s[i] = strconv.Itoa(i)
	}
	return s
}()

func rankStr(r int) string {
	if r >= 0 && r < len(rankStrs) {
		return rankStrs[r]
	}
	return strconv.Itoa(r)
}

// ApplyLabels tags the calling goroutine (and any goroutines it
// spawns afterwards) with the rank and, when non-empty, phase labels.
// A no-op unless a session is active.
func ApplyLabels(rank int, phase string) {
	if !enabled.Load() {
		return
	}
	var ls pprof.LabelSet
	if phase == "" {
		ls = pprof.Labels(LabelRank, rankStr(rank))
	} else {
		ls = pprof.Labels(LabelRank, rankStr(rank), LabelPhase, phase)
	}
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), ls))
}

// ClearLabels removes the calling goroutine's labels. A no-op unless
// a session is active.
func ClearLabels() {
	if !enabled.Load() {
		return
	}
	pprof.SetGoroutineLabels(context.Background())
}

// Config tunes one profiling session.
type Config struct {
	// Dir receives the artifacts (created if missing).
	Dir string
	// Name is the artifact stem: Name + ".cpu.pb.gz" etc. Per-process
	// transports use "rank<N>"; in-process machines one stem for the
	// whole run.
	Name string
	// Registry, when non-nil, receives the runtime/metrics health
	// gauges (runtime_gc_pause_p99_ns, runtime_sched_latency_p99_ns,
	// runtime_heap_live_bytes, runtime_heap_goal_bytes,
	// runtime_gc_cycles), sampled every MetricsInterval and once at
	// Stop. They stream to a collector like any other gauge.
	Registry *obs.Registry
	// CPUHz raises the CPU sampling rate above the default 100 (more
	// samples on short windows; the runtime prints one warning line
	// when overriding the default). 0 keeps the default.
	CPUHz int
	// MetricsInterval is the runtime/metrics sampling period
	// (default 250ms).
	MetricsInterval time.Duration
}

// Session is one active profiling capture window. At most one session
// per process (the runtime supports one CPU profile at a time).
type Session struct {
	cfg  Config
	cpuF *os.File

	mu      sync.Mutex
	stopped bool
	extra   []string // heap snapshots taken at phase boundaries

	samplerStop chan struct{}
	samplerDone chan struct{}
}

// Artifacts lists the files one session wrote.
type Artifacts struct {
	CPU    string   `json:"cpu"`
	Heap   string   `json:"heap"`
	Allocs string   `json:"allocs"`
	Extra  []string `json:"extra,omitempty"` // phase-boundary heap snapshots
}

// All returns every artifact path.
func (a Artifacts) All() []string {
	out := []string{a.CPU, a.Heap, a.Allocs}
	return append(out, a.Extra...)
}

// sessionActive enforces the one-session-per-process invariant.
var sessionActive atomic.Bool

// Start opens a profiling session: begins the CPU profile streaming
// to <Dir>/<Name>.cpu.pb.gz, turns on label propagation, and starts
// the runtime/metrics sampler. Callers must Stop it.
func Start(cfg Config) (*Session, error) {
	if cfg.Name == "" {
		cfg.Name = "profile"
	}
	if cfg.MetricsInterval <= 0 {
		cfg.MetricsInterval = 250 * time.Millisecond
	}
	if !sessionActive.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("prof: a profiling session is already active")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		sessionActive.Store(false)
		return nil, err
	}
	f, err := os.Create(filepath.Join(cfg.Dir, cfg.Name+SuffixCPU))
	if err != nil {
		sessionActive.Store(false)
		return nil, err
	}
	if cfg.CPUHz > 0 && cfg.CPUHz != 100 {
		// StartCPUProfile resets the rate to 100 unless one is already
		// set; setting it first wins (at the cost of one runtime
		// warning line on stderr).
		runtime.SetCPUProfileRate(cfg.CPUHz)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		sessionActive.Store(false)
		return nil, fmt.Errorf("prof: start cpu profile: %w", err)
	}
	s := &Session{cfg: cfg, cpuF: f}
	enabled.Store(true)
	if cfg.Registry != nil {
		SampleRuntimeMetrics(cfg.Registry)
		s.samplerStop = make(chan struct{})
		s.samplerDone = make(chan struct{})
		go s.sampleLoop()
	}
	return s, nil
}

func (s *Session) sampleLoop() {
	defer close(s.samplerDone)
	tick := time.NewTicker(s.cfg.MetricsInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.samplerStop:
			return
		case <-tick.C:
			SampleRuntimeMetrics(s.cfg.Registry)
		}
	}
}

// SnapshotHeap writes an extra live-heap snapshot artifact
// (<Name>-<tag>.heap.pb.gz — the heap suffix so DirArtifacts finds
// it) — phase-boundary callers tag it with the phase just finished.
func (s *Session) SnapshotHeap(tag string) error {
	path := filepath.Join(s.cfg.Dir, fmt.Sprintf("%s-%s%s", s.cfg.Name, tag, SuffixHeap))
	if err := writeLookupProfile("heap", path); err != nil {
		return err
	}
	s.mu.Lock()
	s.extra = append(s.extra, path)
	s.mu.Unlock()
	return nil
}

// Stop ends the session: stops and flushes the CPU profile, writes
// the heap (live objects) and allocs (cumulative allocation)
// snapshots, takes a final runtime/metrics sample, and turns label
// propagation off. Safe to call once; later calls return the nil
// error without re-writing artifacts.
func (s *Session) Stop() (Artifacts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	arts := Artifacts{
		CPU:    filepath.Join(s.cfg.Dir, s.cfg.Name+SuffixCPU),
		Heap:   filepath.Join(s.cfg.Dir, s.cfg.Name+SuffixHeap),
		Allocs: filepath.Join(s.cfg.Dir, s.cfg.Name+SuffixAllocs),
		Extra:  s.extra,
	}
	if s.stopped {
		return arts, nil
	}
	s.stopped = true
	enabled.Store(false)
	pprof.StopCPUProfile()
	err := s.cpuF.Close()
	if s.samplerStop != nil {
		close(s.samplerStop)
		<-s.samplerDone
		SampleRuntimeMetrics(s.cfg.Registry)
	}
	if herr := writeLookupProfile("heap", arts.Heap); err == nil {
		err = herr
	}
	if aerr := writeLookupProfile("allocs", arts.Allocs); err == nil {
		err = aerr
	}
	sessionActive.Store(false)
	return arts, err
}

// writeLookupProfile snapshots one named runtime profile as a .pb.gz
// artifact (debug=0 is the gzipped proto encoding).
func writeLookupProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("prof: no %q profile", name)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = p.WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// DirArtifacts scans dir for profile artifacts by suffix, sorted for
// determinism. Unreadable directories return empty slices.
func DirArtifacts(dir string) (cpu, heap, allocs []string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil
	}
	for _, e := range ents {
		name := e.Name()
		path := filepath.Join(dir, name)
		switch {
		case hasSuffix(name, SuffixCPU):
			cpu = append(cpu, path)
		case hasSuffix(name, SuffixAllocs):
			allocs = append(allocs, path)
		case hasSuffix(name, SuffixHeap):
			heap = append(heap, path)
		}
	}
	sort.Strings(cpu)
	sort.Strings(heap)
	sort.Strings(allocs)
	return cpu, heap, allocs
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// ParseFiles decodes a list of artifacts, skipping files that fail to
// parse (a SIGKILLed attempt leaves a truncated CPU stream behind;
// the surviving artifacts still merge). It returns the profiles, the
// skipped paths, and the first error only when nothing parsed.
func ParseFiles(paths []string) (ps []*Profile, skipped []string, err error) {
	var firstErr error
	for _, path := range paths {
		p, perr := ParseFile(path)
		if perr != nil {
			skipped = append(skipped, path)
			if firstErr == nil {
				firstErr = perr
			}
			continue
		}
		ps = append(ps, p)
	}
	if len(ps) == 0 && firstErr != nil {
		return nil, skipped, firstErr
	}
	return ps, skipped, nil
}
