package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Merge folds profiles with identical sample types into one: samples
// with the same (stack, labels) key sum their values. Cross-rank
// merging keeps per-rank attribution intact because the rank label is
// part of the key. Output sample order is deterministic (sorted by
// key), TimeNanos is the earliest input stamp and DurationNanos the
// sum, matching what pprof's own merger reports for sequential
// captures.
func Merge(ps ...*Profile) (*Profile, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("prof: nothing to merge")
	}
	out := &Profile{
		SampleTypes: ps[0].SampleTypes,
		DefaultType: ps[0].DefaultType,
		PeriodType:  ps[0].PeriodType,
		Period:      ps[0].Period,
	}
	for _, p := range ps[1:] {
		if !sameTypes(p.SampleTypes, ps[0].SampleTypes) {
			return nil, fmt.Errorf("prof: cannot merge profiles with sample types %v and %v",
				typeNames(p.SampleTypes), typeNames(ps[0].SampleTypes))
		}
	}
	idx := map[string]int{}
	var keys []string
	for _, p := range ps {
		if out.TimeNanos == 0 || (p.TimeNanos > 0 && p.TimeNanos < out.TimeNanos) {
			out.TimeNanos = p.TimeNanos
		}
		out.DurationNanos += p.DurationNanos
		for i := range p.Samples {
			s := &p.Samples[i]
			k := sampleKey(s)
			j, ok := idx[k]
			if !ok {
				j = len(out.Samples)
				idx[k] = j
				keys = append(keys, k)
				out.Samples = append(out.Samples, Sample{
					Stack:  s.Stack,
					Labels: s.Labels,
					Values: make([]int64, len(s.Values)),
				})
			}
			dst := out.Samples[j].Values
			for vi, v := range s.Values {
				if vi < len(dst) {
					dst[vi] += v
				}
			}
		}
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	sorted := make([]Sample, len(out.Samples))
	for i, j := range order {
		sorted[i] = out.Samples[j]
	}
	out.Samples = sorted
	return out, nil
}

func sameTypes(a, b []ValueType) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func typeNames(vts []ValueType) []string {
	out := make([]string, len(vts))
	for i, vt := range vts {
		out[i] = vt.Type + "/" + vt.Unit
	}
	return out
}

// sampleKey fingerprints a sample's identity (stack + labels) for
// merging and deterministic ordering.
func sampleKey(s *Sample) string {
	var b strings.Builder
	for _, l := range s.Labels {
		fmt.Fprintf(&b, "%s=%s/%d\x01", l.Key, l.Str, l.Num)
	}
	b.WriteByte('\x02')
	for _, f := range s.Stack {
		fmt.Fprintf(&b, "%s\x01%s\x01%d\x02", f.Function, f.File, f.Line)
	}
	return b.String()
}

// WriteFolded renders the profile in collapsed-stack ("folded")
// format, one line per unique stack: root-first frames joined with
// ';' and the value at valueIndex. Rank and phase labels become
// synthetic root frames so a flamegraph groups by phase first —
// exactly the view "which functions burn the critical-path phase"
// needs. valueIndex -1 picks the last sample type (pprof's default).
func WriteFolded(w io.Writer, p *Profile, valueIndex int) error {
	if valueIndex < 0 {
		valueIndex = len(p.SampleTypes) - 1
	}
	if valueIndex < 0 || valueIndex >= len(p.SampleTypes) {
		return fmt.Errorf("prof: value index %d outside %d sample types", valueIndex, len(p.SampleTypes))
	}
	totals := map[string]int64{}
	var keys []string
	for i := range p.Samples {
		s := &p.Samples[i]
		var b strings.Builder
		if ph := s.Label(LabelPhase); ph != "" {
			b.WriteString("phase:" + ph + ";")
		}
		if rk := s.Label(LabelRank); rk != "" {
			b.WriteString("rank:" + rk + ";")
		}
		for i := len(s.Stack) - 1; i >= 0; i-- { // leaf-first stored; folded wants root-first
			b.WriteString(s.Stack[i].Function)
			if i > 0 {
				b.WriteByte(';')
			}
		}
		k := b.String()
		if _, ok := totals[k]; !ok {
			keys = append(keys, k)
		}
		totals[k] += s.Values[valueIndex]
	}
	sort.Strings(keys)
	for _, k := range keys {
		if totals[k] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", k, totals[k]); err != nil {
			return err
		}
	}
	return nil
}
