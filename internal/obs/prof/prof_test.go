package prof

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSessionLifecycle(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Start(Config{Dir: dir, Name: "rank0", Registry: reg, MetricsInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("labels not enabled under an active session")
	}
	if _, err := Start(Config{Dir: dir, Name: "second"}); err == nil {
		t.Fatal("second concurrent session started")
	}
	// Burn some CPU so the profile has samples, under labels.
	ApplyLabels(3, "gst")
	x := 1.0
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		x = x*1.0000001 + 1
	}
	_ = x
	ClearLabels()
	if err := s.SnapshotHeap("gst"); err != nil {
		t.Fatal(err)
	}

	arts, err := s.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("labels still enabled after Stop")
	}
	if len(arts.All()) != 4 {
		t.Fatalf("artifacts: %+v", arts)
	}
	for _, path := range arts.All() {
		p, err := ParseFile(path)
		if err != nil {
			t.Fatalf("artifact %s does not decode: %v", path, err)
		}
		if len(p.SampleTypes) == 0 {
			t.Fatalf("artifact %s has no sample types", path)
		}
	}
	// Idempotent Stop, and the slot frees for a new session.
	if _, err := s.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	s2, err := Start(Config{Dir: dir, Name: "after"})
	if err != nil {
		t.Fatalf("session slot not released: %v", err)
	}
	if _, err := s2.Stop(); err != nil {
		t.Fatal(err)
	}

	// The registry picked up the runtime gauges.
	snap := reg.Snapshot()
	if _, ok := snap[GaugeHeapLive]; !ok {
		t.Fatalf("runtime gauges missing from registry: %v", snap)
	}

	cpu, heap, allocs := DirArtifacts(dir)
	if len(cpu) != 2 || len(allocs) != 2 || len(heap) != 3 { // 2 sessions + 1 snapshot
		t.Fatalf("DirArtifacts: cpu %v heap %v allocs %v", cpu, heap, allocs)
	}
}

func TestLabelsNoopWithoutSession(t *testing.T) {
	if Enabled() {
		t.Fatal("enabled with no session")
	}
	// Must not panic or set labels; nothing observable to assert
	// beyond "does not blow up and stays disabled".
	ApplyLabels(1, "gst")
	ClearLabels()
	if Enabled() {
		t.Fatal("ApplyLabels flipped the gate")
	}
}

func TestParseFilesSkipsTruncated(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good"+SuffixCPU)
	if err := synthProfile().WriteFile(good); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad"+SuffixCPU)
	if err := os.WriteFile(bad, []byte{0x1f, 0x8b, 0x01}, 0o644); err != nil {
		t.Fatal(err)
	}
	ps, skipped, err := ParseFiles([]string{good, bad})
	if err != nil {
		t.Fatalf("ParseFiles errored despite a good artifact: %v", err)
	}
	if len(ps) != 1 || len(skipped) != 1 || skipped[0] != bad {
		t.Fatalf("ps %d skipped %v", len(ps), skipped)
	}
	// All-bad: the first error surfaces.
	if _, _, err := ParseFiles([]string{bad}); err == nil {
		t.Fatal("all-truncated input returned no error")
	}
	// Empty input: nothing to report.
	if ps, skipped, err := ParseFiles(nil); err != nil || len(ps) != 0 || len(skipped) != 0 {
		t.Fatalf("empty input: %v %v %v", ps, skipped, err)
	}
}
