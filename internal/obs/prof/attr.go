package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PhaseRuntime is the pseudo-phase unlabeled samples rooted in the Go
// runtime's system goroutines (GC workers, sweeper, scavenger) fall
// under: goroutine labels cannot reach them, so they are classified
// rather than miscounted against the labeling contract.
const PhaseRuntime = "(runtime)"

// PhaseUnlabeled is the pseudo-phase for samples with no phase label
// that are not runtime system work (the main goroutine, rank time
// outside any phase span).
const PhaseUnlabeled = "(unlabeled)"

// Options tunes attribution.
type Options struct {
	// Top bounds every ranked list (default 5).
	Top int
}

// CritPhaseSec is one phase's share of an externally computed
// critical path — the analyze report's CriticalPath.PhaseTotals
// carried as plain values so prof stays below analyze in the layer
// graph (par imports prof; analyze's tests import par).
type CritPhaseSec struct {
	Phase string  `json:"phase"`
	Sec   float64 `json:"sec"`
}

// FuncStat is one function's CPU attribution. Flat counts samples
// with the function at the leaf; Cum counts samples with it anywhere
// on the stack.
type FuncStat struct {
	Function  string  `json:"function"`
	FlatNanos int64   `json:"flat_nanos"`
	CumNanos  int64   `json:"cum_nanos"`
	FlatPct   float64 `json:"flat_pct"` // of the list's scope (phase or total)
}

// AllocStat is one allocation site (leaf frame of an alloc stack).
type AllocStat struct {
	Function string `json:"function"`
	File     string `json:"file,omitempty"`
	Line     int64  `json:"line,omitempty"`
	Bytes    int64  `json:"bytes"`
	Objects  int64  `json:"objects"`
	// Phase is the site's attributed phase: the dominant phase of the
	// first caller (leaf to root) that labeled CPU samples also saw.
	// Alloc profiles carry no labels of their own.
	Phase string `json:"phase,omitempty"`
}

// RankNanos is one rank's CPU share of a phase.
type RankNanos struct {
	Rank  string `json:"rank"`
	Nanos int64  `json:"nanos"`
}

// PhaseProf is one phase's CPU attribution across ranks.
type PhaseProf struct {
	Phase   string      `json:"phase"`
	Nanos   int64       `json:"nanos"`
	Pct     float64     `json:"pct"`
	Samples int64       `json:"samples"`
	Ranks   []RankNanos `json:"ranks,omitempty"`
	Funcs   []FuncStat  `json:"funcs,omitempty"`
}

// Report is the merged attribution view asmprof renders: where the
// CPU went per phase per rank, which functions and alloc sites own
// the critical-path phase, and how well-labeled the capture was.
type Report struct {
	CPUProfiles   int   `json:"cpu_profiles"`
	AllocProfiles int   `json:"alloc_profiles"`
	TotalNanos    int64 `json:"total_nanos"`
	TotalSamples  int64 `json:"total_samples"`

	// Label coverage, weighted by sample count. System is the share
	// rooted in runtime system goroutines, which cannot carry labels.
	BothLabeled   int64   `json:"both_labeled"`
	RankLabeled   int64   `json:"rank_labeled"`
	PhaseLabeled  int64   `json:"phase_labeled"`
	SystemSamples int64   `json:"system_samples"`
	LabeledPct    float64 `json:"labeled_pct"`      // both / total
	LabeledUser   float64 `json:"labeled_user_pct"` // both / (total - system)

	// CritPhase names the critical-path phase; CritSource says who
	// named it ("causal-dag" when an analyze report was joined,
	// "cpu-samples" otherwise).
	CritPhase  string  `json:"crit_phase"`
	CritSource string  `json:"crit_source"`
	CritSec    float64 `json:"crit_sec,omitempty"` // causal seconds in that phase

	Phases     []PhaseProf `json:"phases"`
	CritFuncs  []FuncStat  `json:"crit_funcs"`
	CritAllocs []AllocStat `json:"crit_allocs,omitempty"`
	Allocs     []AllocStat `json:"allocs,omitempty"`

	TotalAllocBytes   int64 `json:"total_alloc_bytes,omitempty"`
	TotalAllocObjects int64 `json:"total_alloc_objects,omitempty"`
}

// Attribute joins labeled CPU profiles, alloc profiles and (when
// non-empty) the causal critical-path phase totals into one
// attribution report.
func Attribute(cpus, allocs []*Profile, causal []CritPhaseSec, opt Options) *Report {
	if opt.Top <= 0 {
		opt.Top = 5
	}
	r := &Report{CPUProfiles: len(cpus), AllocProfiles: len(allocs)}

	type phaseAgg struct {
		nanos   int64
		samples int64
		ranks   map[string]int64
		flat    map[string]int64
		cum     map[string]int64
	}
	phases := map[string]*phaseAgg{}
	agg := func(name string) *phaseAgg {
		pa := phases[name]
		if pa == nil {
			pa = &phaseAgg{ranks: map[string]int64{}, flat: map[string]int64{}, cum: map[string]int64{}}
			phases[name] = pa
		}
		return pa
	}
	// funcPhase learns each function's phase distribution from the
	// labeled CPU samples; alloc stacks are attributed through it.
	funcPhase := map[string]map[string]int64{}

	for _, p := range cpus {
		vi := p.ValueIndex("cpu")
		if vi < 0 {
			vi = len(p.SampleTypes) - 1
		}
		si := p.ValueIndex("samples")
		for i := range p.Samples {
			s := &p.Samples[i]
			if vi < 0 || vi >= len(s.Values) {
				continue
			}
			nanos := s.Values[vi]
			count := int64(1)
			if si >= 0 && si < len(s.Values) {
				count = s.Values[si]
			}
			rank := s.Label(LabelRank)
			phase := s.Label(LabelPhase)
			r.TotalNanos += nanos
			r.TotalSamples += count
			system := false
			if rank == "" && phase == "" && isRuntimeRoot(s.Stack) {
				system = true
				r.SystemSamples += count
			}
			if rank != "" {
				r.RankLabeled += count
			}
			if phase != "" {
				r.PhaseLabeled += count
			}
			if rank != "" && phase != "" {
				r.BothLabeled += count
			}
			name := phase
			switch {
			case system:
				name = PhaseRuntime
			case name == "":
				name = PhaseUnlabeled
			}
			pa := agg(name)
			pa.nanos += nanos
			pa.samples += count
			if rank != "" {
				pa.ranks[rank] += nanos
			}
			if len(s.Stack) > 0 {
				pa.flat[s.Stack[0].Function] += nanos
				seen := map[string]bool{}
				for _, fr := range s.Stack {
					if seen[fr.Function] {
						continue
					}
					seen[fr.Function] = true
					pa.cum[fr.Function] += nanos
					if phase != "" {
						fp := funcPhase[fr.Function]
						if fp == nil {
							fp = map[string]int64{}
							funcPhase[fr.Function] = fp
						}
						fp[phase] += nanos
					}
				}
			}
		}
	}
	if r.TotalSamples > 0 {
		r.LabeledPct = 100 * float64(r.BothLabeled) / float64(r.TotalSamples)
	}
	if user := r.TotalSamples - r.SystemSamples; user > 0 {
		r.LabeledUser = 100 * float64(r.BothLabeled) / float64(user)
	}

	// Name the critical-path phase: the causal DAG's verdict when an
	// analyze report rode along, the largest labeled CPU phase
	// otherwise.
	r.CritSource = "cpu-samples"
	for _, cp := range causal {
		if cp.Phase == "(unphased)" {
			continue
		}
		if cp.Sec > r.CritSec {
			r.CritSec = cp.Sec
			r.CritPhase = cp.Phase
			r.CritSource = "causal-dag"
		}
	}
	if r.CritPhase == "" {
		var best int64
		for name, pa := range phases {
			if strings.HasPrefix(name, "(") {
				continue
			}
			if pa.nanos > best {
				best = pa.nanos
				r.CritPhase = name
			}
		}
	}

	// Assemble phase rows, largest first.
	var names []string
	for name := range phases {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if phases[names[i]].nanos != phases[names[j]].nanos {
			return phases[names[i]].nanos > phases[names[j]].nanos
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		pa := phases[name]
		pp := PhaseProf{Phase: name, Nanos: pa.nanos, Samples: pa.samples}
		if r.TotalNanos > 0 {
			pp.Pct = 100 * float64(pa.nanos) / float64(r.TotalNanos)
		}
		var rks []string
		for rk := range pa.ranks {
			rks = append(rks, rk)
		}
		sort.Slice(rks, func(i, j int) bool {
			if len(rks[i]) != len(rks[j]) { // numeric-ish order for numeric ranks
				return len(rks[i]) < len(rks[j])
			}
			return rks[i] < rks[j]
		})
		for _, rk := range rks {
			pp.Ranks = append(pp.Ranks, RankNanos{Rank: rk, Nanos: pa.ranks[rk]})
		}
		pp.Funcs = topFuncs(pa.flat, pa.cum, pa.nanos, opt.Top)
		r.Phases = append(r.Phases, pp)
		if name == r.CritPhase {
			r.CritFuncs = topFuncs(pa.flat, pa.cum, pa.nanos, opt.Top)
		}
	}

	// Alloc sites, with phase attribution through funcPhase.
	type siteKey struct {
		fn, file string
		line     int64
	}
	sites := map[siteKey]*AllocStat{}
	for _, p := range allocs {
		bi := p.ValueIndex("alloc_space")
		oi := p.ValueIndex("alloc_objects")
		if bi < 0 {
			bi = len(p.SampleTypes) - 1
		}
		for i := range p.Samples {
			s := &p.Samples[i]
			if len(s.Stack) == 0 || bi < 0 || bi >= len(s.Values) {
				continue
			}
			leaf := s.Stack[0]
			k := siteKey{leaf.Function, leaf.File, leaf.Line}
			st := sites[k]
			if st == nil {
				st = &AllocStat{Function: leaf.Function, File: leaf.File, Line: leaf.Line}
				sites[k] = st
			}
			st.Bytes += s.Values[bi]
			if oi >= 0 && oi < len(s.Values) {
				st.Objects += s.Values[oi]
			}
			r.TotalAllocBytes += s.Values[bi]
			if oi >= 0 && oi < len(s.Values) {
				r.TotalAllocObjects += s.Values[oi]
			}
			if st.Phase == "" {
				st.Phase = attributePhase(s.Stack, funcPhase)
			}
		}
	}
	var all []AllocStat
	for _, st := range sites {
		all = append(all, *st)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Bytes != all[j].Bytes {
			return all[i].Bytes > all[j].Bytes
		}
		return all[i].Function < all[j].Function
	})
	for _, st := range all {
		if len(r.Allocs) < opt.Top {
			r.Allocs = append(r.Allocs, st)
		}
		if st.Phase == r.CritPhase && len(r.CritAllocs) < opt.Top {
			r.CritAllocs = append(r.CritAllocs, st)
		}
	}
	return r
}

// attributePhase walks an (unlabeled) alloc stack leaf to root and
// returns the dominant phase of the first function the labeled CPU
// samples know; "" when no caller was ever seen on a labeled sample.
func attributePhase(stack []Frame, funcPhase map[string]map[string]int64) string {
	for _, fr := range stack {
		fp := funcPhase[fr.Function]
		if len(fp) == 0 {
			continue
		}
		best, bestN := "", int64(-1)
		var keys []string
		for ph := range fp {
			keys = append(keys, ph)
		}
		sort.Strings(keys) // deterministic tie-break
		for _, ph := range keys {
			if fp[ph] > bestN {
				best, bestN = ph, fp[ph]
			}
		}
		return best
	}
	return ""
}

// isRuntimeRoot reports whether a stack is rooted in the Go runtime
// (a system goroutine: GC background worker, sweeper, scavenger,
// finalizer, timer). The root is the last frame (stacks are stored
// leaf-first).
func isRuntimeRoot(stack []Frame) bool {
	if len(stack) == 0 {
		return true // no symbols: not attributable either way
	}
	root := stack[len(stack)-1].Function
	return strings.HasPrefix(root, "runtime.")
}

func topFuncs(flat, cum map[string]int64, scope int64, top int) []FuncStat {
	var fs []FuncStat
	for fn, f := range flat {
		fs = append(fs, FuncStat{Function: fn, FlatNanos: f, CumNanos: cum[fn]})
	}
	// Functions with only cumulative presence still matter (a parent
	// that never samples at the leaf); include them when flat space
	// remains below top.
	for fn, c := range cum {
		if _, ok := flat[fn]; !ok {
			fs = append(fs, FuncStat{Function: fn, CumNanos: c})
		}
	}
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].FlatNanos != fs[j].FlatNanos {
			return fs[i].FlatNanos > fs[j].FlatNanos
		}
		if fs[i].CumNanos != fs[j].CumNanos {
			return fs[i].CumNanos > fs[j].CumNanos
		}
		return fs[i].Function < fs[j].Function
	})
	if len(fs) > top {
		fs = fs[:top]
	}
	for i := range fs {
		if scope > 0 {
			fs[i].FlatPct = 100 * float64(fs[i].FlatNanos) / float64(scope)
		}
	}
	return fs
}

// PhaseCPUNanos sums labeled CPU nanoseconds per phase across
// profiles — the correlation input the exactness test checks against
// the analyze decomposition.
func PhaseCPUNanos(ps []*Profile) map[string]int64 {
	out := map[string]int64{}
	for _, p := range ps {
		vi := p.ValueIndex("cpu")
		if vi < 0 {
			vi = len(p.SampleTypes) - 1
		}
		for i := range p.Samples {
			s := &p.Samples[i]
			if vi < 0 || vi >= len(s.Values) {
				continue
			}
			if ph := s.Label(LabelPhase); ph != "" {
				out[ph] += s.Values[vi]
			}
		}
	}
	return out
}

// WriteText renders the report as the asmprof default view.
func (r *Report) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "profiles: %d cpu, %d alloc — %s cpu over %d samples\n",
		r.CPUProfiles, r.AllocProfiles, nanos(r.TotalNanos), r.TotalSamples)
	fmt.Fprintf(bw, "labels:   %.1f%% of samples rank+phase labeled (%.1f%% of labelable; %d runtime-system samples)\n",
		r.LabeledPct, r.LabeledUser, r.SystemSamples)
	if r.CritPhase != "" {
		fmt.Fprintf(bw, "critical-path phase: %s (named by %s", r.CritPhase, r.CritSource)
		if r.CritSec > 0 {
			fmt.Fprintf(bw, ", %.3fs of the path", r.CritSec)
		}
		fmt.Fprintf(bw, ")\n")
	}
	fmt.Fprintf(bw, "\nCPU by phase:\n")
	for _, pp := range r.Phases {
		fmt.Fprintf(bw, "  %-18s %10s  %5.1f%%  %6d samples", pp.Phase, nanos(pp.Nanos), pp.Pct, pp.Samples)
		if len(pp.Ranks) > 0 {
			parts := make([]string, 0, len(pp.Ranks))
			for _, rn := range pp.Ranks {
				parts = append(parts, fmt.Sprintf("r%s %s", rn.Rank, nanos(rn.Nanos)))
			}
			fmt.Fprintf(bw, "  [%s]", strings.Join(parts, " "))
		}
		fmt.Fprintln(bw)
	}
	if len(r.CritFuncs) > 0 {
		fmt.Fprintf(bw, "\ntop functions in %s:\n", r.CritPhase)
		writeFuncs(bw, r.CritFuncs)
	}
	if len(r.CritAllocs) > 0 {
		fmt.Fprintf(bw, "\ntop alloc sites attributed to %s:\n", r.CritPhase)
		writeAllocs(bw, r.CritAllocs)
	}
	if len(r.Allocs) > 0 {
		fmt.Fprintf(bw, "\ntop alloc sites overall (%s, %d objects):\n",
			bytesStr(r.TotalAllocBytes), r.TotalAllocObjects)
		writeAllocs(bw, r.Allocs)
	}
	return bw.err
}

func writeFuncs(w io.Writer, fs []FuncStat) {
	for _, f := range fs {
		fmt.Fprintf(w, "  %10s flat (%5.1f%%)  %10s cum  %s\n",
			nanos(f.FlatNanos), f.FlatPct, nanos(f.CumNanos), f.Function)
	}
}

func writeAllocs(w io.Writer, as []AllocStat) {
	for _, a := range as {
		loc := a.Function
		if a.File != "" {
			loc = fmt.Sprintf("%s (%s:%d)", a.Function, a.File, a.Line)
		}
		ph := a.Phase
		if ph == "" {
			ph = "?"
		}
		fmt.Fprintf(w, "  %10s  %9d objs  phase=%-14s %s\n", bytesStr(a.Bytes), a.Objects, ph, loc)
	}
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}

func nanos(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fs", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fms", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dns", n)
	}
}

func bytesStr(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// ---- diff ----

// FuncDelta is one function's CPU change between two runs.
type FuncDelta struct {
	Function string `json:"function"`
	OldNanos int64  `json:"old_nanos"`
	NewNanos int64  `json:"new_nanos"`
	Delta    int64  `json:"delta_nanos"`
}

// AllocDelta is one alloc site's change between two runs.
type AllocDelta struct {
	Function   string `json:"function"`
	File       string `json:"file,omitempty"`
	Line       int64  `json:"line,omitempty"`
	OldBytes   int64  `json:"old_bytes"`
	NewBytes   int64  `json:"new_bytes"`
	DeltaBytes int64  `json:"delta_bytes"`
	OldObjects int64  `json:"old_objects"`
	NewObjects int64  `json:"new_objects"`
}

// DiffCPU compares per-function flat CPU between two runs, largest
// absolute change first.
func DiffCPU(old, new []*Profile, top int) []FuncDelta {
	flat := func(ps []*Profile) map[string]int64 {
		m := map[string]int64{}
		for _, p := range ps {
			vi := p.ValueIndex("cpu")
			if vi < 0 {
				vi = len(p.SampleTypes) - 1
			}
			for i := range p.Samples {
				s := &p.Samples[i]
				if len(s.Stack) == 0 || vi < 0 || vi >= len(s.Values) {
					continue
				}
				m[s.Stack[0].Function] += s.Values[vi]
			}
		}
		return m
	}
	o, n := flat(old), flat(new)
	return funcDeltas(o, n, top)
}

func funcDeltas(o, n map[string]int64, top int) []FuncDelta {
	seen := map[string]bool{}
	var out []FuncDelta
	add := func(fn string) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		d := FuncDelta{Function: fn, OldNanos: o[fn], NewNanos: n[fn]}
		d.Delta = d.NewNanos - d.OldNanos
		if d.Delta != 0 {
			out = append(out, d)
		}
	}
	for fn := range o {
		add(fn)
	}
	for fn := range n {
		add(fn)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs64(out[i].Delta), abs64(out[j].Delta)
		if ai != aj {
			return ai > aj
		}
		return out[i].Function < out[j].Function
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// DiffAllocs compares per-site allocation bytes between two runs,
// largest absolute change first.
func DiffAllocs(old, new []*Profile, top int) []AllocDelta {
	type key struct {
		fn, file string
		line     int64
	}
	type cell struct{ bytes, objs int64 }
	collect := func(ps []*Profile) map[key]cell {
		m := map[key]cell{}
		for _, p := range ps {
			bi := p.ValueIndex("alloc_space")
			oi := p.ValueIndex("alloc_objects")
			if bi < 0 {
				bi = len(p.SampleTypes) - 1
			}
			for i := range p.Samples {
				s := &p.Samples[i]
				if len(s.Stack) == 0 || bi < 0 || bi >= len(s.Values) {
					continue
				}
				leaf := s.Stack[0]
				k := key{leaf.Function, leaf.File, leaf.Line}
				c := m[k]
				c.bytes += s.Values[bi]
				if oi >= 0 && oi < len(s.Values) {
					c.objs += s.Values[oi]
				}
				m[k] = c
			}
		}
		return m
	}
	o, n := collect(old), collect(new)
	seen := map[key]bool{}
	var out []AllocDelta
	add := func(k key) {
		if seen[k] {
			return
		}
		seen[k] = true
		d := AllocDelta{
			Function: k.fn, File: k.file, Line: k.line,
			OldBytes: o[k].bytes, NewBytes: n[k].bytes,
			OldObjects: o[k].objs, NewObjects: n[k].objs,
		}
		d.DeltaBytes = d.NewBytes - d.OldBytes
		if d.DeltaBytes != 0 || d.NewObjects != d.OldObjects {
			out = append(out, d)
		}
	}
	for k := range o {
		add(k)
	}
	for k := range n {
		add(k)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs64(out[i].DeltaBytes), abs64(out[j].DeltaBytes)
		if ai != aj {
			return ai > aj
		}
		return out[i].Function < out[j].Function
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
