package par

import "time"

// Stats accumulates one rank's activity over a Run.
//
// Wall and Blocked are measured with real timers; CommModel is the
// α + n/β modeled communication time (seconds) for every message the
// rank sent or received. Computation time is derived as wall time
// minus blocked time. The modeled total a figure reports for a rank is
// Comp + CommModel, which reproduces the communication/computation
// decomposition of the paper's Fig. 5 on an in-process machine.
type Stats struct {
	Wall    time.Duration // real time from rank start to finish
	Blocked time.Duration // real time spent waiting in Recv/Ssend

	CommModel float64 // modeled communication seconds (α + n/β per message)
	CompModel float64 // modeled computation seconds (ChargeCompute)

	MsgsSent  int
	MsgsRecv  int
	BytesSent int
	BytesRecv int

	MsgsDropped int // eager sends discarded by an injected fault plan

	Retransmits     int // frames resent by the reliable-link protocol
	FramesCorrupted int // frames injured by an injected corruption fault

	PeakBufBytes int // high-water mark of this rank's receive buffers
}

// Comp returns the rank's modeled computation seconds. Computation is
// charged analytically (ChargeCompute) rather than measured: the host
// running this in-process machine may have fewer cores than ranks, so
// wall time per rank says nothing about the simulated machine.
func (s Stats) Comp() float64 { return s.CompModel }

// Modeled returns the rank's modeled runtime: computation plus modeled
// communication.
func (s Stats) Modeled() float64 { return s.CompModel + s.CommModel }

// MeasuredBusy returns the real (host) seconds the rank was runnable,
// a diagnostic only.
func (s Stats) MeasuredBusy() float64 {
	c := (s.Wall - s.Blocked).Seconds()
	if c < 0 {
		return 0
	}
	return c
}

// Aggregate summarizes a Run's per-rank stats.
type Aggregate struct {
	Ranks        int
	MaxModeled   float64 // modeled parallel runtime (slowest rank)
	MaxComp      float64
	MaxComm      float64
	SumComp      float64
	SumComm      float64
	MeanIdle     float64 // mean modeled idle fraction: (T_par − T_rank)/T_par
	TotalBytes   int
	TotalMsgs    int
	PeakBufBytes int // max over ranks

	TotalBytesRecv       int
	TotalMsgsRecv        int
	TotalMsgsDropped     int // eager sends discarded by an injected fault plan
	TotalRetransmits     int // frames resent by the reliable-link protocol
	TotalFramesCorrupted int // frames injured by an injected corruption fault
}

// Summarize aggregates per-rank stats.
func Summarize(stats []Stats) Aggregate {
	var a Aggregate
	a.Ranks = len(stats)
	for _, s := range stats {
		if m := s.Modeled(); m > a.MaxModeled {
			a.MaxModeled = m
		}
		if c := s.Comp(); c > a.MaxComp {
			a.MaxComp = c
		}
		if s.CommModel > a.MaxComm {
			a.MaxComm = s.CommModel
		}
		a.SumComp += s.Comp()
		a.SumComm += s.CommModel
		a.TotalBytes += s.BytesSent
		a.TotalMsgs += s.MsgsSent
		a.TotalBytesRecv += s.BytesRecv
		a.TotalMsgsRecv += s.MsgsRecv
		a.TotalMsgsDropped += s.MsgsDropped
		a.TotalRetransmits += s.Retransmits
		a.TotalFramesCorrupted += s.FramesCorrupted
		if s.PeakBufBytes > a.PeakBufBytes {
			a.PeakBufBytes = s.PeakBufBytes
		}
	}
	if a.Ranks > 0 && a.MaxModeled > 0 {
		for _, s := range stats {
			a.MeanIdle += (a.MaxModeled - s.Modeled()) / a.MaxModeled
		}
		a.MeanIdle /= float64(a.Ranks)
	}
	return a
}
