package par

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs/prof"
)

// The transport seam: everything a machine needs from its interconnect
// when some ranks live in other OS processes. The default all-in-one-
// process machine (Run/RunStatus) bypasses it entirely — goroutine
// ranks deliver straight into each other's mailboxes, exactly as
// before — while RunRank builds a machine that owns a single local
// rank and routes every remote operation through a Transport. The
// in-process backend stays the default for sim and CI; the socket
// backend lives in par/nettrans; and because both feed the same
// mailbox, matching, collective and fail-stop code, the sim oracles
// and trace invariants double as the transport conformance suite.

// Envelope is the transport-level unit: one point-to-point message
// between ranks, carrying the sender's per-rank sequence number. The
// (Src, Seq) pair identifies a transfer exactly — it is the dedupe key
// an at-least-once transport must deliver at most once, and the
// correlation key trace analysis joins send and recv events on.
type Envelope struct {
	Src  int
	Dst  int
	Tag  int
	Seq  uint64
	Data []byte
	// Sync marks a rendezvous (Ssend-style) transfer: the receiving
	// side must report back when the message is matched by a receive,
	// not merely buffered.
	Sync bool
}

// Sink is the runtime side a Transport delivers into. Its methods may
// be called from any transport goroutine.
type Sink interface {
	// Deliver injects an inbound envelope into the local rank's
	// mailbox. For Sync envelopes, matched is non-nil and must be
	// called exactly once when a local receive matches the message —
	// the transport turns that into the sender's rendezvous ack.
	Deliver(e Envelope, matched func())
	// PeerDead records that rank r crashed (fail-stop): its process
	// died, announced a crash, or went silent past the liveness
	// timeout. It feeds RankDead and the dead-rank cascade exactly
	// like an in-process crash. Idempotent.
	PeerDead(r int, reason string)
}

// Transport carries envelopes between this process's rank and its
// remote peers. Implementations must preserve per-(src,dst) FIFO
// order, deliver each (Src, Seq) at most once, and survive connection
// loss and partial writes (the nettrans backend reconnects with capped
// backoff and resumes from the last acked sequence number).
type Transport interface {
	// Attach binds the runtime's sink and starts inbound delivery.
	// Called once by RunRank before the rank body runs.
	Attach(sink Sink) error
	// Deliver routes e to remote rank e.Dst. It must not block on the
	// network (eager sends never block in this runtime); queueing and
	// retransmission happen inside the transport. For Sync envelopes,
	// matched is non-nil and the transport must close it when the
	// remote receiver matches the message — or when the peer is
	// declared dead, mirroring the in-process rule that an Ssend to a
	// crashed rank completes immediately.
	Deliver(e Envelope, matched chan struct{}) error
	// Probe reports whether rank r is currently believed alive (its
	// liveness timeout has not expired and it announced no crash). The
	// local rank is always alive.
	Probe(r int) bool
	// CrashNotify announces the local rank's own crash to every peer,
	// so their fail-stop detection fires promptly instead of waiting
	// out the liveness timeout. Called by the runtime when the rank
	// dies; a normal return uses Close's clean goodbye instead.
	CrashNotify(reason string)
	// Close shuts the transport down: drain unacknowledged envelopes
	// (bounded), announce a clean finish to peers, release sockets. A
	// cleanly-closed rank is NOT reported dead to peers — matching the
	// in-process rule that a rank finishing its body normally never
	// trips RankDead.
	Close() error
}

// put routes one envelope toward rank dst: straight into a local
// mailbox, or through the transport when dst lives in another process.
func (m *machine) put(dst int, e envelope) {
	if m.trans == nil || dst == m.local {
		m.boxes[dst].put(e)
		return
	}
	env := Envelope{Src: e.src, Dst: dst, Tag: e.tag, Seq: e.seq, Data: e.data, Sync: e.ack != nil}
	if err := m.trans.Deliver(env, e.ack); err != nil {
		// Deliver fails only on transport misuse (closed transport);
		// peer death is handled inside the transport per the
		// interface contract.
		panic("par: transport deliver: " + err.Error())
	}
}

// machineSink adapts a single-rank machine to the Sink interface.
type machineSink struct{ m *machine }

func (s machineSink) Deliver(e Envelope, matched func()) {
	env := envelope{src: e.Src, tag: e.Tag, seq: e.Seq, data: e.Data}
	if matched != nil {
		// Mirror the in-process rendezvous: the mailbox closes ack at
		// match time (or at teardown of a dead mailbox), and a relay
		// goroutine turns that into the transport's match callback.
		ack := make(chan struct{})
		env.ack = ack
		go func() {
			<-ack
			matched()
		}()
	}
	s.m.boxes[s.m.local].put(env)
}

func (s machineSink) PeerDead(r int, reason string) {
	if r < 0 || r >= len(s.m.crashed) || r == s.m.local {
		return
	}
	s.m.markCrashed(r)
}

// RunRank executes body as rank `rank` of a cfg.Ranks-wide machine
// whose other ranks live in other OS processes reached through t. It
// is the out-of-process counterpart of RunStatus: the same SPMD body,
// the same mailbox matching, collectives, statistics and fail-stop
// semantics — but peers are real processes, and peer death arrives
// through the transport's liveness layer instead of a shared crashed
// flag. The caller owns t's lifecycle: RunRank attaches it and, on a
// rank crash, announces the crash through it, but does not close it —
// call t.Close after RunRank returns to drain and say goodbye.
func RunRank(cfg Config, rank int, t Transport, body func(c *Comm)) (Stats, Exit) {
	cfg = cfg.withDefaults()
	if cfg.Ranks < 1 {
		panic("par: need at least one rank")
	}
	if rank < 0 || rank >= cfg.Ranks {
		panic("par: rank out of range")
	}
	if t == nil {
		panic("par: RunRank needs a transport")
	}
	m := &machine{
		cfg:     cfg,
		boxes:   make([]*mailbox, cfg.Ranks),
		crashed: make([]atomic.Bool, cfg.Ranks),
		trans:   t,
		local:   rank,
	}
	for i := range m.boxes {
		// Remote ranks' boxes exist but stay empty; allocating them
		// keeps markCrashed and the fault plumbing branch-free.
		m.boxes[i] = newMailbox()
	}
	if cfg.Schedule != nil {
		m.boxes[rank].rng = cfg.Schedule.scheduleRNG(rank)
	}
	if err := t.Attach(machineSink{m}); err != nil {
		return Stats{}, Exit{Reason: "transport attach: " + err.Error()}
	}

	var st Stats
	var exit Exit
	func() {
		c := &Comm{m: m, rank: rank, start: time.Now(), fs: newFaultState(cfg.Faults, rank), tr: cfg.Trace}
		c.applyProfLabels() // rank label; phase follows TraceEvent
		defer prof.ClearLabels()
		defer func() {
			c.st.Wall = time.Since(c.start)
			c.st.PeakBufBytes = m.boxes[rank].peakBytes()
			st = c.st
			if p := recover(); p != nil {
				m.markCrashed(rank)
				if rc, ok := p.(rankCrash); ok {
					exit = Exit{FaultKilled: rc.killed, Reason: rc.reason}
				} else {
					exit = Exit{Reason: fmt.Sprintf("panic: %v", p)}
				}
				t.CrashNotify(exit.Reason)
				return
			}
			exit = Exit{OK: true}
		}()
		body(c)
	}()
	return st, exit
}
