package par

import "time"

// Fault-tolerant collectives. The plain collectives cascade-crash any
// rank that blocks on a dead peer — correct for fault-free protocols,
// fatal for survivable ones. These variants poll with RecvTimeout and
// consult RankDead, so survivors detect a dead participant through the
// same probe-deadline machinery the lease-based clustering uses and
// carry on without it. They assume rank 0 (the root used by the
// agreement steps) survives; the clustering master plays that role.
//
// All of them are collective over the *surviving* ranks: every live
// rank must call them in the same order.

// CrashAtAlltoallSend returns a Crash trigger that kills rank
// immediately before its n-th send inside an Alltoallv exchange (the
// redistribution and fragment-fetch steps of GST construction use
// these internal tags), so fault plans can target GST construction
// deterministically.
func CrashAtAlltoallSend(rank, n int) Crash {
	return Crash{Rank: rank, AfterSends: n, Tag: tagAlltoall}
}

// recvLive receives (src, tag), polling every poll interval, until a
// message arrives or src is known dead. ok is false only when src died
// without the message having been delivered.
func (c *Comm) recvLive(src, tag int, poll time.Duration) (Message, bool) {
	for {
		if m, ok := c.RecvTimeout(src, tag, poll); ok {
			return m, true
		}
		if c.RankDead(src) {
			// One last non-blocking look: the message may have landed
			// between the timeout and the death check.
			if m, ok := c.Probe(src, tag); ok {
				return m, true
			}
			return Message{}, false
		}
	}
}

// FTBarrier is Barrier over the surviving ranks: dead ranks are
// skipped instead of cascading the waiter.
func (c *Comm) FTBarrier(poll time.Duration) {
	p := c.Size()
	if p == 1 {
		return
	}
	if c.rank == 0 {
		for i := 1; i < p; i++ {
			c.recvLive(i, tagBarrier, poll)
		}
		for i := 1; i < p; i++ {
			c.Send(i, tagBarrier, nil)
		}
		return
	}
	c.Send(0, tagBarrier, nil)
	if _, ok := c.recvLive(0, tagBarrier, poll); !ok {
		c.die(false, "FTBarrier: root rank 0 died")
	}
}

// FTGather collects each rank's data at root, tolerating dead ranks.
// At the root, got[i] reports whether rank i's contribution arrived;
// non-root ranks get nil slices.
func (c *Comm) FTGather(root int, data []byte, poll time.Duration) (out [][]byte, got []bool) {
	p := c.Size()
	if c.rank != root {
		c.Send(root, tagGather, data)
		return nil, nil
	}
	out = make([][]byte, p)
	got = make([]bool, p)
	out[root], got[root] = data, true
	for i := 0; i < p; i++ {
		if i == root {
			continue
		}
		if m, ok := c.recvLive(i, tagGather, poll); ok {
			out[i], got[i] = m.Data, true
		}
	}
	return out, got
}

// FTBcast distributes root's data to every surviving rank with linear
// sends from the root (no intermediate hops a dead rank could sever).
// A non-root caller dies only if the root itself died.
func (c *Comm) FTBcast(root int, data []byte, poll time.Duration) []byte {
	p := c.Size()
	if p == 1 {
		return data
	}
	if c.rank == root {
		for i := 0; i < p; i++ {
			if i != root {
				c.Send(i, tagBcast, data)
			}
		}
		return data
	}
	m, ok := c.recvLive(root, tagBcast, poll)
	if !ok {
		c.die(false, "FTBcast: root died")
	}
	return m.Data
}

// FTAllreduce combines every surviving rank's v with op and returns
// the result on all survivors; dead ranks simply do not contribute.
func (c *Comm) FTAllreduce(v int64, op ReduceOp, poll time.Duration) int64 {
	vals, got := c.FTGather(0, encodeInt64(v), poll)
	var out []byte
	if c.rank == 0 {
		acc := v
		for i, raw := range vals {
			if i == 0 || !got[i] {
				continue
			}
			acc = op(acc, decodeInt64(raw))
		}
		out = encodeInt64(acc)
	}
	return decodeInt64(c.FTBcast(0, out, poll))
}

// FTAlltoallv is Alltoallv over the surviving ranks: all sends are
// posted eagerly (a send to a dead rank vanishes harmlessly), then
// each incoming buffer is awaited with a poll deadline. got[src]
// reports whether src's buffer arrived; a false entry means src died
// before its send reached this rank, and the caller must recover that
// exchange from redundant data.
func (c *Comm) FTAlltoallv(bufs [][]byte, poll time.Duration) (out [][]byte, got []bool) {
	p := c.Size()
	if len(bufs) != p {
		panic("par: alltoallv needs one buffer per rank")
	}
	out = make([][]byte, p)
	got = make([]bool, p)
	out[c.rank], got[c.rank] = bufs[c.rank], true
	for d := 0; d < p; d++ {
		if d != c.rank {
			c.Send(d, tagAlltoall, bufs[d])
		}
	}
	for s := 0; s < p; s++ {
		if s == c.rank {
			continue
		}
		if m, ok := c.recvLive(s, tagAlltoall, poll); ok {
			out[s], got[s] = m.Data, true
		}
	}
	return out, got
}
