package par

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestScheduleJitterPreservesPerSourceFIFO: under heavy perturbation,
// messages from one source must still arrive in send order — the
// non-overtaking guarantee the protocols rely on — while the content
// multiset is untouched.
func TestScheduleJitterPreservesPerSourceFIFO(t *testing.T) {
	const p = 5
	const msgs = 200
	cfg := DefaultConfig(p)
	cfg.Schedule = &SchedulePlan{Seed: 42}
	got := make([][]byte, 0, (p-1)*msgs)
	Run(cfg, func(c *Comm) {
		if c.Rank() != 0 {
			for i := 0; i < msgs; i++ {
				c.Send(0, 7, []byte{byte(c.Rank()), byte(i), byte(i >> 8)})
			}
			return
		}
		for i := 0; i < (p-1)*msgs; i++ {
			m := c.Recv(AnySource, 7)
			got = append(got, m.Data)
		}
	})
	next := make(map[int]int)
	for _, d := range got {
		src, seq := int(d[0]), int(d[1])|int(d[2])<<8
		if seq != next[src] {
			t.Fatalf("source %d: got message %d, want %d (per-source FIFO violated)", src, seq, next[src])
		}
		next[src]++
	}
	for r := 1; r < p; r++ {
		if next[r] != msgs {
			t.Fatalf("source %d: received %d messages, want %d", r, next[r], msgs)
		}
	}
}

// TestScheduleReordersAcrossSources: the perturbed wildcard receive
// must actually produce a cross-source interleaving different from the
// FIFO one for at least one seed — otherwise the hook explores
// nothing. Senders coordinate so all messages are queued before the
// receiver starts taking, making the FIFO baseline meaningful.
func TestScheduleReordersAcrossSources(t *testing.T) {
	const p = 4
	run := func(plan *SchedulePlan) []int {
		cfg := DefaultConfig(p)
		cfg.Schedule = plan
		var order []int
		Run(cfg, func(c *Comm) {
			if c.Rank() != 0 {
				for i := 0; i < 8; i++ {
					c.Send(0, 3, []byte{byte(c.Rank())})
				}
				c.Send(0, 4, nil) // "done queueing"
				return
			}
			for r := 1; r < p; r++ {
				c.Recv(r, 4)
			}
			for i := 0; i < (p-1)*8; i++ {
				m := c.Recv(AnySource, 3)
				order = append(order, m.Src)
			}
		})
		return order
	}
	fifo := run(nil)
	diverged := false
	for seed := int64(1); seed <= 8 && !diverged; seed++ {
		diverged = fmt.Sprint(run(&SchedulePlan{Seed: seed})) != fmt.Sprint(fifo)
	}
	if !diverged {
		t.Error("no seed in 1..8 produced a non-FIFO cross-source interleaving")
	}
}

// TestSchedulePreservesSpecificSourceOrder: a receive naming its
// source must be untouched by perturbation, tag wildcards included.
func TestSchedulePreservesSpecificSourceOrder(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Schedule = &SchedulePlan{Seed: 9}
	Run(cfg, func(c *Comm) {
		if c.Rank() == 1 {
			for i := 0; i < 64; i++ {
				c.Send(0, i%3, []byte{byte(i)})
			}
			return
		}
		time.Sleep(10 * time.Millisecond) // let the queue fill
		for i := 0; i < 64; i++ {
			m := c.Recv(1, AnyTag)
			if int(m.Data[0]) != i {
				panic(fmt.Sprintf("message %d arrived out of order (got %d)", i, m.Data[0]))
			}
		}
	})
}

// TestScheduleWithCollectives: perturbation must not break the
// collectives' correctness (they name their sources, so they only see
// put-side jitter, which respects per-source order).
func TestScheduleWithCollectives(t *testing.T) {
	const p = 6
	cfg := DefaultConfig(p)
	cfg.Schedule = &SchedulePlan{Seed: 5}
	Run(cfg, func(c *Comm) {
		sum := c.Allreduce(int64(c.Rank()), Sum)
		if want := int64(p * (p - 1) / 2); sum != want {
			panic(fmt.Sprintf("allreduce under schedule jitter: got %d, want %d", sum, want))
		}
		bufs := make([][]byte, p)
		for d := range bufs {
			bufs[d] = []byte{byte(c.Rank()), byte(d)}
		}
		recv := c.Alltoallv(bufs)
		for s, b := range recv {
			if int(b[0]) != s || int(b[1]) != c.Rank() {
				panic("alltoallv under schedule jitter delivered wrong buffer")
			}
		}
	})
}

// TestJitterInsertBounds: the insertion index must stay within the
// valid range and behind same-source messages for arbitrary queues.
func TestJitterInsertBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(12)
		queue := make([]envelope, n)
		for i := range queue {
			queue[i].src = rng.Intn(4)
		}
		src := rng.Intn(4)
		i := jitterInsert(queue, src, rng)
		if i < 0 || i > n {
			t.Fatalf("insert index %d outside [0,%d]", i, n)
		}
		for j := i; j < n; j++ {
			if queue[j].src == src {
				t.Fatalf("insert at %d would overtake same-source message at %d", i, j)
			}
		}
	}
}
