package par

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/backoff"
	"repro/internal/obs"
	"repro/internal/wire"
)

// FaultPlan is a deterministic, seedable schedule of injected faults,
// applied at the Send/Recv boundary of a machine. It models the
// failure modes that dominate past a few hundred ranks on real
// hardware — rank death, message loss, message delay — while staying
// reproducible: every decision is drawn from a per-rank RNG in that
// rank's own operation order, so a rank's fault behaviour does not
// depend on goroutine scheduling.
//
// A nil plan costs nothing: the runtime takes a single nil check per
// operation and a fault-free run's Stats are bit-identical to a run
// on a machine without the fault layer.
type FaultPlan struct {
	// Seed drives the per-rank randomness for drops and delays. Rank
	// r uses an independent RNG derived from Seed and r.
	Seed int64
	// Crashes schedules rank deaths; see Crash.
	Crashes []Crash
	// DropProb silently discards each eager user-tagged (tag ≥ 0)
	// Send with this probability. Rendezvous sends (Ssend, SendRecv)
	// and collective traffic (negative internal tags) are modeled as
	// reliable: the paper's collectives run on acknowledged channels,
	// and a dropped rendezvous would wedge the sender rather than
	// model loss.
	DropProb float64
	// DelayProb holds back each user-tagged eager message with this
	// probability; the message is delivered Delay later instead of
	// immediately.
	DelayProb float64
	// Delay is the injected delivery latency for delayed messages.
	Delay time.Duration
	// Retransmit enables the reliable-link protocol: every eager send
	// (including collective traffic on internal tags) is framed with a
	// length + CRC32C envelope, the receiving NIC verifies it, and a
	// dropped or corrupted frame is retransmitted with capped
	// exponential backoff charged to the sender's modeled clock. With
	// Retransmit set, DropProb and CorruptProb apply to all eager
	// sends, and every message is eventually delivered intact (or the
	// sender fail-stops after MaxRetries attempts).
	Retransmit bool
	// CorruptProb corrupts each framed send with this probability —
	// either flipping a payload byte or truncating the frame — so the
	// checksum layer must catch it. Only meaningful with Retransmit.
	CorruptProb float64
	// MaxRetries caps retransmission attempts per message (default 64);
	// exceeding it fail-stops the sender.
	MaxRetries int
}

// Crash kills one rank at a deterministic point in its execution.
type Crash struct {
	// Rank is the rank to kill.
	Rank int
	// AfterSends, when positive, kills the rank immediately *before*
	// it performs its n-th send whose tag matches Tag (so the n-th
	// matching message is never transmitted). Tag = AnyTag matches
	// every send, including collective traffic.
	AfterSends int
	// Tag selects which sends AfterSends counts.
	Tag int
	// After, when positive, kills the rank at its first runtime
	// operation once this much wall time has elapsed since the rank
	// started. Step-based triggers (AfterSends) are preferred for
	// reproducibility; time-based triggers model wall-clock failures.
	After time.Duration
}

// Exit describes how one rank of a Run finished.
type Exit struct {
	// OK is true when the rank's body returned normally.
	OK bool
	// FaultKilled is true when the rank was killed by the fault plan
	// (as opposed to a genuine panic or a dead-rank cascade).
	FaultKilled bool
	// Reason describes why the rank died; empty when OK.
	Reason string
}

// rankCrash is the panic sentinel that unwinds a dying rank's stack.
// Run's recovery recognizes it and records an Exit instead of
// propagating the panic.
type rankCrash struct {
	killed bool // true: fault-plan kill; false: dead-rank cascade
	reason string
}

// faultState is one rank's private view of the plan.
type faultState struct {
	plan     *FaultPlan
	rng      *rand.Rand
	triggers []crashTrigger
	deadAt   time.Duration // earliest time-based kill; 0 = none
}

type crashTrigger struct {
	tag       int
	remaining int
}

func newFaultState(plan *FaultPlan, rank int) *faultState {
	if plan == nil {
		return nil
	}
	fs := &faultState{
		plan: plan,
		rng:  rand.New(rand.NewSource(plan.Seed ^ int64(uint64(rank+1)*0x9e3779b97f4a7c15))),
	}
	for _, cr := range plan.Crashes {
		if cr.Rank != rank {
			continue
		}
		if cr.AfterSends > 0 {
			fs.triggers = append(fs.triggers, crashTrigger{tag: cr.Tag, remaining: cr.AfterSends})
		}
		if cr.After > 0 && (fs.deadAt == 0 || cr.After < fs.deadAt) {
			fs.deadAt = cr.After
		}
	}
	return fs
}

// die kills the rank: its mailbox is torn down (pending rendezvous
// senders are released, future deliveries discarded), every blocked
// rank is woken so dead-rank detection can fire, and the rank's stack
// unwinds via the crash sentinel.
func (c *Comm) die(killed bool, reason string) {
	code := obs.FaultCascade
	if killed {
		code = obs.FaultCrash
	}
	c.trace(obs.EvFault, code, 0, 0)
	c.m.markCrashed(c.rank)
	panic(rankCrash{killed: killed, reason: reason})
}

// checkTime fires any due time-based crash. Called at every runtime
// operation; a single nil check when no plan is set.
func (c *Comm) checkTime() {
	if c.fs == nil || c.fs.deadAt == 0 {
		return
	}
	if time.Since(c.start) >= c.fs.deadAt {
		c.die(true, fmt.Sprintf("fault plan: killed %v after rank start", c.fs.deadAt))
	}
}

// checkSend fires any due send-count crash; it must run before the
// message is delivered so the fatal send is lost with the rank.
func (c *Comm) checkSend(tag int) {
	c.checkTime()
	if c.fs == nil {
		return
	}
	for i := range c.fs.triggers {
		t := &c.fs.triggers[i]
		if t.remaining <= 0 || (t.tag != AnyTag && t.tag != tag) {
			continue
		}
		t.remaining--
		if t.remaining == 0 {
			c.die(true, fmt.Sprintf("fault plan: killed before send (tag %d)", tag))
		}
	}
}

// The reliable-link envelope (length + CRC32C) is the wire package's
// frame format — the same bytes nettrans writes onto real sockets.

// corruptFrame injures a frame in place (bit flip) or by truncation,
// drawing from the rank's deterministic RNG.
func corruptFrame(f []byte, rng *rand.Rand) []byte {
	if len(f) == 0 || rng.Intn(4) == 0 {
		// Truncation: cut the frame short (possibly to nothing).
		return f[:rng.Intn(len(f)+1)]
	}
	f[rng.Intn(len(f))] ^= byte(1 << rng.Intn(8))
	return f
}

// deliverReliable is the reliable-link send path used when the plan
// sets Retransmit: the frame may be dropped or corrupted in flight,
// the "receiving NIC" verifies the checksum envelope synchronously,
// and the sender retransmits with capped exponential backoff until the
// frame survives. Faults apply to every eager send, collective tags
// included; delivery is exactly-once with the original payload, so a
// fault-tolerant protocol above sees a lossy link yet a reliable
// channel.
func (c *Comm) deliverReliable(dst int, e envelope) {
	p := c.fs.plan
	maxRetries := p.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 64
	}
	// Capped exponential backoff starting at one link latency, charged
	// to the modeled clock only — the in-process link needs no real
	// waiting, and sleeping here could deadlock eager collectives that
	// post every send before receiving. No jitter: modeled stats must
	// stay bit-identical run to run.
	bo := backoff.Policy{Base: c.m.cfg.Alpha}
	for attempt := 0; ; attempt++ {
		frame := wire.EncodeFrame(e.data)
		// The first transmission's α + n/β was charged by Send; each
		// retransmission charges the frame again.
		if attempt > 0 {
			c.st.Retransmits++
			c.chargeComm(len(frame))
			c.st.CommModel += bo.Seconds(attempt - 1)
			c.trace(obs.EvRetransmit, int64(dst), int64(e.tag), int64(attempt))
		}
		if p.DropProb > 0 && c.fs.rng.Float64() < p.DropProb {
			c.st.MsgsDropped++
			c.trace(obs.EvFault, obs.FaultDrop, int64(dst), int64(e.tag))
		} else if p.CorruptProb > 0 && c.fs.rng.Float64() < p.CorruptProb {
			frame = corruptFrame(frame, c.fs.rng)
			c.st.FramesCorrupted++
			c.trace(obs.EvCorruptFrame, int64(dst), int64(e.tag), int64(len(frame)))
			if payload, ok := wire.DecodeFrame(frame); ok {
				// Corruption missed anything vital (e.g. flipped a bit
				// that truncation removed) — extraordinarily unlikely
				// to pass CRC32C with a real payload, but if the frame
				// still verifies, it delivers.
				e.data = payload
				c.m.put(dst, e)
				return
			}
		} else {
			payload, ok := wire.DecodeFrame(frame)
			if !ok {
				panic("par: clean frame failed verification")
			}
			e.data = payload
			c.m.put(dst, e)
			return
		}
		if attempt+1 >= maxRetries {
			c.die(true, fmt.Sprintf("retransmit budget exhausted after %d attempts (dst=%d tag=%d)", maxRetries, dst, e.tag))
		}
	}
}

// deliver applies drop/delay faults to an eager user-tagged message
// and reports whether the message was dropped. Rendezvous envelopes
// and internal (negative) tags always deliver immediately — unless the
// plan enables Retransmit, in which case every eager send goes through
// the framed reliable-link path.
func (c *Comm) deliver(dst int, e envelope) bool {
	if c.fs != nil && e.ack == nil && c.fs.plan.Retransmit {
		c.deliverReliable(dst, e)
		return false
	}
	if c.fs != nil && e.tag >= 0 && e.ack == nil {
		p := c.fs.plan
		if p.DropProb > 0 && c.fs.rng.Float64() < p.DropProb {
			c.st.MsgsDropped++
			c.trace(obs.EvFault, obs.FaultDrop, int64(dst), int64(e.tag))
			return true
		}
		if p.Delay > 0 && p.DelayProb > 0 && c.fs.rng.Float64() < p.DelayProb {
			c.trace(obs.EvFault, obs.FaultDelay, int64(dst), int64(e.tag))
			m := c.m
			m.delayed.Add(1)
			time.AfterFunc(p.Delay, func() {
				m.put(dst, e)
				m.delayed.Add(-1)
				m.wakeAll()
			})
			return false
		}
	}
	c.m.put(dst, e)
	return false
}
