// Package par is an in-process distributed-memory message-passing
// runtime — the repository's substitute for MPI on the BlueGene/L
// (paper, Sections 6–7). A machine of p ranks runs one goroutine per
// rank in SPMD style; ranks communicate exclusively by tagged
// point-to-point messages and the collectives built on them
// (Barrier, Bcast, Gather, Alltoallv, Allreduce, plus the paper's
// customized staged Alltoallv that bounds per-rank buffer space by
// doing p−1 pairwise exchanges).
//
// Because in-process channels are orders of magnitude faster than a
// real interconnect, communication time is charged by an explicit
// α + n/β cost model with BlueGene/L-like constants and accumulated
// per rank, while computation time is measured with real timers
// (wall time minus time spent blocked). This hybrid preserves the
// communication/computation breakdown the paper reports (Fig. 5)
// without pretending channel latency is network latency.
//
// The runtime can also inject faults — deterministic rank crashes,
// probabilistic message drops and delays — through a FaultPlan in the
// Config, and exposes the primitives fault-tolerant protocols need:
// RecvTimeout, ProbeDeadline and RankDead. A rank that would block
// forever on a crashed peer is itself crashed (dead-rank cascade), so
// Run always returns with a per-rank exit status instead of hanging.
package par

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/prof"
)

// Wildcards for Recv and Probe.
const (
	AnySource = -1
	AnyTag    = -1
)

// Internal tag space for collectives; user tags must be ≥ 0.
const (
	tagBarrier = -10 - iota
	tagBcast
	tagGather
	tagScatter
	tagReduce
	tagAlltoall
	tagSendRecv
)

// Message is a received point-to-point message. Seq is the sender's
// per-rank message sequence number (1-based, counting every send the
// source rank performed), so (Src, Seq) identifies the transfer
// exactly — the correlation key trace analysis matches send and recv
// events on.
type Message struct {
	Src  int
	Tag  int
	Seq  uint64
	Data []byte
}

// Config configures a machine.
type Config struct {
	Ranks int
	// Cost model; zero values take BlueGene/L-like defaults.
	Alpha time.Duration // per-message latency
	Beta  float64       // bandwidth, bytes/second
	// Faults, when non-nil, injects the plan's crashes, drops and
	// delays. Nil runs fault-free with zero overhead.
	Faults *FaultPlan
	// Schedule, when non-nil, perturbs message delivery order and
	// wildcard-receive choice with seeded randomness (see SchedulePlan).
	// Nil keeps the default FIFO schedule with zero overhead.
	Schedule *SchedulePlan
	// Trace, when non-nil, records runtime events — send/recv/ssend
	// begin+end, injected faults, and any user events emitted through
	// TraceEvent — into per-rank ring buffers with both wall and
	// modeled timestamps. Nil disables tracing: the hot path then
	// costs one nil check per operation and allocates nothing.
	Trace *obs.Tracer
	// CompScale multiplies every modeled compute charge (0 = 1.0). It
	// models uniformly slower cores without touching the interconnect
	// model — the knob cmd/benchrun's -slowdown uses to demonstrate
	// that the benchmark regression gate trips.
	CompScale float64
}

// DefaultConfig returns a machine with p ranks and BlueGene/L-like
// interconnect constants (≈3 µs latency, ≈150 MB/s per-link bandwidth).
func DefaultConfig(p int) Config {
	return Config{Ranks: p, Alpha: 3 * time.Microsecond, Beta: 150e6}
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 3 * time.Microsecond
	}
	if c.Beta == 0 {
		c.Beta = 150e6
	}
	if c.CompScale == 0 {
		c.CompScale = 1
	}
	return c
}

type envelope struct {
	src  int
	tag  int
	seq  uint64 // sender's per-rank sequence number (survives retransmits)
	data []byte
	ack  chan struct{} // non-nil for synchronous (rendezvous) sends
}

// takeOutcome reports how a blocking mailbox wait ended.
type takeOutcome int

const (
	takeOK       takeOutcome = iota
	takeTimeout              // deadline passed with no matching message
	takeDeadRank             // the wait can never be satisfied: source(s) crashed
)

// mailbox is one rank's incoming message queue with (src, tag) matching.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []envelope
	bytes int        // current buffered bytes
	peak  int        // high-water mark of buffered bytes
	dead  bool       // owner rank crashed; discard deliveries
	rng   *rand.Rand // schedule perturbation; nil = FIFO (guarded by mu)
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(e envelope) {
	mb.mu.Lock()
	if mb.dead {
		mb.mu.Unlock()
		// Delivery to a crashed rank: the bytes vanish, but a
		// rendezvous sender must not wedge waiting for a match.
		if e.ack != nil {
			close(e.ack)
		}
		return
	}
	if mb.rng != nil && len(mb.queue) > 0 {
		// Delivery jitter: splice the message into a random position
		// that keeps it behind every earlier message from its source.
		i := jitterInsert(mb.queue, e.src, mb.rng)
		mb.queue = append(mb.queue, envelope{})
		copy(mb.queue[i+1:], mb.queue[i:])
		mb.queue[i] = e
	} else {
		mb.queue = append(mb.queue, e)
	}
	// A rendezvous (ack != nil) message conceptually stays in the
	// sender's memory until matched, as with MPI_Ssend; only eager
	// messages occupy the receiver's buffers.
	if e.ack == nil {
		mb.bytes += len(e.data)
		if mb.bytes > mb.peak {
			mb.peak = mb.bytes
		}
	}
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// kill tears the mailbox down when its owner crashes: queued
// rendezvous senders are released and future deliveries discarded.
func (mb *mailbox) kill() {
	mb.mu.Lock()
	mb.dead = true
	for _, e := range mb.queue {
		if e.ack != nil {
			close(e.ack)
		}
	}
	mb.queue = nil
	mb.bytes = 0
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

func (mb *mailbox) wake() { mb.cond.Broadcast() }

// match returns the queue index of the message a receive with selector
// (src, tag) should take, or -1 when none matches. Under FIFO (or a
// specific-source selector) it is the first match in queue order; with
// schedule perturbation, a wildcard-source receive picks uniformly
// among the first matching message of each distinct source. Caller
// holds mb.mu.
func (mb *mailbox) match(src, tag int) int {
	if mb.rng == nil || src != AnySource {
		for i, e := range mb.queue {
			if (src == AnySource || e.src == src) && (tag == AnyTag || e.tag == tag) {
				return i
			}
		}
		return -1
	}
	var cands []int
	seen := make(map[int]bool)
	for i, e := range mb.queue {
		if (tag == AnyTag || e.tag == tag) && !seen[e.src] {
			seen[e.src] = true
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return pickWildcard(cands, mb.rng)
}

func (mb *mailbox) peakBytes() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.peak
}

// take removes and returns the first queued message matching
// (src, tag). It blocks until one arrives, the deadline passes (zero
// deadline: no limit), or the machine knows the wait can never be
// satisfied because the source rank(s) crashed. It reports how long
// it blocked.
func (mb *mailbox) take(m *machine, self, src, tag int, deadline time.Time) (envelope, time.Duration, takeOutcome) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var blocked time.Duration
	var timer *time.Timer
	if !deadline.IsZero() {
		// sync.Cond has no timed wait; an AfterFunc broadcast wakes
		// the loop to re-check the deadline.
		timer = time.AfterFunc(time.Until(deadline), mb.cond.Broadcast)
		defer timer.Stop()
	}
	for {
		if i := mb.match(src, tag); i >= 0 {
			e := mb.queue[i]
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
			mb.consume(e)
			return e, blocked, takeOK
		}
		if m.blockedForever(self, src) {
			return envelope{}, blocked, takeDeadRank
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return envelope{}, blocked, takeTimeout
		}
		start := time.Now()
		mb.cond.Wait()
		blocked += time.Since(start)
	}
}

// peekWait blocks like take but leaves the matching message queued.
func (mb *mailbox) peekWait(m *machine, self, src, tag int, deadline time.Time) (time.Duration, takeOutcome) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var blocked time.Duration
	var timer *time.Timer
	if !deadline.IsZero() {
		timer = time.AfterFunc(time.Until(deadline), mb.cond.Broadcast)
		defer timer.Stop()
	}
	for {
		for _, e := range mb.queue {
			if (src == AnySource || e.src == src) && (tag == AnyTag || e.tag == tag) {
				return blocked, takeOK
			}
		}
		if m.blockedForever(self, src) {
			return blocked, takeDeadRank
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return blocked, takeTimeout
		}
		start := time.Now()
		mb.cond.Wait()
		blocked += time.Since(start)
	}
}

// tryTake is the non-blocking variant of take.
func (mb *mailbox) tryTake(src, tag int) (envelope, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if i := mb.match(src, tag); i >= 0 {
		e := mb.queue[i]
		mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
		mb.consume(e)
		return e, true
	}
	return envelope{}, false
}

// consume updates buffer accounting when a message is matched: eager
// messages leave the buffer; a rendezvous message transits it
// momentarily at match time.
func (mb *mailbox) consume(e envelope) {
	if e.ack == nil {
		mb.bytes -= len(e.data)
		return
	}
	if v := mb.bytes + len(e.data); v > mb.peak {
		mb.peak = v
	}
}

// machine is the shared state of one Run. In the default in-process
// mode every rank's mailbox is live and trans is nil; under RunRank
// exactly one rank (local) is hosted here and traffic to every other
// rank routes through the transport.
type machine struct {
	cfg     Config
	boxes   []*mailbox
	crashed []atomic.Bool // rank died (fault kill, panic, or cascade)
	delayed atomic.Int64  // fault-delayed messages still in flight
	trans   Transport     // nil: all ranks are in-process goroutines
	local   int           // the one locally-hosted rank when trans != nil
}

// markCrashed records a rank death and wakes every blocked rank so
// dead-rank detection can fire.
func (m *machine) markCrashed(rank int) {
	m.crashed[rank].Store(true)
	m.boxes[rank].kill()
	m.wakeAll()
}

func (m *machine) wakeAll() {
	for _, b := range m.boxes {
		b.wake()
	}
}

// blockedForever reports whether a receive posted by rank self with
// source selector src can never be satisfied: the named source has
// crashed, or (wildcard) every other rank has — and no fault-delayed
// message is still in flight.
func (m *machine) blockedForever(self, src int) bool {
	if m.delayed.Load() > 0 {
		return false
	}
	if src != AnySource {
		return m.crashed[src].Load()
	}
	for r := range m.crashed {
		if r != self && !m.crashed[r].Load() {
			return false
		}
	}
	return true
}

// Comm is one rank's handle to the machine, valid only inside the
// rank's goroutine (it is not safe to share across goroutines).
type Comm struct {
	m     *machine
	rank  int
	seq   uint64 // sequence number of this rank's most recent send
	st    Stats
	start time.Time
	fs    *faultState // nil when no fault plan is set
	tr    *obs.Tracer // nil when tracing is disabled

	// phases mirrors the rank's open phase spans so a profiling
	// session can keep the goroutine's pprof "phase" label current
	// across nested enter/exit events. The stack is maintained on
	// every phase event (so a session starting mid-run still labels
	// correctly) but labels are only applied while prof.Enabled() —
	// without a session the cost is a slice push/pop on the rare
	// phase boundaries and nothing on the message hot path.
	phases []int64
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.m.cfg.Ranks }

// RankDead reports whether rank r has crashed — killed by the fault
// plan, panicked, or cascaded from blocking on a dead rank. It never
// reports true for a rank that finished its body normally.
func (c *Comm) RankDead(r int) bool { return c.m.crashed[r].Load() }

// trace records one event on this rank's track, stamping both modeled
// clocks. A nil tracer makes this a single branch with no allocation,
// the guarantee internal/par's zero-alloc benchmark enforces.
func (c *Comm) trace(k obs.Kind, a, b, n int64) {
	if c.tr == nil {
		return
	}
	c.tr.Emit(c.rank, k, c.st.CommModel, c.st.CompModel, a, b, n)
}

// traceSeq is trace for message-transfer events, stamping the message's
// per-sender sequence number so trace analysis can match the send and
// recv records of one transfer exactly.
func (c *Comm) traceSeq(k obs.Kind, a, b, n int64, seq uint64) {
	if c.tr == nil {
		return
	}
	c.tr.EmitSeq(c.rank, k, c.st.CommModel, c.st.CompModel, a, b, n, seq)
}

// TraceEvent records a user-level event (phase enter/exit, protocol
// milestones) on this rank's trace track; a no-op without a tracer.
// Arguments are kind-specific — see obs.Event. Phase events also
// drive the rank's pprof phase label when a profiling session is
// active, so CPU samples land pre-attributed to the phase that
// burned them.
func (c *Comm) TraceEvent(k obs.Kind, a, b, n int64) {
	switch k {
	case obs.EvPhaseEnter:
		c.phases = append(c.phases, a)
		c.applyProfLabels()
	case obs.EvPhaseExit:
		// Pop the innermost matching phase; tolerate unbalanced exits.
		for i := len(c.phases) - 1; i >= 0; i-- {
			if c.phases[i] == a {
				c.phases = append(c.phases[:i], c.phases[i+1:]...)
				break
			}
		}
		c.applyProfLabels()
	}
	c.trace(k, a, b, n)
}

// applyProfLabels refreshes the calling goroutine's pprof labels from
// the rank and its innermost open phase. A single atomic load when no
// profiling session is active.
func (c *Comm) applyProfLabels() {
	if !prof.Enabled() {
		return
	}
	phase := ""
	if n := len(c.phases); n > 0 {
		phase = obs.PhaseName(c.phases[n-1])
	}
	prof.ApplyLabels(c.rank, phase)
}

// Tracer returns the machine's tracer, or nil when tracing is off.
func (c *Comm) Tracer() *obs.Tracer { return c.tr }

// chargeComm adds one modeled message transfer to this rank's
// communication time.
func (c *Comm) chargeComm(bytes int) {
	c.st.CommModel += c.m.cfg.Alpha.Seconds() + float64(bytes)/c.m.cfg.Beta
}

// ChargeCompute adds modeled computation seconds to this rank, scaled
// by the machine's CompScale. Compute kernels charge analytic costs
// (cells aligned, characters scanned) so modeled runtimes scale with
// the simulated machine size rather than the host's core count.
func (c *Comm) ChargeCompute(sec float64) { c.st.CompModel += sec * c.m.cfg.CompScale }

// Snapshot returns the rank's statistics accumulated so far, with Wall
// reflecting elapsed time since the rank started. Useful for per-phase
// breakdowns.
func (c *Comm) Snapshot() Stats {
	s := c.st
	s.Wall = time.Since(c.start)
	return s
}

// Send delivers data to dst with tag. It is buffered (never blocks) —
// the analogue of an eager MPI_Send. The data slice is owned by the
// receiver after the call; do not reuse it. Under a fault plan the
// message may be dropped or delayed.
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("par: send to invalid rank %d", dst))
	}
	c.checkSend(tag)
	c.seq++
	c.st.MsgsSent++
	c.st.BytesSent += len(data)
	c.chargeComm(len(data))
	c.traceSeq(obs.EvSendBegin, int64(dst), int64(tag), int64(len(data)), c.seq)
	c.deliver(dst, envelope{src: c.rank, tag: tag, seq: c.seq, data: data})
	c.traceSeq(obs.EvSendEnd, int64(dst), int64(tag), int64(len(data)), c.seq)
}

// Ssend is a synchronous (rendezvous) send: it returns only after the
// receiver has matched the message, the analogue of MPI_Ssend the paper
// adopts to avoid overflowing the master's receive buffers (Section 7).
// If the receiver has crashed, Ssend completes immediately (the
// message vanishes, as on a network whose peer reset the connection).
func (c *Comm) Ssend(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("par: ssend to invalid rank %d", dst))
	}
	c.checkSend(tag)
	c.seq++
	seq := c.seq
	ack := make(chan struct{})
	c.st.MsgsSent++
	c.st.BytesSent += len(data)
	c.chargeComm(len(data))
	c.traceSeq(obs.EvSsendBegin, int64(dst), int64(tag), int64(len(data)), seq)
	c.m.put(dst, envelope{src: c.rank, tag: tag, seq: seq, data: data, ack: ack})
	start := time.Now()
	<-ack
	c.st.Blocked += time.Since(start)
	c.traceSeq(obs.EvSsendEnd, int64(dst), int64(tag), int64(len(data)), seq)
}

// accountRecv books a matched envelope into the rank's statistics and
// releases a rendezvous sender.
func (c *Comm) accountRecv(e envelope) Message {
	c.st.MsgsRecv++
	c.st.BytesRecv += len(e.data)
	c.chargeComm(len(e.data))
	if e.ack != nil {
		close(e.ack)
	}
	return Message{Src: e.src, Tag: e.tag, Seq: e.seq, Data: e.data}
}

// Recv blocks until a message matching (src, tag) arrives; wildcards
// AnySource and AnyTag match anything. If the wait can never be
// satisfied because the source rank(s) crashed, the receiving rank
// itself crashes (dead-rank cascade) so the machine never hangs.
func (c *Comm) Recv(src, tag int) Message {
	c.checkTime()
	c.trace(obs.EvRecvBegin, int64(src), int64(tag), 0)
	e, blocked, out := c.m.boxes[c.rank].take(c.m, c.rank, src, tag, time.Time{})
	c.st.Blocked += blocked
	if out == takeDeadRank {
		c.die(false, fmt.Sprintf("blocked in Recv(src=%d, tag=%d) on crashed rank(s)", src, tag))
	}
	msg := c.accountRecv(e)
	c.traceSeq(obs.EvRecvEnd, int64(msg.Src), int64(msg.Tag), int64(len(msg.Data)), msg.Seq)
	return msg
}

// RecvTimeout is Recv with a deadline: ok is false if no matching
// message arrived within d, or if the source rank(s) are known to
// have crashed (so the caller can distinguish a dead peer from a slow
// one with RankDead). It is the primitive lease-based protocols poll
// on.
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) (Message, bool) {
	c.checkTime()
	c.trace(obs.EvRecvBegin, int64(src), int64(tag), 0)
	e, blocked, out := c.m.boxes[c.rank].take(c.m, c.rank, src, tag, time.Now().Add(d))
	c.st.Blocked += blocked
	if out != takeOK {
		c.trace(obs.EvRecvEnd, int64(src), int64(tag), -1)
		return Message{}, false
	}
	msg := c.accountRecv(e)
	c.traceSeq(obs.EvRecvEnd, int64(msg.Src), int64(msg.Tag), int64(len(msg.Data)), msg.Seq)
	return msg, true
}

// ProbeDeadline blocks until a message matching (src, tag) is
// available — without consuming it — or the deadline d expires.
// It reports whether a matching message is queued.
func (c *Comm) ProbeDeadline(src, tag int, d time.Duration) bool {
	c.checkTime()
	blocked, out := c.m.boxes[c.rank].peekWait(c.m, c.rank, src, tag, time.Now().Add(d))
	c.st.Blocked += blocked
	return out == takeOK
}

// Probe is a non-blocking receive; ok is false if no matching message
// is queued. A successful probe traces a zero-length recv span so the
// causal trace still records the transfer; a miss traces nothing
// (probes poll in tight loops).
func (c *Comm) Probe(src, tag int) (Message, bool) {
	c.checkTime()
	e, ok := c.m.boxes[c.rank].tryTake(src, tag)
	if !ok {
		return Message{}, false
	}
	c.trace(obs.EvRecvBegin, int64(src), int64(tag), 0)
	msg := c.accountRecv(e)
	c.traceSeq(obs.EvRecvEnd, int64(msg.Src), int64(msg.Tag), int64(len(msg.Data)), msg.Seq)
	return msg, true
}

// SendRecv concurrently performs a synchronous send to dst and a
// receive from src with the given tag — the deadlock-free pairwise
// exchange used by the staged Alltoallv. The send is rendezvous-style,
// so the outgoing buffer never accumulates in the destination's
// receive space (the property the paper's customized Alltoallv needs).
func (c *Comm) SendRecv(dst int, data []byte, src, tag int) Message {
	c.checkSend(tag)
	c.seq++
	seq := c.seq
	ack := make(chan struct{})
	c.traceSeq(obs.EvSsendBegin, int64(dst), int64(tag), int64(len(data)), seq)
	c.m.put(dst, envelope{src: c.rank, tag: tag, seq: seq, data: data, ack: ack})
	c.st.MsgsSent++
	c.st.BytesSent += len(data)
	c.chargeComm(len(data))
	msg := c.Recv(src, tag)
	start := time.Now()
	<-ack
	c.st.Blocked += time.Since(start)
	c.traceSeq(obs.EvSsendEnd, int64(dst), int64(tag), int64(len(data)), seq)
	return msg
}

// RunStatus executes body on every rank of a machine with the given
// config and returns per-rank statistics and exit statuses. Unlike
// Run it never panics on a rank death and never hangs: a rank that
// blocks forever on a crashed peer is crashed in turn, so every rank
// terminates and its fate is reported in the Exit slice.
func RunStatus(cfg Config, body func(c *Comm)) ([]Stats, []Exit) {
	cfg = cfg.withDefaults()
	if cfg.Ranks < 1 {
		panic("par: need at least one rank")
	}
	m := &machine{
		cfg:     cfg,
		boxes:   make([]*mailbox, cfg.Ranks),
		crashed: make([]atomic.Bool, cfg.Ranks),
	}
	for i := range m.boxes {
		m.boxes[i] = newMailbox()
		if cfg.Schedule != nil {
			m.boxes[i].rng = cfg.Schedule.scheduleRNG(i)
		}
	}
	stats := make([]Stats, cfg.Ranks)
	exits := make([]Exit, cfg.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{m: m, rank: rank, start: time.Now(), fs: newFaultState(cfg.Faults, rank), tr: cfg.Trace}
			c.applyProfLabels() // rank label; phase follows TraceEvent
			defer prof.ClearLabels()
			defer func() {
				c.st.Wall = time.Since(c.start)
				c.st.PeakBufBytes = m.boxes[rank].peakBytes()
				stats[rank] = c.st
				if p := recover(); p != nil {
					// Mark genuine panics too, so ranks blocked on
					// this one cascade instead of hanging.
					m.markCrashed(rank)
					if rc, ok := p.(rankCrash); ok {
						exits[rank] = Exit{FaultKilled: rc.killed, Reason: rc.reason}
					} else {
						exits[rank] = Exit{Reason: fmt.Sprintf("panic: %v", p)}
					}
					return
				}
				exits[rank] = Exit{OK: true}
			}()
			body(c)
		}(r)
	}
	wg.Wait()
	return stats, exits
}

// Run executes body on every rank of a machine with the given config
// and returns per-rank statistics. It panics if any rank panics or
// dies; fault-tolerant callers that expect rank deaths should use
// RunStatus instead.
func Run(cfg Config, body func(c *Comm)) []Stats {
	stats, exits := RunStatus(cfg, body)
	// Prefer reporting a genuine panic over its cascade victims.
	firstBad := -1
	for r, e := range exits {
		if e.OK {
			continue
		}
		if len(e.Reason) >= 6 && e.Reason[:6] == "panic:" {
			panic(fmt.Sprintf("rank %d: %s", r, e.Reason))
		}
		if firstBad < 0 {
			firstBad = r
		}
	}
	if firstBad >= 0 {
		panic(fmt.Sprintf("rank %d: %s", firstBad, exits[firstBad].Reason))
	}
	return stats
}
