// Package par is an in-process distributed-memory message-passing
// runtime — the repository's substitute for MPI on the BlueGene/L
// (paper, Sections 6–7). A machine of p ranks runs one goroutine per
// rank in SPMD style; ranks communicate exclusively by tagged
// point-to-point messages and the collectives built on them
// (Barrier, Bcast, Gather, Alltoallv, Allreduce, plus the paper's
// customized staged Alltoallv that bounds per-rank buffer space by
// doing p−1 pairwise exchanges).
//
// Because in-process channels are orders of magnitude faster than a
// real interconnect, communication time is charged by an explicit
// α + n/β cost model with BlueGene/L-like constants and accumulated
// per rank, while computation time is measured with real timers
// (wall time minus time spent blocked). This hybrid preserves the
// communication/computation breakdown the paper reports (Fig. 5)
// without pretending channel latency is network latency.
package par

import (
	"fmt"
	"sync"
	"time"
)

// Wildcards for Recv and Probe.
const (
	AnySource = -1
	AnyTag    = -1
)

// Internal tag space for collectives; user tags must be ≥ 0.
const (
	tagBarrier = -10 - iota
	tagBcast
	tagGather
	tagScatter
	tagReduce
	tagAlltoall
	tagSendRecv
)

// Message is a received point-to-point message.
type Message struct {
	Src  int
	Tag  int
	Data []byte
}

// Config configures a machine.
type Config struct {
	Ranks int
	// Cost model; zero values take BlueGene/L-like defaults.
	Alpha time.Duration // per-message latency
	Beta  float64       // bandwidth, bytes/second
}

// DefaultConfig returns a machine with p ranks and BlueGene/L-like
// interconnect constants (≈3 µs latency, ≈150 MB/s per-link bandwidth).
func DefaultConfig(p int) Config {
	return Config{Ranks: p, Alpha: 3 * time.Microsecond, Beta: 150e6}
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 3 * time.Microsecond
	}
	if c.Beta == 0 {
		c.Beta = 150e6
	}
	return c
}

type envelope struct {
	src  int
	tag  int
	data []byte
	ack  chan struct{} // non-nil for synchronous (rendezvous) sends
}

// mailbox is one rank's incoming message queue with (src, tag) matching.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []envelope
	bytes int // current buffered bytes
	peak  int // high-water mark of buffered bytes
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(e envelope) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, e)
	// A rendezvous (ack != nil) message conceptually stays in the
	// sender's memory until matched, as with MPI_Ssend; only eager
	// messages occupy the receiver's buffers.
	if e.ack == nil {
		mb.bytes += len(e.data)
		if mb.bytes > mb.peak {
			mb.peak = mb.bytes
		}
	}
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take removes and returns the first queued message matching (src, tag),
// blocking until one arrives. It reports how long it blocked.
func (mb *mailbox) take(src, tag int) (envelope, time.Duration) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var blocked time.Duration
	for {
		for i, e := range mb.queue {
			if (src == AnySource || e.src == src) && (tag == AnyTag || e.tag == tag) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				mb.consume(e)
				return e, blocked
			}
		}
		start := time.Now()
		mb.cond.Wait()
		blocked += time.Since(start)
	}
}

// tryTake is the non-blocking variant of take.
func (mb *mailbox) tryTake(src, tag int) (envelope, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, e := range mb.queue {
		if (src == AnySource || e.src == src) && (tag == AnyTag || e.tag == tag) {
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
			mb.consume(e)
			return e, true
		}
	}
	return envelope{}, false
}

// consume updates buffer accounting when a message is matched: eager
// messages leave the buffer; a rendezvous message transits it
// momentarily at match time.
func (mb *mailbox) consume(e envelope) {
	if e.ack == nil {
		mb.bytes -= len(e.data)
		return
	}
	if v := mb.bytes + len(e.data); v > mb.peak {
		mb.peak = v
	}
}

// machine is the shared state of one Run.
type machine struct {
	cfg   Config
	boxes []*mailbox
}

// Comm is one rank's handle to the machine, valid only inside the
// rank's goroutine (it is not safe to share across goroutines).
type Comm struct {
	m     *machine
	rank  int
	st    Stats
	start time.Time
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.m.cfg.Ranks }

// chargeComm adds one modeled message transfer to this rank's
// communication time.
func (c *Comm) chargeComm(bytes int) {
	c.st.CommModel += c.m.cfg.Alpha.Seconds() + float64(bytes)/c.m.cfg.Beta
}

// ChargeCompute adds modeled computation seconds to this rank.
// Compute kernels charge analytic costs (cells aligned, characters
// scanned) so modeled runtimes scale with the simulated machine size
// rather than the host's core count.
func (c *Comm) ChargeCompute(sec float64) { c.st.CompModel += sec }

// Snapshot returns the rank's statistics accumulated so far, with Wall
// reflecting elapsed time since the rank started. Useful for per-phase
// breakdowns.
func (c *Comm) Snapshot() Stats {
	s := c.st
	s.Wall = time.Since(c.start)
	return s
}

// Send delivers data to dst with tag. It is buffered (never blocks) —
// the analogue of an eager MPI_Send. The data slice is owned by the
// receiver after the call; do not reuse it.
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("par: send to invalid rank %d", dst))
	}
	c.st.MsgsSent++
	c.st.BytesSent += len(data)
	c.chargeComm(len(data))
	c.m.boxes[dst].put(envelope{src: c.rank, tag: tag, data: data})
}

// Ssend is a synchronous (rendezvous) send: it returns only after the
// receiver has matched the message, the analogue of MPI_Ssend the paper
// adopts to avoid overflowing the master's receive buffers (Section 7).
func (c *Comm) Ssend(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("par: ssend to invalid rank %d", dst))
	}
	ack := make(chan struct{})
	c.st.MsgsSent++
	c.st.BytesSent += len(data)
	c.chargeComm(len(data))
	c.m.boxes[dst].put(envelope{src: c.rank, tag: tag, data: data, ack: ack})
	start := time.Now()
	<-ack
	c.st.Blocked += time.Since(start)
}

// Recv blocks until a message matching (src, tag) arrives; wildcards
// AnySource and AnyTag match anything.
func (c *Comm) Recv(src, tag int) Message {
	e, blocked := c.m.boxes[c.rank].take(src, tag)
	c.st.Blocked += blocked
	c.st.MsgsRecv++
	c.st.BytesRecv += len(e.data)
	c.chargeComm(len(e.data))
	if e.ack != nil {
		close(e.ack)
	}
	return Message{Src: e.src, Tag: e.tag, Data: e.data}
}

// Probe is a non-blocking receive; ok is false if no matching message
// is queued.
func (c *Comm) Probe(src, tag int) (Message, bool) {
	e, ok := c.m.boxes[c.rank].tryTake(src, tag)
	if !ok {
		return Message{}, false
	}
	c.st.MsgsRecv++
	c.st.BytesRecv += len(e.data)
	c.chargeComm(len(e.data))
	if e.ack != nil {
		close(e.ack)
	}
	return Message{Src: e.src, Tag: e.tag, Data: e.data}, true
}

// SendRecv concurrently performs a synchronous send to dst and a
// receive from src with the given tag — the deadlock-free pairwise
// exchange used by the staged Alltoallv. The send is rendezvous-style,
// so the outgoing buffer never accumulates in the destination's
// receive space (the property the paper's customized Alltoallv needs).
func (c *Comm) SendRecv(dst int, data []byte, src, tag int) Message {
	ack := make(chan struct{})
	c.m.boxes[dst].put(envelope{src: c.rank, tag: tag, data: data, ack: ack})
	c.st.MsgsSent++
	c.st.BytesSent += len(data)
	c.chargeComm(len(data))
	msg := c.Recv(src, tag)
	start := time.Now()
	<-ack
	c.st.Blocked += time.Since(start)
	return msg
}

// Run executes body on every rank of a machine with the given config
// and returns per-rank statistics. It panics if any rank panics.
func Run(cfg Config, body func(c *Comm)) []Stats {
	cfg = cfg.withDefaults()
	if cfg.Ranks < 1 {
		panic("par: need at least one rank")
	}
	m := &machine{cfg: cfg, boxes: make([]*mailbox, cfg.Ranks)}
	for i := range m.boxes {
		m.boxes[i] = newMailbox()
	}
	stats := make([]Stats, cfg.Ranks)
	var wg sync.WaitGroup
	panics := make(chan interface{}, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- fmt.Sprintf("rank %d: %v", rank, p)
				}
			}()
			c := &Comm{m: m, rank: rank, start: time.Now()}
			body(c)
			c.st.Wall = time.Since(c.start)
			c.st.PeakBufBytes = m.boxes[rank].peak
			stats[rank] = c.st
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
	return stats
}
