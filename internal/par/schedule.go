package par

import "math/rand"

// SchedulePlan perturbs the runtime's message schedule without
// changing which messages are delivered: it explores interleavings the
// default FIFO mailbox never produces, so protocol properties that
// happen to hold under FIFO delivery (but are not actually guaranteed
// by the protocol) surface as failures in simulation instead of in
// production.
//
// Two independent perturbations are applied, both drawn from a
// per-mailbox RNG seeded by (Seed, owner rank) so a given seed tuple
// replays the same decisions in the same mailbox-operation order:
//
//   - Delivery jitter: an arriving message is inserted at a random
//     queue position instead of the tail. Insertion never moves a
//     message ahead of an earlier message from the same source, so the
//     MPI-style non-overtaking guarantee (per-source FIFO) that the
//     protocols rely on is preserved; only the interleaving across
//     sources changes.
//
//   - Wildcard-receive reordering: a receive with src == AnySource
//     picks uniformly among the first matching message of each source
//     rather than the overall head of the queue — the master's
//     worker-report processing order is exactly this choice.
//
// Like a nil FaultPlan, a nil SchedulePlan costs one nil check per
// operation and changes nothing.
type SchedulePlan struct {
	// Seed drives all perturbation decisions. Mailbox r draws from an
	// independent RNG derived from Seed and r.
	Seed int64
}

// scheduleRNG returns the perturbation RNG for one mailbox (owner
// rank). Called once per Run per rank; the RNG is guarded by the
// mailbox mutex thereafter.
func (p *SchedulePlan) scheduleRNG(rank int) *rand.Rand {
	return rand.New(rand.NewSource(p.Seed ^ int64(uint64(rank+1)*0xbf58476d1ce4e5b9)))
}

// jitterInsert returns the index at which a message from src may be
// inserted into queue without overtaking an earlier message from the
// same source: a uniform draw from (last same-src index, len(queue)].
func jitterInsert(queue []envelope, src int, rng *rand.Rand) int {
	lo := 0
	for i := len(queue) - 1; i >= 0; i-- {
		if queue[i].src == src {
			lo = i + 1
			break
		}
	}
	return lo + rng.Intn(len(queue)-lo+1)
}

// pickWildcard chooses among the first matching queue index of each
// distinct source. With a single candidate (or a specific-source
// selector, whose candidate set is always a singleton) the choice is
// forced, so perturbation only ever reorders across sources — never
// within one source's FIFO channel.
func pickWildcard(cands []int, rng *rand.Rand) int {
	if len(cands) == 1 {
		return cands[0]
	}
	return cands[rng.Intn(len(cands))]
}
