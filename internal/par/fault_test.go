package par

import (
	"testing"
	"time"
)

// TestRecvTimeout: the deadline expires when nothing matches, and a
// matching message beats the deadline.
func TestRecvTimeout(t *testing.T) {
	RunStatus(DefaultConfig(2), func(c *Comm) {
		switch c.Rank() {
		case 0:
			if _, ok := c.RecvTimeout(1, 7, 20*time.Millisecond); ok {
				t.Error("timeout recv matched a message that was never sent")
			}
			c.Send(1, 5, []byte("go"))
			if m, ok := c.RecvTimeout(1, 9, 2*time.Second); !ok || string(m.Data) != "done" {
				t.Errorf("expected done message, got ok=%v", ok)
			}
		case 1:
			c.Recv(0, 5)
			c.Send(0, 9, []byte("done"))
		}
	})
}

func TestProbeDeadline(t *testing.T) {
	RunStatus(DefaultConfig(2), func(c *Comm) {
		switch c.Rank() {
		case 0:
			if c.ProbeDeadline(1, 3, 20*time.Millisecond) {
				t.Error("probe matched before anything was sent")
			}
			c.Send(1, 2, nil)
			if !c.ProbeDeadline(1, 3, 2*time.Second) {
				t.Error("probe missed the sent message")
			}
			c.Recv(1, 3) // actually consume it
		case 1:
			c.Recv(0, 2)
			c.Send(0, 3, []byte("x"))
		}
	})
}

// TestCrashAfterSends: a send-count trigger kills the rank before the
// fatal send, ranks blocked on it cascade instead of hanging, and
// RunStatus reports every exit.
func TestCrashAfterSends(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Faults = &FaultPlan{Crashes: []Crash{{Rank: 1, AfterSends: 2, Tag: 4}}}
	done := make(chan struct{})
	var exits []Exit
	go func() {
		defer close(done)
		_, exits = RunStatus(cfg, func(c *Comm) {
			switch c.Rank() {
			case 1:
				c.Send(2, 4, []byte("first"))
				c.Send(2, 4, []byte("second — never transmitted"))
				t.Error("rank 1 survived its crash trigger")
			case 2:
				c.Recv(1, 4)
				c.Recv(1, 4) // blocks on the lost send → cascade
				t.Error("rank 2 received a message the crash should have killed")
			case 0:
				c.Recv(2, 9) // never satisfied → cascade once 1 and 2 die
				t.Error("rank 0 recv returned")
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunStatus hung on a crashed machine")
	}
	if exits[1].OK || !exits[1].FaultKilled {
		t.Errorf("rank 1 exit: %+v", exits[1])
	}
	if exits[2].OK || exits[2].FaultKilled {
		t.Errorf("rank 2 should be a cascade death: %+v", exits[2])
	}
	if exits[0].OK {
		t.Errorf("rank 0 should cascade: %+v", exits[0])
	}
}

// TestCrashAfterTime: a wall-clock trigger kills the rank at its next
// runtime operation.
func TestCrashAfterTime(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultPlan{Crashes: []Crash{{Rank: 1, After: 10 * time.Millisecond}}}
	_, exits := RunStatus(cfg, func(c *Comm) {
		if c.Rank() == 1 {
			time.Sleep(30 * time.Millisecond)
			c.Send(0, 1, nil) // checkTime fires here
			t.Error("rank 1 survived its time trigger")
			return
		}
		if _, ok := c.RecvTimeout(1, 1, 5*time.Second); ok {
			t.Error("received a message the time trigger should have killed")
		}
		if !c.RankDead(1) {
			t.Error("rank 1 not reported dead")
		}
	})
	if exits[1].OK || !exits[1].FaultKilled {
		t.Errorf("rank 1 exit: %+v", exits[1])
	}
	if !exits[0].OK {
		t.Errorf("rank 0 exit: %+v", exits[0])
	}
}

// TestDropDeterminism: message drops are drawn from per-rank RNGs in
// operation order, so two identical runs drop identically.
func TestDropDeterminism(t *testing.T) {
	run := func() (dropped, received int) {
		cfg := DefaultConfig(2)
		cfg.Faults = &FaultPlan{Seed: 42, DropProb: 0.5}
		stats, exits := RunStatus(cfg, func(c *Comm) {
			const total = 40
			if c.Rank() == 0 {
				for i := 0; i < total; i++ {
					c.Send(1, 6, []byte{byte(i)})
				}
				c.Ssend(1, 7, nil) // reliable fence: rendezvous never drops
				return
			}
			c.Recv(0, 7)
			for {
				if _, ok := c.Probe(0, 6); !ok {
					break
				}
				received++
			}
		})
		for _, e := range exits {
			if !e.OK {
				t.Fatalf("exit: %+v", e)
			}
		}
		agg := Summarize(stats)
		if agg.TotalMsgsDropped != stats[0].MsgsDropped+stats[1].MsgsDropped {
			t.Errorf("Summarize dropped %d, want %d", agg.TotalMsgsDropped, stats[0].MsgsDropped+stats[1].MsgsDropped)
		}
		if agg.TotalMsgsRecv != stats[0].MsgsRecv+stats[1].MsgsRecv {
			t.Errorf("Summarize msgs recv %d, want %d", agg.TotalMsgsRecv, stats[0].MsgsRecv+stats[1].MsgsRecv)
		}
		if agg.TotalBytesRecv != stats[0].BytesRecv+stats[1].BytesRecv {
			t.Errorf("Summarize bytes recv %d, want %d", agg.TotalBytesRecv, stats[0].BytesRecv+stats[1].BytesRecv)
		}
		return stats[0].MsgsDropped, received
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Errorf("drops not deterministic: run1 (%d dropped, %d recv) vs run2 (%d, %d)", d1, r1, d2, r2)
	}
	if d1 == 0 || r1 == 0 || d1+r1 != 40 {
		t.Errorf("dropped %d + received %d should split 40 nontrivially", d1, r1)
	}
}

// TestDelayDelivers: a delayed message still arrives, and a receiver
// blocked on it is not treated as blocked forever.
func TestDelayDelivers(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultPlan{Seed: 1, DelayProb: 1, Delay: 20 * time.Millisecond}
	stats, exits := RunStatus(cfg, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []byte("late"))
			return // sender exits while the message is still in flight
		}
		if m := c.Recv(0, 3); string(m.Data) != "late" {
			t.Errorf("bad delayed payload %q", m.Data)
		}
	})
	for _, e := range exits {
		if !e.OK {
			t.Fatalf("exit: %+v", e)
		}
	}
	if stats[0].MsgsDropped != 0 {
		t.Error("delay counted as drop")
	}
}

// TestSsendToDeadRankCompletes: a rendezvous send to a crashed rank
// must not wedge the sender.
func TestSsendToDeadRankCompletes(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultPlan{Crashes: []Crash{{Rank: 1, AfterSends: 1, Tag: AnyTag}}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunStatus(cfg, func(c *Comm) {
			if c.Rank() == 1 {
				c.Send(0, 1, nil) // dies here
				return
			}
			for !c.RankDead(1) {
				time.Sleep(time.Millisecond)
			}
			c.Ssend(1, 2, []byte("into the void"))
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Ssend to a dead rank wedged")
	}
}

// TestRunPanicsOnDeath preserves Run's legacy contract for callers
// that do not expect rank deaths.
func TestRunPanicsOnDeath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run did not panic on a fault-killed rank")
		}
	}()
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultPlan{Crashes: []Crash{{Rank: 1, AfterSends: 1, Tag: AnyTag}}}
	Run(cfg, func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 1, nil)
		} else {
			c.Recv(1, 1)
		}
	})
}

// TestZeroOverheadPath: without a plan, the fault hooks must not
// change any modeled statistic (spot check vs a hand-computed run).
func TestZeroOverheadPath(t *testing.T) {
	stats := Run(DefaultConfig(2), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 100))
		} else {
			c.Recv(0, 1)
		}
	})
	if stats[0].MsgsSent != 1 || stats[0].MsgsDropped != 0 || stats[1].MsgsRecv != 1 {
		t.Errorf("unexpected stats: %+v %+v", stats[0], stats[1])
	}
	want := DefaultConfig(2).Alpha.Seconds() + 100/DefaultConfig(2).Beta
	if stats[0].CommModel != want {
		t.Errorf("comm model %g != %g", stats[0].CommModel, want)
	}
}
