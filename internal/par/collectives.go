package par

// Collective operations, all built on the point-to-point layer so their
// cost is charged through the same α + n/β model.

// Barrier blocks until every rank has entered it. Linear gather to rank
// 0 followed by a broadcast — adequate at the rank counts simulated
// here.
func (c *Comm) Barrier() {
	p := c.Size()
	if p == 1 {
		return
	}
	if c.rank == 0 {
		// Receive from explicit sources: per-sender FIFO ordering then
		// keeps consecutive collective epochs from interleaving.
		for i := 1; i < p; i++ {
			c.Recv(i, tagBarrier)
		}
		for i := 1; i < p; i++ {
			c.Send(i, tagBarrier, nil)
		}
	} else {
		c.Send(0, tagBarrier, nil)
		c.Recv(0, tagBarrier)
	}
}

// Bcast distributes root's data to every rank and returns it. Non-root
// ranks pass nil. Binomial-tree dissemination.
func (c *Comm) Bcast(root int, data []byte) []byte {
	p := c.Size()
	if p == 1 {
		return data
	}
	// Re-index so the root is virtual rank 0. In a binomial tree,
	// virtual rank vr receives from vr − msb(vr) and sends to vr + bit
	// for every power of two bit > vr.
	vr := (c.rank - root + p) % p
	if vr != 0 {
		parent := (vr - msb(vr) + root) % p
		msg := c.Recv(parent, tagBcast)
		data = msg.Data
	}
	for bit := 1; bit < p; bit <<= 1 {
		if vr < bit && vr+bit < p {
			dst := (vr + bit + root) % p
			c.Send(dst, tagBcast, data)
		}
	}
	return data
}

// Gather collects each rank's data at root. At the root the returned
// slice has one entry per rank (the root's own at its index); other
// ranks get nil.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	p := c.Size()
	if c.rank != root {
		c.Send(root, tagGather, data)
		return nil
	}
	out := make([][]byte, p)
	out[root] = data
	for i := 0; i < p; i++ {
		if i == root {
			continue
		}
		out[i] = c.Recv(i, tagGather).Data
	}
	return out
}

// Scatter distributes parts[i] from root to rank i and returns this
// rank's part. Non-root ranks pass nil.
func (c *Comm) Scatter(root int, parts [][]byte) []byte {
	p := c.Size()
	if c.rank == root {
		if len(parts) != p {
			panic("par: scatter needs one part per rank")
		}
		for i := 0; i < p; i++ {
			if i != root {
				c.Send(i, tagScatter, parts[i])
			}
		}
		return parts[root]
	}
	return c.Recv(root, tagScatter).Data
}

// ReduceOp combines two values.
type ReduceOp func(a, b int64) int64

// Sum is the addition reduce operator.
func Sum(a, b int64) int64 { return a + b }

// Max is the maximum reduce operator.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Min is the minimum reduce operator.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Reduce combines each rank's v with op at root; only the root's return
// value is meaningful.
func (c *Comm) Reduce(root int, v int64, op ReduceOp) int64 {
	vals := c.Gather(root, encodeInt64(v))
	if c.rank != root {
		return 0
	}
	acc := v
	for i, raw := range vals {
		if i == root {
			continue
		}
		acc = op(acc, decodeInt64(raw))
	}
	return acc
}

// Allreduce combines every rank's v with op and returns the result on
// all ranks.
func (c *Comm) Allreduce(v int64, op ReduceOp) int64 {
	r := c.Reduce(0, v, op)
	var out []byte
	if c.rank == 0 {
		out = encodeInt64(r)
	}
	return decodeInt64(c.Bcast(0, out))
}

// Alltoallv exchanges bufs[dst] from every rank to every rank using
// direct eager sends: all p−1 messages are posted before any is
// received, so a rank's receive buffers may hold up to the full
// incoming volume at once — the behaviour whose worst-case buffer
// growth the paper's customized version exists to avoid (Section 6).
// Returns recv[src] = the buffer src sent to this rank.
func (c *Comm) Alltoallv(bufs [][]byte) [][]byte {
	p := c.Size()
	if len(bufs) != p {
		panic("par: alltoallv needs one buffer per rank")
	}
	out := make([][]byte, p)
	out[c.rank] = bufs[c.rank]
	for d := 0; d < p; d++ {
		if d != c.rank {
			c.Send(d, tagAlltoall, bufs[d])
		}
	}
	for s := 0; s < p; s++ {
		if s != c.rank {
			out[s] = c.Recv(s, tagAlltoall).Data
		}
	}
	return out
}

// AlltoallvStaged is the paper's customized Alltoallv: p−1 rounds of
// pairwise exchanges (round r pairs rank i with i+r and i−r mod p), so
// at most one incoming buffer is in flight per rank at a time and
// buffer space stays O(total/p) (Section 6). Returns recv[src].
func (c *Comm) AlltoallvStaged(bufs [][]byte) [][]byte {
	p := c.Size()
	if len(bufs) != p {
		panic("par: alltoallv needs one buffer per rank")
	}
	out := make([][]byte, p)
	out[c.rank] = bufs[c.rank]
	for r := 1; r < p; r++ {
		dst := (c.rank + r) % p
		src := (c.rank - r + p) % p
		// Rounds share a tag but each round's source is unique, and
		// per-sender FIFO keeps repeated calls ordered.
		msg := c.SendRecv(dst, bufs[dst], src, tagSendRecv)
		out[src] = msg.Data
	}
	return out
}

// msb returns the highest power of two ≤ v (v ≥ 1).
func msb(v int) int {
	b := 1
	for b<<1 <= v {
		b <<= 1
	}
	return b
}

func encodeInt64(v int64) []byte {
	b := make([]byte, 8)
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	return b
}

func decodeInt64(b []byte) int64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return int64(u)
}
