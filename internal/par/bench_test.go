package par

import (
	"testing"

	"repro/internal/obs"
)

// commPair drives a 2-rank machine whose rank 1 echoes whatever it
// receives, handing rank 0's Comm to fn for the duration of the run.
func commPair(t testing.TB, cfg Config, fn func(c *Comm)) {
	t.Helper()
	cfg.Ranks = 2
	_, exits := RunStatus(cfg, func(c *Comm) {
		if c.Rank() == 0 {
			fn(c)
			c.Send(1, 1, nil) // stop
			return
		}
		for {
			m := c.Recv(AnySource, AnyTag)
			if m.Tag == 1 {
				return
			}
			c.Send(0, m.Tag, m.Data)
		}
	})
	for r, e := range exits {
		if !e.OK {
			t.Fatalf("rank %d died: %s", r, e.Reason)
		}
	}
}

// TestSendRecvDisabledTracerZeroAlloc pins the observability overhead
// guarantee: with no tracer configured, the Send/Recv hot path must
// not allocate. A regression here means the disabled path grew a
// per-event cost.
func TestSendRecvDisabledTracerZeroAlloc(t *testing.T) {
	data := make([]byte, 64)
	commPair(t, Config{}, func(c *Comm) {
		// Warm the mailbox queues so steady state reuses capacity.
		for i := 0; i < 32; i++ {
			c.Send(1, 7, data)
			c.Recv(1, 7)
		}
		allocs := testing.AllocsPerRun(200, func() {
			c.Send(1, 7, data)
			c.Recv(1, 7)
		})
		if allocs != 0 {
			t.Fatalf("Send+Recv with tracing disabled allocated %.1f times per op; want 0", allocs)
		}
	})
}

func benchSendRecv(b *testing.B, cfg Config) {
	data := make([]byte, 256)
	commPair(b, cfg, func(c *Comm) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Send(1, 7, data)
			c.Recv(1, 7)
		}
		b.StopTimer()
	})
}

func BenchmarkSendRecvNoTrace(b *testing.B) {
	benchSendRecv(b, Config{})
}

func BenchmarkSendRecvTraced(b *testing.B) {
	benchSendRecv(b, Config{Trace: obs.NewTracer(2, 1<<12)})
}

// Sanity check that the traced benchmark configuration actually
// records events (so BenchmarkSendRecvTraced measures real emission).
func TestTracedRunEmitsEvents(t *testing.T) {
	tr := obs.NewTracer(2, 1<<12)
	commPair(t, Config{Trace: tr}, func(c *Comm) {
		c.Send(1, 7, []byte("x"))
		c.Recv(1, 7)
	})
	if tr.TotalEvents() == 0 {
		t.Fatal("traced run recorded no events")
	}
}
