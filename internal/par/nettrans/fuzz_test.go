package nettrans

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wire"
)

// FuzzDecodeFrame drives hostile bytes through the full inbound path
// a connection exercises: the length+CRC frame envelope, the protocol
// frame decoder, and the handshake validator. Nothing may panic, and
// every frame that round-trips must decode to what was encoded.
func FuzzDecodeFrame(f *testing.F) {
	for _, s := range seedFrames() {
		f.Add(wire.EncodeFrame(encodeFrame(s)))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Envelope layer: arbitrary bytes must decode or be rejected,
		// never panic; only CRC-clean payloads reach the frame decoder.
		payload, ok := wire.DecodeFrame(data)
		if ok {
			fr, err := decodeFrame(payload)
			if err == nil {
				_ = checkHello(fr, 0, 4, 1)
				// Round-trip: a frame the decoder accepts re-encodes
				// to the exact payload (canonical form is unique).
				if got := encodeFrame(fr); !bytes.Equal(got, payload) {
					t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, payload)
				}
			}
		}
		// Raw frame decoder must also hold without the envelope.
		if fr, err := decodeFrame(data); err == nil {
			_ = checkHello(fr, 1, 2, 7)
			if got := encodeFrame(fr); !bytes.Equal(got, data) {
				t.Fatalf("re-encode mismatch (raw):\n got %x\nwant %x", got, data)
			}
		}
	})
}

// seedFrames covers every frame kind plus edge-case field values.
func seedFrames() []frame {
	return []frame{
		{Kind: kHello, Src: 1, Dst: 0, Size: 4, Epoch: 1},
		{Kind: kHello, Src: 3, Dst: 2, Size: 4, Epoch: ^uint64(0)},
		{Kind: kWelcome, Epoch: 1, Seq: 42},
		{Kind: kData, Src: 1, Dst: 0, Tag: 5, Seq: 7, Sync: true, Data: []byte("payload")},
		{Kind: kData, Src: 0, Dst: 3, Tag: -1, Seq: 1, Data: []byte{}},
		{Kind: kAck, Seq: 99},
		{Kind: kMatchAck, Seq: 100},
		{Kind: kHeartbeat},
		{Kind: kBye, Crashed: true, Reason: "panic: boom"},
		{Kind: kBye},
	}
}

// TestWriteFuzzCorpus regenerates the committed FuzzDecodeFrame seed
// corpus (run explicitly with WRITE_FUZZ_CORPUS=1; skipped otherwise).
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	names := []string{
		"seed-hello", "seed-hello-maxepoch", "seed-welcome", "seed-data-sync",
		"seed-data-empty", "seed-ack", "seed-matchack", "seed-heartbeat",
		"seed-bye-crashed", "seed-bye-clean",
	}
	for i, fr := range seedFrames() {
		write(names[i], wire.EncodeFrame(encodeFrame(fr)))
	}
	// Envelope with a corrupted CRC over a valid payload.
	env := wire.EncodeFrame(encodeFrame(frame{Kind: kHeartbeat}))
	env[4] ^= 0xff
	write("seed-bad-crc", env)
	// Bare frame payloads without the envelope.
	write("seed-raw-data", encodeFrame(frame{Kind: kData, Src: 2, Dst: 1, Tag: 3, Seq: 9, Data: []byte("x")}))
	write("seed-unknown-kind", []byte{0x63})
	write("seed-truncated-hello", encodeFrame(frame{Kind: kHello, Src: 1, Dst: 0, Size: 4, Epoch: 1})[:3])
}
