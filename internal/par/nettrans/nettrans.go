package nettrans

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/par"
	"repro/internal/wire"
)

// Config describes one rank's endpoint of a multi-process machine.
type Config struct {
	// Rank and Size identify this process within the machine.
	Rank, Size int
	// Network is "tcp" (loopback or real) or "unix".
	Network string
	// Listen is the address to listen on. Empty picks an ephemeral
	// endpoint: 127.0.0.1:0 for tcp, a socket under RegistryDir for
	// unix. The bound address is available from Addr.
	Listen string
	// Peers, when non-empty, is the static address of every rank
	// (index = rank; this rank's own entry is ignored). When a peer's
	// entry is empty the transport falls back to the registry.
	Peers []string
	// RegistryDir enables file-based rendezvous: every rank publishes
	// its bound address there and looks peers up by polling. Required
	// when Peers does not name every rank.
	RegistryDir string
	// Epoch guards against stale incarnations: handshakes and registry
	// entries from a different epoch are rejected. The launcher picks
	// one epoch per run (and per recovery restart).
	Epoch uint64
	// Heartbeat is the idle-connection keepalive interval (default
	// 250ms).
	Heartbeat time.Duration
	// Liveness is how long a peer may stay completely silent before it
	// is declared dead (default 5s). This — or an explicit crash
	// goodbye — is the only way a peer dies; connection loss alone
	// triggers reconnection, not failure.
	Liveness time.Duration
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// RendezvousTimeout bounds the wait for a peer's address to appear
	// in the registry (default 30s).
	RendezvousTimeout time.Duration
	// DrainTimeout bounds Close's wait for in-flight messages to be
	// acknowledged (default 5s).
	DrainTimeout time.Duration
	// MaxFrame bounds accepted frame payloads (default 256 MiB) so a
	// corrupt length prefix cannot drive an allocation.
	MaxFrame int
}

func (c Config) withDefaults() Config {
	if c.Network == "" {
		c.Network = "tcp"
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 250 * time.Millisecond
	}
	if c.Liveness <= 0 {
		c.Liveness = 5 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RendezvousTimeout <= 0 {
		c.RendezvousTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 256 << 20
	}
	return c
}

// safeConn serializes frame writes on one connection (the acceptor's
// read loop, match callbacks and heartbeat ticker all write acks on
// the same socket).
type safeConn struct {
	mu   sync.Mutex
	c    net.Conn
	mf   int
	wdl  time.Duration
	dead atomic.Bool
}

func newSafeConn(c net.Conn, maxFrame int, writeDeadline time.Duration) *safeConn {
	return &safeConn{c: c, mf: maxFrame, wdl: writeDeadline}
}

func (s *safeConn) write(f frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead.Load() {
		return errors.New("nettrans: connection closed")
	}
	s.c.SetWriteDeadline(time.Now().Add(s.wdl))
	return writeFrame(s.c, f)
}

func (s *safeConn) read() (frame, error) {
	return readFrame(s.c, s.mf)
}

func (s *safeConn) close() {
	if s.dead.CompareAndSwap(false, true) {
		s.c.Close()
	}
}

// outMsg is one queued outbound envelope awaiting acknowledgement.
type outMsg struct {
	env par.Envelope
	ack chan struct{} // rendezvous completion; nil for eager sends
}

// peer is all per-remote-rank state: the outbound queue this rank's
// dialer connection drains, and the inbound bookkeeping the acceptor
// side maintains for deduplication and match acknowledgements.
type peer struct {
	rank int

	// Outbound (we dial them): guarded by mu.
	mu       sync.Mutex
	sendq    []outMsg // unacked envelopes in sequence order
	unsent   int      // index of first entry not yet written on the current connection
	pending  map[uint64]chan struct{}
	acked    uint64 // highest cumulatively acknowledged sequence number
	curOut   *safeConn
	dead     bool
	finished bool
	reason   string
	notify   chan struct{} // wakes the writer (capacity 1)

	// Inbound (they dial us): guarded by inMu.
	inMu          sync.Mutex
	lastDelivered uint64 // dedupe horizon: highest sequence delivered
	curIn         *safeConn
	pendingMacks  []uint64 // match-acks owed while disconnected

	lastHeard atomic.Int64 // unix nanos of the last frame from this peer
}

func (p *peer) heard() { p.lastHeard.Store(time.Now().UnixNano()) }

// gone reports whether the peer needs no further outbound effort.
func (p *peer) gone() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead || p.finished
}

// Transport is the socket implementation of par.Transport. One
// Transport hosts one rank; New binds the listener and publishes the
// address, Attach (called by par.RunRank) starts the mesh.
type Transport struct {
	cfg  Config
	ln   net.Listener
	addr string
	sink par.Sink

	peers []*peer // index = rank; nil at our own rank

	mu       sync.Mutex
	closed   bool
	attached bool
	crashed  bool // CrashNotify ran: Close must not send a clean goodbye
	done     chan struct{}
	wg       sync.WaitGroup
	drained  *sync.Cond
}

// New binds this rank's listener and publishes its address. The
// transport does not dial or accept until Attach.
func New(cfg Config) (*Transport, error) {
	cfg = cfg.withDefaults()
	if cfg.Size < 1 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("nettrans: rank %d out of range for size %d", cfg.Rank, cfg.Size)
	}
	if cfg.Network != "tcp" && cfg.Network != "unix" {
		return nil, fmt.Errorf("nettrans: unsupported network %q", cfg.Network)
	}
	listen := cfg.Listen
	if listen == "" {
		switch cfg.Network {
		case "tcp":
			listen = "127.0.0.1:0"
		case "unix":
			if cfg.RegistryDir == "" {
				return nil, errors.New("nettrans: unix network needs -listen or a registry dir")
			}
			listen = fmt.Sprintf("%s/sock-%d-%d", cfg.RegistryDir, cfg.Epoch, cfg.Rank)
		}
	}
	ln, err := net.Listen(cfg.Network, listen)
	if err != nil {
		return nil, fmt.Errorf("nettrans: listen: %w", err)
	}
	t := &Transport{
		cfg:   cfg,
		ln:    ln,
		addr:  ln.Addr().String(),
		peers: make([]*peer, cfg.Size),
		done:  make(chan struct{}),
	}
	t.drained = sync.NewCond(&t.mu)
	for r := 0; r < cfg.Size; r++ {
		if r == cfg.Rank {
			continue
		}
		p := &peer{rank: r, pending: make(map[uint64]chan struct{}), notify: make(chan struct{}, 1)}
		p.heard() // silence is measured from transport start
		t.peers[r] = p
	}
	if cfg.RegistryDir != "" {
		if err := publishAddr(cfg.RegistryDir, cfg.Rank, cfg.Network, t.addr, cfg.Epoch); err != nil {
			ln.Close()
			return nil, err
		}
	}
	return t, nil
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.addr }

// Attach starts the mesh: the accept loop, one dialer per peer, and
// the liveness monitor.
func (t *Transport) Attach(sink par.Sink) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("nettrans: transport closed")
	}
	if t.attached {
		t.mu.Unlock()
		return errors.New("nettrans: already attached")
	}
	t.attached = true
	t.sink = sink
	t.mu.Unlock()

	t.wg.Add(1)
	go t.acceptLoop()
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		t.wg.Add(1)
		go t.dialLoop(p)
	}
	t.wg.Add(1)
	go t.monitor()
	return nil
}

func (t *Transport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// Deliver queues e for its destination; the per-peer writer ships it.
// It never blocks on the network.
func (t *Transport) Deliver(e par.Envelope, matched chan struct{}) error {
	if e.Dst < 0 || e.Dst >= len(t.peers) || t.peers[e.Dst] == nil {
		return fmt.Errorf("nettrans: deliver to invalid rank %d", e.Dst)
	}
	if t.isClosed() {
		return errors.New("nettrans: transport closed")
	}
	p := t.peers[e.Dst]
	p.mu.Lock()
	if p.dead || p.finished {
		// The in-process rule: a message to a dead rank vanishes, and
		// its rendezvous ack releases immediately so the sender cannot
		// wedge. A cleanly-finished peer gets the same treatment — it
		// will never receive again.
		p.mu.Unlock()
		if matched != nil {
			close(matched)
		}
		return nil
	}
	p.sendq = append(p.sendq, outMsg{env: e, ack: matched})
	if matched != nil {
		p.pending[e.Seq] = matched
	}
	p.mu.Unlock()
	wake(p.notify)
	return nil
}

// Probe reports whether rank r is believed alive. Cleanly-finished
// peers are alive: finishing the SPMD body is not a failure.
func (t *Transport) Probe(r int) bool {
	if r == t.cfg.Rank {
		return true
	}
	if r < 0 || r >= len(t.peers) || t.peers[r] == nil {
		return false
	}
	p := t.peers[r]
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.dead
}

// CrashNotify announces this rank's own death to every peer, so they
// fail-stop promptly instead of waiting out the liveness timeout. For
// peers with no live connection it attempts one direct dial — the
// dying rank's last words. Best-effort: an unreachable peer finds out
// via timeout. After CrashNotify, Close will not send the clean
// goodbye (a crashed rank must never be mistaken for a finished one).
func (t *Transport) CrashNotify(reason string) {
	t.mu.Lock()
	t.crashed = true
	t.mu.Unlock()
	f := frame{Kind: kBye, Crashed: true, Reason: reason}
	for _, p := range t.peers {
		if p == nil || p.gone() {
			continue
		}
		p.mu.Lock()
		out := p.curOut
		p.mu.Unlock()
		p.inMu.Lock()
		in := p.curIn
		p.inMu.Unlock()
		if out == nil && in == nil {
			if sc, _, err := t.connect(p); err == nil {
				sc.write(f)
				sc.close()
			}
			continue
		}
		if out != nil {
			out.write(f)
		}
		if in != nil && in != out {
			in.write(f)
		}
	}
}

func (t *Transport) sayBye(f frame) {
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		out := p.curOut
		p.mu.Unlock()
		if out != nil {
			out.write(f)
		}
		p.inMu.Lock()
		in := p.curIn
		p.inMu.Unlock()
		if in != nil && in != out {
			in.write(f)
		}
	}
}

// Close drains the outbound queues (bounded by DrainTimeout), says a
// clean goodbye, and tears the mesh down. A cleanly-closed rank is not
// reported dead to its peers.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	crashed := t.crashed
	if !crashed {
		// Drain: wait until every peer's queue is fully acknowledged
		// (or the peer is gone), so the last messages of a finishing
		// rank are not lost with the sockets. A crashed rank skips
		// this — fail-stop means its unsent messages die with it.
		deadline := time.Now().Add(t.cfg.DrainTimeout)
		timer := time.AfterFunc(t.cfg.DrainTimeout, func() {
			t.mu.Lock()
			t.drained.Broadcast()
			t.mu.Unlock()
		})
		for !t.drainedLocked() && time.Now().Before(deadline) {
			t.drained.Wait()
		}
		timer.Stop()
	}
	t.closed = true
	t.mu.Unlock()

	if !crashed {
		t.sayBye(frame{Kind: kBye})
	}
	close(t.done)
	t.ln.Close()
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		out := p.curOut
		for _, ch := range p.pending {
			close(ch)
		}
		p.pending = map[uint64]chan struct{}{}
		p.mu.Unlock()
		if out != nil {
			out.close()
		}
		p.inMu.Lock()
		in := p.curIn
		p.inMu.Unlock()
		if in != nil {
			in.close()
		}
		wake(p.notify)
	}
	t.wg.Wait()
	return nil
}

// drainedLocked reports whether every live peer's queue is empty and
// every rendezvous acknowledged. Caller holds t.mu.
func (t *Transport) drainedLocked() bool {
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		ok := p.dead || p.finished || (len(p.sendq) == 0 && len(p.pending) == 0)
		p.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// checkDrained wakes a Close blocked in drain.
func (t *Transport) checkDrained() {
	t.mu.Lock()
	t.drained.Broadcast()
	t.mu.Unlock()
}

// declareDead fail-stops a peer: its queue is dropped, every pending
// rendezvous releases, and the runtime's dead-rank machinery fires.
func (t *Transport) declareDead(p *peer, reason string) {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	p.reason = reason
	p.sendq = nil
	p.unsent = 0
	for _, ch := range p.pending {
		close(ch)
	}
	p.pending = map[uint64]chan struct{}{}
	out := p.curOut
	p.mu.Unlock()
	if out != nil {
		out.close()
	}
	wake(p.notify)
	t.checkDrained()
	t.sink.PeerDead(p.rank, reason)
}

// markFinished records a clean goodbye: stop dialing, release pending
// rendezvous sends (the peer will never match them), but do not report
// a death — a finished rank is not a failed rank.
func (t *Transport) markFinished(p *peer) {
	p.mu.Lock()
	if p.dead || p.finished {
		p.mu.Unlock()
		return
	}
	p.finished = true
	p.sendq = nil
	p.unsent = 0
	for _, ch := range p.pending {
		close(ch)
	}
	p.pending = map[uint64]chan struct{}{}
	out := p.curOut
	p.mu.Unlock()
	if out != nil {
		out.close()
	}
	wake(p.notify)
	t.checkDrained()
}

// monitor is the failure detector: a peer that has been completely
// silent — no data, acks or heartbeats on any connection — for longer
// than the liveness timeout is declared dead.
func (t *Transport) monitor() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		for _, p := range t.peers {
			if p == nil || p.gone() {
				continue
			}
			if silent := now.Sub(time.Unix(0, p.lastHeard.Load())); silent > t.cfg.Liveness {
				t.declareDead(p, fmt.Sprintf("liveness timeout: silent for %v", silent.Round(time.Millisecond)))
			}
		}
	}
}

// resolve finds rank r's address from the static peer list or the
// registry.
func (t *Transport) resolve(r int) (string, error) {
	if r < len(t.cfg.Peers) && t.cfg.Peers[r] != "" {
		return t.cfg.Peers[r], nil
	}
	if t.cfg.RegistryDir == "" {
		return "", fmt.Errorf("nettrans: no address for rank %d and no registry", r)
	}
	return waitAddr(t.cfg.RegistryDir, r, t.cfg.Epoch, time.Now().Add(t.cfg.RendezvousTimeout), t.done)
}

// dialLoop maintains this rank's outbound connection to one peer:
// dial, handshake, resume from the peer's acknowledged sequence
// number, pump the queue; on any connection error, reconnect with
// capped jittered backoff. It exits when the peer is dead or finished
// or the transport closes.
func (t *Transport) dialLoop(p *peer) {
	defer t.wg.Done()
	bo := backoff.Policy{Base: 25 * time.Millisecond, Cap: time.Second, MaxDoublings: backoff.DefaultMaxDoublings, Jitter: 0.25}
	rng := rand.New(rand.NewSource(int64(t.cfg.Rank)<<32 ^ int64(p.rank) ^ time.Now().UnixNano()))
	attempt := 0
	for {
		if t.isClosed() || p.gone() {
			return
		}
		sc, lastSeq, err := t.connect(p)
		if err != nil {
			if !bo.Sleep(attempt, rng, t.done) {
				return
			}
			attempt++
			continue
		}
		attempt = 0
		t.runOutbound(p, sc, lastSeq)
		sc.close()
	}
}

// connect dials the peer and performs the hello/welcome handshake,
// returning the connection and the peer's cumulative delivery horizon
// to resume from.
func (t *Transport) connect(p *peer) (*safeConn, uint64, error) {
	addr, err := t.resolve(p.rank)
	if err != nil {
		return nil, 0, err
	}
	c, err := net.DialTimeout(t.cfg.Network, addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, 0, err
	}
	sc := newSafeConn(c, t.cfg.MaxFrame, t.cfg.Liveness)
	hello := frame{Kind: kHello, Src: t.cfg.Rank, Dst: p.rank, Size: t.cfg.Size, Epoch: t.cfg.Epoch}
	if err := sc.write(hello); err != nil {
		sc.close()
		return nil, 0, err
	}
	c.SetReadDeadline(time.Now().Add(t.cfg.DialTimeout))
	w, err := sc.read()
	c.SetReadDeadline(time.Time{})
	if err != nil {
		sc.close()
		return nil, 0, err
	}
	if w.Kind != kWelcome || w.Epoch != t.cfg.Epoch {
		sc.close()
		return nil, 0, fmt.Errorf("nettrans: bad welcome from rank %d", p.rank)
	}
	return sc, w.Seq, nil
}

// runOutbound owns one live outbound connection: a reader goroutine
// consumes acks, match-acks and heartbeats while the writer drains the
// queue (resending everything past the peer's acknowledged horizon)
// and keeps the connection warm with heartbeats. Returns on connection
// error or shutdown.
func (t *Transport) runOutbound(p *peer, sc *safeConn, lastSeq uint64) {
	p.mu.Lock()
	if p.dead || p.finished {
		p.mu.Unlock()
		return
	}
	p.curOut = sc
	t.pruneAckedLocked(p, lastSeq)
	p.unsent = 0 // retransmit everything unacknowledged on the fresh connection
	p.mu.Unlock()
	t.checkDrained()

	connDone := make(chan struct{})
	var readErr atomic.Bool
	go func() {
		defer close(connDone)
		for {
			f, err := sc.read()
			if err != nil {
				readErr.Store(true)
				return
			}
			p.heard()
			switch f.Kind {
			case kAck:
				p.mu.Lock()
				t.pruneAckedLocked(p, f.Seq)
				p.mu.Unlock()
				t.checkDrained()
			case kMatchAck:
				p.mu.Lock()
				if ch, ok := p.pending[f.Seq]; ok {
					delete(p.pending, f.Seq)
					close(ch)
				}
				p.mu.Unlock()
				t.checkDrained()
			case kHeartbeat:
			case kBye:
				if f.Crashed {
					t.declareDead(p, "peer crashed: "+f.Reason)
				} else {
					t.markFinished(p)
				}
				return
			}
		}
	}()

	hb := time.NewTicker(t.cfg.Heartbeat)
	defer hb.Stop()
	for {
		// Ship everything queued but not yet written on this connection.
		for {
			p.mu.Lock()
			if p.dead || p.finished || p.unsent >= len(p.sendq) {
				p.mu.Unlock()
				break
			}
			m := p.sendq[p.unsent]
			p.unsent++
			p.mu.Unlock()
			f := frame{Kind: kData, Src: m.env.Src, Dst: m.env.Dst, Tag: m.env.Tag, Seq: m.env.Seq, Sync: m.env.Sync, Data: m.env.Data}
			if err := sc.write(f); err != nil {
				t.clearCurOut(p, sc)
				return
			}
		}
		if p.gone() {
			t.clearCurOut(p, sc)
			return
		}
		select {
		case <-t.done:
			t.clearCurOut(p, sc)
			return
		case <-connDone:
			t.clearCurOut(p, sc)
			return
		case <-p.notify:
		case <-hb.C:
			if err := sc.write(frame{Kind: kHeartbeat}); err != nil {
				t.clearCurOut(p, sc)
				return
			}
		}
		if readErr.Load() {
			t.clearCurOut(p, sc)
			return
		}
	}
}

func (t *Transport) clearCurOut(p *peer, sc *safeConn) {
	p.mu.Lock()
	if p.curOut == sc {
		p.curOut = nil
	}
	p.mu.Unlock()
}

// pruneAckedLocked drops queue entries the peer has cumulatively
// acknowledged as delivered. A rendezvous entry leaves the queue when
// delivered (it sits safely in the peer's mailbox and is never resent)
// but its completion channel stays pending until the match-ack.
// Caller holds p.mu.
func (t *Transport) pruneAckedLocked(p *peer, acked uint64) {
	if acked <= p.acked {
		return
	}
	p.acked = acked
	i := 0
	for i < len(p.sendq) && p.sendq[i].env.Seq <= acked {
		i++
	}
	if i > 0 {
		p.sendq = append([]outMsg(nil), p.sendq[i:]...)
		p.unsent -= i
		if p.unsent < 0 {
			p.unsent = 0
		}
	}
}

// acceptLoop admits inbound connections from peers.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.handleInbound(c)
	}
}

// handleInbound serves one accepted connection: validate the hello,
// welcome the peer with its resume horizon, then deliver data frames
// (deduplicated) and acknowledge them. The read loop runs until the
// connection drops; delivery order on one connection is FIFO, so the
// runtime sees exactly the in-process ordering guarantees.
func (t *Transport) handleInbound(c net.Conn) {
	defer t.wg.Done()
	sc := newSafeConn(c, t.cfg.MaxFrame, t.cfg.Liveness)
	c.SetReadDeadline(time.Now().Add(t.cfg.DialTimeout))
	hello, err := sc.read()
	c.SetReadDeadline(time.Time{})
	if err != nil {
		sc.close()
		return
	}
	if err := checkHello(hello, t.cfg.Rank, t.cfg.Size, t.cfg.Epoch); err != nil {
		sc.close()
		return
	}
	p := t.peers[hello.Src]
	p.heard()

	p.inMu.Lock()
	old := p.curIn
	p.curIn = sc
	welcome := frame{Kind: kWelcome, Epoch: t.cfg.Epoch, Seq: p.lastDelivered}
	macks := p.pendingMacks
	p.pendingMacks = nil
	p.inMu.Unlock()
	if old != nil {
		old.close()
	}
	if sc.write(welcome) != nil {
		t.clearCurIn(p, sc)
		sc.close()
		return
	}
	// Match-acks owed from before the reconnect flush first, so the
	// sender's rendezvous completions are never lost to a dropped
	// connection.
	for _, seq := range macks {
		if sc.write(frame{Kind: kMatchAck, Seq: seq}) != nil {
			t.clearCurIn(p, sc)
			sc.close()
			return
		}
	}

	// Keep the reply direction warm too: the dialer measures our
	// liveness from these frames when it has nothing to send.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		tick := time.NewTicker(t.cfg.Heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				if sc.write(frame{Kind: kHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	for {
		f, err := sc.read()
		if err != nil {
			t.clearCurIn(p, sc)
			sc.close()
			return
		}
		p.heard()
		switch f.Kind {
		case kData:
			p.inMu.Lock()
			fresh := f.Seq > p.lastDelivered
			if fresh {
				p.lastDelivered = f.Seq
			}
			p.inMu.Unlock()
			if fresh {
				env := par.Envelope{Src: f.Src, Dst: f.Dst, Tag: f.Tag, Seq: f.Seq, Data: f.Data, Sync: f.Sync}
				var matched func()
				if f.Sync {
					seq := f.Seq
					matched = func() { t.sendMack(p, seq) }
				}
				t.sink.Deliver(env, matched)
			}
			// Cumulative ack — covers duplicates too, in case the
			// original ack was lost with a connection.
			p.inMu.Lock()
			ackSeq := p.lastDelivered
			p.inMu.Unlock()
			if sc.write(frame{Kind: kAck, Seq: ackSeq}) != nil {
				t.clearCurIn(p, sc)
				sc.close()
				return
			}
		case kHeartbeat:
		case kBye:
			t.clearCurIn(p, sc)
			if f.Crashed {
				t.declareDead(p, "peer crashed: "+f.Reason)
			} else {
				t.markFinished(p)
			}
			sc.close()
			return
		}
	}
}

func (t *Transport) clearCurIn(p *peer, sc *safeConn) {
	p.inMu.Lock()
	if p.curIn == sc {
		p.curIn = nil
	}
	p.inMu.Unlock()
}

// sendMack reports a rendezvous match back to the sender, on the
// current connection if one is up, otherwise queued for the flush that
// follows the next handshake.
func (t *Transport) sendMack(p *peer, seq uint64) {
	p.inMu.Lock()
	sc := p.curIn
	if sc == nil {
		p.pendingMacks = append(p.pendingMacks, seq)
		p.inMu.Unlock()
		return
	}
	p.inMu.Unlock()
	if sc.write(frame{Kind: kMatchAck, Seq: seq}) != nil {
		p.inMu.Lock()
		p.pendingMacks = append(p.pendingMacks, seq)
		p.inMu.Unlock()
	}
}

// wake signals a capacity-1 notification channel without blocking.
func wake(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// writeFrame/readFrame put protocol frames inside the wire package's
// length + CRC32C envelope — the identical bytes the in-process
// reliable link frames and corrupts in simulation.
func writeFrame(c net.Conn, f frame) error {
	return wire.WriteFrame(c, encodeFrame(f))
}

func readFrame(c net.Conn, maxLen int) (frame, error) {
	p, err := wire.ReadFrame(c, maxLen)
	if err != nil {
		return frame{}, err
	}
	return decodeFrame(p)
}
