package nettrans

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/par"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []frame{
		{Kind: kHello, Src: 3, Dst: 0, Size: 8, Epoch: 42},
		{Kind: kWelcome, Epoch: 42, Seq: 17},
		{Kind: kData, Src: 1, Dst: 2, Tag: -12, Seq: 99, Sync: true, Data: []byte("payload")},
		{Kind: kData, Src: 0, Dst: 1, Tag: 7, Seq: 1, Data: nil},
		{Kind: kAck, Seq: 5},
		{Kind: kMatchAck, Seq: 6},
		{Kind: kHeartbeat},
		{Kind: kBye, Crashed: true, Reason: "test crash"},
		{Kind: kBye},
	}
	for _, f := range frames {
		got, err := decodeFrame(encodeFrame(f))
		if err != nil {
			t.Fatalf("decode(%+v): %v", f, err)
		}
		if got.Kind != f.Kind || got.Src != f.Src || got.Dst != f.Dst || got.Size != f.Size ||
			got.Epoch != f.Epoch || got.Seq != f.Seq || got.Tag != f.Tag || got.Sync != f.Sync ||
			got.Crashed != f.Crashed || got.Reason != f.Reason || !bytes.Equal(got.Data, f.Data) {
			t.Fatalf("round trip: got %+v, want %+v", got, f)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                               // unknown kind
		{99},                              // unknown kind
		{kHello},                          // truncated hello
		{kData, 2, 4},                     // truncated data
		append(encodeFrame(frame{Kind: kHeartbeat}), 0xff), // trailing bytes
		{kAck, 0x80},                      // truncated uvarint
		{kBye, 2},                         // invalid bool
	}
	for i, p := range cases {
		if _, err := decodeFrame(p); err == nil {
			t.Errorf("case %d (% x): decode accepted malformed frame", i, p)
		}
	}
}

func TestCheckHello(t *testing.T) {
	good := frame{Kind: kHello, Src: 1, Dst: 0, Size: 4, Epoch: 9}
	if err := checkHello(good, 0, 4, 9); err != nil {
		t.Fatalf("good hello rejected: %v", err)
	}
	bad := []frame{
		{Kind: kData, Src: 1, Dst: 0, Size: 4, Epoch: 9},  // wrong kind
		{Kind: kHello, Src: 1, Dst: 2, Size: 4, Epoch: 9}, // wrong destination
		{Kind: kHello, Src: 1, Dst: 0, Size: 5, Epoch: 9}, // wrong world size
		{Kind: kHello, Src: 0, Dst: 0, Size: 4, Epoch: 9}, // self-dial
		{Kind: kHello, Src: 9, Dst: 0, Size: 4, Epoch: 9}, // rank out of range
		{Kind: kHello, Src: 1, Dst: 0, Size: 4, Epoch: 8}, // stale epoch
	}
	for i, f := range bad {
		if err := checkHello(f, 0, 4, 9); err == nil {
			t.Errorf("case %d: bad hello %+v accepted", i, f)
		}
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, _, _, ok, err := readAddr(dir, 0); err != nil || ok {
		t.Fatalf("unpublished rank: ok=%v err=%v", ok, err)
	}
	if err := publishAddr(dir, 0, "tcp", "127.0.0.1:9999", 3); err != nil {
		t.Fatal(err)
	}
	net, addr, epoch, ok, err := readAddr(dir, 0)
	if err != nil || !ok || net != "tcp" || addr != "127.0.0.1:9999" || epoch != 3 {
		t.Fatalf("readAddr: %q %q %d ok=%v err=%v", net, addr, epoch, ok, err)
	}
	// Re-publish (a recovered incarnation) overwrites atomically.
	if err := publishAddr(dir, 0, "tcp", "127.0.0.1:8888", 4); err != nil {
		t.Fatal(err)
	}
	got, err := waitAddr(dir, 0, 4, time.Now().Add(time.Second), nil)
	if err != nil || got != "127.0.0.1:8888" {
		t.Fatalf("waitAddr: %q err=%v", got, err)
	}
	// Waiting for an epoch that never appears times out.
	if _, err := waitAddr(dir, 0, 99, time.Now().Add(50*time.Millisecond), nil); err == nil {
		t.Fatal("waitAddr accepted stale epoch")
	}
}

// world builds n connected transports sharing a registry directory.
func world(t *testing.T, n int, network string, tune func(*Config)) []*Transport {
	t.Helper()
	dir := t.TempDir()
	ts := make([]*Transport, n)
	for r := 0; r < n; r++ {
		cfg := Config{
			Rank: r, Size: n, Network: network, RegistryDir: dir, Epoch: 1,
			Heartbeat: 50 * time.Millisecond, Liveness: 10 * time.Second,
			DrainTimeout: 3 * time.Second,
		}
		if tune != nil {
			tune(&cfg)
		}
		tr, err := New(cfg)
		if err != nil {
			t.Fatalf("New(rank %d): %v", r, err)
		}
		ts[r] = tr
		t.Cleanup(func() { tr.Close() })
	}
	return ts
}

// runWorld runs one par.RunRank per transport concurrently and
// returns per-rank exits. Each rank closes its transport after its
// body returns, as a real per-process launcher would.
func runWorld(t *testing.T, ts []*Transport, body func(c *par.Comm)) []par.Exit {
	t.Helper()
	n := len(ts)
	exits := make([]par.Exit, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, exits[r] = par.RunRank(par.Config{Ranks: n}, r, ts[r], body)
			ts[r].Close()
		}(r)
	}
	wg.Wait()
	return exits
}

func TestPointToPointTCP(t *testing.T) {
	ts := world(t, 2, "tcp", nil)
	exits := runWorld(t, ts, func(c *par.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []byte("hello from zero"))
			m := c.Recv(1, 6)
			if string(m.Data) != "hello from one" {
				panic("rank 0 got " + string(m.Data))
			}
		} else {
			m := c.Recv(0, 5)
			if string(m.Data) != "hello from zero" {
				panic("rank 1 got " + string(m.Data))
			}
			c.Send(0, 6, []byte("hello from one"))
		}
	})
	for r, e := range exits {
		if !e.OK {
			t.Fatalf("rank %d: %+v", r, e)
		}
	}
}

func TestRendezvousSsend(t *testing.T) {
	ts := world(t, 2, "tcp", nil)
	var order []string
	var mu sync.Mutex
	note := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }
	exits := runWorld(t, ts, func(c *par.Comm) {
		if c.Rank() == 0 {
			c.Ssend(1, 3, []byte("sync payload"))
			note("ssend returned")
		} else {
			time.Sleep(200 * time.Millisecond) // let the Ssend arrive unmatched
			note("receiving")
			m := c.Recv(0, 3)
			if string(m.Data) != "sync payload" {
				panic("bad payload")
			}
		}
	})
	for r, e := range exits {
		if !e.OK {
			t.Fatalf("rank %d: %+v", r, e)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "receiving" {
		t.Fatalf("Ssend completed before the receive matched: %v", order)
	}
}

func TestCollectivesFourRanksUnix(t *testing.T) {
	ts := world(t, 4, "unix", nil)
	exits := runWorld(t, ts, func(c *par.Comm) {
		sum := c.Allreduce(int64(c.Rank()+1), par.Sum)
		if sum != 10 {
			panic(fmt.Sprintf("rank %d: allreduce got %d, want 10", c.Rank(), sum))
		}
		out := make([][]byte, c.Size())
		for i := range out {
			out[i] = []byte{byte(c.Rank()), byte(i)}
		}
		in := c.AlltoallvStaged(out)
		for src, b := range in {
			if len(b) != 2 || b[0] != byte(src) || b[1] != byte(c.Rank()) {
				panic(fmt.Sprintf("rank %d: bad alltoallv cell from %d: %v", c.Rank(), src, b))
			}
		}
	})
	for r, e := range exits {
		if !e.OK {
			t.Fatalf("rank %d: %+v", r, e)
		}
	}
}

func TestReconnectResumesWithoutDuplicates(t *testing.T) {
	ts := world(t, 2, "tcp", nil)
	const n = 200
	exits := runWorld(t, ts, func(c *par.Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 1, []byte{byte(i), byte(i >> 8)})
				if i == n/2 {
					// Sever rank 0's outbound connection mid-stream;
					// the dialer must reconnect and resume from the
					// last ack without duplicating delivery.
					p := ts[0].peers[1]
					p.mu.Lock()
					sc := p.curOut
					p.mu.Unlock()
					if sc != nil {
						sc.close()
					}
				}
			}
			done := c.Recv(1, 2)
			if string(done.Data) != "ok" {
				panic("receiver failed: " + string(done.Data))
			}
		} else {
			for i := 0; i < n; i++ {
				m := c.Recv(0, 1)
				got := int(m.Data[0]) | int(m.Data[1])<<8
				if got != i {
					c.Send(0, 2, []byte(fmt.Sprintf("message %d arrived as %d", i, got)))
					return
				}
			}
			c.Send(0, 2, []byte("ok"))
		}
	})
	for r, e := range exits {
		if !e.OK {
			t.Fatalf("rank %d: %+v", r, e)
		}
	}
}

func TestCrashNotifyTriggersFailStop(t *testing.T) {
	ts := world(t, 2, "tcp", nil)
	exits := runWorld(t, ts, func(c *par.Comm) {
		if c.Rank() == 1 {
			c.Send(0, 1, []byte("alive"))
			panic("deliberate crash")
		}
		c.Recv(1, 1)
		// The peer now dies; a blocking Recv must cascade instead of
		// hanging, exactly like the in-process dead-rank rule.
		c.Recv(1, 1)
	})
	if exits[0].OK {
		t.Fatal("rank 0 should have cascaded on the dead peer")
	}
	if exits[1].OK {
		t.Fatal("rank 1 should have crashed")
	}
	if ts[0].Probe(1) {
		t.Fatal("rank 0 still believes rank 1 is alive")
	}
}

func TestLivenessTimeoutDetectsSilentPeer(t *testing.T) {
	// Rank 1 never attaches (its process "hangs" before starting);
	// rank 0 must declare it dead by liveness timeout and cascade out
	// of the blocking Recv rather than hang.
	dir := t.TempDir()
	mk := func(r int) *Transport {
		tr, err := New(Config{
			Rank: r, Size: 2, Network: "tcp", RegistryDir: dir, Epoch: 1,
			Heartbeat: 25 * time.Millisecond, Liveness: 500 * time.Millisecond,
			DrainTimeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	t0 := mk(0)
	_ = mk(1) // published but never attached: silent forever
	start := time.Now()
	_, exit := par.RunRank(par.Config{Ranks: 2}, 0, t0, func(c *par.Comm) {
		c.Recv(1, 1)
	})
	if exit.OK {
		t.Fatal("rank 0 returned OK despite dead peer")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failure detection took %v", elapsed)
	}
}

func TestCleanFinishIsNotDeath(t *testing.T) {
	ts := world(t, 2, "tcp", nil)
	var sawDead bool
	exits := runWorld(t, ts, func(c *par.Comm) {
		if c.Rank() == 1 {
			c.Send(0, 1, []byte("bye"))
			return // finishes early and closes cleanly
		}
		c.Recv(1, 1)
		// Give rank 1 time to close; a clean goodbye must not mark it
		// dead.
		time.Sleep(300 * time.Millisecond)
		sawDead = c.RankDead(1)
	})
	for r, e := range exits {
		if !e.OK {
			t.Fatalf("rank %d: %+v", r, e)
		}
	}
	if sawDead {
		t.Fatal("cleanly-finished rank was reported dead")
	}
}

func TestDrainDeliversTrailingSends(t *testing.T) {
	// A rank that fires off eager sends and immediately closes must
	// not lose them: Close drains until the peer acks.
	ts := world(t, 2, "tcp", nil)
	exits := runWorld(t, ts, func(c *par.Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 50; i++ {
				c.Send(1, 1, []byte{byte(i)})
			}
			return
		}
		time.Sleep(100 * time.Millisecond) // rank 0 is already closing
		for i := 0; i < 50; i++ {
			m := c.Recv(0, 1)
			if m.Data[0] != byte(i) {
				panic(fmt.Sprintf("message %d arrived as %d", i, m.Data[0]))
			}
		}
	})
	for r, e := range exits {
		if !e.OK {
			t.Fatalf("rank %d: %+v", r, e)
		}
	}
}
