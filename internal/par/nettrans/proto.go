// Package nettrans is the socket backend for the par runtime: each
// rank is its own OS process, and ranks exchange the same envelopes
// the in-process machine passes between mailboxes — over TCP or Unix
// sockets, framed with the wire package's length + CRC32C envelope.
//
// The design goal is that everything above the transport seam cannot
// tell the difference. Delivery is per-(src,dst) FIFO and
// exactly-once: the link protocol is at-least-once (reconnect with
// capped backoff, resume from the last cumulatively acknowledged
// sequence number) and the receiver dedupes on the sender's monotone
// sequence numbers. Failure detection is fail-stop: a peer is dead
// when it says so (crash goodbye) or goes silent past the liveness
// timeout — never merely because a connection dropped.
package nettrans

import (
	"fmt"

	"repro/internal/wire"
)

// Frame kinds. Every frame on a connection is one wire.ReadFrame
// envelope whose payload starts with a kind byte.
const (
	kHello     = byte(1) // dialer → acceptor: who I am, who I want
	kWelcome   = byte(2) // acceptor → dialer: accepted; resume after LastSeq
	kData      = byte(3) // dialer → acceptor: one runtime envelope
	kAck       = byte(4) // acceptor → dialer: cumulative delivery ack
	kMatchAck  = byte(5) // acceptor → dialer: rendezvous send was matched
	kHeartbeat = byte(6) // either direction: liveness
	kBye       = byte(7) // either direction: clean finish or crash notice
)

// frame is the decoded form of any protocol frame; which fields are
// meaningful depends on Kind.
type frame struct {
	Kind    byte
	Src     int    // hello, data
	Dst     int    // hello, data
	Size    int    // hello: world size, for cross-checking configs
	Epoch   uint64 // hello, welcome
	Seq     uint64 // welcome (lastSeq), data, ack, matchack
	Tag     int    // data
	Sync    bool   // data: rendezvous send, expects a matchack
	Data    []byte // data payload
	Crashed bool   // bye
	Reason  string // bye
}

// encodeFrame serializes f into a wire payload (without the outer
// length+CRC envelope; WriteFrame adds that).
func encodeFrame(f frame) []byte {
	b := wire.NewBuffer(16 + len(f.Data) + len(f.Reason))
	b.PutUint(uint64(f.Kind))
	switch f.Kind {
	case kHello:
		b.PutInt(f.Src)
		b.PutInt(f.Dst)
		b.PutInt(f.Size)
		b.PutUint(f.Epoch)
	case kWelcome:
		b.PutUint(f.Epoch)
		b.PutUint(f.Seq)
	case kData:
		b.PutInt(f.Src)
		b.PutInt(f.Dst)
		b.PutInt(f.Tag)
		b.PutUint(f.Seq)
		b.PutBool(f.Sync)
		b.PutBytes(f.Data)
	case kAck, kMatchAck:
		b.PutUint(f.Seq)
	case kHeartbeat:
	case kBye:
		b.PutBool(f.Crashed)
		b.PutString(f.Reason)
	default:
		panic(fmt.Sprintf("nettrans: encode of unknown frame kind %d", f.Kind))
	}
	return b.Bytes()
}

// decodeFrame parses one wire payload. It never panics on hostile
// input: unknown kinds, truncated fields, non-canonical varints and
// trailing garbage all return an error — the connection-level response
// is to drop the connection and let the reliability layer resend.
func decodeFrame(p []byte) (frame, error) {
	r := wire.NewReader(p)
	var f frame
	k := r.Uint()
	if k > 255 {
		return f, fmt.Errorf("nettrans: frame kind %d out of range", k)
	}
	f.Kind = byte(k)
	switch f.Kind {
	case kHello:
		f.Src = r.Int()
		f.Dst = r.Int()
		f.Size = r.Int()
		f.Epoch = r.Uint()
	case kWelcome:
		f.Epoch = r.Uint()
		f.Seq = r.Uint()
	case kData:
		f.Src = r.Int()
		f.Dst = r.Int()
		f.Tag = r.Int()
		f.Seq = r.Uint()
		f.Sync = r.Bool()
		f.Data = r.Bytes()
	case kAck, kMatchAck:
		f.Seq = r.Uint()
	case kHeartbeat:
	case kBye:
		f.Crashed = r.Bool()
		f.Reason = r.String()
	default:
		return f, fmt.Errorf("nettrans: unknown frame kind %d", f.Kind)
	}
	if err := r.Err(); err != nil {
		return frame{}, err
	}
	if r.Remaining() != 0 {
		return frame{}, fmt.Errorf("nettrans: %d trailing bytes after frame kind %d", r.Remaining(), f.Kind)
	}
	return f, nil
}

// checkHello validates a handshake against this transport's identity.
// It is the gate every inbound connection passes before any state is
// touched, so it rejects everything a confused or stale peer could
// send: wrong destination, out-of-range source, mismatched world size
// or epoch.
func checkHello(f frame, rank, size int, epoch uint64) error {
	if f.Kind != kHello {
		return fmt.Errorf("nettrans: expected hello, got frame kind %d", f.Kind)
	}
	if f.Dst != rank {
		return fmt.Errorf("nettrans: hello addressed to rank %d, this is rank %d", f.Dst, rank)
	}
	if f.Size != size {
		return fmt.Errorf("nettrans: hello world size %d, want %d", f.Size, size)
	}
	if f.Src < 0 || f.Src >= size || f.Src == rank {
		return fmt.Errorf("nettrans: hello from invalid rank %d", f.Src)
	}
	if f.Epoch != epoch {
		return fmt.Errorf("nettrans: hello epoch %d, want %d", f.Epoch, epoch)
	}
	return nil
}
