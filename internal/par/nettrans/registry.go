package nettrans

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// File-based rendezvous: every rank publishes its listen address as
// `<dir>/rank-<r>` and peers poll for the files they need. The write
// is atomic (temp file + rename) so a reader never observes a partial
// address, and the file carries the epoch so a stale registry from a
// previous incarnation is detected at handshake rather than trusted.
// A shared filesystem is the one piece of infrastructure a
// multi-process launch can always assume — the same assumption the
// checkpoint/resume layer already makes.

// publishAddr atomically writes rank's listen address into dir.
func publishAddr(dir string, rank int, network, addr string, epoch uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	body := fmt.Sprintf("%s %s %d\n", network, addr, epoch)
	tmp, err := os.CreateTemp(dir, fmt.Sprintf(".rank-%d-*", rank))
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.WriteString(body); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(dir, fmt.Sprintf("rank-%d", rank)))
}

// readAddr reads one rank's published address, reporting ok=false when
// the rank has not published yet.
func readAddr(dir string, rank int) (network, addr string, epoch uint64, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("rank-%d", rank)))
	if os.IsNotExist(err) {
		return "", "", 0, false, nil
	}
	if err != nil {
		return "", "", 0, false, err
	}
	fields := strings.Fields(string(b))
	if len(fields) != 3 {
		return "", "", 0, false, fmt.Errorf("nettrans: malformed registry entry for rank %d", rank)
	}
	if _, err := fmt.Sscanf(fields[2], "%d", &epoch); err != nil {
		return "", "", 0, false, fmt.Errorf("nettrans: malformed registry epoch for rank %d", rank)
	}
	return fields[0], fields[1], epoch, true, nil
}

// PublishService atomically writes a named auxiliary service address
// (e.g. the run collector's URL, or one rank's observability server)
// into the rendezvous directory as `<dir>/svc-<name>`, carrying the
// job epoch like rank entries do so stale registrations from a prior
// incarnation are detectable.
func PublishService(dir, name, addr string, epoch uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	body := fmt.Sprintf("%s %d\n", addr, epoch)
	tmp, err := os.CreateTemp(dir, fmt.Sprintf(".svc-%s-*", name))
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.WriteString(body); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, filepath.Join(dir, "svc-"+name))
}

// ReadService reads one published service address; ok is false when
// the service has not published (or published under another epoch,
// when epoch is nonzero).
func ReadService(dir, name string, epoch uint64) (addr string, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, "svc-"+name))
	if os.IsNotExist(err) {
		return "", false, nil
	}
	if err != nil {
		return "", false, err
	}
	fields := strings.Fields(string(b))
	if len(fields) != 2 {
		return "", false, fmt.Errorf("nettrans: malformed service entry %q", name)
	}
	var e uint64
	if _, err := fmt.Sscanf(fields[1], "%d", &e); err != nil {
		return "", false, fmt.Errorf("nettrans: malformed service epoch for %q", name)
	}
	if epoch != 0 && e != epoch {
		return "", false, nil
	}
	return fields[0], true, nil
}

// WaitService polls for a published service until it appears or the
// deadline passes; a zero deadline checks exactly once.
func WaitService(dir, name string, epoch uint64, deadline time.Time) (string, error) {
	for {
		addr, ok, err := ReadService(dir, name, epoch)
		if err == nil && ok {
			return addr, nil
		}
		if deadline.IsZero() || !time.Now().Before(deadline) {
			if err == nil {
				err = fmt.Errorf("nettrans: service %q never published (epoch %d)", name, epoch)
			}
			return "", err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitAddr polls the registry for rank's address until it appears with
// the wanted epoch, the deadline passes, or stop closes. A published
// entry with a stale epoch keeps waiting — the peer's new incarnation
// will overwrite it.
func waitAddr(dir string, rank int, epoch uint64, deadline time.Time, stop <-chan struct{}) (string, error) {
	for {
		_, addr, e, ok, err := readAddr(dir, rank)
		if err == nil && ok && e == epoch {
			return addr, nil
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			if err == nil {
				err = fmt.Errorf("nettrans: rank %d never published (epoch %d)", rank, epoch)
			}
			return "", err
		}
		select {
		case <-stop:
			return "", fmt.Errorf("nettrans: transport closed while waiting for rank %d", rank)
		case <-time.After(20 * time.Millisecond):
		}
	}
}
