package nettrans

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// File-based rendezvous: every rank publishes its listen address as
// `<dir>/rank-<r>` and peers poll for the files they need. The write
// is atomic (temp file + rename) so a reader never observes a partial
// address, and the file carries the epoch so a stale registry from a
// previous incarnation is detected at handshake rather than trusted.
// A shared filesystem is the one piece of infrastructure a
// multi-process launch can always assume — the same assumption the
// checkpoint/resume layer already makes.

// publishAddr atomically writes rank's listen address into dir.
func publishAddr(dir string, rank int, network, addr string, epoch uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	body := fmt.Sprintf("%s %s %d\n", network, addr, epoch)
	tmp, err := os.CreateTemp(dir, fmt.Sprintf(".rank-%d-*", rank))
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.WriteString(body); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(dir, fmt.Sprintf("rank-%d", rank)))
}

// readAddr reads one rank's published address, reporting ok=false when
// the rank has not published yet.
func readAddr(dir string, rank int) (network, addr string, epoch uint64, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("rank-%d", rank)))
	if os.IsNotExist(err) {
		return "", "", 0, false, nil
	}
	if err != nil {
		return "", "", 0, false, err
	}
	fields := strings.Fields(string(b))
	if len(fields) != 3 {
		return "", "", 0, false, fmt.Errorf("nettrans: malformed registry entry for rank %d", rank)
	}
	if _, err := fmt.Sscanf(fields[2], "%d", &epoch); err != nil {
		return "", "", 0, false, fmt.Errorf("nettrans: malformed registry epoch for rank %d", rank)
	}
	return fields[0], fields[1], epoch, true, nil
}

// waitAddr polls the registry for rank's address until it appears with
// the wanted epoch, the deadline passes, or stop closes. A published
// entry with a stale epoch keeps waiting — the peer's new incarnation
// will overwrite it.
func waitAddr(dir string, rank int, epoch uint64, deadline time.Time, stop <-chan struct{}) (string, error) {
	for {
		_, addr, e, ok, err := readAddr(dir, rank)
		if err == nil && ok && e == epoch {
			return addr, nil
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			if err == nil {
				err = fmt.Errorf("nettrans: rank %d never published (epoch %d)", rank, epoch)
			}
			return "", err
		}
		select {
		case <-stop:
			return "", fmt.Errorf("nettrans: transport closed while waiting for rank %d", rank)
		case <-time.After(20 * time.Millisecond):
		}
	}
}
