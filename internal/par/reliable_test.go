package par

import (
	"fmt"
	"testing"
	"time"
)

// TestRetransmitDelivers: with the reliable link enabled, a lossy
// channel still delivers every eager message intact and in order —
// drops become retransmissions, not losses.
func TestRetransmitDelivers(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultPlan{Seed: 3, Retransmit: true, DropProb: 0.4}
	const msgs = 64
	var stats []Stats
	stats = Run(cfg, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(1, 5, []byte(fmt.Sprintf("m%04d", i)))
			}
			return
		}
		for i := 0; i < msgs; i++ {
			m := c.Recv(0, 5)
			if want := fmt.Sprintf("m%04d", i); string(m.Data) != want {
				t.Fatalf("message %d = %q, want %q", i, m.Data, want)
			}
		}
	})
	if stats[0].Retransmits == 0 {
		t.Error("40% drop rate caused no retransmissions")
	}
	if stats[0].MsgsDropped == 0 {
		t.Error("40% drop rate dropped no frames")
	}
}

// TestCorruptionRecovered: corrupted frames are caught by the CRC32C
// envelope and retransmitted; payloads arrive unmodified.
func TestCorruptionRecovered(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultPlan{Seed: 9, Retransmit: true, CorruptProb: 0.5}
	const msgs = 64
	stats := Run(cfg, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(1, 7, []byte(fmt.Sprintf("payload-%04d", i)))
			}
			return
		}
		for i := 0; i < msgs; i++ {
			m := c.Recv(0, 7)
			if want := fmt.Sprintf("payload-%04d", i); string(m.Data) != want {
				t.Fatalf("message %d corrupted through the checksum layer: %q", i, m.Data)
			}
		}
	})
	if stats[0].FramesCorrupted == 0 {
		t.Error("50% corruption rate injured no frames")
	}
	if stats[0].Retransmits == 0 {
		t.Error("corrupted frames caused no retransmissions")
	}
}

// TestRetransmitDeterminism: the same seed must produce the same fault
// decisions and modeled charges, run to run.
func TestRetransmitDeterminism(t *testing.T) {
	run := func() []Stats {
		cfg := DefaultConfig(3)
		cfg.Faults = &FaultPlan{Seed: 11, Retransmit: true, DropProb: 0.2, CorruptProb: 0.2}
		return Run(cfg, func(c *Comm) {
			for i := 0; i < 20; i++ {
				dst := (c.Rank() + 1) % c.Size()
				c.Send(dst, 1, []byte{byte(i)})
				c.Recv((c.Rank()+c.Size()-1)%c.Size(), 1)
			}
		})
	}
	a, b := run(), run()
	for r := range a {
		if a[r].Retransmits != b[r].Retransmits || a[r].FramesCorrupted != b[r].FramesCorrupted {
			t.Errorf("rank %d fault counts differ across runs: %+v vs %+v", r, a[r], b[r])
		}
		if a[r].CommModel != b[r].CommModel {
			t.Errorf("rank %d modeled comm differs across runs: %v vs %v", r, a[r].CommModel, b[r].CommModel)
		}
	}
}

// TestRetransmitBudgetExhausted: a link that never delivers fail-stops
// the sender after MaxRetries instead of spinning forever.
func TestRetransmitBudgetExhausted(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultPlan{Seed: 1, Retransmit: true, DropProb: 1.0, MaxRetries: 5}
	_, exits := RunStatus(cfg, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []byte("doomed"))
			return
		}
		c.RecvTimeout(0, 3, 0)
	})
	if !exits[0].FaultKilled {
		t.Errorf("sender on a dead link should fail-stop, got %+v", exits[0])
	}
}

// TestCollectivesOverLossyLink: the plain (non-FT) collectives run on
// internal tags, which the reliable link also protects — so a
// corrupting, dropping link must not change any collective's result.
func TestCollectivesOverLossyLink(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Faults = &FaultPlan{Seed: 21, Retransmit: true, DropProb: 0.15, CorruptProb: 0.15}
	sums := make([]int64, 4)
	stats := Run(cfg, func(c *Comm) {
		v := int64(c.Rank() + 1)
		sums[c.Rank()] = c.Allreduce(v, Sum)
		c.Barrier()
		b := c.Bcast(0, []byte("settings"))
		if string(b) != "settings" {
			t.Errorf("rank %d bcast got %q", c.Rank(), b)
		}
	})
	for r, s := range sums {
		if s != 10 {
			t.Errorf("rank %d allreduce = %d, want 10", r, s)
		}
	}
	total := 0
	for _, s := range stats {
		total += s.Retransmits
	}
	if total == 0 {
		t.Error("lossy link caused no retransmissions across collectives")
	}
}

// TestFTCollectivesSurviveDeath: a rank killed mid-alltoall must not
// wedge or cascade the surviving ranks' FT collectives.
func TestFTCollectivesSurviveDeath(t *testing.T) {
	const poll = 2 * time.Millisecond
	cfg := DefaultConfig(4)
	cfg.Faults = &FaultPlan{Seed: 1, Crashes: []Crash{CrashAtAlltoallSend(2, 1)}}
	gots := make([][]bool, 4)
	sums := make([]int64, 4)
	_, exits := RunStatus(cfg, func(c *Comm) {
		bufs := make([][]byte, c.Size())
		for d := range bufs {
			bufs[d] = []byte{byte(c.Rank()), byte(d)}
		}
		out, got := c.FTAlltoallv(bufs, poll)
		gots[c.Rank()] = got
		for s, b := range out {
			if !got[s] {
				continue
			}
			if len(b) != 2 || int(b[0]) != s || int(b[1]) != c.Rank() {
				t.Errorf("rank %d got bad buffer from %d: %v", c.Rank(), s, b)
			}
		}
		c.FTBarrier(poll)
		sums[c.Rank()] = c.FTAllreduce(int64(c.Rank()+1), Sum, poll)
		if b := c.FTBcast(0, []byte("go"), poll); string(b) != "go" {
			t.Errorf("rank %d FTBcast got %q", c.Rank(), b)
		}
	})
	if !exits[2].FaultKilled {
		t.Fatalf("rank 2 should have been fault-killed, got %+v", exits[2])
	}
	for _, r := range []int{0, 1, 3} {
		if !exits[r].OK {
			t.Fatalf("survivor %d did not finish: %+v", r, exits[r])
		}
		if gots[r][2] {
			t.Errorf("survivor %d claims to have rank 2's buffer", r)
		}
		// 1 + 2 + 4: the dead rank contributes nothing.
		if sums[r] != 7 {
			t.Errorf("survivor %d FTAllreduce = %d, want 7", r, sums[r])
		}
	}
}
