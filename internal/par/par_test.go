package par

import (
	"fmt"
	"testing"
	"time"
)

func testCfg(p int) Config { return DefaultConfig(p) }

func TestSendRecvRing(t *testing.T) {
	const p = 8
	Run(testCfg(p), func(c *Comm) {
		next := (c.Rank() + 1) % p
		prev := (c.Rank() - 1 + p) % p
		c.Send(next, 1, []byte{byte(c.Rank())})
		msg := c.Recv(prev, 1)
		if len(msg.Data) != 1 || msg.Data[0] != byte(prev) {
			panic(fmt.Sprintf("rank %d: bad ring message %v", c.Rank(), msg))
		}
		if msg.Src != prev || msg.Tag != 1 {
			panic("bad envelope")
		}
	})
}

func TestTagAndSourceMatching(t *testing.T) {
	Run(testCfg(2), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []byte("five"))
			c.Send(1, 7, []byte("seven"))
		} else {
			// Receive out of order by tag.
			m7 := c.Recv(0, 7)
			m5 := c.Recv(AnySource, 5)
			if string(m7.Data) != "seven" || string(m5.Data) != "five" {
				panic("tag matching failed")
			}
		}
	})
}

func TestAnyTagPreservesFIFO(t *testing.T) {
	Run(testCfg(2), func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, i, []byte{byte(i)})
			}
		} else {
			for i := 0; i < 10; i++ {
				m := c.Recv(0, AnyTag)
				if m.Tag != i {
					panic(fmt.Sprintf("FIFO violated: got tag %d want %d", m.Tag, i))
				}
			}
		}
	})
}

func TestProbe(t *testing.T) {
	Run(testCfg(2), func(c *Comm) {
		if c.Rank() == 0 {
			if _, ok := c.Probe(AnySource, AnyTag); ok {
				panic("probe matched on empty mailbox")
			}
			c.Send(1, 3, []byte("x"))
			c.Recv(1, 4) // wait for ack so the probe below has a target
		} else {
			c.Recv(0, 3)
			c.Send(0, 4, []byte("y"))
		}
	})
}

func TestSsendCompletes(t *testing.T) {
	Run(testCfg(2), func(c *Comm) {
		if c.Rank() == 0 {
			c.Ssend(1, 1, []byte("sync"))
		} else {
			m := c.Recv(0, 1)
			if string(m.Data) != "sync" {
				panic("ssend data lost")
			}
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	// After a barrier, every pre-barrier send must be deliverable.
	const p = 6
	Run(testCfg(p), func(c *Comm) {
		for d := 0; d < p; d++ {
			if d != c.Rank() {
				c.Send(d, 9, []byte{byte(c.Rank())})
			}
		}
		c.Barrier()
		for s := 0; s < p; s++ {
			if s == c.Rank() {
				continue
			}
			if _, ok := c.Probe(s, 9); !ok {
				panic(fmt.Sprintf("rank %d: message from %d missing after barrier", c.Rank(), s))
			}
		}
	})
}

func TestBcastAllRootsAndSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		for root := 0; root < p; root++ {
			payload := []byte(fmt.Sprintf("root=%d", root))
			Run(testCfg(p), func(c *Comm) {
				var in []byte
				if c.Rank() == root {
					in = payload
				}
				out := c.Bcast(root, in)
				if string(out) != string(payload) {
					panic(fmt.Sprintf("p=%d root=%d rank=%d got %q", p, root, c.Rank(), out))
				}
			})
		}
	}
}

func TestRepeatedBcastEpochSafety(t *testing.T) {
	const p = 5
	Run(testCfg(p), func(c *Comm) {
		for epoch := 0; epoch < 20; epoch++ {
			root := epoch % p
			var in []byte
			if c.Rank() == root {
				in = []byte{byte(epoch)}
			}
			out := c.Bcast(root, in)
			if len(out) != 1 || out[0] != byte(epoch) {
				panic(fmt.Sprintf("epoch %d rank %d: got %v", epoch, c.Rank(), out))
			}
		}
	})
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const p = 7
	Run(testCfg(p), func(c *Comm) {
		parts := c.Gather(2, []byte{byte(c.Rank() * 3)})
		if c.Rank() == 2 {
			for i := 0; i < p; i++ {
				if len(parts[i]) != 1 || parts[i][0] != byte(i*3) {
					panic("gather wrong")
				}
			}
		}
		var out [][]byte
		if c.Rank() == 2 {
			out = make([][]byte, p)
			for i := range out {
				out[i] = []byte{byte(i + 100)}
			}
		}
		mine := c.Scatter(2, out)
		if len(mine) != 1 || mine[0] != byte(c.Rank()+100) {
			panic("scatter wrong")
		}
	})
}

func TestReduceAndAllreduce(t *testing.T) {
	const p = 9
	Run(testCfg(p), func(c *Comm) {
		sum := c.Reduce(0, int64(c.Rank()+1), Sum)
		if c.Rank() == 0 && sum != int64(p*(p+1)/2) {
			panic(fmt.Sprintf("reduce sum = %d", sum))
		}
		m := c.Allreduce(int64(c.Rank()), Max)
		if m != int64(p-1) {
			panic(fmt.Sprintf("allreduce max = %d on rank %d", m, c.Rank()))
		}
		mn := c.Allreduce(int64(c.Rank()), Min)
		if mn != 0 {
			panic(fmt.Sprintf("allreduce min = %d", mn))
		}
	})
}

func alltoallPayload(src, dst int) []byte {
	return []byte(fmt.Sprintf("%d->%d", src, dst))
}

func TestAlltoallvBothVariants(t *testing.T) {
	for _, staged := range []bool{false, true} {
		for _, p := range []int{1, 2, 3, 5, 8} {
			Run(testCfg(p), func(c *Comm) {
				bufs := make([][]byte, p)
				for d := range bufs {
					bufs[d] = alltoallPayload(c.Rank(), d)
				}
				var got [][]byte
				if staged {
					got = c.AlltoallvStaged(bufs)
				} else {
					got = c.Alltoallv(bufs)
				}
				for s := range got {
					want := string(alltoallPayload(s, c.Rank()))
					if string(got[s]) != want {
						panic(fmt.Sprintf("p=%d staged=%v rank=%d src=%d: %q != %q",
							p, staged, c.Rank(), s, got[s], want))
					}
				}
			})
		}
	}
}

func TestRepeatedAlltoallvEpochSafety(t *testing.T) {
	const p = 4
	Run(testCfg(p), func(c *Comm) {
		for epoch := 0; epoch < 10; epoch++ {
			bufs := make([][]byte, p)
			for d := range bufs {
				bufs[d] = []byte{byte(epoch), byte(c.Rank()), byte(d)}
			}
			got := c.Alltoallv(bufs)
			for s := range got {
				if got[s][0] != byte(epoch) || got[s][1] != byte(s) || got[s][2] != byte(c.Rank()) {
					panic(fmt.Sprintf("epoch %d corrupted: %v", epoch, got[s]))
				}
			}
		}
	})
}

// TestStagedAlltoallvBoundsBuffers verifies the property the paper's
// customized Alltoallv exists for (Section 6): with large buffers the
// staged exchange keeps each rank's peak receive-buffer bytes near one
// buffer's worth, while the direct version can accumulate nearly the
// whole incoming volume.
func TestStagedAlltoallvBoundsBuffers(t *testing.T) {
	const p = 8
	const chunk = 1 << 16
	run := func(staged bool) int {
		stats := Run(testCfg(p), func(c *Comm) {
			bufs := make([][]byte, p)
			for d := range bufs {
				bufs[d] = make([]byte, chunk)
			}
			if staged {
				c.AlltoallvStaged(bufs)
			} else {
				c.Alltoallv(bufs)
			}
			c.Barrier()
		})
		return Summarize(stats).PeakBufBytes
	}
	direct := run(false)
	staged := run(true)
	if staged > 2*chunk {
		t.Errorf("staged peak buffer %d exceeds 2 chunks", staged)
	}
	if direct < staged {
		t.Errorf("direct peak %d unexpectedly below staged peak %d", direct, staged)
	}
}

func TestStatsAccounting(t *testing.T) {
	stats := Run(testCfg(2), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 1000))
		} else {
			c.Recv(0, 1)
		}
	})
	if stats[0].MsgsSent != 1 || stats[0].BytesSent != 1000 {
		t.Errorf("sender stats: %+v", stats[0])
	}
	if stats[1].MsgsRecv != 1 || stats[1].BytesRecv != 1000 {
		t.Errorf("receiver stats: %+v", stats[1])
	}
	if stats[0].CommModel <= 0 || stats[1].CommModel <= 0 {
		t.Error("comm model not charged")
	}
	agg := Summarize(stats)
	if agg.Ranks != 2 || agg.TotalBytes != 1000 || agg.TotalMsgs != 1 {
		t.Errorf("aggregate: %+v", agg)
	}
}

func TestCommModelScalesWithBytes(t *testing.T) {
	cost := func(n int) float64 {
		stats := Run(testCfg(2), func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 1, make([]byte, n))
			} else {
				c.Recv(0, 1)
			}
		})
		return stats[0].CommModel
	}
	small, large := cost(1000), cost(1000000)
	if large <= small {
		t.Errorf("comm model must grow with message size: %g vs %g", small, large)
	}
}

func TestRunPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic to propagate from rank body")
		}
	}()
	Run(testCfg(1), func(c *Comm) { panic("boom") })
}

func TestSingleRankDegenerates(t *testing.T) {
	Run(testCfg(1), func(c *Comm) {
		c.Barrier()
		if out := c.Bcast(0, []byte("x")); string(out) != "x" {
			panic("bcast p=1")
		}
		got := c.Alltoallv([][]byte{[]byte("self")})
		if string(got[0]) != "self" {
			panic("alltoallv p=1")
		}
		if c.Allreduce(7, Sum) != 7 {
			panic("allreduce p=1")
		}
	})
}

func TestSnapshotMidRun(t *testing.T) {
	Run(testCfg(2), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 100))
			c.ChargeCompute(0.5)
			s := c.Snapshot()
			if s.MsgsSent != 1 || s.BytesSent != 100 {
				panic("snapshot missing send stats")
			}
			if s.CompModel != 0.5 {
				panic("snapshot missing compute charge")
			}
			if s.Wall <= 0 {
				panic("snapshot wall not running")
			}
		} else {
			c.Recv(0, 1)
		}
	})
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Ranks: 3}.withDefaults()
	if cfg.Alpha <= 0 || cfg.Beta <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	// Explicit values survive.
	cfg2 := Config{Ranks: 3, Alpha: time.Millisecond, Beta: 1e9}.withDefaults()
	if cfg2.Alpha != time.Millisecond || cfg2.Beta != 1e9 {
		t.Errorf("explicit values overridden: %+v", cfg2)
	}
}

func TestModeledAggregation(t *testing.T) {
	stats := Run(testCfg(3), func(c *Comm) {
		c.ChargeCompute(float64(c.Rank()) * 0.1)
		c.Barrier()
	})
	agg := Summarize(stats)
	if agg.MaxComp < 0.2-1e-9 {
		t.Errorf("MaxComp = %g", agg.MaxComp)
	}
	if agg.MeanIdle <= 0 {
		t.Error("imbalanced ranks must show modeled idle")
	}
	if agg.MaxModeled < agg.MaxComp {
		t.Error("modeled total below compute")
	}
}
