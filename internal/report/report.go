// Package report renders the experiment harness's tables and series
// as aligned text, in the spirit of the paper's Tables 1–3 and
// Figs. 5/9 data series.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled, column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Int formats an integer with thousands separators.
func Int(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Seconds formats modeled seconds adaptively.
func Seconds(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0fs", v)
	case v >= 1:
		return fmt.Sprintf("%.2fs", v)
	default:
		return fmt.Sprintf("%.1fms", v*1000)
	}
}

// Mbp formats a base count in millions.
func Mbp(bases int) string { return fmt.Sprintf("%.2f", float64(bases)/1e6) }
