package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "name", "count")
	tb.AddRow("alpha", "10")
	tb.AddRow("b", "2,000")
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table X", "name", "alpha", "2,000", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and data rows align: "count" column starts at the same
	// offset everywhere.
	idx := strings.Index(lines[2], "count")
	if idx < 0 {
		t.Fatalf("header line wrong: %q", lines[2])
	}
}

func TestShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[int64]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		1234567:  "1,234,567",
		-1234567: "-1,234,567",
	}
	for v, want := range cases {
		if got := Int(v); got != want {
			t.Errorf("Int(%d) = %q, want %q", v, got, want)
		}
	}
	if Pct(0.443) != "44.3%" {
		t.Errorf("Pct = %q", Pct(0.443))
	}
	if Seconds(0.0123) != "12.3ms" {
		t.Errorf("Seconds = %q", Seconds(0.0123))
	}
	if Seconds(12.3) != "12.30s" {
		t.Errorf("Seconds = %q", Seconds(12.3))
	}
	if Seconds(240) != "240s" {
		t.Errorf("Seconds = %q", Seconds(240))
	}
	if Mbp(1250000) != "1.25" {
		t.Errorf("Mbp = %q", Mbp(1250000))
	}
}
