package simulate

import (
	"math/rand"

	"repro/internal/seq"
)

// The presets below are scaled-down versions of the paper's three
// evaluation workloads. Genome length and read counts shrink; the
// dimensionless knobs — repeat fraction and divergence, island
// fraction, read length, error rate, coverage, type mixture — stay at
// the paper's values so ratio-type results (alignment savings, cluster
// size distributions, idle fractions) transfer.

// MaizeData is a scaled maize-like dataset: one repeat-rich genome and
// the four fragment types of Table 2.
type MaizeData struct {
	Genome *Genome
	MF     []*seq.Fragment // methyl-filtrated: strongly island-biased
	HC     []*seq.Fragment // High-C0t: island-biased
	BAC    []*seq.Fragment // BAC-derived shotgun
	WGS    []*seq.Fragment // whole-genome shotgun
}

// All returns the four read sets concatenated in Table 2 order.
func (m *MaizeData) All() []*seq.Fragment {
	var out []*seq.Fragment
	out = append(out, m.MF...)
	out = append(out, m.HC...)
	out = append(out, m.BAC...)
	out = append(out, m.WGS...)
	return out
}

// maizeRepeats budgets repeat families to cover roughly the target
// fraction of the genome: mostly long LTR-retrotransposon-like
// elements (which nest into multi-kilobase blocks that swallow whole
// reads) plus shorter high-copy families, at low divergence (maize
// repeats are young, paper Section 1). Placement is a Poisson process,
// so the budget must exceed the target coverage: planted bases b per
// unit length yield ≈ 1−e^-b covered.
func maizeRepeats(genomeLen int, fraction float64) []RepeatFamily {
	budget := float64(genomeLen) * fraction
	// Families 0–1 are the long, well-characterized elements a curated
	// repeat database would know. Families 2–3 are the medium-sized
	// elements the paper reports surviving its screens (Section 7.2):
	// family 2 is young (copies nearly identical — its read pairs pass
	// the overlap test and glue a repeat cluster together) and family 3
	// is ancient (copy pairs diverge past the identity cutoff — its
	// read pairs get aligned and rejected, burning alignment work).
	fams := []struct {
		length int
		share  float64
		div    float64
	}{
		{6000, 0.55, 0.02},
		{1500, 0.22, 0.03},
		{300, 0.15, 0.02},
		{120, 0.08, 0.08},
	}
	var out []RepeatFamily
	for _, f := range fams {
		copies := int(budget * f.share / float64(f.length))
		if copies < 2 {
			copies = 2
		}
		out = append(out, RepeatFamily{Length: f.length, Copies: copies, Divergence: f.div})
	}
	return out
}

// MaizeLike synthesizes the Section 8 workload at the given genome
// length: ~70 % repeats, ~12 % gene islands, and a read mixture whose
// base-count shares follow Table 2 (MF 13 %, HC 14 %, BAC 36 %,
// WGS 37 % of ~1.1× genome length total).
func MaizeLike(rng *rand.Rand, genomeLen int) *MaizeData {
	g := NewGenome(rng, "maize", GenomeConfig{
		Length:         genomeLen,
		IslandFraction: 0.12,
		MeanIslandLen:  4000,
		Repeats:        maizeRepeats(genomeLen, 1.3),
	})
	rc := DefaultReadConfig()
	total := 1.1 * float64(genomeLen)
	nOf := func(share float64) int {
		n := int(total * share / float64(rc.MeanLen))
		if n < 4 {
			n = 4
		}
		return n
	}
	bacLen := genomeLen / 15
	if bacLen < 4*rc.MeanLen {
		bacLen = 4 * rc.MeanLen
	}
	if bacLen > genomeLen {
		bacLen = genomeLen
	}
	nBACReads := nOf(0.36)
	readsPerBAC := 40
	nBACs := nBACReads / readsPerBAC
	if nBACs < 1 {
		nBACs = 1
		readsPerBAC = nBACReads
	}
	return &MaizeData{
		Genome: g,
		MF:     SampleEnriched(rng, g, nOf(0.13), 0.85, rc, "mf"),
		HC:     SampleEnriched(rng, g, nOf(0.14), 0.75, rc, "hc"),
		BAC:    SampleBACs(rng, g, nBACs, bacLen, readsPerBAC, rc, "bac"),
		WGS:    SampleWGS(rng, g, total*0.37/float64(genomeLen), rc, "wgs"),
	}
}

// DrosophilaLike synthesizes the Section 9.1 workload: a genome with
// moderate repeat content (a few thousand high-copy sequences at full
// scale) shotgunned uniformly at 8.8×.
func DrosophilaLike(rng *rand.Rand, genomeLen int) (*Genome, []*seq.Fragment) {
	// Repeat families keep paper-like copy numbers (the 5407 Drosophila
	// high-copy sequences are genuinely high-copy): family lengths
	// shrink with the genome so copy counts stay detectable by the
	// statistical 0.1–0.3× sampling method at every scale.
	g := NewGenome(rng, "dpse", GenomeConfig{
		Length: genomeLen,
		Repeats: []RepeatFamily{
			{Length: 400, Copies: int(0.10*float64(genomeLen)/400) + 15, Divergence: 0.04},
			{Length: 150, Copies: int(0.05*float64(genomeLen)/150) + 15, Divergence: 0.05},
		},
	})
	reads := SampleWGS(rng, g, 8.8, DefaultReadConfig(), "dpse")
	return g, reads
}

// SargassoLike synthesizes the Section 9.2 workload: an environmental
// sample of many small genomes with Zipf-skewed abundances, including
// near-identical strain pairs (the deconvolution hazard the paper
// notes).
func SargassoLike(rng *rand.Rand, nSpecies, totalReads int) ([]*Genome, []*seq.Fragment) {
	genomes := NewGenomeSet(rng, nSpecies, 15000, 60000, GenomeConfig{
		Repeats: []RepeatFamily{{Length: 800, Copies: 3, Divergence: 0.03}},
	})
	// Make every eighth species a close strain of its predecessor.
	for i := 8; i < len(genomes); i += 8 {
		strain := mutate(rng, genomes[i-1].Seq, 0.02)
		genomes[i].Seq = strain
	}
	reads := SampleEnvironmental(rng, genomes, 1.0, totalReads, DefaultReadConfig(), "env")
	return genomes, reads
}
