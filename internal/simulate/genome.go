// Package simulate synthesizes the sequencing workloads the paper
// evaluates on: repeat-rich genomes with sparse gene islands
// (maize-like), uniformly shotgunned genomes (Drosophila-like), and
// multi-species environmental samples (Sargasso-like). Real traces are
// unavailable offline, so the simulator reproduces the statistical
// properties the assembly algorithms are sensitive to — repeat content
// and divergence, non-uniform island-biased sampling, 1–2 % sequencing
// error, sub-kilobase reads — and records each read's true origin for
// validation (something the paper had to approximate with BLAST
// against a published assembly).
package simulate

import (
	"fmt"
	"math/rand"

	"repro/internal/seq"
)

// Span is a half-open interval on a genome.
type Span struct {
	Start, End int
}

// Len returns the span length.
func (s Span) Len() int { return s.End - s.Start }

// Contains reports whether position p lies in the span.
func (s Span) Contains(p int) bool { return p >= s.Start && p < s.End }

// Overlaps reports whether two spans intersect.
func (s Span) Overlaps(o Span) bool { return s.Start < o.End && o.Start < s.End }

// RepeatFamily describes one repeat family to plant.
type RepeatFamily struct {
	Length     int     // consensus length
	Copies     int     // number of copies to place
	Divergence float64 // per-base mutation rate of each copy vs consensus
}

// GenomeConfig parameterizes genome synthesis.
type GenomeConfig struct {
	Length int
	GC     float64 // GC content, 0.5 if zero

	// Gene islands: contiguous low-copy regions repeats avoid,
	// mirroring the maize gene space (paper, Section 1).
	IslandFraction float64 // fraction of the genome inside islands
	MeanIslandLen  int     // mean island length

	Repeats []RepeatFamily
}

// RepeatOcc is one placed repeat copy.
type RepeatOcc struct {
	Family int
	Span   Span
}

// Genome is a synthetic source sequence with its ground-truth
// annotation.
type Genome struct {
	Name    string
	Seq     []byte
	Islands []Span
	Repeats []RepeatOcc
	// FamilySeqs holds each repeat family's consensus sequence, the
	// material a curated repeat database would record.
	FamilySeqs [][]byte
}

// RepeatFraction returns the fraction of genome positions covered by a
// planted repeat copy.
func (g *Genome) RepeatFraction() float64 {
	if len(g.Seq) == 0 {
		return 0
	}
	covered := make([]bool, len(g.Seq))
	for _, r := range g.Repeats {
		for i := r.Span.Start; i < r.Span.End && i < len(covered); i++ {
			covered[i] = true
		}
	}
	n := 0
	for _, c := range covered {
		if c {
			n++
		}
	}
	return float64(n) / float64(len(g.Seq))
}

// IslandIndex returns the index of the island containing p, or -1.
func (g *Genome) IslandIndex(p int) int {
	for i, is := range g.Islands {
		if is.Contains(p) {
			return i
		}
	}
	return -1
}

// randomBases fills a fresh slice with random bases at the given GC
// content.
func randomBases(rng *rand.Rand, n int, gc float64) []byte {
	if gc == 0 {
		gc = 0.5
	}
	out := make([]byte, n)
	for i := range out {
		if rng.Float64() < gc {
			if rng.Intn(2) == 0 {
				out[i] = 'C'
			} else {
				out[i] = 'G'
			}
		} else {
			if rng.Intn(2) == 0 {
				out[i] = 'A'
			} else {
				out[i] = 'T'
			}
		}
	}
	return out
}

// mutate returns a copy of s with each base substituted at the given
// rate (repeat-copy divergence is substitution-dominated).
func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	out := append([]byte(nil), s...)
	for i := range out {
		if rng.Float64() < rate {
			out[i] = seq.Base((seq.Code(out[i]) + 1 + rng.Intn(3)) % 4)
		}
	}
	return out
}

// NewGenome synthesizes a genome: random background, non-overlapping
// gene islands, and repeat copies planted outside islands.
func NewGenome(rng *rand.Rand, name string, cfg GenomeConfig) *Genome {
	g := &Genome{
		Name: name,
		Seq:  randomBases(rng, cfg.Length, cfg.GC),
	}

	// Carve islands left to right with random gaps so they never
	// overlap and spread across the genome.
	if cfg.IslandFraction > 0 && cfg.MeanIslandLen > 0 {
		targetTotal := int(float64(cfg.Length) * cfg.IslandFraction)
		nIslands := targetTotal / cfg.MeanIslandLen
		if nIslands < 1 {
			nIslands = 1
		}
		meanGap := (cfg.Length - targetTotal) / (nIslands + 1)
		pos := 0
		for i := 0; i < nIslands; i++ {
			gap := meanGap/2 + rng.Intn(meanGap+1)
			l := cfg.MeanIslandLen/2 + rng.Intn(cfg.MeanIslandLen+1)
			start := pos + gap
			if start+l > cfg.Length {
				break
			}
			g.Islands = append(g.Islands, Span{start, start + l})
			pos = start + l
		}
	}

	// Plant repeats outside islands.
	inIsland := func(sp Span) bool {
		for _, is := range g.Islands {
			if sp.Overlaps(is) {
				return true
			}
		}
		return false
	}
	g.FamilySeqs = make([][]byte, len(cfg.Repeats))
	for fi, fam := range cfg.Repeats {
		if fam.Length <= 0 || fam.Length > cfg.Length {
			continue
		}
		consensus := randomBases(rng, fam.Length, cfg.GC)
		g.FamilySeqs[fi] = consensus
		for c := 0; c < fam.Copies; c++ {
			// A few attempts to land outside islands; give up and
			// place anyway (real repeats do intrude occasionally).
			var sp Span
			placed := false
			for try := 0; try < 20; try++ {
				start := rng.Intn(cfg.Length - fam.Length + 1)
				sp = Span{start, start + fam.Length}
				if !inIsland(sp) {
					placed = true
					break
				}
			}
			if !placed {
				continue
			}
			copySeq := mutate(rng, consensus, fam.Divergence)
			if rng.Intn(2) == 1 {
				seq.ReverseComplementInPlace(copySeq)
			}
			copy(g.Seq[sp.Start:sp.End], copySeq)
			g.Repeats = append(g.Repeats, RepeatOcc{Family: fi, Span: sp})
		}
	}
	return g
}

// NewGenomeSet synthesizes n genomes with lengths drawn uniformly from
// [minLen, maxLen], for environmental samples.
func NewGenomeSet(rng *rand.Rand, n, minLen, maxLen int, cfg GenomeConfig) []*Genome {
	out := make([]*Genome, n)
	for i := range out {
		c := cfg
		c.Length = minLen + rng.Intn(maxLen-minLen+1)
		out[i] = NewGenome(rng, fmt.Sprintf("species%03d", i), c)
	}
	return out
}
