package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/seq"
)

// ReadConfig parameterizes read sampling and the sequencing error
// model. Reads carry per-base phred-style qualities; the error
// probability at each position is derived from a quality profile that
// degrades toward the 3' end, so quality trimming (preprocess package)
// removes genuinely error-dense tails, as Lucy does for real traces.
type ReadConfig struct {
	MeanLen int // mean read length (paper: 500–1000 bp)
	LenSD   int // length standard deviation

	// BaseQuality is the phred score in the high-quality core of the
	// read (40 ≈ 0.01 % error); TailQuality is the score the 3' tail
	// degrades to (15 ≈ 3 % error). TailStart is the fraction of the
	// read where degradation begins.
	BaseQuality int
	TailQuality int
	TailStart   float64

	// Vector contamination: with probability VectorProb a read begins
	// with a random-length piece of the cloning vector.
	Vector     []byte
	VectorProb float64
}

// DefaultReadConfig mirrors conventional Sanger-era shotgun reads.
func DefaultReadConfig() ReadConfig {
	return ReadConfig{
		MeanLen:     700,
		LenSD:       80,
		BaseQuality: 40,
		TailQuality: 12,
		TailStart:   0.7,
		Vector:      []byte("GGCCGCTCTAGAACTAGTGGATCCCCCGGGCTGCAGGAATTC"), // pUC-style polylinker
		VectorProb:  0.15,
	}
}

func (rc ReadConfig) withDefaults() ReadConfig {
	d := DefaultReadConfig()
	if rc.MeanLen == 0 {
		rc.MeanLen = d.MeanLen
	}
	if rc.BaseQuality == 0 {
		rc.BaseQuality = d.BaseQuality
	}
	if rc.TailQuality == 0 {
		rc.TailQuality = d.TailQuality
	}
	if rc.TailStart == 0 {
		rc.TailStart = d.TailStart
	}
	return rc
}

// qualityAt returns the phred score at fractional position t ∈ [0,1).
func (rc ReadConfig) qualityAt(t float64) int {
	if t < rc.TailStart {
		return rc.BaseQuality
	}
	f := (t - rc.TailStart) / (1 - rc.TailStart)
	q := float64(rc.BaseQuality) - f*f*float64(rc.BaseQuality-rc.TailQuality)
	return int(q)
}

func phredErr(q int) float64 { return math.Pow(10, -float64(q)/10) }

// readLen draws a read length.
func (rc ReadConfig) readLen(rng *rand.Rand) int {
	l := rc.MeanLen + int(rng.NormFloat64()*float64(rc.LenSD))
	if l < 50 {
		l = 50
	}
	return l
}

// applyErrors turns a perfect genome substring into a sequenced read:
// per-base quality-driven substitutions and indels, plus optional
// leading vector sequence. Returned bases and quals have equal length.
func (rc ReadConfig) applyErrors(rng *rand.Rand, template []byte) (bases, quals []byte) {
	n := len(template)
	bases = make([]byte, 0, n+16)
	quals = make([]byte, 0, n+16)
	if rc.VectorProb > 0 && len(rc.Vector) > 0 && rng.Float64() < rc.VectorProb {
		vl := 5 + rng.Intn(len(rc.Vector)-4)
		v := rc.Vector[len(rc.Vector)-vl:]
		for _, b := range v {
			bases = append(bases, b)
			quals = append(quals, byte(rc.BaseQuality))
		}
	}
	for i, b := range template {
		q := rc.qualityAt(float64(i) / float64(n))
		p := phredErr(q)
		r := rng.Float64()
		switch {
		case r < p/4: // deletion
			continue
		case r < p/2: // insertion
			bases = append(bases, b, seq.Base(rng.Intn(4)))
			quals = append(quals, byte(q), byte(q))
		case r < p: // substitution
			bases = append(bases, seq.Base((seq.Code(b)+1+rng.Intn(3))%4))
			quals = append(quals, byte(q))
		default:
			bases = append(bases, b)
			quals = append(quals, byte(q))
		}
	}
	return bases, quals
}

// sampleAt cuts a read of drawn length at start, sequencing a random
// strand, and records ground truth.
func (rc ReadConfig) sampleAt(rng *rand.Rand, g *Genome, start int, name string) *seq.Fragment {
	l := rc.readLen(rng)
	if start+l > len(g.Seq) {
		l = len(g.Seq) - start
	}
	template := g.Seq[start : start+l]
	reverse := rng.Intn(2) == 1
	if reverse {
		template = seq.ReverseComplement(template)
	}
	bases, quals := rc.applyErrors(rng, template)
	mid := start + l/2
	return &seq.Fragment{
		Name:  name,
		Bases: bases,
		Qual:  quals,
		Origin: &seq.Origin{
			Source:  g.Name,
			Start:   start,
			End:     start + l,
			Reverse: reverse,
			Region:  g.IslandIndex(mid),
		},
	}
}

// SampleAt draws one read at a fixed genome position — deterministic
// workloads for tests and validation harnesses.
func SampleAt(rng *rand.Rand, g *Genome, rc ReadConfig, start int, name string) *seq.Fragment {
	rc = rc.withDefaults()
	return rc.sampleAt(rng, g, start, name)
}

// SampleWGS draws uniform whole-genome shotgun reads to the given
// coverage (total read bases ≈ coverage × genome length).
func SampleWGS(rng *rand.Rand, g *Genome, coverage float64, rc ReadConfig, prefix string) []*seq.Fragment {
	rc = rc.withDefaults()
	nReads := int(coverage * float64(len(g.Seq)) / float64(rc.MeanLen))
	frags := make([]*seq.Fragment, 0, nReads)
	for i := 0; i < nReads; i++ {
		start := rng.Intn(len(g.Seq))
		frags = append(frags, rc.sampleAt(rng, g, start, fmt.Sprintf("%s_%06d", prefix, i)))
	}
	return frags
}

// SampleEnriched draws gene-enriched reads: with probability
// islandBias a read starts inside a gene island (methyl-filtration /
// High-C0t behaviour, paper Section 8); island choice is
// abundance-skewed so sampling over the gene space is non-uniform, the
// regime that breaks linear-space assumptions in conventional
// assemblers (Section 2).
func SampleEnriched(rng *rand.Rand, g *Genome, nReads int, islandBias float64, rc ReadConfig, prefix string) []*seq.Fragment {
	rc = rc.withDefaults()
	frags := make([]*seq.Fragment, 0, nReads)
	for i := 0; i < nReads; i++ {
		var start int
		if len(g.Islands) > 0 && rng.Float64() < islandBias {
			// Skewed island choice: squaring the uniform variate
			// overweights low-index islands ~2:1.
			idx := int(float64(len(g.Islands)) * rng.Float64() * rng.Float64())
			if idx >= len(g.Islands) {
				idx = len(g.Islands) - 1
			}
			is := g.Islands[idx]
			off := rng.Intn(is.Len())
			start = is.Start + off - rc.MeanLen/2
			if start < 0 {
				start = 0
			}
			if start >= len(g.Seq) {
				start = len(g.Seq) - 1
			}
		} else {
			start = rng.Intn(len(g.Seq))
		}
		frags = append(frags, rc.sampleAt(rng, g, start, fmt.Sprintf("%s_%06d", prefix, i)))
	}
	return frags
}

// SampleBACs simulates bacterial-artificial-chromosome sequencing:
// nBACs long clones are chosen, and each is shotgunned end-and-middle
// with readsPerBAC reads (paper, Section 8).
func SampleBACs(rng *rand.Rand, g *Genome, nBACs, bacLen, readsPerBAC int, rc ReadConfig, prefix string) []*seq.Fragment {
	rc = rc.withDefaults()
	if bacLen > len(g.Seq) {
		bacLen = len(g.Seq)
	}
	var frags []*seq.Fragment
	for b := 0; b < nBACs; b++ {
		bacStart := rng.Intn(len(g.Seq) - bacLen + 1)
		for r := 0; r < readsPerBAC; r++ {
			var off int
			switch rng.Intn(3) {
			case 0: // left end
				off = rng.Intn(bacLen / 10)
			case 1: // right end
				off = bacLen - bacLen/10 + rng.Intn(bacLen/10) - rc.MeanLen
				if off < 0 {
					off = 0
				}
			default: // internal
				off = rng.Intn(bacLen)
			}
			start := bacStart + off
			if start >= len(g.Seq) {
				start = len(g.Seq) - 1
			}
			name := fmt.Sprintf("%s_b%03d_%04d", prefix, b, r)
			frags = append(frags, rc.sampleAt(rng, g, start, name))
		}
	}
	return frags
}

// SampleEnvironmental draws reads from a community of genomes with
// Zipf-skewed abundances (rank r gets weight r^-s), the regime of the
// Sargasso Sea sample (paper, Section 9.2). totalReads are apportioned
// by abundance.
func SampleEnvironmental(rng *rand.Rand, genomes []*Genome, zipfS float64, totalReads int, rc ReadConfig, prefix string) []*seq.Fragment {
	rc = rc.withDefaults()
	if zipfS <= 0 {
		zipfS = 1
	}
	weights := make([]float64, len(genomes))
	sum := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -zipfS)
		sum += weights[i]
	}
	var frags []*seq.Fragment
	idx := 0
	for gi, g := range genomes {
		n := int(float64(totalReads) * weights[gi] / sum)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			start := rng.Intn(len(g.Seq))
			name := fmt.Sprintf("%s_%06d", prefix, idx)
			idx++
			frags = append(frags, rc.sampleAt(rng, g, start, name))
		}
	}
	return frags
}

// TotalBases sums fragment lengths.
func TotalBases(frags []*seq.Fragment) int {
	n := 0
	for _, f := range frags {
		n += len(f.Bases)
	}
	return n
}
