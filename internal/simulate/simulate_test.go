package simulate

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/seq"
)

func TestNewGenomeDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGenome(rng, "g", GenomeConfig{
		Length:         50000,
		IslandFraction: 0.12,
		MeanIslandLen:  2000,
		Repeats:        []RepeatFamily{{Length: 500, Copies: 40, Divergence: 0.02}},
	})
	if len(g.Seq) != 50000 {
		t.Fatalf("length %d", len(g.Seq))
	}
	for _, b := range g.Seq {
		if !seq.IsBase(b) {
			t.Fatal("genome contains non-bases")
		}
	}
	if len(g.Islands) == 0 {
		t.Fatal("no islands carved")
	}
	for i, is := range g.Islands {
		if is.Start < 0 || is.End > 50000 || is.Len() <= 0 {
			t.Fatalf("island %d invalid: %+v", i, is)
		}
		if i > 0 && g.Islands[i-1].End > is.Start {
			t.Fatal("islands overlap or out of order")
		}
	}
	if len(g.Repeats) < 20 {
		t.Fatalf("only %d repeat copies placed", len(g.Repeats))
	}
	for _, r := range g.Repeats {
		for _, is := range g.Islands {
			if r.Span.Overlaps(is) {
				t.Fatalf("repeat %+v intrudes into island %+v", r, is)
			}
		}
	}
}

func TestRepeatFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewGenome(rng, "g", GenomeConfig{
		Length:  100000,
		Repeats: maizeRepeats(100000, 0.70),
	})
	f := g.RepeatFraction()
	if f < 0.45 || f > 0.85 {
		t.Errorf("repeat fraction %.2f outside maize-like band", f)
	}
}

func TestIslandIndex(t *testing.T) {
	g := &Genome{
		Seq:     make([]byte, 100),
		Islands: []Span{{10, 20}, {50, 70}},
	}
	if g.IslandIndex(15) != 0 || g.IslandIndex(60) != 1 {
		t.Error("island lookup wrong")
	}
	if g.IslandIndex(5) != -1 || g.IslandIndex(20) != -1 {
		t.Error("non-island positions must return -1")
	}
}

func TestSampleWGSCoverageAndGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGenome(rng, "g", GenomeConfig{Length: 60000})
	rc := DefaultReadConfig()
	rc.VectorProb = 0 // keep template comparison simple
	reads := SampleWGS(rng, g, 5.0, rc, "r")
	total := TotalBases(reads)
	cov := float64(total) / 60000
	if cov < 4.0 || cov > 6.0 {
		t.Errorf("coverage %.2f, want ≈5", cov)
	}
	for _, f := range reads[:50] {
		o := f.Origin
		if o == nil || o.Source != "g" || o.Start < 0 || o.End > 60000 || o.Start >= o.End {
			t.Fatalf("bad origin %+v", o)
		}
		if len(f.Qual) != len(f.Bases) {
			t.Fatal("quality length mismatch")
		}
		// The read must closely resemble its template under a real
		// alignment (indels shift frames, so positional identity is
		// the wrong measure).
		template := g.Seq[o.Start:o.End]
		if o.Reverse {
			template = seq.ReverseComplement(template)
		}
		r := align.Global(f.Bases, template, align.DefaultScoring())
		if r.Identity() < 0.93 {
			t.Fatalf("read diverges from template: %.2f identity", r.Identity())
		}
	}
}

func TestErrorRateMatchesQualityModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rc := DefaultReadConfig()
	rc.VectorProb = 0
	template := randomBases(rng, 700, 0.5)
	subs, total := 0, 0
	for trial := 0; trial < 200; trial++ {
		bases, _ := rc.applyErrors(rng, template)
		// Count exact-position substitutions approximately via global
		// identity: indels shift frames, so just require the overall
		// edit burden to be small but nonzero.
		n := len(bases)
		if n > len(template) {
			n = len(template)
		}
		for i := 0; i < n; i++ {
			total++
			if bases[i] != template[i] {
				subs++
			}
		}
	}
	rate := float64(subs) / float64(total)
	if rate < 0.001 {
		t.Errorf("error model produced almost no errors (%.4f)", rate)
	}
	if rate > 0.15 {
		t.Errorf("error model too noisy (%.4f)", rate)
	}
}

func TestVectorContamination(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rc := DefaultReadConfig()
	rc.VectorProb = 1.0
	template := randomBases(rng, 200, 0.5)
	bases, quals := rc.applyErrors(rng, template)
	if len(bases) <= 200-10 {
		t.Fatal("vector not prepended")
	}
	if len(bases) != len(quals) {
		t.Fatal("qual length mismatch")
	}
}

func TestSampleEnrichedBias(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := NewGenome(rng, "g", GenomeConfig{
		Length:         200000,
		IslandFraction: 0.12,
		MeanIslandLen:  4000,
	})
	reads := SampleEnriched(rng, g, 800, 0.85, DefaultReadConfig(), "mf")
	inIsland := 0
	for _, f := range reads {
		if f.Origin.Region >= 0 {
			inIsland++
		}
	}
	frac := float64(inIsland) / float64(len(reads))
	if frac < 0.4 {
		t.Errorf("only %.2f of enriched reads hit islands; want strong bias over the 0.12 baseline", frac)
	}

	uniform := SampleWGS(rng, g, 3.0, DefaultReadConfig(), "wgs")
	uIn := 0
	for _, f := range uniform {
		if f.Origin.Region >= 0 {
			uIn++
		}
	}
	uFrac := float64(uIn) / float64(len(uniform))
	if frac < 2*uFrac {
		t.Errorf("enrichment bias %.2f not clearly above uniform %.2f", frac, uFrac)
	}
}

func TestSampleBACsLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGenome(rng, "g", GenomeConfig{Length: 300000})
	reads := SampleBACs(rng, g, 3, 30000, 50, DefaultReadConfig(), "bac")
	if len(reads) != 150 {
		t.Fatalf("got %d reads", len(reads))
	}
	// Reads of one BAC must cluster within ~bacLen of each other.
	byBAC := map[string][]*seq.Fragment{}
	for _, f := range reads {
		key := f.Name[:8] // "bac_bNNN"
		byBAC[key] = append(byBAC[key], f)
	}
	if len(byBAC) != 3 {
		t.Fatalf("expected 3 BACs, got %d", len(byBAC))
	}
	for k, fs := range byBAC {
		lo, hi := 1<<30, 0
		for _, f := range fs {
			if f.Origin.Start < lo {
				lo = f.Origin.Start
			}
			if f.Origin.End > hi {
				hi = f.Origin.End
			}
		}
		if hi-lo > 30000+2000 {
			t.Errorf("BAC %s reads span %d ≫ clone length", k, hi-lo)
		}
	}
}

func TestSampleEnvironmentalAbundanceSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	genomes := NewGenomeSet(rng, 10, 20000, 30000, GenomeConfig{})
	reads := SampleEnvironmental(rng, genomes, 1.0, 2000, DefaultReadConfig(), "env")
	counts := map[string]int{}
	for _, f := range reads {
		counts[f.Origin.Source]++
	}
	if len(counts) != 10 {
		t.Fatalf("species sampled: %d", len(counts))
	}
	if counts[genomes[0].Name] <= counts[genomes[9].Name] {
		t.Errorf("abundance skew missing: first %d, last %d",
			counts[genomes[0].Name], counts[genomes[9].Name])
	}
}

func TestMaizeLikePreset(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := MaizeLike(rng, 150000)
	if m.Genome.RepeatFraction() < 0.4 {
		t.Errorf("maize-like repeat fraction %.2f too low", m.Genome.RepeatFraction())
	}
	all := m.All()
	if len(all) == 0 {
		t.Fatal("no reads")
	}
	total := float64(TotalBases(all))
	if total < 0.7*150000 || total > 1.6*150000 {
		t.Errorf("total bases %.0f not ≈1.1× genome", total)
	}
	// Type shares roughly per Table 2.
	share := func(fs []*seq.Fragment) float64 { return float64(TotalBases(fs)) / total }
	if s := share(m.BAC) + share(m.WGS); s < 0.5 {
		t.Errorf("shotgun share %.2f too low", s)
	}
	if s := share(m.MF) + share(m.HC); s < 0.15 {
		t.Errorf("enriched share %.2f too low", s)
	}
}

func TestDrosophilaLikePreset(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g, reads := DrosophilaLike(rng, 100000)
	cov := float64(TotalBases(reads)) / float64(len(g.Seq))
	if cov < 7 || cov > 11 {
		t.Errorf("coverage %.1f, want ≈8.8", cov)
	}
}

func TestSargassoLikePreset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	genomes, reads := SargassoLike(rng, 16, 1500)
	if len(genomes) != 16 {
		t.Fatalf("%d genomes", len(genomes))
	}
	if len(reads) < 1000 {
		t.Fatalf("only %d reads", len(reads))
	}
	// Strain pairs: genome 8 is a mutated copy of genome 7.
	same, n := 0, len(genomes[7].Seq)
	if len(genomes[8].Seq) < n {
		n = len(genomes[8].Seq)
	}
	for i := 0; i < n; i++ {
		if genomes[7].Seq[i] == genomes[8].Seq[i] {
			same++
		}
	}
	if float64(same)/float64(n) < 0.95 {
		t.Error("strain pair not near-identical")
	}
}

func TestDeterminism(t *testing.T) {
	a := MaizeLike(rand.New(rand.NewSource(42)), 50000)
	b := MaizeLike(rand.New(rand.NewSource(42)), 50000)
	if string(a.Genome.Seq) != string(b.Genome.Seq) {
		t.Error("genome not deterministic for fixed seed")
	}
	if len(a.MF) != len(b.MF) || string(a.MF[0].Bases) != string(b.MF[0].Bases) {
		t.Error("reads not deterministic for fixed seed")
	}
}

func TestFlattenOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := NewGenome(rng, "g", GenomeConfig{Length: 20000})
	pairs := SampleMatePairs(rng, g, 1.0, 4000, 200, DefaultReadConfig(), "m")
	flat := Flatten(pairs)
	if len(flat) != 2*len(pairs) {
		t.Fatalf("flatten length %d for %d pairs", len(flat), len(pairs))
	}
	for i, p := range pairs {
		if flat[2*i] != p.Forward || flat[2*i+1] != p.Reverse {
			t.Fatal("flatten order wrong")
		}
	}
}
