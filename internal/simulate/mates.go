package simulate

import (
	"fmt"
	"math/rand"

	"repro/internal/seq"
)

// Clone-mate simulation: fragments sequenced in pairs from either end
// of longer sub-clones of approximately known length (paper,
// Section 1: "fragments are typically sequenced in pairs from either
// end of longer DNA sequences (or sub-clones) of approximate known
// length (~5000 bp)"). Mate information is the classical tool for
// detecting repeat-induced overlaps and for scaffolding.

// MatePair is two reads from opposite ends of one sub-clone: Forward
// reads into the clone from its left end on the forward strand,
// Reverse reads from its right end on the reverse strand.
type MatePair struct {
	Forward *seq.Fragment
	Reverse *seq.Fragment
	// InsertLen is the true sub-clone length.
	InsertLen int
}

// SampleMatePairs draws paired-end reads at the given clone coverage:
// clones of length ≈ insertLen ± insertSD placed uniformly, one read
// off each end. Returns the pairs; Flatten gives the plain fragment
// list for the assembly pipeline.
func SampleMatePairs(rng *rand.Rand, g *Genome, coverage float64, insertLen, insertSD int, rc ReadConfig, prefix string) []MatePair {
	rc = rc.withDefaults()
	nPairs := int(coverage * float64(len(g.Seq)) / float64(2*rc.MeanLen))
	var pairs []MatePair
	for i := 0; i < nPairs; i++ {
		il := insertLen + int(rng.NormFloat64()*float64(insertSD))
		if il < 3*rc.MeanLen {
			il = 3 * rc.MeanLen
		}
		if il >= len(g.Seq) {
			il = len(g.Seq) - 1
		}
		start := rng.Intn(len(g.Seq) - il)
		end := start + il

		fwd := sampleOriented(rng, g, rc, start, false, fmt.Sprintf("%s_%06d_F", prefix, i))
		rev := sampleOriented(rng, g, rc, end-rc.MeanLen, true, fmt.Sprintf("%s_%06d_R", prefix, i))
		pairs = append(pairs, MatePair{Forward: fwd, Reverse: rev, InsertLen: il})
	}
	return pairs
}

// sampleOriented cuts one read at start with a fixed strand.
func sampleOriented(rng *rand.Rand, g *Genome, rc ReadConfig, start int, reverse bool, name string) *seq.Fragment {
	if start < 0 {
		start = 0
	}
	l := rc.readLen(rng)
	if start+l > len(g.Seq) {
		l = len(g.Seq) - start
	}
	template := g.Seq[start : start+l]
	if reverse {
		template = seq.ReverseComplement(template)
	}
	bases, quals := rc.applyErrors(rng, template)
	mid := start + l/2
	return &seq.Fragment{
		Name:  name,
		Bases: bases,
		Qual:  quals,
		Origin: &seq.Origin{
			Source:  g.Name,
			Start:   start,
			End:     start + l,
			Reverse: reverse,
			Region:  g.IslandIndex(mid),
		},
	}
}

// Flatten returns all reads of the pairs in order (forward, reverse,
// forward, reverse, ...).
func Flatten(pairs []MatePair) []*seq.Fragment {
	out := make([]*seq.Fragment, 0, 2*len(pairs))
	for _, p := range pairs {
		out = append(out, p.Forward, p.Reverse)
	}
	return out
}
