package assembly

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// tiledReads cuts overlapping reads across src with the given step,
// alternating strands, optionally with sequencing errors.
func tiledReads(rng *rand.Rand, src []byte, readLen, step int, errRate float64) []*seq.Fragment {
	var frags []*seq.Fragment
	idx := 0
	for start := 0; start+readLen <= len(src); start += step {
		b := append([]byte(nil), src[start:start+readLen]...)
		if idx%2 == 1 {
			seq.ReverseComplementInPlace(b)
		}
		if errRate > 0 {
			b = noisy(rng, b, errRate)
		}
		frags = append(frags, &seq.Fragment{Name: fmt.Sprintf("t%03d", idx), Bases: b})
		idx++
	}
	// Make sure the tail is covered.
	b := append([]byte(nil), src[len(src)-readLen:]...)
	if errRate > 0 {
		b = noisy(rng, b, errRate)
	}
	frags = append(frags, &seq.Fragment{Name: "tail", Bases: b})
	return frags
}

func noisy(rng *rand.Rand, s []byte, rate float64) []byte {
	out := make([]byte, 0, len(s)+4)
	for _, b := range s {
		r := rng.Float64()
		switch {
		case r < rate/4: // del
		case r < rate/2:
			out = append(out, b, seq.Base(rng.Intn(4)))
		case r < rate:
			out = append(out, seq.Base((seq.Code(b)+1+rng.Intn(3))%4))
		default:
			out = append(out, b)
		}
	}
	return out
}

func randSeq(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seq.Base(rng.Intn(4))
	}
	return b
}

func members(st *seq.Store) []int {
	m := make([]int, st.N())
	for i := range m {
		m[i] = i
	}
	return m
}

func TestSingleContigPerfectReads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := randSeq(rng, 2500)
	st := seq.NewStore(tiledReads(rng, truth, 400, 150, 0))
	contigs := AssembleCluster(st, members(st), DefaultConfig())
	if len(contigs) != 1 {
		t.Fatalf("got %d contigs, want 1", len(contigs))
	}
	c := contigs[0]
	if len(c.Reads) != st.N() {
		t.Errorf("%d of %d reads placed", len(c.Reads), st.N())
	}
	// Contig must reconstruct the truth (either strand).
	id := bestIdentity(c.Bases, truth)
	if id < 0.999 {
		t.Errorf("contig identity %.4f vs truth", id)
	}
	if len(c.Bases) < 2400 || len(c.Bases) > 2600 {
		t.Errorf("contig length %d, want ≈2500", len(c.Bases))
	}
	if c.Depth < 2 {
		t.Errorf("depth %.1f implausible", c.Depth)
	}
}

func bestIdentity(got, truth []byte) float64 {
	r1 := align.Global(got, truth, align.DefaultScoring())
	r2 := align.Global(seq.ReverseComplement(got), truth, align.DefaultScoring())
	if r2.Identity() > r1.Identity() {
		return r2.Identity()
	}
	return r1.Identity()
}

func TestConsensusCorrectsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := randSeq(rng, 2000)
	// 8× coverage with 2 % errors.
	st := seq.NewStore(tiledReads(rng, truth, 400, 50, 0.02))
	contigs := AssembleCluster(st, members(st), DefaultConfig())
	if len(contigs) == 0 {
		t.Fatal("no contigs")
	}
	c := contigs[0]
	id := bestIdentity(c.Bases, truth)
	if id < 0.99 {
		t.Errorf("consensus identity %.4f; voting should beat the 2%% read error", id)
	}
}

func TestTwoRegionsSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSeq(rng, 1500)
	b := randSeq(rng, 1500)
	frags := append(tiledReads(rng, a, 350, 140, 0), tiledReads(rng, b, 350, 140, 0)...)
	st := seq.NewStore(frags)
	contigs := AssembleCluster(st, members(st), DefaultConfig())
	if len(contigs) != 2 {
		t.Fatalf("got %d contigs, want 2 for two unlinked regions", len(contigs))
	}
	id1 := bestIdentity(contigs[0].Bases, a)
	id2 := bestIdentity(contigs[0].Bases, b)
	if id1 < 0.99 && id2 < 0.99 {
		t.Error("first contig matches neither region")
	}
}

func TestSingletonCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	st := seq.NewStore([]*seq.Fragment{{Name: "solo", Bases: randSeq(rng, 500)}})
	contigs := AssembleCluster(st, []int{0}, DefaultConfig())
	if len(contigs) != 1 || len(contigs[0].Reads) != 1 {
		t.Fatalf("singleton assembly wrong: %d contigs", len(contigs))
	}
	if string(contigs[0].Bases) != string(st.Fragment(0).Bases) {
		t.Error("singleton contig must be the read itself")
	}
}

func TestEmptyCluster(t *testing.T) {
	st := seq.NewStore(nil)
	if contigs := AssembleCluster(st, nil, DefaultConfig()); contigs != nil {
		t.Error("empty cluster must produce no contigs")
	}
}

func TestAssembleAllMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var clusters [][]int
	var frags []*seq.Fragment
	for c := 0; c < 6; c++ {
		truth := randSeq(rng, 1200)
		reads := tiledReads(rng, truth, 300, 120, 0.01)
		var cl []int
		for _, f := range reads {
			cl = append(cl, len(frags))
			frags = append(frags, f)
		}
		clusters = append(clusters, cl)
	}
	st := seq.NewStore(frags)
	seqr := AssembleAll(st, clusters, DefaultConfig(), 1)
	parr := AssembleAll(st, clusters, DefaultConfig(), 4)
	if len(seqr) != len(parr) {
		t.Fatal("result length mismatch")
	}
	for i := range seqr {
		if len(seqr[i]) != len(parr[i]) {
			t.Fatalf("cluster %d: %d vs %d contigs", i, len(seqr[i]), len(parr[i]))
		}
		for j := range seqr[i] {
			if string(seqr[i][j].Bases) != string(parr[i][j].Bases) {
				t.Fatalf("cluster %d contig %d differs between worker counts", i, j)
			}
		}
	}
}

func TestRealisticClusterFromSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{Length: 3000})
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 350
	rc.LenSD = 40
	rc.VectorProb = 0
	reads := simulate.SampleWGS(rng, g, 7.0, rc, "r")
	st := seq.NewStore(reads)
	contigs := AssembleCluster(st, members(st), DefaultConfig())
	if len(contigs) == 0 {
		t.Fatal("no contigs")
	}
	// The largest contig should reconstruct most of the genome: a long
	// high-identity local alignment against the truth.
	if len(contigs[0].Bases) < 2000 {
		t.Errorf("largest contig %d bp of a 3000 bp genome at 7×", len(contigs[0].Bases))
	}
	loc := align.Local(contigs[0].Bases, g.Seq, align.DefaultScoring())
	locRC := align.Local(seq.ReverseComplement(contigs[0].Bases), g.Seq, align.DefaultScoring())
	if locRC.Length > loc.Length {
		loc = locRC
	}
	if loc.Length < 1800 || loc.Identity() < 0.97 {
		t.Errorf("best local match %d cols at %.4f identity", loc.Length, loc.Identity())
	}
}

func TestMaxSeedBucketSkipsRepeatSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// 30 reads that are all copies of one repeat: every seed bucket
	// saturates, so with a tiny cap no overlaps are found and each
	// read stays its own contig.
	motif := randSeq(rng, 300)
	var frags []*seq.Fragment
	for i := 0; i < 30; i++ {
		frags = append(frags, &seq.Fragment{
			Name:  fmt.Sprintf("rep%d", i),
			Bases: append([]byte(nil), motif...),
		})
	}
	st := seq.NewStore(frags)
	cfg := DefaultConfig()
	cfg.MaxSeedBucket = 4
	contigs := AssembleCluster(st, members(st), cfg)
	if len(contigs) != 30 {
		t.Errorf("%d contigs; saturated seeds should prevent merging", len(contigs))
	}
	cfg.MaxSeedBucket = 200
	contigs = AssembleCluster(st, members(st), cfg)
	if len(contigs) != 1 {
		t.Errorf("%d contigs; generous cap should assemble the pile", len(contigs))
	}
}
