package assembly

import (
	"sort"

	"repro/internal/align"
	"repro/internal/seq"
)

// consensus builds one contig from a layout group: a backbone is
// stitched left-to-right from the placed reads, then every read is
// realigned to its backbone window and votes per column; the majority
// call (including gap) is emitted. Align-to-backbone voting corrects
// most sequencing errors wherever coverage exceeds one.
func consensus(group []placed, members []int, get func(i int, rev bool) []byte, cfg Config) Contig {
	sort.Slice(group, func(i, j int) bool {
		if group[i].off != group[j].off {
			return group[i].off < group[j].off
		}
		return group[i].read < group[j].read
	})
	min := group[0].off
	for i := range group {
		group[i].off -= min
	}

	// Backbone: append each read's non-covered suffix.
	var backbone []byte
	for _, p := range group {
		b := get(p.read, p.rev)
		if p.off >= len(backbone) {
			// Drift opened a gap; bridge with the read itself.
			backbone = append(backbone, b...)
			continue
		}
		if p.off+len(b) <= len(backbone) {
			continue // contained
		}
		backbone = append(backbone, b[len(backbone)-p.off:]...)
	}

	// Voting: per-column base/gap votes, plus insertion votes between
	// columns so bases the backbone lost to read deletions can be
	// recovered when a majority of covering reads carries them.
	const gapVote = 4
	votes := make([][5]int32, len(backbone))
	insVotes := make([][4]int32, len(backbone)+1)
	totalBases := 0
	for _, p := range group {
		b := get(p.read, p.rev)
		totalBases += len(b)
		lo := p.off - cfg.OffsetSlack
		if lo < 0 {
			lo = 0
		}
		hi := p.off + len(b) + cfg.OffsetSlack
		if hi > len(backbone) {
			hi = len(backbone)
		}
		window := backbone[lo:hi]
		r, ok := align.Fit(window, b, p.off-lo, cfg.OffsetSlack+cfg.Band, cfg.Scoring)
		if !ok {
			continue // drifted outside the band: this read votes nothing
		}
		u := lo + r.AStart
		vi := r.BStart
		insRun := false
		for _, op := range r.Ops {
			switch op {
			case align.OpM:
				if u < len(backbone) {
					if c := seq.Code(b[vi]); c >= 0 {
						votes[u][c]++
					}
				}
				u++
				vi++
				insRun = false
			case align.OpY: // read base with no backbone column: insertion
				if !insRun && u <= len(backbone) {
					if c := seq.Code(b[vi]); c >= 0 {
						insVotes[u][c]++
					}
				}
				insRun = true // count only the first base of a run
				vi++
			case align.OpX: // backbone base the read lacks: gap vote
				if u < len(backbone) {
					votes[u][gapVote]++
				}
				u++
				insRun = false
			}
		}
	}

	coverage := func(i int) int32 {
		var n int32
		for c := 0; c < 5; c++ {
			n += votes[i][c]
		}
		return n
	}
	emitIns := func(out []byte, i int) []byte {
		best, bestC := int32(0), -1
		for c := 0; c < 4; c++ {
			if insVotes[i][c] > best {
				best, bestC = insVotes[i][c], c
			}
		}
		if bestC < 0 {
			return out
		}
		// Require a majority of the local coverage to agree.
		var cov int32
		if i < len(backbone) {
			cov = coverage(i)
		} else if i > 0 {
			cov = coverage(i - 1)
		}
		if 2*best > cov {
			out = append(out, seq.Base(bestC))
		}
		return out
	}

	out := make([]byte, 0, len(backbone))
	for i, v := range votes {
		out = emitIns(out, i)
		best, bestC := int32(-1), -1
		for c := 0; c < 5; c++ {
			if v[c] > best {
				best, bestC = v[c], c
			}
		}
		switch {
		case best <= 0:
			out = append(out, backbone[i]) // no votes: keep backbone
		case bestC == gapVote:
			// majority says this column is an artifact: drop it
		default:
			out = append(out, seq.Base(bestC))
		}
	}
	out = emitIns(out, len(backbone))

	contig := Contig{Bases: out}
	for _, p := range group {
		contig.Reads = append(contig.Reads, Placement{
			Frag:    members[p.read],
			Offset:  p.off,
			Reverse: p.rev,
		})
	}
	if len(out) > 0 {
		contig.Depth = float64(totalBases) / float64(len(out))
	}
	return contig
}
