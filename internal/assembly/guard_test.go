package assembly

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func guardStore(t *testing.T) (*seq.Store, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{Length: 1500})
	frags := tiledReads(rng, g.Seq, 300, 150, 0)
	members := make([]int, len(frags))
	for i := range members {
		members[i] = i
	}
	return seq.NewStore(frags), members
}

// TestGuardHealthyPassthrough: a guard around a healthy cluster
// changes nothing — same contigs as the unguarded assembler, one
// attempt, no quarantine.
func TestGuardHealthyPassthrough(t *testing.T) {
	st, members := guardStore(t)
	want := AssembleCluster(st, members, Config{})
	got, out := AssembleClusterGuarded(st, 0, members, Config{}, Guard{Retries: 2})
	if out.Quarantined || out.Attempts != 1 || out.Err != "" {
		t.Fatalf("healthy cluster outcome: %+v", out)
	}
	if len(got) != len(want) {
		t.Fatalf("%d contigs, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i].Bases) != string(want[i].Bases) {
			t.Fatalf("contig %d differs under guard", i)
		}
	}
}

// TestGuardDeadlineQuarantines: a cluster that cannot finish inside
// its deadline is retried, then quarantined as singleton contigs, with
// retry and quarantine events traced and counted — and the failure
// never propagates as a panic or error.
func TestGuardDeadlineQuarantines(t *testing.T) {
	st, members := guardStore(t)
	tr := obs.NewTracer(1, 0)
	reg := obs.NewRegistry()
	g := Guard{Retries: 2, Backoff: time.Microsecond, Deadline: time.Nanosecond, Trace: tr, Metrics: reg}
	contigs, out := AssembleClusterGuarded(st, 7, members, Config{}, g)
	if !out.Quarantined || out.Attempts != 3 || out.Err == "" {
		t.Fatalf("outcome = %+v, want quarantined after 3 attempts", out)
	}
	if len(contigs) != len(members) {
		t.Fatalf("%d singleton contigs, want %d", len(contigs), len(members))
	}
	for i, c := range contigs {
		if len(c.Reads) != 1 || c.Reads[0].Frag != members[i] {
			t.Fatalf("contig %d is not read %d's singleton: %+v", i, members[i], c.Reads)
		}
		if string(c.Bases) != string(st.Fragment(members[i]).Bases) {
			t.Fatalf("singleton %d lost bases", i)
		}
	}
	var retries, quarantines int
	for _, e := range tr.Events(0) {
		switch e.Kind {
		case obs.EvRetry:
			retries++
			if e.A != 7 {
				t.Errorf("retry event names cluster %d, want 7", e.A)
			}
		case obs.EvQuarantine:
			quarantines++
			if e.A != 7 || e.B != int64(len(members)) {
				t.Errorf("quarantine event = %+v", e)
			}
		}
	}
	if retries != 2 || quarantines != 1 {
		t.Errorf("traced %d retries and %d quarantines, want 2 and 1", retries, quarantines)
	}
	if v := reg.Counter("assembly_retries").Value(); v != 2 {
		t.Errorf("assembly_retries = %d, want 2", v)
	}
	if v := reg.Counter("assembly_quarantined").Value(); v != 1 {
		t.Errorf("assembly_quarantined = %d, want 1", v)
	}
}

// TestGuardContainsPanic: an assembler panic becomes an error inside
// one attempt, never an unwinding goroutine.
func TestGuardContainsPanic(t *testing.T) {
	if _, err := attemptCluster(nil, []int{0}, Config{}, 0); err == nil {
		t.Error("panicking attempt returned no error")
	}
}

// TestGuardAllOutcomesOrdered: AssembleAllGuarded returns one outcome
// per cluster in input order.
func TestGuardAllOutcomesOrdered(t *testing.T) {
	st, members := guardStore(t)
	clusters := [][]int{members[:2], members[2:4], members[4:]}
	contigs, outs := AssembleAllGuarded(st, clusters, Config{}, 2, Guard{})
	if len(contigs) != 3 || len(outs) != 3 {
		t.Fatalf("got %d contig sets, %d outcomes", len(contigs), len(outs))
	}
	for i, o := range outs {
		if o.Quarantined || o.Attempts != 1 {
			t.Errorf("cluster %d outcome %+v", i, o)
		}
	}
}
