package assembly

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/obs"
	"repro/internal/seq"
)

// Guard bounds one cluster's assembly attempts so a pathological
// cluster — one that panics the assembler or blows through its wall
// budget — degrades gracefully instead of aborting the pipeline. A
// failing cluster is retried with exponential backoff up to the retry
// budget, then quarantined: its reads are emitted as single-read
// contigs, which loses contiguity for that cluster only and preserves
// every base of input.
type Guard struct {
	// Retries is the number of attempts beyond the first before the
	// cluster is quarantined (negative = 0).
	Retries int
	// Backoff is the pause before the first retry, doubling per
	// attempt (default 10ms).
	Backoff time.Duration
	// Deadline is the wall budget per attempt; an attempt that
	// exceeds it counts as failed (0 = no deadline).
	Deadline time.Duration
	// Trace, when set, receives EvRetry and EvQuarantine events (on
	// rank 0 — assembly is host-parallel, not rank-parallel).
	Trace *obs.Tracer
	// Metrics, when set, counts retries and quarantined clusters.
	Metrics *obs.Registry
	// FailInject, when set, poisons selected clusters for testing:
	// every attempt at a cluster id for which it returns true fails
	// before the assembler runs, so the cluster exhausts its retries
	// and is quarantined deterministically.
	FailInject func(id int) bool
}

// Outcome describes how one cluster's assembly ended.
type Outcome struct {
	// Attempts is the number of assembly attempts made (≥ 1).
	Attempts int
	// Quarantined is true when every attempt failed and the cluster
	// was emitted as singleton contigs.
	Quarantined bool
	// Err is the last failure message; empty unless Quarantined.
	Err string
}

// attemptResult carries one attempt's outcome over a channel so a
// timed-out attempt's goroutine cannot race the caller.
type attemptResult struct {
	contigs []Contig
	err     error
}

// attemptCluster runs one assembly attempt with panic containment and
// an optional wall deadline. On deadline the attempt's goroutine is
// abandoned (it parks its result in a buffered channel and exits).
func attemptCluster(store seq.Seqs, members []int, cfg Config, deadline time.Duration) ([]Contig, error) {
	ch := make(chan attemptResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- attemptResult{err: fmt.Errorf("assembler panic: %v", r)}
			}
		}()
		ch <- attemptResult{contigs: AssembleCluster(store, members, cfg)}
	}()
	if deadline <= 0 {
		r := <-ch
		return r.contigs, r.err
	}
	t := time.NewTimer(deadline)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.contigs, r.err
	case <-t.C:
		return nil, fmt.Errorf("assembler exceeded %v deadline", deadline)
	}
}

// singletonContigs emits each read of a quarantined cluster as its own
// contig, so downstream output keeps every base without trusting the
// failing assembler.
func singletonContigs(store seq.Seqs, members []int) []Contig {
	out := make([]Contig, 0, len(members))
	for _, fid := range members {
		b := store.Seq(fid)
		out = append(out, Contig{
			Bases: append([]byte(nil), b...),
			Reads: []Placement{{Frag: fid}},
			Depth: 1,
		})
	}
	return out
}

// AssembleClusterGuarded is AssembleCluster under a Guard: retries
// with backoff on failure, quarantines (emitting singletons) when the
// budget is exhausted. id labels the cluster in events and outcomes.
func AssembleClusterGuarded(store seq.Seqs, id int, members []int, cfg Config, g Guard) ([]Contig, Outcome) {
	retries := g.Retries
	if retries < 0 {
		retries = 0
	}
	base := g.Backoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	bo := backoff.Policy{Base: base}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			time.Sleep(bo.Delay(attempt-1, nil))
			g.Trace.Emit(0, obs.EvRetry, 0, 0, int64(id), int64(attempt), 0)
			g.Metrics.Counter("assembly_retries").Inc()
		}
		var contigs []Contig
		var err error
		if g.FailInject != nil && g.FailInject(id) {
			err = fmt.Errorf("injected failure: cluster %d is poisoned", id)
		} else {
			contigs, err = attemptCluster(store, members, cfg, g.Deadline)
		}
		if err == nil {
			return contigs, Outcome{Attempts: attempt + 1}
		}
		lastErr = err
	}
	g.Trace.Emit(0, obs.EvQuarantine, 0, 0, int64(id), int64(len(members)), 0)
	g.Metrics.Counter("assembly_quarantined").Inc()
	return singletonContigs(store, members), Outcome{
		Attempts:    retries + 1,
		Quarantined: true,
		Err:         lastErr.Error(),
	}
}

// AssembleAllGuarded is AssembleAll under a Guard: clusters are farmed
// across `workers` goroutines, each assembled with retry/quarantine
// protection. The second return holds one Outcome per cluster, in
// input order.
func AssembleAllGuarded(store seq.Seqs, clusters [][]int, cfg Config, workers int, g Guard) ([][]Contig, []Outcome) {
	if workers < 1 {
		workers = 1
	}
	out := make([][]Contig, len(clusters))
	outcomes := make([]Outcome, len(clusters))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], outcomes[i] = AssembleClusterGuarded(store, i, clusters[i], cfg, g)
			}
		}()
	}
	for i := range clusters {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out, outcomes
}
