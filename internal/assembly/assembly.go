// Package assembly is the serial assembler of the cluster-then-assemble
// framework — the role CAP3 plays in the paper (Section 8). Each
// cluster is assembled independently with a conventional
// overlap–layout–consensus procedure at a stringency higher than
// clustering used, so inconsistent (repeat-induced) overlaps that
// transitive clustering tolerated are detected and the cluster splits
// into multiple contigs. Clusters are trivially farmed across
// goroutines, the paper's "multiple instances of a serial assembler in
// parallel".
package assembly

import (
	"sort"
	"sync"

	"repro/internal/align"
	"repro/internal/seq"
)

// Config parameterizes per-cluster assembly.
type Config struct {
	// W is the seed length for within-cluster overlap detection.
	W int
	// Band is the anchored-alignment band half-width.
	Band int
	// Scoring for overlap alignments.
	Scoring align.Scoring
	// Criteria is the stringent assembly overlap criterion.
	Criteria align.Criteria
	// OffsetSlack tolerates indel drift when checking layout
	// consistency (bases).
	OffsetSlack int
	// MaxSeedBucket skips seed w-mers occurring more often than this
	// within a cluster — the usual guard against quadratic seeding in
	// repeat-dense clusters (0 = default 64).
	MaxSeedBucket int
}

// DefaultConfig mirrors conventional assembler stringency.
func DefaultConfig() Config {
	return Config{
		W:             14,
		Band:          align.DefaultBand,
		Scoring:       align.DefaultScoring(),
		Criteria:      align.AssemblyCriteria(),
		OffsetSlack:   24,
		MaxSeedBucket: 64,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.W == 0 {
		c.W = d.W
	}
	if c.Band == 0 {
		c.Band = d.Band
	}
	if c.Scoring == (align.Scoring{}) {
		c.Scoring = d.Scoring
	}
	if c.Criteria == (align.Criteria{}) {
		c.Criteria = d.Criteria
	}
	if c.OffsetSlack == 0 {
		c.OffsetSlack = d.OffsetSlack
	}
	if c.MaxSeedBucket == 0 {
		c.MaxSeedBucket = d.MaxSeedBucket
	}
	return c
}

// Placement locates one read within a contig.
type Placement struct {
	Frag    int  // fragment ID
	Offset  int  // start column in the contig
	Reverse bool // read is reverse-complemented in the contig
}

// Contig is one assembled contiguous sequence.
type Contig struct {
	Bases  []byte
	Reads  []Placement
	Depth  float64 // mean read coverage
}

// overlap is an accepted pairwise overlap between oriented reads.
type overlap struct {
	a, b   int  // indices into the cluster member list
	oa, ob bool // reverse flags of the aligned orientations
	diag   int  // startA − startB in the oriented frames
	score  int
}

// AssembleCluster assembles the reads of one cluster (fragment IDs
// into the store) and returns its contigs. Fragments that overlap
// nothing at assembly stringency come back as single-read contigs.
func AssembleCluster(store seq.Seqs, members []int, cfg Config) []Contig {
	cfg = cfg.withDefaults()
	if len(members) == 0 {
		return nil
	}
	seqs := make([][]byte, len(members))
	rcs := make([][]byte, len(members))
	for i, fid := range members {
		seqs[i] = store.Seq(fid)
		rcs[i] = seq.ReverseComplement(seqs[i])
	}
	get := func(i int, rev bool) []byte {
		if rev {
			return rcs[i]
		}
		return seqs[i]
	}

	lengths := make([]int, len(members))
	for i := range seqs {
		lengths[i] = len(seqs[i])
	}
	overlaps := findOverlaps(seqs, rcs, cfg)
	layout := buildLayout(len(members), lengths, overlaps, cfg)

	var contigs []Contig
	for _, group := range layout {
		contigs = append(contigs, consensus(group, members, get, cfg))
	}
	sort.Slice(contigs, func(i, j int) bool { return len(contigs[i].Bases) > len(contigs[j].Bases) })
	return contigs
}

// AssembleAll farms clusters across `workers` goroutines and returns
// per-cluster contigs in input order.
func AssembleAll(store seq.Seqs, clusters [][]int, cfg Config, workers int) [][]Contig {
	if workers < 1 {
		workers = 1
	}
	out := make([][]Contig, len(clusters))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = AssembleCluster(store, clusters[i], cfg)
			}
		}()
	}
	for i := range clusters {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// findOverlaps detects pairwise overlaps within the cluster by seeding
// on shared w-mers, extending to a maximal match, and running the
// banded anchored overlap test.
func findOverlaps(seqs, rcs [][]byte, cfg Config) []overlap {
	type occ struct {
		read int32
		pos  int32
		rev  bool
	}
	index := make(map[seq.Kmer][]occ)
	for i, s := range seqs {
		seq.EachKmer(s, cfg.W, func(pos int, km seq.Kmer) {
			index[km] = append(index[km], occ{int32(i), int32(pos), false})
		})
		seq.EachKmer(rcs[i], cfg.W, func(pos int, km seq.Kmer) {
			index[km] = append(index[km], occ{int32(i), int32(pos), true})
		})
	}
	get := func(i int32, rev bool) []byte {
		if rev {
			return rcs[i]
		}
		return seqs[i]
	}

	type pairKey struct {
		a, b   int32
		oa, ob bool
	}
	best := make(map[pairKey]overlap)
	tried := make(map[[5]int32]bool) // anchor dedup: (a,b,apos,bpos,orient)

	// Iterate seeds in sorted order: map order would let equal-score
	// overlaps with different anchors win the best-map race differently
	// across runs, and contigs must be bit-reproducible.
	kms := make([]seq.Kmer, 0, len(index))
	for km := range index {
		kms = append(kms, km)
	}
	sort.Slice(kms, func(i, j int) bool { return kms[i] < kms[j] })
	for _, km := range kms {
		occs := index[km]
		if cfg.MaxSeedBucket > 0 && len(occs) > cfg.MaxSeedBucket {
			continue // repeat-saturated seed
		}
		for x := 0; x < len(occs); x++ {
			for y := x + 1; y < len(occs); y++ {
				oa, ob := occs[x], occs[y]
				if oa.read == ob.read {
					continue
				}
				if oa.read > ob.read {
					oa, ob = ob, oa
				}
				// Canonical orientation: the lower read forward.
				if oa.rev {
					// Mirror both orientations.
					oa = occ{oa.read, int32(len(seqs[oa.read])) - oa.pos - int32(cfg.W), false}
					ob = occ{ob.read, int32(len(seqs[ob.read])) - ob.pos - int32(cfg.W), !ob.rev}
					// mirrored positions refer to the opposite strands
					oa.rev = false
				}
				sa, sb := get(oa.read, oa.rev), get(ob.read, ob.rev)
				// Extend the seed to a maximal match.
				i, j := int(oa.pos), int(ob.pos)
				for i > 0 && j > 0 && sa[i-1] == sb[j-1] && seq.IsBase(sa[i-1]) {
					i--
					j--
				}
				e, f := int(oa.pos)+cfg.W, int(ob.pos)+cfg.W
				for e < len(sa) && f < len(sb) && sa[e] == sb[f] && seq.IsBase(sa[e]) {
					e++
					f++
				}
				orient := int32(0)
				if ob.rev {
					orient = 1
				}
				akey := [5]int32{oa.read, ob.read, int32(i), int32(j), orient}
				if tried[akey] {
					continue
				}
				tried[akey] = true
				res, ok := align.AnchoredOverlap(sa, sb, i, j, e-i, cfg.Band, cfg.Scoring)
				if !ok || !cfg.Criteria.Accept(res) {
					continue
				}
				k := pairKey{oa.read, ob.read, false, ob.rev}
				ov := overlap{
					a: int(oa.read), b: int(ob.read),
					oa: false, ob: ob.rev,
					diag:  res.AStart - res.BStart,
					score: res.Score,
				}
				if cur, exists := best[k]; !exists || ov.score > cur.score {
					best[k] = ov
				}
			}
		}
	}
	out := make([]overlap, 0, len(best))
	for _, ov := range best {
		out = append(out, ov)
	}
	// Deterministic greedy order: score desc, then stable key order.
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		if out[i].a != out[j].a {
			return out[i].a < out[j].a
		}
		if out[i].b != out[j].b {
			return out[i].b < out[j].b
		}
		return !out[i].ob && out[j].ob
	})
	return out
}

// placed is one read's position within a growing layout.
type placed struct {
	read int
	off  int
	rev  bool
}

// buildLayout greedily merges reads into consistent layouts, skipping
// overlaps that contradict established placements (the inconsistency
// detection that splits repeat-joined clusters).
func buildLayout(n int, lengths []int, overlaps []overlap, cfg Config) [][]placed {
	groupOf := make([]int, n)
	groups := make(map[int][]placed, n)
	for i := 0; i < n; i++ {
		groupOf[i] = i
		groups[i] = []placed{{read: i, off: 0, rev: false}}
	}
	find := func(r int) int { return groupOf[r] }
	placementOf := func(g int, r int) *placed {
		for i := range groups[g] {
			if groups[g][i].read == r {
				return &groups[g][i]
			}
		}
		return nil
	}

	for _, ov := range overlaps {
		ga, gb := find(ov.a), find(ov.b)
		pa := placementOf(ga, ov.a)
		pb := placementOf(gb, ov.b)

		// Express the overlap in pa's frame.
		obEff, diagEff := ov.ob, ov.diag
		if pa.rev != ov.oa {
			// Mirror the overlap so a's orientation matches its layout.
			obEff = !obEff
			diagEff = mirrorDiag(ov, lengths)
		}
		wantOffB := pa.off + diagEff
		wantRevB := obEff

		if ga == gb {
			// Consistency check only.
			if pb.rev != wantRevB || abs(pb.off-wantOffB) > cfg.OffsetSlack {
				continue // inconsistent (repeat-induced): skip
			}
			continue
		}
		// Merge gb into ga with the transform that sends pb to
		// (wantOffB, wantRevB).
		var moved []placed
		if pb.rev == wantRevB {
			delta := wantOffB - pb.off
			for _, p := range groups[gb] {
				p.off += delta
				moved = append(moved, p)
			}
		} else {
			// Flip gb: reflect offsets about the group's extent.
			ext := 0
			for _, p := range groups[gb] {
				if end := p.off + lenOf(lengths, p.read); end > ext {
					ext = end
				}
			}
			flip := func(p placed) placed {
				return placed{
					read: p.read,
					off:  ext - (p.off + lenOf(lengths, p.read)),
					rev:  !p.rev,
				}
			}
			fb := flip(*pb)
			delta := wantOffB - fb.off
			for _, p := range groups[gb] {
				f := flip(p)
				f.off += delta
				moved = append(moved, f)
			}
		}
		groups[ga] = append(groups[ga], moved...)
		for _, p := range moved {
			groupOf[p.read] = ga
		}
		delete(groups, gb)
	}

	var out [][]placed
	var keys []int
	for g := range groups {
		keys = append(keys, g)
	}
	sort.Ints(keys)
	for _, g := range keys {
		out = append(out, groups[g])
	}
	return out
}

func lenOf(lengths []int, read int) int { return lengths[read] }

func mirrorDiag(ov overlap, lengths []int) int {
	// Mirrored frame: both reads reverse-complemented; the overlap
	// region's start coordinates reflect about the read ends. The diag
	// in the mirrored frame needs the aligned end coordinates, which
	// we approximate from the read lengths and the original diag:
	// startA' − startB' = (la − endA) − (lb − endB) ≈ (la − lb) −
	// (startA − startB) when the overlap spans to the boundaries.
	return lenOf(lengths, ov.a) - lenOf(lengths, ov.b) - ov.diag
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
