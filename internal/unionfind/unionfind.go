// Package unionfind implements the disjoint-set (union–find) data
// structure the paper's master processor uses to maintain the current
// clustering (Section 7): an array of n integers, find with path
// compression and union by rank, giving inverse-Ackermann amortized
// operations.
package unionfind

// UF is a disjoint-set forest over elements 0..n-1 with per-set size
// tracking.
type UF struct {
	parent []int32
	rank   []int8
	size   []int32
	sets   int
}

// New creates n singleton sets.
func New(n int) *UF {
	uf := &UF{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// N returns the number of elements.
func (u *UF) N() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UF) Sets() int { return u.sets }

// Find returns the representative of x's set, compressing the path.
func (u *UF) Find(x int) int {
	root := x
	for int(u.parent[root]) != root {
		root = int(u.parent[root])
	}
	for int(u.parent[x]) != root {
		x, u.parent[x] = int(u.parent[x]), int32(root)
	}
	return root
}

// Same reports whether x and y are in the same set.
func (u *UF) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Size returns the size of x's set.
func (u *UF) Size(x int) int { return int(u.size[u.Find(x)]) }

// Union merges the sets of x and y and reports whether a merge happened
// (false if they were already together).
func (u *UF) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = int32(rx)
	u.size[rx] += u.size[ry]
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.sets--
	return true
}

// Groups returns the sets as slices of member elements, in ascending
// order of each set's smallest member. Within a group members ascend.
func (u *UF) Groups() [][]int {
	n := len(u.parent)
	idx := make(map[int]int, u.sets)
	var groups [][]int
	for i := 0; i < n; i++ {
		r := u.Find(i)
		g, ok := idx[r]
		if !ok {
			g = len(groups)
			idx[r] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	return groups
}

// SetSizes returns a map from representative to set size.
func (u *UF) SetSizes() map[int]int {
	sizes := make(map[int]int, u.sets)
	for i := range u.parent {
		sizes[u.Find(i)]++
	}
	return sizes
}
