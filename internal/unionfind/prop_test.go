package unionfind

import (
	"math/rand"
	"testing"
)

// naiveModel is the obviously-correct reference: every element maps to
// a partition label, and a merge relabels one side wholesale.
type naiveModel struct {
	label []int
}

func newNaiveModel(n int) *naiveModel {
	m := &naiveModel{label: make([]int, n)}
	for i := range m.label {
		m.label[i] = i
	}
	return m
}

func (m *naiveModel) union(x, y int) bool {
	lx, ly := m.label[x], m.label[y]
	if lx == ly {
		return false
	}
	for i, l := range m.label {
		if l == ly {
			m.label[i] = lx
		}
	}
	return true
}

func (m *naiveModel) sets() int {
	seen := map[int]bool{}
	for _, l := range m.label {
		seen[l] = true
	}
	return len(seen)
}

func (m *naiveModel) size(x int) int {
	n := 0
	for _, l := range m.label {
		if l == m.label[x] {
			n++
		}
	}
	return n
}

// TestUFMatchesNaiveModel drives random merge sequences through the
// union–find and the naive partition-map model in lockstep, comparing
// the full observable state (Same for every pair, Sets, Size, N) after
// every operation batch.
func TestUFMatchesNaiveModel(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 2 + rng.Intn(40)
		uf := New(n)
		model := newNaiveModel(n)
		ops := rng.Intn(3 * n)
		for op := 0; op < ops; op++ {
			x, y := rng.Intn(n), rng.Intn(n)
			if got, want := uf.Union(x, y), model.union(x, y); got != want {
				t.Fatalf("trial %d op %d: Union(%d,%d) = %v, model says %v", trial, op, x, y, got, want)
			}
		}
		if uf.N() != n {
			t.Fatalf("trial %d: N = %d, want %d", trial, uf.N(), n)
		}
		if got, want := uf.Sets(), model.sets(); got != want {
			t.Fatalf("trial %d: Sets = %d, model says %d", trial, got, want)
		}
		for x := 0; x < n; x++ {
			if got, want := uf.Size(x), model.size(x); got != want {
				t.Fatalf("trial %d: Size(%d) = %d, model says %d", trial, x, got, want)
			}
			for y := 0; y < n; y++ {
				if got, want := uf.Same(x, y), model.label[x] == model.label[y]; got != want {
					t.Fatalf("trial %d: Same(%d,%d) = %v, model says %v", trial, x, y, got, want)
				}
			}
		}
	}
}

// TestUFGroupsConsistent: Groups and SetSizes must agree with the
// element-wise view after random merges — every element appears in
// exactly one group, grouped with exactly its Same-mates.
func TestUFGroupsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 64
	uf := New(n)
	for op := 0; op < 100; op++ {
		uf.Union(rng.Intn(n), rng.Intn(n))
	}
	seen := make([]bool, n)
	groups := uf.Groups()
	if len(groups) != uf.Sets() {
		t.Fatalf("%d groups, Sets = %d", len(groups), uf.Sets())
	}
	for _, g := range groups {
		for _, x := range g {
			if seen[x] {
				t.Fatalf("element %d in two groups", x)
			}
			seen[x] = true
			if !uf.Same(g[0], x) {
				t.Fatalf("group mixes sets: %d vs %d", g[0], x)
			}
			if uf.Size(x) != len(g) {
				t.Fatalf("Size(%d) = %d, group has %d", x, uf.Size(x), len(g))
			}
		}
	}
	for x, ok := range seen {
		if !ok {
			t.Fatalf("element %d in no group", x)
		}
	}
	total := 0
	for root, sz := range uf.SetSizes() {
		if uf.Find(root) != root {
			t.Fatalf("SetSizes key %d is not a root", root)
		}
		if uf.Size(root) != sz {
			t.Fatalf("SetSizes[%d] = %d, Size = %d", root, sz, uf.Size(root))
		}
		total += sz
	}
	if total != n {
		t.Fatalf("SetSizes sum %d, want %d", total, n)
	}
}
