package unionfind

import (
	"math/rand"
	"testing"
)

func TestSingletons(t *testing.T) {
	u := New(5)
	if u.N() != 5 || u.Sets() != 5 {
		t.Fatalf("N=%d Sets=%d", u.N(), u.Sets())
	}
	for i := 0; i < 5; i++ {
		if u.Find(i) != i {
			t.Errorf("Find(%d) = %d", i, u.Find(i))
		}
	}
}

func TestUnionMergesAndCounts(t *testing.T) {
	u := New(4)
	if !u.Union(0, 1) {
		t.Fatal("first union must merge")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat union must not merge")
	}
	if u.Sets() != 3 {
		t.Fatalf("Sets = %d", u.Sets())
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Fatal("Same wrong")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Sets() != 1 || !u.Same(1, 2) {
		t.Fatal("transitive merge failed")
	}
}

func TestGroupsOrderAndContent(t *testing.T) {
	u := New(6)
	u.Union(4, 2)
	u.Union(1, 5)
	groups := u.Groups()
	want := [][]int{{0}, {1, 5}, {2, 4}, {3}}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v", groups)
	}
	for i := range want {
		if len(groups[i]) != len(want[i]) {
			t.Fatalf("groups = %v, want %v", groups, want)
		}
		for j := range want[i] {
			if groups[i][j] != want[i][j] {
				t.Fatalf("groups = %v, want %v", groups, want)
			}
		}
	}
}

func TestSetSizes(t *testing.T) {
	u := New(5)
	u.Union(0, 1)
	u.Union(1, 2)
	sizes := u.SetSizes()
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	if sizes[u.Find(0)] != 3 || sizes[u.Find(3)] != 1 || sizes[u.Find(4)] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
}

// TestOrderIndependence verifies the transitive-closure property the
// paper's heuristic relies on (Section 4): the final clustering is the
// same regardless of the order pairs are processed in.
func TestOrderIndependence(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(42))
	var pairs [][2]int
	for k := 0; k < 100; k++ {
		pairs = append(pairs, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	canon := func(perm []int) []int {
		u := New(n)
		for _, pi := range perm {
			u.Union(pairs[pi][0], pairs[pi][1])
		}
		out := make([]int, n)
		// Canonical labels: smallest member of each set.
		smallest := make(map[int]int)
		for i := 0; i < n; i++ {
			r := u.Find(i)
			if _, ok := smallest[r]; !ok {
				smallest[r] = i
			}
			out[i] = smallest[r]
		}
		return out
	}
	base := canon(rng.Perm(len(pairs)))
	for trial := 0; trial < 10; trial++ {
		got := canon(rng.Perm(len(pairs)))
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("clustering depends on pair order at element %d", i)
			}
		}
	}
}

func TestSizeTracking(t *testing.T) {
	u := New(6)
	if u.Size(0) != 1 {
		t.Fatal("singleton size != 1")
	}
	u.Union(0, 1)
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Size(1) != 4 || u.Size(2) != 4 {
		t.Errorf("merged size = %d, want 4", u.Size(1))
	}
	if u.Size(4) != 1 {
		t.Error("untouched element size changed")
	}
}

// TestQuickModel checks union–find against a naive label model under
// random operation sequences (property-based).
func TestQuickModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		u := New(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		relabel := func(from, to int) {
			for i := range labels {
				if labels[i] == from {
					labels[i] = to
				}
			}
		}
		for op := 0; op < 120; op++ {
			x, y := rng.Intn(n), rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				merged := u.Union(x, y)
				if merged != (labels[x] != labels[y]) {
					t.Fatalf("Union(%d,%d) merged=%v disagrees with model", x, y, merged)
				}
				relabel(labels[y], labels[x])
			case 1:
				if u.Same(x, y) != (labels[x] == labels[y]) {
					t.Fatalf("Same(%d,%d) disagrees with model", x, y)
				}
			default:
				want := 0
				for i := range labels {
					if labels[i] == labels[x] {
						want++
					}
				}
				if u.Size(x) != want {
					t.Fatalf("Size(%d)=%d, model says %d", x, u.Size(x), want)
				}
			}
		}
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		if u.Sets() != len(distinct) {
			t.Fatalf("Sets()=%d, model says %d", u.Sets(), len(distinct))
		}
	}
}

func TestLargeChainFindDepth(t *testing.T) {
	const n = 100000
	u := New(n)
	for i := 1; i < n; i++ {
		u.Union(i-1, i)
	}
	if u.Sets() != 1 {
		t.Fatalf("Sets = %d", u.Sets())
	}
	r := u.Find(0)
	for i := 0; i < n; i += 997 {
		if u.Find(i) != r {
			t.Fatal("chain not fully merged")
		}
	}
}
