// Package backoff is the one capped-exponential-backoff schedule the
// reliability layers share. The reliable wire (retransmission charged
// to the modeled clock), the assembly guard (real sleeps between
// retry attempts) and the nettrans reconnect loop (real sleeps with
// jitter between redials) all follow the same curve: attempt k waits
// Base·2^min(k, MaxDoublings), optionally capped and jittered.
// Centralizing it keeps the retry behaviour of every layer described
// by one Policy instead of three hand-rolled shift loops.
package backoff

import (
	"math/rand"
	"time"
)

// DefaultMaxDoublings caps the exponential at 64×Base, the historical
// cap of both the wire retransmitter and the assembly guard.
const DefaultMaxDoublings = 6

// Policy is a capped exponential backoff schedule.
type Policy struct {
	// Base is the delay before the first retry (attempt 0).
	Base time.Duration
	// Cap, when positive, bounds every delay regardless of doubling.
	Cap time.Duration
	// MaxDoublings bounds the exponent; 0 means DefaultMaxDoublings.
	// Negative means no doubling at all (constant Base delay).
	MaxDoublings int
	// Jitter, in [0, 1], randomizes each delay to
	// d·(1−Jitter) … d·(1+Jitter) when an RNG is supplied. Zero (or a
	// nil RNG) keeps the schedule fully deterministic — required on
	// the modeled clock, where bit-identical stats are a contract.
	Jitter float64
}

// Delay returns the wait before retry attempt k (0-based: attempt 0
// is the pause before the first retry). rng may be nil, disabling
// jitter.
func (p Policy) Delay(attempt int, rng *rand.Rand) time.Duration {
	d := p.doublings(attempt)
	delay := p.Base << d
	if delay < p.Base { // shift overflow
		delay = p.Cap
	}
	if p.Cap > 0 && delay > p.Cap {
		delay = p.Cap
	}
	if p.Jitter > 0 && rng != nil && delay > 0 {
		f := 1 + p.Jitter*(2*rng.Float64()-1)
		delay = time.Duration(float64(delay) * f)
		if p.Cap > 0 && delay > p.Cap {
			delay = p.Cap
		}
	}
	return delay
}

// Seconds returns Delay for attempt k as float seconds with no
// jitter — the modeled-clock form the reliable wire charges.
func (p Policy) Seconds(attempt int) float64 {
	return p.Delay(attempt, nil).Seconds()
}

// doublings returns the bounded exponent for attempt k.
func (p Policy) doublings(attempt int) int {
	if p.MaxDoublings < 0 {
		return 0
	}
	max := p.MaxDoublings
	if max == 0 {
		max = DefaultMaxDoublings
	}
	if attempt < 0 {
		return 0
	}
	if attempt > max {
		return max
	}
	return attempt
}

// Sleep waits Delay(attempt, rng), returning early (reporting false)
// if stop closes first. A nil stop channel never interrupts.
func (p Policy) Sleep(attempt int, rng *rand.Rand, stop <-chan struct{}) bool {
	d := p.Delay(attempt, rng)
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}
