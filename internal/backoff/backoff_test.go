package backoff

import (
	"math/rand"
	"testing"
	"time"
)

func TestDelayDoublesAndCapsDoublings(t *testing.T) {
	p := Policy{Base: time.Millisecond}
	want := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 16 * time.Millisecond, 32 * time.Millisecond,
		64 * time.Millisecond, 64 * time.Millisecond, 64 * time.Millisecond,
	}
	for k, w := range want {
		if got := p.Delay(k, nil); got != w {
			t.Errorf("attempt %d: got %v, want %v", k, got, w)
		}
	}
}

func TestDelayCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 25 * time.Millisecond}
	if got := p.Delay(0, nil); got != 10*time.Millisecond {
		t.Errorf("attempt 0: got %v", got)
	}
	if got := p.Delay(1, nil); got != 20*time.Millisecond {
		t.Errorf("attempt 1: got %v", got)
	}
	for k := 2; k < 10; k++ {
		if got := p.Delay(k, nil); got != 25*time.Millisecond {
			t.Errorf("attempt %d: got %v, want cap", k, got)
		}
	}
}

func TestNegativeMaxDoublingsIsConstant(t *testing.T) {
	p := Policy{Base: 3 * time.Millisecond, MaxDoublings: -1}
	for k := 0; k < 5; k++ {
		if got := p.Delay(k, nil); got != 3*time.Millisecond {
			t.Errorf("attempt %d: got %v, want constant base", k, got)
		}
	}
}

func TestSecondsMatchesWireSchedule(t *testing.T) {
	// The reliable wire's historical schedule: α·2^min(k,6).
	alpha := 3 * time.Microsecond
	p := Policy{Base: alpha}
	for k := 0; k < 9; k++ {
		d := k
		if d > 6 {
			d = 6
		}
		want := alpha.Seconds() * float64(int(1)<<d)
		if got := p.Seconds(k); got != want {
			t.Errorf("attempt %d: got %g, want %g", k, got, want)
		}
	}
}

func TestJitterBoundsAndDeterminismWithoutRNG(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Jitter: 0.5}
	if got := p.Delay(0, nil); got != 100*time.Millisecond {
		t.Errorf("nil rng must disable jitter, got %v", got)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		got := p.Delay(0, rng)
		if got < 50*time.Millisecond || got > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside ±50%% band", got)
		}
	}
}

func TestSleepStops(t *testing.T) {
	p := Policy{Base: time.Hour}
	stop := make(chan struct{})
	close(stop)
	start := time.Now()
	if p.Sleep(0, nil, stop) {
		t.Fatal("Sleep reported completion despite stop")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on stop")
	}
	if !(Policy{}).Sleep(0, nil, nil) {
		t.Fatal("zero-delay Sleep must report completion")
	}
}
