package cluster

// PartitionLabels canonicalizes a clustering result: each fragment is
// labeled with the smallest fragment index in its cluster, so two
// results describe the same partition exactly when their label slices
// are equal. This is the serial-equivalence oracle form used by the
// fault experiments and the simulation harness.
func PartitionLabels(res *Result) []int {
	labels := make([]int, res.N)
	smallest := make(map[int]int)
	for i := 0; i < res.N; i++ {
		r := res.UF.Find(i)
		if _, ok := smallest[r]; !ok {
			smallest[r] = i
		}
		labels[i] = smallest[r]
	}
	return labels
}

// SamePartition reports whether two canonical label slices describe
// the same partition of the same fragment set.
func SamePartition(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
