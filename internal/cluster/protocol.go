package cluster

import (
	"repro/internal/pairgen"
	"repro/internal/wire"
)

// Message tags of the master–worker protocol (Fig. 6): workers send
// reports (new pairs NP + alignment results AR); the master sends work
// allocations (batch AW + request size r) and finally done.
const (
	tagReport = 1
	tagWork   = 2
	tagDone   = 3
)

// alignResult is one AR entry: the fragment pair and the outcome of
// its overlap test.
type alignResult struct {
	fa, fb   int32
	accepted bool
}

// report is a worker → master message.
type report struct {
	pairs   []pairgen.Pair // NP: newly generated promising pairs
	results []alignResult  // AR: outcomes for the last allocated batch
	passive bool           // no more pairs to generate
}

// work is a master → worker message.
type work struct {
	batch []pairgen.Pair // AW: pairs to align
	r     int            // pairs to generate for the next report
}

func encodePairs(w *wire.Buffer, ps []pairgen.Pair) {
	w.PutUint(uint64(len(ps)))
	for _, p := range ps {
		w.PutInt(int(p.ASid))
		w.PutInt(int(p.BSid))
		w.PutInt(int(p.APos))
		w.PutInt(int(p.BPos))
		w.PutInt(int(p.MatchLen))
	}
}

func decodePairs(r *wire.Reader) []pairgen.Pair {
	n := int(r.Uint())
	ps := make([]pairgen.Pair, n)
	for i := range ps {
		ps[i] = pairgen.Pair{
			ASid:     int32(r.Int()),
			BSid:     int32(r.Int()),
			APos:     int32(r.Int()),
			BPos:     int32(r.Int()),
			MatchLen: int32(r.Int()),
		}
	}
	return ps
}

func encodeReport(rep report) []byte {
	w := wire.NewBuffer(16 + 12*len(rep.pairs) + 6*len(rep.results))
	w.PutBool(rep.passive)
	encodePairs(w, rep.pairs)
	w.PutUint(uint64(len(rep.results)))
	for _, ar := range rep.results {
		w.PutInt(int(ar.fa))
		w.PutInt(int(ar.fb))
		w.PutBool(ar.accepted)
	}
	return w.Bytes()
}

func decodeReport(b []byte) report {
	r := wire.NewReader(b)
	var rep report
	rep.passive = r.Bool()
	rep.pairs = decodePairs(r)
	n := int(r.Uint())
	rep.results = make([]alignResult, n)
	for i := range rep.results {
		rep.results[i] = alignResult{
			fa:       int32(r.Int()),
			fb:       int32(r.Int()),
			accepted: r.Bool(),
		}
	}
	return rep
}

func encodeWork(wk work) []byte {
	w := wire.NewBuffer(8 + 12*len(wk.batch))
	w.PutUint(uint64(wk.r))
	encodePairs(w, wk.batch)
	return w.Bytes()
}

func decodeWork(b []byte) work {
	r := wire.NewReader(b)
	var wk work
	wk.r = int(r.Uint())
	wk.batch = decodePairs(r)
	return wk
}
