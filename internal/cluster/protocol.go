package cluster

import (
	"errors"
	"fmt"

	"repro/internal/pairgen"
	"repro/internal/wire"
)

// Message tags of the master–worker protocol (Fig. 6): workers send
// reports (new pairs NP + alignment results AR); the master sends work
// allocations (batch AW + request size r) and finally done. tagAdopt
// is the fault-recovery extension: it hands a surviving worker the
// GST portions of dead ranks so their pair generation is not lost.
const (
	tagReport = 1
	tagWork   = 2
	tagDone   = 3
	tagAdopt  = 4
)

// alignResult is one AR entry: the fragment pair and the outcome of
// its overlap test.
type alignResult struct {
	fa, fb   int32
	accepted bool
}

// report is a worker → master message.
type report struct {
	pairs   []pairgen.Pair // NP: newly generated promising pairs
	results []alignResult  // AR: outcomes for the last allocated batch
	passive bool           // no more pairs to generate
	// fail carries a worker-side protocol error (e.g. an undecodable
	// work message) so the master can abort the run cleanly instead of
	// deadlocking on a silently departed worker. Encoded only when
	// non-empty so fault-free runs keep byte-identical messages.
	fail string
}

// work is a master → worker message.
type work struct {
	batch []pairgen.Pair // AW: pairs to align
	r     int            // pairs to generate for the next report
	// adopt lists ranks whose GST portions the receiver must rebuild
	// and generate from (fault recovery, piggybacked on a work reply).
	// Encoded only when non-empty so a fault-free run's messages are
	// byte-identical to the fault-unaware protocol.
	adopt []int
}

func encodePairs(w *wire.Buffer, ps []pairgen.Pair) {
	w.PutUint(uint64(len(ps)))
	for _, p := range ps {
		w.PutInt(int(p.ASid))
		w.PutInt(int(p.BSid))
		w.PutInt(int(p.APos))
		w.PutInt(int(p.BPos))
		w.PutInt(int(p.MatchLen))
	}
}

func decodePairs(r *wire.Reader) ([]pairgen.Pair, error) {
	n := int(r.Uint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n < 0 || n > r.Remaining()/5 { // 5 varints of ≥ 1 byte per pair
		return nil, errors.New("wire: truncated pair list")
	}
	ps := make([]pairgen.Pair, n)
	for i := range ps {
		ps[i] = pairgen.Pair{
			ASid:     r.Int32(),
			BSid:     r.Int32(),
			APos:     r.Int32(),
			BPos:     r.Int32(),
			MatchLen: r.Int32(),
		}
	}
	return ps, r.Err()
}

func encodeReport(rep report) []byte {
	w := wire.NewBuffer(16 + 12*len(rep.pairs) + 6*len(rep.results))
	w.PutBool(rep.passive)
	encodePairs(w, rep.pairs)
	w.PutUint(uint64(len(rep.results)))
	for _, ar := range rep.results {
		w.PutInt(int(ar.fa))
		w.PutInt(int(ar.fb))
		w.PutBool(ar.accepted)
	}
	if rep.fail != "" {
		w.PutString(rep.fail)
	}
	return w.Bytes()
}

func decodeReport(b []byte) (rep report, err error) {
	r := wire.NewReader(b)
	rep.passive = r.Bool()
	if rep.pairs, err = decodePairs(r); err != nil {
		return report{}, err
	}
	n := int(r.Uint())
	if r.Err() != nil {
		return report{}, r.Err()
	}
	if n < 0 || n > r.Remaining()/3 { // 2 varints + 1 bool per result
		return report{}, errors.New("wire: truncated result list")
	}
	rep.results = make([]alignResult, n)
	for i := range rep.results {
		rep.results[i] = alignResult{
			fa:       r.Int32(),
			fb:       r.Int32(),
			accepted: r.Bool(),
		}
	}
	if r.Remaining() > 0 {
		// Optional trailing fail string; encoded only when non-empty,
		// so an empty one here is not a valid encoding.
		if rep.fail = r.String(); rep.fail == "" && r.Err() == nil {
			return report{}, fmt.Errorf("wire: empty fail string in report")
		}
	}
	if err := r.Err(); err != nil {
		return report{}, err
	}
	if r.Remaining() != 0 {
		return report{}, fmt.Errorf("wire: %d trailing bytes after report", r.Remaining())
	}
	return rep, nil
}

func encodeWork(wk work) []byte {
	w := wire.NewBuffer(8 + 12*len(wk.batch))
	w.PutUint(uint64(wk.r))
	encodePairs(w, wk.batch)
	if len(wk.adopt) > 0 {
		w.PutInts(wk.adopt)
	}
	return w.Bytes()
}

func decodeWork(b []byte) (wk work, err error) {
	r := wire.NewReader(b)
	wk.r = int(r.Uint())
	if wk.batch, err = decodePairs(r); err != nil {
		return work{}, err
	}
	if r.Remaining() > 0 {
		wk.adopt = r.Ints()
	}
	if err := r.Err(); err != nil {
		return work{}, err
	}
	if r.Remaining() != 0 {
		return work{}, fmt.Errorf("wire: %d trailing bytes after work", r.Remaining())
	}
	return wk, nil
}

// adopt is a master → worker fault-recovery message: the ranks whose
// GST portions the receiver must rebuild and take over.
type adopt struct {
	deadRanks []int
}

func encodeAdopt(a adopt) []byte {
	w := wire.NewBuffer(1 + 2*len(a.deadRanks))
	w.PutInts(a.deadRanks)
	return w.Bytes()
}

func decodeAdopt(b []byte) (a adopt, err error) {
	r := wire.NewReader(b)
	a.deadRanks = r.Ints()
	if err := r.Err(); err != nil {
		return adopt{}, err
	}
	if r.Remaining() != 0 {
		return adopt{}, fmt.Errorf("wire: %d trailing bytes after adopt", r.Remaining())
	}
	return a, nil
}
