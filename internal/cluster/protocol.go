package cluster

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/pairgen"
	"repro/internal/wire"
)

// Message tags of the master–worker protocol (Fig. 6): workers send
// reports (new pairs NP + alignment results AR); the master sends work
// allocations (batch AW + request size r) and finally done. tagAdopt
// is the fault-recovery extension: it hands a surviving worker the
// GST portions of dead ranks so their pair generation is not lost.
const (
	tagReport = 1
	tagWork   = 2
	tagDone   = 3
	tagAdopt  = 4
)

// alignResult is one AR entry: the fragment pair and the outcome of
// its overlap test.
type alignResult struct {
	fa, fb   int32
	accepted bool
}

// report is a worker → master message.
type report struct {
	pairs   []pairgen.Pair // NP: newly generated promising pairs
	results []alignResult  // AR: outcomes for the last allocated batch
	passive bool           // no more pairs to generate
}

// work is a master → worker message.
type work struct {
	batch []pairgen.Pair // AW: pairs to align
	r     int            // pairs to generate for the next report
	// adopt lists ranks whose GST portions the receiver must rebuild
	// and generate from (fault recovery, piggybacked on a work reply).
	// Encoded only when non-empty so a fault-free run's messages are
	// byte-identical to the fault-unaware protocol.
	adopt []int
}

// wireRecover converts a wire decoding panic into an error, leaving
// any other panic untouched. Once fault injection can truncate or
// corrupt a message in flight, malformed input is an expected runtime
// condition for the protocol decoders, not a programming error.
func wireRecover(err *error) {
	p := recover()
	if p == nil {
		return
	}
	if s, ok := p.(string); ok && strings.HasPrefix(s, "wire:") {
		*err = errors.New(s)
		return
	}
	panic(p)
}

func encodePairs(w *wire.Buffer, ps []pairgen.Pair) {
	w.PutUint(uint64(len(ps)))
	for _, p := range ps {
		w.PutInt(int(p.ASid))
		w.PutInt(int(p.BSid))
		w.PutInt(int(p.APos))
		w.PutInt(int(p.BPos))
		w.PutInt(int(p.MatchLen))
	}
}

func decodePairs(r *wire.Reader) []pairgen.Pair {
	n := int(r.Uint())
	if n < 0 || n*5 > r.Remaining() { // 5 varints of ≥ 1 byte per pair
		panic("wire: truncated pair list")
	}
	ps := make([]pairgen.Pair, n)
	for i := range ps {
		ps[i] = pairgen.Pair{
			ASid:     int32(r.Int()),
			BSid:     int32(r.Int()),
			APos:     int32(r.Int()),
			BPos:     int32(r.Int()),
			MatchLen: int32(r.Int()),
		}
	}
	return ps
}

func encodeReport(rep report) []byte {
	w := wire.NewBuffer(16 + 12*len(rep.pairs) + 6*len(rep.results))
	w.PutBool(rep.passive)
	encodePairs(w, rep.pairs)
	w.PutUint(uint64(len(rep.results)))
	for _, ar := range rep.results {
		w.PutInt(int(ar.fa))
		w.PutInt(int(ar.fb))
		w.PutBool(ar.accepted)
	}
	return w.Bytes()
}

func decodeReport(b []byte) (rep report, err error) {
	defer wireRecover(&err)
	r := wire.NewReader(b)
	rep.passive = r.Bool()
	rep.pairs = decodePairs(r)
	n := int(r.Uint())
	if n < 0 || n*3 > r.Remaining() { // 2 varints + 1 bool per result
		return report{}, errors.New("wire: truncated result list")
	}
	rep.results = make([]alignResult, n)
	for i := range rep.results {
		rep.results[i] = alignResult{
			fa:       int32(r.Int()),
			fb:       int32(r.Int()),
			accepted: r.Bool(),
		}
	}
	if r.Remaining() != 0 {
		return report{}, fmt.Errorf("wire: %d trailing bytes after report", r.Remaining())
	}
	return rep, nil
}

func encodeWork(wk work) []byte {
	w := wire.NewBuffer(8 + 12*len(wk.batch))
	w.PutUint(uint64(wk.r))
	encodePairs(w, wk.batch)
	if len(wk.adopt) > 0 {
		w.PutInts(wk.adopt)
	}
	return w.Bytes()
}

func decodeWork(b []byte) (wk work, err error) {
	defer wireRecover(&err)
	r := wire.NewReader(b)
	wk.r = int(r.Uint())
	wk.batch = decodePairs(r)
	if r.Remaining() > 0 {
		wk.adopt = r.Ints()
	}
	if r.Remaining() != 0 {
		return work{}, fmt.Errorf("wire: %d trailing bytes after work", r.Remaining())
	}
	return wk, nil
}

// adopt is a master → worker fault-recovery message: the ranks whose
// GST portions the receiver must rebuild and take over.
type adopt struct {
	deadRanks []int
}

func encodeAdopt(a adopt) []byte {
	w := wire.NewBuffer(1 + 2*len(a.deadRanks))
	w.PutInts(a.deadRanks)
	return w.Bytes()
}

func decodeAdopt(b []byte) (a adopt, err error) {
	defer wireRecover(&err)
	r := wire.NewReader(b)
	a.deadRanks = r.Ints()
	if r.Remaining() != 0 {
		return adopt{}, fmt.Errorf("wire: %d trailing bytes after adopt", r.Remaining())
	}
	return a, nil
}
