package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/par"
)

// CrashWorkerAtReport schedules worker rank w to die immediately
// before sending its n-th report — the deterministic mid-clustering
// kill the fault tests and experiments use (the report tag is private
// to this package, hence the constructor).
func CrashWorkerAtReport(w, n int) par.Crash {
	return par.Crash{Rank: w, AfterSends: n, Tag: tagReport}
}

// ParseFaults builds a FaultPlan from a compact comma-separated spec,
// the format of asmcluster's -faults flag:
//
//	crash=RANK@N      kill rank RANK before its N-th report (repeatable)
//	gstcrash=RANK@N   kill rank RANK before its N-th all-to-all send,
//	                  i.e. during GST construction (repeatable)
//	drop=P            drop each eager message with probability P
//	delay=DUR         delivery delay for delayed messages (e.g. 20ms)
//	delayp=P          probability a message is delayed
//	retransmit        frame every eager send with a length+CRC32C
//	                  envelope and retransmit dropped/corrupted frames
//	corrupt=P         corrupt each framed send with probability P
//	                  (implies retransmit)
//	seed=S            RNG seed for drops/delays/corruption (default 1)
//
// Example: "crash=2@5,gstcrash=3@1,corrupt=0.01,seed=7".
func ParseFaults(spec string) (*par.FaultPlan, error) {
	plan := &par.FaultPlan{Seed: 1}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty fault spec")
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			if key == "retransmit" { // valueless form: "retransmit"
				plan.Retransmit = true
				continue
			}
			return nil, fmt.Errorf("cluster: fault spec field %q is not key=value", field)
		}
		switch key {
		case "crash":
			rs, ns, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("cluster: crash spec %q is not RANK@N", val)
			}
			rank, err := strconv.Atoi(rs)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad crash rank %q: %v", rs, err)
			}
			n, err := strconv.Atoi(ns)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad crash step %q: %v", ns, err)
			}
			if rank < 1 || n < 1 {
				return nil, fmt.Errorf("cluster: crash %q must name a worker rank ≥ 1 and step ≥ 1", val)
			}
			plan.Crashes = append(plan.Crashes, CrashWorkerAtReport(rank, n))
		case "gstcrash":
			rs, ns, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("cluster: gstcrash spec %q is not RANK@N", val)
			}
			rank, err := strconv.Atoi(rs)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad gstcrash rank %q: %v", rs, err)
			}
			n, err := strconv.Atoi(ns)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad gstcrash step %q: %v", ns, err)
			}
			if rank < 1 || n < 1 {
				return nil, fmt.Errorf("cluster: gstcrash %q must name a worker rank ≥ 1 and step ≥ 1", val)
			}
			plan.Crashes = append(plan.Crashes, par.CrashAtAlltoallSend(rank, n))
		case "drop":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("cluster: bad drop probability %q", val)
			}
			plan.DropProb = p
		case "delayp":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("cluster: bad delay probability %q", val)
			}
			plan.DelayProb = p
		case "retransmit":
			if val != "" && val != "1" && val != "true" {
				return nil, fmt.Errorf("cluster: bad retransmit value %q", val)
			}
			plan.Retransmit = true
		case "corrupt":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("cluster: bad corrupt probability %q", val)
			}
			plan.CorruptProb = p
			plan.Retransmit = true
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad delay %q: %v", val, err)
			}
			plan.Delay = d
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad seed %q: %v", val, err)
			}
			plan.Seed = s
		default:
			return nil, fmt.Errorf("cluster: unknown fault spec key %q", key)
		}
	}
	return plan, nil
}
