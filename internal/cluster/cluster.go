// Package cluster implements the paper's clustering framework: the
// greedy, alignment-avoiding clustering strategy of Section 4 (Fig. 3)
// in a serial driver, and the single-master / multiple-worker parallel
// implementation of Section 7 (Figs. 6–8) on the par runtime.
//
// Two fragments join a cluster when a suffix–prefix alignment anchored
// at a shared maximal match passes the (relaxed) overlap criterion;
// clusters are the transitive closure of accepted overlaps. Pairs are
// processed in decreasing maximal-match order, and a pair is aligned
// only if its fragments are currently in different clusters — the
// heuristic that skips 44–65 % of alignments in the paper's
// experiments while provably never changing the final clustering
// (order-independence of transitive closure).
package cluster

import (
	"time"

	"repro/internal/align"
	"repro/internal/pairgen"
	"repro/internal/pgst"
	"repro/internal/seq"
	"repro/internal/suffixtree"
	"repro/internal/unionfind"
)

// Modeled per-operation costs (see pgst for the time-scale rationale).
const (
	costCell    = 4e-9  // per banded-DP cell
	costPair    = 60e-9 // per promising pair generated or scanned
	costUF      = 40e-9 // per union-find operation
	costPerMsgC = 1e-6  // master bookkeeping per report processed
)

// Config holds the algorithmic parameters shared by the serial and
// parallel drivers.
type Config struct {
	// Psi is the minimum maximal-match length for a promising pair.
	Psi int
	// W is the GST bucket prefix length; must be ≤ Psi (default:
	// min(Psi, 10)).
	W int
	// Band is the half-width of the anchored alignment band.
	Band int
	// Scoring for overlap alignments.
	Scoring align.Scoring
	// Criteria accepts or rejects an overlap (the relaxed clustering
	// criterion of Section 3).
	Criteria align.Criteria
	// DuplicateElimination enables fragment-level lsets (Section 5).
	DuplicateElimination bool
	// MaxClusterSize, when positive, rejects merges that would create
	// a cluster larger than this — the paper's future-work direction
	// of bounding the largest cluster to increase assembly-phase
	// parallelism (Section 10). The result then depends on processing
	// order, so this is a serial-driver heuristic only.
	MaxClusterSize int
	// MemBudget, when positive, selects the spilling GST: construction
	// never holds more than roughly this many bytes of tree state,
	// building, generating and dropping contiguous key-range segments
	// instead of the whole forest (pgst.Config.SpillBytes). Pair order
	// changes across segments, so Stats like Skipped/Aligned shift,
	// but the partition — the transitive closure of accepted overlaps
	// — is provably identical (order independence, Section 4).
	MemBudget int64
}

// DefaultConfig returns parameters matching the paper's regime for
// ~500–800 bp reads.
func DefaultConfig() Config {
	return Config{
		Psi:                  20,
		W:                    10,
		Band:                 align.DefaultBand,
		Scoring:              align.DefaultScoring(),
		Criteria:             align.ClusterCriteria(),
		DuplicateElimination: true,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Psi == 0 {
		c.Psi = d.Psi
	}
	if c.W == 0 {
		c.W = d.W
		if c.W > c.Psi {
			c.W = c.Psi
		}
	}
	if c.Band == 0 {
		c.Band = d.Band
	}
	if c.Scoring == (align.Scoring{}) {
		c.Scoring = d.Scoring
	}
	if c.Criteria == (align.Criteria{}) {
		c.Criteria = d.Criteria
	}
	if c.W > c.Psi {
		panic("cluster: W must be ≤ Psi")
	}
	return c
}

// Stats counts clustering activity (the Table 1 quantities).
type Stats struct {
	Generated int64 // promising pairs generated
	Aligned   int64 // pairs whose alignment was computed
	Accepted  int64 // aligned pairs passing the overlap criterion
	Skipped   int64 // pairs not aligned: fragments already co-clustered
	Merges    int64 // cluster merges (≤ Accepted)

	WorkersLost int64 // workers the master declared dead (fault runs)
	Requeued    int64 // leased pairs requeued after a worker death

	GSTSeconds     float64 // modeled time of GST construction
	ClusterSeconds float64 // modeled time of the clustering phase
	WallSeconds    float64 // real host time, diagnostic
}

// SavingsFraction returns the fraction of generated pairs never
// aligned (the last row of Table 1).
func (s Stats) SavingsFraction() float64 {
	if s.Generated == 0 {
		return 0
	}
	return float64(s.Generated-s.Aligned) / float64(s.Generated)
}

// Result is a completed clustering.
type Result struct {
	N     int
	UF    *unionfind.UF
	Stats Stats
}

// Clusters returns the multi-fragment clusters (each sorted ascending).
func (r *Result) Clusters() [][]int {
	var out [][]int
	for _, g := range r.UF.Groups() {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// Singletons returns fragments that clustered with nothing.
func (r *Result) Singletons() []int {
	var out []int
	for _, g := range r.UF.Groups() {
		if len(g) == 1 {
			out = append(out, g[0])
		}
	}
	return out
}

// Summary describes the cluster size distribution (Section 8 metrics).
type Summary struct {
	NumClusters   int // multi-fragment clusters
	NumSingletons int
	MaxSize       int
	MeanSize      float64 // over multi-fragment clusters
	MaxFraction   float64 // largest cluster / total fragments
}

// Summarize computes the Section 8 cluster statistics.
func (r *Result) Summarize() Summary {
	var s Summary
	total := 0
	for _, g := range r.UF.Groups() {
		if len(g) == 1 {
			s.NumSingletons++
			continue
		}
		s.NumClusters++
		total += len(g)
		if len(g) > s.MaxSize {
			s.MaxSize = len(g)
		}
	}
	if s.NumClusters > 0 {
		s.MeanSize = float64(total) / float64(s.NumClusters)
	}
	if r.N > 0 {
		s.MaxFraction = float64(s.MaxSize) / float64(r.N)
	}
	return s
}

// BuildSerialTree constructs the full GST for a store serially.
func BuildSerialTree(store seq.Seqs, cfg Config) *suffixtree.Tree {
	cfg = cfg.withDefaults()
	acc := func(sid int32) []byte { return store.Seq(int(sid)) }
	sids := make([]int32, store.NumSeqs())
	for i := range sids {
		sids[i] = int32(i)
	}
	return suffixtree.Build(acc, suffixtree.EnumerateSuffixes(acc, sids, cfg.Psi), cfg.W)
}

// AlignPair runs the anchored overlap test for one promising pair and
// reports acceptance plus the modeled DP cell count.
func AlignPair(store seq.Seqs, p pairgen.Pair, cfg Config) (accepted bool, cells int64) {
	a := store.Seq(int(p.ASid))
	b := store.Seq(int(p.BSid))
	res, ok := align.AnchoredOverlap(a, b, int(p.APos), int(p.BPos), int(p.MatchLen), cfg.Band, cfg.Scoring)
	ext := int64(len(a) + len(b) - 2*int(p.MatchLen))
	if ext < 2 {
		ext = 2
	}
	cells = int64(2*cfg.Band+1) * ext
	return ok && cfg.Criteria.Accept(res), cells
}

// Serial clusters the store's fragments with the Fig. 3 strategy on a
// single processor.
func Serial(store seq.Seqs, cfg Config) *Result {
	cfg = cfg.withDefaults()
	start := time.Now()
	uf := unionfind.New(store.N())
	var st Stats
	n := int32(store.N())
	pgCfg := pairgen.Config{
		Psi:                  cfg.Psi,
		NumFragments:         store.N(),
		DuplicateElimination: cfg.DuplicateElimination,
	}
	process := func(p pairgen.Pair) bool {
		st.Generated++
		fa, fb := int(p.ASid%n), int(p.BSid%n)
		if uf.Same(fa, fb) {
			st.Skipped++
			return true
		}
		accepted, _ := AlignPair(store, p, cfg)
		st.Aligned++
		if accepted {
			st.Accepted++
			if cfg.MaxClusterSize > 0 && uf.Size(fa)+uf.Size(fb) > cfg.MaxClusterSize {
				return true // bounded-cluster heuristic: defer to assembly
			}
			if uf.Union(fa, fb) {
				st.Merges++
			}
		}
		return true
	}
	if cfg.MemBudget > 0 {
		// Out-of-core: build, generate and drop one bounded key-range
		// segment at a time instead of the full tree.
		pgst.SweepSerial(store, pgst.Config{
			W:          cfg.W,
			MinLen:     cfg.Psi,
			SpillBytes: cfg.MemBudget,
		}, func(t *suffixtree.Tree) bool {
			pairgen.Generate(t, pgCfg, process)
			return true
		})
	} else {
		pairgen.Generate(BuildSerialTree(store, cfg), pgCfg, process)
	}
	st.WallSeconds = time.Since(start).Seconds()
	return &Result{N: store.N(), UF: uf, Stats: st}
}
