package cluster

import (
	"testing"

	"repro/internal/seq/diskstore"
)

// TestSerialMemBudgetMatchesUnbounded: the out-of-core serial driver
// (build, generate and drop one bounded GST segment at a time) must
// produce exactly the unbounded driver's partition. Pair order changes
// across segments — so Aligned/Skipped shift — but the transitive
// closure cannot.
func TestSerialMemBudgetMatchesUnbounded(t *testing.T) {
	st, _ := islandStore(11, 3, 2200, 120)
	cfg := testConfig()
	ref := Serial(st, cfg)
	want := clusterLabels(ref)

	for _, budget := range []int64{1, 64 << 10, 1 << 30} {
		bcfg := cfg
		bcfg.MemBudget = budget
		res := Serial(st, bcfg)
		got := clusterLabels(res)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("budget %d: fragment %d in cluster %d, unbounded says %d",
					budget, i, got[i], want[i])
			}
		}
		if res.Stats.Generated != ref.Stats.Generated {
			t.Errorf("budget %d: generated %d != unbounded %d",
				budget, res.Stats.Generated, ref.Stats.Generated)
		}
		if res.Stats.Merges != ref.Stats.Merges {
			t.Errorf("budget %d: merges %d != unbounded %d",
				budget, res.Stats.Merges, ref.Stats.Merges)
		}
		if res.Stats.Aligned+res.Stats.Skipped != res.Stats.Generated {
			t.Errorf("budget %d: pair accounting broken: %+v", budget, res.Stats)
		}
	}
}

// TestParallelMemBudgetMatchesSerial: the full out-of-core stack —
// disk-backed store, spilling distributed GST, worker sweeps — must
// produce exactly the all-RAM serial clustering.
func TestParallelMemBudgetMatchesSerial(t *testing.T) {
	mem, _ := islandStore(12, 3, 2200, 120)
	cfg := testConfig()
	ref := Serial(mem, cfg)
	want := clusterLabels(ref)

	disk, err := diskstore.Create(t.TempDir(), mem.Fragments(),
		diskstore.Options{CacheBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	for _, p := range []int{2, 4} {
		bcfg := cfg
		bcfg.MemBudget = 32 << 10
		pcfg := DefaultParallelConfig(p)
		pcfg.BatchSize = 16
		res, _, err := Parallel(disk, bcfg, pcfg)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		got := clusterLabels(res)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: fragment %d in cluster %d, serial says %d",
					p, i, got[i], want[i])
			}
		}
		if res.Stats.Generated != ref.Stats.Generated {
			t.Errorf("p=%d: generated %d != serial %d", p, res.Stats.Generated, ref.Stats.Generated)
		}
		if res.Stats.Merges != ref.Stats.Merges {
			t.Errorf("p=%d: merges %d != serial %d", p, res.Stats.Merges, ref.Stats.Merges)
		}
	}
}
