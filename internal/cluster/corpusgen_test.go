package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pairgen"
)

// TestWriteFuzzCorpus regenerates the committed FuzzDecodeReport seed
// corpus from real protocol encodings (run explicitly with
// WRITE_FUZZ_CORPUS=1; skipped otherwise).
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeReport")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write("seed-empty-report", encodeReport(report{}))
	write("seed-full-report", encodeReport(report{
		pairs: []pairgen.Pair{
			{ASid: 1, BSid: 2, APos: 3, BPos: 4, MatchLen: 20},
			{ASid: 9, BSid: 5, APos: 0, BPos: 77, MatchLen: 31},
		},
		results: []alignResult{
			{fa: 0, fb: 1, accepted: true},
			{fa: 3, fb: 2},
		},
		passive: true,
	}))
	write("seed-failed-report", encodeReport(report{fail: "worker protocol error"}))
	write("seed-garbage", []byte{0xff})
}
