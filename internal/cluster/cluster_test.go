package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/simulate"
)

// islandStore builds reads from k well-separated genomic islands, so
// the correct clustering is known: reads co-cluster iff they share an
// island (with enough coverage that each island is connected).
func islandStore(seed int64, islands, islandLen int, reads int) (*seq.Store, []int) {
	rng := rand.New(rand.NewSource(seed))
	genomes := make([]*simulate.Genome, islands)
	for i := range genomes {
		genomes[i] = simulate.NewGenome(rng, fmt.Sprintf("isl%d", i),
			simulate.GenomeConfig{Length: islandLen})
	}
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 300
	rc.LenSD = 30
	rc.VectorProb = 0
	var frags []*seq.Fragment
	var truth []int
	for i := 0; i < reads; i++ {
		gi := i % islands
		g := genomes[gi]
		// Evenly spread starts so islands are connected end to end.
		start := (i / islands * 137) % (islandLen - rc.MeanLen)
		f := simulate.SampleAt(rng, g, rc, start, fmt.Sprintf("r%04d", i))
		frags = append(frags, f)
		truth = append(truth, gi)
	}
	return seq.NewStore(frags), truth
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Psi = 16
	cfg.W = 8
	return cfg
}

func TestSerialClustersIslands(t *testing.T) {
	st, truth := islandStore(1, 4, 3000, 160)
	res := Serial(st, testConfig())

	// No cluster may mix islands (correctness: false joins would merge
	// contigs that cannot overlap).
	for _, cl := range res.Clusters() {
		first := truth[cl[0]]
		for _, f := range cl[1:] {
			if truth[f] != first {
				t.Fatalf("cluster mixes islands %d and %d", first, truth[f])
			}
		}
	}
	// Each island's reads must form essentially one cluster (sampling
	// is dense and uniform).
	sum := res.Summarize()
	if sum.NumClusters > 8 {
		t.Errorf("%d clusters for 4 islands; sampling should connect each island", sum.NumClusters)
	}
	if sum.NumClusters < 4 {
		t.Errorf("only %d clusters for 4 distinct islands", sum.NumClusters)
	}
	if res.Stats.Generated == 0 || res.Stats.Aligned == 0 || res.Stats.Accepted == 0 {
		t.Errorf("stats look empty: %+v", res.Stats)
	}
}

// TestHeuristicSavesAlignments: processing pairs in decreasing match
// order with the same-cluster test must skip a meaningful share of
// alignments on redundantly covered data (the Table 1 effect).
func TestHeuristicSavesAlignments(t *testing.T) {
	st, _ := islandStore(2, 2, 2500, 180)
	res := Serial(st, testConfig())
	if res.Stats.SavingsFraction() < 0.2 {
		t.Errorf("savings %.2f; expected ≥0.2 on densely covered islands (paper: 0.44–0.65)",
			res.Stats.SavingsFraction())
	}
	if res.Stats.Generated != res.Stats.Aligned+res.Stats.Skipped {
		t.Errorf("generated %d != aligned %d + skipped %d",
			res.Stats.Generated, res.Stats.Aligned, res.Stats.Skipped)
	}
	if res.Stats.Accepted > res.Stats.Aligned {
		t.Error("accepted > aligned")
	}
	if res.Stats.Merges > res.Stats.Accepted {
		t.Error("merges > accepted")
	}
}

func clusterLabels(res *Result) []int {
	labels := make([]int, res.N)
	smallest := make(map[int]int)
	for i := 0; i < res.N; i++ {
		r := res.UF.Find(i)
		if _, ok := smallest[r]; !ok {
			smallest[r] = i
		}
		labels[i] = smallest[r]
	}
	return labels
}

// TestParallelMatchesSerial: the master–worker implementation must
// produce exactly the serial clustering (transitive closure is
// order-independent) and generate the same number of promising pairs.
func TestParallelMatchesSerial(t *testing.T) {
	st, _ := islandStore(3, 3, 2200, 120)
	cfg := testConfig()
	serial := Serial(st, cfg)
	want := clusterLabels(serial)

	for _, p := range []int{2, 3, 5, 8} {
		for _, ssend := range []bool{true, false} {
			pcfg := DefaultParallelConfig(p)
			pcfg.BatchSize = 16
			pcfg.UseSsend = ssend
			res, _, err := Parallel(st, cfg, pcfg)
			if err != nil {
				t.Fatalf("p=%d ssend=%v: %v", p, ssend, err)
			}
			got := clusterLabels(res)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d ssend=%v: fragment %d in cluster %d, serial says %d",
						p, ssend, i, got[i], want[i])
				}
			}
			if res.Stats.Generated != serial.Stats.Generated {
				t.Errorf("p=%d: generated %d != serial %d", p, res.Stats.Generated, serial.Stats.Generated)
			}
			// Merges = n − final components is order-independent, so it
			// must agree exactly even though Aligned/Skipped may differ
			// with scheduling.
			if res.Stats.Merges != serial.Stats.Merges {
				t.Errorf("p=%d: merges %d != serial %d", p, res.Stats.Merges, serial.Stats.Merges)
			}
			if res.Stats.Aligned+res.Stats.Skipped != res.Stats.Generated {
				t.Errorf("p=%d: pair accounting broken: %+v", p, res.Stats)
			}
		}
	}
}

func TestParallelPhaseStats(t *testing.T) {
	st, _ := islandStore(4, 2, 2000, 80)
	res, ph, err := Parallel(st, testConfig(), DefaultParallelConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if ph.GST.MaxModeled <= 0 {
		t.Error("GST phase has no modeled time")
	}
	if ph.Cluster.MaxModeled <= 0 {
		t.Error("cluster phase has no modeled time")
	}
	if res.Stats.GSTSeconds <= 0 || res.Stats.ClusterSeconds <= 0 {
		t.Errorf("phase seconds missing: %+v", res.Stats)
	}
	if ph.MasterAvailability < 0 || ph.MasterAvailability > 1 {
		t.Errorf("master availability %.2f out of range", ph.MasterAvailability)
	}
}

// TestParallelScaling checks the Fig. 9 shape: modeled clustering time
// shrinks as workers are added. The check presumes wall-clock
// scheduling roughly tracks modeled time, which holds in normal runs
// but not under the race detector: its serialization lets whichever
// worker wakes first claim most of the demand-driven batches, so one
// rank carries nearly all the modeled work at any p and no max-based
// metric can show a speedup.
func TestParallelScaling(t *testing.T) {
	if raceEnabled {
		t.Skip("demand-driven work distribution degenerates under the race detector")
	}
	st, _ := islandStore(5, 3, 3000, 150)
	cfg := testConfig()
	modeled := func(p int) float64 {
		_, ph, err := Parallel(st, cfg, DefaultParallelConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		return ph.Cluster.MaxModeled
	}
	t2, t8 := modeled(2), modeled(8)
	if t8 >= t2 {
		t.Errorf("no speedup: p=2 %.4fs vs p=8 %.4fs", t2, t8)
	}
}

// TestMaskedRepeatsDontMerge: two islands carrying the same repeat
// must not merge when the repeat is masked.
func TestMaskedRepeatsDontMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	repeat := make([]byte, 500)
	for i := range repeat {
		repeat[i] = seq.Base(rng.Intn(4))
	}
	mkIsland := func(name string) *simulate.Genome {
		g := simulate.NewGenome(rng, name, simulate.GenomeConfig{Length: 2500})
		copy(g.Seq[1000:1500], repeat)
		return g
	}
	g1, g2 := mkIsland("a"), mkIsland("b")
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 300
	rc.VectorProb = 0
	var frags []*seq.Fragment
	var truth []int
	for i := 0; i < 60; i++ {
		g, gi := g1, 0
		if i%2 == 1 {
			g, gi = g2, 1
		}
		start := (i / 2 * 73) % (2500 - 300)
		frags = append(frags, simulate.SampleAt(rng, g, rc, start, fmt.Sprintf("r%d", i)))
		truth = append(truth, gi)
	}
	// Mask the repeat in every read.
	for _, f := range frags {
		maskExact(f.Bases, repeat)
	}
	st := seq.NewStore(frags)
	res := Serial(st, testConfig())
	for _, cl := range res.Clusters() {
		first := truth[cl[0]]
		for _, f := range cl[1:] {
			if truth[f] != first {
				t.Fatalf("repeat-induced merge across islands despite masking")
			}
		}
	}
}

// maskExact masks occurrences of pattern (or its RC) in b by direct
// substring search — a test stand-in for the preprocess masker.
func maskExact(b, pattern []byte) {
	for _, pat := range [][]byte{pattern, seq.ReverseComplement(pattern)} {
		for i := 0; i+50 <= len(b); i++ {
			// Seed on 50-mers of the pattern.
			for j := 0; j+50 <= len(pat); j += 25 {
				if string(b[i:i+50]) == string(pat[j:j+50]) {
					for k := i; k < i+50; k++ {
						b[k] = seq.Masked
					}
				}
			}
		}
	}
}

// TestMaxClusterSize exercises the Section 10 future-work extension:
// a size cap bounds the largest cluster in both drivers.
func TestMaxClusterSize(t *testing.T) {
	st, _ := islandStore(8, 2, 3000, 140)
	cfg := testConfig()
	base := Serial(st, cfg)
	if base.Summarize().MaxSize <= 20 {
		t.Skip("baseline clusters too small to exercise the cap")
	}
	cfg.MaxClusterSize = 20
	capped := Serial(st, cfg)
	if got := capped.Summarize().MaxSize; got > 20 {
		t.Errorf("serial: max cluster %d exceeds cap 20", got)
	}
	cappedPar, _, err := Parallel(st, cfg, DefaultParallelConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := cappedPar.Summarize().MaxSize; got > 20 {
		t.Errorf("parallel: max cluster %d exceeds cap 20", got)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for W > Psi")
		}
	}()
	cfg := Config{Psi: 8, W: 12}
	cfg.withDefaults()
}

func TestParallelNeedsTwoRanks(t *testing.T) {
	st, _ := islandStore(7, 1, 1500, 20)
	if _, _, err := Parallel(st, testConfig(), DefaultParallelConfig(1)); err == nil {
		t.Error("expected error for 1-rank parallel run")
	}
}
