package cluster

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/pairgen"
	"repro/internal/unionfind"
	"repro/internal/wire"
)

// Checkpoint is a consistent snapshot of the master's clustering
// state: the union–find partition (as per-fragment cluster labels),
// the statistics accumulated so far, and the pairs pending dispatch.
// It deliberately omits worker-side state — on resume workers
// regenerate pairs from scratch and the master's union–find makes
// re-delivered pairs harmless (Same() skips, Union() is idempotent) —
// so a checkpoint stays small: O(N) labels plus the bounded pending
// buffer.
type Checkpoint struct {
	N       int
	Labels  []int32 // Labels[i] = union-find representative of fragment i
	Stats   Stats
	Pending []pairgen.Pair
}

// checkpointMagic guards against feeding an arbitrary file to Resume;
// the byte after it is a format version.
const (
	checkpointMagic   = 0x63636b70 // "cckp"
	checkpointVersion = 1
)

// snapshotCheckpoint captures the master's state mid-run.
func snapshotCheckpoint(uf *unionfind.UF, st Stats, pending []pairgen.Pair) *Checkpoint {
	cp := &Checkpoint{N: uf.N(), Stats: st, Pending: append([]pairgen.Pair(nil), pending...)}
	cp.Labels = make([]int32, cp.N)
	for i := range cp.Labels {
		cp.Labels[i] = int32(uf.Find(i))
	}
	return cp
}

// CheckpointOf snapshots a completed clustering as a phase-boundary
// checkpoint (no pending pairs), the artifact the resumable pipeline
// stores after the clustering phase.
func CheckpointOf(res *Result) *Checkpoint {
	return snapshotCheckpoint(res.UF, res.Stats, nil)
}

// Result converts a checkpoint back into a completed clustering;
// pending pairs, if any, are discarded (a phase-boundary checkpoint
// has none).
func (cp *Checkpoint) Result() *Result {
	return &Result{N: cp.N, UF: cp.restore(), Stats: cp.Stats}
}

// restore rebuilds a union–find from the checkpoint's labels.
func (cp *Checkpoint) restore() *unionfind.UF {
	uf := unionfind.New(cp.N)
	for i, l := range cp.Labels {
		uf.Union(i, int(l))
	}
	return uf
}

// Encode serializes the checkpoint with the wire format.
func (cp *Checkpoint) Encode() []byte {
	w := wire.NewBuffer(16 + 2*len(cp.Labels) + 12*len(cp.Pending))
	w.PutUint(checkpointMagic)
	w.PutUint(checkpointVersion)
	w.PutUint(uint64(cp.N))
	for _, l := range cp.Labels {
		w.PutInt(int(l))
	}
	for _, v := range []int64{cp.Stats.Generated, cp.Stats.Aligned, cp.Stats.Accepted,
		cp.Stats.Skipped, cp.Stats.Merges, cp.Stats.WorkersLost, cp.Stats.Requeued} {
		w.PutInt(int(v))
	}
	for _, f := range []float64{cp.Stats.GSTSeconds, cp.Stats.ClusterSeconds, cp.Stats.WallSeconds} {
		w.PutUint(math.Float64bits(f))
	}
	encodePairs(w, cp.Pending)
	return w.Bytes()
}

// DecodeCheckpoint parses an encoded checkpoint, returning an error —
// never panicking — on malformed input.
func DecodeCheckpoint(b []byte) (cp *Checkpoint, err error) {
	r := wire.NewReader(b)
	if r.Uint() != checkpointMagic {
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("cluster: not a checkpoint (bad magic)")
	}
	if v := r.Uint(); v != checkpointVersion {
		return nil, fmt.Errorf("cluster: unsupported checkpoint version %d", v)
	}
	cp = &Checkpoint{N: int(r.Uint())}
	if cp.N < 0 || cp.N > r.Remaining() {
		return nil, errors.New("cluster: checkpoint label count exceeds payload")
	}
	cp.Labels = make([]int32, cp.N)
	for i := range cp.Labels {
		l := r.Int()
		if l < 0 || l >= cp.N {
			return nil, fmt.Errorf("cluster: checkpoint label %d out of range", l)
		}
		cp.Labels[i] = int32(l)
	}
	cp.Stats.Generated = int64(r.Int())
	cp.Stats.Aligned = int64(r.Int())
	cp.Stats.Accepted = int64(r.Int())
	cp.Stats.Skipped = int64(r.Int())
	cp.Stats.Merges = int64(r.Int())
	cp.Stats.WorkersLost = int64(r.Int())
	cp.Stats.Requeued = int64(r.Int())
	cp.Stats.GSTSeconds = math.Float64frombits(r.Uint())
	cp.Stats.ClusterSeconds = math.Float64frombits(r.Uint())
	cp.Stats.WallSeconds = math.Float64frombits(r.Uint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if cp.Pending, err = decodePairs(r); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after checkpoint", r.Remaining())
	}
	return cp, nil
}
