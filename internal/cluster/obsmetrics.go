package cluster

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/par"
)

// clusterMetrics bundles the observability handles the master and
// workers update during a parallel run. Built from a nil Registry all
// handles are nil and every update is a no-op, so the struct is passed
// unconditionally.
type clusterMetrics struct {
	reg *obs.Registry

	pairsGenerated *obs.Counter // pairs received from workers
	pairsSkipped   *obs.Counter // discarded: fragments already clustered
	pairsAligned   *obs.Counter // pairs dispatched for alignment
	pairsAccepted  *obs.Counter // alignments that met the criteria
	merges         *obs.Counter // successful union–find merges
	workersLost    *obs.Counter // leases expired / crashes detected
	checkpoints    *obs.Counter // master checkpoints written
	reports        *obs.Counter // reports the master processed

	pendingDepth *obs.Gauge // current master pending-queue depth
	pendingPeak  *obs.Gauge // high-water mark of the pending queue

	alignLen     *obs.Histogram // exact-match anchor length per aligned pair
	batchLatency *obs.Histogram // worker wall seconds per alignment batch
}

func newClusterMetrics(r *obs.Registry) clusterMetrics {
	return clusterMetrics{
		reg:            r,
		pairsGenerated: r.Counter("cluster_pairs_generated"),
		pairsSkipped:   r.Counter("cluster_pairs_skipped"),
		pairsAligned:   r.Counter("cluster_pairs_aligned"),
		pairsAccepted:  r.Counter("cluster_pairs_accepted"),
		merges:         r.Counter("cluster_merges"),
		workersLost:    r.Counter("cluster_workers_lost"),
		checkpoints:    r.Counter("cluster_checkpoints"),
		reports:        r.Counter("cluster_master_reports"),
		pendingDepth:   r.Gauge("cluster_pending_depth"),
		pendingPeak:    r.Gauge("cluster_pending_depth_peak"),
		alignLen: r.Histogram("cluster_align_match_len",
			[]float64{10, 20, 40, 80, 160, 320, 640}),
		batchLatency: r.Histogram("cluster_batch_latency_seconds",
			[]float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1}),
	}
}

// publishRankStats exports each rank's traffic totals as gauges once a
// run finishes (per-rank bytes and message counts, both directions).
func (m clusterMetrics) publishRankStats(stats []par.Stats) {
	if m.reg == nil {
		return
	}
	for r, s := range stats {
		p := fmt.Sprintf("par_rank%d_", r)
		m.reg.Gauge(p + "bytes_sent").Set(int64(s.BytesSent))
		m.reg.Gauge(p + "bytes_recv").Set(int64(s.BytesRecv))
		m.reg.Gauge(p + "msgs_sent").Set(int64(s.MsgsSent))
		m.reg.Gauge(p + "msgs_recv").Set(int64(s.MsgsRecv))
		if s.MsgsDropped > 0 {
			m.reg.Gauge(p + "msgs_dropped").Set(int64(s.MsgsDropped))
		}
		if s.Retransmits > 0 {
			m.reg.Gauge(p + "retransmits").Set(int64(s.Retransmits))
		}
		if s.FramesCorrupted > 0 {
			m.reg.Gauge(p + "frames_corrupted").Set(int64(s.FramesCorrupted))
		}
	}
}
