package cluster

import (
	"testing"
	"time"

	"repro/internal/par"
)

// faultPcfg is the common harness for fault runs: small batches so
// workers report many times before the kill steps fire. Crashes are
// detected through the runtime's dead-rank flag, not lease expiry, so
// the lease can stay generous — short enough to bound a hang, long
// enough that a healthy worker is never fired just because the race
// detector slowed its alignments down.
func faultPcfg(p int, plan *par.FaultPlan) ParallelConfig {
	pcfg := DefaultParallelConfig(p)
	pcfg.BatchSize = 16
	pcfg.Faults = plan
	pcfg.LeaseTimeout = 2 * time.Second
	return pcfg
}

// TestFaultKillHalfMatchesSerial is the headline guarantee: with p=5
// ranks, kill ⌈(p−1)/2⌉ = 2 of the 4 workers mid-clustering and the
// surviving machine must still produce exactly the serial partition.
func TestFaultKillHalfMatchesSerial(t *testing.T) {
	st, _ := islandStore(3, 3, 2200, 120)
	cfg := testConfig()
	serial := Serial(st, cfg)
	want := clusterLabels(serial)

	plan := &par.FaultPlan{Seed: 7, Crashes: []par.Crash{
		CrashWorkerAtReport(2, 2),
		CrashWorkerAtReport(4, 4),
	}}
	res, _, err := Parallel(st, cfg, faultPcfg(5, plan))
	if err != nil {
		t.Fatal(err)
	}
	got := clusterLabels(res)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fragment %d in cluster %d, serial says %d", i, got[i], want[i])
		}
	}
	// Merges = n − final components, so partition equality forces it.
	if res.Stats.Merges != serial.Stats.Merges {
		t.Errorf("merges %d != serial %d", res.Stats.Merges, serial.Stats.Merges)
	}
	if res.Stats.WorkersLost != 2 {
		t.Errorf("WorkersLost = %d, want 2", res.Stats.WorkersLost)
	}
	// Adopted regeneration may duplicate pairs, never lose them.
	if res.Stats.Generated < serial.Stats.Generated {
		t.Errorf("generated %d < serial %d: pairs were lost",
			res.Stats.Generated, serial.Stats.Generated)
	}
}

// TestFaultEarlyDeathAdoption kills a worker before its first report
// ever arrives: the master has no results from it at all, and its
// entire GST portion must be rebuilt on a survivor.
func TestFaultEarlyDeathAdoption(t *testing.T) {
	st, _ := islandStore(6, 2, 1800, 90)
	cfg := testConfig()
	want := clusterLabels(Serial(st, cfg))

	plan := &par.FaultPlan{Crashes: []par.Crash{CrashWorkerAtReport(1, 1)}}
	res, _, err := Parallel(st, cfg, faultPcfg(3, plan))
	if err != nil {
		t.Fatal(err)
	}
	got := clusterLabels(res)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fragment %d in cluster %d, serial says %d", i, got[i], want[i])
		}
	}
	if res.Stats.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", res.Stats.WorkersLost)
	}
}

// TestFaultAllWorkersDie: with no survivors left the master must
// return an error rather than hang or fabricate a partial result.
func TestFaultAllWorkersDie(t *testing.T) {
	st, _ := islandStore(6, 2, 1800, 90)
	plan := &par.FaultPlan{Crashes: []par.Crash{
		CrashWorkerAtReport(1, 1),
		CrashWorkerAtReport(2, 1),
	}}
	done := make(chan error, 1)
	go func() {
		_, _, err := Parallel(st, testConfig(), faultPcfg(3, plan))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Parallel succeeded with every worker dead")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Parallel hung with every worker dead")
	}
}

// TestFaultDropRecovery runs with a lossy eager transport. Safety is
// unconditional: if the run completes, the partition is exactly the
// serial one. (Liveness is not: enough distinct drops can fire every
// worker, which surfaces as an explicit error, also accepted here.)
func TestFaultDropRecovery(t *testing.T) {
	st, _ := islandStore(3, 3, 2200, 120)
	cfg := testConfig()
	want := clusterLabels(Serial(st, cfg))

	plan := &par.FaultPlan{Seed: 11, DropProb: 0.02}
	pcfg := faultPcfg(6, plan)
	pcfg.UseSsend = false // drops only affect eager messages
	pcfg.LeaseTimeout = 100 * time.Millisecond
	res, _, err := Parallel(st, cfg, pcfg)
	if err != nil {
		t.Logf("degraded to total worker loss (acceptable): %v", err)
		return
	}
	got := clusterLabels(res)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fragment %d in cluster %d, serial says %d", i, got[i], want[i])
		}
	}
	t.Logf("completed with %d workers lost, %d pairs requeued",
		res.Stats.WorkersLost, res.Stats.Requeued)
}

// TestCheckpointResume: a run resumed from a mid-flight checkpoint
// must converge to the same partition as an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	st, _ := islandStore(4, 2, 2000, 80)
	cfg := testConfig()
	want := clusterLabels(Serial(st, cfg))

	var last []byte
	pcfg := DefaultParallelConfig(3)
	pcfg.BatchSize = 16
	pcfg.CheckpointEvery = 3
	pcfg.CheckpointSink = func(b []byte) { last = append([]byte(nil), b...) }
	if _, _, err := Parallel(st, cfg, pcfg); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("checkpoint sink never called")
	}
	cp, err := DecodeCheckpoint(last)
	if err != nil {
		t.Fatalf("sink produced an undecodable checkpoint: %v", err)
	}
	if cp.N != st.N() {
		t.Fatalf("checkpoint N = %d, store has %d", cp.N, st.N())
	}

	rcfg := DefaultParallelConfig(3)
	rcfg.BatchSize = 16
	rcfg.ResumeFrom = last
	res, _, err := Parallel(st, cfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	got := clusterLabels(res)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed run: fragment %d in cluster %d, serial says %d", i, got[i], want[i])
		}
	}

	// Resuming against a different store must be rejected.
	other, _ := islandStore(9, 1, 900, 30)
	ocfg := DefaultParallelConfig(3)
	ocfg.ResumeFrom = last
	if _, _, err := Parallel(other, cfg, ocfg); err == nil {
		t.Error("resume accepted a checkpoint for a different store")
	}
}

func TestParseFaults(t *testing.T) {
	plan, err := ParseFaults("crash=2@5,crash=3@9,drop=0.01,delayp=0.5,delay=20ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Crashes) != 2 || plan.Crashes[0].Rank != 2 || plan.Crashes[1].AfterSends != 9 {
		t.Errorf("crashes parsed wrong: %+v", plan.Crashes)
	}
	if plan.DropProb != 0.01 || plan.DelayProb != 0.5 || plan.Delay != 20*time.Millisecond || plan.Seed != 7 {
		t.Errorf("plan parsed wrong: %+v", plan)
	}
	plan, err = ParseFaults("gstcrash=3@2,corrupt=0.05,retransmit")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Crashes) != 1 || plan.Crashes[0].Rank != 3 || plan.Crashes[0].AfterSends != 2 {
		t.Errorf("gstcrash parsed wrong: %+v", plan.Crashes)
	}
	if !plan.Retransmit || plan.CorruptProb != 0.05 {
		t.Errorf("reliable-link options parsed wrong: %+v", plan)
	}
	if plan, err = ParseFaults("corrupt=0.1"); err != nil || !plan.Retransmit {
		t.Errorf("corrupt should imply retransmit: %+v, %v", plan, err)
	}
	for _, bad := range []string{
		"", "crash=0@1", "crash=2@0", "crash=2", "drop=1.5", "drop=x",
		"delayp=-1", "delay=fast", "seed=abc", "nonsense=1", "crash",
		"gstcrash=0@1", "gstcrash=2", "corrupt=2", "retransmit=maybe",
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestFaultEndToEndCombined is the acceptance scenario for the
// end-to-end fault model: one run with a rank crash during GST
// construction, frame corruption on every eager message, and a worker
// crash during clustering — and the partition must still be exactly
// the serial one.
func TestFaultEndToEndCombined(t *testing.T) {
	st, _ := islandStore(3, 3, 2200, 120)
	cfg := testConfig()
	serial := Serial(st, cfg)
	want := clusterLabels(serial)

	plan, err := ParseFaults("gstcrash=2@2,crash=4@3,corrupt=0.02,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	res, ph, err := Parallel(st, cfg, faultPcfg(6, plan))
	if err != nil {
		t.Fatal(err)
	}
	got := clusterLabels(res)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fragment %d in cluster %d, serial says %d", i, got[i], want[i])
		}
	}
	if res.Stats.Merges != serial.Stats.Merges {
		t.Errorf("merges %d != serial %d", res.Stats.Merges, serial.Stats.Merges)
	}
	// The GST-phase death is detected by the clustering master, so both
	// crashes count as lost workers.
	if res.Stats.WorkersLost != 2 {
		t.Errorf("WorkersLost = %d, want 2", res.Stats.WorkersLost)
	}
	// The corrupting wire must have been exercised and healed.
	if n := ph.GST.TotalFramesCorrupted + ph.Cluster.TotalFramesCorrupted; n == 0 {
		t.Error("2% corruption injured no frames")
	}
	if n := ph.GST.TotalRetransmits + ph.Cluster.TotalRetransmits; n == 0 {
		t.Error("corrupted frames caused no retransmissions")
	}
}

// TestWorkerFailReportAborts: a worker that cannot decode a master
// message reports the failure instead of panicking, and in non-fault
// mode the master aborts the run with an error (satellite: no decode
// panics anywhere in the protocol).
func TestWorkerFailReportAborts(t *testing.T) {
	rep := encodeReport(report{fail: "boom"})
	dec, err := decodeReport(rep)
	if err != nil {
		t.Fatalf("fail report round-trip: %v", err)
	}
	if dec.fail != "boom" {
		t.Fatalf("fail = %q, want boom", dec.fail)
	}
}
