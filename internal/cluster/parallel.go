package cluster

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/pairgen"
	"repro/internal/par"
	"repro/internal/pgst"
	"repro/internal/seq"
	"repro/internal/suffixtree"
	"repro/internal/unionfind"
)

// ParallelConfig holds the machine and load-balancing parameters of
// the master–worker implementation (Section 7).
type ParallelConfig struct {
	// Ranks is the machine size p: one master and p−1 workers.
	Ranks int
	// BatchSize is b, the number of pairs per alignment-work batch.
	BatchSize int
	// MaxPending caps the master's Pending_Work_Buf; the request size
	// r regulates generation so this is rarely exceeded.
	MaxPending int
	// NewPairsBuf caps each worker's buffered ungenerated-pair store.
	NewPairsBuf int
	// BatchBytes is the fragment-fetch budget of GST construction.
	BatchBytes int
	// Staged selects the customized Alltoallv in GST construction.
	Staged bool
	// Machine overrides the communication cost model (zero: defaults).
	Machine par.Config
	// UseSsend makes workers use synchronous sends for reports, the
	// paper's protection against master-side buffer overflow; eager
	// sends are the (faster, riskier) alternative it compares against.
	// Message-drop fault injection only affects eager sends, so drop
	// experiments must run with UseSsend false.
	UseSsend bool
	// ScaleBatchWithWorkers grows the dispatch granularity with the
	// machine so the frequency of messages arriving at the master does
	// not grow with p — the single-master remedy Section 7.2 proposes.
	// The effective batch size becomes BatchSize × max(1, workers/8).
	ScaleBatchWithWorkers bool

	// Faults, when non-nil, injects the plan into the machine and
	// switches the master–worker protocol into its fault-tolerant
	// (lease-based) mode. Nil keeps the fault-free fast path, whose
	// message pattern and modeled statistics are identical to the
	// fault-unaware implementation.
	Faults *par.FaultPlan
	// FT forces the fault-tolerant (lease-based) protocol even with no
	// injected fault plan. Multi-process transport runs set it: real
	// processes genuinely die (OOM kill, SIGKILL, node loss), so the
	// protocol must survive rank death even though nothing is being
	// injected. Setting Faults implies FT.
	FT bool
	// LeaseTimeout is how long the master waits for a report from a
	// worker with outstanding work before declaring it dead (fault
	// mode only). Workers give up on a silent master after 4× this.
	// Default 3 s.
	LeaseTimeout time.Duration
	// CheckpointEvery, when positive, snapshots the master state every
	// that many processed reports and hands the encoded checkpoint to
	// CheckpointSink.
	CheckpointEvery int
	// CheckpointSink receives encoded checkpoints (see Checkpoint).
	CheckpointSink func([]byte)
	// ResumeFrom, when non-empty, warm-starts the master from an
	// encoded checkpoint: the union–find, statistics and pending pairs
	// are restored, and workers regenerate pairs from scratch (the
	// union–find makes re-delivered pairs harmless).
	ResumeFrom []byte

	// Trace, when non-nil, records phase spans (GST / cluster / align /
	// recover) and protocol events (lease grant/expire/adopt, merges,
	// pair generation, checkpoints) alongside the runtime's message
	// events. It is installed into Machine unless Machine.Trace is
	// already set.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives counters, gauges and histograms
	// from the master and workers (merge rate, pending-queue depth,
	// alignment-length and batch-latency distributions). Nil disables
	// all metric updates.
	Metrics *obs.Registry
}

// DefaultParallelConfig returns a p-rank configuration with paper-like
// batch parameters.
func DefaultParallelConfig(p int) ParallelConfig {
	return ParallelConfig{
		Ranks:       p,
		BatchSize:   64,
		MaxPending:  4096,
		NewPairsBuf: 1024,
		BatchBytes:  1 << 20,
		UseSsend:    true,
	}
}

func (c ParallelConfig) withDefaults() ParallelConfig {
	d := DefaultParallelConfig(c.Ranks)
	if c.BatchSize == 0 {
		c.BatchSize = d.BatchSize
	}
	if c.MaxPending == 0 {
		c.MaxPending = d.MaxPending
	}
	if c.NewPairsBuf == 0 {
		c.NewPairsBuf = d.NewPairsBuf
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = d.BatchBytes
	}
	if c.LeaseTimeout == 0 {
		c.LeaseTimeout = 3 * time.Second
	}
	if c.Machine.Ranks == 0 {
		c.Machine = par.DefaultConfig(c.Ranks)
	}
	if c.Machine.Trace == nil {
		c.Machine.Trace = c.Trace
	}
	if c.Faults != nil {
		c.Machine.Faults = c.Faults
		c.FT = true
	}
	if c.FT {
		// The lease protocol requires workers' sends to be
		// non-blocking: a worker the master has already given up on
		// (fired on lease expiry while merely slow) may Ssend one last
		// report after the master stops reading, and would wedge
		// waiting for a match that never comes. Eager reports make a
		// fired worker's last words harmless.
		c.UseSsend = false
	}
	if c.ScaleBatchWithWorkers {
		if f := (c.Ranks - 1) / 8; f > 1 {
			c.BatchSize *= f
		}
	}
	return c
}

// PhaseStats separates GST construction from the clustering loop, the
// split the paper reports (Fig. 5 vs Fig. 9).
type PhaseStats struct {
	GST     par.Aggregate
	Cluster par.Aggregate
	// MasterAvailability is the fraction of the master's modeled
	// clustering time NOT spent processing messages (Section 7.2
	// reports 90 % → 70 % as p grows).
	MasterAvailability float64
	// MasterPeakBufBytes is the high-water mark of the master rank's
	// receive buffers over the whole run — the quantity MPI_Ssend
	// bounds in the paper's Section 7.2 discussion.
	MasterPeakBufBytes int
	// MasterMsgsRecv counts messages the master processed during the
	// clustering phase; its growth with p is the Section 7.2 concern
	// that ScaleBatchWithWorkers addresses.
	MasterMsgsRecv int
	// Exits is the per-rank exit status (fault runs; all-OK otherwise).
	Exits []par.Exit
}

// pairQueue is a FIFO of pairs with an O(1) head pop. The head index
// replaces the pending[1:] re-slice, whose retained backing array
// grows without bound; the buffer is compacted once the dead prefix
// dominates it.
type pairQueue struct {
	buf  []pairgen.Pair
	head int
}

func (q *pairQueue) Len() int { return len(q.buf) - q.head }

func (q *pairQueue) push(p pairgen.Pair) { q.buf = append(q.buf, p) }

func (q *pairQueue) pushAll(ps []pairgen.Pair) { q.buf = append(q.buf, ps...) }

func (q *pairQueue) pop() pairgen.Pair {
	p := q.buf[q.head]
	q.head++
	if q.head >= 256 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return p
}

// slice returns the queued pairs in order (for checkpoints).
func (q *pairQueue) slice() []pairgen.Pair { return q.buf[q.head:] }

// Parallel clusters the store's fragments on a p-rank machine:
// parallel GST construction (buckets on workers only), then the
// iterative master–worker overlap detection of Figs. 7–8. With a
// fault plan set it runs the lease-based fault-tolerant protocol and
// finishes on the surviving workers; the partition it returns is then
// identical to a fault-free run's (union–find merges are
// order-independent and duplicated pairs are harmless).
func Parallel(store seq.Seqs, cfg Config, pcfg ParallelConfig) (*Result, PhaseStats, error) {
	cfg = cfg.withDefaults()
	pcfg = pcfg.withDefaults()
	if pcfg.Ranks < 2 {
		return nil, PhaseStats{}, fmt.Errorf("cluster: parallel run needs at least 2 ranks (1 master + 1 worker), got %d", pcfg.Ranks)
	}
	var resume *Checkpoint
	if len(pcfg.ResumeFrom) > 0 {
		cp, err := DecodeCheckpoint(pcfg.ResumeFrom)
		if err != nil {
			return nil, PhaseStats{}, err
		}
		if cp.N != store.N() {
			return nil, PhaseStats{}, fmt.Errorf("cluster: checkpoint is for %d fragments, store has %d", cp.N, store.N())
		}
		resume = cp
	}

	result := &Result{N: store.N()}
	outs := make([]rankOut, pcfg.Ranks)
	mx := newClusterMetrics(pcfg.Metrics)
	start := time.Now()

	stats, exits := par.RunStatus(pcfg.Machine, func(c *par.Comm) {
		clusterRankBody(c, store, cfg, pcfg, resume, mx, &outs[c.Rank()])
	})
	mx.publishRankStats(stats)

	gstSnaps := make([]par.Stats, pcfg.Ranks)
	for i := range outs {
		gstSnaps[i] = outs[i].gstSnap
	}
	result.UF = outs[0].uf
	result.Stats = outs[0].stats
	masterWork := outs[0].masterWork

	if !exits[0].OK {
		return nil, PhaseStats{Exits: exits}, fmt.Errorf("cluster: master rank died: %s", exits[0].Reason)
	}
	if outs[0].masterErr != nil {
		return nil, PhaseStats{Exits: exits}, outs[0].masterErr
	}
	if !pcfg.FT {
		for r, e := range exits {
			if !e.OK {
				return nil, PhaseStats{Exits: exits}, fmt.Errorf("cluster: rank %d died without a fault plan: %s", r, e.Reason)
			}
		}
	}

	result.Stats.WallSeconds = time.Since(start).Seconds()

	// Phase accounting: the snapshot taken at the barrier separates
	// GST construction from clustering.
	clusterStats := make([]par.Stats, len(stats))
	for i := range stats {
		clusterStats[i] = subtractStats(stats[i], gstSnaps[i])
	}
	ph := PhaseStats{
		GST:                par.Summarize(gstSnaps),
		Cluster:            par.Summarize(clusterStats),
		MasterPeakBufBytes: stats[0].PeakBufBytes,
		MasterMsgsRecv:     clusterStats[0].MsgsRecv,
		Exits:              exits,
	}
	if m := clusterStats[0].Modeled(); m > 0 && ph.Cluster.MaxModeled > 0 {
		ph.MasterAvailability = 1 - masterWork/ph.Cluster.MaxModeled
		if ph.MasterAvailability < 0 {
			ph.MasterAvailability = 0
		}
	}
	result.Stats.GSTSeconds = ph.GST.MaxModeled
	result.Stats.ClusterSeconds = ph.Cluster.MaxModeled
	return result, ph, nil
}

// rankOut collects what one rank's body produces: the GST-phase
// snapshot on every rank, and the clustering result on the master.
type rankOut struct {
	gstSnap    par.Stats
	uf         *unionfind.UF
	stats      Stats
	masterWork float64
	masterErr  error
}

// clusterRankBody is the SPMD body one rank executes — the same code
// whether the rank is a goroutine of an in-process machine (Parallel)
// or an OS process speaking to its peers through a transport
// (ParallelRank).
func clusterRankBody(c *par.Comm, store seq.Seqs, cfg Config, pcfg ParallelConfig, resume *Checkpoint, mx clusterMetrics, out *rankOut) {
	// Phase 1: distributed GST over workers (rank 0 owns no buckets).
	// In FT mode the build itself is survivable: a rank that dies
	// mid-construction has its exchanges re-enumerated and its bucket
	// range rebuilt by survivors (see pgst.Config.FT).
	c.TraceEvent(obs.EvPhaseEnter, obs.PhaseGST, 0, 0)
	local := pgst.Build(c, store, pgst.Config{
		W:          cfg.W,
		MinLen:     cfg.Psi,
		FirstOwner: 1,
		BatchBytes: pcfg.BatchBytes,
		Staged:     pcfg.Staged,
		Seed:       12345,
		FT:         pcfg.FT,
		SpillBytes: cfg.MemBudget,
	})
	if pcfg.FT {
		c.FTBarrier(10 * time.Millisecond)
	} else {
		c.Barrier()
	}
	c.TraceEvent(obs.EvPhaseExit, obs.PhaseGST, 0, 0)
	out.gstSnap = c.Snapshot()

	// Phase 2: master–worker clustering.
	c.TraceEvent(obs.EvPhaseEnter, obs.PhaseCluster, 0, 0)
	if c.Rank() == 0 {
		c.TraceEvent(obs.EvPhaseEnter, obs.PhaseMaster, 0, 0)
		uf, st, busy, err := runMaster(c, store, cfg, pcfg, resume, mx)
		c.TraceEvent(obs.EvPhaseExit, obs.PhaseMaster, 0, 0)
		out.uf = uf
		out.stats = st
		out.masterWork = busy
		out.masterErr = err
	} else {
		runWorker(c, store, local, cfg, pcfg, mx)
	}
	c.TraceEvent(obs.EvPhaseExit, obs.PhaseCluster, 0, 0)
}

// ParallelRank runs exactly one rank of the parallel clustering as
// this process's share of a multi-process machine, with peers reached
// through t. Rank 0 (the master) returns the clustering Result; other
// ranks return a nil Result. Transport runs normally set pcfg.FT so
// the protocol survives real process death.
//
// Because each process sees only its own rank, the returned Stats and
// phase seconds describe this rank alone rather than a machine-wide
// aggregate; cross-rank analysis merges the per-process trace dumps
// instead.
func ParallelRank(store seq.Seqs, cfg Config, pcfg ParallelConfig, rank int, t par.Transport) (*Result, par.Stats, par.Exit, error) {
	cfg = cfg.withDefaults()
	pcfg = pcfg.withDefaults()
	if pcfg.Ranks < 2 {
		return nil, par.Stats{}, par.Exit{}, fmt.Errorf("cluster: parallel run needs at least 2 ranks, got %d", pcfg.Ranks)
	}
	if rank < 0 || rank >= pcfg.Ranks {
		return nil, par.Stats{}, par.Exit{}, fmt.Errorf("cluster: rank %d out of range for %d ranks", rank, pcfg.Ranks)
	}
	var resume *Checkpoint
	if len(pcfg.ResumeFrom) > 0 {
		cp, err := DecodeCheckpoint(pcfg.ResumeFrom)
		if err != nil {
			return nil, par.Stats{}, par.Exit{}, err
		}
		if cp.N != store.N() {
			return nil, par.Stats{}, par.Exit{}, fmt.Errorf("cluster: checkpoint is for %d fragments, store has %d", cp.N, store.N())
		}
		resume = cp
	}

	mx := newClusterMetrics(pcfg.Metrics)
	var out rankOut
	start := time.Now()
	st, exit := par.RunRank(pcfg.Machine, rank, t, func(c *par.Comm) {
		clusterRankBody(c, store, cfg, pcfg, resume, mx, &out)
	})
	mx.publishRankStats([]par.Stats{st})
	if rank != 0 {
		if !exit.OK && !pcfg.FT {
			return nil, st, exit, fmt.Errorf("cluster: rank %d died: %s", rank, exit.Reason)
		}
		return nil, st, exit, nil
	}
	if !exit.OK {
		return nil, st, exit, fmt.Errorf("cluster: master rank died: %s", exit.Reason)
	}
	if out.masterErr != nil {
		return nil, st, exit, out.masterErr
	}
	result := &Result{N: store.N(), UF: out.uf, Stats: out.stats}
	result.Stats.WallSeconds = time.Since(start).Seconds()
	result.Stats.GSTSeconds = out.gstSnap.Modeled()
	result.Stats.ClusterSeconds = subtractStats(st, out.gstSnap).Modeled()
	return result, st, exit, nil
}

func subtractStats(a, b par.Stats) par.Stats {
	a.Wall -= b.Wall
	a.Blocked -= b.Blocked
	a.CommModel -= b.CommModel
	a.CompModel -= b.CompModel
	a.MsgsSent -= b.MsgsSent
	a.MsgsRecv -= b.MsgsRecv
	a.BytesSent -= b.BytesSent
	a.BytesRecv -= b.BytesRecv
	a.MsgsDropped -= b.MsgsDropped
	a.Retransmits -= b.Retransmits
	a.FramesCorrupted -= b.FramesCorrupted
	return a
}

// runMaster is the Fig. 7 algorithm, extended with the lease-based
// fault protocol. It returns the final clustering, statistics, and
// its modeled busy seconds (for the availability metric).
//
// Fault mode invariants: expected[w] counts reports w still owes (its
// lease); owed[w] is the FIFO of dispatched batches not yet
// acknowledged by a result-carrying report; covers[w] is the set of
// GST portions w generates pairs from (its own, plus any adopted from
// dead ranks). Per-worker traffic strictly alternates, so a received
// report implies every earlier report from that worker was received —
// which is why a worker that reported passive can die without losing
// coverage, and any dropped message eventually expires the lease and
// re-assigns both the leased batches and the coverage.
func runMaster(c *par.Comm, store seq.Seqs, cfg Config, pcfg ParallelConfig, resume *Checkpoint, mx clusterMetrics) (*unionfind.UF, Stats, float64, error) {
	uf := unionfind.New(store.N())
	var st Stats
	busy := 0.0
	charge := func(sec float64) {
		busy += sec
		c.ChargeCompute(sec)
	}

	ft := pcfg.FT
	lease := pcfg.LeaseTimeout
	pollSlice := lease / 4
	if pollSlice > 50*time.Millisecond {
		pollSlice = 50 * time.Millisecond
	}
	// adoptDeadline grants lease grace to a worker that was just asked
	// to adopt dead ranks' GST portions: rebuilding them is real
	// compute on the lease clock, and firing a slow adopter re-orphans
	// an even larger portion onto the next one — a cascade that can
	// consume every worker. The grace scales with the adoption size.
	adoptDeadline := func(adopted int) time.Time {
		return time.Now().Add(time.Duration(3*adopted) * lease)
	}

	var pending pairQueue
	parked := []int{}
	passive := make(map[int]bool)
	// owed[w] holds the batches whose results are still outstanding: a
	// non-empty batch sent to w is acknowledged by w's next
	// result-carrying report (the worker aligns a batch after sending
	// its following report, so at most two replies separate dispatch
	// and acknowledgment, but at most one non-empty batch is ever
	// unacknowledged at a decision point). A worker owing results must
	// not be parked until an empty reply has flushed them out.
	owed := make(map[int][][]pairgen.Pair)
	expected := make(map[int]int) // reports outstanding per worker
	lastHeard := make(map[int]time.Time)
	dead := make(map[int]bool)
	covers := make(map[int][]int) // GST portions each worker generates from
	var orphans []int             // dead ranks' portions awaiting adoption
	inFlight := c.Size() - 1      // every worker owes an initial report
	now := time.Now()
	for w := 1; w < c.Size(); w++ {
		expected[w] = 1
		lastHeard[w] = now
		covers[w] = []int{w}
	}
	if resume != nil {
		uf = resume.restore()
		st = resume.Stats
		pending.pushAll(resume.Pending)
	}

	// takeBatch extracts up to BatchSize non-stale pairs.
	takeBatch := func() []pairgen.Pair {
		var batch []pairgen.Pair
		n := int32(store.N())
		for len(batch) < pcfg.BatchSize && pending.Len() > 0 {
			p := pending.pop()
			if uf.Same(int(p.ASid%n), int(p.BSid%n)) {
				st.Skipped++ // merged since it was enqueued
				charge(costUF)
				continue
			}
			batch = append(batch, p)
		}
		return batch
	}

	activeWorkers := func() int {
		a := 0
		for w := 1; w < c.Size(); w++ {
			if !dead[w] && !passive[w] {
				a++
			}
		}
		if a < 1 {
			a = 1
		}
		return a
	}

	liveWorkers := func() int {
		n := 0
		for w := 1; w < c.Size(); w++ {
			if !dead[w] {
				n++
			}
		}
		return n
	}

	// requestSize implements the paper's r formula: ask for enough
	// pairs that ≈ b survive selection, without overflowing the
	// pending buffer.
	requestSize := func(worker int) int {
		if passive[worker] {
			return 0
		}
		selectivity := 1.0
		if st.Generated > 0 {
			selectivity = float64(st.Generated-st.Skipped) / float64(st.Generated)
			if selectivity < 0.05 {
				selectivity = 0.05
			}
		}
		r := int(float64(pcfg.BatchSize) / selectivity)
		free := pcfg.MaxPending - pending.Len()
		if free < 0 {
			free = 0
		}
		if quota := free / activeWorkers(); r > quota {
			r = quota
		}
		return r
	}

	sendWork := func(worker int, batch []pairgen.Pair) {
		st.Aligned += int64(len(batch))
		mx.pairsAligned.Add(int64(len(batch)))
		if len(batch) > 0 {
			owed[worker] = append(owed[worker], batch)
		}
		wk := work{batch: batch}
		if ft && len(orphans) > 0 {
			// Piggyback pending adoptions on the reply; recorded
			// optimistically so a lost reply re-orphans them with the
			// adopter's lease.
			wk.adopt = orphans
			covers[worker] = append(covers[worker], orphans...)
			delete(passive, worker)
			orphans = nil
			c.TraceEvent(obs.EvLeaseAdopt, int64(worker), int64(len(wk.adopt)), 0)
		}
		wk.r = requestSize(worker)
		c.TraceEvent(obs.EvLeaseGrant, int64(worker), int64(len(batch)), int64(wk.r))
		c.Send(worker, tagWork, encodeWork(wk))
		expected[worker]++
		if ft {
			lastHeard[worker] = adoptDeadline(len(wk.adopt))
		}
		inFlight++
	}

	// reap fires a worker: its lease is cancelled, leased batches are
	// requeued, and — unless it had reported passive, meaning its
	// covered portions were fully generated and received — its GST
	// coverage is orphaned for adoption by a survivor.
	reap := func(w int) {
		if dead[w] {
			return
		}
		dead[w] = true
		st.WorkersLost++
		mx.workersLost.Inc()
		inFlight -= expected[w]
		expected[w] = 0
		requeued := int64(0)
		for _, b := range owed[w] {
			st.Aligned -= int64(len(b))
			st.Requeued += int64(len(b))
			requeued += int64(len(b))
			pending.pushAll(b)
		}
		c.TraceEvent(obs.EvLeaseExpire, int64(w), requeued, 0)
		delete(owed, w)
		for i, x := range parked {
			if x == w {
				parked = append(parked[:i], parked[i+1:]...)
				break
			}
		}
		if !passive[w] {
			orphans = append(orphans, covers[w]...)
		}
		delete(passive, w)
		delete(covers, w)
	}

	// reapDead fires crashed workers (detected by the runtime) and
	// silent ones whose lease expired; the latter get a done fence
	// first, in case they are alive but cut off.
	reapDead := func() bool {
		any := false
		now := time.Now()
		for w := 1; w < c.Size(); w++ {
			if dead[w] {
				continue
			}
			if c.RankDead(w) {
				reap(w)
				any = true
				continue
			}
			if expected[w] > 0 && now.Sub(lastHeard[w]) > lease {
				c.Send(w, tagDone, nil)
				reap(w)
				any = true
			}
		}
		return any
	}

	// abort tears the protocol down after an unrecoverable error:
	// every live worker is fenced with a done message, outstanding
	// reports are drained (releasing rendezvous senders that would
	// otherwise wedge the run), and the error propagates to the caller
	// instead of panicking.
	abort := func(cause error) (*unionfind.UF, Stats, float64, error) {
		for w := 1; w < c.Size(); w++ {
			if !dead[w] && !c.RankDead(w) {
				c.Send(w, tagDone, nil)
			}
		}
		quiet := 0
		for inFlight > 0 && quiet < 8 {
			if _, ok := c.RecvTimeout(par.AnySource, tagReport, 250*time.Millisecond); ok {
				inFlight--
				quiet = 0
			} else {
				quiet++
			}
		}
		return uf, st, busy, cause
	}

	reports := 0
	maybeCheckpoint := func() {
		if pcfg.CheckpointEvery <= 0 || pcfg.CheckpointSink == nil {
			return
		}
		reports++
		if reports%pcfg.CheckpointEvery != 0 {
			return
		}
		charge(float64(uf.N()) * costUF) // the Find sweep over all labels
		cp := snapshotCheckpoint(uf, st, pending.slice()).Encode()
		c.TraceEvent(obs.EvCheckpoint, int64(len(cp)), 0, 0)
		mx.checkpoints.Inc()
		pcfg.CheckpointSink(cp)
	}

	for {
		// Hand orphaned GST portions to an idle (parked) worker first:
		// it resumes generation immediately instead of waiting for a
		// busy worker's next report.
		if ft && len(orphans) > 0 && len(parked) > 0 {
			a := parked[0]
			parked = parked[1:]
			covers[a] = append(covers[a], orphans...)
			delete(passive, a)
			c.TraceEvent(obs.EvLeaseAdopt, int64(a), int64(len(orphans)), 0)
			c.Send(a, tagAdopt, encodeAdopt(adopt{deadRanks: orphans}))
			lastHeard[a] = adoptDeadline(len(orphans))
			orphans = nil
			expected[a]++
			inFlight++
		}
		// Dispatch pending work to parked workers (keeping passive
		// workers busy, Section 7).
		for len(parked) > 0 && pending.Len() > 0 {
			batch := takeBatch()
			if len(batch) == 0 {
				break
			}
			wkr := parked[0]
			parked = parked[1:]
			sendWork(wkr, batch)
		}
		if inFlight == 0 {
			if ft && liveWorkers() == 0 {
				// Everything left is either already done or
				// unrecoverable; any orphaned coverage or real pending
				// pair means lost work.
				if len(orphans) > 0 || len(takeBatch()) > 0 {
					return uf, st, busy, fmt.Errorf("cluster: all %d workers died with work remaining", st.WorkersLost)
				}
			}
			break
		}

		var msg par.Message
		if ft {
			got := false
			for !got {
				m, ok := c.RecvTimeout(par.AnySource, tagReport, pollSlice)
				if ok {
					msg, got = m, true
				} else if reapDead() {
					break
				}
			}
			if !got {
				continue // reaped instead of received: redo dispatch
			}
		} else {
			msg = c.Recv(par.AnySource, tagReport)
		}
		if ft && dead[msg.Src] {
			// Zombie: a worker already fired (late or delayed report).
			// Fence it without touching the bookkeeping.
			c.Send(msg.Src, tagDone, nil)
			continue
		}
		inFlight--
		if ft {
			expected[msg.Src]--
			lastHeard[msg.Src] = time.Now()
		}
		rep, derr := decodeReport(msg.Data)
		if derr != nil {
			if !ft {
				return abort(fmt.Errorf("cluster: malformed report from worker %d: %w", msg.Src, derr))
			}
			// A corrupted report means the channel to this worker is
			// unreliable; fire it and recover its state.
			c.Send(msg.Src, tagDone, nil)
			reap(msg.Src)
			continue
		}
		if rep.fail != "" {
			// The worker hit a protocol error and exited after sending
			// this report.
			werr := fmt.Errorf("cluster: worker %d failed: %s", msg.Src, rep.fail)
			if !ft {
				return abort(werr)
			}
			reap(msg.Src)
			continue
		}
		charge(costPerMsgC)

		// Interpret alignment results; they acknowledge the oldest
		// outstanding batch.
		if len(rep.results) > 0 && len(owed[msg.Src]) > 0 {
			owed[msg.Src] = owed[msg.Src][1:]
		}
		for _, ar := range rep.results {
			charge(costUF)
			if ar.accepted {
				st.Accepted++
				mx.pairsAccepted.Inc()
				fa, fb := int(ar.fa), int(ar.fb)
				if cfg.MaxClusterSize > 0 && uf.Size(fa)+uf.Size(fb) > cfg.MaxClusterSize {
					continue // bounded-cluster heuristic (Section 10)
				}
				if uf.Union(fa, fb) {
					st.Merges++
					mx.merges.Inc()
					c.TraceEvent(obs.EvClusterMerge, int64(fa), int64(fb), 0)
				}
			}
		}
		// Scan new pairs; keep only those needing alignment.
		n := int32(store.N())
		skippedHere := int64(0)
		for _, p := range rep.pairs {
			st.Generated++
			charge(costPair + costUF)
			if uf.Same(int(p.ASid%n), int(p.BSid%n)) {
				st.Skipped++
				skippedHere++
				continue
			}
			pending.push(p)
		}
		if len(rep.pairs) > 0 {
			c.TraceEvent(obs.EvPairGenerated, int64(len(rep.pairs)), int64(msg.Src), 0)
			mx.pairsGenerated.Add(int64(len(rep.pairs)))
		}
		if skippedHere > 0 {
			c.TraceEvent(obs.EvPairDiscarded, skippedHere, int64(msg.Src), 0)
			mx.pairsSkipped.Add(skippedHere)
		}
		mx.reports.Inc()
		mx.pendingDepth.Set(int64(pending.Len()))
		mx.pendingPeak.SetMax(int64(pending.Len()))
		if rep.passive {
			passive[msg.Src] = true
		}
		maybeCheckpoint()

		if ft && c.RankDead(msg.Src) {
			// The reporter died after sending: replying would leak a
			// lease on a corpse.
			reap(msg.Src)
			continue
		}

		// Reply to the sender: work if available; otherwise keep an
		// active worker generating or flush outstanding results with an
		// empty reply; park only a passive worker that owes nothing.
		batch := takeBatch()
		if len(batch) > 0 || !passive[msg.Src] || len(owed[msg.Src]) > 0 || (ft && len(orphans) > 0) {
			sendWork(msg.Src, batch)
		} else {
			parked = append(parked, msg.Src)
		}
	}

	for _, wkr := range parked {
		c.Send(wkr, tagDone, nil)
	}
	return uf, st, busy, nil
}

// runWorker is the Fig. 8 algorithm: generate pairs on request, align
// allocated batches while waiting for the master, and generate ahead
// into the bounded buffer when otherwise idle. Under a fault plan it
// can adopt dead ranks' GST portions (rebuilding them locally) and
// gives up on a silent master instead of blocking forever.
func runWorker(c *par.Comm, store seq.Seqs, local *pgst.Local, cfg Config, pcfg ParallelConfig, mx clusterMetrics) {
	ft := pcfg.FT
	pgCfg := pairgen.Config{
		Psi:                  cfg.Psi,
		NumFragments:         store.N(),
		DuplicateElimination: cfg.DuplicateElimination,
	}
	// rangeStream streams the pairs of one owner rank's GST portion in
	// spilling mode: segments are built, generated and dropped inside
	// the sweep, so no full forest is ever resident.
	rangeStream := func(r int) *pairgen.Stream {
		return pairgen.NewSweep(func(yield func(*suffixtree.Tree) bool) {
			local.SweepRank(store, r, yield)
		}, pgCfg, 256)
	}
	var streams []*pairgen.Stream
	if local.Spill != nil {
		for _, r := range local.Spill.Ranks {
			streams = append(streams, rangeStream(r))
		}
	} else {
		streams = []*pairgen.Stream{pairgen.NewStream(local.Tree, pgCfg, 256)}
	}
	cur := 0
	defer func() {
		for _, s := range streams {
			s.Close()
		}
	}()

	var buffered []pairgen.Pair
	exhausted := false
	n := int32(store.N())

	// adoptPortions takes over the GST portions of dead ranks and
	// queues them for generation — rebuilt whole in memory, or swept
	// under the byte budget in spilling mode.
	adoptPortions := func(ranks []int) {
		c.TraceEvent(obs.EvPhaseEnter, obs.PhaseRecover, 0, 0)
		for _, d := range ranks {
			if local.Spill != nil {
				streams = append(streams, rangeStream(d))
				continue
			}
			t := pgst.RebuildPortion(c, store, local, d)
			streams = append(streams, pairgen.NewStream(t, pgCfg, 256))
		}
		exhausted = cur >= len(streams)
		c.TraceEvent(obs.EvPhaseExit, obs.PhaseRecover, 0, 0)
	}

	// takeN draws from the buffer first, then the streams in order. The
	// stream pulls are bracketed as a pairgen phase span so the trace
	// separates generation time from alignment and protocol waits.
	takeN := func(r int) []pairgen.Pair {
		var out []pairgen.Pair
		for len(out) < r && len(buffered) > 0 {
			out = append(out, buffered[0])
			buffered = buffered[1:]
		}
		if len(out) >= r || exhausted {
			return out
		}
		c.TraceEvent(obs.EvPhaseEnter, obs.PhasePairGen, 0, 0)
		for len(out) < r && !exhausted {
			before := len(out)
			out = streams[cur].Take(out, r)
			c.ChargeCompute(float64(len(out)-before) * costPair)
			if len(out) < r {
				cur++
				exhausted = cur >= len(streams)
			}
		}
		c.TraceEvent(obs.EvPhaseExit, obs.PhasePairGen, 0, 0)
		return out
	}

	alignBatch := func(batch []pairgen.Pair) []alignResult {
		c.TraceEvent(obs.EvPhaseEnter, obs.PhaseAlign, 0, 0)
		batchStart := time.Now()
		results := make([]alignResult, 0, len(batch))
		var cells int64
		for _, p := range batch {
			accepted, cost := AlignPair(store, p, cfg)
			cells += cost
			mx.alignLen.Observe(float64(p.MatchLen))
			results = append(results, alignResult{fa: p.ASid % n, fb: p.BSid % n, accepted: accepted})
		}
		c.ChargeCompute(float64(cells) * costCell)
		mx.batchLatency.Observe(time.Since(batchStart).Seconds())
		c.TraceEvent(obs.EvPhaseExit, obs.PhaseAlign, 0, 0)
		c.TraceEvent(obs.EvPairAligned, int64(len(batch)), 0, 0)
		return results
	}

	// sendFail reports a protocol error to the master (eagerly — the
	// worker is about to exit and must not wedge on a rendezvous) so
	// the master aborts or recovers instead of waiting out a lease.
	sendFail := func(err error) {
		c.Send(0, tagReport, encodeReport(report{fail: err.Error()}))
	}

	r := pcfg.BatchSize // initial request size before the master says otherwise
	var curBatch []pairgen.Pair
	var results []alignResult
	for {
		// Report: new pairs as requested plus results of the last batch.
		np := takeN(r)
		rep := encodeReport(report{
			pairs:   np,
			results: results,
			passive: exhausted && len(buffered) == 0,
		})
		if pcfg.UseSsend {
			c.Ssend(0, tagReport, rep)
		} else {
			c.Send(0, tagReport, rep)
		}
		results = nil

		// Overlap the wait: align the batch allocated last iteration.
		if len(curBatch) > 0 {
			results = alignBatch(curBatch)
			curBatch = nil
		}
		// Still no reply? Generate ahead into the bounded buffer.
		var msg par.Message
		got := false
		if !exhausted && len(buffered) < pcfg.NewPairsBuf {
			c.TraceEvent(obs.EvPhaseEnter, obs.PhasePairGen, 0, 0)
			for !exhausted && len(buffered) < pcfg.NewPairsBuf {
				if m, ok := c.Probe(0, par.AnyTag); ok {
					msg, got = m, true
					break
				}
				p, ok := streams[cur].Next()
				if !ok {
					cur++
					if exhausted = cur >= len(streams); exhausted {
						break
					}
					continue
				}
				c.ChargeCompute(costPair)
				buffered = append(buffered, p)
			}
			c.TraceEvent(obs.EvPhaseExit, obs.PhasePairGen, 0, 0)
		}
		if !got {
			if ft {
				m, ok := c.RecvTimeout(0, par.AnyTag, 4*pcfg.LeaseTimeout)
				if !ok {
					return // master dead or fence lost: self-fence
				}
				msg = m
			} else {
				msg = c.Recv(0, par.AnyTag)
			}
		}
		switch msg.Tag {
		case tagDone:
			return
		case tagAdopt:
			ad, err := decodeAdopt(msg.Data)
			if err != nil {
				sendFail(err)
				return
			}
			adoptPortions(ad.deadRanks)
			curBatch = nil
		default:
			wk, err := decodeWork(msg.Data)
			if err != nil {
				sendFail(err)
				return
			}
			if len(wk.adopt) > 0 {
				adoptPortions(wk.adopt)
			}
			r = wk.r
			curBatch = wk.batch
		}
	}
}
