package cluster

import (
	"time"

	"repro/internal/pairgen"
	"repro/internal/par"
	"repro/internal/pgst"
	"repro/internal/seq"
	"repro/internal/unionfind"
)

// ParallelConfig holds the machine and load-balancing parameters of
// the master–worker implementation (Section 7).
type ParallelConfig struct {
	// Ranks is the machine size p: one master and p−1 workers.
	Ranks int
	// BatchSize is b, the number of pairs per alignment-work batch.
	BatchSize int
	// MaxPending caps the master's Pending_Work_Buf; the request size
	// r regulates generation so this is rarely exceeded.
	MaxPending int
	// NewPairsBuf caps each worker's buffered ungenerated-pair store.
	NewPairsBuf int
	// BatchBytes is the fragment-fetch budget of GST construction.
	BatchBytes int
	// Staged selects the customized Alltoallv in GST construction.
	Staged bool
	// Machine overrides the communication cost model (zero: defaults).
	Machine par.Config
	// UseSsend makes workers use synchronous sends for reports, the
	// paper's protection against master-side buffer overflow; eager
	// sends are the (faster, riskier) alternative it compares against.
	UseSsend bool
	// ScaleBatchWithWorkers grows the dispatch granularity with the
	// machine so the frequency of messages arriving at the master does
	// not grow with p — the single-master remedy Section 7.2 proposes.
	// The effective batch size becomes BatchSize × max(1, workers/8).
	ScaleBatchWithWorkers bool
}

// DefaultParallelConfig returns a p-rank configuration with paper-like
// batch parameters.
func DefaultParallelConfig(p int) ParallelConfig {
	return ParallelConfig{
		Ranks:       p,
		BatchSize:   64,
		MaxPending:  4096,
		NewPairsBuf: 1024,
		BatchBytes:  1 << 20,
		UseSsend:    true,
	}
}

func (c ParallelConfig) withDefaults() ParallelConfig {
	d := DefaultParallelConfig(c.Ranks)
	if c.BatchSize == 0 {
		c.BatchSize = d.BatchSize
	}
	if c.MaxPending == 0 {
		c.MaxPending = d.MaxPending
	}
	if c.NewPairsBuf == 0 {
		c.NewPairsBuf = d.NewPairsBuf
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = d.BatchBytes
	}
	if c.Machine.Ranks == 0 {
		c.Machine = par.DefaultConfig(c.Ranks)
	}
	if c.ScaleBatchWithWorkers {
		if f := (c.Ranks - 1) / 8; f > 1 {
			c.BatchSize *= f
		}
	}
	return c
}

// PhaseStats separates GST construction from the clustering loop, the
// split the paper reports (Fig. 5 vs Fig. 9).
type PhaseStats struct {
	GST     par.Aggregate
	Cluster par.Aggregate
	// MasterAvailability is the fraction of the master's modeled
	// clustering time NOT spent processing messages (Section 7.2
	// reports 90 % → 70 % as p grows).
	MasterAvailability float64
	// MasterPeakBufBytes is the high-water mark of the master rank's
	// receive buffers over the whole run — the quantity MPI_Ssend
	// bounds in the paper's Section 7.2 discussion.
	MasterPeakBufBytes int
	// MasterMsgsRecv counts messages the master processed during the
	// clustering phase; its growth with p is the Section 7.2 concern
	// that ScaleBatchWithWorkers addresses.
	MasterMsgsRecv int
}

// Parallel clusters the store's fragments on a p-rank machine:
// parallel GST construction (buckets on workers only), then the
// iterative master–worker overlap detection of Figs. 7–8.
func Parallel(store *seq.Store, cfg Config, pcfg ParallelConfig) (*Result, PhaseStats) {
	cfg = cfg.withDefaults()
	pcfg = pcfg.withDefaults()
	if pcfg.Ranks < 2 {
		panic("cluster: parallel run needs at least 2 ranks (1 master + 1 worker)")
	}

	result := &Result{N: store.N()}
	gstSnaps := make([]par.Stats, pcfg.Ranks)
	masterWork := 0.0
	start := time.Now()

	stats := par.Run(pcfg.Machine, func(c *par.Comm) {
		// Phase 1: distributed GST over workers (rank 0 owns no buckets).
		local := pgst.Build(c, store, pgst.Config{
			W:          cfg.W,
			MinLen:     cfg.Psi,
			FirstOwner: 1,
			BatchBytes: pcfg.BatchBytes,
			Staged:     pcfg.Staged,
			Seed:       12345,
		})
		c.Barrier()
		gstSnaps[c.Rank()] = c.Snapshot()

		// Phase 2: master–worker clustering.
		if c.Rank() == 0 {
			uf, st, busy := runMaster(c, store, cfg, pcfg)
			result.UF = uf
			result.Stats = st
			masterWork = busy
		} else {
			runWorker(c, store, local, cfg, pcfg)
		}
	})

	result.Stats.WallSeconds = time.Since(start).Seconds()

	// Phase accounting: the snapshot taken at the barrier separates
	// GST construction from clustering.
	clusterStats := make([]par.Stats, len(stats))
	for i := range stats {
		clusterStats[i] = subtractStats(stats[i], gstSnaps[i])
	}
	ph := PhaseStats{
		GST:                par.Summarize(gstSnaps),
		Cluster:            par.Summarize(clusterStats),
		MasterPeakBufBytes: stats[0].PeakBufBytes,
		MasterMsgsRecv:     clusterStats[0].MsgsRecv,
	}
	if m := clusterStats[0].Modeled(); m > 0 && ph.Cluster.MaxModeled > 0 {
		ph.MasterAvailability = 1 - masterWork/ph.Cluster.MaxModeled
		if ph.MasterAvailability < 0 {
			ph.MasterAvailability = 0
		}
	}
	result.Stats.GSTSeconds = ph.GST.MaxModeled
	result.Stats.ClusterSeconds = ph.Cluster.MaxModeled
	return result, ph
}

func subtractStats(a, b par.Stats) par.Stats {
	a.Wall -= b.Wall
	a.Blocked -= b.Blocked
	a.CommModel -= b.CommModel
	a.CompModel -= b.CompModel
	a.MsgsSent -= b.MsgsSent
	a.MsgsRecv -= b.MsgsRecv
	a.BytesSent -= b.BytesSent
	a.BytesRecv -= b.BytesRecv
	return a
}

// runMaster is the Fig. 7 algorithm. It returns the final clustering,
// statistics, and its modeled busy seconds (for the availability
// metric).
func runMaster(c *par.Comm, store *seq.Store, cfg Config, pcfg ParallelConfig) (*unionfind.UF, Stats, float64) {
	uf := unionfind.New(store.N())
	var st Stats
	busy := 0.0
	charge := func(sec float64) {
		busy += sec
		c.ChargeCompute(sec)
	}

	var pending []pairgen.Pair
	parked := []int{}
	passive := make(map[int]bool)
	// owesResults[w] is true when the batch in the last reply to w was
	// non-empty: its results arrive only in w's report after next (the
	// worker aligns a batch after sending its next report), so w must
	// not be parked until an empty reply has flushed them out.
	owesResults := make(map[int]bool)
	inFlight := c.Size() - 1 // every worker owes an initial report

	// takeBatch extracts up to BatchSize non-stale pairs.
	takeBatch := func() []pairgen.Pair {
		var batch []pairgen.Pair
		n := int32(store.N())
		for len(batch) < pcfg.BatchSize && len(pending) > 0 {
			p := pending[0]
			pending = pending[1:]
			if uf.Same(int(p.ASid%n), int(p.BSid%n)) {
				st.Skipped++ // merged since it was enqueued
				charge(costUF)
				continue
			}
			batch = append(batch, p)
		}
		return batch
	}

	activeWorkers := func() int {
		a := c.Size() - 1 - len(passive)
		if a < 1 {
			a = 1
		}
		return a
	}

	// requestSize implements the paper's r formula: ask for enough
	// pairs that ≈ b survive selection, without overflowing the
	// pending buffer.
	requestSize := func(worker int) int {
		if passive[worker] {
			return 0
		}
		selectivity := 1.0
		if st.Generated > 0 {
			selectivity = float64(st.Generated-st.Skipped) / float64(st.Generated)
			if selectivity < 0.05 {
				selectivity = 0.05
			}
		}
		r := int(float64(pcfg.BatchSize) / selectivity)
		free := pcfg.MaxPending - len(pending)
		if free < 0 {
			free = 0
		}
		if cap := free / activeWorkers(); r > cap {
			r = cap
		}
		return r
	}

	sendWork := func(worker int, batch []pairgen.Pair) {
		st.Aligned += int64(len(batch))
		owesResults[worker] = len(batch) > 0
		c.Send(worker, tagWork, encodeWork(work{batch: batch, r: requestSize(worker)}))
		inFlight++
	}

	for {
		// Dispatch pending work to parked workers first (keeping
		// passive workers busy, Section 7).
		for len(parked) > 0 && len(pending) > 0 {
			batch := takeBatch()
			if len(batch) == 0 {
				break
			}
			wkr := parked[0]
			parked = parked[1:]
			sendWork(wkr, batch)
		}
		if inFlight == 0 {
			break
		}

		msg := c.Recv(par.AnySource, tagReport)
		inFlight--
		rep := decodeReport(msg.Data)
		charge(costPerMsgC)

		// Interpret alignment results.
		for _, ar := range rep.results {
			charge(costUF)
			if ar.accepted {
				st.Accepted++
				fa, fb := int(ar.fa), int(ar.fb)
				if cfg.MaxClusterSize > 0 && uf.Size(fa)+uf.Size(fb) > cfg.MaxClusterSize {
					continue // bounded-cluster heuristic (Section 10)
				}
				if uf.Union(fa, fb) {
					st.Merges++
				}
			}
		}
		// Scan new pairs; keep only those needing alignment.
		n := int32(store.N())
		for _, p := range rep.pairs {
			st.Generated++
			charge(costPair + costUF)
			if uf.Same(int(p.ASid%n), int(p.BSid%n)) {
				st.Skipped++
				continue
			}
			pending = append(pending, p)
		}
		if rep.passive {
			passive[msg.Src] = true
		}

		// Reply to the sender: work if available; otherwise keep an
		// active worker generating or flush outstanding results with an
		// empty reply; park only a passive worker that owes nothing.
		batch := takeBatch()
		if len(batch) > 0 || !passive[msg.Src] || owesResults[msg.Src] {
			sendWork(msg.Src, batch)
		} else {
			parked = append(parked, msg.Src)
		}
	}

	for _, wkr := range parked {
		c.Send(wkr, tagDone, nil)
	}
	return uf, st, busy
}

// runWorker is the Fig. 8 algorithm: generate pairs on request, align
// allocated batches while waiting for the master, and generate ahead
// into the bounded buffer when otherwise idle.
func runWorker(c *par.Comm, store *seq.Store, local *pgst.Local, cfg Config, pcfg ParallelConfig) {
	stream := pairgen.NewStream(local.Tree, pairgen.Config{
		Psi:                  cfg.Psi,
		NumFragments:         store.N(),
		DuplicateElimination: cfg.DuplicateElimination,
	}, 256)
	defer stream.Close()

	var buffered []pairgen.Pair
	exhausted := false
	n := int32(store.N())

	// takeN draws from the buffer first, then the stream.
	takeN := func(r int) []pairgen.Pair {
		var out []pairgen.Pair
		for len(out) < r && len(buffered) > 0 {
			out = append(out, buffered[0])
			buffered = buffered[1:]
		}
		if len(out) < r && !exhausted {
			before := len(out)
			out = stream.Take(out, r)
			if len(out) < r {
				exhausted = true
			}
			c.ChargeCompute(float64(len(out)-before) * costPair)
		}
		return out
	}

	alignBatch := func(batch []pairgen.Pair) []alignResult {
		results := make([]alignResult, 0, len(batch))
		var cells int64
		for _, p := range batch {
			accepted, cost := AlignPair(store, p, cfg)
			cells += cost
			results = append(results, alignResult{fa: p.ASid % n, fb: p.BSid % n, accepted: accepted})
		}
		c.ChargeCompute(float64(cells) * costCell)
		return results
	}

	r := pcfg.BatchSize // initial request size before the master says otherwise
	var curBatch []pairgen.Pair
	var results []alignResult
	for {
		// Report: new pairs as requested plus results of the last batch.
		np := takeN(r)
		rep := encodeReport(report{
			pairs:   np,
			results: results,
			passive: exhausted && len(buffered) == 0,
		})
		if pcfg.UseSsend {
			c.Ssend(0, tagReport, rep)
		} else {
			c.Send(0, tagReport, rep)
		}
		results = nil

		// Overlap the wait: align the batch allocated last iteration.
		if len(curBatch) > 0 {
			results = alignBatch(curBatch)
			curBatch = nil
		}
		// Still no reply? Generate ahead into the bounded buffer.
		var msg par.Message
		got := false
		for !exhausted && len(buffered) < pcfg.NewPairsBuf {
			if m, ok := c.Probe(0, par.AnyTag); ok {
				msg, got = m, true
				break
			}
			p, ok := stream.Next()
			if !ok {
				exhausted = true
				break
			}
			c.ChargeCompute(costPair)
			buffered = append(buffered, p)
		}
		if !got {
			msg = c.Recv(0, par.AnyTag)
		}
		if msg.Tag == tagDone {
			return
		}
		wk := decodeWork(msg.Data)
		r = wk.r
		curBatch = wk.batch
	}
}
