package cluster

import (
	"testing"

	"repro/internal/pairgen"
)

func TestReportRoundTrip(t *testing.T) {
	in := report{
		pairs: []pairgen.Pair{
			{ASid: 1, BSid: 9, APos: 10, BPos: 0, MatchLen: 25},
			{ASid: 3, BSid: 4, APos: 0, BPos: 700, MatchLen: 20},
		},
		results: []alignResult{
			{fa: 1, fb: 2, accepted: true},
			{fa: 5, fb: 0, accepted: false},
		},
		passive: true,
	}
	out := decodeReport(encodeReport(in))
	if out.passive != in.passive {
		t.Error("passive flag lost")
	}
	if len(out.pairs) != len(in.pairs) {
		t.Fatalf("%d pairs", len(out.pairs))
	}
	for i := range in.pairs {
		if out.pairs[i] != in.pairs[i] {
			t.Errorf("pair %d: %+v != %+v", i, out.pairs[i], in.pairs[i])
		}
	}
	if len(out.results) != len(in.results) {
		t.Fatalf("%d results", len(out.results))
	}
	for i := range in.results {
		if out.results[i] != in.results[i] {
			t.Errorf("result %d: %+v != %+v", i, out.results[i], in.results[i])
		}
	}
}

func TestReportRoundTripEmpty(t *testing.T) {
	out := decodeReport(encodeReport(report{}))
	if out.passive || len(out.pairs) != 0 || len(out.results) != 0 {
		t.Errorf("empty report corrupted: %+v", out)
	}
}

func TestWorkRoundTrip(t *testing.T) {
	in := work{
		batch: []pairgen.Pair{{ASid: 7, BSid: 2, APos: 3, BPos: 4, MatchLen: 33}},
		r:     128,
	}
	out := decodeWork(encodeWork(in))
	if out.r != in.r || len(out.batch) != 1 || out.batch[0] != in.batch[0] {
		t.Errorf("work roundtrip: %+v", out)
	}
}

func TestWorkRoundTripEmpty(t *testing.T) {
	out := decodeWork(encodeWork(work{r: 0}))
	if out.r != 0 || len(out.batch) != 0 {
		t.Errorf("empty work corrupted: %+v", out)
	}
}
