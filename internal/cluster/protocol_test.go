package cluster

import (
	"bytes"
	"testing"

	"repro/internal/pairgen"
	"repro/internal/unionfind"
)

func TestReportRoundTrip(t *testing.T) {
	in := report{
		pairs: []pairgen.Pair{
			{ASid: 1, BSid: 9, APos: 10, BPos: 0, MatchLen: 25},
			{ASid: 3, BSid: 4, APos: 0, BPos: 700, MatchLen: 20},
		},
		results: []alignResult{
			{fa: 1, fb: 2, accepted: true},
			{fa: 5, fb: 0, accepted: false},
		},
		passive: true,
	}
	out, err := decodeReport(encodeReport(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.passive != in.passive {
		t.Error("passive flag lost")
	}
	if len(out.pairs) != len(in.pairs) {
		t.Fatalf("%d pairs", len(out.pairs))
	}
	for i := range in.pairs {
		if out.pairs[i] != in.pairs[i] {
			t.Errorf("pair %d: %+v != %+v", i, out.pairs[i], in.pairs[i])
		}
	}
	if len(out.results) != len(in.results) {
		t.Fatalf("%d results", len(out.results))
	}
	for i := range in.results {
		if out.results[i] != in.results[i] {
			t.Errorf("result %d: %+v != %+v", i, out.results[i], in.results[i])
		}
	}
}

func TestReportRoundTripEmpty(t *testing.T) {
	out, err := decodeReport(encodeReport(report{}))
	if err != nil {
		t.Fatal(err)
	}
	if out.passive || len(out.pairs) != 0 || len(out.results) != 0 {
		t.Errorf("empty report corrupted: %+v", out)
	}
}

func TestWorkRoundTrip(t *testing.T) {
	in := work{
		batch: []pairgen.Pair{{ASid: 7, BSid: 2, APos: 3, BPos: 4, MatchLen: 33}},
		r:     128,
	}
	out, err := decodeWork(encodeWork(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.r != in.r || len(out.batch) != 1 || out.batch[0] != in.batch[0] {
		t.Errorf("work roundtrip: %+v", out)
	}
}

func TestWorkRoundTripEmpty(t *testing.T) {
	out, err := decodeWork(encodeWork(work{r: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if out.r != 0 || len(out.batch) != 0 {
		t.Errorf("empty work corrupted: %+v", out)
	}
}

func TestWorkRoundTripAdopt(t *testing.T) {
	in := work{
		batch: []pairgen.Pair{{ASid: 1, BSid: 2, MatchLen: 20}},
		r:     64,
		adopt: []int{3, 7},
	}
	out, err := decodeWork(encodeWork(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.adopt) != 2 || out.adopt[0] != 3 || out.adopt[1] != 7 {
		t.Errorf("adopt list corrupted: %+v", out.adopt)
	}
	// The adopt tail must cost nothing when absent: fault-free messages
	// stay byte-identical to the fault-unaware protocol.
	plain := work{batch: in.batch, r: in.r}
	withEmpty := work{batch: in.batch, r: in.r, adopt: []int{}}
	if !bytes.Equal(encodeWork(plain), encodeWork(withEmpty)) {
		t.Error("empty adopt list changes the encoding")
	}
}

func TestAdoptRoundTrip(t *testing.T) {
	in := adopt{deadRanks: []int{2, 5, 9}}
	out, err := decodeAdopt(encodeAdopt(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.deadRanks) != 3 || out.deadRanks[2] != 9 {
		t.Errorf("adopt roundtrip: %+v", out)
	}
}

// Truncated messages must produce errors, not panics or hangs: fault
// injection can cut a message at any byte.
func TestDecodeTruncated(t *testing.T) {
	rep := encodeReport(report{
		pairs:   []pairgen.Pair{{ASid: 1, BSid: 2, APos: 3, BPos: 4, MatchLen: 20}},
		results: []alignResult{{fa: 1, fb: 2, accepted: true}},
	})
	for i := 0; i < len(rep); i++ {
		if _, err := decodeReport(rep[:i]); err == nil {
			t.Errorf("report prefix of %d/%d bytes decoded without error", i, len(rep))
		}
	}
	wk := encodeWork(work{batch: []pairgen.Pair{{ASid: 1, BSid: 2, MatchLen: 20}}, r: 9})
	for i := 0; i < len(wk); i++ {
		if _, err := decodeWork(wk[:i]); err == nil {
			t.Errorf("work prefix of %d/%d bytes decoded without error", i, len(wk))
		}
	}
}

// A malformed length prefix must not cause a huge allocation.
func TestDecodeHugeCount(t *testing.T) {
	// passive=0 then a varint pair count of ~2^62 with no payload.
	b := []byte{0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f}
	if _, err := decodeReport(b); err == nil {
		t.Error("huge pair count decoded without error")
	}
	if _, err := decodeWork(append([]byte{5}, b[1:]...)); err == nil {
		t.Error("huge batch count decoded without error")
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	rep := append(encodeReport(report{}), 0x00)
	if _, err := decodeReport(rep); err == nil {
		t.Error("trailing bytes accepted in report")
	}
}

func FuzzDecodeReport(f *testing.F) {
	f.Add(encodeReport(report{}))
	f.Add(encodeReport(report{
		pairs:   []pairgen.Pair{{ASid: 1, BSid: 2, APos: 3, BPos: 4, MatchLen: 20}},
		results: []alignResult{{fa: 0, fb: 1, accepted: true}},
		passive: true,
	}))
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		rep, err := decodeReport(b) // must never panic
		if err == nil {
			// Anything that decodes must re-encode to the same bytes
			// (the format has a unique encoding).
			if !bytes.Equal(encodeReport(rep), b) {
				t.Errorf("decode/encode not idempotent for %x", b)
			}
		}
	})
}

func FuzzDecodeWork(f *testing.F) {
	f.Add(encodeWork(work{r: 64}))
	f.Add(encodeWork(work{batch: []pairgen.Pair{{ASid: 1, BSid: 2, MatchLen: 20}}, r: 1, adopt: []int{4}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		wk, err := decodeWork(b) // must never panic
		if err == nil && len(wk.adopt) != 0 {
			if !bytes.Equal(encodeWork(wk), b) {
				t.Errorf("decode/encode not idempotent for %x", b)
			}
		}
	})
}

func TestCheckpointRoundTrip(t *testing.T) {
	uf := unionfind.New(10)
	uf.Union(0, 3)
	uf.Union(3, 7)
	uf.Union(4, 5)
	st := Stats{Generated: 100, Aligned: 60, Accepted: 20, Skipped: 40,
		Merges: 3, WorkersLost: 1, Requeued: 12, GSTSeconds: 1.5}
	pend := []pairgen.Pair{{ASid: 1, BSid: 2, MatchLen: 25}}
	cp := snapshotCheckpoint(uf, st, pend)

	got, err := DecodeCheckpoint(cp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 10 || got.Stats != st || len(got.Pending) != 1 || got.Pending[0] != pend[0] {
		t.Errorf("checkpoint corrupted: %+v", got)
	}
	ruf := got.restore()
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if ruf.Same(i, j) != uf.Same(i, j) {
				t.Fatalf("restored partition differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := DecodeCheckpoint([]byte("not a checkpoint")); err == nil {
		t.Error("garbage accepted as checkpoint")
	}
	enc := snapshotCheckpoint(unionfind.New(4), Stats{}, nil).Encode()
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeCheckpoint(enc[:i]); err == nil {
			t.Errorf("checkpoint prefix %d/%d accepted", i, len(enc))
		}
	}
}
