// Package wire provides a compact binary encoding for the fixed
// message formats the parallel protocols exchange (suffix
// redistribution, promising-pair batches, alignment results). Values
// are varint-encoded. Readers never panic on malformed input: once
// fault injection can truncate or corrupt a message in flight, a bad
// byte stream is an expected runtime condition, so decoding errors
// are sticky — the first malformed field latches Err() and every
// subsequent accessor returns a zero value with Remaining() == 0.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer accumulates an encoded message.
type Buffer struct {
	b []byte
}

// NewBuffer returns a buffer with the given capacity hint.
func NewBuffer(capHint int) *Buffer {
	return &Buffer{b: make([]byte, 0, capHint)}
}

// Bytes returns the encoded message.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the current encoded size.
func (w *Buffer) Len() int { return len(w.b) }

// Reset clears the buffer for reuse.
func (w *Buffer) Reset() { w.b = w.b[:0] }

// PutUint appends an unsigned varint.
func (w *Buffer) PutUint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

// PutInt appends a signed (zigzag) varint.
func (w *Buffer) PutInt(v int) { w.b = binary.AppendVarint(w.b, int64(v)) }

// PutBool appends a boolean.
func (w *Buffer) PutBool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// PutBytes appends a length-prefixed byte slice.
func (w *Buffer) PutBytes(p []byte) {
	w.PutUint(uint64(len(p)))
	w.b = append(w.b, p...)
}

// PutString appends a length-prefixed string.
func (w *Buffer) PutString(s string) {
	w.PutUint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// PutInts appends a length-prefixed slice of signed varints.
func (w *Buffer) PutInts(vs []int) {
	w.PutUint(uint64(len(vs)))
	for _, v := range vs {
		w.PutInt(v)
	}
}

// Reader decodes a message produced by Buffer. Decoding errors are
// sticky: after the first malformed field, Err() is non-nil, every
// accessor returns the zero value, and Remaining() reports 0 so that
// "while Remaining() > 0" decode loops terminate.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps an encoded message.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// fail latches the first error and exhausts the reader so that
// length-driven decode loops cannot spin.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
	r.off = len(r.b)
}

// Remaining reports how many undecoded bytes are left (0 after any
// decoding error).
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Uint decodes an unsigned varint. Overlong (non-minimal) encodings
// are rejected: the format has exactly one encoding per message, so a
// successful decode re-encodes to the original bytes — the property
// the fuzz harnesses and corruption detection both lean on.
func (r *Reader) Uint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	if n > 1 && r.b[r.off+n-1] == 0 {
		r.fail("non-minimal uvarint")
		return 0
	}
	r.off += n
	return v
}

// Int decodes a signed varint (same canonical-form rule as Uint).
func (r *Reader) Int() int {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	if n > 1 && r.b[r.off+n-1] == 0 {
		r.fail("non-minimal varint")
		return 0
	}
	r.off += n
	return int(v)
}

// Int32 decodes a signed varint and rejects values outside the int32
// range: a silent int32 truncation would re-encode to different
// bytes, breaking the format's unique-encoding property (fuzz-found).
func (r *Reader) Int32() int32 {
	v := r.Int()
	if r.err == nil && (v < math.MinInt32 || v > math.MaxInt32) {
		r.fail("varint %d out of int32 range", v)
		return 0
	}
	return int32(v)
}

// Bool decodes a boolean. Only 0 and 1 are valid encodings.
func (r *Reader) Bool() bool {
	if r.off >= len(r.b) {
		r.fail("truncated bool")
		return false
	}
	v := r.b[r.off]
	if v > 1 {
		r.fail("invalid bool byte 0x%02x", v)
		return false
	}
	r.off++
	return v == 1
}

// Bytes decodes a length-prefixed byte slice; the result aliases the
// underlying message buffer. Returns nil after any decoding error.
func (r *Reader) Bytes() []byte {
	n := int(r.Uint())
	if r.err != nil {
		return nil
	}
	// Compare against the remaining length rather than computing
	// r.off+n, which overflows int when a corrupt length decodes to
	// ~2^63 and would sail past the bounds check.
	if n < 0 || n > len(r.b)-r.off {
		r.fail("truncated bytes (want %d, have %d)", n, len(r.b)-r.off)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// String decodes a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Ints decodes a length-prefixed slice of signed varints.
func (r *Reader) Ints() []int {
	n := int(r.Uint())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() { // every varint is ≥ 1 byte
		r.fail("truncated ints (want %d, have %d bytes)", n, r.Remaining())
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = r.Int()
	}
	if r.err != nil {
		return nil
	}
	return vs
}
