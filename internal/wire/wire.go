// Package wire provides a compact binary encoding for the fixed
// message formats the parallel protocols exchange (suffix
// redistribution, promising-pair batches, alignment results). Values
// are varint-encoded; readers panic on malformed input, which for an
// internal protocol indicates a programming error, not bad user data.
package wire

import "encoding/binary"

// Buffer accumulates an encoded message.
type Buffer struct {
	b []byte
}

// NewBuffer returns a buffer with the given capacity hint.
func NewBuffer(capHint int) *Buffer {
	return &Buffer{b: make([]byte, 0, capHint)}
}

// Bytes returns the encoded message.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the current encoded size.
func (w *Buffer) Len() int { return len(w.b) }

// Reset clears the buffer for reuse.
func (w *Buffer) Reset() { w.b = w.b[:0] }

// PutUint appends an unsigned varint.
func (w *Buffer) PutUint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

// PutInt appends a signed (zigzag) varint.
func (w *Buffer) PutInt(v int) { w.b = binary.AppendVarint(w.b, int64(v)) }

// PutBool appends a boolean.
func (w *Buffer) PutBool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// PutBytes appends a length-prefixed byte slice.
func (w *Buffer) PutBytes(p []byte) {
	w.PutUint(uint64(len(p)))
	w.b = append(w.b, p...)
}

// PutString appends a length-prefixed string.
func (w *Buffer) PutString(s string) {
	w.PutUint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// PutInts appends a length-prefixed slice of signed varints.
func (w *Buffer) PutInts(vs []int) {
	w.PutUint(uint64(len(vs)))
	for _, v := range vs {
		w.PutInt(v)
	}
}

// Reader decodes a message produced by Buffer.
type Reader struct {
	b   []byte
	off int
}

// NewReader wraps an encoded message.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Remaining reports how many undecoded bytes are left.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Uint decodes an unsigned varint.
func (r *Reader) Uint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		panic("wire: truncated uvarint")
	}
	r.off += n
	return v
}

// Int decodes a signed varint.
func (r *Reader) Int() int {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		panic("wire: truncated varint")
	}
	r.off += n
	return int(v)
}

// Bool decodes a boolean.
func (r *Reader) Bool() bool {
	if r.off >= len(r.b) {
		panic("wire: truncated bool")
	}
	v := r.b[r.off] != 0
	r.off++
	return v
}

// Bytes decodes a length-prefixed byte slice; the result aliases the
// underlying message buffer.
func (r *Reader) Bytes() []byte {
	n := int(r.Uint())
	if r.off+n > len(r.b) {
		panic("wire: truncated bytes")
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// String decodes a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Ints decodes a length-prefixed slice of signed varints.
func (r *Reader) Ints() []int {
	n := int(r.Uint())
	if n < 0 || n > r.Remaining() { // every varint is ≥ 1 byte
		panic("wire: truncated ints")
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = r.Int()
	}
	return vs
}
