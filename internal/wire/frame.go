package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The reliable-link envelope every framed payload travels in: a
// 4-byte little-endian payload length, a 4-byte little-endian CRC32C
// (Castagnoli) of the payload, then the payload itself. The in-process
// reliable link frames each message this way before injecting seeded
// corruption, and the nettrans socket backend writes the identical
// envelope onto real connections — one format, one verifier, whether
// the corruption is simulated or a genuinely flaky network.
const FrameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrFrameTooLarge is returned by ReadFrame when the length prefix
// exceeds the caller's limit — a corrupt or hostile header must not
// drive an allocation.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// EncodeFrame wraps payload in a length + CRC32C envelope.
func EncodeFrame(payload []byte) []byte {
	f := make([]byte, FrameHeader+len(payload))
	binary.LittleEndian.PutUint32(f[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(f[4:8], crc32.Checksum(payload, crcTable))
	copy(f[FrameHeader:], payload)
	return f
}

// DecodeFrame verifies a complete envelope and returns the payload
// (aliasing f). ok is false when the frame is truncated, missized, or
// fails its checksum.
func DecodeFrame(f []byte) (payload []byte, ok bool) {
	if len(f) < FrameHeader {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint32(f[0:4]))
	if n != len(f)-FrameHeader {
		return nil, false
	}
	payload = f[FrameHeader:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(f[4:8]) {
		return nil, false
	}
	return payload, true
}

// WriteFrame writes payload as one envelope to w.
func WriteFrame(w io.Writer, payload []byte) error {
	_, err := w.Write(EncodeFrame(payload))
	return err
}

// ReadFrame reads one envelope from r and returns the verified
// payload. maxLen bounds the accepted payload size; a header claiming
// more fails with ErrFrameTooLarge before any payload allocation. A
// checksum mismatch fails: on a stream transport a corrupt frame
// desynchronizes everything after it, so the connection must be torn
// down and the reliability layer above resent from the last ack.
func ReadFrame(r io.Reader, maxLen int) ([]byte, error) {
	var hdr [FrameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if n < 0 || (maxLen > 0 && n > maxLen) {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, uint32(n))
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, errors.New("wire: frame checksum mismatch")
	}
	return payload, nil
}
