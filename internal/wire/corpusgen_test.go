package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteFuzzCorpus regenerates the committed FuzzReader seed corpus
// (run explicitly with -run WriteFuzzCorpus; skipped otherwise).
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReader")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	w := NewBuffer(0)
	w.PutUint(7)
	w.PutBytes([]byte("abc"))
	w.PutInts([]int{1, -2, 3})
	w.PutBool(true)
	w.PutString("xyz")
	write("seed-valid-message", w.Bytes())

	w.Reset()
	for _, v := range []uint64{0, 127, 128, 16383, 16384, 1<<63 - 1, ^uint64(0)} {
		w.PutUint(v)
	}
	write("seed-varint-boundaries", w.Bytes())

	// Non-minimal varint: 0x80 0x00 decodes to 0 but is not canonical.
	write("seed-noncanonical", []byte{0x80, 0x00, 0x01})

	// 10 continuation bytes: uvarint overflow.
	write("seed-overflow", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	// Huge claimed length with a short payload.
	write("seed-truncated-bytes", []byte{0xff, 0xff, 0x03, 'a', 'b'})
}
