package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripMixed(t *testing.T) {
	w := NewBuffer(64)
	w.PutUint(12345)
	w.PutInt(-987)
	w.PutBool(true)
	w.PutBool(false)
	w.PutBytes([]byte("hello"))
	w.PutString("world")
	w.PutInts([]int{1, -2, 3, 0})

	r := NewReader(w.Bytes())
	if r.Uint() != 12345 {
		t.Error("uint")
	}
	if r.Int() != -987 {
		t.Error("int")
	}
	if !r.Bool() || r.Bool() {
		t.Error("bool")
	}
	if !bytes.Equal(r.Bytes(), []byte("hello")) {
		t.Error("bytes")
	}
	if r.String() != "world" {
		t.Error("string")
	}
	ints := r.Ints()
	want := []int{1, -2, 3, 0}
	for i := range want {
		if ints[i] != want[i] {
			t.Errorf("ints = %v", ints)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(u uint64, i int64, b bool, p []byte, s string) bool {
		w := NewBuffer(0)
		w.PutUint(u)
		w.PutInt(int(i))
		w.PutBool(b)
		w.PutBytes(p)
		w.PutString(s)
		r := NewReader(w.Bytes())
		return r.Uint() == u && r.Int() == int(i) && r.Bool() == b &&
			bytes.Equal(r.Bytes(), p) && r.String() == s && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		in := make([]int, rng.Intn(100))
		for i := range in {
			in[i] = rng.Int() - rng.Int()
		}
		w := NewBuffer(0)
		w.PutInts(in)
		out := NewReader(w.Bytes()).Ints()
		if len(out) != len(in) {
			t.Fatal("length mismatch")
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatal("value mismatch")
			}
		}
	}
}

func TestTruncatedPanics(t *testing.T) {
	w := NewBuffer(0)
	w.PutBytes([]byte("abcdef"))
	enc := w.Bytes()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on truncated input")
		}
	}()
	NewReader(enc[:2]).Bytes()
}

func TestReset(t *testing.T) {
	w := NewBuffer(8)
	w.PutUint(1)
	w.Reset()
	if w.Len() != 0 {
		t.Error("reset did not clear")
	}
	w.PutUint(2)
	if NewReader(w.Bytes()).Uint() != 2 {
		t.Error("reuse after reset failed")
	}
}
