package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripMixed(t *testing.T) {
	w := NewBuffer(64)
	w.PutUint(12345)
	w.PutInt(-987)
	w.PutBool(true)
	w.PutBool(false)
	w.PutBytes([]byte("hello"))
	w.PutString("world")
	w.PutInts([]int{1, -2, 3, 0})

	r := NewReader(w.Bytes())
	if r.Uint() != 12345 {
		t.Error("uint")
	}
	if r.Int() != -987 {
		t.Error("int")
	}
	if !r.Bool() || r.Bool() {
		t.Error("bool")
	}
	if !bytes.Equal(r.Bytes(), []byte("hello")) {
		t.Error("bytes")
	}
	if r.String() != "world" {
		t.Error("string")
	}
	ints := r.Ints()
	want := []int{1, -2, 3, 0}
	for i := range want {
		if ints[i] != want[i] {
			t.Errorf("ints = %v", ints)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(u uint64, i int64, b bool, p []byte, s string) bool {
		w := NewBuffer(0)
		w.PutUint(u)
		w.PutInt(int(i))
		w.PutBool(b)
		w.PutBytes(p)
		w.PutString(s)
		r := NewReader(w.Bytes())
		return r.Uint() == u && r.Int() == int(i) && r.Bool() == b &&
			bytes.Equal(r.Bytes(), p) && r.String() == s && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		in := make([]int, rng.Intn(100))
		for i := range in {
			in[i] = rng.Int() - rng.Int()
		}
		w := NewBuffer(0)
		w.PutInts(in)
		out := NewReader(w.Bytes()).Ints()
		if len(out) != len(in) {
			t.Fatal("length mismatch")
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatal("value mismatch")
			}
		}
	}
}

// TestTruncatedErrors: malformed input latches a sticky error, the
// accessors return zero values, and Remaining() reports 0 so decode
// loops terminate. No reader method may panic.
func TestTruncatedErrors(t *testing.T) {
	w := NewBuffer(0)
	w.PutBytes([]byte("abcdef"))
	enc := w.Bytes()

	r := NewReader(enc[:2])
	if p := r.Bytes(); p != nil {
		t.Errorf("truncated Bytes() = %q, want nil", p)
	}
	if r.Err() == nil {
		t.Fatal("expected error on truncated input")
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining after error = %d, want 0", r.Remaining())
	}
	// Sticky: further reads stay zero-valued and keep the first error.
	first := r.Err()
	if r.Uint() != 0 || r.Int() != 0 || r.Bool() || r.Bytes() != nil || r.Ints() != nil {
		t.Error("accessors after error must return zero values")
	}
	if r.Err() != first {
		t.Error("error was overwritten")
	}
}

// TestTruncatedTable drives each decoder over malformed prefixes of a
// valid message and requires an error with no panic.
func TestTruncatedTable(t *testing.T) {
	w := NewBuffer(0)
	w.PutUint(1 << 40) // multi-byte uvarint
	w.PutInt(-1 << 40) // multi-byte varint
	w.PutBool(true)
	w.PutBytes([]byte("payload"))
	w.PutInts([]int{5, 6, 7})
	enc := w.Bytes()

	decode := func(r *Reader) {
		r.Uint()
		r.Int()
		r.Bool()
		r.Bytes()
		r.Ints()
	}
	// The full message decodes cleanly.
	full := NewReader(enc)
	decode(full)
	if full.Err() != nil || full.Remaining() != 0 {
		t.Fatalf("full decode: err=%v remaining=%d", full.Err(), full.Remaining())
	}
	// Every proper prefix fails cleanly.
	for cut := 0; cut < len(enc); cut++ {
		r := NewReader(enc[:cut])
		decode(r)
		if r.Err() == nil {
			t.Errorf("cut=%d: expected error", cut)
		}
		if r.Remaining() != 0 {
			t.Errorf("cut=%d: remaining=%d after error", cut, r.Remaining())
		}
	}
}

// FuzzReader feeds arbitrary bytes through every decoder; the reader
// must never panic and must terminate.
func FuzzReader(f *testing.F) {
	w := NewBuffer(0)
	w.PutUint(7)
	w.PutBytes([]byte("abc"))
	w.PutInts([]int{1, 2, 3})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for r.Remaining() > 0 && r.Err() == nil {
			switch data[0] % 6 {
			case 0:
				r.Uint()
			case 1:
				r.Int()
			case 2:
				r.Bool()
			case 3:
				r.Bytes()
			case 4:
				_ = r.String()
			default:
				r.Ints()
			}
		}
	})
}

func TestReset(t *testing.T) {
	w := NewBuffer(8)
	w.PutUint(1)
	w.Reset()
	if w.Len() != 0 {
		t.Error("reset did not clear")
	}
	w.PutUint(2)
	if NewReader(w.Bytes()).Uint() != 2 {
		t.Error("reuse after reset failed")
	}
}

func TestInt32Range(t *testing.T) {
	for _, v := range []int{0, 1, -1, math.MaxInt32, math.MinInt32} {
		w := NewBuffer(8)
		w.PutInt(v)
		r := NewReader(w.Bytes())
		if got := r.Int32(); got != int32(v) || r.Err() != nil {
			t.Errorf("Int32 round-trip of %d: got %d, err %v", v, got, r.Err())
		}
	}
	for _, v := range []int{math.MaxInt32 + 1, math.MinInt32 - 1, math.MaxInt64} {
		w := NewBuffer(16)
		w.PutInt(v)
		r := NewReader(w.Bytes())
		if got := r.Int32(); got != 0 || r.Err() == nil {
			t.Errorf("Int32 of out-of-range %d: got %d, err %v (want error)", v, got, r.Err())
		}
	}
}
