package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// fieldKind enumerates the wire vocabulary a random message draws from.
type fieldKind int

const (
	fUint fieldKind = iota
	fInt
	fBool
	fBytes
	fString
	fInts
	numFieldKinds
)

type field struct {
	kind fieldKind
	u    uint64
	i    int
	b    bool
	p    []byte
	s    string
	is   []int
}

// randField draws one field with adversarial magnitudes: boundary
// values show up often so varint width transitions are exercised.
func randField(rng *rand.Rand) field {
	boundary := []uint64{0, 1, 127, 128, 16383, 16384, 1<<32 - 1, 1 << 62, ^uint64(0)}
	f := field{kind: fieldKind(rng.Intn(int(numFieldKinds)))}
	switch f.kind {
	case fUint:
		if rng.Intn(2) == 0 {
			f.u = boundary[rng.Intn(len(boundary))]
		} else {
			f.u = rng.Uint64()
		}
	case fInt:
		f.i = int(rng.Uint64())
	case fBool:
		f.b = rng.Intn(2) == 0
	case fBytes:
		f.p = make([]byte, rng.Intn(64))
		rng.Read(f.p)
	case fString:
		raw := make([]byte, rng.Intn(32))
		rng.Read(raw)
		f.s = string(raw)
	case fInts:
		f.is = make([]int, rng.Intn(16))
		for j := range f.is {
			f.is[j] = int(rng.Uint64())
		}
	}
	return f
}

// TestRoundTripRandomMessages encodes random field sequences and
// decodes them back: every value must survive, the reader must end
// clean (no error, nothing remaining), and the encoding must be
// canonical (re-encoding the decoded values is byte-identical).
func TestRoundTripRandomMessages(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		fields := make([]field, rng.Intn(24))
		for i := range fields {
			fields[i] = randField(rng)
		}

		w := NewBuffer(0)
		for _, f := range fields {
			switch f.kind {
			case fUint:
				w.PutUint(f.u)
			case fInt:
				w.PutInt(f.i)
			case fBool:
				w.PutBool(f.b)
			case fBytes:
				w.PutBytes(f.p)
			case fString:
				w.PutString(f.s)
			case fInts:
				w.PutInts(f.is)
			}
		}
		encoded := w.Bytes()

		r := NewReader(encoded)
		re := NewBuffer(len(encoded))
		for i, f := range fields {
			switch f.kind {
			case fUint:
				if got := r.Uint(); got != f.u {
					t.Fatalf("trial %d field %d: Uint = %d, want %d", trial, i, got, f.u)
				}
				re.PutUint(f.u)
			case fInt:
				if got := r.Int(); got != f.i {
					t.Fatalf("trial %d field %d: Int = %d, want %d", trial, i, got, f.i)
				}
				re.PutInt(f.i)
			case fBool:
				if got := r.Bool(); got != f.b {
					t.Fatalf("trial %d field %d: Bool = %v, want %v", trial, i, got, f.b)
				}
				re.PutBool(f.b)
			case fBytes:
				if got := r.Bytes(); !bytes.Equal(got, f.p) {
					t.Fatalf("trial %d field %d: Bytes mismatch", trial, i)
				}
				re.PutBytes(f.p)
			case fString:
				if got := r.String(); got != f.s {
					t.Fatalf("trial %d field %d: String mismatch", trial, i)
				}
				re.PutString(f.s)
			case fInts:
				got := r.Ints()
				if len(got) != len(f.is) {
					t.Fatalf("trial %d field %d: Ints len %d, want %d", trial, i, len(got), len(f.is))
				}
				for j := range got {
					if got[j] != f.is[j] {
						t.Fatalf("trial %d field %d: Ints[%d] = %d, want %d", trial, i, j, got[j], f.is[j])
					}
				}
				re.PutInts(f.is)
			}
			if r.Err() != nil {
				t.Fatalf("trial %d field %d: reader error mid-message: %v", trial, i, r.Err())
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("trial %d: %d bytes left after full decode", trial, r.Remaining())
		}
		if !bytes.Equal(re.Bytes(), encoded) {
			t.Fatalf("trial %d: re-encoding the decoded message is not byte-identical", trial)
		}
	}
}

// TestReaderErrorsSticky: once a read fails (truncated payload), every
// subsequent read must return the zero value and keep the first error.
func TestReaderErrorsSticky(t *testing.T) {
	w := NewBuffer(0)
	w.PutBytes([]byte("payload"))
	encoded := w.Bytes()
	r := NewReader(encoded[:len(encoded)-3]) // truncate inside the payload
	if got := r.Bytes(); got != nil {
		t.Fatalf("truncated Bytes returned %q", got)
	}
	first := r.Err()
	if first == nil {
		t.Fatal("truncated read did not set the reader error")
	}
	if got := r.Uint(); got != 0 {
		t.Fatalf("post-error Uint = %d, want 0", got)
	}
	if r.Err() != first {
		t.Fatalf("error not sticky: %v then %v", first, r.Err())
	}
}
