package pgst

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/pairgen"
	"repro/internal/par"
	"repro/internal/seq"
	"repro/internal/seq/diskstore"
	"repro/internal/suffixtree"
)

// sweepPairs generates the pair multiset of a serial sweep.
func sweepPairs(st seq.Seqs, cfg Config, psi int) (pairs []string, segments int) {
	SweepSerial(st, cfg, func(t *suffixtree.Tree) bool {
		segments++
		pairs = append(pairs, collectPairs(t, psi, st.N())...)
		return true
	})
	return pairs, segments
}

// TestSweepSerialMatchesSerial: the union of the spilling sweep's
// segment forests — and the pair multiset generated from them — must
// equal the monolithic serial tree's exactly, at budgets from "one
// segment per bucket bin" up to "everything in one segment".
func TestSweepSerialMatchesSerial(t *testing.T) {
	st := testStore(3, 6000, 3.0)
	const w, psi = 6, 8
	ref := serialTree(st, w, psi)
	want := TreeSignature(ref)
	wantPairs := collectPairs(ref, psi, st.N())
	sort.Strings(wantPairs)
	if len(wantPairs) == 0 {
		t.Fatal("test input generates no pairs; weak test")
	}

	for _, budget := range []int64{1, 64 << 10, 1 << 20, 1 << 30} {
		cfg := Config{W: w, MinLen: psi, SpillBytes: budget}
		got := Signature{Nodes: map[string]int{}}
		segments := 0
		SweepSerial(st, cfg, func(tr *suffixtree.Tree) bool {
			segments++
			s := TreeSignature(tr)
			for k, v := range s.Nodes {
				got.Nodes[k] += v
			}
			got.Suffixes = append(got.Suffixes, s.Suffixes...)
			return true
		})
		sort.Strings(got.Suffixes)
		if !got.Equal(want) {
			t.Fatalf("budget %d: sweep union signature differs from serial tree", budget)
		}
		gotPairs, _ := sweepPairs(st, cfg, psi)
		sort.Strings(gotPairs)
		if fmt.Sprint(gotPairs) != fmt.Sprint(wantPairs) {
			t.Fatalf("budget %d: sweep pair multiset differs (%d vs %d pairs)",
				budget, len(gotPairs), len(wantPairs))
		}
		if budget == 1 && segments < 8 {
			t.Fatalf("budget 1 produced only %d segments; spilling is not segmenting", segments)
		}
		if budget == 1<<30 && segments != 1 {
			t.Fatalf("huge budget produced %d segments, want 1", segments)
		}
	}
}

// TestSweepBudgetBounds: every segment's suffix count must respect the
// byte budget up to one histogram bin's excess (the planning granule).
func TestSweepBudgetBounds(t *testing.T) {
	st := testStore(4, 8000, 4.0)
	cfg := Config{W: 6, MinLen: 8, SpillBytes: 32 << 10}
	cfg = cfg.withDefaults()

	shift := spillBinShift(cfg.W)
	hist := make([]int64, 1<<spillBinBits(cfg.W))
	enumKeys(st, 0, st.NumSeqs(), cfg, nil, func(k seq.Kmer) { hist[k>>shift]++ })
	var maxBin int64
	for _, h := range hist {
		if h > maxBin {
			maxBin = h
		}
	}
	limit := cfg.SpillBytes/spillBytesPerSuffix + maxBin

	SweepSerial(st, cfg, func(tr *suffixtree.Tree) bool {
		var n int64
		for u := range tr.Nodes {
			if tr.IsLeaf(int32(u)) {
				n += int64(len(tr.LeafSuffixes(int32(u))))
			}
		}
		if n > limit {
			t.Fatalf("segment holds %d suffixes, budget allows %d", n, limit)
		}
		return true
	})
}

// TestSpillBuildMatchesSerial: the distributed spilling build — no
// redistribution, no resident forests, ranks sweeping their splitter
// ranges — must union to the serial tree and generate the serial pair
// multiset, across machine shapes and budgets.
func TestSpillBuildMatchesSerial(t *testing.T) {
	st := testStore(5, 6000, 3.0)
	const w, psi = 6, 8
	ref := serialTree(st, w, psi)
	want := TreeSignature(ref)
	wantPairs := collectPairs(ref, psi, st.N())
	sort.Strings(wantPairs)

	cases := []struct {
		p          int
		firstOwner int
		budget     int64
	}{
		{1, 0, 64 << 10},
		{2, 0, 1},
		{4, 0, 64 << 10},
		{5, 1, 32 << 10}, // master–worker layout: rank 0 owns nothing
	}
	for _, tc := range cases {
		name := fmt.Sprintf("p=%d first=%d budget=%d", tc.p, tc.firstOwner, tc.budget)
		locals := make([]*Local, tc.p)
		par.Run(par.DefaultConfig(tc.p), func(c *par.Comm) {
			locals[c.Rank()] = Build(c, st, Config{
				W: w, MinLen: psi, FirstOwner: tc.firstOwner,
				Seed: 7, SpillBytes: tc.budget,
			})
		})
		for r, l := range locals {
			if l.Tree != nil {
				t.Fatalf("%s: rank %d holds a resident tree in spilling mode", name, r)
			}
			if l.Spill == nil {
				t.Fatalf("%s: rank %d local is not marked spilling", name, r)
			}
			if r < tc.firstOwner && len(l.Spill.Ranks) != 0 {
				t.Fatalf("%s: non-owner rank %d covers ranges %v", name, r, l.Spill.Ranks)
			}
		}
		if !UnionSignatureOf(st, locals).Equal(want) {
			t.Fatalf("%s: spill union signature differs from serial tree", name)
		}
		var gotPairs []string
		for _, l := range locals {
			for _, r := range l.Spill.Ranks {
				l.SweepRank(st, r, func(tr *suffixtree.Tree) bool {
					gotPairs = append(gotPairs, collectPairs(tr, psi, st.N())...)
					return true
				})
			}
		}
		sort.Strings(gotPairs)
		if fmt.Sprint(gotPairs) != fmt.Sprint(wantPairs) {
			t.Fatalf("%s: pair multiset differs (%d vs %d)", name, len(gotPairs), len(wantPairs))
		}
	}
}

// TestSpillBuildSurvivesCrash: a rank killed during the spilling
// build's splitter agreement must leave the survivors covering, in
// union, exactly the serial GST — the dead rank's key range adopted as
// an extra lazy sweep range, never a resident rebuild.
func TestSpillBuildSurvivesCrash(t *testing.T) {
	st := testStore(1, 6000, 3.0)
	const w, psi = 6, 8
	want := TreeSignature(serialTree(st, w, psi))

	const p, crashed = 5, 2
	locals := make([]*Local, p)
	cfg := par.DefaultConfig(p)
	cfg.Faults = &par.FaultPlan{
		Seed:    5,
		Crashes: []par.Crash{{Rank: crashed, AfterSends: 1, Tag: par.AnyTag}},
	}
	_, exits := par.RunStatus(cfg, func(c *par.Comm) {
		locals[c.Rank()] = Build(c, st, Config{
			W: w, MinLen: psi, Seed: 7, FT: true, SpillBytes: 32 << 10,
		})
	})
	if !exits[crashed].FaultKilled {
		t.Fatalf("rank %d was not fault-killed: %+v", crashed, exits[crashed])
	}
	covered := map[int]int{}
	for r, l := range locals {
		if r == crashed {
			if l != nil {
				t.Fatalf("dead rank %d produced a local", crashed)
			}
			continue
		}
		if !exits[r].OK {
			t.Fatalf("survivor %d died: %+v", r, exits[r])
		}
		if l.Spill == nil {
			t.Fatalf("survivor %d not in spilling mode", r)
		}
		for _, cr := range l.Spill.Ranks {
			covered[cr]++
		}
	}
	for r := 0; r < p; r++ {
		if covered[r] != 1 {
			t.Fatalf("owner rank %d covered %d times, want exactly once (coverage %v)",
				r, covered[r], covered)
		}
	}
	if !UnionSignatureOf(st, locals).Equal(want) {
		t.Fatal("survivor union signature differs from serial tree after crash")
	}
}

// TestSweepOnDiskStore: the sweep over a disk-backed store must equal
// the sweep over the in-memory store — the full out-of-core stack
// (paged bases + spilling construction) against the all-RAM reference.
func TestSweepOnDiskStore(t *testing.T) {
	mem := testStore(6, 5000, 3.0)
	frags := mem.Fragments()
	disk, err := diskstore.Create(t.TempDir(), frags, diskstore.Options{CacheBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	cfg := Config{W: 6, MinLen: 8, SpillBytes: 64 << 10}
	wantPairs, wantSegs := sweepPairs(mem, cfg, 8)
	gotPairs, gotSegs := sweepPairs(disk, cfg, 8)
	if wantSegs != gotSegs {
		t.Fatalf("segment count differs: disk %d, mem %d", gotSegs, wantSegs)
	}
	sort.Strings(wantPairs)
	sort.Strings(gotPairs)
	if fmt.Sprint(gotPairs) != fmt.Sprint(wantPairs) {
		t.Fatalf("disk-backed sweep pairs differ (%d vs %d)", len(gotPairs), len(wantPairs))
	}
}

// TestSweepStreamStopsEarly: NewSweep must stop building segments once
// the consumer closes the stream (a worker told to shut down must not
// keep paying for construction).
func TestSweepStreamStopsEarly(t *testing.T) {
	st := testStore(7, 6000, 3.0)
	cfg := Config{W: 6, MinLen: 8, SpillBytes: 1}
	cfg = cfg.withDefaults()
	built := 0
	s := pairgen.NewSweep(func(yield func(*suffixtree.Tree) bool) {
		SweepSerial(st, cfg, func(tr *suffixtree.Tree) bool {
			built++
			return yield(tr)
		})
	}, pairgen.Config{Psi: 8, NumFragments: st.N()}, 4)
	if _, ok := s.Next(); !ok {
		t.Fatal("stream produced nothing")
	}
	s.Close()
	_, total := sweepPairs(st, cfg, 8)
	if built >= total {
		t.Fatalf("early close still built all %d segments", total)
	}
}
