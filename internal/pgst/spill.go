// Spilling construction: the out-of-core GST mode (Config.SpillBytes).
//
// Bucket-by-w-prefix already makes the tree a forest of independent
// subtrees, so nothing ever requires the whole tree in memory: pair
// generation is a per-bucket computation (Section 5). The spilling
// build therefore never materializes a rank's full forest. Instead it
// partitions the key space into contiguous *segments* sized so one
// segment's suffixes fit the byte budget (estimated from a streaming
// key histogram), and the consumer sweeps: build one segment's forest
// from a filtered re-enumeration of the store, generate its pairs,
// drop it, move on. Combined with the disk-backed sequence store the
// resident set is O(budget + cache), independent of input size.
//
// The filtered re-enumeration is the same mechanism the fault-recovery
// path (rebuildInto) already uses and proves equivalent: the union of
// segment forests carries exactly the suffixes of a monolithic build,
// and each bucket lands whole in exactly one segment, so the forest
// union — and therefore the generated pair set — is identical.
package pgst

import (
	"sort"

	"repro/internal/par"
	"repro/internal/seq"
	"repro/internal/suffixtree"
)

const (
	// spillBytesPerSuffix estimates the resident bytes one suffix costs
	// while its segment is being built and generated: the keyed record
	// (16), its sorted-slice and bucket slots (~24), amortized tree
	// nodes (~24), and pair-generation lset cells (~32).
	spillBytesPerSuffix = 96
	// spillMaxBinBits caps the segment-planning histogram at 16K bins
	// (128 KiB of counters) regardless of W.
	spillMaxBinBits = 14
)

// SpillState marks a Local built in spilling mode: no resident Tree;
// instead the covered owner ranks' key ranges are swept on demand.
type SpillState struct {
	// Ranks are the owner ranks whose key ranges this rank sweeps: its
	// own, plus any dead ranks the FT epilogue assigned to it.
	Ranks []int
}

// spillBinBits returns the histogram resolution for prefix length w.
func spillBinBits(w int) uint {
	bits := 2 * w
	if bits > spillMaxBinBits {
		bits = spillMaxBinBits
	}
	return uint(bits)
}

// spillBinShift maps a key to its histogram bin: bins are contiguous,
// order-preserving ranges of the packed key space.
func spillBinShift(w int) uint { return uint(2*w) - spillBinBits(w) }

// enumKeys streams every suffix key of sequences [sidLo, sidHi) that
// passes keep (nil: all), in deterministic (sid, pos) order, without
// retaining anything. Returns the characters examined.
func enumKeys(st seq.Seqs, sidLo, sidHi int, cfg Config, keep func(seq.Kmer) bool, fn func(seq.Kmer)) int64 {
	var chars int64
	for sid := sidLo; sid < sidHi; sid++ {
		s := st.Seq(sid)
		chars += int64(len(s))
		sufs := suffixtree.EnumerateSuffixes(
			func(int32) []byte { return s }, []int32{int32(sid)}, cfg.MinLen)
		for _, sf := range sufs {
			if key, ok := suffixtree.BucketKey(s, int(sf.Pos), cfg.W); ok {
				if keep == nil || keep(key) {
					fn(key)
				}
			}
		}
	}
	return chars
}

// spillSegment is a contiguous histogram-bin range [loBin, hiBin).
type spillSegment struct{ loBin, hiBin int }

// contains reports whether key falls in the segment.
func (g spillSegment) contains(key seq.Kmer, shift uint) bool {
	bin := int(key >> shift)
	return bin >= g.loBin && bin < g.hiBin
}

// planSpillSegments greedily packs histogram bins into segments whose
// estimated bytes stay under budget. A single bin denser than the
// whole budget still forms its own segment — the bin is the planning
// granule, so the budget is honored up to one bin's excess (documented
// in DESIGN.md §15; raise W or the budget if a single 2w-prefix
// dominates the input).
func planSpillSegments(hist []int64, budget int64) []spillSegment {
	maxSuf := budget / spillBytesPerSuffix
	if maxSuf < 1 {
		maxSuf = 1
	}
	var segs []spillSegment
	lo := 0
	var acc int64
	for b := 0; b < len(hist); b++ {
		if acc > 0 && acc+hist[b] > maxSuf {
			segs = append(segs, spillSegment{lo, b})
			lo, acc = b, 0
		}
		acc += hist[b]
	}
	if acc > 0 {
		segs = append(segs, spillSegment{lo, len(hist)})
	}
	return segs
}

// buildFiltered re-enumerates every suffix of the store, keeps those
// whose key passes keep, and builds their buckets into ib — the shared
// core of fault recovery (rebuildInto) and segment sweeping. Returns
// bucket/suffix counts and the modeled compute cost.
func buildFiltered(ib *suffixtree.IncrementalBuilder, st seq.Seqs, cfg Config, keep func(seq.Kmer) bool) (nbuckets, nsuf int, cost float64) {
	var mine []keyedSuffix
	var chars int64
	for sid := 0; sid < st.NumSeqs(); sid++ {
		s := st.Seq(sid)
		chars += int64(len(s))
		sufs := suffixtree.EnumerateSuffixes(
			func(int32) []byte { return s }, []int32{int32(sid)}, cfg.MinLen)
		for _, sf := range sufs {
			if key, ok := suffixtree.BucketKey(s, int(sf.Pos), cfg.W); ok && keep(key) {
				mine = append(mine, keyedSuffix{key, sf})
			}
		}
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].key < mine[j].key })
	cost = float64(chars)*costChar +
		float64(len(mine))*(costSuf+log2f(len(mine))*costSort)

	access := memoAccess(st, 256)
	before := ib.Work()
	for lo := 0; lo < len(mine); {
		hi := lo
		for hi < len(mine) && mine[hi].key == mine[lo].key {
			hi++
		}
		b := make([]suffixtree.Suffix, 0, hi-lo)
		for i := lo; i < hi; i++ {
			b = append(b, mine[i].suf)
		}
		ib.AddBucket(access, b)
		nbuckets++
		lo = hi
	}
	cost += float64(ib.Work()-before) * costChar
	return nbuckets, len(mine), cost
}

// memoAccess wraps st.Seq in a bounded memo so tree construction —
// which touches the same few sequences repeatedly within a bucket —
// does not re-decode a disk-backed sequence on every access. The memo
// resets past maxEntries, keeping resident decoded bases bounded.
func memoAccess(st seq.Seqs, maxEntries int) suffixtree.Access {
	m := make(map[int32][]byte, maxEntries)
	return func(sid int32) []byte {
		if b, ok := m[sid]; ok {
			return b
		}
		if len(m) >= maxEntries {
			m = make(map[int32][]byte, maxEntries)
		}
		b := st.Seq(int(sid))
		m[sid] = b
		return b
	}
}

// sweepFiltered plans segments for the keys passing own and yields one
// forest per segment, building and dropping them in turn. Returns
// false if yield stopped the sweep.
func sweepFiltered(st seq.Seqs, cfg Config, own func(seq.Kmer) bool, yield func(*suffixtree.Tree) bool) bool {
	shift := spillBinShift(cfg.W)
	hist := make([]int64, 1<<spillBinBits(cfg.W))
	enumKeys(st, 0, st.NumSeqs(), cfg, own, func(k seq.Kmer) { hist[k>>shift]++ })
	for _, sg := range planSpillSegments(hist, cfg.SpillBytes) {
		keep := func(k seq.Kmer) bool {
			return sg.contains(k, shift) && (own == nil || own(k))
		}
		ib := suffixtree.NewIncrementalBuilder(cfg.W)
		buildFiltered(ib, st, cfg, keep)
		if !yield(ib.Tree()) {
			return false
		}
	}
	return true
}

// SweepSerial builds the store's full GST in bounded segments, calling
// yield with each segment's forest in ascending key order; the forest
// is dropped after yield returns. The union of yielded forests is
// identical to BuildSerialTree's content — consume-and-drop is what
// makes serial clustering run in O(SpillBytes) tree memory.
func SweepSerial(st seq.Seqs, cfg Config, yield func(*suffixtree.Tree) bool) {
	cfg = cfg.withDefaults()
	sweepFiltered(st, cfg, nil, yield)
}

// SweepRank builds, in bounded segments, the forest of the buckets the
// splitter partition assigned to owner rank r — this rank's own range,
// or a dead rank's range during adoption. Returns false if yield
// stopped the sweep.
func (l *Local) SweepRank(st seq.Seqs, r int, yield func(*suffixtree.Tree) bool) bool {
	own := func(k seq.Kmer) bool {
		return destOf(l.Splitters, k, l.Cfg.FirstOwner) == r
	}
	return sweepFiltered(st, l.Cfg, own, yield)
}

// sampleOwnerKeys draws perRank evenly spaced suffix keys from owner
// rank me's fragment range in two streaming passes (count, then
// collect) — the spilling substitute for sampling the materialized
// enumeration. Returns sorted keys and the characters examined.
func sampleOwnerKeys(st seq.Seqs, bounds []int, me int, cfg Config, perRank int) ([]seq.Kmer, int64) {
	n := st.N()
	sidRanges := [2][2]int{{bounds[me], bounds[me+1]}, {bounds[me] + n, bounds[me+1] + n}}
	var cnt int64
	var chars int64
	for _, r := range sidRanges {
		chars += enumKeys(st, r[0], r[1], cfg, nil, func(seq.Kmer) { cnt++ })
	}
	if cnt == 0 {
		return nil, chars
	}
	if int64(perRank) > cnt {
		perRank = int(cnt)
	}
	keys := make([]seq.Kmer, 0, perRank)
	var idx, next int64
	step := cnt / int64(perRank)
	for _, r := range sidRanges {
		chars += enumKeys(st, r[0], r[1], cfg, nil, func(k seq.Kmer) {
			if idx == next && len(keys) < perRank {
				keys = append(keys, k)
				next += step
			}
			idx++
		})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, chars
}

// buildSpill is Build's spilling mode: agree on splitters from
// streamed samples, then return immediately — no enumeration is
// retained, no suffixes are exchanged, no tree is resident. Each rank
// sweeps its own key range (plus any adopted dead ranks') lazily via
// SweepRank; every rank reads the shared store directly, so the
// redistribution and fragment-fetch collectives of the in-memory path
// have nothing to move.
func buildSpill(c *par.Comm, st seq.Seqs, cfg Config, bounds []int, owners int) *Local {
	var samples []keyedSuffix
	if me := c.Rank() - cfg.FirstOwner; me >= 0 {
		keys, chars := sampleOwnerKeys(st, bounds, me, cfg, 64)
		c.ChargeCompute(float64(chars) * costChar)
		for _, k := range keys {
			samples = append(samples, keyedSuffix{key: k})
		}
	}
	splitters := chooseSplitters(c, samples, owners, cfg)

	l := &Local{
		Splitters: splitters,
		Cfg:       cfg,
		Spill:     &SpillState{},
	}
	if c.Rank() >= cfg.FirstOwner {
		l.Spill.Ranks = []int{c.Rank()}
	}
	// FT epilogue: adopt dead owners' ranges by recording them for the
	// sweep — recovery is a deferred re-enumeration, exactly like
	// rebuildInto, but it stays within the byte budget.
	if cfg.FT {
		for _, dead := range recoverAssignments(c, cfg.FirstOwner, cfg.FTPoll) {
			if dead != c.Rank() {
				l.Spill.Ranks = append(l.Spill.Ranks, dead)
			}
		}
	}
	return l
}
