package pgst

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pairgen"
	"repro/internal/par"
	"repro/internal/seq"
	"repro/internal/simulate"
	"repro/internal/suffixtree"
)

func testStore(seed int64, genomeLen int, coverage float64) *seq.Store {
	rng := rand.New(rand.NewSource(seed))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{
		Length:  genomeLen,
		Repeats: []simulate.RepeatFamily{{Length: 300, Copies: 8, Divergence: 0.02}},
	})
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 200
	rc.LenSD = 30
	rc.VectorProb = 0
	reads := simulate.SampleWGS(rng, g, coverage, rc, "r")
	return seq.NewStore(reads)
}

func serialTree(st *seq.Store, w, minLen int) *suffixtree.Tree {
	acc := func(sid int32) []byte { return st.Seq(int(sid)) }
	sids := make([]int32, st.NumSeqs())
	for i := range sids {
		sids[i] = int32(i)
	}
	return suffixtree.Build(acc, suffixtree.EnumerateSuffixes(acc, sids, minLen), w)
}

// treeSignature wraps the exported TreeSignature in the (nodes, sufs)
// shape the older tests were written against.
func treeSignature(trees ...*suffixtree.Tree) (nodes map[string]int, sufs []string) {
	sig := TreeSignature(trees...)
	return sig.Nodes, sig.Suffixes
}

func collectPairs(tree *suffixtree.Tree, psi, n int) []string {
	var out []string
	pairgen.Generate(tree, pairgen.Config{Psi: psi, NumFragments: n}, func(p pairgen.Pair) bool {
		out = append(out, fmt.Sprintf("%d/%d/%d/%d/%d", p.ASid, p.BSid, p.APos, p.BPos, p.MatchLen))
		return true
	})
	return out
}

// TestParallelMatchesSerial is the key equivalence test: for several
// rank counts, batch budgets, and both Alltoallv variants, the union
// of the per-rank subtrees must be exactly the serial GST, and pair
// generation over the distributed forest must emit exactly the serial
// pair multiset.
func TestParallelMatchesSerial(t *testing.T) {
	st := testStore(1, 6000, 3.0)
	const w, psi = 6, 8
	ref := serialTree(st, w, psi)
	wantNodes, wantSufs := treeSignature(ref)
	wantPairs := collectPairs(ref, psi, st.N())
	sort.Strings(wantPairs)
	if len(wantPairs) == 0 {
		t.Fatal("test input generates no pairs; weak test")
	}

	cases := []struct {
		p          int
		firstOwner int
		batch      int
		staged     bool
	}{
		{1, 0, 1 << 20, false},
		{2, 0, 1 << 20, false},
		{4, 0, 4096, false}, // small batches force many fetch rounds
		{4, 0, 1 << 20, true},
		{5, 1, 1 << 20, false}, // master-worker layout: rank 0 owns nothing
		{7, 1, 8192, true},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("p=%d first=%d batch=%d staged=%v", tc.p, tc.firstOwner, tc.batch, tc.staged)
		locals := make([]*Local, tc.p)
		par.Run(par.DefaultConfig(tc.p), func(c *par.Comm) {
			locals[c.Rank()] = Build(c, st, Config{
				W: w, MinLen: psi, FirstOwner: tc.firstOwner,
				BatchBytes: tc.batch, Staged: tc.staged, Seed: 7,
			})
		})
		var trees []*suffixtree.Tree
		var gotPairs []string
		rounds := 0
		for r, l := range locals {
			trees = append(trees, l.Tree)
			gotPairs = append(gotPairs, collectPairs(l.Tree, psi, st.N())...)
			if l.FetchRounds > rounds {
				rounds = l.FetchRounds
			}
			if r < tc.firstOwner && l.Buckets != 0 {
				t.Errorf("%s: rank %d below FirstOwner owns %d buckets", name, r, l.Buckets)
			}
		}
		gotNodes, gotSufs := treeSignature(trees...)
		if len(gotSufs) != len(wantSufs) {
			t.Fatalf("%s: %d leaf suffixes, want %d", name, len(gotSufs), len(wantSufs))
		}
		for i := range wantSufs {
			if gotSufs[i] != wantSufs[i] {
				t.Fatalf("%s: leaf suffix %d = %s, want %s", name, i, gotSufs[i], wantSufs[i])
			}
		}
		for k, v := range wantNodes {
			if gotNodes[k] != v {
				t.Fatalf("%s: node sig %q count %d, want %d", name, k, gotNodes[k], v)
			}
		}
		sort.Strings(gotPairs)
		if len(gotPairs) != len(wantPairs) {
			t.Fatalf("%s: %d pairs, want %d", name, len(gotPairs), len(wantPairs))
		}
		for i := range wantPairs {
			if gotPairs[i] != wantPairs[i] {
				t.Fatalf("%s: pair %d = %s, want %s", name, i, gotPairs[i], wantPairs[i])
			}
		}
		if tc.batch <= 8192 && rounds < 2 {
			t.Errorf("%s: expected multiple fetch rounds, got %d", name, rounds)
		}
	}
}

func TestLoadBalance(t *testing.T) {
	st := testStore(2, 12000, 4.0)
	const p = 6
	locals := make([]*Local, p)
	par.Run(par.DefaultConfig(p), func(c *par.Comm) {
		locals[c.Rank()] = Build(c, st, Config{W: 6, MinLen: 8, Seed: 3})
	})
	total, maxOwn := 0, 0
	for _, l := range locals {
		total += l.SuffixesOwned
		if l.SuffixesOwned > maxOwn {
			maxOwn = l.SuffixesOwned
		}
	}
	mean := total / p
	if maxOwn > 3*mean {
		t.Errorf("imbalanced: max %d vs mean %d suffixes", maxOwn, mean)
	}
}

func TestComputeAndCommCharged(t *testing.T) {
	st := testStore(3, 5000, 3.0)
	stats := par.Run(par.DefaultConfig(4), func(c *par.Comm) {
		Build(c, st, Config{W: 6, MinLen: 8, Seed: 1})
	})
	agg := par.Summarize(stats)
	if agg.MaxComp <= 0 {
		t.Error("no modeled compute charged")
	}
	if agg.MaxComm <= 0 {
		t.Error("no modeled communication charged")
	}
	if agg.TotalBytes == 0 {
		t.Error("no bytes exchanged")
	}
}

// TestStrongScaling checks the Fig. 5 shape: modeled construction time
// decreases as ranks are added.
func TestStrongScaling(t *testing.T) {
	st := testStore(4, 20000, 4.0)
	modeled := func(p int) float64 {
		stats := par.Run(par.DefaultConfig(p), func(c *par.Comm) {
			Build(c, st, Config{W: 6, MinLen: 8, Seed: 1})
		})
		return par.Summarize(stats).MaxModeled
	}
	t1, t4 := modeled(1), modeled(4)
	if t4 >= t1 {
		t.Errorf("no speedup: p=1 %.4fs, p=4 %.4fs", t1, t4)
	}
	if t1/t4 < 1.8 {
		t.Errorf("weak scaling efficiency: %.2fx on 4 ranks", t1/t4)
	}
}

func TestOwnerBounds(t *testing.T) {
	st := testStore(5, 4000, 2.0)
	bounds := ownerBounds(st, 4)
	if bounds[0] != 0 || bounds[4] != st.N() {
		t.Fatalf("bounds = %v", bounds)
	}
	for i := 0; i < 4; i++ {
		if bounds[i] > bounds[i+1] {
			t.Fatalf("bounds not monotone: %v", bounds)
		}
	}
	for fid := 0; fid < st.N(); fid += 17 {
		r := ownerOf(bounds, fid)
		if fid < bounds[r] || fid >= bounds[r+1] {
			t.Fatalf("ownerOf(%d) = %d with bounds %v", fid, r, bounds)
		}
	}
}

func TestDestOf(t *testing.T) {
	spl := []seq.Kmer{10, 20, 30}
	cases := map[seq.Kmer]int{5: 0, 10: 1, 15: 1, 20: 2, 25: 2, 30: 3, 99: 3}
	for key, want := range cases {
		if got := destOf(spl, key, 0); got != want {
			t.Errorf("destOf(%d) = %d, want %d", key, got, want)
		}
	}
	if destOf(nil, 5, 2) != 2 {
		t.Error("empty splitters must map to firstOwner")
	}
}

func TestMoreRanksThanFragments(t *testing.T) {
	// Three tiny fragments on an 8-rank machine: several ranks own no
	// fragments and possibly no buckets, yet construction must agree
	// with the serial tree.
	frags := []*seq.Fragment{
		{Name: "a", Bases: []byte("ACGTACGTACGTACGTACGT")},
		{Name: "b", Bases: []byte("CGTACGTACGTACGTACGTT")},
		{Name: "c", Bases: []byte("TTTTACGTACGTACGTAAAA")},
	}
	st := seq.NewStore(frags)
	const w, psi = 4, 6
	ref := serialTree(st, w, psi)
	wantPairs := collectPairs(ref, psi, st.N())
	sort.Strings(wantPairs)

	locals := make([]*Local, 8)
	par.Run(par.DefaultConfig(8), func(c *par.Comm) {
		locals[c.Rank()] = Build(c, st, Config{W: w, MinLen: psi, Seed: 5})
	})
	var got []string
	for _, l := range locals {
		got = append(got, collectPairs(l.Tree, psi, st.N())...)
	}
	sort.Strings(got)
	if len(got) != len(wantPairs) {
		t.Fatalf("%d pairs, want %d", len(got), len(wantPairs))
	}
	for i := range wantPairs {
		if got[i] != wantPairs[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestEmptyStore(t *testing.T) {
	st := seq.NewStore(nil)
	locals := make([]*Local, 3)
	par.Run(par.DefaultConfig(3), func(c *par.Comm) {
		locals[c.Rank()] = Build(c, st, Config{W: 4, MinLen: 6, Seed: 1})
	})
	for r, l := range locals {
		if l.Buckets != 0 || l.Tree.NumNodes() != 0 {
			t.Errorf("rank %d built %d buckets from nothing", r, l.Buckets)
		}
	}
}

// TestRebuildPortion: a survivor rebuilding a dead rank's GST portion
// from the shared store must recover exactly the pairs the dead
// rank's own tree would have generated.
func TestRebuildPortion(t *testing.T) {
	st := testStore(2, 6000, 3.0)
	const w, psi = 6, 8
	const p = 4

	locals := make([]*Local, p)
	par.Run(par.DefaultConfig(p), func(c *par.Comm) {
		locals[c.Rank()] = Build(c, st, Config{
			W: w, MinLen: psi, FirstOwner: 1, BatchBytes: 1 << 20, Seed: 7,
		})
	})

	for _, dead := range []int{1, 3} {
		want := collectPairs(locals[dead].Tree, psi, st.N())
		sort.Strings(want)
		if dead == 1 && len(want) == 0 {
			t.Fatal("dead rank generates no pairs; weak test")
		}

		var rebuilt *suffixtree.Tree
		par.Run(par.DefaultConfig(p), func(c *par.Comm) {
			if c.Rank() == 2 { // an arbitrary survivor adopts
				rebuilt = RebuildPortion(c, st, locals[2], dead)
			}
		})
		got := collectPairs(rebuilt, psi, st.N())
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("dead=%d: rebuilt tree yields %d pairs, original %d", dead, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dead=%d: pair %d differs: %s != %s", dead, i, got[i], want[i])
			}
		}
	}

	// Rank 0 owns no buckets under FirstOwner=1: rebuilding it must
	// yield an empty tree, not a crash.
	par.Run(par.DefaultConfig(p), func(c *par.Comm) {
		if c.Rank() == 1 {
			empty := RebuildPortion(c, st, locals[1], 0)
			if n := len(collectPairs(empty, psi, st.N())); n != 0 {
				t.Errorf("portion of bucketless rank 0 generated %d pairs", n)
			}
		}
	})
}
