// Package pgst implements the paper's parallel generalized suffix tree
// construction (Section 6). Each rank enumerates the suffixes of its
// fragment share, suffixes are sorted into w-prefix buckets and
// redistributed so every rank owns a load-balanced set of whole
// buckets, and each rank then builds its bucket subtrees depth-first —
// fetching the fragments a batch of buckets needs through two
// collective communication steps per batch, so per-rank space stays
// O(N/p) instead of O(min(N·l/p, N)).
//
// Bucket-to-rank assignment uses sample sort splitters over the packed
// w-prefix keys: a bucket's suffixes all share one key, so a range
// partition of the key space keeps buckets whole while balancing
// suffix counts (the paper's load-balanced redistribution).
package pgst

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/seq"
	"repro/internal/suffixtree"
	"repro/internal/wire"
)

// Modeled per-operation costs, BlueGene/L-flavored (a ~700 MHz node
// spends a few nanoseconds per simple operation). Absolute values set
// the time scale; the scaling shapes come from the algorithm.
const (
	costChar = 4e-9  // per character examined (scan, pack, trie build)
	costSort = 25e-9 // per element per comparison level (n·log₂n total)
	costSuf  = 30e-9 // per suffix record handled (bucket, encode, decode)
)

// Config parameterizes construction.
type Config struct {
	// W is the bucket prefix length (paper: 11 for maize-scale data;
	// scaled down with input size here).
	W int
	// MinLen skips suffixes shorter than this (set it to ψ: shorter
	// suffixes cannot carry a qualifying maximal match).
	MinLen int
	// FirstOwner is the lowest rank that owns buckets: 0 normally, 1
	// under the master–worker clustering where rank 0 holds no tree.
	FirstOwner int
	// BatchBytes bounds the fragment bytes fetched per construction
	// batch (per-rank Θ(N/p) space); default 1 MiB.
	BatchBytes int
	// Staged selects the customized Alltoallv (p−1 pairwise exchanges)
	// for the redistribution and fetch steps.
	Staged bool
	// Seed for splitter sampling.
	Seed int64
	// FT selects the fault-tolerant build: collectives poll with
	// deadlines and skip dead ranks, exchanges lost to a mid-build rank
	// death are re-enumerated by survivors from the fragments they
	// already hold, and dead ranks' bucket ranges are rebuilt whole by
	// designated survivors — so the union of the surviving per-bucket
	// tries is identical to a fault-free build. FT assumes rank 0
	// survives (the clustering master's role). Staged exchanges are
	// not fault-tolerant; FT forces the eager Alltoallv.
	FT bool
	// FTPoll is the poll interval of the fault-tolerant collectives
	// (default 10ms).
	FTPoll time.Duration
	// SpillBytes, when positive, selects the out-of-core build: no
	// rank ever materializes its full forest. Construction only agrees
	// on splitters; the owned key range is swept later in contiguous
	// segments whose estimated resident bytes stay under this budget,
	// each segment's forest built, consumed and dropped (see spill.go).
	// The union of swept forests is identical to the in-memory build.
	SpillBytes int64
}

func (c Config) withDefaults() Config {
	if c.BatchBytes == 0 {
		c.BatchBytes = 1 << 20
	}
	if c.MinLen < c.W {
		c.MinLen = c.W
	}
	if c.FTPoll == 0 {
		c.FTPoll = 10 * time.Millisecond
	}
	if c.FT {
		c.Staged = false
	}
	return c
}

// Local is one rank's part of the distributed GST.
type Local struct {
	Tree *suffixtree.Tree
	// Buckets is the number of buckets this rank built.
	Buckets int
	// SuffixesOwned is the number of suffixes in this rank's buckets.
	SuffixesOwned int
	// FetchRounds is the number of batched fragment-fetch rounds.
	FetchRounds int
	// Splitters is the agreed bucket-to-rank partition of the key
	// space; every rank holds the same copy, so any survivor can
	// recompute which buckets a dead rank owned (fault recovery).
	Splitters []seq.Kmer
	// Cfg is the construction configuration after defaulting, kept so
	// a portion can be rebuilt later with identical parameters.
	Cfg Config
	// Spill is non-nil for a spilling build (Cfg.SpillBytes > 0): Tree
	// is nil and the covered ranks' key ranges are swept on demand via
	// SweepRank instead.
	Spill *SpillState
}

// ownerBounds partitions fragment IDs contiguously so each owner rank
// holds roughly equal base counts; bounds[i] is the first fragment of
// owner i (bounds has owners+1 entries). Every rank computes the same
// partition, so fragment ownership is an O(1)–O(log p) lookup — the
// paper's "recalling the initial distribution".
func ownerBounds(st seq.Seqs, owners int) []int {
	bounds := make([]int, owners+1)
	total := st.TotalBases()
	per := total/owners + 1
	fid, acc := 0, 0
	for r := 0; r < owners; r++ {
		bounds[r] = fid
		want := (r + 1) * per
		for fid < st.N() && acc < want {
			acc += st.SeqLen(fid)
			fid++
		}
	}
	bounds[owners] = st.N()
	return bounds
}

func ownerOf(bounds []int, fid int) int {
	// bounds is ascending; find r with bounds[r] ≤ fid < bounds[r+1].
	lo, hi := 0, len(bounds)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if bounds[mid] <= fid {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

type keyedSuffix struct {
	key seq.Kmer
	suf suffixtree.Suffix
}

// enumerateOwner enumerates and keys the suffixes of owner rank me's
// fragment range (both orientations), keeping only keys for which keep
// returns true (nil: keep everything). Returns the kept suffixes and
// the character count examined, so callers can charge the work. Every
// rank holds the full store, so any survivor can re-run a dead rank's
// enumeration — the redundancy the fault-tolerant build recovers from.
func enumerateOwner(st seq.Seqs, bounds []int, me int, cfg Config, keep func(seq.Kmer) bool) ([]keyedSuffix, int64) {
	n := st.N()
	var out []keyedSuffix
	var chars int64
	for fid := bounds[me]; fid < bounds[me+1]; fid++ {
		for _, sid := range [2]int32{int32(fid), int32(fid + n)} {
			s := st.Seq(int(sid))
			chars += int64(len(s))
			sufs := suffixtree.EnumerateSuffixes(
				func(int32) []byte { return s }, []int32{sid}, cfg.MinLen)
			for _, sf := range sufs {
				if key, ok := suffixtree.BucketKey(s, int(sf.Pos), cfg.W); ok {
					if keep == nil || keep(key) {
						out = append(out, keyedSuffix{key, sf})
					}
				}
			}
		}
	}
	return out, chars
}

// Build constructs this rank's portion of the distributed GST. All
// ranks of the communicator must call it collectively.
func Build(c *par.Comm, st seq.Seqs, cfg Config) *Local {
	cfg = cfg.withDefaults()
	p := c.Size()
	owners := p - cfg.FirstOwner
	if owners < 1 {
		panic("pgst: no owner ranks")
	}
	bounds := ownerBounds(st, owners)

	// Out-of-core mode: agree on splitters from streamed samples and
	// defer all tree construction to bounded segment sweeps.
	if cfg.SpillBytes > 0 {
		return buildSpill(c, st, cfg, bounds, owners)
	}

	// Phase 1: enumerate and key the suffixes of this rank's fragments
	// (both orientations). Ranks below FirstOwner hold no fragments.
	var local []keyedSuffix
	if me := c.Rank() - cfg.FirstOwner; me >= 0 {
		var chars int64
		local, chars = enumerateOwner(st, bounds, me, cfg, nil)
		c.ChargeCompute(float64(chars)*costChar + float64(len(local))*costSuf)
	}

	// Phase 2: sort local suffixes by key and agree on splitters.
	sort.Slice(local, func(i, j int) bool { return local[i].key < local[j].key })
	c.ChargeCompute(float64(len(local)) * log2f(len(local)) * costSort)
	splitters := chooseSplitters(c, local, owners, cfg)

	// Phase 3: redistribute suffixes so each bucket lands whole on its
	// owner rank. Under FT, exchanges severed by a rank death are
	// re-enumerated locally from the full store.
	c.TraceEvent(obs.EvPhaseEnter, obs.PhaseGSTRedist, 0, 0)
	mine := redistribute(c, st, local, splitters, bounds, cfg)
	c.TraceEvent(obs.EvPhaseExit, obs.PhaseGSTRedist, 0, 0)
	sort.Slice(mine, func(i, j int) bool { return mine[i].key < mine[j].key })
	c.ChargeCompute(float64(len(mine)) * log2f(len(mine)) * costSort)

	// Phase 4: split into buckets and plan fetch batches.
	var buckets [][]suffixtree.Suffix
	var keys []seq.Kmer
	for lo := 0; lo < len(mine); {
		hi := lo
		for hi < len(mine) && mine[hi].key == mine[lo].key {
			hi++
		}
		b := make([]suffixtree.Suffix, 0, hi-lo)
		for i := lo; i < hi; i++ {
			b = append(b, mine[i].suf)
		}
		buckets = append(buckets, b)
		keys = append(keys, mine[lo].key)
		lo = hi
	}
	batches := planBatches(st, buckets, cfg.BatchBytes)
	var rounds int
	if cfg.FT {
		rounds = int(c.FTAllreduce(int64(len(batches)), par.Max, cfg.FTPoll))
	} else {
		rounds = int(c.Allreduce(int64(len(batches)), par.Max))
	}

	// Phase 5: per batch, fetch the needed fragments with two
	// collective steps (request, serve), then build the subtrees.
	ib := suffixtree.NewIncrementalBuilder(cfg.W)
	var prevWork int64
	for round := 0; round < rounds; round++ {
		var batch []int
		if round < len(batches) {
			batch = batches[round]
		}
		c.TraceEvent(obs.EvPhaseEnter, obs.PhaseGSTFetch, int64(round), 0)
		cache := fetchFragments(c, st, buckets, batch, bounds, cfg)
		c.TraceEvent(obs.EvPhaseExit, obs.PhaseGSTFetch, int64(round), 0)
		access := cacheAccess(st, cache, cfg.FT)
		for _, bi := range batch {
			ib.AddBucket(access, buckets[bi])
		}
		c.ChargeCompute(float64(ib.Work()-prevWork) * costChar)
		prevWork = ib.Work()
	}

	nsuf := 0
	for _, b := range buckets {
		nsuf += len(b)
	}
	nbuckets := len(buckets)

	// FT epilogue: agree on which owner ranks died at any point during
	// construction and rebuild their whole bucket ranges on designated
	// survivors, so the union of surviving tries matches a fault-free
	// build exactly.
	if cfg.FT {
		for _, dead := range recoverAssignments(c, cfg.FirstOwner, cfg.FTPoll) {
			nb, ns, cost := rebuildInto(ib, st, splitters, cfg, dead)
			nbuckets += nb
			nsuf += ns
			c.ChargeCompute(cost)
		}
	}

	return &Local{
		Tree:          ib.Tree(),
		Buckets:       nbuckets,
		SuffixesOwned: nsuf,
		FetchRounds:   rounds,
		Splitters:     splitters,
		Cfg:           cfg,
	}
}

// RebuildPortion reconstructs, on the calling rank, the GST portion
// that the bucket partition assigned to rank dead. It is the fault
// recovery path: the splitters every rank retained determine exactly
// which w-prefix buckets the dead rank owned, and since every rank can
// read the full store, a survivor re-enumerates all suffixes, keeps
// the dead rank's share, and builds those subtrees locally. The
// result generates exactly the pairs the dead rank's tree would have
// (pair generation is a per-bucket computation).
//
// This is a local (non-collective) operation; its computation is
// charged to the calling rank, modeling the recovery cost.
func RebuildPortion(c *par.Comm, st seq.Seqs, local *Local, dead int) *suffixtree.Tree {
	ib := suffixtree.NewIncrementalBuilder(local.Cfg.W)
	_, _, cost := rebuildInto(ib, st, local.Splitters, local.Cfg, dead)
	c.ChargeCompute(cost)
	return ib.Tree()
}

func log2f(n int) float64 {
	if n < 2 {
		return 1
	}
	l := 0.0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return l
}

// chooseSplitters gathers evenly spaced key samples at rank 0, sorts
// them, and broadcasts owners−1 splitters. Under FT a dead rank simply
// contributes no samples — the splitters steer only the bucket→rank
// partition, never the union of bucket contents, so equivalence with a
// fault-free build is unaffected.
func chooseSplitters(c *par.Comm, local []keyedSuffix, owners int, cfg Config) []seq.Kmer {
	const perRank = 64
	rng := rand.New(rand.NewSource(cfg.Seed + int64(c.Rank())))
	w := wire.NewBuffer(perRank * 9)
	if len(local) > 0 {
		for i := 0; i < perRank; i++ {
			// Evenly spaced with jitter over the sorted local keys.
			idx := i * len(local) / perRank
			idx += rng.Intn(len(local)/perRank + 1)
			if idx >= len(local) {
				idx = len(local) - 1
			}
			w.PutUint(uint64(local[idx].key))
		}
	}
	var gathered [][]byte
	if cfg.FT {
		gathered, _ = c.FTGather(0, w.Bytes(), cfg.FTPoll)
	} else {
		gathered = c.Gather(0, w.Bytes())
	}
	var enc []byte
	if c.Rank() == 0 {
		var samples []seq.Kmer
		for _, buf := range gathered {
			r := wire.NewReader(buf)
			for r.Remaining() > 0 {
				samples = append(samples, seq.Kmer(r.Uint()))
			}
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		out := wire.NewBuffer((owners - 1) * 9)
		for i := 1; i < owners; i++ {
			idx := i * len(samples) / owners
			if len(samples) == 0 {
				break
			}
			if idx >= len(samples) {
				idx = len(samples) - 1
			}
			out.PutUint(uint64(samples[idx]))
		}
		enc = out.Bytes()
	}
	if cfg.FT {
		enc = c.FTBcast(0, enc, cfg.FTPoll)
	} else {
		enc = c.Bcast(0, enc)
	}
	var splitters []seq.Kmer
	r := wire.NewReader(enc)
	for r.Remaining() > 0 {
		splitters = append(splitters, seq.Kmer(r.Uint()))
	}
	return splitters
}

// destOf maps a bucket key to its owner rank.
func destOf(splitters []seq.Kmer, key seq.Kmer, firstOwner int) int {
	// First splitter index with splitter > key.
	lo, hi := 0, len(splitters)
	for lo < hi {
		mid := (lo + hi) / 2
		if splitters[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return firstOwner + lo
}

// redistribute exchanges keyed suffixes so each lands on its bucket's
// owner rank. Under FT a rank death mid-exchange is detected through
// the poll deadlines; the survivors agree on the set of severed
// sources and each re-enumerates those ranks' fragment ranges from its
// own full copy of the store, keeping the keys it owns — so its bucket
// contents end up identical to a fault-free exchange.
func redistribute(c *par.Comm, st seq.Seqs, local []keyedSuffix, splitters []seq.Kmer, bounds []int, cfg Config) []keyedSuffix {
	p := c.Size()
	bufs := make([]*wire.Buffer, p)
	for i := range bufs {
		bufs[i] = wire.NewBuffer(0)
	}
	for _, ks := range local {
		d := destOf(splitters, ks.key, cfg.FirstOwner)
		w := bufs[d]
		w.PutUint(uint64(ks.key))
		w.PutInt(int(ks.suf.Sid))
		w.PutInt(int(ks.suf.Pos))
		w.PutInt(int(ks.suf.Prev))
	}
	c.ChargeCompute(float64(len(local)) * costSuf)
	raw := make([][]byte, p)
	for i := range raw {
		raw[i] = bufs[i].Bytes()
	}
	var recv [][]byte
	var severed []int
	switch {
	case cfg.FT:
		var got []bool
		recv, got = c.FTAlltoallv(raw, cfg.FTPoll)
		severed = agreeSevered(c, got, cfg)
		// Discard partial data from severed sources: a rank that died
		// mid-exchange reached some destinations and not others, and
		// only a uniform re-enumeration keeps every survivor's view
		// consistent (no lost and no duplicated suffixes).
		for _, s := range severed {
			recv[s] = nil
		}
	case cfg.Staged:
		recv = c.AlltoallvStaged(raw)
	default:
		recv = c.Alltoallv(raw)
	}
	var mine []keyedSuffix
	for _, buf := range recv {
		r := wire.NewReader(buf)
		for r.Remaining() > 0 {
			key := seq.Kmer(r.Uint())
			sid := r.Int32()
			pos := r.Int32()
			prev := int8(r.Int())
			mine = append(mine, keyedSuffix{key, suffixtree.Suffix{Sid: sid, Pos: pos, Prev: prev}})
		}
	}
	// Recover the severed exchanges: replay each dead source's
	// enumeration locally, keeping only the keys this rank owns.
	for _, s := range severed {
		me := s - cfg.FirstOwner
		if me < 0 || s == c.Rank() {
			continue // non-owner ranks contribute no suffixes
		}
		rec, chars := enumerateOwner(st, bounds, me, cfg, func(k seq.Kmer) bool {
			return destOf(splitters, k, cfg.FirstOwner) == c.Rank()
		})
		mine = append(mine, rec...)
		c.ChargeCompute(float64(chars)*costChar + float64(len(rec))*costSuf)
	}
	c.ChargeCompute(float64(len(mine)) * costSuf)
	return mine
}

// agreeSevered merges every survivor's view of which alltoall sources
// went missing (rank 0 unions the reports and broadcasts the result),
// so all survivors recover the same set of exchanges.
func agreeSevered(c *par.Comm, got []bool, cfg Config) []int {
	w := wire.NewBuffer(8)
	for s, ok := range got {
		if !ok {
			w.PutInt(s)
		}
	}
	reports, reported := c.FTGather(0, w.Bytes(), cfg.FTPoll)
	var enc []byte
	if c.Rank() == 0 {
		miss := make(map[int]bool)
		for i, buf := range reports {
			if !reported[i] {
				// A rank that died after the exchange but before
				// reporting: its own buckets are handled by the
				// end-of-build rebuild, not here.
				continue
			}
			r := wire.NewReader(buf)
			for r.Remaining() > 0 {
				miss[r.Int()] = true
			}
		}
		out := wire.NewBuffer(2 * len(miss))
		var sorted []int
		for s := range miss {
			sorted = append(sorted, s)
		}
		sort.Ints(sorted)
		for _, s := range sorted {
			out.PutInt(s)
		}
		enc = out.Bytes()
	}
	enc = c.FTBcast(0, enc, cfg.FTPoll)
	r := wire.NewReader(enc)
	var severed []int
	for r.Remaining() > 0 {
		severed = append(severed, r.Int())
	}
	return severed
}

// planBatches groups bucket indices into batches whose distinct
// fragments total at most batchBytes.
func planBatches(st seq.Seqs, buckets [][]suffixtree.Suffix, batchBytes int) [][]int {
	n := st.N()
	var batches [][]int
	var cur []int
	seen := make(map[int32]bool)
	bytes := 0
	flush := func() {
		if len(cur) > 0 {
			batches = append(batches, cur)
			cur = nil
			seen = make(map[int32]bool)
			bytes = 0
		}
	}
	// contribution returns the new-fragment bytes bucket b adds over
	// the current seen set, without mutating it.
	contribution := func(b []suffixtree.Suffix) (int, []int32) {
		add := 0
		var fids []int32
		dup := make(map[int32]bool)
		for _, sf := range b {
			fid := sf.Sid % int32(n)
			if !seen[fid] && !dup[fid] {
				dup[fid] = true
				fids = append(fids, fid)
				add += st.SeqLen(int(fid))
			}
		}
		return add, fids
	}
	for bi, b := range buckets {
		add, fids := contribution(b)
		if bytes+add > batchBytes && len(cur) > 0 {
			flush()
			add, fids = contribution(b)
		}
		cur = append(cur, bi)
		for _, fid := range fids {
			seen[fid] = true
		}
		bytes += add
	}
	flush()
	return batches
}

// fetchFragments performs the two collective steps of one batch:
// request the owners of every fragment the batch's buckets reference,
// then receive their bases. Returns fid → forward bases.
func fetchFragments(c *par.Comm, st seq.Seqs, buckets [][]suffixtree.Suffix, batch []int, bounds []int, cfg Config) map[int32][]byte {
	p := c.Size()
	n := st.N()
	need := make(map[int32]bool)
	for _, bi := range batch {
		for _, sf := range buckets[bi] {
			need[sf.Sid%int32(n)] = true
		}
	}
	// Step 1: send request lists to owners.
	reqBufs := make([]*wire.Buffer, p)
	for i := range reqBufs {
		reqBufs[i] = wire.NewBuffer(0)
	}
	for fid := range need {
		owner := cfg.FirstOwner + ownerOf(bounds, int(fid))
		reqBufs[owner].PutInt(int(fid))
	}
	raw := make([][]byte, p)
	for i := range raw {
		raw[i] = reqBufs[i].Bytes()
	}
	var reqs [][]byte
	switch {
	case cfg.FT:
		reqs, _ = c.FTAlltoallv(raw, cfg.FTPoll)
	case cfg.Staged:
		reqs = c.AlltoallvStaged(raw)
	default:
		reqs = c.Alltoallv(raw)
	}
	// Step 2: serve the requests.
	respBufs := make([]*wire.Buffer, p)
	for i := range respBufs {
		respBufs[i] = wire.NewBuffer(0)
	}
	served := 0
	for src, buf := range reqs {
		r := wire.NewReader(buf)
		for r.Remaining() > 0 {
			fid := r.Int()
			respBufs[src].PutInt(fid)
			respBufs[src].PutBytes(st.Seq(fid))
			served++
		}
	}
	c.ChargeCompute(float64(served) * costSuf)
	for i := range raw {
		raw[i] = respBufs[i].Bytes()
	}
	var resps [][]byte
	switch {
	case cfg.FT:
		// A dead owner serves nothing; its fragments are read from the
		// local copy of the store via the cache-miss fallback.
		resps, _ = c.FTAlltoallv(raw, cfg.FTPoll)
	case cfg.Staged:
		resps = c.AlltoallvStaged(raw)
	default:
		resps = c.Alltoallv(raw)
	}
	cache := make(map[int32][]byte, len(need))
	for _, buf := range resps {
		r := wire.NewReader(buf)
		for r.Remaining() > 0 {
			fid := r.Int32()
			cache[fid] = r.Bytes()
		}
	}
	return cache
}

// cacheAccess builds the Access function for one batch: forward bases
// come from the fetched cache; reverse complements are derived on
// demand and memoized. With fallback (FT mode) a fragment a dead owner
// never served is read from the local copy of the store instead of
// panicking.
func cacheAccess(st seq.Seqs, cache map[int32][]byte, fallback bool) suffixtree.Access {
	n := int32(st.N())
	rcCache := make(map[int32][]byte)
	fetch := func(fid int32) []byte {
		b, ok := cache[fid]
		if !ok {
			if !fallback {
				panic("pgst: access to unfetched fragment")
			}
			b = st.Seq(int(fid))
		}
		return b
	}
	return func(sid int32) []byte {
		if sid < n {
			return fetch(sid)
		}
		if rc, ok := rcCache[sid]; ok {
			return rc
		}
		rc := seq.ReverseComplement(fetch(sid - n))
		rcCache[sid] = rc
		return rc
	}
}

// recoverAssignments is the FT epilogue's agreement step: rank 0
// gathers a liveness ping, pairs each dead owner rank with a surviving
// owner round-robin, and broadcasts the assignment. Returns the dead
// ranks assigned to the calling rank for rebuilding.
func recoverAssignments(c *par.Comm, firstOwner int, poll time.Duration) []int {
	_, alive := c.FTGather(0, nil, poll)
	var enc []byte
	if c.Rank() == 0 {
		var deadOwners, liveOwners []int
		for r := firstOwner; r < c.Size(); r++ {
			if alive[r] {
				liveOwners = append(liveOwners, r)
			} else {
				deadOwners = append(deadOwners, r)
			}
		}
		w := wire.NewBuffer(4 * len(deadOwners))
		if len(liveOwners) > 0 {
			for k, d := range deadOwners {
				w.PutInt(d)
				w.PutInt(liveOwners[k%len(liveOwners)])
			}
		}
		enc = w.Bytes()
	}
	enc = c.FTBcast(0, enc, poll)
	r := wire.NewReader(enc)
	var mine []int
	for r.Remaining() > 0 {
		dead, assigned := r.Int(), r.Int()
		if assigned == c.Rank() {
			mine = append(mine, dead)
		}
	}
	return mine
}

// rebuildInto re-enumerates every fragment's suffixes, keeps the
// buckets the partition assigned to rank dead, and builds them into
// ib. Returns the bucket and suffix counts added plus the modeled
// compute cost of the rebuild.
func rebuildInto(ib *suffixtree.IncrementalBuilder, st seq.Seqs, splitters []seq.Kmer, cfg Config, dead int) (nbuckets, nsuf int, cost float64) {
	return buildFiltered(ib, st, cfg, func(key seq.Kmer) bool {
		return destOf(splitters, key, cfg.FirstOwner) == dead
	})
}
