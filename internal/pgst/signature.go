package pgst

import (
	"fmt"
	"sort"

	"repro/internal/seq"
	"repro/internal/suffixtree"
)

// Signature identifies the content of a suffix-tree forest independent
// of node numbering or bucket distribution: a multiset of per-node
// structural signatures plus the sorted multiset of leaf suffixes. Two
// forests carrying the same suffixes in the same shape — regardless of
// how the buckets were split across ranks — compare Equal. The
// simulation harness uses it as the serial-equivalence oracle for the
// distributed GST build.
type Signature struct {
	Nodes    map[string]int
	Suffixes []string
}

// TreeSignature summarizes one or more trees as a Signature.
func TreeSignature(trees ...*suffixtree.Tree) Signature {
	sig := Signature{Nodes: make(map[string]int)}
	for _, t := range trees {
		for i := range t.Nodes {
			u := int32(i)
			k := fmt.Sprintf("d%d/leaf%v/n%d", t.Nodes[u].Depth, t.IsLeaf(u),
				t.Nodes[u].SufEnd-t.Nodes[u].SufStart)
			sig.Nodes[k]++
			if t.IsLeaf(u) {
				for _, sf := range t.LeafSuffixes(u) {
					sig.Suffixes = append(sig.Suffixes,
						fmt.Sprintf("%d:%d:%d:%d", sf.Sid, sf.Pos, sf.Prev, t.Nodes[u].Depth))
				}
			}
		}
	}
	sort.Strings(sig.Suffixes)
	return sig
}

// UnionSignature summarizes the union of the given locals' forests.
// Nil entries — dead ranks in a fault-tolerant build — are skipped.
func UnionSignature(locals []*Local) Signature {
	sig := Signature{Nodes: make(map[string]int)}
	for _, l := range locals {
		if l == nil {
			continue
		}
		t := TreeSignature(l.Tree)
		for k, v := range t.Nodes {
			sig.Nodes[k] += v
		}
		sig.Suffixes = append(sig.Suffixes, t.Suffixes...)
	}
	sort.Strings(sig.Suffixes)
	return sig
}

// UnionSignatureOf summarizes the union of the given locals' forests
// for either build mode: an in-memory local contributes its resident
// tree, a spilling local materializes its covered key ranges segment
// by segment against st (building and dropping each forest, so the
// oracle itself honors the byte budget). Nil entries — dead ranks —
// are skipped; their ranges appear through the survivor that adopted
// them.
func UnionSignatureOf(st seq.Seqs, locals []*Local) Signature {
	sig := Signature{Nodes: make(map[string]int)}
	add := func(t Signature) {
		for k, v := range t.Nodes {
			sig.Nodes[k] += v
		}
		sig.Suffixes = append(sig.Suffixes, t.Suffixes...)
	}
	for _, l := range locals {
		if l == nil {
			continue
		}
		if l.Spill == nil {
			add(TreeSignature(l.Tree))
			continue
		}
		for _, r := range l.Spill.Ranks {
			l.SweepRank(st, r, func(t *suffixtree.Tree) bool {
				add(TreeSignature(t))
				return true
			})
		}
	}
	sort.Strings(sig.Suffixes)
	return sig
}

// Equal reports whether two signatures describe the same forest
// content.
func (s Signature) Equal(o Signature) bool {
	if len(s.Nodes) != len(o.Nodes) || len(s.Suffixes) != len(o.Suffixes) {
		return false
	}
	for k, v := range s.Nodes {
		if o.Nodes[k] != v {
			return false
		}
	}
	for i := range s.Suffixes {
		if s.Suffixes[i] != o.Suffixes[i] {
			return false
		}
	}
	return true
}
