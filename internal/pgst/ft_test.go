package pgst

import (
	"fmt"
	"testing"

	"repro/internal/par"
)

// unionSignature wraps the exported UnionSignature in the (nodes,
// sufs) shape the older tests were written against.
func unionSignature(locals []*Local) (map[string]int, []string) {
	sig := UnionSignature(locals)
	return sig.Nodes, sig.Suffixes
}

// checkUnion verifies that the union of the locals' trees carries the
// reference signature.
func checkUnion(t *testing.T, name string, locals []*Local, wantNodes map[string]int, wantSufs []string) {
	t.Helper()
	gotNodes, gotSufs := unionSignature(locals)
	if len(gotSufs) != len(wantSufs) {
		t.Fatalf("%s: %d leaf suffixes, want %d", name, len(gotSufs), len(wantSufs))
	}
	for i := range wantSufs {
		if gotSufs[i] != wantSufs[i] {
			t.Fatalf("%s: leaf suffix %d = %s, want %s", name, i, gotSufs[i], wantSufs[i])
		}
	}
	for k, v := range wantNodes {
		if gotNodes[k] != v {
			t.Fatalf("%s: node sig %q count %d, want %d", name, k, gotNodes[k], v)
		}
	}
}

// TestFTBuildMatchesSerial: the fault-tolerant build with no faults
// injected must produce exactly the serial GST (the FT collectives
// change the message pattern, never the content).
func TestFTBuildMatchesSerial(t *testing.T) {
	st := testStore(1, 6000, 3.0)
	const w, psi = 6, 8
	wantNodes, wantSufs := treeSignature(serialTree(st, w, psi))

	const p = 5
	locals := make([]*Local, p)
	par.Run(par.DefaultConfig(p), func(c *par.Comm) {
		locals[c.Rank()] = Build(c, st, Config{
			W: w, MinLen: psi, BatchBytes: 1 << 20, Seed: 7, FT: true,
		})
	})
	checkUnion(t, "ft fault-free", locals, wantNodes, wantSufs)
}

// TestFTBuildSurvivesCrash is the tentpole contract: a rank killed
// mid-construction (during redistribution or fragment fetch, with or
// without frame corruption on the wire) must leave the survivors
// holding, in union, exactly the fault-free GST — the dead rank's
// exchanges re-enumerated and its bucket range rebuilt from data the
// survivors already hold.
func TestFTBuildSurvivesCrash(t *testing.T) {
	st := testStore(1, 6000, 3.0)
	const w, psi = 6, 8
	wantNodes, wantSufs := treeSignature(serialTree(st, w, psi))

	const p = 5
	cases := []struct {
		name string
		plan *par.FaultPlan
	}{
		{"redistribution crash", &par.FaultPlan{
			Seed: 5, Crashes: []par.Crash{par.CrashAtAlltoallSend(2, 2)}}},
		{"fetch crash", &par.FaultPlan{
			Seed: 5, Crashes: []par.Crash{par.CrashAtAlltoallSend(3, 5)}}},
		{"crash with corrupting wire", &par.FaultPlan{
			Seed: 5, Crashes: []par.Crash{par.CrashAtAlltoallSend(2, 3)},
			Retransmit: true, CorruptProb: 0.05}},
	}
	for _, tc := range cases {
		locals := make([]*Local, p)
		cfg := par.DefaultConfig(p)
		cfg.Faults = tc.plan
		_, exits := par.RunStatus(cfg, func(c *par.Comm) {
			locals[c.Rank()] = Build(c, st, Config{
				W: w, MinLen: psi, BatchBytes: 1 << 20, Seed: 7, FT: true,
			})
		})
		crashed := tc.plan.Crashes[0].Rank
		if !exits[crashed].FaultKilled {
			t.Fatalf("%s: rank %d was not fault-killed: %+v", tc.name, crashed, exits[crashed])
		}
		for r, e := range exits {
			if r != crashed && !e.OK {
				t.Fatalf("%s: survivor %d died: %+v", tc.name, r, e)
			}
		}
		alive := 0
		for _, l := range locals {
			if l != nil {
				alive++
			}
		}
		if alive != p-1 {
			t.Fatalf("%s: %d survivors, want %d", tc.name, alive, p-1)
		}
		checkUnion(t, tc.name, locals, wantNodes, wantSufs)
	}
}

// TestFTBuildDeterminism: two FT builds under the same crashing,
// corrupting plan must produce identical survivor forests.
func TestFTBuildDeterminism(t *testing.T) {
	st := testStore(2, 4000, 2.5)
	const w, psi = 6, 8
	const p = 4
	run := func() (map[string]int, []string) {
		locals := make([]*Local, p)
		cfg := par.DefaultConfig(p)
		cfg.Faults = &par.FaultPlan{
			Seed:       13,
			Crashes:    []par.Crash{par.CrashAtAlltoallSend(2, 1)},
			Retransmit: true, CorruptProb: 0.1,
		}
		par.RunStatus(cfg, func(c *par.Comm) {
			locals[c.Rank()] = Build(c, st, Config{
				W: w, MinLen: psi, BatchBytes: 1 << 20, Seed: 7, FT: true,
			})
		})
		return unionSignature(locals)
	}
	n1, s1 := run()
	n2, s2 := run()
	if fmt.Sprint(n1) != fmt.Sprint(n2) || fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Error("FT build not deterministic under a fixed fault plan")
	}
}
