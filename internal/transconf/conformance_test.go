package transconf

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/check"
	"repro/internal/obs/collector"
	"repro/internal/par/nettrans"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// Child-process environment: when set, the test binary is one worker
// rank of a conformance job instead of the test driver. envCollector
// additionally points the rank at a live telemetry collector.
const (
	envRank      = "TRANSCONF_RANK"
	envSize      = "TRANSCONF_SIZE"
	envNet       = "TRANSCONF_NET"
	envRegistry  = "TRANSCONF_REGISTRY"
	envCollector = "TRANSCONF_COLLECTOR"
)

// Timing constants are sized for the race detector's ~10x slowdown: a
// lease short enough to make SIGKILL recovery quick but long enough
// that a healthy worker's slowest instrumented batch never exceeds it
// (a falsely fired worker is never re-admitted, and firing all of
// them aborts the run).
const (
	jobSize  = 4
	jobEpoch = 17
	lease    = 1500 * time.Millisecond
	liveness = 4 * time.Second
)

func TestMain(m *testing.M) {
	if os.Getenv(envRank) != "" {
		childMain()
		return
	}
	os.Exit(m.Run())
}

// workload synthesizes the fixed conformance read set: a
// repeat-bearing genome every rank regenerates identically, sized so
// a 4-rank socket run takes long enough for a mid-phase kill to land.
func workload() []*seq.Fragment {
	rng := rand.New(rand.NewSource(99))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{
		Length:  20000,
		Repeats: []simulate.RepeatFamily{{Length: 300, Copies: 6, Divergence: 0.02}},
	})
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 200
	rc.LenSD = 30
	rc.VectorProb = 0
	return simulate.SampleWGS(rng, g, 4.0, rc, "r")
}

func jobParallelConfig(tr *obs.Tracer) cluster.ParallelConfig {
	pcfg := cluster.DefaultParallelConfig(jobSize)
	pcfg.FT = true
	pcfg.LeaseTimeout = lease
	pcfg.BatchSize = 16
	pcfg.Trace = tr
	return pcfg
}

func newTransport(rank int, network, registry string) (*nettrans.Transport, error) {
	return nettrans.New(nettrans.Config{
		Rank:        rank,
		Size:        jobSize,
		Network:     network,
		RegistryDir: registry,
		Epoch:       jobEpoch,
		Liveness:    liveness,
	})
}

func dumpPath(registry string, rank int) string {
	return filepath.Join(registry, fmt.Sprintf("events.rank%d.json", rank))
}

// childMain is one worker rank: regenerate the workload, cluster
// through the socket transport, leave an events dump for the driver —
// and, when envCollector names a collector, stream telemetry to it
// while running and final-flush the same dump snapshot the dump file
// gets (the byte-equivalence the live smoke test asserts).
func childMain() {
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "transconf child:", err)
		os.Exit(1)
	}
	rank, err := strconv.Atoi(os.Getenv(envRank))
	if err != nil {
		die(err)
	}
	registry := os.Getenv(envRegistry)
	store := seq.NewStore(workload())
	tr := obs.NewTracer(jobSize, 1<<16)
	var rep *collector.Reporter
	if colURL := os.Getenv(envCollector); colURL != "" {
		rep = collector.StartReporter(collector.ReporterConfig{
			URL: colURL, Rank: rank, Job: "transconf",
			Interval: 50 * time.Millisecond, Tracer: tr,
		})
	}
	t, err := newTransport(rank, os.Getenv(envNet), registry)
	if err != nil {
		rep.Close(nil, false, err.Error())
		die(err)
	}
	_, _, exit, err := cluster.ParallelRank(store, cluster.DefaultConfig(), jobParallelConfig(tr), rank, t)
	if cerr := t.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		rep.Close(nil, false, err.Error())
		die(err)
	}
	d := tr.Dump()
	f, err := os.Create(dumpPath(registry, rank))
	if err != nil {
		die(err)
	}
	if err := d.WriteJSON(f); err == nil {
		err = f.Close()
	}
	if err != nil {
		die(err)
	}
	rep.Close(d, exit.OK, exit.Reason)
	if !exit.OK {
		die(fmt.Errorf("rank %d did not finish OK: %s", rank, exit.Reason))
	}
	os.Exit(0)
}

// serialLabels is the canonical partition every backend must produce.
func serialLabels(store *seq.Store) []int {
	return cluster.PartitionLabels(cluster.Serial(store, cluster.DefaultConfig()))
}

// spawnChildren re-executes this test binary as worker ranks
// 1..jobSize-1, with cleanup that reaps whatever is still running.
func spawnChildren(t *testing.T, network, registry string, extraEnv ...string) map[int]*exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	children := make(map[int]*exec.Cmd, jobSize-1)
	for r := 1; r < jobSize; r++ {
		cmd := exec.Command(exe, "-transconf-child")
		cmd.Env = append(os.Environ(),
			envRank+"="+strconv.Itoa(r),
			envSize+"="+strconv.Itoa(jobSize),
			envNet+"="+network,
			envRegistry+"="+registry,
		)
		cmd.Env = append(cmd.Env, extraEnv...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn rank %d: %v", r, err)
		}
		children[r] = cmd
	}
	t.Cleanup(func() {
		for _, cmd := range children {
			if cmd.Process != nil {
				_ = cmd.Process.Kill()
			}
			_ = cmd.Wait()
		}
	})
	return children
}

// runJob drives one multi-process clustering job: worker ranks are
// re-executions of this test binary, rank 0 runs in-test. killRank,
// when ≥ 1, is SIGKILLed killAfter into the run. It returns the
// master's partition labels, the run statistics, and the merged
// per-process event dump (the killed rank's dump is missing, which
// the merge marks as truncated).
func runJob(t *testing.T, network string, killRank int, killAfter time.Duration) ([]int, cluster.Stats, *obs.Dump) {
	t.Helper()
	registry := t.TempDir()
	children := spawnChildren(t, network, registry)

	if killRank >= 1 {
		cmd := children[killRank]
		time.AfterFunc(killAfter, func() {
			t.Logf("SIGKILL rank %d after %v", killRank, killAfter)
			_ = cmd.Process.Signal(syscall.SIGKILL)
		})
	}

	store := seq.NewStore(workload())
	tr := obs.NewTracer(jobSize, 1<<16)
	trans, err := newTransport(0, network, registry)
	if err != nil {
		t.Fatal(err)
	}
	res, _, exit, err := cluster.ParallelRank(store, cluster.DefaultConfig(), jobParallelConfig(tr), 0, trans)
	if cerr := trans.Close(); err == nil && cerr != nil {
		t.Errorf("transport close: %v", cerr)
	}
	if err != nil {
		t.Fatalf("master rank failed: %v", err)
	}
	if !exit.OK {
		t.Fatalf("master did not finish OK: %s", exit.Reason)
	}

	// Reap the workers: every rank except a killed one must exit 0.
	for r, cmd := range children {
		werr := cmd.Wait()
		delete(children, r)
		if r == killRank {
			continue
		}
		if werr != nil {
			t.Errorf("rank %d exited with error: %v", r, werr)
		}
	}

	dumps := []*obs.Dump{tr.Dump()}
	for r := 1; r < jobSize; r++ {
		if r == killRank {
			continue
		}
		d, err := obs.ReadDumpFile(dumpPath(registry, r))
		if err != nil {
			t.Fatalf("rank %d events dump: %v", r, err)
		}
		dumps = append(dumps, d)
	}
	merged, err := obs.MergeDumps(dumps...)
	if err != nil {
		t.Fatal(err)
	}
	return cluster.PartitionLabels(res), res.Stats, merged
}

// assertCanonical checks the partition oracle against the serial
// transitive closure and the causal invariants over the merged trace.
func assertCanonical(t *testing.T, got []int, merged *obs.Dump) {
	t.Helper()
	want := serialLabels(seq.NewStore(workload()))
	if !cluster.SamePartition(got, want) {
		t.Fatalf("partition oracle: transport run diverged from the serial transitive closure (%d fragments)", len(want))
	}
	sum, err := check.Dump(merged, nil)
	if err != nil {
		t.Fatalf("trace oracle over merged per-process dumps: %v", err)
	}
	if sum.Events == 0 {
		t.Fatal("merged trace is empty")
	}
}

// TestConformanceInproc anchors the suite: the in-process backend
// running the same fault-tolerant protocol configuration must produce
// the canonical partition and pass the stream invariants.
func TestConformanceInproc(t *testing.T) {
	store := seq.NewStore(workload())
	tr := obs.NewTracer(jobSize, 1<<16)
	res, ph, err := cluster.Parallel(store, cluster.DefaultConfig(), jobParallelConfig(tr))
	if err != nil {
		t.Fatal(err)
	}
	if !cluster.SamePartition(cluster.PartitionLabels(res), serialLabels(store)) {
		t.Fatal("partition oracle: in-process FT run diverged from serial")
	}
	okRank := func(r int) bool { return ph.Exits == nil || ph.Exits[r].OK }
	if _, err := check.Stream(tr, okRank); err != nil {
		t.Fatalf("trace oracle: %v", err)
	}
}

func TestConformanceTCP(t *testing.T) {
	labels, _, merged := runJob(t, "tcp", 0, 0)
	assertCanonical(t, labels, merged)
}

func TestConformanceUnix(t *testing.T) {
	labels, _, merged := runJob(t, "unix", 0, 0)
	assertCanonical(t, labels, merged)
}

// TestConformanceSIGKILL kills a worker process mid-phase; the lease
// protocol must detect the silent rank, re-execute its work, and
// still converge on the canonical partition. The killed rank never
// writes its events dump — the merge marks it truncated and the
// remaining streams must still satisfy the causal invariants.
func TestConformanceSIGKILL(t *testing.T) {
	labels, stats, merged := runJob(t, "tcp", 2, 250*time.Millisecond)
	assertCanonical(t, labels, merged)
	if stats.WorkersLost < 1 {
		t.Errorf("kill landed after the run finished: WorkersLost=%d (expected ≥ 1); partition still canonical", stats.WorkersLost)
	}
}
