// Package transconf is the transport conformance suite: the same
// partition and causal-trace oracles the simulation harness runs
// against the in-process machine, executed against every transport
// backend — in-process goroutines, and TCP / Unix-socket ranks
// running as real OS processes (the test binary re-executes itself as
// the worker ranks). One case SIGKILLs a worker process mid-phase and
// requires the lease protocol to recover the canonical partition.
//
// The package holds no production code; the suite lives in its tests
// (run via `make transport-conformance`, which is part of `make ci`).
package transconf
