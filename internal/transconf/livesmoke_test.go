package transconf

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/collector"
	"repro/internal/par"
	"repro/internal/seq"
)

// The live smoke tests (make obs-live-smoke) run the same 4-process
// socket job as the conformance suite, but with every rank streaming
// telemetry to a run collector, and assert the tentpole contract:
// the collector is live and ready mid-run, its final merged trace is
// byte-identical to merging the per-process dump files, and its live
// causal analysis matches the post-hoc one.

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func getStatus(t *testing.T, base string) *collector.Status {
	t.Helper()
	code, body := getBody(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d: %s", code, body)
	}
	var st collector.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode /status: %v", err)
	}
	return &st
}

// runLiveJob runs one collector-observed multi-process job and returns
// the master's stats, the collector, its base URL, and the per-process
// dumps post-hoc merging would use (rank → dump; killed ranks absent).
func runLiveJob(t *testing.T, network string, killRank int, killAfter time.Duration, cfg collector.Config) (cluster.Stats, *collector.Collector, string, map[int]*obs.Dump) {
	t.Helper()
	registry := t.TempDir()
	cfg.Ranks = jobSize
	cfg.Job = "transconf"
	col := collector.New(cfg)
	srv, err := col.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	base := "http://" + srv.Addr

	children := spawnChildren(t, network, registry, envCollector+"="+base)
	if killRank >= 1 {
		cmd := children[killRank]
		// Kill only once the collector has heard from the rank: its
		// death then shows up as a growing heartbeat lag rather than a
		// rank that never reported, regardless of how slowly the child
		// process starts (the race detector makes startup ~10x slower).
		go func() {
			deadline := time.Now().Add(2 * time.Minute)
			for time.Now().Before(deadline) {
				resp, err := http.Get(base + "/status")
				if err != nil {
					return // collector gone: the test is over
				}
				var st collector.Status
				derr := json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if derr == nil {
					for _, row := range st.Ranks {
						if row.Rank == killRank && row.State != collector.StateWaiting {
							time.Sleep(killAfter)
							_ = cmd.Process.Kill()
							return
						}
					}
				}
				time.Sleep(20 * time.Millisecond)
			}
		}()
	}

	store := seq.NewStore(workload())
	tr := obs.NewTracer(jobSize, 1<<16)
	rep := collector.StartReporter(collector.ReporterConfig{
		URL: base, Rank: 0, Job: "transconf",
		Interval: 50 * time.Millisecond, Tracer: tr,
	})
	trans, err := newTransport(0, network, registry)
	if err != nil {
		t.Fatal(err)
	}

	// Rank 0 runs in a goroutine so the test can poll the collector
	// mid-run, exactly as asmtop would.
	type outcome struct {
		stats cluster.Stats
		exit  par.Exit
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		res, _, exit, err := cluster.ParallelRank(store, cluster.DefaultConfig(), jobParallelConfig(tr), 0, trans)
		if cerr := trans.Close(); err == nil && cerr != nil {
			err = cerr
		}
		var stats cluster.Stats
		if res != nil {
			stats = res.Stats
		}
		done <- outcome{stats: stats, exit: exit, err: err}
	}()

	// Mid-run: every rank reports within moments of rendezvous, so
	// /readyz flips to ok while the job is still clustering.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if code, _ := getBody(t, base+"/readyz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never turned ok")
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := getStatus(t, base)
	if st.SeenRanks != jobSize {
		t.Fatalf("mid-run SeenRanks = %d, want %d", st.SeenRanks, jobSize)
	}

	o := <-done
	if o.err != nil {
		rep.Close(nil, false, o.err.Error())
		t.Fatalf("master rank failed: %v", o.err)
	}
	if !o.exit.OK {
		t.Fatalf("master did not finish OK: %s", o.exit.Reason)
	}
	dump0 := tr.Dump()
	if err := rep.Close(dump0, true, ""); err != nil {
		t.Fatalf("final flush: %v", err)
	}

	// Reap the workers; every surviving rank final-flushed on its way
	// out (Close happens before exit).
	for r, cmd := range children {
		werr := cmd.Wait()
		delete(children, r)
		if r != killRank && werr != nil {
			t.Errorf("rank %d exited with error: %v", r, werr)
		}
	}

	dumps := map[int]*obs.Dump{0: dump0}
	for r := 1; r < jobSize; r++ {
		if r == killRank {
			continue
		}
		d, err := obs.ReadDumpFile(dumpPath(registry, r))
		if err != nil {
			t.Fatalf("rank %d events dump: %v", r, err)
		}
		dumps[r] = d
	}
	return o.stats, col, base, dumps
}

// assertMergedBytes: the collector's /events must be byte-identical to
// obs.MergeDumps over the per-process dump files.
func assertMergedBytes(t *testing.T, base string, dumps map[int]*obs.Dump) *obs.Dump {
	t.Helper()
	ordered := make([]*obs.Dump, 0, len(dumps))
	for r := 0; r < jobSize; r++ {
		if d, ok := dumps[r]; ok {
			ordered = append(ordered, d)
		}
	}
	merged, err := obs.MergeDumps(ordered...)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := merged.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	code, got := getBody(t, base+"/events")
	if code != http.StatusOK {
		t.Fatalf("/events = %d", code)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("/events (%d bytes) differs from MergeDumps over the dump files (%d bytes)", len(got), want.Len())
	}
	return merged
}

// assertLiveMatchesPostHoc: the collector's incremental analysis must
// equal the post-hoc batch analysis (MergeDumps + Analyze) of the same
// inputs, rendered identically. The live path goes through the
// streaming Incremental machinery; the post-hoc path through the batch
// one — agreement is the convergence contract.
func assertLiveMatchesPostHoc(t *testing.T, col *collector.Collector, merged *obs.Dump) {
	t.Helper()
	// Partial mode: a SIGKILLed rank's lost sends leave unmatched
	// receives in the merged trace, exactly as the live analysis sees
	// them. For a clean run Partial changes nothing.
	want, err := analyze.Analyze(merged, analyze.Options{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	live, err := col.LiveReport()
	if err != nil {
		t.Fatal(err)
	}
	var liveJSON, postJSON bytes.Buffer
	if err := live.WriteJSON(&liveJSON); err != nil {
		t.Fatal(err)
	}
	if err := want.WriteJSON(&postJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON.Bytes(), postJSON.Bytes()) {
		t.Fatalf("live analysis diverges from post-hoc over the same merged trace:\nlive: %.400s\npost: %.400s",
			liveJSON.Bytes(), postJSON.Bytes())
	}
}

// TestObsLiveTCP: clean 4-process TCP run under a collector.
func TestObsLiveTCP(t *testing.T) {
	_, col, base, dumps := runLiveJob(t, "tcp", 0, 0, collector.Config{})

	st := getStatus(t, base)
	if !st.Complete || !st.ExitOK {
		t.Fatalf("final status not complete-ok: %+v", st)
	}
	for _, row := range st.Ranks {
		if row.State != collector.StateDone {
			t.Fatalf("rank %d final state = %q, want done", row.Rank, row.State)
		}
		if row.Events == 0 {
			t.Fatalf("rank %d shows no events", row.Rank)
		}
	}
	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after clean completion = %d", code)
	}
	merged := assertMergedBytes(t, base, dumps)
	assertLiveMatchesPostHoc(t, col, merged)
}

// partialStream extracts one rank's stream from the collector's live
// view as a standalone dump — the only record of a killed rank's
// events, which died with the process before any dump file was
// written.
func partialStream(t *testing.T, col *collector.Collector, rank int) *obs.Dump {
	t.Helper()
	live := col.LiveDump()
	for _, rd := range live.Ranks {
		if rd.Rank == rank {
			return &obs.Dump{Version: live.Version, Ranks: []obs.RankDump{rd}}
		}
	}
	t.Fatalf("rank %d absent from the collector's live view", rank)
	return nil
}

// TestObsLiveSIGKILL: a worker is SIGKILLed mid-run. The collector
// must mark it dead (it can never final-flush), the run must still
// complete ok via lease recovery, and the merged trace — with the
// killed rank's stream truncation-marked — must still match post-hoc
// merging and analysis.
func TestObsLiveSIGKILL(t *testing.T) {
	const killRank = 2
	stats, col, base, dumps := runLiveJob(t, "tcp", killRank, 250*time.Millisecond,
		collector.Config{WarnAfter: 500 * time.Millisecond, DeadAfter: 2 * time.Second})

	if stats.WorkersLost < 1 {
		t.Errorf("kill landed after the run finished: WorkersLost=%d (expected ≥ 1)", stats.WorkersLost)
	}

	// The killed rank's heartbeat lag only grows; wait for "dead".
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, base)
		var state string
		for _, row := range st.Ranks {
			if row.Rank == killRank {
				state = row.State
			}
		}
		if state == collector.StateDead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank %d never turned dead (state %q)", killRank, state)
		}
		time.Sleep(100 * time.Millisecond)
	}

	st := getStatus(t, base)
	if !st.Complete || !st.ExitOK {
		t.Fatalf("run did not complete ok despite lease recovery: %+v", st)
	}
	// A completed-ok run is healthy even with a dead (recovered-from)
	// rank in the roster.
	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after recovered completion = %d", code)
	}
	// The master observed the loss: lease expiries were attributed to
	// the killed worker.
	for _, row := range st.Ranks {
		if row.Rank == killRank && row.LeaseExpires == 0 {
			t.Errorf("killed rank shows no lease expiries")
		}
	}

	assertMergedBytes(t, base, dumps)

	// The live analysis additionally has whatever the killed rank
	// streamed before dying — events no dump file ever recorded. Fold
	// that prefix into the post-hoc merge so both sides analyze the
	// same trace through different machinery.
	survivors := make([]*obs.Dump, 0, jobSize)
	for r := 0; r < jobSize; r++ {
		if d, ok := dumps[r]; ok {
			survivors = append(survivors, d)
		}
	}
	full, err := obs.MergeDumps(append(survivors, partialStream(t, col, killRank))...)
	if err != nil {
		t.Fatal(err)
	}
	assertLiveMatchesPostHoc(t, col, full)
}
