package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Record is one FASTA record.
type Record struct {
	Name  string
	Bases []byte
}

// ReadFASTA parses all records from r. Sequence lines are concatenated;
// bases are canonicalized with Clean.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var recs []Record
	var cur *Record
	lineno := 0
	for sc.Scan() {
		lineno++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			recs = append(recs, Record{Name: string(bytes.TrimSpace(line[1:]))})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fasta: line %d: sequence data before first header", lineno)
		}
		cur.Bases = append(cur.Bases, Clean(line)...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fasta: %w", err)
	}
	return recs, nil
}

// WriteFASTA writes records to w, wrapping sequence lines at width
// columns (60 if width ≤ 0).
func WriteFASTA(w io.Writer, recs []Record, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		for i := 0; i < len(rec.Bases); i += width {
			end := i + width
			if end > len(rec.Bases) {
				end = len(rec.Bases)
			}
			if _, err := bw.Write(rec.Bases[i:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
