package diskstore

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/seq"
)

// Write materializes frags as a disk store under dir (created if
// missing). The data file is streamed fragment by fragment and fsynced
// before the index is published via temp-file + rename, so a crash
// mid-write never leaves a valid-looking but torn store. Writing is a
// pure function of the fragment bases and names: the same input always
// produces byte-identical store files, which is what lets a resumed
// pipeline verify the store against its manifest checksum.
func Write(dir string, frags []*seq.Fragment) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	dataPath := filepath.Join(dir, DataFile)
	dataTmp := dataPath + ".tmp"
	df, err := os.Create(dataTmp)
	if err != nil {
		return err
	}
	defer os.Remove(dataTmp)

	entries := make([]entry, len(frags))
	var names, maskBlob []byte
	var dataOff, totalBases uint64
	bw := bufio.NewWriterSize(df, 1<<16)
	var packBuf []byte
	for i, f := range frags {
		if len(f.Bases) > 1<<31-1 {
			df.Close()
			return fmt.Errorf("diskstore: fragment %d is %d bases, beyond the u32 entry limit", i, len(f.Bases))
		}
		packBuf = packBuf[:0]
		packed, masked := packBases(packBuf, f.Bases)
		packBuf = packed
		if _, err := bw.Write(packed); err != nil {
			df.Close()
			return err
		}
		e := &entries[i]
		e.dataOff = dataOff
		e.baseLen = uint32(len(f.Bases))
		e.nameOff = uint64(len(names))
		e.nameLen = uint32(len(f.Name))
		e.maskOff = uint64(len(maskBlob))
		names = append(names, f.Name...)
		maskBlob = encodeMask(maskBlob, masked)
		e.maskLen = uint32(uint64(len(maskBlob)) - e.maskOff)
		dataOff += uint64(len(packed))
		totalBases += uint64(len(f.Bases))
	}
	if err := bw.Flush(); err != nil {
		df.Close()
		return err
	}
	if err := df.Sync(); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}
	if err := os.Rename(dataTmp, dataPath); err != nil {
		return err
	}

	h := header{
		n:          uint64(len(frags)),
		totalBases: totalBases,
		dataSize:   dataOff,
		namesLen:   uint64(len(names)),
		maskLen:    uint64(len(maskBlob)),
	}
	body := make([]byte, 0, len(frags)*entrySize+len(names)+len(maskBlob))
	var eb [entrySize]byte
	for i := range entries {
		entries[i].encode(eb[:])
		body = append(body, eb[:]...)
	}
	body = append(body, names...)
	body = append(body, maskBlob...)
	h.bodyCRC = crcBody(body)

	idxPath := filepath.Join(dir, IndexFile)
	idxTmp := idxPath + ".tmp"
	xf, err := os.Create(idxTmp)
	if err != nil {
		return err
	}
	defer os.Remove(idxTmp)
	if _, err := xf.Write(h.encode()); err != nil {
		xf.Close()
		return err
	}
	if _, err := xf.Write(body); err != nil {
		xf.Close()
		return err
	}
	if err := xf.Sync(); err != nil {
		xf.Close()
		return err
	}
	if err := xf.Close(); err != nil {
		return err
	}
	return os.Rename(idxTmp, idxPath)
}
