package diskstore

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/seq"
)

// DefaultCacheBytes is the block-cache budget when the caller does not
// set one: 16 blocks of 64 KiB.
const DefaultCacheBytes = 1 << 20

// Options configures Open.
type Options struct {
	// CacheBytes bounds the block cache (default DefaultCacheBytes).
	// The cache holds ceil(CacheBytes/64KiB) buffers, so this — not
	// the input size — is the store's resident base memory.
	CacheBytes int64
}

// Store is the read side of a disk store. It implements seq.Seqs: the
// index, names and mask exception lists are resident (O(fragments +
// masked positions)); the packed bases are paged in on demand through
// the bounded LRU block cache. Seq returns a fresh slice per call, so
// concurrent readers (assembly workers, in-process ranks) are safe.
type Store struct {
	f          *os.File
	entries    []entry
	names      []byte
	mask       []byte
	totalBases int
	cache      *blockCache
}

// Open validates and opens the store written under dir. The index
// header, body CRC, data-file size and every entry's bounds (offsets,
// name/mask ranges, mask varint lists) are checked before the first
// Seq call, so a truncated or corrupt store is refused here rather
// than misread later.
func Open(dir string, opts Options) (*Store, error) {
	idx, err := os.ReadFile(filepath.Join(dir, IndexFile))
	if err != nil {
		return nil, err
	}
	h, err := decodeHeader(idx)
	if err != nil {
		return nil, err
	}
	body := idx[headerSize:]
	if h.n > uint64(len(body))/entrySize {
		return nil, fmt.Errorf("diskstore: index claims %d fragments, body holds at most %d", h.n, uint64(len(body))/entrySize)
	}
	if h.namesLen > uint64(len(body)) || h.maskLen > uint64(len(body)) {
		return nil, fmt.Errorf("diskstore: blob lengths exceed index size")
	}
	if want := h.n*entrySize + h.namesLen + h.maskLen; uint64(len(body)) != want {
		return nil, fmt.Errorf("diskstore: index body is %d bytes, header implies %d", len(body), want)
	}
	if got := crcBody(body); got != h.bodyCRC {
		return nil, fmt.Errorf("diskstore: index body CRC mismatch: got %08x, want %08x", got, h.bodyCRC)
	}

	names := body[h.n*entrySize : h.n*entrySize+h.namesLen]
	mask := body[h.n*entrySize+h.namesLen:]
	entries := make([]entry, h.n)
	var sumBases uint64
	for i := range entries {
		e := decodeEntry(body[uint64(i)*entrySize:])
		if e.dataOff > h.dataSize || packedLen(e.baseLen) > h.dataSize-e.dataOff {
			return nil, fmt.Errorf("diskstore: entry %d bases [%d, +%d) out of data range %d", i, e.dataOff, packedLen(e.baseLen), h.dataSize)
		}
		if e.nameOff > h.namesLen || uint64(e.nameLen) > h.namesLen-e.nameOff {
			return nil, fmt.Errorf("diskstore: entry %d name out of range", i)
		}
		if e.maskOff > h.maskLen || uint64(e.maskLen) > h.maskLen-e.maskOff {
			return nil, fmt.Errorf("diskstore: entry %d mask out of range", i)
		}
		if _, err := validateMask(mask[e.maskOff:e.maskOff+uint64(e.maskLen)], e.baseLen); err != nil {
			return nil, fmt.Errorf("diskstore: entry %d: %w", i, err)
		}
		sumBases += uint64(e.baseLen)
		entries[i] = e
	}
	if sumBases != h.totalBases {
		return nil, fmt.Errorf("diskstore: entries sum to %d bases, header says %d", sumBases, h.totalBases)
	}
	if h.totalBases > 1<<62 {
		return nil, fmt.Errorf("diskstore: implausible total bases %d", h.totalBases)
	}

	f, err := os.Open(filepath.Join(dir, DataFile))
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if uint64(st.Size()) != h.dataSize {
		f.Close()
		return nil, fmt.Errorf("diskstore: data file is %d bytes, index expects %d (torn or truncated store)", st.Size(), h.dataSize)
	}

	cacheBytes := opts.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = DefaultCacheBytes
	}
	return &Store{
		f:          f,
		entries:    entries,
		names:      names,
		mask:       mask,
		totalBases: int(h.totalBases),
		cache:      newBlockCache(f, int64(h.dataSize), cacheBytes),
	}, nil
}

// Create writes frags under dir and opens the result — the common
// "materialize this run's store" path.
func Create(dir string, frags []*seq.Fragment, opts Options) (*Store, error) {
	if err := Write(dir, frags); err != nil {
		return nil, err
	}
	return Open(dir, opts)
}

// Close releases the data-file handle. Seq must not be called after.
func (s *Store) Close() error { return s.f.Close() }

// N returns the number of fragments.
func (s *Store) N() int { return len(s.entries) }

// NumSeqs returns the size of the sequence index space (2n).
func (s *Store) NumSeqs() int { return 2 * len(s.entries) }

// TotalBases returns the total forward-strand length in bases.
func (s *Store) TotalBases() int { return s.totalBases }

// FragID maps a sequence ID to its fragment ID.
func (s *Store) FragID(sid int) int {
	if n := len(s.entries); sid >= n {
		return sid - n
	}
	return sid
}

// IsRC reports whether sid denotes a reverse-complemented sequence.
func (s *Store) IsRC(sid int) bool { return sid >= len(s.entries) }

// RCID returns the sequence ID of the opposite orientation of sid.
func (s *Store) RCID(sid int) int {
	n := len(s.entries)
	if sid < n {
		return sid + n
	}
	return sid - n
}

// SeqLen returns the length of sequence sid in bases.
func (s *Store) SeqLen(sid int) int {
	return int(s.entries[s.FragID(sid)].baseLen)
}

// FragName returns the name of fragment i.
func (s *Store) FragName(i int) string {
	e := s.entries[i]
	return string(s.names[e.nameOff : e.nameOff+uint64(e.nameLen)])
}

// SeqName returns a human-readable name for a sequence ID.
func (s *Store) SeqName(sid int) string {
	name := s.FragName(s.FragID(sid))
	if s.IsRC(sid) {
		return fmt.Sprintf("%s(rc)", name)
	}
	return name
}

// Seq returns the bases of sequence sid, decoding the 2-bit packed
// forward strand from the block cache, re-applying the 'N' mask, and
// reverse-complementing in place for RC IDs. The result is freshly
// allocated per call and safe for the caller to hold.
func (s *Store) Seq(sid int) []byte {
	fid := s.FragID(sid)
	e := s.entries[fid]
	out := make([]byte, e.baseLen)
	if e.baseLen > 0 {
		packed := make([]byte, packedLen(e.baseLen))
		if err := s.cache.readAt(packed, int64(e.dataOff)); err != nil {
			// Bounds were validated at Open; a failure here is an I/O
			// error on a file that existed moments ago — unrecoverable
			// for a read-path with no error channel.
			panic(fmt.Sprintf("diskstore: read bases of fragment %d: %v", fid, err))
		}
		unpackBases(out, packed)
		applyMask(out, s.mask[e.maskOff:e.maskOff+uint64(e.maskLen)])
	}
	if s.IsRC(sid) {
		seq.ReverseComplementInPlace(out)
	}
	return out
}

// CacheStats reports block-cache hits and misses since Open.
func (s *Store) CacheStats() (hits, misses uint64) { return s.cache.stats() }

func crcBody(body []byte) uint32 { return crc32.Checksum(body, castagnoli) }
