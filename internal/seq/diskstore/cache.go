package diskstore

import (
	"container/list"
	"fmt"
	"os"
	"sync"
)

// blockSize is the cache page size. 64 KiB amortizes syscall cost over
// ~256K packed bases per read while keeping even a minimal budget
// (one block) useful for the sequential scans GST construction does.
const blockSize = 64 << 10

// blockCache pages the data file through a bounded LRU of fixed-size
// blocks. It is the only resident memory proportional to anything —
// and it is proportional to its budget, not to the input.
type blockCache struct {
	f    *os.File
	size int64 // data file size; the final block may be short

	mu     sync.Mutex
	max    int // max resident blocks, ≥ 1
	lru    *list.List
	byOff  map[int64]*list.Element
	hits   uint64
	misses uint64
}

type cacheBlock struct {
	off int64
	b   []byte
}

func newBlockCache(f *os.File, size int64, budgetBytes int64) *blockCache {
	max := int(budgetBytes / blockSize)
	if max < 1 {
		max = 1
	}
	return &blockCache{
		f:     f,
		size:  size,
		max:   max,
		lru:   list.New(),
		byOff: make(map[int64]*list.Element),
	}
}

// readAt fills dst from the data file at off, faulting blocks in as
// needed. Offsets are pre-validated by Open, so running past EOF is a
// real I/O error, not a caller bug.
func (c *blockCache) readAt(dst []byte, off int64) error {
	for len(dst) > 0 {
		blockOff := off - off%blockSize
		b, err := c.block(blockOff)
		if err != nil {
			return err
		}
		in := b[off-blockOff:]
		n := copy(dst, in)
		if n == 0 {
			return fmt.Errorf("diskstore: read past end of data file at offset %d", off)
		}
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}

// block returns the cached block at blockOff, reading and inserting it
// on a miss and evicting from the LRU tail past the budget.
func (c *blockCache) block(blockOff int64) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byOff[blockOff]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		return el.Value.(*cacheBlock).b, nil
	}
	c.misses++
	n := blockSize
	if rem := c.size - blockOff; rem < int64(n) {
		n = int(rem)
	}
	if n <= 0 {
		return nil, fmt.Errorf("diskstore: block offset %d beyond data size %d", blockOff, c.size)
	}
	b := make([]byte, n)
	if _, err := c.f.ReadAt(b, blockOff); err != nil {
		return nil, err
	}
	el := c.lru.PushFront(&cacheBlock{off: blockOff, b: b})
	c.byOff[blockOff] = el
	for c.lru.Len() > c.max {
		tail := c.lru.Back()
		delete(c.byOff, tail.Value.(*cacheBlock).off)
		c.lru.Remove(tail)
	}
	return b, nil
}

func (c *blockCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
