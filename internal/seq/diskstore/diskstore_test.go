package diskstore

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/seq"
)

// sampleFrags is a small fixed fragment set hitting the format's edge
// cases: empty, length 1..5 (every packing remainder), all-N, N at
// both ends, and a fragment longer than one cache block's worth of
// packed bases when the cache budget is minimal.
func sampleFrags() []*seq.Fragment {
	long := bytes.Repeat([]byte("ACGTN"), 200)
	return []*seq.Fragment{
		{Name: "empty", Bases: []byte{}},
		{Name: "a", Bases: []byte("A")},
		{Name: "tt", Bases: []byte("TT")},
		{Name: "odd3", Bases: []byte("GCN")},
		{Name: "even4", Bases: []byte("ACGT")},
		{Name: "odd5", Bases: []byte("NACGT")},
		{Name: "allN", Bases: []byte("NNNNNNN")},
		{Name: "edges", Bases: []byte("NACGTACGTN")},
		{Name: "long acgtn run", Bases: long},
	}
}

// writeSample materializes sampleFrags in a temp dir and returns the
// dir plus the raw index and data bytes.
func writeSample(t *testing.T) (dir string, idx, data []byte) {
	t.Helper()
	dir = t.TempDir()
	if err := Write(dir, sampleFrags()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	idx, err := os.ReadFile(filepath.Join(dir, IndexFile))
	if err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, DataFile))
	if err != nil {
		t.Fatal(err)
	}
	return dir, idx, data
}

// patchCRC recomputes the body CRC after a test mangles index bytes,
// so corruption seeds exercise the deep validation paths rather than
// bouncing off the checksum.
func patchCRC(idx []byte) {
	binary.LittleEndian.PutUint32(idx[48:], crcBody(idx[headerSize:]))
}

// randomFrags draws nf fragments with random lengths (including odd
// remainders), ~5% masked positions, and occasional pathological
// shapes, all from a fixed seed.
func randomFrags(rng *rand.Rand, nf int) []*seq.Fragment {
	frags := make([]*seq.Fragment, nf)
	for i := range frags {
		n := rng.Intn(258)
		switch rng.Intn(10) {
		case 0:
			n = 0
		case 1:
			n = 1 + rng.Intn(4)
		}
		b := make([]byte, n)
		for j := range b {
			if rng.Float64() < 0.05 {
				b[j] = seq.Masked
			} else {
				b[j] = seq.Base(rng.Intn(4))
			}
		}
		frags[i] = &seq.Fragment{Name: string(rune('a'+i%26)) + "frag", Bases: b}
	}
	return frags
}

// TestCodecRoundTrip: the 2-bit codec plus mask exceptions must
// round-trip any {A,C,G,T,N} sequence exactly, at every length mod 4.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, f := range append(sampleFrags(), randomFrags(rng, 200)...) {
		packed, masked := packBases(nil, f.Bases)
		if want := int(packedLen(uint32(len(f.Bases)))); len(packed) != want {
			t.Fatalf("%s: packed %d bytes, want %d", f.Name, len(packed), want)
		}
		maskBlob := encodeMask(nil, masked)
		if _, err := validateMask(maskBlob, uint32(len(f.Bases))); err != nil {
			t.Fatalf("%s: own mask blob rejected: %v", f.Name, err)
		}
		out := make([]byte, len(f.Bases))
		unpackBases(out, packed)
		applyMask(out, maskBlob)
		if !bytes.Equal(out, f.Bases) {
			t.Fatalf("%s: round trip changed bases:\n got %q\nwant %q", f.Name, out, f.Bases)
		}
	}
}

// TestStoreEquivalence: every seq.Seqs accessor of the disk store must
// agree byte-for-byte with the in-memory Store over all 2n sequence
// IDs, on randomized inputs, in random access order, with a one-block
// cache forcing constant eviction.
func TestStoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 5; round++ {
		frags := randomFrags(rng, 1+rng.Intn(120))
		mem := seq.NewStore(frags)
		disk, err := Create(t.TempDir(), frags, Options{CacheBytes: 1})
		if err != nil {
			t.Fatalf("round %d: Create: %v", round, err)
		}
		if disk.N() != mem.N() || disk.NumSeqs() != mem.NumSeqs() || disk.TotalBases() != mem.TotalBases() {
			t.Fatalf("round %d: shape mismatch: N %d/%d NumSeqs %d/%d TotalBases %d/%d",
				round, disk.N(), mem.N(), disk.NumSeqs(), mem.NumSeqs(), disk.TotalBases(), mem.TotalBases())
		}
		order := rng.Perm(mem.NumSeqs())
		for _, sid := range order {
			if got, want := disk.Seq(sid), mem.Seq(sid); !bytes.Equal(got, want) {
				t.Fatalf("round %d: Seq(%d):\n got %q\nwant %q", round, sid, got, want)
			}
			if got, want := disk.SeqLen(sid), mem.SeqLen(sid); got != want {
				t.Fatalf("round %d: SeqLen(%d) = %d, want %d", round, sid, got, want)
			}
			if got, want := disk.SeqName(sid), mem.SeqName(sid); got != want {
				t.Fatalf("round %d: SeqName(%d) = %q, want %q", round, sid, got, want)
			}
			if disk.FragID(sid) != mem.FragID(sid) || disk.IsRC(sid) != mem.IsRC(sid) || disk.RCID(sid) != mem.RCID(sid) {
				t.Fatalf("round %d: ID mapping mismatch at sid %d", round, sid)
			}
		}
		for i := 0; i < mem.N(); i++ {
			if got, want := disk.FragName(i), mem.FragName(i); got != want {
				t.Fatalf("round %d: FragName(%d) = %q, want %q", round, i, got, want)
			}
		}
		hits, misses := disk.CacheStats()
		if hits+misses == 0 && mem.TotalBases() > 0 {
			t.Fatalf("round %d: cache never touched despite %d bases read", round, mem.TotalBases())
		}
		disk.Close()
	}
}

// TestWriteDeterministic: the store files must be a pure function of
// the fragments — the resume path verifies them against manifest
// checksums.
func TestWriteDeterministic(t *testing.T) {
	_, idx1, data1 := writeSample(t)
	_, idx2, data2 := writeSample(t)
	if !bytes.Equal(idx1, idx2) || !bytes.Equal(data1, data2) {
		t.Fatal("two writes of the same fragments produced different bytes")
	}
}

// TestOpenRejectsCorruption: a representative set of mangled stores
// must be refused at Open, before any Seq call can go wrong.
func TestOpenRejectsCorruption(t *testing.T) {
	_, idx, data := writeSample(t)
	cases := []struct {
		name   string
		mangle func(idx, data []byte) (mi, md []byte)
	}{
		{"truncated header", func(i, d []byte) ([]byte, []byte) { return i[:headerSize-4], d }},
		{"bad magic", func(i, d []byte) ([]byte, []byte) { i[0] = 'X'; return i, d }},
		{"bad version", func(i, d []byte) ([]byte, []byte) { i[4] = 99; return i, d }},
		{"flipped body byte", func(i, d []byte) ([]byte, []byte) { i[headerSize+3] ^= 0x40; return i, d }},
		{"truncated entries", func(i, d []byte) ([]byte, []byte) { return i[:headerSize+entrySize], d }},
		{"entry offset oob", func(i, d []byte) ([]byte, []byte) {
			binary.LittleEndian.PutUint64(i[headerSize+2*entrySize:], 1<<60)
			patchCRC(i)
			return i, d
		}},
		{"name range oob", func(i, d []byte) ([]byte, []byte) {
			binary.LittleEndian.PutUint32(i[headerSize+20:], 1<<30)
			patchCRC(i)
			return i, d
		}},
		{"mask position oob", func(i, d []byte) ([]byte, []byte) {
			// Fragment "a" (len 1, no mask) gains a mask entry pointing
			// into the blob at a position ≥ its length.
			binary.LittleEndian.PutUint32(i[headerSize+entrySize+32:], 1)
			patchCRC(i)
			return i, d
		}},
		{"total bases mismatch", func(i, d []byte) ([]byte, []byte) {
			binary.LittleEndian.PutUint64(i[16:], binary.LittleEndian.Uint64(i[16:])+1)
			patchCRC(i)
			return i, d
		}},
		{"torn final data block", func(i, d []byte) ([]byte, []byte) { return i, d[:len(d)-1] }},
		{"extended data file", func(i, d []byte) ([]byte, []byte) { return i, append(d, 0) }},
		{"empty index", func(i, d []byte) ([]byte, []byte) { return nil, d }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mi, md := tc.mangle(bytes.Clone(idx), bytes.Clone(data))
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, IndexFile), mi, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, DataFile), md, 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := Open(dir, Options{})
			if err == nil {
				st.Close()
				t.Fatal("Open accepted a corrupt store")
			}
		})
	}
}

// TestConcurrentReaders: Seq must be safe under concurrent access with
// a tiny cache (assembly workers and in-process ranks share a store).
func TestConcurrentReaders(t *testing.T) {
	frags := sampleFrags()
	mem := seq.NewStore(frags)
	disk, err := Create(t.TempDir(), frags, Options{CacheBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				sid := rng.Intn(disk.NumSeqs())
				if !bytes.Equal(disk.Seq(sid), mem.Seq(sid)) {
					done <- os.ErrInvalid
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal("concurrent reader saw wrong bases")
		}
	}
}

var _ seq.Seqs = (*Store)(nil)
var _ seq.Seqs = (*seq.Store)(nil)
