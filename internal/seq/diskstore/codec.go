package diskstore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/seq"
)

// unpack4 maps a packed byte to its four decoded bases, precomputed so
// the hot decode loop is a table copy instead of bit twiddling.
var unpack4 [256][4]byte

func init() {
	for b := 0; b < 256; b++ {
		for j := 0; j < 4; j++ {
			unpack4[b][j] = seq.Base((b >> (2 * j)) & 3)
		}
	}
}

// packBases 2-bit packs s, appending to dst. Masked ('N' or anything
// non-ACGT) positions pack as code 0 and are returned as a sorted
// position list for the mask blob.
func packBases(dst []byte, s []byte) (packed []byte, masked []uint32) {
	var cur byte
	for j, b := range s {
		c := seq.Code(b)
		if c < 0 {
			c = 0
			masked = append(masked, uint32(j))
		}
		cur |= byte(c) << (2 * (j % 4))
		if j%4 == 3 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if len(s)%4 != 0 {
		dst = append(dst, cur)
	}
	return dst, masked
}

// unpackBases decodes baseLen bases from packed into out (which must
// have length baseLen).
func unpackBases(out []byte, packed []byte) {
	baseLen := len(out)
	j := 0
	for ; j+4 <= baseLen; j += 4 {
		q := unpack4[packed[j/4]]
		copy(out[j:j+4], q[:])
	}
	if j < baseLen {
		q := unpack4[packed[j/4]]
		copy(out[j:], q[:baseLen-j])
	}
}

// encodeMask appends the uvarint delta encoding of the sorted masked
// position list to dst.
func encodeMask(dst []byte, masked []uint32) []byte {
	prev := uint32(0)
	for i, p := range masked {
		d := uint64(p)
		if i > 0 {
			d = uint64(p - prev)
		}
		dst = binary.AppendUvarint(dst, d)
		prev = p
	}
	return dst
}

// validateMask walks one fragment's mask list, checking it consumes
// exactly the entry's bytes with strictly increasing positions below
// baseLen. Returns the number of masked positions.
func validateMask(b []byte, baseLen uint32) (int, error) {
	count := 0
	pos := uint64(0)
	for len(b) > 0 {
		d, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("diskstore: corrupt mask varint")
		}
		b = b[n:]
		if count == 0 {
			pos = d
		} else {
			if d == 0 {
				return 0, fmt.Errorf("diskstore: mask positions not strictly increasing")
			}
			pos += d
		}
		if pos >= uint64(baseLen) {
			return 0, fmt.Errorf("diskstore: mask position %d out of range (len %d)", pos, baseLen)
		}
		count++
	}
	return count, nil
}

// applyMask overwrites the masked positions of out with 'N' per the
// fragment's (already validated) mask list.
func applyMask(out []byte, mask []byte) {
	pos := uint64(0)
	first := true
	for len(mask) > 0 {
		d, n := binary.Uvarint(mask)
		mask = mask[n:]
		if first {
			pos = d
			first = false
		} else {
			pos += d
		}
		out[pos] = seq.Masked
	}
}
