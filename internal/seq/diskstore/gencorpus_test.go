package diskstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateFuzzCorpus regenerates the committed seed corpora under
// testdata/fuzz when DISKSTORE_GEN_CORPUS=1 is set. The seeds are a
// deterministic function of sampleFrags, so the corpora stay in sync
// with format changes by re-running:
//
//	DISKSTORE_GEN_CORPUS=1 go test -run TestGenerateFuzzCorpus ./internal/seq/diskstore
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("DISKSTORE_GEN_CORPUS") != "1" {
		t.Skip("set DISKSTORE_GEN_CORPUS=1 to regenerate committed corpora")
	}
	_, idx, data := writeSample(t)

	mangle := func(fn func(b []byte) []byte) []byte {
		return fn(append([]byte(nil), idx...))
	}
	idxSeeds := map[string][]byte{
		"seed-valid":            idx,
		"seed-truncated-header": idx[:headerSize-4],
		"seed-header-only":      idx[:headerSize],
		"seed-truncated-entries": mangle(func(b []byte) []byte {
			return b[:headerSize+entrySize+entrySize/2]
		}),
		"seed-bad-magic": mangle(func(b []byte) []byte { b[0] = 'X'; return b }),
		"seed-bad-crc":   mangle(func(b []byte) []byte { b[headerSize+1] ^= 0x10; return b }),
		"seed-offset-oob-fixed-crc": mangle(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[headerSize+2*entrySize:], 1<<60)
			patchCRC(b)
			return b
		}),
		"seed-name-oob-fixed-crc": mangle(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[headerSize+20:], 1<<30)
			patchCRC(b)
			return b
		}),
		"seed-mask-oob-fixed-crc": mangle(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[headerSize+entrySize+32:], 1)
			patchCRC(b)
			return b
		}),
		"seed-bases-mismatch-fixed-crc": mangle(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], binary.LittleEndian.Uint64(b[16:])+1)
			patchCRC(b)
			return b
		}),
	}
	dataSeeds := map[string][]byte{
		"seed-valid":      data,
		"seed-torn-block": data[:len(data)-1],
		"seed-extended":   append(append([]byte(nil), data...), 0),
		"seed-zeroed":     make([]byte, len(data)),
		"seed-empty":      {},
	}

	write := func(target string, seeds map[string][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, b := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzOpenIndex", idxSeeds)
	write("FuzzReadData", dataSeeds)
}
