// Package diskstore is the out-of-core sequence store: the same 2n
// sequence-ID contract as the in-memory seq.Store, but with the bases
// 2-bit packed in an append-only data file and paged in through a
// small bounded LRU of block buffers. Only the fixed-width index, the
// fragment names and the 'N'-mask exception lists live in RAM —
// O(fragments + masked positions), independent of total bases — so
// clustering a genome is no longer capped by how many bases fit in
// memory (the paper's space-critical regime, Section 3).
//
// On-disk layout (two files in a directory):
//
//	store.data   packed bases, fragment i at entries[i].dataOff,
//	             ceil(baseLen/4) bytes, 4 bases per byte, base j in
//	             bit 2*(j%4) of byte j/4; 'N' packs as 0 with the
//	             position recorded in the mask blob
//	store.idx    header | n fixed-width entries | names blob | mask blob
//
// Index header (52 bytes, little endian):
//
//	magic "asq1" | version u32 | n u64 | totalBases u64 |
//	dataSize u64 | namesLen u64 | maskLen u64 | bodyCRC u32 (CRC32C
//	of everything after the header)
//
// Entry (36 bytes): dataOff u64 | baseLen u32 | nameOff u64 |
// nameLen u32 | maskOff u64 | maskLen u32. Mask lists are uvarint
// deltas: first masked position absolute, then successive gaps (≥1),
// validated strictly increasing and < baseLen at Open.
//
// The data file is written first and fsynced; the index is published
// by temp-file + rename, so a torn write leaves either no index (the
// store does not exist yet) or a complete, checksummed one. Open
// validates the header, the index body CRC, the data-file size and
// every entry's bounds before returning, so a truncated or corrupt
// store is refused up front rather than misread later.
package diskstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// DataFile and IndexFile are the two store members inside the dir.
	DataFile  = "store.data"
	IndexFile = "store.idx"

	magic      = "asq1"
	version    = 1
	headerSize = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4
	entrySize  = 8 + 4 + 8 + 4 + 8 + 4
)

// castagnoli is the CRC32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// header is the decoded fixed part of the index file.
type header struct {
	n          uint64
	totalBases uint64
	dataSize   uint64
	namesLen   uint64
	maskLen    uint64
	bodyCRC    uint32
}

func (h header) encode() []byte {
	b := make([]byte, headerSize)
	copy(b, magic)
	binary.LittleEndian.PutUint32(b[4:], version)
	binary.LittleEndian.PutUint64(b[8:], h.n)
	binary.LittleEndian.PutUint64(b[16:], h.totalBases)
	binary.LittleEndian.PutUint64(b[24:], h.dataSize)
	binary.LittleEndian.PutUint64(b[32:], h.namesLen)
	binary.LittleEndian.PutUint64(b[40:], h.maskLen)
	binary.LittleEndian.PutUint32(b[48:], h.bodyCRC)
	return b
}

func decodeHeader(b []byte) (header, error) {
	var h header
	if len(b) < headerSize {
		return h, fmt.Errorf("diskstore: index truncated: %d bytes, want ≥ %d header bytes", len(b), headerSize)
	}
	if string(b[:4]) != magic {
		return h, fmt.Errorf("diskstore: bad index magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != version {
		return h, fmt.Errorf("diskstore: unsupported index version %d", v)
	}
	h.n = binary.LittleEndian.Uint64(b[8:])
	h.totalBases = binary.LittleEndian.Uint64(b[16:])
	h.dataSize = binary.LittleEndian.Uint64(b[24:])
	h.namesLen = binary.LittleEndian.Uint64(b[32:])
	h.maskLen = binary.LittleEndian.Uint64(b[40:])
	h.bodyCRC = binary.LittleEndian.Uint32(b[48:])
	return h, nil
}

// entry is one fragment's index record.
type entry struct {
	dataOff  uint64
	baseLen  uint32
	nameOff  uint64
	nameLen  uint32
	maskOff  uint64
	maskLen  uint32
}

func (e entry) encode(b []byte) {
	binary.LittleEndian.PutUint64(b[0:], e.dataOff)
	binary.LittleEndian.PutUint32(b[8:], e.baseLen)
	binary.LittleEndian.PutUint64(b[12:], e.nameOff)
	binary.LittleEndian.PutUint32(b[20:], e.nameLen)
	binary.LittleEndian.PutUint64(b[24:], e.maskOff)
	binary.LittleEndian.PutUint32(b[32:], e.maskLen)
}

func decodeEntry(b []byte) entry {
	return entry{
		dataOff: binary.LittleEndian.Uint64(b[0:]),
		baseLen: binary.LittleEndian.Uint32(b[8:]),
		nameOff: binary.LittleEndian.Uint64(b[12:]),
		nameLen: binary.LittleEndian.Uint32(b[20:]),
		maskOff: binary.LittleEndian.Uint64(b[24:]),
		maskLen: binary.LittleEndian.Uint32(b[32:]),
	}
}

// packedLen returns the number of data-file bytes holding baseLen
// 2-bit packed bases.
func packedLen(baseLen uint32) uint64 { return (uint64(baseLen) + 3) / 4 }
