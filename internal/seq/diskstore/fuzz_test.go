package diskstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// writeStorePair lays idx/data down as a store directory.
func writeStorePair(t *testing.T, idx, data []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, IndexFile), idx, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, DataFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// drainStore exercises every accessor of an Open-accepted store; any
// out-of-bounds access or panic is a fuzz finding.
func drainStore(t *testing.T, st *Store) {
	t.Helper()
	defer st.Close()
	total := 0
	for sid := 0; sid < st.NumSeqs(); sid++ {
		b := st.Seq(sid)
		if len(b) != st.SeqLen(sid) {
			t.Fatalf("Seq(%d) length %d, SeqLen says %d", sid, len(b), st.SeqLen(sid))
		}
		_ = st.SeqName(sid)
		_ = st.FragID(sid)
		_ = st.RCID(sid)
		if !st.IsRC(sid) {
			total += len(b)
		}
	}
	if total != st.TotalBases() {
		t.Fatalf("forward seqs sum to %d bases, TotalBases says %d", total, st.TotalBases())
	}
	for i := 0; i < st.N(); i++ {
		_ = st.FragName(i)
	}
}

// FuzzOpenIndex: with the data file held fixed, an arbitrary index is
// either refused by Open or yields a store whose every accessor stays
// in bounds — no panics, no overreads, internally consistent totals.
func FuzzOpenIndex(f *testing.F) {
	_, idx, data := fuzzSample(f)
	f.Add(idx)
	f.Add(idx[:headerSize-4])
	f.Add(idx[:headerSize+entrySize])
	mangled := append([]byte(nil), idx...)
	binary.LittleEndian.PutUint64(mangled[headerSize:], 1<<60)
	binary.LittleEndian.PutUint32(mangled[48:], crcBody(mangled[headerSize:]))
	f.Add(mangled)
	f.Fuzz(func(t *testing.T, fuzzedIdx []byte) {
		dir := writeStorePair(t, fuzzedIdx, data)
		st, err := Open(dir, Options{CacheBytes: 1})
		if err != nil {
			return
		}
		drainStore(t, st)
	})
}

// FuzzReadData: with a valid index held fixed, arbitrary data-file
// bytes (truncated, extended, bit-flipped, torn final block) must be
// either refused at Open or decoded without panic or overread — bases
// may be garbage, access may not be.
func FuzzReadData(f *testing.F) {
	_, idx, data := fuzzSample(f)
	f.Add(data)
	f.Add(data[:len(data)-1])
	f.Add(append(append([]byte(nil), data...), 0))
	f.Add(make([]byte, len(data)))
	f.Fuzz(func(t *testing.T, fuzzedData []byte) {
		dir := writeStorePair(t, idx, fuzzedData)
		st, err := Open(dir, Options{CacheBytes: 1})
		if err != nil {
			return
		}
		drainStore(t, st)
	})
}

// fuzzSample writes the shared sample store once per fuzz target.
func fuzzSample(f *testing.F) (dir string, idx, data []byte) {
	f.Helper()
	dir = f.TempDir()
	if err := Write(dir, sampleFrags()); err != nil {
		f.Fatal(err)
	}
	var err error
	idx, err = os.ReadFile(filepath.Join(dir, IndexFile))
	if err != nil {
		f.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, DataFile))
	if err != nil {
		f.Fatal(err)
	}
	return dir, idx, data
}
