package seq

import "fmt"

// Fragment is one sequencing read with optional per-base quality and the
// ground-truth origin recorded by the simulator (nil for real data).
type Fragment struct {
	ID    int
	Name  string
	Bases []byte
	Qual  []byte // phred scores, same length as Bases, may be nil

	Origin *Origin
}

// Origin records where a simulated fragment was sampled from; used only
// for validation, never by the assembly algorithms themselves.
type Origin struct {
	Source  string // source sequence name (chromosome, species, BAC, ...)
	Start   int    // 0-based start on the source's forward strand
	End     int    // exclusive end
	Reverse bool   // true if the read is the reverse complement strand
	Region  int    // index of the gene island / region sampled, -1 if none
}

// Len returns the fragment length in bases.
func (f *Fragment) Len() int { return len(f.Bases) }

// Seqs is the sequence-ID contract every algorithmic layer reads
// through: n fragments exposed as 2n sequences, IDs 0..n-1 forward and
// n..2n-1 their reverse complements. It is implemented by the
// in-memory Store and by the disk-backed diskstore.Store, so the GST,
// pair generation, clustering and assembly are agnostic to whether the
// bases live in RAM or are paged in from disk.
type Seqs interface {
	// N returns the number of fragments.
	N() int
	// NumSeqs returns the size of the sequence index space (2n).
	NumSeqs() int
	// TotalBases returns the total forward-strand length in bases.
	TotalBases() int
	// Seq returns the bases of sequence sid. The returned slice must
	// not be mutated; disk-backed implementations may return a fresh
	// allocation per call.
	Seq(sid int) []byte
	// SeqLen returns len(Seq(sid)) without materializing the bases.
	SeqLen(sid int) int
	// FragName returns the name of fragment i.
	FragName(i int) string
	// FragID maps a sequence ID to its fragment ID.
	FragID(sid int) int
	// IsRC reports whether sid denotes a reverse-complemented sequence.
	IsRC(sid int) bool
	// RCID returns the sequence ID of the opposite orientation of sid.
	RCID(sid int) int
	// SeqName returns a human-readable name for a sequence ID.
	SeqName(sid int) string
}

// Store holds the input fragments of a clustering run and exposes a
// unified sequence index space of size 2n: sequence IDs 0..n-1 are the
// fragments in forward orientation and n..2n-1 their reverse
// complements, exactly the string set the paper builds its generalized
// suffix tree over (Section 5).
type Store struct {
	frags []*Fragment
	rc    [][]byte
	total int // total forward bases
}

// NewStore builds a store over frags, assigning IDs 0..n-1 in order and
// precomputing reverse complements.
func NewStore(frags []*Fragment) *Store {
	st := &Store{
		frags: frags,
		rc:    make([][]byte, len(frags)),
	}
	for i, f := range frags {
		f.ID = i
		st.rc[i] = ReverseComplement(f.Bases)
		st.total += len(f.Bases)
	}
	return st
}

// StoreFromRecords wraps plain FASTA records into a store.
func StoreFromRecords(recs []Record) *Store {
	frags := make([]*Fragment, len(recs))
	for i, r := range recs {
		frags[i] = &Fragment{Name: r.Name, Bases: r.Bases}
	}
	return NewStore(frags)
}

// N returns the number of fragments.
func (st *Store) N() int { return len(st.frags) }

// NumSeqs returns the size of the sequence index space (2n).
func (st *Store) NumSeqs() int { return 2 * len(st.frags) }

// TotalBases returns the total forward-strand length in bases.
func (st *Store) TotalBases() int { return st.total }

// Fragment returns fragment i.
func (st *Store) Fragment(i int) *Fragment { return st.frags[i] }

// Fragments returns the underlying fragment slice (shared, do not mutate).
func (st *Store) Fragments() []*Fragment { return st.frags }

// Seq returns the bases of sequence sid: the forward fragment for
// sid < n, its reverse complement otherwise. The returned slice is
// shared and must not be mutated.
func (st *Store) Seq(sid int) []byte {
	n := len(st.frags)
	if sid < n {
		return st.frags[sid].Bases
	}
	return st.rc[sid-n]
}

// SeqLen returns the length of sequence sid in bases.
func (st *Store) SeqLen(sid int) int {
	return len(st.frags[st.FragID(sid)].Bases)
}

// FragName returns the name of fragment i.
func (st *Store) FragName(i int) string { return st.frags[i].Name }

// FragID maps a sequence ID to its fragment ID.
func (st *Store) FragID(sid int) int {
	if n := len(st.frags); sid >= n {
		return sid - n
	}
	return sid
}

// IsRC reports whether sid denotes a reverse-complemented sequence.
func (st *Store) IsRC(sid int) bool { return sid >= len(st.frags) }

// RCID returns the sequence ID of the opposite orientation of sid.
func (st *Store) RCID(sid int) int {
	n := len(st.frags)
	if sid < n {
		return sid + n
	}
	return sid - n
}

// SeqName returns a human-readable name for a sequence ID.
func (st *Store) SeqName(sid int) string {
	f := st.frags[st.FragID(sid)]
	if st.IsRC(sid) {
		return fmt.Sprintf("%s(rc)", f.Name)
	}
	return f.Name
}
