package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// Qual-file support: the Sanger-era companion format to FASTA (as
// consumed by phrap, CAP3 and Lucy) — same headers, but records hold
// space-separated per-base phred scores instead of bases.

// QualRecord is one quality record.
type QualRecord struct {
	Name  string
	Quals []byte
}

// ReadQual parses a .qual file. Scores are clamped to [0, 93].
func ReadQual(r io.Reader) ([]QualRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var recs []QualRecord
	var cur *QualRecord
	lineno := 0
	for sc.Scan() {
		lineno++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			recs = append(recs, QualRecord{Name: string(bytes.TrimSpace(line[1:]))})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("qual: line %d: scores before first header", lineno)
		}
		for _, f := range bytes.Fields(line) {
			v, err := strconv.Atoi(string(f))
			if err != nil {
				return nil, fmt.Errorf("qual: line %d: bad score %q", lineno, f)
			}
			if v < 0 {
				v = 0
			}
			if v > 93 {
				v = 93
			}
			cur.Quals = append(cur.Quals, byte(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("qual: %w", err)
	}
	return recs, nil
}

// WriteQual writes records in .qual format, perLine scores per line
// (20 if ≤ 0).
func WriteQual(w io.Writer, recs []QualRecord, perLine int) error {
	if perLine <= 0 {
		perLine = 20
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		for i, q := range rec.Quals {
			if i > 0 {
				if i%perLine == 0 {
					bw.WriteByte('\n')
				} else {
					bw.WriteByte(' ')
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(q))); err != nil {
				return err
			}
		}
		if len(rec.Quals) > 0 {
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// AttachQuals matches quality records to fragments by name (the part
// of the FASTA header before the first space) and attaches them.
// Fragments with no matching record keep nil qualities; a matching
// record with the wrong length is an error.
func AttachQuals(frags []*Fragment, quals []QualRecord) error {
	byName := make(map[string][]byte, len(quals))
	for _, q := range quals {
		byName[firstWord(q.Name)] = q.Quals
	}
	for _, f := range frags {
		q, ok := byName[firstWord(f.Name)]
		if !ok {
			continue
		}
		if len(q) != len(f.Bases) {
			return fmt.Errorf("qual: %s: %d scores for %d bases", f.Name, len(q), len(f.Bases))
		}
		f.Qual = q
	}
	return nil
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i]
		}
	}
	return s
}
