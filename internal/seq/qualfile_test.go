package seq

import (
	"bytes"
	"strings"
	"testing"
)

func TestQualRoundTrip(t *testing.T) {
	in := []QualRecord{
		{Name: "r1 some description", Quals: []byte{40, 40, 38, 12, 0, 93}},
		{Name: "r2", Quals: make([]byte, 45)},
		{Name: "empty"},
	}
	for i := range in[1].Quals {
		in[1].Quals[i] = byte(i * 2)
	}
	var buf bytes.Buffer
	if err := WriteQual(&buf, in, 10); err != nil {
		t.Fatal(err)
	}
	out, err := ReadQual(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Name != in[i].Name {
			t.Errorf("record %d name %q", i, out[i].Name)
		}
		if !bytes.Equal(out[i].Quals, in[i].Quals) {
			t.Errorf("record %d quals %v != %v", i, out[i].Quals, in[i].Quals)
		}
	}
}

func TestReadQualClampsAndErrors(t *testing.T) {
	recs, err := ReadQual(strings.NewReader(">a\n120 -5 40\n"))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Quals[0] != 93 || recs[0].Quals[1] != 0 || recs[0].Quals[2] != 40 {
		t.Errorf("clamping wrong: %v", recs[0].Quals)
	}
	if _, err := ReadQual(strings.NewReader(">a\nxyz\n")); err == nil {
		t.Error("expected error for non-numeric score")
	}
	if _, err := ReadQual(strings.NewReader("10 20\n")); err == nil {
		t.Error("expected error for scores before header")
	}
}

func TestAttachQuals(t *testing.T) {
	frags := []*Fragment{
		{Name: "r1 desc", Bases: []byte("ACGT")},
		{Name: "r2", Bases: []byte("GG")},
		{Name: "r3", Bases: []byte("T")},
	}
	quals := []QualRecord{
		{Name: "r1 other words", Quals: []byte{10, 20, 30, 40}},
		{Name: "r2", Quals: []byte{5, 6}},
	}
	if err := AttachQuals(frags, quals); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frags[0].Qual, quals[0].Quals) {
		t.Error("r1 quals not attached by first word")
	}
	if frags[2].Qual != nil {
		t.Error("r3 should have no quals")
	}
	bad := []QualRecord{{Name: "r2", Quals: []byte{1, 2, 3}}}
	if err := AttachQuals(frags, bad); err == nil {
		t.Error("expected length-mismatch error")
	}
}
