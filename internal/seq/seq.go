// Package seq provides DNA sequence primitives shared by every other
// module: the nucleotide alphabet, reverse complementation, masking,
// FASTA I/O, k-mer encoding, and an indexed store of sequencing
// fragments together with their reverse complements.
//
// Throughout the repository sequences are byte slices over the uppercase
// alphabet {A, C, G, T} plus 'N', which marks masked or ambiguous
// positions. A masked position never matches anything, including another
// masked position; this is how repeat-masked regions are prevented from
// seeding overlaps (paper, Section 8).
package seq

// Alphabet size of unambiguous DNA.
const AlphabetSize = 4

// Masked is the byte used for masked or ambiguous positions.
const Masked = 'N'

// code maps a nucleotide byte to 0..3, or -1 for anything else
// (including 'N'). Lowercase input is accepted and treated as masked,
// mirroring the soft-masking convention of repeat maskers.
var code [256]int8

// complement maps a nucleotide to its Watson–Crick complement.
// Non-ACGT bytes map to 'N'.
var complement [256]byte

func init() {
	for i := range code {
		code[i] = -1
		complement[i] = Masked
	}
	code['A'] = 0
	code['C'] = 1
	code['G'] = 2
	code['T'] = 3
	complement['A'] = 'T'
	complement['T'] = 'A'
	complement['C'] = 'G'
	complement['G'] = 'C'
}

// Code returns the 0..3 code of an unambiguous nucleotide, or -1 if the
// byte is masked or not a nucleotide.
func Code(b byte) int { return int(code[b]) }

// Base returns the nucleotide byte for a 0..3 code.
func Base(c int) byte { return "ACGT"[c] }

// IsBase reports whether b is an unambiguous uppercase nucleotide.
func IsBase(b byte) bool { return code[b] >= 0 }

// Complement returns the Watson–Crick complement of a single base.
// Masked and unknown bytes complement to Masked.
func Complement(b byte) byte { return complement[b] }

// ReverseComplement returns a newly allocated reverse complement of s.
func ReverseComplement(s []byte) []byte {
	rc := make([]byte, len(s))
	for i, b := range s {
		rc[len(s)-1-i] = complement[b]
	}
	return rc
}

// ReverseComplementInPlace reverse-complements s in place.
func ReverseComplementInPlace(s []byte) {
	i, j := 0, len(s)-1
	for i < j {
		s[i], s[j] = complement[s[j]], complement[s[i]]
		i, j = i+1, j-1
	}
	if i == j {
		s[i] = complement[s[i]]
	}
}

// Clean returns a copy of s with every byte canonicalized: lowercase
// acgt is uppercased, anything that is not ACGT becomes Masked.
func Clean(s []byte) []byte {
	out := make([]byte, len(s))
	for i, b := range s {
		switch b {
		case 'a':
			b = 'A'
		case 'c':
			b = 'C'
		case 'g':
			b = 'G'
		case 't':
			b = 'T'
		}
		if !IsBase(b) {
			b = Masked
		}
		out[i] = b
	}
	return out
}

// CountUnmasked returns the number of unambiguous bases in s.
func CountUnmasked(s []byte) int {
	n := 0
	for _, b := range s {
		if IsBase(b) {
			n++
		}
	}
	return n
}

// MaskedFraction returns the fraction of s that is masked; 0 for an
// empty sequence.
func MaskedFraction(s []byte) float64 {
	if len(s) == 0 {
		return 0
	}
	return float64(len(s)-CountUnmasked(s)) / float64(len(s))
}
