package seq

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadQual: the qual parser must never panic, and any input it
// accepts must survive a write→reparse round trip unchanged (scores
// are already clamped, names already trimmed).
func FuzzReadQual(f *testing.F) {
	f.Add(">r1\n10 20 30\n>r2\n0 93 94 -3\n")
	f.Add(">r1")
	f.Add("5 5 5\n")
	f.Add(">a\n1e9\n")
	f.Add(">a\n+7 007\n")
	f.Add("\n\n>x\n\n\n1\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadQual(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteQual(&buf, recs, 7); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		back, err := ReadQual(&buf)
		if err != nil {
			t.Fatalf("reparse of written records failed: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip: %d records, want %d", len(back), len(recs))
		}
		for i := range recs {
			if back[i].Name != recs[i].Name || !bytes.Equal(back[i].Quals, recs[i].Quals) {
				t.Fatalf("record %d changed in round trip: %+v vs %+v", i, back[i], recs[i])
			}
		}
	})
}

// FuzzReadFASTA: same contract for the FASTA parser. Clean is
// idempotent, so accepted input must round-trip exactly.
func FuzzReadFASTA(f *testing.F) {
	f.Add(">r1\nACGT\nacgt\n>r2 desc\nNNNN\n")
	f.Add("ACGT\n")
	f.Add(">")
	f.Add(">x\n\x00\xff@!\n")
	f.Add("> name with spaces \nA C G T\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadFASTA(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, recs, 11); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		back, err := ReadFASTA(&buf)
		if err != nil {
			t.Fatalf("reparse of written records failed: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip: %d records, want %d", len(back), len(recs))
		}
		for i := range recs {
			if back[i].Name != recs[i].Name || !bytes.Equal(back[i].Bases, recs[i].Bases) {
				t.Fatalf("record %d changed in round trip: %+v vs %+v", i, back[i], recs[i])
			}
		}
	})
}
