package seq

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomDNA returns n random unambiguous bases from rng.
func randomDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = Base(rng.Intn(4))
	}
	return s
}

func TestCodeBaseRoundTrip(t *testing.T) {
	for c := 0; c < 4; c++ {
		if got := Code(Base(c)); got != c {
			t.Errorf("Code(Base(%d)) = %d", c, got)
		}
	}
	for _, b := range []byte{'N', 'n', 'x', '-', 0} {
		if Code(b) != -1 {
			t.Errorf("Code(%q) = %d, want -1", b, Code(b))
		}
	}
}

func TestComplementPairs(t *testing.T) {
	pairs := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C'}
	for b, want := range pairs {
		if got := Complement(b); got != want {
			t.Errorf("Complement(%c) = %c, want %c", b, got, want)
		}
	}
	if Complement('N') != Masked || Complement('z') != Masked {
		t.Error("non-bases must complement to Masked")
	}
}

func TestReverseComplementKnown(t *testing.T) {
	got := ReverseComplement([]byte("ACGTN"))
	if string(got) != "NACGT" {
		t.Errorf("ReverseComplement(ACGTN) = %s", got)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		s := Clean(raw)
		return bytes.Equal(ReverseComplement(ReverseComplement(s)), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseComplementInPlaceMatchesCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		s := randomDNA(rng, rng.Intn(64))
		want := ReverseComplement(s)
		got := append([]byte(nil), s...)
		ReverseComplementInPlace(got)
		if !bytes.Equal(got, want) {
			t.Fatalf("in-place RC mismatch for %s", s)
		}
	}
}

func TestClean(t *testing.T) {
	got := Clean([]byte("acgtACGT-nxN"))
	if string(got) != "ACGTACGTNNNN" {
		t.Errorf("Clean = %s", got)
	}
}

func TestCountUnmaskedAndFraction(t *testing.T) {
	s := []byte("ACGNNACG")
	if CountUnmasked(s) != 6 {
		t.Errorf("CountUnmasked = %d", CountUnmasked(s))
	}
	if f := MaskedFraction(s); f != 0.25 {
		t.Errorf("MaskedFraction = %g", f)
	}
	if MaskedFraction(nil) != 0 {
		t.Error("MaskedFraction(nil) should be 0")
	}
}

func TestPackUnpackKmer(t *testing.T) {
	s := []byte("ACGTACGTGGCA")
	for k := 1; k <= 8; k++ {
		for i := 0; i+k <= len(s); i++ {
			km, ok := PackKmer(s, i, k)
			if !ok {
				t.Fatalf("PackKmer(%d,%d) failed", i, k)
			}
			if got := UnpackKmer(km, k); !bytes.Equal(got, s[i:i+k]) {
				t.Fatalf("roundtrip k=%d i=%d: %s != %s", k, i, got, s[i:i+k])
			}
		}
	}
}

func TestPackKmerRejectsMaskedAndBounds(t *testing.T) {
	s := []byte("ACGNACG")
	if _, ok := PackKmer(s, 2, 3); ok {
		t.Error("window with N must fail")
	}
	if _, ok := PackKmer(s, 5, 3); ok {
		t.Error("out-of-bounds window must fail")
	}
	if _, ok := PackKmer(s, -1, 3); ok {
		t.Error("negative start must fail")
	}
}

func TestKmerNumericOrderIsLexicographic(t *testing.T) {
	a, _ := PackKmer([]byte("AACG"), 0, 4)
	b, _ := PackKmer([]byte("AACT"), 0, 4)
	c, _ := PackKmer([]byte("CAAA"), 0, 4)
	if !(a < b && b < c) {
		t.Errorf("order violated: %d %d %d", a, b, c)
	}
}

func TestKmerRCInvolutionAndCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(16)
		s := randomDNA(rng, k)
		km, _ := PackKmer(s, 0, k)
		rc := KmerRC(km, k)
		if got := UnpackKmer(rc, k); !bytes.Equal(got, ReverseComplement(s)) {
			t.Fatalf("KmerRC(%s) = %s, want %s", s, got, ReverseComplement(s))
		}
		if KmerRC(rc, k) != km {
			t.Fatal("KmerRC not an involution")
		}
		can := CanonicalKmer(km, k)
		if can != CanonicalKmer(rc, k) {
			t.Fatal("canonical differs between strands")
		}
		if can > km || can > rc {
			t.Fatal("canonical not the minimum")
		}
	}
}

func TestEachKmerSkipsMasked(t *testing.T) {
	s := []byte("ACGTNACGT")
	var positions []int
	EachKmer(s, 3, func(pos int, km Kmer) {
		positions = append(positions, pos)
		if got := UnpackKmer(km, 3); !bytes.Equal(got, s[pos:pos+3]) {
			t.Errorf("pos %d: kmer %s != window %s", pos, got, s[pos:pos+3])
		}
	})
	want := []int{0, 1, 5, 6}
	if len(positions) != len(want) {
		t.Fatalf("positions = %v, want %v", positions, want)
	}
	for i := range want {
		if positions[i] != want[i] {
			t.Fatalf("positions = %v, want %v", positions, want)
		}
	}
}

func TestEachKmerDegenerate(t *testing.T) {
	called := false
	EachKmer([]byte("ACG"), 4, func(int, Kmer) { called = true })
	EachKmer([]byte("ACG"), 0, func(int, Kmer) { called = true })
	EachKmer(nil, 3, func(int, Kmer) { called = true })
	if called {
		t.Error("EachKmer must not emit on degenerate input")
	}
}

func TestFASTARoundTrip(t *testing.T) {
	in := []Record{
		{Name: "frag1 description", Bases: []byte("ACGTACGTACGTACGTACGTACGTACGT")},
		{Name: "frag2", Bases: []byte("TTTT")},
		{Name: "empty", Bases: nil},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, in, 10); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Name != in[i].Name {
			t.Errorf("record %d name %q != %q", i, out[i].Name, in[i].Name)
		}
		if !bytes.Equal(out[i].Bases, in[i].Bases) {
			t.Errorf("record %d bases %s != %s", i, out[i].Bases, in[i].Bases)
		}
	}
}

func TestReadFASTALowercaseAndWhitespace(t *testing.T) {
	in := ">a\nacg t\n\nTT\n"
	recs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Interior space survives TrimSpace only at line ends; "acg t" keeps
	// the space which Clean masks.
	if len(recs) != 1 || string(recs[0].Bases) != "ACGNTTT" {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestReadFASTAErrorsOnLeadingSequence(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n>a\n")); err == nil {
		t.Error("expected error for sequence before header")
	}
}

func TestStoreIndexing(t *testing.T) {
	frags := []*Fragment{
		{Name: "f0", Bases: []byte("ACGT")},
		{Name: "f1", Bases: []byte("GGGC")},
		{Name: "f2", Bases: []byte("TTAA")},
	}
	st := NewStore(frags)
	if st.N() != 3 || st.NumSeqs() != 6 || st.TotalBases() != 12 {
		t.Fatalf("store dims: N=%d NumSeqs=%d Total=%d", st.N(), st.NumSeqs(), st.TotalBases())
	}
	for i := 0; i < 3; i++ {
		if st.Fragment(i).ID != i {
			t.Errorf("fragment %d has ID %d", i, st.Fragment(i).ID)
		}
		if !bytes.Equal(st.Seq(i), frags[i].Bases) {
			t.Errorf("Seq(%d) wrong", i)
		}
		if !bytes.Equal(st.Seq(i+3), ReverseComplement(frags[i].Bases)) {
			t.Errorf("Seq(%d) not the RC", i+3)
		}
		if st.FragID(i) != i || st.FragID(i+3) != i {
			t.Errorf("FragID mapping wrong for %d", i)
		}
		if st.IsRC(i) || !st.IsRC(i+3) {
			t.Errorf("IsRC wrong for %d", i)
		}
		if st.RCID(i) != i+3 || st.RCID(i+3) != i {
			t.Errorf("RCID wrong for %d", i)
		}
	}
	if st.SeqName(1) != "f1" || st.SeqName(4) != "f1(rc)" {
		t.Errorf("SeqName: %q %q", st.SeqName(1), st.SeqName(4))
	}
}

func TestStoreFromRecords(t *testing.T) {
	st := StoreFromRecords([]Record{{Name: "a", Bases: []byte("ACGT")}})
	if st.N() != 1 || st.Fragment(0).Name != "a" {
		t.Fatal("StoreFromRecords wrong")
	}
}
