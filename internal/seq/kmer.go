package seq

// Kmer is a 2-bit packed k-mer, k ≤ 31. The most significant bits hold
// the first base, so numeric order equals lexicographic order.
type Kmer uint64

// MaxK is the largest k that fits a Kmer with a validity guard bit.
const MaxK = 31

// PackKmer packs s[i:i+k] into a Kmer. ok is false if the window
// contains a masked base or runs past the end of s.
func PackKmer(s []byte, i, k int) (km Kmer, ok bool) {
	if i < 0 || i+k > len(s) || k > MaxK {
		return 0, false
	}
	var v Kmer
	for j := i; j < i+k; j++ {
		c := code[s[j]]
		if c < 0 {
			return 0, false
		}
		v = v<<2 | Kmer(c)
	}
	return v, true
}

// UnpackKmer expands a packed k-mer back into bases.
func UnpackKmer(km Kmer, k int) []byte {
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = Base(int(km & 3))
		km >>= 2
	}
	return out
}

// KmerRC returns the reverse complement of a packed k-mer.
func KmerRC(km Kmer, k int) Kmer {
	var rc Kmer
	for i := 0; i < k; i++ {
		rc = rc<<2 | (km&3)^3
		km >>= 2
	}
	return rc
}

// CanonicalKmer returns the lexicographically smaller of a k-mer and its
// reverse complement, the standard strand-independent key.
func CanonicalKmer(km Kmer, k int) Kmer {
	rc := KmerRC(km, k)
	if rc < km {
		return rc
	}
	return km
}

// EachKmer calls fn for every unmasked k-mer window of s with its start
// position. Windows containing masked bases are skipped in O(1) amortized
// time per position by tracking the last masked byte seen.
func EachKmer(s []byte, k int, fn func(pos int, km Kmer)) {
	if k <= 0 || k > MaxK || len(s) < k {
		return
	}
	mask := Kmer(1)<<(2*uint(k)) - 1
	var v Kmer
	run := 0 // number of consecutive unmasked bases ending at current pos
	for i, b := range s {
		c := code[b]
		if c < 0 {
			run = 0
			v = 0
			continue
		}
		v = (v<<2 | Kmer(c)) & mask
		run++
		if run >= k {
			fn(i-k+1, v)
		}
	}
}
