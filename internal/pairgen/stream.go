package pairgen

import (
	"sync"

	"repro/internal/suffixtree"
)

// Stream adapts Generate into a pull-based iterator, which is what a
// worker processor needs: the master dictates how many new pairs to
// produce per iteration (the request size r of Section 7), so pairs
// must be drawn on demand rather than pushed. The generator runs in
// its own goroutine and parks between batches.
type Stream struct {
	ch    chan Pair
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
	stats Stats
}

// NewStream starts streaming pairs from the tree. The buffer size
// bounds how far generation can run ahead of consumption.
func NewStream(tree *suffixtree.Tree, cfg Config, buffer int) *Stream {
	if buffer < 1 {
		buffer = 64
	}
	s := &Stream{
		ch:   make(chan Pair, buffer),
		stop: make(chan struct{}),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(s.ch)
		s.stats = Generate(tree, cfg, func(p Pair) bool {
			select {
			case s.ch <- p:
				return true
			case <-s.stop:
				return false
			}
		})
	}()
	return s
}

// NewSweep streams pairs from a sequence of forests produced on
// demand — the spilling GST's bounded segments. sweep must call yield
// once per forest and stop when yield returns false; each forest is
// generated to exhaustion and dropped before the next is built, so the
// resident tree memory is one segment's, while the consumer sees a
// single continuous stream. Stats accumulate across all segments.
func NewSweep(sweep func(yield func(*suffixtree.Tree) bool), cfg Config, buffer int) *Stream {
	if buffer < 1 {
		buffer = 64
	}
	s := &Stream{
		ch:   make(chan Pair, buffer),
		stop: make(chan struct{}),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(s.ch)
		stopped := false
		sweep(func(t *suffixtree.Tree) bool {
			st := Generate(t, cfg, func(p Pair) bool {
				select {
				case s.ch <- p:
					return true
				case <-s.stop:
					stopped = true
					return false
				}
			})
			s.stats.Emitted += st.Emitted
			s.stats.Skipped += st.Skipped
			s.stats.NodesVisited += st.NodesVisited
			return !stopped
		})
	}()
	return s
}

// Next returns the next pair; ok is false once the stream is
// exhausted or closed.
func (s *Stream) Next() (Pair, bool) {
	p, ok := <-s.ch
	return p, ok
}

// Take appends up to max pairs to dst and returns it; fewer are
// returned only at end of stream.
func (s *Stream) Take(dst []Pair, max int) []Pair {
	for len(dst) < max {
		p, ok := s.Next()
		if !ok {
			break
		}
		dst = append(dst, p)
	}
	return dst
}

// Close stops generation and releases the generator goroutine. Safe to
// call multiple times and concurrently with Next.
func (s *Stream) Close() {
	s.once.Do(func() { close(s.stop) })
	// Drain so the generator unblocks if it was mid-send.
	for range s.ch {
	}
	s.wg.Wait()
}

// Stats returns the generator's counters; valid after the stream is
// exhausted or closed.
func (s *Stream) Stats() Stats {
	s.wg.Wait()
	return s.stats
}
