// Package pairgen implements the paper's on-demand promising-pair
// generation algorithm (Section 5): given the generalized suffix tree
// of all fragments and their reverse complements, it emits every pair
// of sequences sharing a maximal exact match of length ≥ ψ, in
// decreasing order of maximal-match length, in O(1) time per pair and
// linear space — pairs are streamed, never stored.
//
// The algorithm maintains lsets at each tree node: the suffixes (or,
// with duplicate elimination, the sequences) in the node's subtree
// partitioned by the character preceding each suffix. Pairs are
// generated at a node u by cross products between lsets of different
// children (right-maximality, condition C3 of Lemma 1) and different
// preceding-character classes (left-maximality, C4); the λ class —
// string starts and positions after masked bytes — pairs with
// everything including itself. lsets are linked lists so a parent's
// lsets are formed from its children's in O(Σ²) time.
package pairgen

import (
	"repro/internal/suffixtree"
)

// Pair is one promising pair: sequences ASid and BSid share the
// maximal match A[APos:APos+MatchLen] == B[BPos:BPos+MatchLen].
// Sequence IDs are in the store's 2n space (forward + reverse
// complement); pairs are canonicalized so the lower-numbered fragment
// appears in forward orientation, which halves mirror-image
// duplicates.
type Pair struct {
	ASid, BSid int32
	APos, BPos int32
	MatchLen   int32
}

// Config parameterizes generation.
type Config struct {
	// Psi is the minimum maximal-match length ψ; must be ≥ the tree's
	// bucket prefix length w.
	Psi int
	// NumFragments is the store's fragment count n, used to resolve
	// sequence IDs into fragments and orientations.
	NumFragments int
	// DuplicateElimination enables the fragment-level lset variant
	// (Section 5): each sequence pair is generated at most once per
	// node rather than once per suffix pair.
	DuplicateElimination bool
}

// Stats counts generator activity.
type Stats struct {
	Emitted     int64 // pairs delivered (canonical orientation)
	Skipped     int64 // cross-product pairs dropped by canonicalization
	NodesVisited int64
}

// Generate streams all promising pairs to yield in decreasing order of
// maximal-match length. Generation stops early if yield returns false.
func Generate(tree *suffixtree.Tree, cfg Config, yield func(Pair) bool) Stats {
	if cfg.Psi < tree.W {
		panic("pairgen: ψ must be ≥ the tree bucket prefix length w")
	}
	g := &generator{tree: tree, cfg: cfg, yield: yield}
	g.run()
	return g.stats
}

const nilRef = int32(-1)

// cell is one linked-list element of an lset.
type cell struct {
	suf  suffixtree.Suffix
	next int32
}

// listRef is the head/tail of one lset class list.
type listRef struct {
	head, tail int32
	size       int32
}

func (l listRef) empty() bool { return l.head == nilRef }

type nodeLsets [suffixtree.NumPrevClasses]listRef

type generator struct {
	tree  *suffixtree.Tree
	cfg   Config
	yield func(Pair) bool
	stats Stats

	cells []cell
	lsets []nodeLsets
	// seen is the boolean array of the duplicate-elimination variant,
	// indexed by sequence ID (2n entries).
	seen    []bool
	stopped bool
}

func (g *generator) run() {
	t := g.tree
	g.cells = make([]cell, 0, len(t.Sufs))
	g.lsets = make([]nodeLsets, t.NumNodes())
	for i := range g.lsets {
		for c := range g.lsets[i] {
			g.lsets[i][c] = listRef{head: nilRef, tail: nilRef}
		}
	}
	if g.cfg.DuplicateElimination {
		g.seen = make([]bool, 2*g.cfg.NumFragments)
	}

	order := t.NodesByDepthDesc(g.cfg.Psi)
	for _, u := range order {
		if g.stopped {
			return
		}
		g.stats.NodesVisited++
		if t.IsLeaf(u) {
			g.processLeaf(u)
		} else {
			g.processInternal(u)
		}
	}
}

func (g *generator) newCell(sf suffixtree.Suffix) int32 {
	id := int32(len(g.cells))
	g.cells = append(g.cells, cell{suf: sf, next: nilRef})
	return id
}

func (ls *nodeLsets) push(class int8, id int32, cells []cell) {
	r := &ls[class]
	if r.head == nilRef {
		r.head, r.tail = id, id
	} else {
		cells[r.tail].next = id
		r.tail = id
	}
	r.size++
}

// concat appends other's class list onto ls's in O(1).
func (ls *nodeLsets) concat(class int, other listRef, cells []cell) {
	if other.head == nilRef {
		return
	}
	r := &ls[class]
	if r.head == nilRef {
		*r = other
		return
	}
	cells[r.tail].next = other.head
	r.tail = other.tail
	r.size += other.size
}

// processLeaf builds the leaf's lsets from its suffixes and generates
// the within-leaf pairs: classes c < c′ freely, and λ with itself
// (step S3). Right-maximality is automatic at a leaf.
func (g *generator) processLeaf(u int32) {
	t := g.tree
	for _, sf := range t.LeafSuffixes(u) {
		g.lsets[u].push(sf.Prev, g.newCell(sf), g.cells)
	}
	depth := t.Nodes[u].Depth
	ls := &g.lsets[u]
	for c := 0; c < suffixtree.NumPrevClasses; c++ {
		for cp := c + 1; cp < suffixtree.NumPrevClasses; cp++ {
			g.cross(ls[c], ls[cp], depth)
		}
	}
	// λ × λ: unordered pairs within the λ list.
	g.crossSelf(ls[suffixtree.PrevNone], depth)
}

// processInternal generates cross-child pairs and then dissolves the
// children's lsets into u's (step S4).
func (g *generator) processInternal(u int32) {
	t := g.tree
	var kids []int32
	t.Children(u, func(v int32) { kids = append(kids, v) })

	if g.cfg.DuplicateElimination {
		g.dedupChildren(kids)
	}

	depth := t.Nodes[u].Depth
	for i := 0; i < len(kids); i++ {
		for j := i + 1; j < len(kids); j++ {
			li, lj := &g.lsets[kids[i]], &g.lsets[kids[j]]
			for c := 0; c < suffixtree.NumPrevClasses; c++ {
				for cp := 0; cp < suffixtree.NumPrevClasses; cp++ {
					if c == cp && c != int(suffixtree.PrevNone) {
						continue // same preceding base: not left-maximal
					}
					g.cross(li[c], lj[cp], depth)
				}
			}
		}
	}

	// Union children lsets into u.
	for _, v := range kids {
		for c := 0; c < suffixtree.NumPrevClasses; c++ {
			g.lsets[u].concat(c, g.lsets[v][c], g.cells)
			g.lsets[v][c] = listRef{head: nilRef, tail: nilRef}
		}
	}
}

// dedupChildren removes all but one occurrence of each sequence across
// the children's lsets, using the 2n boolean array with a mark pass
// and an unmark pass so the array is clean for the next node.
func (g *generator) dedupChildren(kids []int32) {
	for _, v := range kids {
		for c := range g.lsets[v] {
			r := &g.lsets[v][c]
			prev := nilRef
			id := r.head
			for id != nilRef {
				next := g.cells[id].next
				sid := g.cells[id].suf.Sid
				if g.seen[sid] {
					// Unlink this duplicate.
					if prev == nilRef {
						r.head = next
					} else {
						g.cells[prev].next = next
					}
					if r.tail == id {
						r.tail = prev
					}
					r.size--
				} else {
					g.seen[sid] = true
					prev = id
				}
				id = next
			}
		}
	}
	// Reset marks.
	for _, v := range kids {
		for c := range g.lsets[v] {
			for id := g.lsets[v][c].head; id != nilRef; id = g.cells[id].next {
				g.seen[g.cells[id].suf.Sid] = false
			}
		}
	}
}

func (g *generator) cross(a, b listRef, depth int32) {
	if g.stopped || a.empty() || b.empty() {
		return
	}
	for x := a.head; x != nilRef; x = g.cells[x].next {
		for y := b.head; y != nilRef; y = g.cells[y].next {
			if !g.emit(g.cells[x].suf, g.cells[y].suf, depth) {
				return
			}
		}
	}
}

func (g *generator) crossSelf(a listRef, depth int32) {
	if g.stopped || a.empty() {
		return
	}
	for x := a.head; x != nilRef; x = g.cells[x].next {
		for y := g.cells[x].next; y != nilRef; y = g.cells[y].next {
			if !g.emit(g.cells[x].suf, g.cells[y].suf, depth) {
				return
			}
		}
	}
}

// emit canonicalizes and delivers one pair; returns false once the
// consumer has stopped.
func (g *generator) emit(a, b suffixtree.Suffix, depth int32) bool {
	n := int32(g.cfg.NumFragments)
	fa, fb := a.Sid%n, b.Sid%n
	if fa == fb {
		g.stats.Skipped++
		return true
	}
	// Canonical orientation: the lower-numbered fragment must appear
	// forward; the mirror-image pair carries the same information and
	// is (or was) generated elsewhere in the tree.
	if fa < fb {
		if a.Sid >= n {
			g.stats.Skipped++
			return true
		}
	} else {
		if b.Sid >= n {
			g.stats.Skipped++
			return true
		}
		a, b = b, a
	}
	g.stats.Emitted++
	if !g.yield(Pair{ASid: a.Sid, BSid: b.Sid, APos: a.Pos, BPos: b.Pos, MatchLen: depth}) {
		g.stopped = true
		return false
	}
	return true
}
