package pairgen

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/seq"
	"repro/internal/suffixtree"
)

func storeAccess(st *seq.Store) suffixtree.Access {
	return func(sid int32) []byte { return st.Seq(int(sid)) }
}

func buildTree(st *seq.Store, w int) *suffixtree.Tree {
	acc := storeAccess(st)
	sids := make([]int32, st.NumSeqs())
	for i := range sids {
		sids[i] = int32(i)
	}
	return suffixtree.Build(acc, suffixtree.EnumerateSuffixes(acc, sids, w), w)
}

func makeStore(bases ...string) *seq.Store {
	frags := make([]*seq.Fragment, len(bases))
	for i, b := range bases {
		frags[i] = &seq.Fragment{Name: fmt.Sprintf("f%d", i), Bases: []byte(b)}
	}
	return seq.NewStore(frags)
}

func randomFrags(rng *rand.Rand, n, minLen, maxLen int, maskProb float64) []string {
	out := make([]string, n)
	for i := range out {
		l := minLen + rng.Intn(maxLen-minLen+1)
		b := make([]byte, l)
		for j := range b {
			if rng.Float64() < maskProb {
				b[j] = seq.Masked
			} else {
				b[j] = seq.Base(rng.Intn(4))
			}
		}
		out[i] = string(b)
	}
	return out
}

type pairKey struct{ a, b int32 }
type matchRec struct{ apos, bpos, l int32 }

// bruteMaximalMatches enumerates every maximal match of length ≥ psi
// between canonical sequence pairs, directly from the definition.
func bruteMaximalMatches(st *seq.Store, psi int) map[pairKey][]matchRec {
	out := make(map[pairKey][]matchRec)
	n := int32(st.N())
	num := int32(st.NumSeqs())
	for sa := int32(0); sa < num; sa++ {
		for sb := sa + 1; sb < num; sb++ {
			a, b := sa, sb
			fa, fb := a%n, b%n
			if fa == fb {
				continue
			}
			if fa < fb {
				if a >= n {
					continue
				}
			} else {
				if b >= n {
					continue
				}
				a, b = b, a
			}
			u, v := st.Seq(int(a)), st.Seq(int(b))
			for i := 0; i < len(u); i++ {
				for j := 0; j < len(v); j++ {
					if u[i] != v[j] || !seq.IsBase(u[i]) {
						continue
					}
					// Left-maximality under masking semantics.
					if i > 0 && j > 0 && u[i-1] == v[j-1] && seq.IsBase(u[i-1]) {
						continue
					}
					l := 0
					for i+l < len(u) && j+l < len(v) && u[i+l] == v[j+l] && seq.IsBase(u[i+l]) {
						l++
					}
					if l >= psi {
						out[pairKey{a, b}] = append(out[pairKey{a, b}],
							matchRec{int32(i), int32(j), int32(l)})
					}
				}
			}
		}
	}
	return out
}

func collect(tree *suffixtree.Tree, cfg Config) ([]Pair, Stats) {
	var pairs []Pair
	st := Generate(tree, cfg, func(p Pair) bool {
		pairs = append(pairs, p)
		return true
	})
	return pairs, st
}

func sortRecs(rs []matchRec) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].apos != rs[j].apos {
			return rs[i].apos < rs[j].apos
		}
		if rs[i].bpos != rs[j].bpos {
			return rs[i].bpos < rs[j].bpos
		}
		return rs[i].l < rs[j].l
	})
}

// TestMatchesBruteForce is the central correctness test: without
// duplicate elimination the generator must emit exactly the set of
// maximal matches of length ≥ ψ (Lemma 1), once each.
func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		maskProb := []float64{0, 0.04}[trial%2]
		frags := randomFrags(rng, 4+rng.Intn(4), 20, 45, maskProb)
		st := makeStore(frags...)
		w := 3
		psi := 4 + rng.Intn(3)
		tree := buildTree(st, w)
		pairs, _ := collect(tree, Config{Psi: psi, NumFragments: st.N()})

		got := make(map[pairKey][]matchRec)
		for _, p := range pairs {
			got[pairKey{p.ASid, p.BSid}] = append(got[pairKey{p.ASid, p.BSid}],
				matchRec{p.APos, p.BPos, p.MatchLen})
		}
		want := bruteMaximalMatches(st, psi)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d pair keys, want %d", trial, len(got), len(want))
		}
		for k, ws := range want {
			gs := got[k]
			if len(gs) != len(ws) {
				t.Fatalf("trial %d key %v: %d matches, want %d\ngot %v\nwant %v",
					trial, k, len(gs), len(ws), gs, ws)
			}
			sortRecs(gs)
			sortRecs(ws)
			for i := range ws {
				if gs[i] != ws[i] {
					t.Fatalf("trial %d key %v: match %d = %v, want %v", trial, k, i, gs[i], ws[i])
				}
			}
		}
	}
}

// TestDecreasingOrder verifies the on-demand sorted-order property
// (step S2): emitted match lengths never increase.
func TestDecreasingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	frags := randomFrags(rng, 8, 30, 60, 0.02)
	st := makeStore(frags...)
	tree := buildTree(st, 4)
	pairs, _ := collect(tree, Config{Psi: 5, NumFragments: st.N()})
	if len(pairs) == 0 {
		t.Skip("no pairs in random input")
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].MatchLen > pairs[i-1].MatchLen {
			t.Fatalf("order violated at %d: %d after %d", i, pairs[i].MatchLen, pairs[i-1].MatchLen)
		}
	}
	for _, p := range pairs {
		if p.MatchLen < 5 {
			t.Fatalf("pair below ψ emitted: %+v", p)
		}
	}
}

// TestAnchorsAreRealMatches verifies each emitted anchor is a genuine
// exact match of the claimed length in the claimed orientation.
func TestAnchorsAreRealMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	frags := randomFrags(rng, 6, 30, 60, 0.03)
	st := makeStore(frags...)
	tree := buildTree(st, 4)
	pairs, _ := collect(tree, Config{Psi: 5, NumFragments: st.N()})
	for _, p := range pairs {
		a := st.Seq(int(p.ASid))
		b := st.Seq(int(p.BSid))
		for k := int32(0); k < p.MatchLen; k++ {
			ca, cb := a[p.APos+k], b[p.BPos+k]
			if ca != cb || !seq.IsBase(ca) {
				t.Fatalf("anchor not an exact unmasked match: %+v at offset %d", p, k)
			}
		}
	}
}

func TestCanonicalOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	frags := randomFrags(rng, 6, 30, 60, 0)
	st := makeStore(frags...)
	tree := buildTree(st, 4)
	pairs, _ := collect(tree, Config{Psi: 5, NumFragments: st.N()})
	n := int32(st.N())
	for _, p := range pairs {
		fa, fb := p.ASid%n, p.BSid%n
		if fa == fb {
			t.Fatalf("self pair emitted: %+v", p)
		}
		lo := fa
		loSid := p.ASid
		if fb < fa {
			lo, loSid = fb, p.BSid
		}
		if loSid >= n {
			t.Fatalf("non-canonical pair: lower fragment %d is reverse-complemented: %+v", lo, p)
		}
	}
}

// TestOverlappingReadsPlanted plants two reads sampled from one region
// on opposite strands and checks the pair is found with the full
// overlap as the longest match.
func TestOverlappingReadsPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	genome := make([]byte, 120)
	for i := range genome {
		genome[i] = seq.Base(rng.Intn(4))
	}
	readA := string(genome[:80])                            // forward
	readB := string(seq.ReverseComplement(genome[40:120])) // reverse strand
	st := makeStore(readA, readB)
	tree := buildTree(st, 8)
	pairs, _ := collect(tree, Config{Psi: 12, NumFragments: st.N()})
	best := int32(0)
	for _, p := range pairs {
		if p.MatchLen > best {
			best = p.MatchLen
			// Fragment 0 forward must pair with fragment 1 reverse.
			if p.ASid != 0 || p.BSid != 3 {
				t.Fatalf("unexpected orientation: %+v", p)
			}
		}
	}
	// The true overlap is genome[40:80]: 40 bases (up to random repeats).
	if best < 40 {
		t.Fatalf("longest match %d < planted overlap 40", best)
	}
}

// TestDuplicateElimination checks the §5 variant: same fragment-pair
// coverage, same maximum match length per pair, no more emissions than
// distinct maximal matches.
func TestDuplicateElimination(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		// Repeat-heavy input to force duplicate matches: build
		// fragments by stitching repeated motifs.
		motifs := randomFrags(rng, 3, 10, 14, 0)
		frags := make([]string, 5)
		for i := range frags {
			s := ""
			for k := 0; k < 4; k++ {
				s += motifs[rng.Intn(len(motifs))]
			}
			frags[i] = s
		}
		st := makeStore(frags...)
		psi := 6
		tree := buildTree(st, 4)

		full, _ := collect(tree, Config{Psi: psi, NumFragments: st.N()})
		dedup, _ := collect(tree, Config{Psi: psi, NumFragments: st.N(), DuplicateElimination: true})

		type agg struct {
			count  int
			maxLen int32
		}
		group := func(ps []Pair) map[pairKey]agg {
			m := make(map[pairKey]agg)
			for _, p := range ps {
				k := pairKey{p.ASid, p.BSid}
				a := m[k]
				a.count++
				if p.MatchLen > a.maxLen {
					a.maxLen = p.MatchLen
				}
				m[k] = a
			}
			return m
		}
		gf, gd := group(full), group(dedup)
		if len(gf) != len(gd) {
			t.Fatalf("trial %d: dedup covers %d pairs, full covers %d", trial, len(gd), len(gf))
		}
		for k, af := range gf {
			ad, ok := gd[k]
			if !ok {
				t.Fatalf("trial %d: pair %v missing under dedup", trial, k)
			}
			if ad.maxLen != af.maxLen {
				t.Fatalf("trial %d: pair %v max len %d != %d", trial, k, ad.maxLen, af.maxLen)
			}
			if ad.count > af.count {
				t.Fatalf("trial %d: pair %v dedup count %d > full %d", trial, k, ad.count, af.count)
			}
		}
	}
}

func TestDedupReducesEmissionsOnRepeats(t *testing.T) {
	// A shared tandem repeat produces many duplicate generations that
	// the dedup variant must cut down.
	motif := "ACGTTGCAGT"
	a, b := "", ""
	for i := 0; i < 6; i++ {
		a += motif
		b += motif
	}
	st := makeStore(a, b)
	tree := buildTree(st, 4)
	full, _ := collect(tree, Config{Psi: 6, NumFragments: st.N()})
	dedup, _ := collect(tree, Config{Psi: 6, NumFragments: st.N(), DuplicateElimination: true})
	if len(dedup) >= len(full) {
		t.Errorf("dedup %d not fewer than full %d on tandem repeats", len(dedup), len(full))
	}
	if len(dedup) == 0 {
		t.Error("dedup emitted nothing")
	}
}

func TestPsiBelowWPanics(t *testing.T) {
	st := makeStore("ACGTACGTACGT")
	tree := buildTree(st, 6)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ψ < w")
		}
	}()
	Generate(tree, Config{Psi: 4, NumFragments: 1}, func(Pair) bool { return true })
}

func TestEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	frags := randomFrags(rng, 8, 40, 60, 0)
	st := makeStore(frags...)
	tree := buildTree(st, 4)
	count := 0
	Generate(tree, Config{Psi: 4, NumFragments: st.N()}, func(Pair) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop delivered %d pairs", count)
	}
}

func TestStreamMatchesPush(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	frags := randomFrags(rng, 8, 30, 60, 0.02)
	st := makeStore(frags...)
	tree := buildTree(st, 4)
	cfg := Config{Psi: 5, NumFragments: st.N()}
	want, _ := collect(tree, cfg)

	s := NewStream(tree, cfg, 16)
	var got []Pair
	for {
		batch := s.Take(nil, 7)
		got = append(got, batch...)
		if len(batch) < 7 {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("stream delivered %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if s.Stats().Emitted != int64(len(want)) {
		t.Errorf("stream stats emitted = %d", s.Stats().Emitted)
	}
}

func TestStreamCloseEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	frags := randomFrags(rng, 10, 40, 70, 0)
	st := makeStore(frags...)
	tree := buildTree(st, 4)
	s := NewStream(tree, Config{Psi: 4, NumFragments: st.N()}, 4)
	s.Take(nil, 3)
	s.Close() // must not deadlock
	s.Close() // idempotent
}

func TestMaskedRegionsBlockPairs(t *testing.T) {
	// Identical fragments fully masked must generate nothing.
	masked := "NNNNNNNNNNNNNNNNNNNN"
	st := makeStore(masked, masked)
	tree := buildTree(st, 4)
	pairs, _ := collect(tree, Config{Psi: 4, NumFragments: st.N()})
	if len(pairs) != 0 {
		t.Errorf("masked fragments generated %d pairs", len(pairs))
	}
}

func TestStatsCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	frags := randomFrags(rng, 6, 30, 50, 0)
	st := makeStore(frags...)
	tree := buildTree(st, 4)
	pairs, stats := collect(tree, Config{Psi: 5, NumFragments: st.N()})
	if stats.Emitted != int64(len(pairs)) {
		t.Errorf("Emitted = %d, want %d", stats.Emitted, len(pairs))
	}
	if stats.NodesVisited == 0 {
		t.Error("NodesVisited = 0")
	}
}
