package align

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestFitExact(t *testing.T) {
	sc := DefaultScoring()
	ref := []byte("GGGGACGTACGTACGTTTTT")
	q := []byte("ACGTACGTACGT")
	r, ok := Fit(ref, q, 4, 6, sc)
	if !ok {
		t.Fatal("fit failed")
	}
	if r.AStart != 4 || r.AEnd != 16 {
		t.Errorf("ref span = [%d,%d), want [4,16)", r.AStart, r.AEnd)
	}
	if r.BStart != 0 || r.BEnd != len(q) {
		t.Errorf("query span = [%d,%d)", r.BStart, r.BEnd)
	}
	if r.Matches != len(q) || r.Length != len(q) {
		t.Errorf("matches=%d length=%d", r.Matches, r.Length)
	}
	for _, op := range r.Ops {
		if op != OpM {
			t.Error("exact fit must be all match ops")
		}
	}
}

func TestFitWithIndel(t *testing.T) {
	sc := DefaultScoring()
	ref := []byte("GGGGACGTACGTACGTACGGGGG")
	q := []byte("ACGTACTACGTACG") // one deletion relative to ref
	r, ok := Fit(ref, q, 4, 8, sc)
	if !ok {
		t.Fatal("fit failed")
	}
	nX := 0
	for _, op := range r.Ops {
		if op == OpX {
			nX++
		}
	}
	if nX != 1 {
		t.Errorf("%d reference-only columns, want 1", nX)
	}
	if r.Identity() < 0.9 {
		t.Errorf("identity %.3f", r.Identity())
	}
}

func TestFitEmptyQuery(t *testing.T) {
	if _, ok := Fit([]byte("ACGT"), nil, 0, 4, DefaultScoring()); ok {
		t.Error("empty query must not fit")
	}
}

func TestFitBandMiss(t *testing.T) {
	sc := DefaultScoring()
	ref := []byte("AAAAAAAAAAAAAAAAAAAACGTACGTACGT")
	q := []byte("CGTACGTACGT")
	// The query sits at ref offset 20, but diag0 = 0 with band 3
	// cannot reach it.
	if r, ok := Fit(ref, q, 0, 3, sc); ok && r.Identity() > 0.8 {
		t.Errorf("band miss produced a high-identity fit: %+v", r)
	}
}

// TestFitAgreesWithGlobalOnColinear: for near-colinear pairs the
// banded fit must recover the same identity as the exact aligner.
func TestFitAgreesWithGlobalOnColinear(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 200 + rng.Intn(400)
		truth := make([]byte, n)
		for i := range truth {
			truth[i] = seq.Base(rng.Intn(4))
		}
		// Mutate ~2%.
		q := make([]byte, 0, n)
		for _, b := range truth {
			r := rng.Float64()
			switch {
			case r < 0.005:
			case r < 0.010:
				q = append(q, b, seq.Base(rng.Intn(4)))
			case r < 0.020:
				q = append(q, seq.Base((seq.Code(b)+1+rng.Intn(3))%4))
			default:
				q = append(q, b)
			}
		}
		fit, ok := Fit(truth, q, 0, 32, sc)
		if !ok {
			t.Fatalf("trial %d: fit failed", trial)
		}
		glob := Global(q, truth, sc)
		if d := fit.Identity() - glob.Identity(); d < -0.02 || d > 0.02 {
			t.Errorf("trial %d: fit identity %.4f vs global %.4f", trial, fit.Identity(), glob.Identity())
		}
	}
}

// TestFitOpsConsistent: walking the ops must consume exactly the
// reported spans.
func TestFitOpsConsistent(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		ref := make([]byte, 100+rng.Intn(100))
		for i := range ref {
			ref[i] = seq.Base(rng.Intn(4))
		}
		off := rng.Intn(40)
		end := off + 40 + rng.Intn(len(ref)-off-40)
		q := append([]byte(nil), ref[off:end]...)
		r, ok := Fit(ref, q, off, 16, sc)
		if !ok {
			t.Fatalf("trial %d: fit failed", trial)
		}
		ai, bi := r.AStart, r.BStart
		for _, op := range r.Ops {
			switch op {
			case OpM:
				ai++
				bi++
			case OpX:
				ai++
			case OpY:
				bi++
			}
		}
		if ai != r.AEnd || bi != r.BEnd {
			t.Fatalf("trial %d: ops consume (%d,%d), spans end (%d,%d)", trial, ai, bi, r.AEnd, r.BEnd)
		}
		if r.BStart != 0 || r.BEnd != len(q) {
			t.Fatalf("trial %d: query not fully consumed: [%d,%d) of %d", trial, r.BStart, r.BEnd, len(q))
		}
	}
}
