// Package align implements the pairwise sequence alignments the
// framework depends on: global (Needleman–Wunsch), local
// (Smith–Waterman), and suffix–prefix overlap alignment, all with
// Gotoh-style affine gap penalties, plus a banded overlap alignment
// anchored at a maximal exact match — the variant the clustering phase
// uses so that each alignment costs O(band × length) rather than the
// full dynamic-programming product (paper, Sections 2 and 4).
//
// Masked positions (seq.Masked) never match anything, so repeat-masked
// regions cannot contribute identity to an overlap.
package align

import "repro/internal/seq"

// Scoring holds alignment scores. Match is positive; Mismatch,
// GapOpen and GapExtend are negative. Opening a gap of length g costs
// GapOpen + g*GapExtend.
type Scoring struct {
	Match     int
	Mismatch  int
	GapOpen   int
	GapExtend int
}

// DefaultScoring returns scores tuned for ~1–2 % sequencing error,
// comparable to the defaults of overlap-based assemblers.
func DefaultScoring() Scoring {
	return Scoring{Match: 2, Mismatch: -5, GapOpen: -6, GapExtend: -1}
}

func (s Scoring) base(a, b byte) int {
	if a == b && seq.IsBase(a) {
		return s.Match
	}
	return s.Mismatch
}

// Alignment column operations, recorded first-to-last in Result.Ops.
const (
	OpM = byte('M') // A base aligned to B base (match or mismatch)
	OpX = byte('X') // gap in B: consumes one A base
	OpY = byte('Y') // gap in A: consumes one B base
)

// Result describes one pairwise alignment. The aligned region is
// A[AStart:AEnd] against B[BStart:BEnd]; Matches of the Length alignment
// columns are identities. Ops lists the column operations from the
// start of the aligned region (full-matrix aligners only; the banded
// anchored overlap does not trace back).
type Result struct {
	Score  int
	AStart int
	AEnd   int
	BStart int
	BEnd   int

	Matches int // identical columns
	Length  int // total columns including gaps
	Ops     []byte
}

// Identity returns the fraction of alignment columns that are identical
// bases, or 0 for an empty alignment.
func (r Result) Identity() float64 {
	if r.Length == 0 {
		return 0
	}
	return float64(r.Matches) / float64(r.Length)
}

// OverlapLen returns the length of the shorter projected span of the
// alignment, the usual definition of overlap length.
func (r Result) OverlapLen() int {
	la, lb := r.AEnd-r.AStart, r.BEnd-r.BStart
	if la < lb {
		return la
	}
	return lb
}

// Criteria is an overlap acceptance test. An alignment is accepted when
// it spans at least MinOverlap bases on both fragments and its identity
// is at least MinIdentity. The paper uses a less stringent criterion
// during clustering than during final assembly (Section 3).
type Criteria struct {
	MinOverlap  int
	MinIdentity float64
}

// ClusterCriteria returns the relaxed criterion used during clustering.
func ClusterCriteria() Criteria { return Criteria{MinOverlap: 40, MinIdentity: 0.90} }

// AssemblyCriteria returns the stringent criterion used during
// per-cluster assembly.
func AssemblyCriteria() Criteria { return Criteria{MinOverlap: 40, MinIdentity: 0.95} }

// Accept reports whether the alignment satisfies the criteria.
func (c Criteria) Accept(r Result) bool {
	if r.AEnd-r.AStart < c.MinOverlap || r.BEnd-r.BStart < c.MinOverlap {
		return false
	}
	return r.Identity() >= c.MinIdentity
}

const negInf = int(-1) << 40

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max3(a, b, c int) int { return max2(max2(a, b), c) }
