package align

// Banded overlap alignment anchored at a maximal exact match. The
// clustering phase generates promising pairs together with the
// coordinates of a shared maximal match (paper, Section 5); anchoring
// the alignment to that match lets the overlap test run in
// O(band × length) instead of the full dynamic-programming product,
// which is the alignment-cost reduction the paper's filter exists to
// enable (Section 2).
//
// The overlap is computed as the exact match plus two banded
// extensions: leftward from the match start to the beginning of either
// fragment and rightward from the match end to the end of either
// fragment. An extension must reach a fragment boundary — overlaps span
// to sequence ends, with the dangling tail of the other fragment free.

// DefaultBand is the default half-width of the extension band,
// generous for ~2 % sequencing error over sub-kilobase fragments.
const DefaultBand = 12

type bandCell struct {
	sc int32
	m  int32 // identical columns on the best path here
	ln int32 // total columns on the best path here
}

var bandNegInf = bandCell{sc: -1 << 30}

// AnchoredOverlap aligns a and b given the anchor
// a[apos:apos+mlen] == b[bpos:bpos+mlen], using banded extensions of
// half-width band. It returns the combined overlap alignment and
// ok=false if either extension cannot reach a fragment boundary inside
// the band (the pair is then rejected).
func AnchoredOverlap(a, b []byte, apos, bpos, mlen, band int, sc Scoring) (Result, bool) {
	if band < 1 {
		band = DefaultBand
	}
	right, okR := extendBanded(a[apos+mlen:], b[bpos+mlen:], band, sc, false)
	if !okR {
		return Result{}, false
	}
	left, okL := extendBanded(a[:apos], b[:bpos], band, sc, true)
	if !okL {
		return Result{}, false
	}
	res := Result{
		Score:   left.score + right.score + mlen*sc.Match,
		Matches: left.matches + right.matches + mlen,
		Length:  left.length + right.length + mlen,
		AStart:  apos - left.aUsed,
		BStart:  bpos - left.bUsed,
		AEnd:    apos + mlen + right.aUsed,
		BEnd:    bpos + mlen + right.bUsed,
	}
	return res, true
}

type extension struct {
	score   int
	matches int
	length  int
	aUsed   int
	bUsed   int
}

// extendBanded aligns u against v (both already oriented away from the
// anchor; pass reversed=true for the leftward extension, which walks the
// prefixes backwards) requiring the alignment to reach the end of u or
// the end of v. Gap penalties are affine; the band is centered on the
// anchor diagonal.
func extendBanded(u, v []byte, band int, sc Scoring, reversed bool) (extension, bool) {
	lu, lv := len(u), len(v)
	if lu == 0 || lv == 0 {
		// The boundary is already reached; nothing to extend.
		return extension{}, true
	}
	at := func(s []byte, i int) byte {
		if reversed {
			return s[len(s)-1-i]
		}
		return s[i]
	}

	width := 2*band + 1
	// Rolling rows indexed by diagonal offset: column j = i + off - band,
	// off in [0, width).
	curM := make([]bandCell, width)
	curX := make([]bandCell, width)
	curY := make([]bandCell, width)
	prvM := make([]bandCell, width)
	prvX := make([]bandCell, width)
	prvY := make([]bandCell, width)

	for o := range prvM {
		prvM[o], prvX[o], prvY[o] = bandNegInf, bandNegInf, bandNegInf
	}
	// Row 0: cell (0,0) sits at offset band; cells (0,j) for j ≤ band are
	// leading gaps in u (charged — they are interior to the overall
	// overlap alignment).
	prvM[band] = bandCell{}
	for j := 1; j <= band && j <= lv; j++ {
		prvY[band+j] = bandCell{
			sc: int32(sc.GapOpen + j*sc.GapExtend),
			ln: int32(j),
		}
	}

	best := extension{score: int(bandNegInf.sc)}
	found := false
	noteBoundary := func(i, j int, c bandCell) {
		if c.sc <= bandNegInf.sc {
			return
		}
		if i == lu || j == lv {
			if !found || int(c.sc) > best.score {
				best = extension{
					score:   int(c.sc),
					matches: int(c.m),
					length:  int(c.ln),
					aUsed:   i,
					bUsed:   j,
				}
				found = true
			}
		}
	}
	// Row 0 boundary cells (possible when lv ≤ band): v fully consumed by
	// leading gaps — degenerate, but legal.
	for j := 0; j <= band && j <= lv; j++ {
		if j == 0 {
			noteBoundary(0, 0, prvM[band])
		} else {
			noteBoundary(0, j, prvY[band+j])
		}
	}

	addCol := func(p bandCell, match bool, s int32) bandCell {
		if p.sc <= bandNegInf.sc {
			return bandNegInf
		}
		c := bandCell{sc: p.sc + s, m: p.m, ln: p.ln + 1}
		if match {
			c.m++
		}
		return c
	}

	for i := 1; i <= lu; i++ {
		ui := at(u, i-1)
		for o := 0; o < width; o++ {
			curM[o], curX[o], curY[o] = bandNegInf, bandNegInf, bandNegInf
			j := i + o - band
			if j < 0 || j > lv {
				continue
			}
			if j == 0 {
				// Leading gap in v (consuming u only).
				if i <= band {
					curX[o] = bandCell{sc: int32(sc.GapOpen + i*sc.GapExtend), ln: int32(i)}
				}
				noteBoundary(i, 0, curX[o])
				continue
			}
			vj := at(v, j-1)
			match := ui == vj && isBase(ui)
			s := int32(sc.Mismatch)
			if match {
				s = int32(sc.Match)
			}
			// Diagonal predecessor (i-1, j-1) is offset o in the previous row.
			dBest := prvM[o]
			if prvX[o].sc > dBest.sc {
				dBest = prvX[o]
			}
			if prvY[o].sc > dBest.sc {
				dBest = prvY[o]
			}
			curM[o] = addCol(dBest, match, s)

			// Up predecessor (i-1, j) is offset o+1 in the previous row.
			if o+1 < width {
				open := addCol(prvM[o+1], false, int32(sc.GapOpen+sc.GapExtend))
				ext := addCol(prvX[o+1], false, int32(sc.GapExtend))
				if open.sc >= ext.sc {
					curX[o] = open
				} else {
					curX[o] = ext
				}
			}
			// Left predecessor (i, j-1) is offset o-1 in the current row.
			if o-1 >= 0 {
				open := addCol(curM[o-1], false, int32(sc.GapOpen+sc.GapExtend))
				ext := addCol(curY[o-1], false, int32(sc.GapExtend))
				if open.sc >= ext.sc {
					curY[o] = open
				} else {
					curY[o] = ext
				}
			}
			noteBoundary(i, j, curM[o])
			noteBoundary(i, j, curX[o])
			noteBoundary(i, j, curY[o])
		}
		curM, prvM = prvM, curM
		curX, prvX = prvX, curX
		curY, prvY = prvY, curY
	}
	if !found {
		return extension{}, false
	}
	return best, true
}
