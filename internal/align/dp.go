package align

// Full-matrix affine-gap dynamic programming with traceback. These are
// the exact (unbanded) aligners: Global is Needleman–Wunsch, Local is
// Smith–Waterman, and Overlap is the semi-global suffix–prefix
// alignment that defines fragment overlaps in the paper (Section 4).
// All use Gotoh's three-state recurrence.

type dpMode int

const (
	modeGlobal dpMode = iota
	modeLocal
	modeOverlap
)

// DP states. stStart marks a free alignment start (score-0 cell).
const (
	stM     = 0 // a[i-1] aligned to b[j-1]
	stX     = 1 // gap in b: a[i-1] against '-'
	stY     = 2 // gap in a: '-' against b[j-1]
	stStart = 3
)

// Global computes an optimal global alignment of a and b.
func Global(a, b []byte, sc Scoring) Result { return dpFull(a, b, sc, modeGlobal) }

// Local computes an optimal local alignment of a and b.
func Local(a, b []byte, sc Scoring) Result { return dpFull(a, b, sc, modeLocal) }

// Overlap computes an optimal overlap (semi-global) alignment: gaps
// before the start and after the end of either sequence are free, so
// the optimum is the best suffix–prefix overlap or containment of the
// two sequences.
func Overlap(a, b []byte, sc Scoring) Result { return dpFull(a, b, sc, modeOverlap) }

func dpFull(a, b []byte, sc Scoring, mode dpMode) Result {
	la, lb := len(a), len(b)
	w := lb + 1
	size := (la + 1) * w

	m := make([]int, size)
	x := make([]int, size)
	y := make([]int, size)
	fromM := make([]uint8, size) // predecessor state of the (i-1,j-1) cell
	fromX := make([]uint8, size) // predecessor state of the (i-1,j) cell
	fromY := make([]uint8, size) // predecessor state of the (i,j-1) cell

	free := mode == modeLocal || mode == modeOverlap

	m[0], x[0], y[0] = 0, negInf, negInf
	fromM[0] = stStart
	for i := 1; i <= la; i++ {
		c := i * w
		y[c] = negInf
		if free {
			m[c], fromM[c] = 0, stStart
			x[c] = negInf
		} else {
			m[c] = negInf
			x[c] = sc.GapOpen + i*sc.GapExtend
			if i == 1 {
				fromX[c] = stM
			} else {
				fromX[c] = stX
			}
		}
	}
	for j := 1; j <= lb; j++ {
		x[j] = negInf
		if free {
			m[j], fromM[j] = 0, stStart
			y[j] = negInf
		} else {
			m[j] = negInf
			y[j] = sc.GapOpen + j*sc.GapExtend
			if j == 1 {
				fromY[j] = stM
			} else {
				fromY[j] = stY
			}
		}
	}

	for i := 1; i <= la; i++ {
		row, prow := i*w, (i-1)*w
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			// M state from diagonal predecessor. A predecessor whose M
			// value is itself a free start still records stM here, so
			// traceback visits it and stops on its stStart marker.
			d := prow + j - 1
			best, from := m[d], uint8(stM)
			if x[d] > best {
				best, from = x[d], stX
			}
			if y[d] > best {
				best, from = y[d], stY
			}
			mv := best + sc.base(ai, b[j-1])
			if mode == modeLocal && mv < 0 {
				mv, from = 0, stStart
			}
			m[row+j] = mv
			fromM[row+j] = from

			// X state from above.
			up := prow + j
			if openX, extX := m[up]+sc.GapOpen+sc.GapExtend, x[up]+sc.GapExtend; openX >= extX {
				x[row+j], fromX[row+j] = openX, stM
			} else {
				x[row+j], fromX[row+j] = extX, stX
			}

			// Y state from the left.
			left := row + j - 1
			if openY, extY := m[left]+sc.GapOpen+sc.GapExtend, y[left]+sc.GapExtend; openY >= extY {
				y[row+j], fromY[row+j] = openY, stM
			} else {
				y[row+j], fromY[row+j] = extY, stY
			}
		}
	}

	// Locate the end cell.
	endI, endJ, endSt := la, lb, stM
	endScore := negInf
	consider := func(i, j, st, v int) {
		if v > endScore {
			endScore, endI, endJ, endSt = v, i, j, st
		}
	}
	switch mode {
	case modeGlobal:
		c := la*w + lb
		consider(la, lb, stM, m[c])
		consider(la, lb, stX, x[c])
		consider(la, lb, stY, y[c])
	case modeLocal:
		for i := 0; i <= la; i++ {
			for j := 0; j <= lb; j++ {
				consider(i, j, stM, m[i*w+j])
			}
		}
	case modeOverlap:
		for j := 0; j <= lb; j++ {
			c := la*w + j
			consider(la, j, stM, m[c])
			consider(la, j, stX, x[c])
			consider(la, j, stY, y[c])
		}
		for i := 0; i <= la; i++ {
			c := i*w + lb
			consider(i, lb, stM, m[c])
			consider(i, lb, stX, x[c])
			consider(i, lb, stY, y[c])
		}
	}

	res := Result{Score: endScore, AEnd: endI, BEnd: endJ}
	// Traceback. At each step the current state tells which column type
	// to emit; the from-array gives the state to continue in. Ops are
	// collected back-to-front and reversed.
	i, j, st := endI, endJ, endSt
	for {
		c := i*w + j
		switch st {
		case stM:
			nxt := fromM[c]
			if nxt == stStart {
				// Free start (or global origin) — nothing consumed here.
				goto done
			}
			i, j = i-1, j-1
			res.Length++
			res.Ops = append(res.Ops, OpM)
			if a[i] == b[j] && isBase(a[i]) {
				res.Matches++
			}
			st = int(nxt)
		case stX:
			nxt := fromX[c]
			i--
			res.Length++
			res.Ops = append(res.Ops, OpX)
			st = int(nxt)
		case stY:
			nxt := fromY[c]
			j--
			res.Length++
			res.Ops = append(res.Ops, OpY)
			st = int(nxt)
		case stStart:
			goto done
		}
	}
done:
	res.AStart, res.BStart = i, j
	for x, y := 0, len(res.Ops)-1; x < y; x, y = x+1, y-1 {
		res.Ops[x], res.Ops[y] = res.Ops[y], res.Ops[x]
	}
	return res
}

func isBase(b byte) bool {
	switch b {
	case 'A', 'C', 'G', 'T':
		return true
	}
	return false
}
